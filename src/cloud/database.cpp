#include "cloud/database.h"

#include <algorithm>
#include <cmath>

namespace simdc::cloud {

void MetricsDatabase::Record(const device::PerfSample& sample) {
  std::lock_guard<std::mutex> lock(mutex_);
  samples_.push_back(sample);
}

std::vector<device::PerfSample> MetricsDatabase::QueryTask(TaskId task) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<device::PerfSample> out;
  for (const auto& s : samples_) {
    if (s.task == task) out.push_back(s);
  }
  return out;
}

std::vector<device::PerfSample> MetricsDatabase::QueryPhone(
    TaskId task, PhoneId phone) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<device::PerfSample> out;
  for (const auto& s : samples_) {
    if (s.task == task && s.phone == phone) out.push_back(s);
  }
  return out;
}

std::size_t MetricsDatabase::sample_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return samples_.size();
}

std::vector<StageAggregate> MetricsDatabase::AggregateStages(
    TaskId task, PhoneId phone) const {
  auto samples = QueryPhone(task, phone);
  std::sort(samples.begin(), samples.end(),
            [](const auto& a, const auto& b) { return a.time < b.time; });

  std::vector<StageAggregate> out;
  for (const device::ApkStage stage : device::kAllStages) {
    StageAggregate agg;
    agg.stage = stage;
    for (std::size_t i = 0; i < samples.size(); ++i) {
      if (samples[i].stage != stage) continue;
      ++agg.samples;
      // Trailing-rectangle integration: the interval from sample i to the
      // next sample belongs to sample i's stage. This also attributes the
      // bandwidth delta across a stage boundary to the stage that produced
      // the traffic (e.g. a round's final upload counts as Training even
      // when the next sample already sees Post-training).
      double gap_s = 0.0;
      double comm_bytes = 0.0;
      if (i + 1 < samples.size()) {
        gap_s = ToSeconds(samples[i + 1].time - samples[i].time);
        comm_bytes = static_cast<double>(samples[i + 1].bandwidth_bytes -
                                         samples[i].bandwidth_bytes);
      } else if (i > 0) {
        gap_s = ToSeconds(samples[i].time - samples[i - 1].time);
      }
      const double current_ma =
          std::abs(static_cast<double>(samples[i].current_ua)) / 1000.0;
      agg.energy_mah += current_ma * gap_s / 3600.0;
      agg.duration_min += gap_s / 60.0;
      agg.comm_kb += std::max(0.0, comm_bytes) / 1024.0;
    }
    if (agg.samples > 0) out.push_back(agg);
  }
  return out;
}

std::vector<StageAggregate> MetricsDatabase::AverageStages(
    TaskId task, const std::vector<PhoneId>& phones) const {
  std::vector<StageAggregate> totals;
  std::size_t contributing = 0;
  for (const PhoneId phone : phones) {
    const auto stages = AggregateStages(task, phone);
    if (stages.empty()) continue;
    ++contributing;
    for (const auto& agg : stages) {
      auto it = std::find_if(totals.begin(), totals.end(), [&](const auto& t) {
        return t.stage == agg.stage;
      });
      if (it == totals.end()) {
        totals.push_back(agg);
      } else {
        it->energy_mah += agg.energy_mah;
        it->duration_min += agg.duration_min;
        it->comm_kb += agg.comm_kb;
        it->samples += agg.samples;
      }
    }
  }
  if (contributing > 0) {
    const auto n = static_cast<double>(contributing);
    for (auto& agg : totals) {
      agg.energy_mah /= n;
      agg.duration_min /= n;
      agg.comm_kb /= n;
    }
  }
  std::sort(totals.begin(), totals.end(), [](const auto& a, const auto& b) {
    return static_cast<int>(a.stage) < static_cast<int>(b.stage);
  });
  return totals;
}

void MetricsDatabase::RecordScalar(const std::string& series, SimTime time,
                                   double value) {
  std::lock_guard<std::mutex> lock(mutex_);
  scalars_[series].emplace_back(time, value);
  scalar_log_.push_back({series, time, value});
}

std::size_t MetricsDatabase::Flush() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return samples_.size() + scalar_log_.size();
}

std::size_t MetricsDatabase::scalar_row_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return scalar_log_.size();
}

std::vector<ScalarRow> MetricsDatabase::ScalarRows() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return scalar_log_;
}

std::vector<device::PerfSample> MetricsDatabase::Samples() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return samples_;
}

void MetricsDatabase::Restore(std::vector<device::PerfSample> samples,
                              const std::vector<ScalarRow>& scalar_rows) {
  std::lock_guard<std::mutex> lock(mutex_);
  samples_ = std::move(samples);
  scalars_.clear();
  scalar_log_ = scalar_rows;
  for (const ScalarRow& row : scalar_log_) {
    scalars_[row.series].emplace_back(row.time, row.value);
  }
}

std::vector<std::pair<SimTime, double>> MetricsDatabase::QueryScalar(
    const std::string& series) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = scalars_.find(series);
  return it == scalars_.end()
             ? std::vector<std::pair<SimTime, double>>{}
             : it->second;
}

}  // namespace simdc::cloud
