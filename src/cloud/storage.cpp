#include "cloud/storage.h"

namespace simdc::cloud {

BlobId BlobStore::Put(std::vector<std::byte> bytes) {
  auto blob = std::make_shared<const std::vector<std::byte>>(std::move(bytes));
  std::lock_guard<std::mutex> lock(mutex_);
  const BlobId id(next_id_++);
  total_bytes_ += blob->size();
  bytes_written_ += blob->size();
  blobs_.emplace(id, std::move(blob));
  return id;
}

Result<std::vector<std::byte>> BlobStore::Get(BlobId id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = blobs_.find(id);
  if (it == blobs_.end()) {
    return NotFound("blob not found: " + id.ToString());
  }
  bytes_read_ += it->second->size();
  return *it->second;
}

Result<SharedBlob> BlobStore::GetShared(BlobId id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = blobs_.find(id);
  if (it == blobs_.end()) {
    return NotFound("blob not found: " + id.ToString());
  }
  bytes_read_ += it->second->size();
  return it->second;
}

Status BlobStore::Delete(BlobId id) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = blobs_.find(id);
  if (it == blobs_.end()) {
    return NotFound("blob not found: " + id.ToString());
  }
  total_bytes_ -= it->second->size();
  blobs_.erase(it);
  return Status::Ok();
}

bool BlobStore::Contains(BlobId id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return blobs_.contains(id);
}

std::size_t BlobStore::blob_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return blobs_.size();
}

std::size_t BlobStore::total_bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return total_bytes_;
}

std::size_t BlobStore::bytes_written() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return bytes_written_;
}

std::size_t BlobStore::bytes_read() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return bytes_read_;
}

}  // namespace simdc::cloud
