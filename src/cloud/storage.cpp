#include "cloud/storage.h"

#include <cstring>

namespace simdc::cloud {

BlobId BlobStore::Put(std::vector<std::byte> bytes) {
  const std::size_t size = bytes.size();
  auto buffer =
      std::make_shared<const std::vector<std::byte>>(std::move(bytes));
  const std::byte* data = buffer->data();
  std::lock_guard<std::mutex> lock(mutex_);
  const BlobId id(next_id_++);
  total_bytes_ += size;
  bytes_written_ += size;
  blobs_.emplace(id, SharedBlob(std::move(buffer), data, size));
  if (journal_ != nullptr) journal_->OnPut(id, {data, size});
  return id;
}

BlobId BlobStore::PutPooled(std::span<const std::byte> bytes) {
  std::lock_guard<std::mutex> lock(mutex_);
  ByteArena::Allocation alloc = arena_.Allocate(bytes.size());
  if (!bytes.empty()) {
    std::memcpy(alloc.data, bytes.data(), bytes.size());
  }
  const BlobId id(next_id_++);
  total_bytes_ += bytes.size();
  bytes_written_ += bytes.size();
  blobs_.emplace(id,
                 SharedBlob(std::move(alloc.block), alloc.data, bytes.size()));
  if (journal_ != nullptr) journal_->OnPut(id, {alloc.data, bytes.size()});
  return id;
}

Result<std::vector<std::byte>> BlobStore::Get(BlobId id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (read_fault_hook_) {
    if (Status faulted = read_fault_hook_(id); !faulted.ok()) return faulted.error();
  }
  const auto it = blobs_.find(id);
  if (it == blobs_.end()) {
    return NotFound("blob not found: " + id.ToString());
  }
  bytes_read_ += it->second.size();
  return std::vector<std::byte>(it->second.begin(), it->second.end());
}

Result<SharedBlob> BlobStore::GetShared(BlobId id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (read_fault_hook_) {
    if (Status faulted = read_fault_hook_(id); !faulted.ok()) return faulted.error();
  }
  const auto it = blobs_.find(id);
  if (it == blobs_.end()) {
    return NotFound("blob not found: " + id.ToString());
  }
  bytes_read_ += it->second.size();
  return it->second;
}

Status BlobStore::Delete(BlobId id) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = blobs_.find(id);
  if (it == blobs_.end()) {
    return NotFound("blob not found: " + id.ToString());
  }
  total_bytes_ -= it->second.size();
  blobs_.erase(it);
  if (journal_ != nullptr) journal_->OnDelete(id);
  return Status::Ok();
}

void BlobStore::set_journal(BlobJournal* journal) {
  std::lock_guard<std::mutex> lock(mutex_);
  journal_ = journal;
}

void BlobStore::set_read_fault_hook(ReadFaultHook hook) {
  std::lock_guard<std::mutex> lock(mutex_);
  read_fault_hook_ = std::move(hook);
}

void BlobStore::RestoreBlob(BlobId id, std::vector<std::byte> bytes) {
  const std::size_t size = bytes.size();
  auto buffer =
      std::make_shared<const std::vector<std::byte>>(std::move(bytes));
  const std::byte* data = buffer->data();
  std::lock_guard<std::mutex> lock(mutex_);
  // Replacing is legal during replay only in the degenerate sense that the
  // log never repeats an id; operator[] keeps the code branch-free.
  total_bytes_ += size;
  blobs_[id] = SharedBlob(std::move(buffer), data, size);
  if (id.value() >= next_id_) next_id_ = id.value() + 1;
}

void BlobStore::SetNextId(std::uint64_t next_id) {
  std::lock_guard<std::mutex> lock(mutex_);
  next_id_ = next_id;
}

std::uint64_t BlobStore::next_id() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return next_id_;
}

void BlobStore::RestoreTrafficCounters(std::size_t written, std::size_t read) {
  std::lock_guard<std::mutex> lock(mutex_);
  bytes_written_ = written;
  bytes_read_ = read;
}

bool BlobStore::Contains(BlobId id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return blobs_.contains(id);
}

std::size_t BlobStore::ReclaimArena() {
  std::lock_guard<std::mutex> lock(mutex_);
  return arena_.Reclaim();
}

std::size_t BlobStore::blob_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return blobs_.size();
}

std::size_t BlobStore::total_bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return total_bytes_;
}

std::size_t BlobStore::bytes_written() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return bytes_written_;
}

std::size_t BlobStore::bytes_read() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return bytes_read_;
}

std::size_t BlobStore::arena_blocks_created() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return arena_.blocks_created();
}

std::size_t BlobStore::arena_blocks_recycled() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return arena_.blocks_recycled();
}

}  // namespace simdc::cloud
