// Cloud metrics database.
//
// PhoneMgr "organizes [device information] in real-time and uploads it to
// the cloud database for storage" (§IV-C). The database stores raw
// performance samples and offers the per-stage aggregation Table I
// reports (energy in mAh, duration in minutes, communication in KB), plus
// a generic named time-series facility used by the experiment harnesses.
#pragma once

#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/ids.h"
#include "device/perf_sample.h"

namespace simdc::cloud {

/// Table I row: per-stage aggregates for one (task, grade/phone) group.
struct StageAggregate {
  device::ApkStage stage = device::ApkStage::kNoApk;
  /// Energy over the stage estimated from sampled current readings, mAh.
  double energy_mah = 0.0;
  /// Stage duration in minutes (span of samples tagged with the stage).
  double duration_min = 0.0;
  /// Communication during the stage in KB (bandwidth counter delta).
  double comm_kb = 0.0;
  std::size_t samples = 0;
};

class MetricsDatabase final : public device::MetricsSink {
 public:
  void Record(const device::PerfSample& sample) override;

  std::vector<device::PerfSample> QueryTask(TaskId task) const;
  std::vector<device::PerfSample> QueryPhone(TaskId task, PhoneId phone) const;
  std::size_t sample_count() const;

  /// Aggregates one phone's samples per APK stage (Table I pipeline).
  /// Energy integrates |current| over inter-sample gaps at the sampled
  /// voltage-independent current (mAh = mA * hours).
  std::vector<StageAggregate> AggregateStages(TaskId task,
                                              PhoneId phone) const;

  /// Averages StageAggregates across all benchmarking phones of a task
  /// whose ids are in `phones` (one Table I block, e.g. all High phones).
  std::vector<StageAggregate> AverageStages(
      TaskId task, const std::vector<PhoneId>& phones) const;

  // --- Generic named scalar time series (loss curves, traffic counts) ---
  void RecordScalar(const std::string& series, SimTime time, double value);
  std::vector<std::pair<SimTime, double>> QueryScalar(
      const std::string& series) const;

 private:
  mutable std::mutex mutex_;
  std::vector<device::PerfSample> samples_;
  std::map<std::string, std::vector<std::pair<SimTime, double>>> scalars_;
};

}  // namespace simdc::cloud
