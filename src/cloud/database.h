// Cloud metrics database.
//
// PhoneMgr "organizes [device information] in real-time and uploads it to
// the cloud database for storage" (§IV-C). The database stores raw
// performance samples and offers the per-stage aggregation Table I
// reports (energy in mAh, duration in minutes, communication in KB), plus
// a generic named time-series facility used by the experiment harnesses.
#pragma once

#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/ids.h"
#include "device/perf_sample.h"

namespace simdc::cloud {

/// Table I row: per-stage aggregates for one (task, grade/phone) group.
struct StageAggregate {
  device::ApkStage stage = device::ApkStage::kNoApk;
  /// Energy over the stage estimated from sampled current readings, mAh.
  double energy_mah = 0.0;
  /// Stage duration in minutes (span of samples tagged with the stage).
  double duration_min = 0.0;
  /// Communication during the stage in KB (bandwidth counter delta).
  double comm_kb = 0.0;
  std::size_t samples = 0;
};

/// One named scalar observation in insertion order. The per-series map
/// (QueryScalar) iterates sorted by series name — NOT recording order — so
/// the durability plane checkpoints this row log instead: replaying it
/// reproduces the database byte-for-byte, in the order it was built.
struct ScalarRow {
  std::string series;
  SimTime time = 0;
  double value = 0.0;
};

class MetricsDatabase final : public device::MetricsSink {
 public:
  void Record(const device::PerfSample& sample) override;

  std::vector<device::PerfSample> QueryTask(TaskId task) const;
  std::vector<device::PerfSample> QueryPhone(TaskId task, PhoneId phone) const;
  std::size_t sample_count() const;

  /// Aggregates one phone's samples per APK stage (Table I pipeline).
  /// Energy integrates |current| over inter-sample gaps at the sampled
  /// voltage-independent current (mAh = mA * hours).
  std::vector<StageAggregate> AggregateStages(TaskId task,
                                              PhoneId phone) const;

  /// Averages StageAggregates across all benchmarking phones of a task
  /// whose ids are in `phones` (one Table I block, e.g. all High phones).
  std::vector<StageAggregate> AverageStages(
      TaskId task, const std::vector<PhoneId>& phones) const;

  // --- Generic named scalar time series (loss curves, traffic counts) ---
  void RecordScalar(const std::string& series, SimTime time, double value);
  std::vector<std::pair<SimTime, double>> QueryScalar(
      const std::string& series) const;

  // --- Durability-plane surface ---
  /// Explicit sync point before a checkpoint serializes the database: takes
  /// the lock once (so every row recorded-before happens-before the reads
  /// that follow) and returns the total row count (perf samples + scalar
  /// rows) the checkpoint should contain.
  std::size_t Flush() const;
  std::size_t scalar_row_count() const;
  /// Scalar rows in insertion order (the deterministic replay order).
  std::vector<ScalarRow> ScalarRows() const;
  /// All perf samples in insertion order.
  std::vector<device::PerfSample> Samples() const;
  /// Recovery replay: drops current contents and rebuilds both stores from
  /// checkpointed rows, in their recorded order.
  void Restore(std::vector<device::PerfSample> samples,
               const std::vector<ScalarRow>& scalar_rows);

 private:
  mutable std::mutex mutex_;
  std::vector<device::PerfSample> samples_;
  std::map<std::string, std::vector<std::pair<SimTime, double>>> scalars_;
  /// Insertion-order log of every RecordScalar call (checkpoint source;
  /// scalars_ is the query index derived from it).
  std::vector<ScalarRow> scalar_log_;
};

}  // namespace simdc::cloud
