#include "cloud/aggregation.h"

#include <algorithm>
#include <chrono>

#include "common/log.h"
#include "common/thread_pool.h"

namespace simdc::cloud {

namespace {

/// Wall-clock profiling stamps (steady, monotonic). These feed the OPTIME
/// accumulate/bookkeeping split only — never any deterministic surface.
std::uint64_t NowNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

AggregationService::AggregationService(sim::EventLoop& loop,
                                       BlobStore& storage,
                                       AggregationConfig config)
    : loop_(loop),
      storage_(storage),
      config_(config),
      aggregator_(config.model_dim),
      global_model_(config.model_dim) {
  SIMDC_CHECK(config.model_dim > 0, "aggregation needs a model dimension");
}

void AggregationService::Start() {
  if (config_.trigger == AggregationTrigger::kScheduled) ArmSchedule();
}

void AggregationService::OnRoundOpened(SimTime t0) {
  if (!DegradationActive() || stopped_) return;
  if (deadline_event_ != 0) {
    loop_.Cancel(deadline_event_);
    deadline_event_ = 0;
  }
  extensions_used_ = 0;
  // Stale-event guard: the deadline only acts on the round it was armed
  // for. If the trigger closes that round first, history_ grows and the
  // fired event sees the mismatch.
  deadline_round_ = history_.size();
  ArmDeadline(t0 + config_.round_deadline);
}

void AggregationService::ArmDeadline(SimTime when) {
  deadline_event_ = loop_.ScheduleAt(when, [this] { OnDeadline(); });
}

void AggregationService::OnDeadline() {
  deadline_event_ = 0;
  if (stopped_) return;
  if (history_.size() != deadline_round_) return;  // round closed on time
  const SimTime now = loop_.Now();
  if (pending_clients() >= config_.round_quorum) {
    // Quorum met: commit with what arrived — a degraded round, counted
    // before the aggregate so the on_aggregate callback (which may read
    // the counter to book degradation metrics) sees it.
    ++deadline_commits_;
    if (!AggregateAt(now)) --deadline_commits_;
    return;
  }
  const SimDuration extension = config_.round_extension > 0
                                    ? config_.round_extension
                                    : config_.round_deadline;
  if (extensions_used_ < config_.max_round_extensions) {
    ++extensions_used_;
    ++round_extensions_;
    ArmDeadline(now + extension);
    return;
  }
  // Extensions exhausted below quorum: abort. The partial accumulator is
  // discarded (those updates trained against a model this round will never
  // publish) and the driver advances via the abort callback.
  ++aborted_rounds_;
  DiscardPending();
  aggregator_.Reset();
  if (on_round_aborted_) on_round_aborted_(now);
}

void AggregationService::ArmSchedule() {
  loop_.ScheduleAfter(config_.schedule_period, [this] {
    if (stopped_) return;
    AggregateNow();
    const bool more =
        config_.max_rounds == 0 || history_.size() < config_.max_rounds;
    if (more) ArmSchedule();
  });
}

void AggregationService::Deliver(const flow::Message& message,
                                 SimTime arrival) {
  DeliverOne(message, arrival);
}

void AggregationService::DeliverBatch(std::span<const flow::Message> messages,
                                      std::span<const SimTime> arrivals) {
  // One virtual call per dispatch tick; messages accumulate in wire order
  // with their own arrival stamps, exactly as the per-message path would.
  const std::uint64_t t0 = NowNs();
  const std::uint64_t accumulate0 = serial_accumulate_ns_;
  for (std::size_t i = 0; i < messages.size(); ++i) {
    DeliverOne(messages[i], arrivals[i]);
  }
  const std::uint64_t total = NowNs() - t0;
  const std::uint64_t accumulate = serial_accumulate_ns_ - accumulate0;
  serial_bookkeeping_ns_ += total > accumulate ? total - accumulate : 0;
}

void AggregationService::DeliverDecodedBatch(
    std::span<const flow::DecodedUpdate> updates,
    std::span<const SimTime> arrivals) {
  const std::uint64_t t0 = NowNs();
  const std::uint64_t accumulate0 = serial_accumulate_ns_;
  for (std::size_t i = 0; i < updates.size(); ++i) {
    DeliverDecodedOne(updates[i], arrivals[i]);
  }
  const std::uint64_t total = NowNs() - t0;
  const std::uint64_t accumulate = serial_accumulate_ns_ - accumulate0;
  serial_bookkeeping_ns_ += total > accumulate ? total - accumulate : 0;
}

void AggregationService::DeliverOne(const flow::Message& message,
                                    SimTime arrival) {
  if (stopped_) return;
  ++messages_received_;

  // Staleness filter: only updates trained against the current global
  // model round are admitted when configured (Fig. 9 round semantics).
  if (config_.reject_stale && message.round != history_.size()) {
    ++stale_rejections_;
    return;
  }

  // The message carries only a reference; the model lives in storage.
  // kNotFound is a decode failure (the payload is semantically gone, e.g.
  // reclaimed); any other store error is an I/O fault and books separately.
  auto blob = storage_.Get(message.payload);
  if (!blob.ok()) {
    if (blob.error().code() != ErrorCode::kNotFound) {
      ++store_errors_;
      SIMDC_LOG(kWarn, "AggregationService")
          << "store error serving payload for " << message.id.ToString()
          << ": " << blob.error().ToString();
      return;
    }
    ++decode_failures_;
    SIMDC_LOG(kWarn, "AggregationService")
        << "missing payload blob for " << message.id.ToString() << ": "
        << blob.error().ToString();
    return;
  }
  auto model = ml::LrModel::FromBytes(*blob);
  if (!model.ok()) {
    ++decode_failures_;
    SIMDC_LOG(kWarn, "AggregationService")
        << "undecodable model from " << message.device.ToString() << ": "
        << model.error().ToString();
    return;
  }
  Accumulate(*model, message, arrival);
}

void AggregationService::DeliverDecodedOne(const flow::DecodedUpdate& update,
                                           SimTime arrival) {
  if (stopped_) return;
  ++messages_received_;

  // Same admission order as the legacy plane: staleness verdict FIRST,
  // then the deferred decode failure commits — a stale update with a bad
  // payload is a stale rejection, never a decode failure.
  if (config_.reject_stale && update.message.round != history_.size()) {
    ++stale_rejections_;
    return;
  }

  if (!update.decoded()) {
    if (update.failure == flow::DecodedUpdate::Failure::kStoreError) {
      ++store_errors_;
      SIMDC_LOG(kWarn, "AggregationService")
          << "store error serving payload for " << update.message.id.ToString()
          << ": " << update.error.ToString();
      return;
    }
    ++decode_failures_;
    if (update.failure == flow::DecodedUpdate::Failure::kMissingBlob) {
      SIMDC_LOG(kWarn, "AggregationService")
          << "missing payload blob for " << update.message.id.ToString()
          << ": " << update.error.ToString();
    } else {
      SIMDC_LOG(kWarn, "AggregationService")
          << "undecodable model from " << update.message.device.ToString()
          << ": " << update.error.ToString();
    }
    return;
  }
  if (config_.aggregate_plane == AggregatePlane::kPartialSum) {
    AccumulateDecoded(update, arrival);
  } else {
    Accumulate(*update.model, update.message, arrival);
  }
}

void AggregationService::Accumulate(const ml::LrModel& model,
                                    const flow::Message& message,
                                    SimTime arrival) {
  const std::size_t samples =
      message.sample_count > 0 ? message.sample_count : 1;
  const std::uint64_t t0 = NowNs();
  const Status added = aggregator_.Add(model, samples);
  serial_accumulate_ns_ += NowNs() - t0;
  if (!added.ok()) {
    // Dimension mismatch — the decode "succeeded" but the model is
    // unusable; both planes book it as a decode failure here.
    ++decode_failures_;
    return;
  }

  if (config_.trigger == AggregationTrigger::kSampleThreshold &&
      aggregator_.total_samples() >= config_.sample_threshold) {
    // The triggering message's arrival is the round's timestamp. In the
    // per-message path arrival == loop time here; in a batched tick the
    // loop clock sits at the tick start, so the explicit stamp keeps both
    // paths bit-identical.
    AggregateAt(std::max(arrival, loop_.Now()));
  }
}

void AggregationService::AccumulateDecoded(const flow::DecodedUpdate& update,
                                           SimTime arrival) {
  const std::size_t samples =
      update.message.sample_count > 0 ? update.message.sample_count : 1;
  // The legacy plane's Add rejects dimension mismatches and books them as
  // decode failures at this point in the delivery order; hoisting the
  // check to admission keeps the counter sequence identical while the
  // O(dim) work is deferred. (Zero samples cannot reach Add: the floor
  // above is 1.)
  if (update.model->dim() != config_.model_dim) {
    ++decode_failures_;
    return;
  }
  pending_.push_back({update.model, samples});
  staged_samples_ += samples;
  ++staged_clients_;

  if (config_.trigger == AggregationTrigger::kSampleThreshold &&
      pending_samples() >= config_.sample_threshold) {
    // Same trigger point as the legacy plane — the round closes on the
    // crossing message, mid-batch if need be, so later messages in the
    // tick see the advanced round for their staleness verdicts.
    AggregateAt(std::max(arrival, loop_.Now()));
    return;
  }
  if (pending_.size() >= kFlushCap) FlushPending();
}

void AggregationService::FlushPending() {
  if (pending_.empty()) return;
  const std::uint64_t t0 = NowNs();
  const std::size_t lanes =
      pool_ ? std::min({pool_->size(), pending_.size(), kMaxLanes})
            : std::size_t{1};
  if (lanes <= 1) {
    for (const StagedUpdate& staged : pending_) {
      // Dim was checked at admission and samples >= 1, so Add cannot fail.
      const Status added = aggregator_.Add(*staged.model, staged.samples);
      SIMDC_CHECK(added.ok(), "FlushPending: staged add failed: "
                                  << added.error().ToString());
    }
  } else {
    while (partials_.size() < lanes) {
      partials_.emplace_back(config_.model_dim);
    }
    const std::size_t chunk = (pending_.size() + lanes - 1) / lanes;
    pool_->ParallelFor(lanes, [&](std::size_t lane) {
      const std::size_t begin = lane * chunk;
      const std::size_t end = std::min(begin + chunk, pending_.size());
      ml::FedAvgAggregator& partial = partials_[lane];
      for (std::size_t i = begin; i < end; ++i) {
        const Status added =
            partial.Add(*pending_[i].model, pending_[i].samples);
        SIMDC_CHECK(added.ok(), "FlushPending: partial add failed: "
                                    << added.error().ToString());
      }
    });
    // Fixed ascending-lane reduction. The cascade is order-invariant, so
    // this order is a convention, not a correctness requirement — but a
    // fixed order keeps the internal cascade bits deterministic run-to-run.
    for (std::size_t lane = 0; lane < lanes; ++lane) {
      aggregator_.MergeFrom(partials_[lane]);
      partials_[lane].Reset();
    }
  }
  pending_.clear();
  staged_samples_ = 0;
  staged_clients_ = 0;
  serial_accumulate_ns_ += NowNs() - t0;
}

void AggregationService::DiscardPending() {
  pending_.clear();
  staged_samples_ = 0;
  staged_clients_ = 0;
}

AggregationSnapshot AggregationService::Snapshot() const {
  AggregationSnapshot s;
  s.history = history_;
  s.messages_received = messages_received_;
  s.decode_failures = decode_failures_;
  s.stale_rejections = stale_rejections_;
  s.store_errors = store_errors_;
  s.deadline_commits = deadline_commits_;
  s.round_extensions = round_extensions_;
  s.aborted_rounds = aborted_rounds_;
  s.model_dim = global_model_.dim();
  s.global_weights.assign(global_model_.weights().begin(),
                          global_model_.weights().end());
  s.global_bias = global_model_.bias();
  // Canonical accumulator view: staged-but-unflushed updates (partial-sum
  // plane) are folded serially into a copy, so the snapshot is a total
  // function of the service on either plane and never references payload
  // models. At quiescent boundaries (where checkpoints are cut) pending_
  // is empty and this is a plain copy.
  ml::FedAvgAggregator merged = aggregator_;
  for (const StagedUpdate& staged : pending_) {
    const Status added = merged.Add(*staged.model, staged.samples);
    SIMDC_CHECK(added.ok(), "Snapshot: staged add failed: "
                                << added.error().ToString());
  }
  s.accumulator.assign(merged.accumulator().begin(),
                       merged.accumulator().end());
  s.accumulator_c1.assign(merged.compensation1().begin(),
                          merged.compensation1().end());
  s.accumulator_c2.assign(merged.compensation2().begin(),
                          merged.compensation2().end());
  s.bias_accumulator = merged.bias_accumulator();
  s.bias_accumulator_c1 = merged.bias_compensation1();
  s.bias_accumulator_c2 = merged.bias_compensation2();
  s.accumulator_samples = merged.total_samples();
  s.accumulator_clients = merged.clients();
  return s;
}

void AggregationService::RestoreSnapshot(const AggregationSnapshot& snapshot) {
  SIMDC_CHECK(snapshot.model_dim == config_.model_dim,
              "AggregationService::RestoreSnapshot: dimension mismatch ("
                  << snapshot.model_dim << " vs " << config_.model_dim << ")");
  history_ = snapshot.history;
  messages_received_ = static_cast<std::size_t>(snapshot.messages_received);
  decode_failures_ = static_cast<std::size_t>(snapshot.decode_failures);
  stale_rejections_ = static_cast<std::size_t>(snapshot.stale_rejections);
  store_errors_ = static_cast<std::size_t>(snapshot.store_errors);
  deadline_commits_ = static_cast<std::size_t>(snapshot.deadline_commits);
  round_extensions_ = static_cast<std::size_t>(snapshot.round_extensions);
  aborted_rounds_ = static_cast<std::size_t>(snapshot.aborted_rounds);
  ml::LrModel model(snapshot.model_dim);
  std::copy(snapshot.global_weights.begin(), snapshot.global_weights.end(),
            model.weights().begin());
  model.bias() = snapshot.global_bias;
  global_model_ = std::move(model);
  // The snapshot already holds the canonical merged accumulator (staged
  // entries folded in at Snapshot time), so recovery starts with nothing
  // staged.
  DiscardPending();
  aggregator_.Restore(snapshot.accumulator, snapshot.accumulator_c1,
                      snapshot.accumulator_c2, snapshot.bias_accumulator,
                      snapshot.bias_accumulator_c1,
                      snapshot.bias_accumulator_c2,
                      static_cast<std::size_t>(snapshot.accumulator_samples),
                      static_cast<std::size_t>(snapshot.accumulator_clients));
}

bool AggregationService::AggregateAt(SimTime when) {
  if (pending_clients() == 0) return false;
  if (config_.max_rounds != 0 && history_.size() >= config_.max_rounds) {
    return false;
  }
  FlushPending();
  auto model = aggregator_.Aggregate();
  if (!model.ok()) return false;

  AggregationRecord record;
  record.round = history_.size() + 1;
  record.time = when;
  record.clients = aggregator_.clients();
  record.samples = aggregator_.total_samples();
  record.model_blob = storage_.Put(model->ToBytes());

  global_model_ = std::move(*model);
  aggregator_.Reset();
  history_.push_back(record);
  // The round closed: retire its deadline before on_aggregate_ runs — the
  // callback chain may open the next round (OnRoundOpened), and that fresh
  // deadline must survive this cleanup.
  if (deadline_event_ != 0) {
    loop_.Cancel(deadline_event_);
    deadline_event_ = 0;
  }
  extensions_used_ = 0;
  if (on_aggregate_) on_aggregate_(record, global_model_);
  return true;
}

}  // namespace simdc::cloud
