// Canonical flow::PayloadDecoder over cloud storage: shared-ownership blob
// fetch (BlobStore::GetShared — no payload copy) + ml::LrModel decode.
//
// This is the shard-side half of the decoded payload plane (§V-A storage
// references make decode order-free work): dispatchers call Decode at
// dispatch-tick time, concurrently from N shard loops when fleets advance
// in lockstep on the worker pool. Thread safety comes for free — BlobStore
// is internally locked, blobs are immutable once Put, and the decoder
// itself is stateless.
#pragma once

#include "cloud/storage.h"
#include "flow/decoded_update.h"

namespace simdc::cloud {

class BlobModelDecoder final : public flow::PayloadDecoder {
 public:
  explicit BlobModelDecoder(const BlobStore& storage) : storage_(&storage) {}

  /// Never logs and never counts: failures are carried inside the update
  /// so the serial accumulate point can commit them after the staleness
  /// verdict, in delivery order (the legacy-parity contract).
  flow::DecodedUpdate Decode(flow::Message message) const override;

 private:
  const BlobStore* storage_;
};

}  // namespace simdc::cloud
