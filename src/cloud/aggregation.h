// Cloud-side aggregation service.
//
// §VI-C1: "In real federated learning scenarios, the cloud usually does
// not know the exact number of participating devices or samples per
// training round in advance. Therefore, conditions must be set to trigger
// aggregation. Common triggers include reaching a threshold of total edge
// training samples or reaching scheduled times."
//
// The service is a DeviceFlow CloudEndpoint: it receives messages,
// accumulates the referenced model updates into a FedAvg aggregator, and
// publishes a new global model whenever its trigger fires
// (sample-threshold — Fig. 9a — or scheduled — Fig. 9b / Fig. 11). On the
// decoded payload plane (flow::DecodePlane::kDecoded) the blob fetch +
// decode happened upstream, in parallel, and this serial side is only the
// staleness verdict, counter bookkeeping and the O(dim) fixed-order
// accumulate; on the legacy plane it fetches + decodes inline.
//
// Aggregate plane. On AggregatePlane::kPartialSum (the default) the
// decoded-plane O(dim) accumulate itself leaves the serial handler: each
// admitted update is staged as a {shared model, samples} entry in O(1),
// and staged entries are flushed into per-lane partial FedAvg aggregators
// on the worker pool, merged in fixed ascending-lane order. Per round the
// serial side does O(lanes·dim) merge work instead of O(msgs·dim) adds.
// The FedAvg cascade is order-invariant (see ml/fedavg.h), so lane count,
// flush timing and slicing are bit-invisible in every published model,
// counter and snapshot — kLegacy reproduces the pre-plane serial adds
// unchanged and is pinned by parity tests. Like the decode offload, the
// knob rides the decoded delivery path only: legacy-decode deliveries
// accumulate inline on either setting.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "cloud/storage.h"
#include "common/clock.h"
#include "flow/device_flow.h"
#include "ml/fedavg.h"
#include "ml/lr_model.h"
#include "sim/event_loop.h"

namespace simdc {
class ThreadPool;
}  // namespace simdc

namespace simdc::cloud {

/// Which aggregation plane the decoded delivery path runs
/// (core::FlExperimentConfig::aggregate_plane; spec: [execution]
/// aggregate_plane).
enum class AggregatePlane {
  /// Admitted updates are staged in O(1) and accumulated into per-lane
  /// partial aggregators on the worker pool; the serial side merges
  /// O(lanes·dim) in fixed ascending-lane order. Bit-identical to kLegacy
  /// (order-invariant cascade, see ml/fedavg.h).
  kPartialSum,
  /// Every admitted update runs its O(dim) FedAvgAggregator::Add inline in
  /// the serial delivery handler. Kept as the reference for parity tests.
  kLegacy,
};

enum class AggregationTrigger {
  /// Aggregate when accumulated training samples reach a threshold.
  kSampleThreshold,
  /// Aggregate on a fixed schedule regardless of arrivals.
  kScheduled,
};

struct AggregationConfig {
  std::uint32_t model_dim = 0;
  AggregationTrigger trigger = AggregationTrigger::kSampleThreshold;
  /// kSampleThreshold: total edge training samples that trigger a round.
  std::size_t sample_threshold = 1000;
  /// kScheduled: aggregation period.
  SimDuration schedule_period = Seconds(60.0);
  /// Stop after this many aggregations (0 = unbounded).
  std::size_t max_rounds = 0;
  /// Reject updates whose message.round is older than the current
  /// aggregation round (production FL servers discard stale updates;
  /// keeps round timing faithful to the traffic curve, Fig. 9).
  bool reject_stale = false;
  /// Graceful degradation: quorum/deadline policy for rounds on a churning
  /// fleet. Engages only when BOTH round_quorum > 0 and round_deadline > 0
  /// (the defaults reproduce pre-policy behavior exactly — no deadline
  /// event is ever scheduled). When a round opened via OnRoundOpened
  /// passes its deadline: quorum met -> commit with the updates on hand
  /// (a "deadline commit", i.e. a degraded round); quorum missed ->
  /// extend the deadline up to max_round_extensions times; extensions
  /// exhausted -> abort the round (partial updates discarded, the
  /// round-abort callback fires so the driver can advance).
  std::size_t round_quorum = 0;
  SimDuration round_deadline = 0;
  /// Per-extension grace (0 = reuse round_deadline).
  SimDuration round_extension = 0;
  std::size_t max_round_extensions = 1;
  /// Aggregation plane for decoded deliveries (see the file comment).
  /// Inert on the legacy decode path, which always accumulates inline.
  AggregatePlane aggregate_plane = AggregatePlane::kPartialSum;
};

/// One completed aggregation.
struct AggregationRecord {
  std::size_t round = 0;
  SimTime time = 0;
  std::size_t clients = 0;
  std::size_t samples = 0;
  /// Storage id of the published global model.
  BlobId model_blob;
};

/// Bit-exact image of an AggregationService mid-experiment — everything a
/// checkpoint needs to resume aggregation at a round boundary: completed
/// history, failure counters, the published global model's bits, and the
/// FedAvg accumulator (empty at quiescent boundaries, carried anyway so
/// the snapshot is a total function of the service).
struct AggregationSnapshot {
  std::vector<AggregationRecord> history;
  std::uint64_t messages_received = 0;
  std::uint64_t decode_failures = 0;
  std::uint64_t stale_rejections = 0;
  std::uint64_t store_errors = 0;
  /// Degradation accounting (quorum/deadline policy).
  std::uint64_t deadline_commits = 0;
  std::uint64_t round_extensions = 0;
  std::uint64_t aborted_rounds = 0;
  std::uint32_t model_dim = 0;
  std::vector<float> global_weights;
  float global_bias = 0.0f;
  std::vector<double> accumulator;
  /// Compensation planes of the order-invariant cascade (ml/fedavg.h);
  /// carried bit-exactly so recovery resumes the same represented sum.
  std::vector<double> accumulator_c1;
  std::vector<double> accumulator_c2;
  double bias_accumulator = 0.0;
  double bias_accumulator_c1 = 0.0;
  double bias_accumulator_c2 = 0.0;
  std::uint64_t accumulator_samples = 0;
  std::uint64_t accumulator_clients = 0;
};

class AggregationService final : public flow::CloudEndpoint {
 public:
  AggregationService(sim::EventLoop& loop, BlobStore& storage,
                     AggregationConfig config);

  /// Worker pool for the partial-sum plane's parallel flush. Optional: with
  /// no pool (or a 1-thread pool) the flush accumulates serially, which is
  /// bit-identical (order-invariant cascade). The pool must outlive the
  /// service; flushes run only while the pool is otherwise idle (dispatch
  /// handlers run on the serial side, after any lockstep barrier).
  void set_thread_pool(ThreadPool* pool) { pool_ = pool; }

  /// Arms the scheduled trigger (no-op for sample-threshold).
  void Start();
  void Stop() { stopped_ = true; }

  /// Round lifecycle hook for the quorum/deadline policy: the driver (the
  /// FL engine) calls this when a round opens at `t0`. Arms the round's
  /// deadline event at t0 + round_deadline; a no-op when the policy is
  /// disabled, so drivers can call it unconditionally.
  void OnRoundOpened(SimTime t0);

  /// DeviceFlow delivery (legacy plane): fetch blob, decode model,
  /// accumulate — all inside this serial handler.
  void Deliver(const flow::Message& message, SimTime arrival) override;

  /// Batched DeviceFlow delivery: one dispatch tick in a single call. Each
  /// message is accumulated in order with its own arrival stamp, so
  /// threshold-triggered aggregations record the same round time the
  /// per-message path would (the triggering message's arrival).
  void DeliverBatch(std::span<const flow::Message> messages,
                    std::span<const SimTime> arrivals) override;

  /// Decoded-plane delivery: payloads were fetched + decoded upstream
  /// (dispatch ticks, possibly on shard workers), so the serial side is
  /// only the staleness verdict, counter commits and the O(dim)
  /// fixed-order accumulate — it never touches BlobStore or FromBytes.
  /// Counter semantics are bit-identical to the legacy plane: a decode
  /// failure commits only if the update survives the reject_stale check,
  /// in delivery order (see flow::DecodedUpdate).
  void DeliverDecodedBatch(std::span<const flow::DecodedUpdate> updates,
                           std::span<const SimTime> arrivals) override;

  const ml::LrModel& global_model() const { return global_model_; }
  void SetGlobalModel(ml::LrModel model) { global_model_ = std::move(model); }

  const std::vector<AggregationRecord>& history() const { return history_; }
  std::size_t rounds_completed() const { return history_.size(); }
  std::size_t messages_received() const { return messages_received_; }
  std::size_t decode_failures() const { return decode_failures_; }
  std::size_t stale_rejections() const { return stale_rejections_; }
  /// Updates dropped because the store failed to serve their payload with
  /// anything other than kNotFound (I/O faults) — never bundled into
  /// decode_failures, so existing accounting is unchanged when no store
  /// faults occur.
  std::size_t store_errors() const { return store_errors_; }
  /// Samples/clients admitted to the open round: the aggregator's totals
  /// plus entries staged but not yet flushed (partial-sum plane). Matches
  /// the legacy plane's aggregator totals update-for-update.
  std::size_t pending_samples() const {
    return aggregator_.total_samples() + staged_samples_;
  }
  std::size_t pending_clients() const {
    return aggregator_.clients() + staged_clients_;
  }
  /// Degraded rounds committed at their deadline with quorum met.
  std::size_t deadline_commits() const { return deadline_commits_; }
  /// Deadline extensions granted to quorum-short rounds.
  std::size_t round_extensions() const { return round_extensions_; }
  /// Rounds aborted after exhausting extensions below quorum (their
  /// partial updates were discarded).
  std::size_t aborted_rounds() const { return aborted_rounds_; }

  /// Profiling (wall-clock, NOT part of any bit-identity surface): time
  /// spent in the O(dim) accumulate — inline Adds on the legacy plane,
  /// flush (lane accumulate + ascending merge) on the partial-sum plane.
  std::uint64_t serial_accumulate_ns() const { return serial_accumulate_ns_; }
  /// Batched-delivery handler time minus the accumulate share: admission,
  /// staleness verdicts, counter commits, staging.
  std::uint64_t serial_bookkeeping_ns() const { return serial_bookkeeping_ns_; }

  /// Bit-exact state image for checkpointing (see AggregationSnapshot).
  AggregationSnapshot Snapshot() const;
  /// Restores the service to a snapshot (recovery path). The snapshot's
  /// model_dim must match this service's configured dimension.
  void RestoreSnapshot(const AggregationSnapshot& snapshot);

  /// Fired after each aggregation with the new global model.
  using AggregateCallback =
      std::function<void(const AggregationRecord&, const ml::LrModel&)>;
  void set_on_aggregate(AggregateCallback callback) {
    on_aggregate_ = std::move(callback);
  }

  /// Fired when a round is aborted under the quorum/deadline policy, with
  /// the abort time; the driver records the degraded round and advances.
  using RoundAbortCallback = std::function<void(SimTime)>;
  void set_on_round_aborted(RoundAbortCallback callback) {
    on_round_aborted_ = std::move(callback);
  }

  /// Forces an aggregation now (used at experiment teardown).
  bool AggregateNow() { return AggregateAt(loop_.Now()); }

 private:
  bool DegradationActive() const {
    return config_.round_quorum > 0 && config_.round_deadline > 0;
  }
  void ArmDeadline(SimTime when);
  /// Deadline-event body: commit (quorum met), extend, or abort.
  void OnDeadline();
  void ArmSchedule();
  /// Shared delivery body; `arrival` is the message's wire arrival stamp
  /// (== loop time in the per-message path, possibly ahead of loop time
  /// inside a batched tick).
  void DeliverOne(const flow::Message& message, SimTime arrival);
  /// Decoded-plane delivery body: admit (staleness), commit deferred
  /// decode failures, accumulate.
  void DeliverDecodedOne(const flow::DecodedUpdate& update, SimTime arrival);
  /// Shared tail of both delivery bodies: weighted accumulate + the
  /// sample-threshold trigger.
  void Accumulate(const ml::LrModel& model, const flow::Message& message,
                  SimTime arrival);
  /// Partial-sum plane tail: O(1) admission + staging, threshold check on
  /// the combined (flushed + staged) totals, capacity-bounded flush.
  void AccumulateDecoded(const flow::DecodedUpdate& update, SimTime arrival);
  /// Drains staged entries into the aggregator: serially without a pool,
  /// else via per-lane partials on the pool merged in ascending-lane order.
  /// Bit-invisible either way (order-invariant cascade).
  void FlushPending();
  /// Drops staged entries (round abort / snapshot restore).
  void DiscardPending();
  /// Aggregates with an explicit round timestamp (`when` is recorded as
  /// AggregationRecord::time).
  bool AggregateAt(SimTime when);

  /// One admitted-but-unflushed update on the partial-sum plane.
  struct StagedUpdate {
    std::shared_ptr<const ml::LrModel> model;
    std::size_t samples = 0;
  };
  /// Flush whenever this many entries are staged: bounds shared-payload
  /// retention and keeps flush slices cache-sized, without changing any
  /// published bit (flush timing is inside the invariance window).
  static constexpr std::size_t kFlushCap = 256;
  /// Partial-aggregator lane ceiling for one flush.
  static constexpr std::size_t kMaxLanes = 8;

  sim::EventLoop& loop_;
  BlobStore& storage_;
  AggregationConfig config_;
  ml::FedAvgAggregator aggregator_;
  ml::LrModel global_model_;
  std::vector<AggregationRecord> history_;
  AggregateCallback on_aggregate_;
  RoundAbortCallback on_round_aborted_;
  std::size_t messages_received_ = 0;
  std::size_t decode_failures_ = 0;
  std::size_t stale_rejections_ = 0;
  std::size_t store_errors_ = 0;
  /// Quorum/deadline policy state: the pending deadline event (cancelled
  /// when the round closes by trigger), the history length it was armed
  /// against (stale-event guard), and extensions used this round.
  sim::EventHandle deadline_event_ = 0;
  std::size_t deadline_round_ = 0;
  std::size_t extensions_used_ = 0;
  std::size_t deadline_commits_ = 0;
  std::size_t round_extensions_ = 0;
  std::size_t aborted_rounds_ = 0;
  /// Partial-sum plane state: staged updates awaiting a flush, their
  /// running totals (mirroring what the legacy plane's aggregator would
  /// hold), the reusable per-lane partial aggregators, and the pool.
  std::vector<StagedUpdate> pending_;
  std::size_t staged_samples_ = 0;
  std::size_t staged_clients_ = 0;
  std::vector<ml::FedAvgAggregator> partials_;
  ThreadPool* pool_ = nullptr;
  /// Wall-clock profiling totals (see the accessors).
  std::uint64_t serial_accumulate_ns_ = 0;
  std::uint64_t serial_bookkeeping_ns_ = 0;
  bool stopped_ = false;
};

}  // namespace simdc::cloud
