// Cloud-side aggregation service.
//
// §VI-C1: "In real federated learning scenarios, the cloud usually does
// not know the exact number of participating devices or samples per
// training round in advance. Therefore, conditions must be set to trigger
// aggregation. Common triggers include reaching a threshold of total edge
// training samples or reaching scheduled times."
//
// The service is a DeviceFlow CloudEndpoint: it receives messages,
// accumulates the referenced model updates into a FedAvg aggregator, and
// publishes a new global model whenever its trigger fires
// (sample-threshold — Fig. 9a — or scheduled — Fig. 9b / Fig. 11). On the
// decoded payload plane (flow::DecodePlane::kDecoded) the blob fetch +
// decode happened upstream, in parallel, and this serial side is only the
// staleness verdict, counter bookkeeping and the O(dim) fixed-order
// accumulate; on the legacy plane it fetches + decodes inline.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "cloud/storage.h"
#include "common/clock.h"
#include "flow/device_flow.h"
#include "ml/fedavg.h"
#include "ml/lr_model.h"
#include "sim/event_loop.h"

namespace simdc::cloud {

enum class AggregationTrigger {
  /// Aggregate when accumulated training samples reach a threshold.
  kSampleThreshold,
  /// Aggregate on a fixed schedule regardless of arrivals.
  kScheduled,
};

struct AggregationConfig {
  std::uint32_t model_dim = 0;
  AggregationTrigger trigger = AggregationTrigger::kSampleThreshold;
  /// kSampleThreshold: total edge training samples that trigger a round.
  std::size_t sample_threshold = 1000;
  /// kScheduled: aggregation period.
  SimDuration schedule_period = Seconds(60.0);
  /// Stop after this many aggregations (0 = unbounded).
  std::size_t max_rounds = 0;
  /// Reject updates whose message.round is older than the current
  /// aggregation round (production FL servers discard stale updates;
  /// keeps round timing faithful to the traffic curve, Fig. 9).
  bool reject_stale = false;
};

/// One completed aggregation.
struct AggregationRecord {
  std::size_t round = 0;
  SimTime time = 0;
  std::size_t clients = 0;
  std::size_t samples = 0;
  /// Storage id of the published global model.
  BlobId model_blob;
};

/// Bit-exact image of an AggregationService mid-experiment — everything a
/// checkpoint needs to resume aggregation at a round boundary: completed
/// history, failure counters, the published global model's bits, and the
/// FedAvg accumulator (empty at quiescent boundaries, carried anyway so
/// the snapshot is a total function of the service).
struct AggregationSnapshot {
  std::vector<AggregationRecord> history;
  std::uint64_t messages_received = 0;
  std::uint64_t decode_failures = 0;
  std::uint64_t stale_rejections = 0;
  std::uint64_t store_errors = 0;
  std::uint32_t model_dim = 0;
  std::vector<float> global_weights;
  float global_bias = 0.0f;
  std::vector<double> accumulator;
  double bias_accumulator = 0.0;
  std::uint64_t accumulator_samples = 0;
  std::uint64_t accumulator_clients = 0;
};

class AggregationService final : public flow::CloudEndpoint {
 public:
  AggregationService(sim::EventLoop& loop, BlobStore& storage,
                     AggregationConfig config);

  /// Arms the scheduled trigger (no-op for sample-threshold).
  void Start();
  void Stop() { stopped_ = true; }

  /// DeviceFlow delivery (legacy plane): fetch blob, decode model,
  /// accumulate — all inside this serial handler.
  void Deliver(const flow::Message& message, SimTime arrival) override;

  /// Batched DeviceFlow delivery: one dispatch tick in a single call. Each
  /// message is accumulated in order with its own arrival stamp, so
  /// threshold-triggered aggregations record the same round time the
  /// per-message path would (the triggering message's arrival).
  void DeliverBatch(std::span<const flow::Message> messages,
                    std::span<const SimTime> arrivals) override;

  /// Decoded-plane delivery: payloads were fetched + decoded upstream
  /// (dispatch ticks, possibly on shard workers), so the serial side is
  /// only the staleness verdict, counter commits and the O(dim)
  /// fixed-order accumulate — it never touches BlobStore or FromBytes.
  /// Counter semantics are bit-identical to the legacy plane: a decode
  /// failure commits only if the update survives the reject_stale check,
  /// in delivery order (see flow::DecodedUpdate).
  void DeliverDecodedBatch(std::span<const flow::DecodedUpdate> updates,
                           std::span<const SimTime> arrivals) override;

  const ml::LrModel& global_model() const { return global_model_; }
  void SetGlobalModel(ml::LrModel model) { global_model_ = std::move(model); }

  const std::vector<AggregationRecord>& history() const { return history_; }
  std::size_t rounds_completed() const { return history_.size(); }
  std::size_t messages_received() const { return messages_received_; }
  std::size_t decode_failures() const { return decode_failures_; }
  std::size_t stale_rejections() const { return stale_rejections_; }
  /// Updates dropped because the store failed to serve their payload with
  /// anything other than kNotFound (I/O faults) — never bundled into
  /// decode_failures, so existing accounting is unchanged when no store
  /// faults occur.
  std::size_t store_errors() const { return store_errors_; }
  std::size_t pending_samples() const { return aggregator_.total_samples(); }

  /// Bit-exact state image for checkpointing (see AggregationSnapshot).
  AggregationSnapshot Snapshot() const;
  /// Restores the service to a snapshot (recovery path). The snapshot's
  /// model_dim must match this service's configured dimension.
  void RestoreSnapshot(const AggregationSnapshot& snapshot);

  /// Fired after each aggregation with the new global model.
  using AggregateCallback =
      std::function<void(const AggregationRecord&, const ml::LrModel&)>;
  void set_on_aggregate(AggregateCallback callback) {
    on_aggregate_ = std::move(callback);
  }

  /// Forces an aggregation now (used at experiment teardown).
  bool AggregateNow() { return AggregateAt(loop_.Now()); }

 private:
  void ArmSchedule();
  /// Shared delivery body; `arrival` is the message's wire arrival stamp
  /// (== loop time in the per-message path, possibly ahead of loop time
  /// inside a batched tick).
  void DeliverOne(const flow::Message& message, SimTime arrival);
  /// Decoded-plane delivery body: admit (staleness), commit deferred
  /// decode failures, accumulate.
  void DeliverDecodedOne(const flow::DecodedUpdate& update, SimTime arrival);
  /// Shared tail of both delivery bodies: weighted accumulate + the
  /// sample-threshold trigger.
  void Accumulate(const ml::LrModel& model, const flow::Message& message,
                  SimTime arrival);
  /// Aggregates with an explicit round timestamp (`when` is recorded as
  /// AggregationRecord::time).
  bool AggregateAt(SimTime when);

  sim::EventLoop& loop_;
  BlobStore& storage_;
  AggregationConfig config_;
  ml::FedAvgAggregator aggregator_;
  ml::LrModel global_model_;
  std::vector<AggregationRecord> history_;
  AggregateCallback on_aggregate_;
  std::size_t messages_received_ = 0;
  std::size_t decode_failures_ = 0;
  std::size_t stale_rejections_ = 0;
  std::size_t store_errors_ = 0;
  bool stopped_ = false;
};

}  // namespace simdc::cloud
