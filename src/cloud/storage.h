// Shared cloud storage (blob store).
//
// §V-A: devices "upload computation results to storage upon task
// completion and transmit messages to cloud services. Cloud services then
// retrieve the corresponding data from storage based on the received
// messages." The blob store is that shared storage: content-addressed by
// an opaque BlobId carried inside DeviceFlow messages.
//
// Memory plane: payload blobs (the O(msgs)-per-round bulk) are packed into
// a refcounted bump arena (common/arena.h) via PutPooled, so steady-state
// rounds touch the heap O(1) times; long-lived blobs (published global
// models) keep the standalone Put path. Both produce the same SharedBlob
// view type, and both honor the Delete-while-held guarantee — a SharedBlob
// owns a reference to its backing storage (arena block or standalone
// buffer), never the other way round.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/arena.h"
#include "common/error.h"
#include "common/ids.h"

namespace simdc::cloud {

/// Observer of BlobStore mutations — the seam the durability plane hangs
/// off (persist::DurableStore records every Put/PutPooled/Delete into its
/// append-only blob log). Callbacks run under the store mutex, after the
/// mutation is applied; implementations must be cheap (buffer, don't do
/// I/O) and must not call back into the store.
class BlobJournal {
 public:
  virtual ~BlobJournal() = default;
  virtual void OnPut(BlobId id, std::span<const std::byte> bytes) = 0;
  virtual void OnDelete(BlobId id) = 0;
};

/// Shared-ownership view of a stored blob (see BlobStore::GetShared).
/// Value-semantic: copying is one shared_ptr copy, no payload copy. The
/// owner handle keeps the backing bytes alive — a standalone buffer for
/// Put blobs, a whole arena block for PutPooled blobs — so the view stays
/// valid (and bit-stable) across Delete, ReclaimArena, and store
/// destruction while any holder remains.
class SharedBlob {
 public:
  SharedBlob() = default;
  SharedBlob(std::shared_ptr<const void> owner, const std::byte* data,
             std::size_t size)
      : owner_(std::move(owner)), data_(data), size_(size) {}

  const std::byte* data() const { return data_; }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  std::span<const std::byte> span() const { return {data_, size_}; }
  const std::byte& operator[](std::size_t i) const { return data_[i]; }
  const std::byte* begin() const { return data_; }
  const std::byte* end() const { return data_ + size_; }
  explicit operator bool() const { return owner_ != nullptr; }

  /// Identity of the backing storage (aliasing assertions in tests).
  const void* owner() const { return owner_.get(); }

 private:
  std::shared_ptr<const void> owner_;
  const std::byte* data_ = nullptr;
  std::size_t size_ = 0;
};

/// All operations are thread-safe; blobs are immutable once Put, so a
/// SharedBlob handed out by GetShared stays valid (and bit-stable) even if
/// the blob is Deleted, its arena block reclaimed, or the store destroyed
/// while readers hold it — the property that lets N shard decoders read
/// concurrently with zero copies while the serial plane keeps publishing
/// new models.
class BlobStore {
 public:
  /// Stores a blob in a standalone buffer; returns its id. The path for
  /// long-lived blobs (published global models) whose lifetime should not
  /// pin an arena block.
  BlobId Put(std::vector<std::byte> bytes);

  /// Stores a blob by copying `bytes` into the pooled arena — one bump
  /// allocation, O(1) amortized heap traffic. The path for per-round
  /// payload uploads; pair with ReclaimArena at round boundaries so blocks
  /// whose blobs were all Deleted get recycled instead of freed.
  BlobId PutPooled(std::span<const std::byte> bytes);

  /// Fetches a blob (copy; the store stays authoritative).
  Result<std::vector<std::byte>> Get(BlobId id) const;

  /// Fetches a blob by shared ownership — the hot-path read: one mutex
  /// acquisition and one shared_ptr copy, no payload copy.
  Result<SharedBlob> GetShared(BlobId id) const;

  /// Removes a blob. Typed error paths: kNotFound for an id the store has
  /// never seen or already deleted — callers that track live ids (the
  /// engine's round reclaim) treat it as a bookkeeping bug, not a silent
  /// miss.
  Status Delete(BlobId id);
  bool Contains(BlobId id) const;

  /// Attaches (or detaches, with nullptr) the mutation journal. The
  /// durability plane attaches AFTER any recovery replay so replayed
  /// mutations are not re-journaled.
  void set_journal(BlobJournal* journal);

  /// Read-fault hook for store-I/O-error testing: consulted by Get /
  /// GetShared before the lookup; a non-OK return is surfaced to the
  /// caller as that error (distinct from kNotFound — see
  /// BlobModelDecoder's failure mapping).
  using ReadFaultHook = std::function<Status(BlobId)>;
  void set_read_fault_hook(ReadFaultHook hook);

  /// Recovery-replay insert: stores `bytes` under an explicit id (log
  /// records carry the ids the original run assigned). Bumps next_id_ past
  /// `id`, counts into total_bytes_ but NOT bytes_written_ — cumulative
  /// traffic counters are restored separately (RestoreTrafficCounters), so
  /// a recovered store reports the original run's traffic, not the
  /// replay's. Never journaled.
  void RestoreBlob(BlobId id, std::vector<std::byte> bytes);

  /// Pins the id counter (recovery restores the checkpoint's cursor so
  /// re-executed rounds re-assign identical blob ids).
  void SetNextId(std::uint64_t next_id);
  /// The id the next Put will assign (checkpointed as the blob-id cursor).
  std::uint64_t next_id() const;
  /// Restores cumulative traffic counters from a checkpoint.
  void RestoreTrafficCounters(std::size_t written, std::size_t read);

  /// Round-boundary arena maintenance: recycles arena blocks that no live
  /// blob or outstanding SharedBlob references (see ByteArena::Reclaim).
  /// Returns the number of blocks recycled. Safe to call at any time —
  /// blocks still referenced are left alone.
  std::size_t ReclaimArena();

  std::size_t blob_count() const;
  /// Total stored bytes (capacity planning / experiment accounting).
  std::size_t total_bytes() const;
  /// Cumulative bytes ever written (upload traffic seen by storage).
  std::size_t bytes_written() const;
  /// Cumulative bytes ever read (download traffic served).
  std::size_t bytes_read() const;
  /// Arena slabs ever heap-allocated (the O(1)-steady-state gate).
  std::size_t arena_blocks_created() const;
  /// Arena blocks recycled by ReclaimArena (cumulative reuse events).
  std::size_t arena_blocks_recycled() const;

 private:
  mutable std::mutex mutex_;
  std::unordered_map<BlobId, SharedBlob> blobs_;
  ByteArena arena_;
  BlobJournal* journal_ = nullptr;
  ReadFaultHook read_fault_hook_;
  std::uint64_t next_id_ = 1;
  std::size_t total_bytes_ = 0;
  std::size_t bytes_written_ = 0;
  mutable std::size_t bytes_read_ = 0;
};

}  // namespace simdc::cloud
