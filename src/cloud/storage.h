// Shared cloud storage (blob store).
//
// §V-A: devices "upload computation results to storage upon task
// completion and transmit messages to cloud services. Cloud services then
// retrieve the corresponding data from storage based on the received
// messages." The blob store is that shared storage: content-addressed by
// an opaque BlobId carried inside DeviceFlow messages.
//
// Memory plane: payload blobs (the O(msgs)-per-round bulk) are packed into
// a refcounted bump arena (common/arena.h) via PutPooled, so steady-state
// rounds touch the heap O(1) times; long-lived blobs (published global
// models) keep the standalone Put path. Both produce the same SharedBlob
// view type, and both honor the Delete-while-held guarantee — a SharedBlob
// owns a reference to its backing storage (arena block or standalone
// buffer), never the other way round.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/arena.h"
#include "common/error.h"
#include "common/ids.h"

namespace simdc::cloud {

/// Shared-ownership view of a stored blob (see BlobStore::GetShared).
/// Value-semantic: copying is one shared_ptr copy, no payload copy. The
/// owner handle keeps the backing bytes alive — a standalone buffer for
/// Put blobs, a whole arena block for PutPooled blobs — so the view stays
/// valid (and bit-stable) across Delete, ReclaimArena, and store
/// destruction while any holder remains.
class SharedBlob {
 public:
  SharedBlob() = default;
  SharedBlob(std::shared_ptr<const void> owner, const std::byte* data,
             std::size_t size)
      : owner_(std::move(owner)), data_(data), size_(size) {}

  const std::byte* data() const { return data_; }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  std::span<const std::byte> span() const { return {data_, size_}; }
  const std::byte& operator[](std::size_t i) const { return data_[i]; }
  const std::byte* begin() const { return data_; }
  const std::byte* end() const { return data_ + size_; }
  explicit operator bool() const { return owner_ != nullptr; }

  /// Identity of the backing storage (aliasing assertions in tests).
  const void* owner() const { return owner_.get(); }

 private:
  std::shared_ptr<const void> owner_;
  const std::byte* data_ = nullptr;
  std::size_t size_ = 0;
};

/// All operations are thread-safe; blobs are immutable once Put, so a
/// SharedBlob handed out by GetShared stays valid (and bit-stable) even if
/// the blob is Deleted, its arena block reclaimed, or the store destroyed
/// while readers hold it — the property that lets N shard decoders read
/// concurrently with zero copies while the serial plane keeps publishing
/// new models.
class BlobStore {
 public:
  /// Stores a blob in a standalone buffer; returns its id. The path for
  /// long-lived blobs (published global models) whose lifetime should not
  /// pin an arena block.
  BlobId Put(std::vector<std::byte> bytes);

  /// Stores a blob by copying `bytes` into the pooled arena — one bump
  /// allocation, O(1) amortized heap traffic. The path for per-round
  /// payload uploads; pair with ReclaimArena at round boundaries so blocks
  /// whose blobs were all Deleted get recycled instead of freed.
  BlobId PutPooled(std::span<const std::byte> bytes);

  /// Fetches a blob (copy; the store stays authoritative).
  Result<std::vector<std::byte>> Get(BlobId id) const;

  /// Fetches a blob by shared ownership — the hot-path read: one mutex
  /// acquisition and one shared_ptr copy, no payload copy.
  Result<SharedBlob> GetShared(BlobId id) const;

  Status Delete(BlobId id);
  bool Contains(BlobId id) const;

  /// Round-boundary arena maintenance: recycles arena blocks that no live
  /// blob or outstanding SharedBlob references (see ByteArena::Reclaim).
  /// Returns the number of blocks recycled. Safe to call at any time —
  /// blocks still referenced are left alone.
  std::size_t ReclaimArena();

  std::size_t blob_count() const;
  /// Total stored bytes (capacity planning / experiment accounting).
  std::size_t total_bytes() const;
  /// Cumulative bytes ever written (upload traffic seen by storage).
  std::size_t bytes_written() const;
  /// Cumulative bytes ever read (download traffic served).
  std::size_t bytes_read() const;
  /// Arena slabs ever heap-allocated (the O(1)-steady-state gate).
  std::size_t arena_blocks_created() const;
  /// Arena blocks recycled by ReclaimArena (cumulative reuse events).
  std::size_t arena_blocks_recycled() const;

 private:
  mutable std::mutex mutex_;
  std::unordered_map<BlobId, SharedBlob> blobs_;
  ByteArena arena_;
  std::uint64_t next_id_ = 1;
  std::size_t total_bytes_ = 0;
  std::size_t bytes_written_ = 0;
  mutable std::size_t bytes_read_ = 0;
};

}  // namespace simdc::cloud
