// Shared cloud storage (blob store).
//
// §V-A: devices "upload computation results to storage upon task
// completion and transmit messages to cloud services. Cloud services then
// retrieve the corresponding data from storage based on the received
// messages." The blob store is that shared storage: content-addressed by
// an opaque BlobId carried inside DeviceFlow messages.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/error.h"
#include "common/ids.h"

namespace simdc::cloud {

/// Shared-ownership view of a stored blob (see BlobStore::GetShared).
using SharedBlob = std::shared_ptr<const std::vector<std::byte>>;

/// All operations are thread-safe; blobs are immutable once Put, so a
/// SharedBlob handed out by GetShared stays valid (and bit-stable) even if
/// the blob is Deleted or the store destroyed while readers hold it — the
/// property that lets N shard decoders read concurrently with zero copies
/// while the serial plane keeps publishing new models.
class BlobStore {
 public:
  /// Stores a blob; returns its id.
  BlobId Put(std::vector<std::byte> bytes);

  /// Fetches a blob (copy; the store stays authoritative).
  Result<std::vector<std::byte>> Get(BlobId id) const;

  /// Fetches a blob by shared ownership — the hot-path read: one mutex
  /// acquisition and one shared_ptr copy, no payload copy.
  Result<SharedBlob> GetShared(BlobId id) const;

  Status Delete(BlobId id);
  bool Contains(BlobId id) const;

  std::size_t blob_count() const;
  /// Total stored bytes (capacity planning / experiment accounting).
  std::size_t total_bytes() const;
  /// Cumulative bytes ever written (upload traffic seen by storage).
  std::size_t bytes_written() const;
  /// Cumulative bytes ever read (download traffic served).
  std::size_t bytes_read() const;

 private:
  mutable std::mutex mutex_;
  std::unordered_map<BlobId, SharedBlob> blobs_;
  std::uint64_t next_id_ = 1;
  std::size_t total_bytes_ = 0;
  std::size_t bytes_written_ = 0;
  mutable std::size_t bytes_read_ = 0;
};

}  // namespace simdc::cloud
