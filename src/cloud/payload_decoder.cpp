#include "cloud/payload_decoder.h"

#include <utility>

namespace simdc::cloud {

flow::DecodedUpdate BlobModelDecoder::Decode(flow::Message message) const {
  flow::DecodedUpdate update;
  update.message = std::move(message);
  auto blob = storage_->GetShared(update.message.payload);
  if (!blob.ok()) {
    // kNotFound is the semantic miss (reclaimed / never-written payload);
    // anything else is the store failing to serve a blob it may well hold
    // — a different animal for failure accounting.
    update.failure = blob.error().code() == ErrorCode::kNotFound
                         ? flow::DecodedUpdate::Failure::kMissingBlob
                         : flow::DecodedUpdate::Failure::kStoreError;
    update.error = blob.error();
    return update;
  }
  auto model = ml::LrModel::FromBytesShared(blob->span());
  if (!model.ok()) {
    update.failure = flow::DecodedUpdate::Failure::kUndecodable;
    update.error = model.error();
    return update;
  }
  update.model = std::move(*model);
  return update;
}

}  // namespace simdc::cloud
