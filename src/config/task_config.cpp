#include "config/task_config.h"

#include <algorithm>
#include <initializer_list>

#include "common/string_util.h"
#include "flow/rate_functions.h"

namespace simdc::config {
namespace {

std::string Lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return out;
}

}  // namespace

Result<IniDocument> ParseIni(std::string_view text) {
  IniDocument doc;
  std::string section;
  std::size_t line_number = 0;
  for (const auto& raw_line : SplitLines(text)) {
    ++line_number;
    // Strip comments (# or ;) and whitespace.
    std::string line = raw_line;
    for (const char marker : {'#', ';'}) {
      const auto pos = line.find(marker);
      if (pos != std::string::npos) line.erase(pos);
    }
    const auto trimmed = TrimWhitespace(line);
    if (trimmed.empty()) continue;

    if (trimmed.front() == '[') {
      if (trimmed.back() != ']' || trimmed.size() < 3) {
        return ParseError(StrFormat("line %zu: malformed section header '%s'",
                                    line_number,
                                    std::string(trimmed).c_str()));
      }
      section = std::string(
          TrimWhitespace(trimmed.substr(1, trimmed.size() - 2)));
      if (section.empty()) {
        return ParseError(StrFormat("line %zu: empty section name", line_number));
      }
      doc[section];  // materialize even if empty
      continue;
    }

    const auto eq = trimmed.find('=');
    if (eq == std::string_view::npos) {
      return ParseError(StrFormat("line %zu: expected 'key = value', got '%s'",
                                  line_number, std::string(trimmed).c_str()));
    }
    const auto key = TrimWhitespace(trimmed.substr(0, eq));
    const auto value = TrimWhitespace(trimmed.substr(eq + 1));
    if (key.empty()) {
      return ParseError(StrFormat("line %zu: empty key", line_number));
    }
    doc[section][std::string(key)] = std::string(value);
  }
  return doc;
}

Result<std::string> GetString(const IniDocument& doc,
                              const std::string& section,
                              const std::string& key) {
  const auto sit = doc.find(section);
  if (sit == doc.end()) return NotFound("missing section [" + section + "]");
  const auto kit = sit->second.find(key);
  if (kit == sit->second.end()) {
    return NotFound("missing key '" + key + "' in [" + section + "]");
  }
  return kit->second;
}

Result<std::int64_t> GetInt(const IniDocument& doc, const std::string& section,
                            const std::string& key) {
  auto text = GetString(doc, section, key);
  if (!text.ok()) return text.error();
  const auto value = ParseInt(*text);
  if (!value) {
    return ParseError("[" + section + "] " + key + " = '" + *text +
                      "' is not an integer");
  }
  return *value;
}

Result<double> GetDouble(const IniDocument& doc, const std::string& section,
                         const std::string& key) {
  auto text = GetString(doc, section, key);
  if (!text.ok()) return text.error();
  const auto value = ParseDouble(*text);
  if (!value) {
    return ParseError("[" + section + "] " + key + " = '" + *text +
                      "' is not a number");
  }
  return *value;
}

Result<std::vector<std::size_t>> GetSizeList(const IniDocument& doc,
                                             const std::string& section,
                                             const std::string& key) {
  auto text = GetString(doc, section, key);
  if (!text.ok()) return text.error();
  std::vector<std::size_t> values;
  for (const auto& field : Split(*text, ',')) {
    const auto value = ParseInt(field);
    if (!value || *value < 0) {
      return ParseError("[" + section + "] " + key + ": bad list element '" +
                        field + "'");
    }
    values.push_back(static_cast<std::size_t>(*value));
  }
  if (values.empty()) {
    return ParseError("[" + section + "] " + key + ": empty list");
  }
  return values;
}

Result<sched::TaskSpec> LoadTaskSpec(const IniDocument& doc) {
  sched::TaskSpec task;
  if (auto name = GetString(doc, "task", "name"); name.ok()) {
    task.name = *name;
  }
  if (auto priority = GetInt(doc, "task", "priority"); priority.ok()) {
    task.priority = static_cast<int>(*priority);
  }
  if (auto rounds = GetInt(doc, "task", "rounds"); rounds.ok()) {
    if (*rounds <= 0) return InvalidArgument("[task] rounds must be >= 1");
    task.rounds = static_cast<std::size_t>(*rounds);
  }

  for (const auto& [section, keys] : doc) {
    if (!StartsWith(section, "devices.")) continue;
    const std::string grade_name = Lower(section.substr(8));
    sched::DeviceRequirement requirement;
    if (grade_name == "high") {
      requirement.grade = device::DeviceGrade::kHigh;
    } else if (grade_name == "low") {
      requirement.grade = device::DeviceGrade::kLow;
    } else {
      return InvalidArgument("unknown device grade section [" + section + "]");
    }
    auto count = GetInt(doc, section, "count");
    if (!count.ok()) return count.error();
    if (*count < 0) return InvalidArgument("[" + section + "] count < 0");
    requirement.num_devices = static_cast<std::size_t>(*count);
    if (auto q = GetInt(doc, section, "benchmarking"); q.ok()) {
      requirement.benchmarking_phones = static_cast<std::size_t>(*q);
    }
    if (auto f = GetInt(doc, section, "logical_bundles"); f.ok()) {
      requirement.logical_bundles = static_cast<std::size_t>(*f);
    }
    if (auto m = GetInt(doc, section, "phones"); m.ok()) {
      requirement.phones = static_cast<std::size_t>(*m);
    }
    if (requirement.benchmarking_phones > requirement.num_devices) {
      return InvalidArgument("[" + section + "] benchmarking > count");
    }
    task.requirements.push_back(requirement);
  }
  if (task.requirements.empty()) {
    return InvalidArgument("task spec has no [devices.*] section");
  }
  return task;
}

Result<flow::DispatchStrategy> LoadStrategy(const IniDocument& doc) {
  auto kind = GetString(doc, "traffic", "strategy");
  if (!kind.ok()) return kind.error();
  const std::string strategy = Lower(*kind);

  if (strategy == "realtime") {
    flow::RealtimeAccumulated realtime;
    if (auto thresholds = GetSizeList(doc, "traffic", "thresholds");
        thresholds.ok()) {
      for (std::size_t t : *thresholds) {
        if (t == 0) return InvalidArgument("[traffic] threshold 0 invalid");
      }
      realtime.thresholds = *thresholds;
    }
    if (auto p = GetDouble(doc, "traffic", "failure_probability"); p.ok()) {
      if (*p < 0.0 || *p > 1.0) {
        return InvalidArgument("[traffic] failure_probability out of [0,1]");
      }
      realtime.failure_probability = *p;
    }
    return flow::DispatchStrategy(realtime);
  }

  if (strategy == "points") {
    auto at = GetSizeList(doc, "traffic", "at_s");
    if (!at.ok()) return at.error();
    auto counts = GetSizeList(doc, "traffic", "counts");
    if (!counts.ok()) return counts.error();
    if (at->size() != counts->size()) {
      return InvalidArgument("[traffic] at_s and counts length mismatch");
    }
    double failure = 0.0;
    if (auto p = GetDouble(doc, "traffic", "failure_probability"); p.ok()) {
      failure = *p;
    }
    std::size_t discard = 0;
    if (auto d = GetInt(doc, "traffic", "random_discard"); d.ok()) {
      discard = static_cast<std::size_t>(*d);
    }
    flow::TimePointDispatch points;
    for (std::size_t i = 0; i < at->size(); ++i) {
      flow::TimePoint point;
      point.when = Seconds(static_cast<double>((*at)[i]));
      point.relative = true;
      point.count = (*counts)[i];
      point.failure_probability = failure;
      point.random_discard = discard;
      points.points.push_back(point);
    }
    return flow::DispatchStrategy(points);
  }

  if (strategy == "interval") {
    flow::TimeIntervalDispatch interval;
    double sigma = 1.0;
    if (auto s = GetDouble(doc, "traffic", "sigma"); s.ok()) {
      if (*s <= 0.0) return InvalidArgument("[traffic] sigma must be > 0");
      sigma = *s;
    }
    auto curve = GetString(doc, "traffic", "curve");
    if (!curve.ok()) return curve.error();
    const std::string name = Lower(*curve);
    if (name == "normal") {
      interval.rate = flow::NormalCurve(sigma);
    } else if (name == "right_tail") {
      interval.rate = flow::RightTailedNormal(sigma);
    } else if (name == "sin") {
      interval.rate = flow::SinPlusOne();
    } else if (name == "cos") {
      interval.rate = flow::CosPlusOne();
    } else if (name == "pow2") {
      interval.rate = flow::TwoPowT();
    } else if (name == "pow10") {
      interval.rate = flow::TenPowT();
    } else if (name == "diurnal") {
      interval.rate = flow::DiurnalCurve();
    } else {
      return InvalidArgument("[traffic] unknown curve '" + *curve + "'");
    }
    if (auto s = GetDouble(doc, "traffic", "interval_s"); s.ok()) {
      if (*s <= 0.0) return InvalidArgument("[traffic] interval_s must be > 0");
      interval.interval = Seconds(*s);
    }
    if (auto p = GetDouble(doc, "traffic", "failure_probability"); p.ok()) {
      if (*p < 0.0 || *p > 1.0) {
        return InvalidArgument("[traffic] failure_probability out of [0,1]");
      }
      interval.failure_probability = *p;
    }
    return flow::DispatchStrategy(interval);
  }

  return InvalidArgument("[traffic] unknown strategy '" + *kind + "'");
}

Result<cloud::AggregationConfig> LoadAggregation(const IniDocument& doc,
                                                 std::uint32_t model_dim) {
  cloud::AggregationConfig config;
  config.model_dim = model_dim;
  auto trigger = GetString(doc, "aggregation", "trigger");
  if (!trigger.ok()) return trigger.error();
  const std::string kind = Lower(*trigger);
  if (kind == "scheduled") {
    config.trigger = cloud::AggregationTrigger::kScheduled;
    auto period = GetDouble(doc, "aggregation", "period_s");
    if (!period.ok()) return period.error();
    if (*period <= 0.0) {
      return InvalidArgument("[aggregation] period_s must be > 0");
    }
    config.schedule_period = Seconds(*period);
  } else if (kind == "sample_threshold") {
    config.trigger = cloud::AggregationTrigger::kSampleThreshold;
    auto threshold = GetInt(doc, "aggregation", "threshold");
    if (!threshold.ok()) return threshold.error();
    if (*threshold <= 0) {
      return InvalidArgument("[aggregation] threshold must be > 0");
    }
    config.sample_threshold = static_cast<std::size_t>(*threshold);
  } else {
    return InvalidArgument("[aggregation] unknown trigger '" + *trigger + "'");
  }
  if (auto stale = GetInt(doc, "aggregation", "reject_stale"); stale.ok()) {
    config.reject_stale = *stale != 0;
  }
  return config;
}

Result<ExecutionConfig> LoadExecution(const IniDocument& doc) {
  ExecutionConfig config;
  const bool has_section = doc.find("execution") != doc.end();
  if (auto parallelism = GetInt(doc, "execution", "parallelism");
      parallelism.ok()) {
    if (*parallelism < 0) {
      return InvalidArgument("[execution] parallelism must be >= 0");
    }
    config.parallelism = static_cast<std::size_t>(*parallelism);
  } else if (has_section && parallelism.error().code() != ErrorCode::kNotFound) {
    return parallelism.error();
  }
  if (auto shards = GetInt(doc, "execution", "shards"); shards.ok()) {
    if (*shards < 0) {
      return InvalidArgument("[execution] shards must be >= 0");
    }
    config.shards = static_cast<std::size_t>(*shards);
  } else if (has_section && shards.error().code() != ErrorCode::kNotFound) {
    return shards.error();
  }
  if (auto plane = GetString(doc, "execution", "decode_plane"); plane.ok()) {
    if (*plane == "decoded") {
      config.decode_plane = flow::DecodePlane::kDecoded;
    } else if (*plane == "legacy") {
      config.decode_plane = flow::DecodePlane::kLegacy;
    } else {
      return InvalidArgument(
          "[execution] decode_plane must be 'decoded' or 'legacy', got '" +
          *plane + "'");
    }
  } else if (has_section && plane.error().code() != ErrorCode::kNotFound) {
    return plane.error();
  }
  if (auto agg_plane = GetString(doc, "execution", "aggregate_plane");
      agg_plane.ok()) {
    if (*agg_plane == "partial_sum") {
      config.aggregate_plane = cloud::AggregatePlane::kPartialSum;
    } else if (*agg_plane == "legacy") {
      config.aggregate_plane = cloud::AggregatePlane::kLegacy;
    } else {
      return InvalidArgument(
          "[execution] aggregate_plane must be 'partial_sum' or 'legacy', "
          "got '" +
          *agg_plane + "'");
    }
  } else if (has_section && agg_plane.error().code() != ErrorCode::kNotFound) {
    return agg_plane.error();
  }
  if (auto codec = GetString(doc, "execution", "payload_codec"); codec.ok()) {
    const std::string name = Lower(*codec);
    if (name == "fp32") {
      config.payload_codec = ml::PayloadCodec::kFp32;
    } else if (name == "fp16") {
      config.payload_codec = ml::PayloadCodec::kFp16;
    } else if (name == "int8") {
      config.payload_codec = ml::PayloadCodec::kInt8;
    } else {
      return InvalidArgument(
          "[execution] payload_codec must be 'fp32', 'fp16' or 'int8', got '" +
          *codec + "'");
    }
  } else if (has_section && codec.error().code() != ErrorCode::kNotFound) {
    return codec.error();
  }
  if (auto reclaim = GetInt(doc, "execution", "reclaim_payload_blobs");
      reclaim.ok()) {
    config.reclaim_payload_blobs = *reclaim != 0;
  } else if (has_section && reclaim.error().code() != ErrorCode::kNotFound) {
    return reclaim.error();
  }
  if (auto durability = GetString(doc, "execution", "durability");
      durability.ok()) {
    const std::string name = Lower(*durability);
    if (name == "off") {
      config.durability = persist::DurabilityMode::kOff;
    } else if (name == "log") {
      config.durability = persist::DurabilityMode::kLog;
    } else if (name == "log+checkpoint") {
      config.durability = persist::DurabilityMode::kLogCheckpoint;
    } else {
      return InvalidArgument(
          "[execution] durability must be 'off', 'log' or 'log+checkpoint', "
          "got '" +
          *durability + "'");
    }
  } else if (has_section && durability.error().code() != ErrorCode::kNotFound) {
    return durability.error();
  }
  if (auto dir = GetString(doc, "execution", "durability_dir"); dir.ok()) {
    config.durability_dir = *dir;
  } else if (has_section && dir.error().code() != ErrorCode::kNotFound) {
    return dir.error();
  }
  if (config.durability != persist::DurabilityMode::kOff &&
      config.durability_dir.empty()) {
    return InvalidArgument(
        "[execution] durability_dir is required when durability is not off");
  }
  if (auto quorum = GetInt(doc, "execution", "round_quorum"); quorum.ok()) {
    if (*quorum < 0) {
      return InvalidArgument("[execution] round_quorum must be >= 0");
    }
    config.round_quorum = static_cast<std::size_t>(*quorum);
  } else if (has_section && quorum.error().code() != ErrorCode::kNotFound) {
    return quorum.error();
  }
  if (auto deadline = GetDouble(doc, "execution", "round_deadline_s");
      deadline.ok()) {
    if (*deadline < 0.0) {
      return InvalidArgument("[execution] round_deadline_s must be >= 0");
    }
    config.round_deadline = Seconds(*deadline);
  } else if (has_section && deadline.error().code() != ErrorCode::kNotFound) {
    return deadline.error();
  }
  if (auto extension = GetDouble(doc, "execution", "round_extension_s");
      extension.ok()) {
    if (*extension < 0.0) {
      return InvalidArgument("[execution] round_extension_s must be >= 0");
    }
    config.round_extension = Seconds(*extension);
  } else if (has_section && extension.error().code() != ErrorCode::kNotFound) {
    return extension.error();
  }
  if (auto max_ext = GetInt(doc, "execution", "max_round_extensions");
      max_ext.ok()) {
    if (*max_ext < 0) {
      return InvalidArgument("[execution] max_round_extensions must be >= 0");
    }
    config.max_round_extensions = static_cast<std::size_t>(*max_ext);
  } else if (has_section && max_ext.error().code() != ErrorCode::kNotFound) {
    return max_ext.error();
  }
  return config;
}

namespace {

/// Shared helper for [behavior]/[link] probability knobs: value must lie
/// in [0, 1]; NotFound keeps the default.
Result<bool> LoadUnitDouble(const IniDocument& doc, const std::string& section,
                            const std::string& key, bool has_section,
                            double* out) {
  if (auto value = GetDouble(doc, section, key); value.ok()) {
    if (*value < 0.0 || *value > 1.0) {
      return InvalidArgument("[" + section + "] " + key + " out of [0,1]");
    }
    *out = *value;
    return true;
  } else if (has_section && value.error().code() != ErrorCode::kNotFound) {
    return value.error();
  }
  return false;
}

/// Non-negative duration knob in seconds; NotFound keeps the default.
Result<bool> LoadDurationS(const IniDocument& doc, const std::string& section,
                           const std::string& key, bool has_section,
                           SimDuration* out) {
  if (auto value = GetDouble(doc, section, key); value.ok()) {
    if (*value < 0.0) {
      return InvalidArgument("[" + section + "] " + key + " must be >= 0");
    }
    *out = Seconds(*value);
    return true;
  } else if (has_section && value.error().code() != ErrorCode::kNotFound) {
    return value.error();
  }
  return false;
}

}  // namespace

Result<device::BehaviorConfig> LoadBehavior(const IniDocument& doc) {
  device::BehaviorConfig config;
  const bool has_section = doc.find("behavior") != doc.end();
  if (!has_section) return config;
  if (auto enabled = GetInt(doc, "behavior", "enabled"); enabled.ok()) {
    config.enabled = *enabled != 0;
  } else if (enabled.error().code() != ErrorCode::kNotFound) {
    return enabled.error();
  }
  if (auto seed = GetInt(doc, "behavior", "seed"); seed.ok()) {
    if (*seed < 0) return InvalidArgument("[behavior] seed must be >= 0");
    config.seed = static_cast<std::uint64_t>(*seed);
  } else if (seed.error().code() != ErrorCode::kNotFound) {
    return seed.error();
  }
  struct UnitKnob {
    const char* key;
    double* out;
  };
  for (const UnitKnob& knob : std::initializer_list<UnitKnob>{
           {"mean_availability", &config.mean_availability},
           {"diurnal_amplitude", &config.diurnal_amplitude},
           {"diurnal_phase", &config.diurnal_phase},
           {"churn_rate", &config.churn_rate},
           {"rejoin_fraction", &config.rejoin_fraction},
           {"min_battery", &config.min_battery},
           {"link_base_failure", &config.link_base_failure},
           {"link_diurnal_swing", &config.link_diurnal_swing}}) {
    if (auto loaded =
            LoadUnitDouble(doc, "behavior", knob.key, true, knob.out);
        !loaded.ok()) {
      return loaded.error();
    }
  }
  struct DurationKnob {
    const char* key;
    SimDuration* out;
  };
  for (const DurationKnob& knob : std::initializer_list<DurationKnob>{
           {"diurnal_period_s", &config.diurnal_period},
           {"churn_horizon_s", &config.churn_horizon},
           {"churn_downtime_s", &config.churn_downtime},
           {"battery_period_s", &config.battery_period}}) {
    if (auto loaded = LoadDurationS(doc, "behavior", knob.key, true, knob.out);
        !loaded.ok()) {
      return loaded.error();
    }
  }
  return config;
}

Result<flow::LinkPolicy> LoadLinkPolicy(const IniDocument& doc) {
  flow::LinkPolicy policy;
  const bool has_section = doc.find("link") != doc.end();
  if (!has_section) return policy;
  if (auto loaded =
          LoadUnitDouble(doc, "link", "transient_failure_probability", true,
                         &policy.transient_failure_probability);
      !loaded.ok()) {
    return loaded.error();
  }
  if (auto attempts = GetInt(doc, "link", "max_attempts"); attempts.ok()) {
    if (*attempts < 1) {
      return InvalidArgument("[link] max_attempts must be >= 1");
    }
    policy.max_attempts = static_cast<std::size_t>(*attempts);
  } else if (attempts.error().code() != ErrorCode::kNotFound) {
    return attempts.error();
  }
  if (auto loaded = LoadDurationS(doc, "link", "backoff_initial_s", true,
                                  &policy.backoff_initial);
      !loaded.ok()) {
    return loaded.error();
  }
  if (auto multiplier = GetDouble(doc, "link", "backoff_multiplier");
      multiplier.ok()) {
    if (*multiplier < 1.0) {
      return InvalidArgument("[link] backoff_multiplier must be >= 1");
    }
    policy.backoff_multiplier = *multiplier;
  } else if (multiplier.error().code() != ErrorCode::kNotFound) {
    return multiplier.error();
  }
  if (auto loaded = LoadDurationS(doc, "link", "backoff_max_s", true,
                                  &policy.backoff_max);
      !loaded.ok()) {
    return loaded.error();
  }
  if (auto loaded = LoadDurationS(doc, "link", "upload_deadline_s", true,
                                  &policy.upload_deadline);
      !loaded.ok()) {
    return loaded.error();
  }
  return policy;
}

Result<sched::TaskSpec> ParseTaskSpec(std::string_view text) {
  auto doc = ParseIni(text);
  if (!doc.ok()) return doc.error();
  return LoadTaskSpec(*doc);
}

Result<TenantSpecConfig> LoadTenantSpec(const IniDocument& doc) {
  TenantSpecConfig config;
  auto spec = LoadTaskSpec(doc);
  if (!spec.ok()) return spec.error();
  config.spec = std::move(*spec);
  if (doc.find("traffic") != doc.end()) {
    auto strategy = LoadStrategy(doc);
    if (!strategy.ok()) return strategy.error();
    config.strategy = std::move(*strategy);
    config.has_strategy = true;
  }
  auto link = LoadLinkPolicy(doc);
  if (!link.ok()) return link.error();
  config.link = *link;
  auto behavior = LoadBehavior(doc);
  if (!behavior.ok()) return behavior.error();
  config.behavior = *behavior;
  auto execution = LoadExecution(doc);
  if (!execution.ok()) return execution.error();
  config.execution = std::move(*execution);
  if (doc.find("aggregation") != doc.end()) {
    // model_dim is the dataset's business, not the spec's; 0 here, the
    // engine fills it when the experiment is assembled.
    auto aggregation = LoadAggregation(doc, 0);
    if (!aggregation.ok()) return aggregation.error();
    config.trigger = aggregation->trigger;
    config.sample_threshold = aggregation->sample_threshold;
    config.schedule_period = aggregation->schedule_period;
    config.reject_stale = aggregation->reject_stale;
  }
  return config;
}

}  // namespace simdc::config
