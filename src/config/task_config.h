// Textual task specifications.
//
// In the paper, users configure "device simulation targets, cloud service
// parameters, resource requirements, and operator flow configurations via
// the front-end graphical user interface" (§III-C). Headless deployments
// need the same information as data; this module parses a small INI-style
// format into TaskSpec / DispatchStrategy / FL experiment settings, with
// strict validation so malformed specs are rejected with precise errors.
//
// Example:
//
//   [task]
//   name = nightly-ctr
//   priority = 5
//   rounds = 10
//
//   [devices.high]
//   count = 500
//   benchmarking = 5
//   logical_bundles = 100
//   phones = 12
//
//   [devices.low]
//   count = 500
//   benchmarking = 5
//   logical_bundles = 100
//   phones = 8
//
//   [traffic]
//   strategy = interval
//   curve = normal
//   sigma = 1.0
//   interval_s = 60
//   failure_probability = 0.05
//
//   [aggregation]
//   trigger = scheduled
//   period_s = 120
#pragma once

#include <map>
#include <string>
#include <string_view>

#include "cloud/aggregation.h"
#include "common/error.h"
#include "device/behavior.h"
#include "flow/decoded_update.h"
#include "flow/device_flow.h"
#include "flow/strategy.h"
#include "ml/lr_model.h"
#include "persist/durable_store.h"
#include "sched/task.h"

namespace simdc::config {

/// Parsed INI document: section → (key → value). Later duplicate keys win.
using IniDocument = std::map<std::string, std::map<std::string, std::string>>;

/// Parses INI text: `[section]` headers, `key = value` pairs, `#`/`;`
/// comments, blank lines. Keys outside a section go to section "".
Result<IniDocument> ParseIni(std::string_view text);

/// Typed accessors (NotFound / ParseError on failure).
Result<std::string> GetString(const IniDocument& doc,
                              const std::string& section,
                              const std::string& key);
Result<std::int64_t> GetInt(const IniDocument& doc, const std::string& section,
                            const std::string& key);
Result<double> GetDouble(const IniDocument& doc, const std::string& section,
                         const std::string& key);
/// Comma-separated list of non-negative integers.
Result<std::vector<std::size_t>> GetSizeList(const IniDocument& doc,
                                             const std::string& section,
                                             const std::string& key);

/// Builds a TaskSpec from the [task] and [devices.*] sections.
/// The task id is left unassigned (the platform assigns it on submit).
Result<sched::TaskSpec> LoadTaskSpec(const IniDocument& doc);

/// Builds a DeviceFlow strategy from the [traffic] section.
/// strategy = realtime | points | interval
///   realtime: thresholds = 20,100,50   failure_probability = 0.1
///   points:   at_s = 10,25,40          counts = 200,600,400
///             failure_probability, random_discard (optional)
///   interval: curve = normal|right_tail|sin|cos|pow2|pow10|diurnal
///             sigma (normal/right_tail), interval_s, failure_probability
Result<flow::DispatchStrategy> LoadStrategy(const IniDocument& doc);

/// Builds aggregation settings from the [aggregation] section.
/// trigger = scheduled | sample_threshold; period_s / threshold;
/// reject_stale = 0|1.
Result<cloud::AggregationConfig> LoadAggregation(const IniDocument& doc,
                                                 std::uint32_t model_dim);

/// Execution knobs from the optional [execution] section.
struct ExecutionConfig {
  /// Worker threads for CPU-bound local training: 0 = inherit the
  /// platform's pool, 1 = sequential, N > 1 = exactly N workers
  /// (FlExperimentConfig::parallelism semantics; results are identical
  /// at every width).
  std::size_t parallelism = 0;
  /// Fleet shards: 0 or 1 = single fleet, N > 1 = partition the device
  /// population into N contiguous fleets with per-shard dispatchers
  /// merged deterministically (FlExperimentConfig::shards semantics;
  /// clamped to the device count by the engine).
  std::size_t shards = 0;
  /// Payload plane: decoded (default — dispatch ticks fetch + decode
  /// blobs in parallel, the serial aggregator only accumulates) or legacy
  /// (decode inside the serial delivery handler; the equivalence-test
  /// reference). Bit-identical results either way
  /// (FlExperimentConfig::decode_plane semantics).
  flow::DecodePlane decode_plane = flow::DecodePlane::kDecoded;
  /// Aggregation plane of the decoded delivery path: partial_sum (default
  /// — admitted updates accumulate into per-lane partial FedAvg
  /// aggregators on the worker pool, merged in fixed ascending order) or
  /// legacy (every O(dim) add runs inline in the serial handler; the
  /// parity-test reference). Bit-identical results either way
  /// (FlExperimentConfig::aggregate_plane semantics).
  cloud::AggregatePlane aggregate_plane = cloud::AggregatePlane::kPartialSum;
  /// Wire precision for device→cloud update payloads: fp32 (default —
  /// bit-identical to the historical format), fp16 (~2× smaller), or int8
  /// (per-tensor scale, ~4× smaller). Quantized payloads trade a bounded
  /// amount of update precision for memory/bandwidth at million-device
  /// scale (FlExperimentConfig::payload_codec semantics).
  ml::PayloadCodec payload_codec = ml::PayloadCodec::kFp32;
  /// When set, the engine deletes each round's update payload blobs at the
  /// round boundary and recycles the BlobStore arena, bounding steady-state
  /// blob memory to one round's working set. Off by default to preserve
  /// historical post-run storage accounting.
  bool reclaim_payload_blobs = false;
  /// Durability plane: off (default — in-memory store, bit-identical to
  /// the historical engine), log (append-only blob log, store contents
  /// survive a crash), or log+checkpoint (plus round-boundary aggregator
  /// checkpoints; a crashed run resumes bit-identically). See
  /// persist::DurableStore.
  persist::DurabilityMode durability = persist::DurabilityMode::kOff;
  /// Directory for the blob log and checkpoints; required when durability
  /// is not off.
  std::string durability_dir;
  /// Graceful round degradation (FlExperimentConfig semantics): a round
  /// past round_deadline_s commits if at least round_quorum updates
  /// arrived, else extends up to max_round_extensions times, else aborts.
  /// Engages only when both round_quorum and round_deadline_s are set.
  std::size_t round_quorum = 0;
  SimDuration round_deadline = 0;
  SimDuration round_extension = 0;
  std::size_t max_round_extensions = 1;
};

/// Reads [execution] (parallelism = N, shards = N,
/// decode_plane = decoded|legacy, aggregate_plane = partial_sum|legacy,
/// payload_codec = fp32|fp16|int8,
/// reclaim_payload_blobs = 0|1, durability = off|log|log+checkpoint,
/// durability_dir = path, round_quorum = N, round_deadline_s = S,
/// round_extension_s = S, max_round_extensions = N). A missing section or
/// key yields the defaults; malformed or negative values are rejected.
Result<ExecutionConfig> LoadExecution(const IniDocument& doc);

/// Reads the optional [behavior] section into a device::BehaviorConfig
/// (enabled = 0|1, seed, mean_availability, diurnal_amplitude,
/// diurnal_period_s, diurnal_phase, churn_rate, churn_horizon_s,
/// rejoin_fraction, churn_downtime_s, min_battery, battery_period_s,
/// link_base_failure, link_diurnal_swing). A missing section yields the
/// disabled default; probabilities must lie in [0, 1].
Result<device::BehaviorConfig> LoadBehavior(const IniDocument& doc);

/// Reads the optional [link] section into a flow::LinkPolicy
/// (transient_failure_probability, max_attempts, backoff_initial_s,
/// backoff_multiplier, backoff_max_s, upload_deadline_s). A missing
/// section yields the inactive default.
Result<flow::LinkPolicy> LoadLinkPolicy(const IniDocument& doc);

/// One-call convenience: parse text and build the TaskSpec.
Result<sched::TaskSpec> ParseTaskSpec(std::string_view text);

/// Everything one tenant's spec pins, loaded per spec — the multi-tenant
/// plane gives EACH task its own copy of these (its own Dispatcher link
/// policy, its own AggregationService quorum/deadline knobs), where the
/// single-task workflow historically applied one global set.
struct TenantSpecConfig {
  sched::TaskSpec spec;
  /// From [traffic]; pass-through default when the section is absent
  /// (has_strategy distinguishes "absent" from an explicit realtime{1}).
  flow::DispatchStrategy strategy = flow::RealtimeAccumulated{{1}, 0.0};
  bool has_strategy = false;
  /// From [link] / [behavior] / [execution]; inactive defaults when absent.
  flow::LinkPolicy link;
  device::BehaviorConfig behavior;
  ExecutionConfig execution;
  /// From [aggregation]; scheduled/60s default when absent.
  cloud::AggregationTrigger trigger = cloud::AggregationTrigger::kScheduled;
  std::size_t sample_threshold = 1000;
  SimDuration schedule_period = Seconds(60.0);
  bool reject_stale = false;
};

/// Loads one tenant's complete per-task configuration from a spec
/// document: [task]/[devices.*] (required), plus [traffic], [link],
/// [behavior], [execution] and [aggregation] (each optional, defaulting
/// as documented on TenantSpecConfig). Malformed present sections are
/// errors, never silently defaulted.
Result<TenantSpecConfig> LoadTenantSpec(const IniDocument& doc);

}  // namespace simdc::config
