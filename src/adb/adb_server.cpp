#include "adb/adb_server.h"

#include <cmath>

#include "common/string_util.h"

namespace simdc::adb {

using device::ApkStage;

Result<std::string> AdbServer::ShellAt(std::string_view command,
                                       SimTime t) const {
  const auto tokens = SplitWhitespace(command);
  if (tokens.empty()) return InvalidArgument("adb shell: empty command");

  if (tokens[0] == "cat" && tokens.size() == 2) {
    const std::string& path = tokens[1];
    if (StartsWith(path, "/proc/") && Contains(path, "/net/dev")) {
      // cat /proc/<pid>/net/dev
      const auto pid = FirstIntIn(path.substr(6));
      if (!pid) return ParseError("bad /proc path: " + path);
      return NetDev(static_cast<int>(*pid), t);
    }
    return CatFile(path, t);
  }
  if (tokens[0] == "pgrep") {
    // pgrep -f <name>
    if (tokens.size() == 3 && tokens[1] == "-f") return Pgrep(tokens[2], t);
    return InvalidArgument("pgrep: expected 'pgrep -f <name>'");
  }
  if (tokens[0] == "top") {
    // top -b -n 1 -p <pid>
    int pid = -1;
    for (std::size_t i = 1; i + 1 < tokens.size(); ++i) {
      if (tokens[i] == "-p") {
        const auto parsed = ParseInt(tokens[i + 1]);
        if (!parsed) return InvalidArgument("top: bad pid " + tokens[i + 1]);
        pid = static_cast<int>(*parsed);
      }
    }
    if (pid < 0) return InvalidArgument("top: missing -p <pid>");
    return Top(pid, t);
  }
  if (tokens[0] == "dumpsys") {
    if (tokens.size() >= 3 && tokens[1] == "meminfo") {
      return DumpsysMeminfo(tokens[2], t);
    }
    // The paper's shorthand is `dumpsys <process_name>`; accept it too.
    if (tokens.size() == 2) return DumpsysMeminfo(tokens[1], t);
    return InvalidArgument("dumpsys: expected 'dumpsys meminfo <name>'");
  }
  return NotFound("adb shell: unsupported command '" + std::string(command) +
                  "'");
}

Result<std::string> AdbServer::CatFile(std::string_view path, SimTime t) const {
  if (path == "/sys/class/power_supply/battery/current_now") {
    return StrFormat("%lld\n",
                     static_cast<long long>(phone_.CurrentNowMicroAmps(t)));
  }
  if (path == "/sys/class/power_supply/battery/voltage_now") {
    return StrFormat("%lld\n",
                     static_cast<long long>(phone_.VoltageNowMicroVolts(t)));
  }
  return NotFound("cat: " + std::string(path) + ": No such file or directory");
}

Result<std::string> AdbServer::Pgrep(std::string_view name, SimTime t) const {
  const auto pid = phone_.PidOf(name, t);
  if (!pid) return NotFound("pgrep: no process matching '" + std::string(name) + "'");
  return StrFormat("%d\n", *pid);
}

Result<std::string> AdbServer::Top(int pid, SimTime t) const {
  const device::RunPlan* plan = phone_.PlanCovering(t);
  if (plan == nullptr || plan->pid != pid ||
      !phone_.PidOf(plan->process_name, t)) {
    return NotFound(StrFormat("top: no process with pid %d", pid));
  }
  const double cpu = phone_.CpuPercentAt(t);
  const double mem_mb =
      static_cast<double>(phone_.MemPssKbAt(t)) / 1024.0;
  const double total_mem_kb = phone_.spec().memory_gb * 1024.0 * 1024.0;
  const double mem_pct = mem_mb * 1024.0 / total_mem_kb * 100.0;

  // Toybox `top -b -n 1` layout: global header lines followed by the
  // process table. Parsers must skip the header noise.
  std::string out;
  out += StrFormat("Tasks: 612 total,   1 running, 611 sleeping,"
                   "   0 stopped,   0 zombie\n");
  out += StrFormat("  Mem: %10.0fK total, %10.0fK used, %9.0fK free\n",
                   total_mem_kb, total_mem_kb * 0.71, total_mem_kb * 0.29);
  out += StrFormat("800%%cpu  %3.0f%%user   0%%nice  %3.0f%%sys "
                   " %3.0f%%idle   0%%iow\n",
                   cpu * 6.0, cpu * 2.0, 800.0 - cpu * 8.0);
  out += "  PID USER         PR  NI VIRT  RES  SHR S %CPU %MEM     TIME+ "
         "ARGS\n";
  out += StrFormat(
      "%5d u0_a217      20   0 1.9G %3.0fM %3.0fM S %4.1f %4.1f   1:23.45 "
      "%s\n",
      pid, mem_mb * 1.6, mem_mb * 0.8, cpu, mem_pct, plan->process_name.c_str());
  return out;
}

Result<std::string> AdbServer::DumpsysMeminfo(std::string_view name,
                                              SimTime t) const {
  const auto pid = phone_.PidOf(name, t);
  if (!pid) {
    return NotFound("No process found for: " + std::string(name));
  }
  const std::int64_t pss_kb = phone_.MemPssKbAt(t);
  std::string out;
  out += StrFormat("Applications Memory Usage (in Kilobytes):\n");
  out += StrFormat("Uptime: %lld Realtime: %lld\n\n",
                   static_cast<long long>(t / 1000),
                   static_cast<long long>(t / 1000));
  out += StrFormat("** MEMINFO in pid %d [%s] **\n", *pid,
                   std::string(name).c_str());
  out += "                   Pss  Private  Private  SwapPss      Rss\n";
  out += "                 Total    Dirty    Clean    Dirty    Total\n";
  out += StrFormat("  Native Heap  %8lld %8lld %8d %8d %8lld\n",
                   static_cast<long long>(pss_kb / 3),
                   static_cast<long long>(pss_kb / 4), 128, 0,
                   static_cast<long long>(pss_kb / 2));
  out += StrFormat("  Dalvik Heap  %8lld %8lld %8d %8d %8lld\n",
                   static_cast<long long>(pss_kb / 5),
                   static_cast<long long>(pss_kb / 6), 64, 0,
                   static_cast<long long>(pss_kb / 4));
  out += StrFormat("        TOTAL PSS: %lld            TOTAL RSS: %lld"
                   "       TOTAL SWAP PSS: 0\n",
                   static_cast<long long>(pss_kb),
                   static_cast<long long>(pss_kb * 3 / 2));
  out += "\n App Summary\n";
  out += StrFormat("           Java Heap: %lld\n",
                   static_cast<long long>(pss_kb / 5));
  return out;
}

Result<std::string> AdbServer::NetDev(int pid, SimTime t) const {
  const device::RunPlan* plan = phone_.PlanCovering(t);
  if (plan == nullptr || plan->pid != pid ||
      !phone_.PidOf(plan->process_name, t)) {
    return NotFound(StrFormat("cat: /proc/%d/net/dev: No such file or "
                              "directory",
                              pid));
  }
  const auto wlan = phone_.WlanAt(t);
  std::string out;
  out += "Inter-|   Receive                                                "
         "|  Transmit\n";
  out += " face |bytes    packets errs drop fifo frame compressed multicast"
         "|bytes    packets errs drop fifo colls carrier compressed\n";
  out += StrFormat("    lo: %8lld %7lld    0    0    0     0          0   "
                   "      0 %8lld %7lld    0    0    0     0       0    "
                   "      0\n",
                   123456LL, 890LL, 123456LL, 890LL);
  out += StrFormat(" wlan0: %lld %lld    0    0    0     0          0      "
                   "   0 %lld %lld    0    0    0     0       0          0\n",
                   static_cast<long long>(wlan.rx_bytes),
                   static_cast<long long>(wlan.rx_bytes / 1200 + 1),
                   static_cast<long long>(wlan.tx_bytes),
                   static_cast<long long>(wlan.tx_bytes / 1200 + 1));
  return out;
}

}  // namespace simdc::adb
