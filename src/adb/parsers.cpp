#include "adb/parsers.h"

#include "common/string_util.h"

namespace simdc::adb {

Result<std::int64_t> ParseSysfsValue(std::string_view text) {
  const auto value = ParseInt(TrimWhitespace(text));
  if (!value) {
    return ParseError("sysfs value not an integer: '" + std::string(text) +
                      "'");
  }
  return *value;
}

Result<int> ParsePgrepPid(std::string_view text) {
  for (const auto& line : SplitLines(text)) {
    const auto pid = ParseInt(line);
    if (pid && *pid > 0) return static_cast<int>(*pid);
  }
  return ParseError("pgrep output contains no pid");
}

Result<double> ParseTopCpuPercent(std::string_view text, int pid) {
  for (const auto& line : SplitLines(text)) {
    const auto fields = SplitWhitespace(line);
    if (fields.empty()) continue;
    const auto first = ParseInt(fields[0]);
    if (!first || static_cast<int>(*first) != pid) continue;
    // Toybox layout: PID USER PR NI VIRT RES SHR S %CPU %MEM TIME+ ARGS
    if (fields.size() < 10) {
      return ParseError("top process line too short: '" + line + "'");
    }
    const auto cpu = ParseDouble(fields[8]);
    if (!cpu) {
      return ParseError("top %CPU field not numeric: '" + fields[8] + "'");
    }
    return *cpu;
  }
  return ParseError("top output has no line for pid " + std::to_string(pid));
}

Result<std::int64_t> ParseDumpsysPssKb(std::string_view text) {
  for (const auto& line : SplitLines(text)) {
    if (!Contains(line, "TOTAL PSS:")) continue;
    const auto pos = line.find("TOTAL PSS:");
    const auto value = FirstIntIn(std::string_view(line).substr(pos + 10));
    if (!value) return ParseError("TOTAL PSS line has no number: '" + line + "'");
    return *value;
  }
  return ParseError("dumpsys output has no TOTAL PSS line");
}

Result<WlanBytes> ParseNetDevWlan(std::string_view text) {
  for (const auto& line : SplitLines(text)) {
    const auto trimmed = TrimWhitespace(line);
    if (!StartsWith(trimmed, "wlan")) continue;
    const auto colon = trimmed.find(':');
    if (colon == std::string_view::npos) continue;
    const auto fields = SplitWhitespace(trimmed.substr(colon + 1));
    // Receive: bytes packets errs drop fifo frame compressed multicast (8)
    // Transmit: bytes ... — tx bytes is field index 8.
    if (fields.size() < 9) {
      return ParseError("net/dev wlan line too short: '" + std::string(line) +
                        "'");
    }
    const auto rx = ParseInt(fields[0]);
    const auto tx = ParseInt(fields[8]);
    if (!rx || !tx) {
      return ParseError("net/dev wlan counters not numeric: '" +
                        std::string(line) + "'");
    }
    return WlanBytes{*rx, *tx};
  }
  return ParseError("net/dev output has no wlan interface");
}

}  // namespace simdc::adb
