// Simulated Android Debug Bridge shell.
//
// §IV-C: "PhoneMgr performs various operations and interface management for
// physical devices, primarily relying on ADB commands ... ADB is a
// versatile command-line tool capable of communicating with Android
// devices". The paper enumerates the exact retrieval commands; this class
// accepts those command strings against a simulated Phone and returns
// textual output byte-compatible with a real handset — including the
// "non-essential data" the paper notes must be post-processed away.
//
// Supported commands (matching §IV-C):
//   cat /sys/class/power_supply/battery/current_now
//   cat /sys/class/power_supply/battery/voltage_now
//   pgrep -f <process_name>
//   top -b -n 1 -p <pid>
//   dumpsys meminfo <process_name>
//   cat /proc/<pid>/net/dev
#pragma once

#include <string>
#include <string_view>

#include "common/clock.h"
#include "common/error.h"
#include "device/phone.h"

namespace simdc::adb {

class AdbServer {
 public:
  explicit AdbServer(device::Phone& phone) : phone_(phone) {}

  /// Executes `adb shell <command>` at the phone's current clock time.
  Result<std::string> Shell(std::string_view command) const {
    return ShellAt(command, phone_.clock().Now());
  }

  /// Executes at an explicit sim time (used by schedule-driven sampling).
  Result<std::string> ShellAt(std::string_view command, SimTime t) const;

  const device::Phone& phone() const { return phone_; }

 private:
  Result<std::string> CatFile(std::string_view path, SimTime t) const;
  Result<std::string> Pgrep(std::string_view name, SimTime t) const;
  Result<std::string> Top(int pid, SimTime t) const;
  Result<std::string> DumpsysMeminfo(std::string_view name, SimTime t) const;
  Result<std::string> NetDev(int pid, SimTime t) const;

  device::Phone& phone_;
};

}  // namespace simdc::adb
