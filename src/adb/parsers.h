// Post-processing parsers for ADB command output.
//
// §IV-C: "The information collected typically contains other non-essential
// data, requiring post-processing to extract valid data." These parsers
// are the post-processing step: they take raw shell text (from a real
// handset or from AdbServer) and extract the metric values PhoneMgr
// uploads to the cloud database.
#pragma once

#include <cstdint>
#include <string_view>

#include "common/error.h"

namespace simdc::adb {

/// Parses a single-value sysfs read (current_now / voltage_now).
Result<std::int64_t> ParseSysfsValue(std::string_view text);

/// Parses `pgrep -f` output: first pid line.
Result<int> ParsePgrepPid(std::string_view text);

/// Extracts the %CPU column for `pid` from `top -b -n 1 -p <pid>` output.
Result<double> ParseTopCpuPercent(std::string_view text, int pid);

/// Extracts TOTAL PSS (KB) from `dumpsys meminfo` output (the paper greps
/// for "PSS").
Result<std::int64_t> ParseDumpsysPssKb(std::string_view text);

struct WlanBytes {
  std::int64_t rx_bytes = 0;
  std::int64_t tx_bytes = 0;
  /// "encompasses both received and transmitted data that need to be
  /// extracted and summed" (§IV-C).
  std::int64_t total() const { return rx_bytes + tx_bytes; }
};

/// Extracts wlan interface byte counters from /proc/<pid>/net/dev output.
Result<WlanBytes> ParseNetDevWlan(std::string_view text);

}  // namespace simdc::adb
