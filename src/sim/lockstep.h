// Lockstep execution of one cloud-plane event loop plus N shard-plane
// event loops against a per-tick merge barrier.
//
// The sharded-fleet topology splits a simulation's flow plane (device
// uploads, dispatch ticks) across independent per-shard EventLoops while
// cloud-side events (scheduled aggregations, stall guards, round
// bookkeeping) stay on one global loop. Correctness then hinges on a
// fixed interleaving discipline, which this executor owns:
//
//   1. Cloud-plane events run first at any timestamp: the group advances
//      the cloud loop through T0 (the global minimum next-event time)
//      before any shard touches T0.
//   2. Shard loops then advance — in parallel when a ThreadPool is given,
//      each loop on its own worker — up to a horizon H chosen so no
//      cloud event and no delivery feedback can land inside the window:
//      H < the next cloud event, and H <= T0 + feedback_guard, where
//      feedback_guard lower-bounds the delay between a drained item's
//      timestamp and anything its delivery schedules.
//   3. The barrier fires: `drain(H)` forwards every buffered shard
//      product with timestamp <= H downstream (the caller merges in a
//      deterministic total order — see flow::ShardMerger), possibly
//      scheduling new events
//      on any loop — but only at times >= item time + feedback_guard,
//      which the horizon guarantees is >= every shard clock.
//
// Within one plane, each EventLoop keeps its own (time, seq) FIFO order,
// so runs are bit-for-bit reproducible at any shard width and with or
// without the worker pool. Exact-microsecond collisions BETWEEN planes
// follow the conventions above rather than a global scheduling sequence;
// see core::FlExperimentConfig::shards for the user-facing contract.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "common/thread_pool.h"
#include "sim/event_loop.h"

namespace simdc::sim {

class LockstepGroup {
 public:
  struct Hooks {
    /// Earliest buffered-but-undelivered shard product (EventLoop::kNoEvent
    /// when none). Counted into the global minimum so a backlogged tick is
    /// never starved behind far-future events.
    std::function<SimTime()> next_pending;
    /// Merge barrier: deliver every buffered product with time <= horizon,
    /// in the caller's deterministic order. MUST consume all of them —
    /// leaving one behind stalls the group (the minimum stops advancing).
    std::function<void(SimTime horizon)> drain;
  };

  /// `pool` may be nullptr (shards advance sequentially, same results).
  /// Loops must outlive the group; `cloud` must not appear among `shards`.
  LockstepGroup(EventLoop& cloud, std::vector<EventLoop*> shards,
                ThreadPool* pool = nullptr);

  /// Runs all loops to quiescence under the lockstep discipline. Returns
  /// the number of events executed across every loop.
  std::size_t Run(const Hooks& hooks, SimDuration feedback_guard);

 private:
  EventLoop& cloud_;
  std::vector<EventLoop*> shards_;
  ThreadPool* pool_;
};

}  // namespace simdc::sim
