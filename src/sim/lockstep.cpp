#include "sim/lockstep.h"

#include <algorithm>

#include "common/error.h"

namespace simdc::sim {

LockstepGroup::LockstepGroup(EventLoop& cloud, std::vector<EventLoop*> shards,
                             ThreadPool* pool)
    : cloud_(cloud), shards_(std::move(shards)), pool_(pool) {
  for (const EventLoop* shard : shards_) {
    SIMDC_CHECK(shard != nullptr, "LockstepGroup: null shard loop");
    SIMDC_CHECK(shard != &cloud_, "LockstepGroup: cloud loop listed as shard");
  }
}

std::size_t LockstepGroup::Run(const Hooks& hooks,
                               SimDuration feedback_guard) {
  SIMDC_CHECK(feedback_guard >= 0, "LockstepGroup: negative feedback guard");
  std::size_t executed = 0;
  std::vector<std::size_t> shard_executed(shards_.size(), 0);
  for (;;) {
    SimTime t0 = cloud_.NextEventTime();
    for (EventLoop* shard : shards_) {
      t0 = std::min(t0, shard->NextEventTime());
    }
    if (hooks.next_pending) t0 = std::min(t0, hooks.next_pending());
    if (t0 == EventLoop::kNoEvent) break;

    // 1. Cloud plane first at T0 (may schedule on any loop, only >= T0).
    executed += cloud_.RunUntil(t0);

    // 2. Horizon: strictly before the next cloud event, and no further
    // than one feedback guard past T0 so barrier feedback can never land
    // behind a shard clock. (kNoEvent is int64 max: subtracting one keeps
    // it a valid exclusive bound; the t0 additions are overflow-checked.)
    const SimTime cloud_next = cloud_.NextEventTime();
    SimTime horizon = std::min(
        cloud_next - 1, t0 > EventLoop::kNoEvent - 1 - feedback_guard
                            ? EventLoop::kNoEvent - 1
                            : t0 + feedback_guard);
    horizon = std::max(horizon, t0);
    if (shards_.size() > 1 && pool_ != nullptr) {
      pool_->ParallelFor(shards_.size(), [&](std::size_t s) {
        shard_executed[s] = shards_[s]->RunUntil(horizon);
      });
    } else {
      for (std::size_t s = 0; s < shards_.size(); ++s) {
        shard_executed[s] = shards_[s]->RunUntil(horizon);
      }
    }
    for (const std::size_t n : shard_executed) executed += n;

    // 3. Merge barrier.
    if (hooks.drain) hooks.drain(horizon);
  }
  return executed;
}

}  // namespace simdc::sim
