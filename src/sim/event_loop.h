// Discrete-event simulation engine.
//
// Every timed experiment in the paper (DeviceFlow dispatch schedules,
// sample-threshold / scheduled aggregation windows, phone stage timings,
// cluster-scale round times) runs on this engine: events execute in
// timestamp order on a virtual clock, so a "20-minute aggregation window"
// finishes in milliseconds of wall time and is bit-for-bit reproducible.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <unordered_set>
#include <vector>

#include "common/clock.h"

namespace simdc::sim {

/// Handle used to cancel a scheduled event.
using EventHandle = std::uint64_t;

/// One entry of a bulk insertion (see EventLoop::ScheduleBulk).
struct TimedEvent {
  SimTime time = 0;
  std::function<void()> fn;
};

/// Single-threaded discrete-event loop over a virtual clock.
///
/// Ties (equal timestamps) execute in scheduling order, which makes runs
/// deterministic regardless of callback content.
class EventLoop {
 public:
  EventLoop() = default;

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Current virtual time.
  SimTime Now() const { return clock_.Now(); }
  const Clock& clock() const { return clock_; }

  /// Schedules `fn` at absolute virtual time `t` (clamped to Now()).
  EventHandle ScheduleAt(SimTime t, std::function<void()> fn);

  /// Schedules `fn` after `delay` from the current virtual time.
  EventHandle ScheduleAfter(SimDuration delay, std::function<void()> fn) {
    return ScheduleAt(Now() + (delay > 0 ? delay : 0), std::move(fn));
  }

  /// Inserts N events with one heap rebuild — O(N + H) instead of the
  /// O(N log H) of N ScheduleAt calls (H = events already pending). Entry
  /// order determines FIFO tie-breaking among equal timestamps, exactly as
  /// if each entry had been passed to ScheduleAt in sequence; times in the
  /// past are clamped to Now(). Returns one cancellable handle per entry.
  std::vector<EventHandle> ScheduleBulk(std::vector<TimedEvent> events);

  /// Cancels a pending event. Returns false if already fired or unknown.
  bool Cancel(EventHandle handle);

  /// True while `handle` is scheduled but neither fired nor cancelled.
  bool IsPending(EventHandle handle) const {
    return pending_handles_.contains(handle);
  }

  /// Timestamp of the earliest pending (non-cancelled) event, or
  /// `kNoEvent` when the loop is empty. Prunes cancelled heap tops as a
  /// side effect, so repeated peeks stay O(1) amortized.
  static constexpr SimTime kNoEvent = std::numeric_limits<SimTime>::max();
  SimTime NextEventTime();

  /// Advances the clock to `t` without running anything (no-op when `t` is
  /// not ahead of Now()). The recovery path uses this to re-anchor a fresh
  /// loop at a checkpoint's virtual time before any event is scheduled, so
  /// ScheduleAt clamping and FIFO tie-breaks behave exactly as they did in
  /// the original run. Calling it with events pending earlier than `t`
  /// would silently reorder them, so that is a precondition violation.
  void FastForwardTo(SimTime t);

  /// Runs until no events remain. Returns number of events executed.
  std::size_t Run();

  /// Runs events with timestamp <= `t`, then advances the clock to `t`.
  std::size_t RunUntil(SimTime t);

  /// Executes exactly one event if any is pending. Returns true if one ran.
  bool Step();

  bool empty() const { return pending_handles_.empty(); }
  std::size_t pending() const { return pending_handles_.size(); }
  std::size_t processed() const { return processed_; }

 private:
  struct Event {
    SimTime time;
    std::uint64_t seq;  // tie-breaker: FIFO among equal timestamps
    EventHandle handle;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  bool PopNext(Event& out);

  ManualClock clock_;
  /// Binary min-heap on (time, seq) managed with std::push_heap/pop_heap —
  /// an explicit vector (rather than std::priority_queue) so ScheduleBulk
  /// can append N events and restore the invariant with one make_heap.
  std::vector<Event> heap_;
  /// Handles scheduled but not yet fired or cancelled. Membership makes
  /// Cancel() exact (false for fired/unknown handles) and O(1), and doubles
  /// as the pending()/empty() bookkeeping.
  std::unordered_set<EventHandle> pending_handles_;
  /// Tombstones for cancelled events still sitting in the heap; PopNext
  /// consumes them with an O(1) lookup instead of a linear scan.
  std::unordered_set<EventHandle> cancelled_;
  std::uint64_t next_seq_ = 0;
  EventHandle next_handle_ = 1;
  std::size_t processed_ = 0;
};

/// Periodic timer helper: reschedules itself on the loop every `period`
/// until Stop() is called or `ticks_remaining` reaches zero.
class PeriodicTimer {
 public:
  /// `max_ticks` == 0 means unbounded.
  PeriodicTimer(EventLoop& loop, SimDuration period,
                std::function<void(SimTime)> on_tick,
                std::size_t max_ticks = 0);

  void Start();
  void Stop();
  bool running() const { return running_; }
  std::size_t ticks() const { return ticks_; }

 private:
  void Arm();

  EventLoop& loop_;
  SimDuration period_;
  std::function<void(SimTime)> on_tick_;
  std::size_t max_ticks_;
  std::size_t ticks_ = 0;
  bool running_ = false;
  EventHandle pending_ = 0;
};

}  // namespace simdc::sim
