#include "sim/event_loop.h"

#include <algorithm>

#include "common/error.h"

namespace simdc::sim {

EventHandle EventLoop::ScheduleAt(SimTime t, std::function<void()> fn) {
  const EventHandle handle = next_handle_++;
  heap_.push_back(Event{std::max(t, Now()), next_seq_++, handle, std::move(fn)});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
  pending_handles_.insert(handle);
  return handle;
}

std::vector<EventHandle> EventLoop::ScheduleBulk(std::vector<TimedEvent> events) {
  std::vector<EventHandle> handles;
  handles.reserve(events.size());
  if (events.empty()) return handles;
  heap_.reserve(heap_.size() + events.size());
  for (TimedEvent& event : events) {
    const EventHandle handle = next_handle_++;
    heap_.push_back(Event{std::max(event.time, Now()), next_seq_++, handle,
                          std::move(event.fn)});
    pending_handles_.insert(handle);
    handles.push_back(handle);
  }
  // One Floyd rebuild over the whole vector: O(H + N). Pop order depends
  // only on the (time, seq) total order, so runs are bit-identical to the
  // equivalent sequence of ScheduleAt calls.
  std::make_heap(heap_.begin(), heap_.end(), Later{});
  return handles;
}

bool EventLoop::Cancel(EventHandle handle) {
  // Only handles that are still pending can be cancelled; fired, already
  // cancelled and never-issued handles all fail. We cannot remove from the
  // middle of a priority_queue, so record a tombstone that PopNext consumes.
  if (pending_handles_.erase(handle) == 0) return false;
  cancelled_.insert(handle);
  return true;
}

SimTime EventLoop::NextEventTime() {
  while (!heap_.empty()) {
    if (!cancelled_.contains(heap_.front().handle)) return heap_.front().time;
    // Consume the tombstone so the heap and cancelled-set stay bounded.
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    cancelled_.erase(heap_.back().handle);
    heap_.pop_back();
  }
  return kNoEvent;
}

bool EventLoop::PopNext(Event& out) {
  while (!heap_.empty()) {
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    Event event = std::move(heap_.back());
    heap_.pop_back();
    if (cancelled_.erase(event.handle) > 0) continue;  // tombstoned
    out = std::move(event);
    return true;
  }
  return false;
}

void EventLoop::FastForwardTo(SimTime t) {
  if (t <= clock_.Now()) return;
  SIMDC_CHECK(NextEventTime() >= t,
              "EventLoop::FastForwardTo would skip pending events");
  clock_.AdvanceTo(t);
}

std::size_t EventLoop::Run() {
  std::size_t executed = 0;
  Event event;
  while (PopNext(event)) {
    clock_.AdvanceTo(event.time);
    pending_handles_.erase(event.handle);
    ++processed_;
    ++executed;
    event.fn();
  }
  return executed;
}

std::size_t EventLoop::RunUntil(SimTime t) {
  std::size_t executed = 0;
  for (;;) {
    if (heap_.empty()) break;
    // Peek through tombstones.
    Event event;
    if (!PopNext(event)) break;
    if (event.time > t) {
      // Put it back (re-push preserves ordering; seq already assigned).
      heap_.push_back(std::move(event));
      std::push_heap(heap_.begin(), heap_.end(), Later{});
      break;
    }
    clock_.AdvanceTo(event.time);
    pending_handles_.erase(event.handle);
    ++processed_;
    ++executed;
    event.fn();
  }
  clock_.AdvanceTo(t);
  return executed;
}

bool EventLoop::Step() {
  Event event;
  if (!PopNext(event)) return false;
  clock_.AdvanceTo(event.time);
  pending_handles_.erase(event.handle);
  ++processed_;
  event.fn();
  return true;
}

PeriodicTimer::PeriodicTimer(EventLoop& loop, SimDuration period,
                             std::function<void(SimTime)> on_tick,
                             std::size_t max_ticks)
    : loop_(loop),
      period_(period > 0 ? period : 1),
      on_tick_(std::move(on_tick)),
      max_ticks_(max_ticks) {}

void PeriodicTimer::Start() {
  if (running_) return;
  running_ = true;
  Arm();
}

void PeriodicTimer::Stop() {
  if (!running_) return;
  running_ = false;
  if (pending_ != 0) {
    loop_.Cancel(pending_);
    pending_ = 0;
  }
}

void PeriodicTimer::Arm() {
  pending_ = loop_.ScheduleAfter(period_, [this] {
    pending_ = 0;
    if (!running_) return;
    ++ticks_;
    on_tick_(loop_.Now());
    if (max_ticks_ != 0 && ticks_ >= max_ticks_) {
      running_ = false;
      return;
    }
    if (running_) Arm();
  });
}

}  // namespace simdc::sim
