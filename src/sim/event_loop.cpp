#include "sim/event_loop.h"

#include <algorithm>

namespace simdc::sim {

EventHandle EventLoop::ScheduleAt(SimTime t, std::function<void()> fn) {
  const EventHandle handle = next_handle_++;
  queue_.push(Event{std::max(t, Now()), next_seq_++, handle, std::move(fn)});
  pending_handles_.insert(handle);
  return handle;
}

bool EventLoop::Cancel(EventHandle handle) {
  // Only handles that are still pending can be cancelled; fired, already
  // cancelled and never-issued handles all fail. We cannot remove from the
  // middle of a priority_queue, so record a tombstone that PopNext consumes.
  if (pending_handles_.erase(handle) == 0) return false;
  cancelled_.insert(handle);
  return true;
}

bool EventLoop::PopNext(Event& out) {
  while (!queue_.empty()) {
    // priority_queue::top returns const&; move via const_cast is the
    // standard workaround and safe because we pop immediately after.
    Event event = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    if (cancelled_.erase(event.handle) > 0) continue;  // tombstoned
    out = std::move(event);
    return true;
  }
  return false;
}

std::size_t EventLoop::Run() {
  std::size_t executed = 0;
  Event event;
  while (PopNext(event)) {
    clock_.AdvanceTo(event.time);
    pending_handles_.erase(event.handle);
    ++processed_;
    ++executed;
    event.fn();
  }
  return executed;
}

std::size_t EventLoop::RunUntil(SimTime t) {
  std::size_t executed = 0;
  for (;;) {
    if (queue_.empty()) break;
    // Peek through tombstones.
    Event event;
    if (!PopNext(event)) break;
    if (event.time > t) {
      // Put it back (re-push preserves ordering; seq already assigned).
      queue_.push(std::move(event));
      break;
    }
    clock_.AdvanceTo(event.time);
    pending_handles_.erase(event.handle);
    ++processed_;
    ++executed;
    event.fn();
  }
  clock_.AdvanceTo(t);
  return executed;
}

bool EventLoop::Step() {
  Event event;
  if (!PopNext(event)) return false;
  clock_.AdvanceTo(event.time);
  pending_handles_.erase(event.handle);
  ++processed_;
  event.fn();
  return true;
}

PeriodicTimer::PeriodicTimer(EventLoop& loop, SimDuration period,
                             std::function<void(SimTime)> on_tick,
                             std::size_t max_ticks)
    : loop_(loop),
      period_(period > 0 ? period : 1),
      on_tick_(std::move(on_tick)),
      max_ticks_(max_ticks) {}

void PeriodicTimer::Start() {
  if (running_) return;
  running_ = true;
  Arm();
}

void PeriodicTimer::Stop() {
  if (!running_) return;
  running_ = false;
  if (pending_ != 0) {
    loop_.Cancel(pending_);
    pending_ = 0;
  }
}

void PeriodicTimer::Arm() {
  pending_ = loop_.ScheduleAfter(period_, [this] {
    pending_ = 0;
    if (!running_) return;
    ++ticks_;
    on_tick_(loop_.Now());
    if (max_ticks_ != 0 && ticks_ >= max_ticks_) {
      running_ = false;
      return;
    }
    if (running_) Arm();
  });
}

}  // namespace simdc::sim
