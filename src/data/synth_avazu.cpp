#include "data/synth_avazu.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/error.h"
#include "data/schema.h"

namespace simdc::data {
namespace {

/// Inverse-CDF Zipf sampler over [0, n) with exponent s (s == 0 → uniform).
class ZipfSampler {
 public:
  ZipfSampler(std::uint32_t n, double s) : cumulative_(n) {
    double total = 0.0;
    for (std::uint32_t i = 0; i < n; ++i) {
      total += s == 0.0 ? 1.0 : 1.0 / std::pow(static_cast<double>(i + 1), s);
      cumulative_[i] = total;
    }
    for (double& c : cumulative_) c /= total;
  }

  std::uint32_t Sample(Rng& rng) const {
    const double u = rng.Uniform();
    const auto it =
        std::lower_bound(cumulative_.begin(), cumulative_.end(), u);
    return static_cast<std::uint32_t>(
        std::min<std::ptrdiff_t>(it - cumulative_.begin(),
                                 static_cast<std::ptrdiff_t>(cumulative_.size()) - 1));
  }

 private:
  std::vector<double> cumulative_;
};

/// Ground-truth logistic weight for a (field, value) pair, derived
/// deterministically from a hash so labels are globally consistent without
/// materializing a weight table.
double GroundTruthWeight(std::uint32_t field, std::uint32_t value) {
  const std::uint64_t h =
      SplitMix64((static_cast<std::uint64_t>(field) << 32) ^ value ^
                 0xA5A5A5A5DEADBEEFULL);
  const std::uint64_t h2 = SplitMix64(h);
  // Box–Muller from two hash-derived uniforms.
  const double u1 =
      (static_cast<double>(h >> 11) + 1.0) * 0x1.0p-53;  // in (0, 1]
  const double u2 = static_cast<double>(h2 >> 11) * 0x1.0p-53;
  const double normal =
      std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
  // Keep per-example score stddev ~0.5 over 22 fields.
  constexpr double kWeightStd = 0.105;
  return kWeightStd * normal;
}

double Logit(double p) {
  const double clamped = std::clamp(p, 1e-6, 1.0 - 1e-6);
  return std::log(clamped / (1.0 - clamped));
}

double Sigmoid(double x) { return 1.0 / (1.0 + std::exp(-x)); }

const std::vector<ZipfSampler>& FieldSamplers() {
  static const std::vector<ZipfSampler> samplers = [] {
    std::vector<ZipfSampler> out;
    out.reserve(kAvazuFields.size());
    for (const auto& field : kAvazuFields) {
      out.emplace_back(field.cardinality, field.zipf_exponent);
    }
    return out;
  }();
  return samplers;
}

/// Per-device state: field preferences and CTR bias.
struct DeviceProfile {
  /// Preferred values for device-affine fields (indexed by field).
  std::vector<std::vector<std::uint32_t>> preferences;
  double ctr_target = 0.0;
  double bias = 0.0;
};

DeviceProfile MakeProfile(Rng& rng, const SynthConfig& config,
                          std::size_t device_index) {
  DeviceProfile profile;
  profile.preferences.resize(kAvazuFields.size());
  const auto& samplers = FieldSamplers();
  for (std::size_t f = 0; f < kAvazuFields.size(); ++f) {
    if (!kAvazuFields[f].device_affine) continue;
    // A device concentrates on a handful of values per affine field.
    const std::size_t prefs = 1 + static_cast<std::size_t>(rng.UniformInt(0, 2));
    for (std::size_t p = 0; p < prefs; ++p) {
      profile.preferences[f].push_back(samplers[f].Sample(rng));
    }
  }

  switch (config.distribution) {
    case LabelDistribution::kIid:
      profile.ctr_target = config.global_ctr;
      break;
    case LabelDistribution::kNatural:
      profile.ctr_target = Sigmoid(
          rng.Normal(Logit(config.global_ctr), config.natural_logit_stddev));
      break;
    case LabelDistribution::kPolarized: {
      // Interleaved assignment (index mod 100) so the fraction holds for
      // any contiguous index range — including the held-out test devices
      // that come after the training devices.
      const bool positive_heavy =
          static_cast<double>(device_index % 100) <
          config.polarized_positive_fraction * 100.0;
      profile.ctr_target = positive_heavy ? config.positive_heavy_ctr
                                          : config.negative_heavy_ctr;
      break;
    }
  }
  profile.bias = Logit(profile.ctr_target);
  return profile;
}

Example MakeExample(Rng& rng, const DeviceProfile& profile,
                    std::uint32_t hash_dim) {
  Example example;
  example.features.reserve(kAvazuFields.size());
  const auto& samplers = FieldSamplers();
  double score = 0.0;
  for (std::size_t f = 0; f < kAvazuFields.size(); ++f) {
    std::uint32_t value;
    const auto& prefs = profile.preferences[f];
    // Device-affine fields reuse the device's preferred values 80% of the
    // time; everything else draws from the global popularity distribution.
    if (!prefs.empty() && rng.Uniform() < 0.8) {
      value = prefs[static_cast<std::size_t>(
          rng.UniformInt(0, static_cast<std::int64_t>(prefs.size()) - 1))];
    } else {
      value = samplers[f].Sample(rng);
    }
    example.features.push_back(
        HashFeature(static_cast<std::uint32_t>(f), value, hash_dim));
    score += GroundTruthWeight(static_cast<std::uint32_t>(f), value);
  }
  const double click_probability = Sigmoid(score + profile.bias);
  example.label = rng.Bernoulli(click_probability) ? 1.0f : 0.0f;
  return example;
}

std::size_t DrawRecordCount(Rng& rng, double mean) {
  // Log-normal spread around the configured mean, at least one record.
  constexpr double kSigma = 0.5;
  const double mu = std::log(std::max(1.0, mean)) - kSigma * kSigma / 2.0;
  const double draw = rng.LogNormal(mu, kSigma);
  return std::max<std::size_t>(1, static_cast<std::size_t>(std::lround(draw)));
}

}  // namespace

FederatedDataset GenerateSyntheticAvazu(const SynthConfig& config) {
  SIMDC_CHECK(config.num_devices > 0, "need at least one device");
  SIMDC_CHECK(config.hash_dim >= 1024, "hash_dim too small for 22 fields");
  FederatedDataset dataset;
  dataset.hash_dim = config.hash_dim;
  dataset.devices.reserve(config.num_devices);

  const Rng root(config.seed);
  const std::size_t total_devices = config.num_devices + config.num_test_devices;
  for (std::size_t i = 0; i < total_devices; ++i) {
    Rng device_rng = root.Split(i);
    const DeviceProfile profile = MakeProfile(device_rng, config, i);
    const std::size_t records =
        DrawRecordCount(device_rng, config.records_per_device_mean);

    if (i < config.num_devices) {
      DeviceData device;
      device.device = DeviceId(i);
      device.true_ctr = profile.ctr_target;
      // Higher-CTR devices respond faster (Fig. 9 scenario); the default
      // delay is the positive tail of a unit normal, shifted by CTR rank.
      device.response_delay_s =
          std::abs(device_rng.Normal()) * (1.2 - profile.ctr_target);
      device.examples.reserve(records);
      for (std::size_t r = 0; r < records; ++r) {
        device.examples.push_back(
            MakeExample(device_rng, profile, config.hash_dim));
      }
      dataset.devices.push_back(std::move(device));
    } else {
      for (std::size_t r = 0; r < records; ++r) {
        dataset.test_set.push_back(
            MakeExample(device_rng, profile, config.hash_dim));
      }
    }
  }
  return dataset;
}

FederatedDataset RepartitionIid(const FederatedDataset& dataset,
                                std::uint64_t seed) {
  FederatedDataset out;
  out.hash_dim = dataset.hash_dim;
  out.test_set = dataset.test_set;

  std::vector<Example> pool;
  pool.reserve(dataset.TotalExamples());
  for (const auto& device : dataset.devices) {
    pool.insert(pool.end(), device.examples.begin(), device.examples.end());
  }
  Rng rng(seed);
  rng.Shuffle(pool);

  const double global_rate = dataset.GlobalPositiveRate();
  out.devices.reserve(dataset.devices.size());
  std::size_t cursor = 0;
  for (const auto& device : dataset.devices) {
    DeviceData shard;
    shard.device = device.device;
    shard.true_ctr = global_rate;
    shard.response_delay_s = device.response_delay_s;
    const std::size_t take =
        std::min(device.examples.size(), pool.size() - cursor);
    shard.examples.assign(pool.begin() + static_cast<std::ptrdiff_t>(cursor),
                          pool.begin() + static_cast<std::ptrdiff_t>(cursor + take));
    cursor += take;
    out.devices.push_back(std::move(shard));
  }
  return out;
}

}  // namespace simdc::data
