// Deterministic device-shard partitioning for multi-fleet execution.
//
// The sharded engine splits a FederatedDataset's device list across
// process-level workers ("fleets"). The partition is the determinism
// anchor of the whole shard plane: shards are CONTIGUOUS index ranges, so
// per-shard message streams stay sorted by the globally (wave, device)-
// ordered message ids and a merge keyed on (tick time, first message id,
// shard) reproduces exactly the order the unsharded path uses for its
// FIFO tie-breaks. Any non-contiguous assignment (round-robin, hashing)
// would break that per-stream sortedness.
#pragma once

#include <cstddef>
#include <vector>

#include "data/example.h"

namespace simdc::data {

/// One shard's half-open device-index range [begin, end).
struct ShardRange {
  std::size_t begin = 0;
  std::size_t end = 0;

  std::size_t size() const { return end - begin; }
  bool contains(std::size_t device_index) const {
    return device_index >= begin && device_index < end;
  }
};

/// Splits `num_devices` device indices into `shards` contiguous,
/// near-equal ranges (earlier shards take the remainder, so sizes differ
/// by at most one). `shards` is clamped to [1, num_devices] — asking for
/// more fleets than devices yields one device per fleet, never an empty
/// shard. Deterministic: depends only on the two arguments.
std::vector<ShardRange> PartitionDevices(std::size_t num_devices,
                                         std::size_t shards);

/// Shard index owning `device_index` under PartitionDevices(n, shards).
/// O(1) — derived from the same arithmetic, not a scan.
std::size_t ShardOf(std::size_t device_index, std::size_t num_devices,
                    std::size_t shards);

/// Convenience overload partitioning a dataset's device list.
inline std::vector<ShardRange> PartitionDevices(const FederatedDataset& dataset,
                                                std::size_t shards) {
  return PartitionDevices(dataset.devices.size(), shards);
}

}  // namespace simdc::data
