#include "data/sharding.h"

#include <algorithm>

#include "common/error.h"

namespace simdc::data {
namespace {

std::size_t ClampShards(std::size_t num_devices, std::size_t shards) {
  if (num_devices == 0) return 0;
  return std::clamp<std::size_t>(shards, 1, num_devices);
}

}  // namespace

std::vector<ShardRange> PartitionDevices(std::size_t num_devices,
                                         std::size_t shards) {
  const std::size_t s = ClampShards(num_devices, shards);
  std::vector<ShardRange> ranges;
  ranges.reserve(s);
  const std::size_t base = s == 0 ? 0 : num_devices / s;
  const std::size_t extra = s == 0 ? 0 : num_devices % s;
  std::size_t cursor = 0;
  for (std::size_t i = 0; i < s; ++i) {
    const std::size_t size = base + (i < extra ? 1 : 0);
    ranges.push_back({cursor, cursor + size});
    cursor += size;
  }
  return ranges;
}

std::size_t ShardOf(std::size_t device_index, std::size_t num_devices,
                    std::size_t shards) {
  SIMDC_CHECK(device_index < num_devices, "ShardOf: device index out of range");
  const std::size_t s = ClampShards(num_devices, shards);
  const std::size_t base = num_devices / s;
  const std::size_t extra = num_devices % s;
  // The first `extra` shards hold (base + 1) devices each and cover the
  // prefix [0, extra * (base + 1)).
  const std::size_t wide_prefix = extra * (base + 1);
  if (device_index < wide_prefix) return device_index / (base + 1);
  return extra + (device_index - wide_prefix) / base;
}

}  // namespace simdc::data
