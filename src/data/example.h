// Core dataset types for the CTR-prediction workload.
//
// The paper's experiments (§VI-A) use the Avazu click-through-rate dataset:
// ~2M records over 100,000 devices keyed by device_id, sparse categorical
// features, binary click labels, trained with logistic regression. We
// represent a record as the set of hashed feature indices that are active
// (one per categorical field), which is exactly the input an LR model with
// feature hashing consumes.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/ids.h"

namespace simdc::data {

/// One advertising impression: active hashed feature indices + click label.
struct Example {
  std::vector<std::uint32_t> features;  // indices into [0, hash_dim)
  float label = 0.0f;                   // 1.0 = click, 0.0 = no click
};

/// All records belonging to one simulated device.
struct DeviceData {
  DeviceId device;
  std::vector<Example> examples;
  /// Ground-truth expected CTR used when synthesizing this device's data
  /// (kept for experiment analysis; a real platform would not know it).
  double true_ctr = 0.0;
  /// Response-delay preference: devices with higher CTR transmit faster in
  /// the Fig. 9 scenario. Stored here so traffic experiments can correlate
  /// delay with data distribution.
  double response_delay_s = 0.0;
};

/// A federated dataset: per-device shards plus a held-out global test set.
struct FederatedDataset {
  std::vector<DeviceData> devices;
  std::vector<Example> test_set;
  std::uint32_t hash_dim = 0;

  std::size_t TotalExamples() const {
    std::size_t n = 0;
    for (const auto& d : devices) n += d.examples.size();
    return n;
  }

  /// Empirical positive-label rate over all device shards.
  double GlobalPositiveRate() const {
    std::size_t pos = 0, total = 0;
    for (const auto& d : devices) {
      for (const auto& e : d.examples) {
        pos += e.label > 0.5f ? 1 : 0;
        ++total;
      }
    }
    return total == 0 ? 0.0 : static_cast<double>(pos) / static_cast<double>(total);
  }
};

}  // namespace simdc::data
