// Synthetic Avazu-like dataset generator.
//
// Substitution for the proprietary-scale Avazu subset used in the paper
// (§VI-A: ~2M records over 100,000 devices for training, 1,000 held-out
// devices for test). The generator produces per-device shards with:
//   * one active hashed feature per categorical field (sparse LR input),
//   * per-device field preferences (a device re-visits its own sites/apps),
//   * a ground-truth sparse logistic model + per-device bias, so the
//     learning task is realizable and per-device CTR is controllable,
//   * three label-distribution modes driving the paper's scenarios:
//     IID, natural heterogeneity, and the polarized 70%/30% positive/
//     negative-heavy split of Fig. 11(b).
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "data/example.h"

namespace simdc::data {

/// How labels (and therefore per-device CTR) are distributed across devices.
enum class LabelDistribution {
  /// Every device draws from the same global CTR (Fig. 11a).
  kIid,
  /// Per-device CTR from a heterogeneous prior (default; Figs. 6, 9).
  kNatural,
  /// A fraction of devices is positive-heavy, the rest negative-heavy
  /// (Fig. 11b: 70% high-positive, 30% high-negative).
  kPolarized,
};

struct SynthConfig {
  std::size_t num_devices = 100;
  /// Mean records per device; actual counts are log-normal around this.
  double records_per_device_mean = 20.0;
  /// Held-out devices whose records form the global test set (paper: 1000
  /// of 100,000; scaled proportionally here).
  std::size_t num_test_devices = 10;
  std::uint32_t hash_dim = 1u << 16;
  LabelDistribution distribution = LabelDistribution::kNatural;
  /// Global CTR target (Avazu's overall positive rate is ~0.17).
  double global_ctr = 0.17;
  /// kPolarized parameters (Fig. 11b).
  double polarized_positive_fraction = 0.7;
  double positive_heavy_ctr = 0.75;
  double negative_heavy_ctr = 0.05;
  /// kNatural: stddev of per-device CTR on the logit scale.
  double natural_logit_stddev = 0.8;
  std::uint64_t seed = 42;
};

/// Generates a federated dataset per the config. Deterministic in `seed`.
FederatedDataset GenerateSyntheticAvazu(const SynthConfig& config);

/// Re-partitions all examples IID across the same number of devices
/// (keeps test set); used to build matched IID/non-IID pairs.
FederatedDataset RepartitionIid(const FederatedDataset& dataset,
                                std::uint64_t seed);

}  // namespace simdc::data
