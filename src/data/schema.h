// Avazu-like categorical schema.
//
// The real Avazu dataset has 22 categorical fields (hour, banner position,
// site/app identity and category, device attributes, and anonymized
// C1/C14–C21 columns). The synthetic generator reproduces this shape with
// scaled-down but realistically skewed cardinalities; what matters for the
// experiments is the sparsity pattern (one active feature per field) and
// per-device heterogeneity, both of which this schema preserves.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

namespace simdc::data {

/// One categorical field: name, number of distinct values, and Zipf skew
/// exponent for its popularity distribution (0 = uniform).
struct FieldSpec {
  std::string_view name;
  std::uint32_t cardinality;
  double zipf_exponent;
  /// Device-affine fields are drawn from a per-device preference (a device
  /// mostly visits the same sites / uses the same apps); others are drawn
  /// globally per record.
  bool device_affine;
};

/// The 22 Avazu fields. Cardinalities are scaled to keep synthetic data
/// laptop-sized while preserving head/tail skew.
inline constexpr std::array<FieldSpec, 22> kAvazuFields = {{
    {"hour", 24, 0.0, false},
    {"C1", 7, 1.2, false},
    {"banner_pos", 7, 1.5, false},
    {"site_id", 1500, 1.1, true},
    {"site_domain", 1200, 1.1, true},
    {"site_category", 26, 1.3, true},
    {"app_id", 1000, 1.1, true},
    {"app_domain", 200, 1.2, true},
    {"app_category", 28, 1.3, true},
    {"device_model", 600, 1.0, true},
    {"device_type", 5, 1.4, true},
    {"device_conn_type", 4, 1.2, true},
    {"C14", 800, 1.0, false},
    {"C15", 8, 1.0, false},
    {"C16", 9, 1.0, false},
    {"C17", 450, 1.0, false},
    {"C18", 4, 0.5, false},
    {"C19", 70, 1.0, false},
    {"C20", 170, 1.0, false},
    {"C21", 60, 1.0, false},
    {"day_of_week", 7, 0.0, false},
    {"is_weekend", 2, 0.0, false},
}};

/// Number of active features per example (one per field).
inline constexpr std::size_t kFeaturesPerExample = kAvazuFields.size();

/// Feature hashing: maps (field, value) to an index in [0, hash_dim).
/// Splittable: distinct fields land in independent hash streams.
constexpr std::uint32_t HashFeature(std::uint32_t field, std::uint32_t value,
                                    std::uint32_t hash_dim) {
  // 64-bit mix of (field, value), then reduce.
  std::uint64_t x = (static_cast<std::uint64_t>(field) << 32) | value;
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  x = x ^ (x >> 31);
  return static_cast<std::uint32_t>(x % hash_dim);
}

}  // namespace simdc::data
