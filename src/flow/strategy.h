// Message dispatching strategies (§V-B).
//
// DeviceFlow supports:
//   1. Real-time accumulated dispatching — activated at the start of each
//      round; dispatches whenever the accumulated message count reaches the
//      next threshold in a user sequence (n == 1 → pass-through, matching
//      "other simulators"); per-message transmission-failure probability p
//      simulates dropouts.
//   2. Rule-based dispatching — initiated on round completion:
//      a. specific time-point dispatching: user-defined (time, quantity)
//         pairs, relative to round end or absolute; dropout per point via
//         failure probability or random discard;
//      b. specific time-interval dispatching: a rate function y = f(t) is
//         discretized by AUC ratio into time points under the dispatcher's
//         single-threaded capacity limit (~700 msg/s), then executed as (a).
#pragma once

#include <cstdint>
#include <limits>
#include <variant>
#include <vector>

#include "common/clock.h"
#include "flow/rate_functions.h"

namespace simdc::flow {

/// Single-thread transmission capacity (messages/second) — §V-B's example
/// value; also the spreading rate the cloud observes in Fig. 10(b).
inline constexpr double kDefaultCapacityPerSecond = 700.0;

/// 1. Real-time accumulated dispatching.
struct RealtimeAccumulated {
  /// Threshold sequence, cycled (Fig. 10 discussion: e.g. [20, 100, 50]).
  /// A single entry [n] is the plain threshold strategy; [1] is real-time
  /// pass-through.
  std::vector<std::size_t> thresholds = {1};
  /// Per-message transmission failure probability p ∈ [0, 1].
  double failure_probability = 0.0;
  /// Sender transmission capacity (messages/second) used by the
  /// dispatcher's rate limiter. Sharded fleets give each shard its own
  /// sender; a finite capacity therefore rate-limits per shard, which is
  /// deterministic at any fixed width but not width-invariant. Configs
  /// that assert cross-width bit-identity must disengage the limiter
  /// entirely (kShardWidthInvariantCapacity).
  double capacity_per_second = kDefaultCapacityPerSecond;
};

/// Infinite capacity: the dispatcher stamps every message of a tick with
/// the tick's own time (zero serialization delay, no limiter state). Any
/// finite capacity keeps the >= 1 microsecond per-message floor, which
/// serializes same-microsecond uploads *per dispatcher* and therefore
/// stamps them differently at different shard widths — so this is the
/// only capacity under which the shard-width bit-identity contract holds.
inline constexpr double kShardWidthInvariantCapacity =
    std::numeric_limits<double>::infinity();

/// One user-defined dispatch time point (2a).
struct TimePoint {
  /// Offset from round end when `relative`, else absolute sim time.
  SimTime when = 0;
  bool relative = true;
  /// Messages to send at this point (clamped to what is shelved).
  std::size_t count = 0;
  /// Dropout method 1: per-message failure probability at this point.
  double failure_probability = 0.0;
  /// Dropout method 2: randomly discard this many messages at this point.
  std::size_t random_discard = 0;
};

/// 2a. Specific time-point dispatching.
struct TimePointDispatch {
  std::vector<TimePoint> points;
};

/// 2b. Specific time-interval dispatching.
struct TimeIntervalDispatch {
  /// The user curve; its domain is scaled onto `interval`.
  RateFunction rate;
  /// Actual dispatch interval the domain maps to (e.g. 1 minute).
  SimDuration interval = Seconds(60.0);
  /// Interval start: offset from round end when relative, else absolute.
  SimTime start = 0;
  bool relative = true;
  /// Dropout controls applied per discretized slot.
  double failure_probability = 0.0;
  std::size_t random_discard_per_slot = 0;
  /// Transmission capacity limit used when sizing slots.
  double capacity_per_second = kDefaultCapacityPerSecond;
};

using DispatchStrategy =
    std::variant<RealtimeAccumulated, TimePointDispatch, TimeIntervalDispatch>;

/// One slot of a discretized rate curve: `count` messages at `offset` from
/// the interval start.
struct SlotPlan {
  SimTime offset = 0;
  std::size_t count = 0;
};

/// Discretizes `rate` over `interval` into slots whose counts are
/// proportional to the per-slot area under the curve (AUC), subdividing
/// until no single dispatch point sends more than one second's worth of
/// the sender's throughput (capacity_per_second messages) and the slot
/// width is "sufficiently small" (§V-B). Counts sum exactly to
/// total_messages (largest-remainder rounding). The result converts
/// strategy 2b into the time-point mechanism 2a; residual burstiness is
/// smoothed by the dispatcher's rate limiter (Fig. 10b).
std::vector<SlotPlan> DiscretizeRate(const RateFunction& rate,
                                     SimDuration interval,
                                     std::size_t total_messages,
                                     double capacity_per_second,
                                     std::size_t min_slots = 50,
                                     std::size_t max_slots = 100000);

}  // namespace simdc::flow
