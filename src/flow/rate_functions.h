// User-definable transmission-rate functions y = f(t).
//
// §V-B: "The transmission rate function y must be a single-valued, bounded,
// non-negative continuous function, supporting piecewise continuity."
// Table II evaluates DeviceFlow's fidelity on N(0,1), N(0,2), sin(t)+1,
// cos(t)+1, 2^t and 10^t over given domains; Fig. 9 uses right-tailed
// normal curves N(0,σ).
#pragma once

#include <cmath>
#include <cstdio>
#include <functional>
#include <string>
#include <utility>

namespace simdc::flow {

namespace detail {
inline std::string FormatSigma(double sigma) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", sigma);
  return buf;
}
}  // namespace detail

/// A rate curve over a closed domain [lo, hi]. The domain is later scaled
/// to the user's actual dispatch interval (§V-B: "the domain of t is a
/// closed interval, which can be scaled to align with the user-defined
/// specific time interval").
struct RateFunction {
  std::function<double(double)> f;
  double domain_lo = 0.0;
  double domain_hi = 1.0;
  std::string name = "custom";

  double operator()(double t) const { return f(t); }
  double domain_width() const { return domain_hi - domain_lo; }
};

/// Gaussian density (unnormalized), domain [-4, 4] by default (Table II).
inline RateFunction NormalCurve(double sigma, double lo = -4.0,
                                double hi = 4.0) {
  return RateFunction{
      [sigma](double t) { return std::exp(-t * t / (2.0 * sigma * sigma)); },
      lo, hi, "N(0," + detail::FormatSigma(sigma) + ")"};
}

/// Right tail of N(0,σ): domain [0, 4σ] — the Fig. 9 response curves
/// ("right-tailed normal distributions").
inline RateFunction RightTailedNormal(double sigma) {
  return RateFunction{
      [sigma](double t) { return std::exp(-t * t / (2.0 * sigma * sigma)); },
      0.0, 4.0 * sigma,
      "right-tail N(0," + detail::FormatSigma(sigma) + ")"};
}

/// sin(t)+1 on [0, 6π] (Table II).
inline RateFunction SinPlusOne() {
  return RateFunction{[](double t) { return std::sin(t) + 1.0; }, 0.0,
                      6.0 * M_PI, "sin(t)+1"};
}

/// cos(t)+1 on [0, 6π] (Table II).
inline RateFunction CosPlusOne() {
  return RateFunction{[](double t) { return std::cos(t) + 1.0; }, 0.0,
                      6.0 * M_PI, "cos(t)+1"};
}

/// 2^t on [0, 3] (Table II).
inline RateFunction TwoPowT() {
  return RateFunction{[](double t) { return std::pow(2.0, t); }, 0.0, 3.0,
                      "2^t"};
}

/// 10^t on [0, 3] (Table II).
inline RateFunction TenPowT() {
  return RateFunction{[](double t) { return std::pow(10.0, t); }, 0.0, 3.0,
                      "10^t"};
}

/// Diurnal usage curve: two activity peaks (morning / evening) — used by
/// the day-scale example mirroring Fig. 10's 2:00–22:00 axis.
inline RateFunction DiurnalCurve() {
  return RateFunction{
      [](double t) {
        const double morning = std::exp(-(t - 9.5) * (t - 9.5) / 4.5);
        const double evening = 1.6 * std::exp(-(t - 20.0) * (t - 20.0) / 3.0);
        return morning + evening + 0.05;
      },
      0.0, 24.0, "diurnal"};
}

}  // namespace simdc::flow
