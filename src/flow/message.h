// Messages flowing from simulated devices to cloud services.
//
// §V-A: "When edge devices collaborate with cloud services, they typically
// upload computation results to storage upon task completion and transmit
// messages to cloud services. Cloud services then retrieve the
// corresponding data from storage based on the received messages." A
// Message therefore carries a *reference* to the payload blob, not the
// payload itself.
#pragma once

#include <cstdint>

#include "common/clock.h"
#include "common/ids.h"

namespace simdc::flow {

struct Message {
  MessageId id;
  /// Routing key: the Sorter shelves messages by task (§V-A).
  TaskId task;
  DeviceId device;
  /// Operator-flow round this result belongs to.
  std::size_t round = 0;
  /// Blob in cloud storage holding the uploaded result (model update).
  BlobId payload;
  std::int64_t payload_bytes = 0;
  /// Local training samples behind this update (drives sample-threshold
  /// aggregation, Fig. 9a).
  std::size_t sample_count = 0;
  /// When the device produced the result.
  SimTime created = 0;
};

}  // namespace simdc::flow
