// Recycled per-tick buffers for the dispatch plane.
//
// Every dispatch tick used to allocate fresh vectors for its batch,
// survivors, arrival stamps and decoded updates, then free them when the
// delivery event retired — at 100k devices that is four heap round-trips
// per tick, every tick, for buffers whose sizes repeat round after round.
// VectorPool keeps a small free list of retired buffers (capacity intact)
// so steady-state ticks reuse instead of reallocate: O(1) allocations per
// round once the first round has warmed the pool.
//
// Not thread-safe by design: each Dispatcher owns one TickBufferPool and
// both ends of a buffer's life — acquisition in DispatchBatch and release
// inside the delivery event — run on that dispatcher's event loop (the
// shard loop when fleets advance in lockstep; barrier synchronization
// orders the accesses across pool threads). The pool is held by
// shared_ptr so an in-flight delivery event outliving its dispatcher
// (DeviceFlow::RemoveTask mid-tick) still has somewhere safe to return
// its buffers.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "common/clock.h"
#include "flow/decoded_update.h"
#include "flow/message.h"

namespace simdc::flow {

/// Free list of retired std::vector<T> buffers. Acquire hands back a
/// recycled buffer (cleared, capacity intact) when one is available.
template <typename T>
class VectorPool {
 public:
  std::vector<T> Acquire() {
    ++acquires_;
    if (free_.empty()) return {};
    ++reuses_;
    std::vector<T> out = std::move(free_.back());
    free_.pop_back();
    return out;
  }

  /// Returns a buffer to the pool. Elements are destroyed; capacity is
  /// kept. Buffers beyond the free-list bound are simply freed.
  void Release(std::vector<T>&& buffer) {
    buffer.clear();
    if (free_.size() < kMaxFree) {
      free_.push_back(std::move(buffer));
    }
  }

  /// Telemetry: total acquisitions and how many were satisfied by reuse.
  std::size_t acquires() const { return acquires_; }
  std::size_t reuses() const { return reuses_; }

 private:
  /// Bounds idle memory: a dispatcher has at most a few ticks in flight
  /// (dispatch + scheduled deliveries), so a short list captures them all.
  static constexpr std::size_t kMaxFree = 8;
  std::vector<std::vector<T>> free_;
  std::size_t acquires_ = 0;
  std::size_t reuses_ = 0;
};

/// The three buffer kinds a dispatch tick cycles through.
struct TickBufferPool {
  VectorPool<Message> messages;
  VectorPool<SimTime> arrivals;
  VectorPool<DecodedUpdate> decoded;
};

}  // namespace simdc::flow
