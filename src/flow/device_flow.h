// DeviceFlow — the programmable device-behavior traffic controller (§V).
//
// Architecture (Fig. 4): the Sorter receives messages from the
// computational clusters and shelves them by task_id; one Dispatcher per
// Shelf executes the task's user-defined Strategy, pulling pending
// messages and delivering them to the downstream cloud service. Dispatchers
// of different tasks are fully independent ("the dispatch processes of
// different tasks remain isolated and do not interfere").
//
// From the edge's perspective DeviceFlow is a cloud proxy; from the
// cloud's perspective it *is* the device population — including its
// dropouts, bursts and diurnal traffic shapes.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/error.h"
#include "common/ids.h"
#include "common/rng.h"
#include "flow/decoded_update.h"
#include "flow/message.h"
#include "flow/strategy.h"
#include "flow/tick_pool.h"
#include "sim/event_loop.h"

namespace simdc::flow {

/// Downstream consumer (the cloud service / aggregation endpoint).
class CloudEndpoint {
 public:
  virtual ~CloudEndpoint() = default;
  virtual void Deliver(const Message& message, SimTime arrival) = 0;

  /// Batched delivery: one dispatch tick's worth of messages with their
  /// per-message arrival stamps (arrivals[i] belongs to messages[i]; both
  /// spans have equal length and arrivals are non-decreasing). The default
  /// loops over Deliver so sinks that only implement the per-message hook
  /// keep working; endpoints on the 100k-device hot path override this to
  /// consume a whole tick in one virtual call.
  virtual void DeliverBatch(std::span<const Message> messages,
                            std::span<const SimTime> arrivals) {
    for (std::size_t i = 0; i < messages.size(); ++i) {
      Deliver(messages[i], arrivals[i]);
    }
  }

  /// Decoded-plane delivery: one dispatch tick whose payloads were already
  /// fetched + decoded by the dispatcher (see flow::DecodedUpdate for the
  /// deferred-accounting contract). Same span shape as DeliverBatch. The
  /// default strips the decode and falls back to DeliverBatch, so sinks
  /// that still decode for themselves keep working behind a decoding
  /// dispatcher; endpoints on the hot path (cloud::AggregationService)
  /// override it and never touch storage in the handler.
  virtual void DeliverDecodedBatch(std::span<const DecodedUpdate> updates,
                                   std::span<const SimTime> arrivals);
};

/// How a dispatcher hands a dispatch tick to the event loop:
///   kBatched    — one MessageBatch event per tick carrying every survivor
///                 with its arrival stamp (O(ticks) event fan-in);
///   kPerMessage — one closure per message (the historical path, kept as
///                 the reference for equivalence tests).
/// Both paths draw the same RNG sequence and compute identical arrival
/// stamps, drops and stats. The granularity caveat: a batched tick is
/// delivered atomically at its *first* arrival, so a foreign event (e.g. a
/// scheduled aggregation) whose timestamp falls strictly inside a tick's
/// capacity window observes the whole tick in kBatched mode but only a
/// prefix in kPerMessage mode. Ticks of one message (the pass-through
/// default) have a zero-width window and never diverge; within one mode,
/// runs are always deterministic and parallelism-invariant.
enum class DeliveryMode { kBatched, kPerMessage };

/// Default bound on DispatchStats::batches entries (see batch_log_cap).
inline constexpr std::size_t kDefaultBatchLogCap = 1u << 20;

/// Transient-link fault policy for a dispatcher: flaky radios that fail an
/// upload attempt without killing the message (distinct from the
/// strategy's failure_probability, which models permanent loss). Failed
/// attempts retry with exponential backoff plus deterministic jitter; both
/// the per-attempt failure draw and the jitter are keyed on
/// (seed, task, message id, attempt) — pure functions like
/// Dispatcher::TransmissionDrop — so the whole retry schedule of a message
/// is partition- and shard-width-invariant. Retries bypass the
/// dispatcher's capacity rate limiter: they model the device's own radio
/// coming back, not the serialized sender, which is what keeps the
/// schedule a function of the message alone.
struct LinkPolicy {
  /// Probability one upload attempt fails transiently (a per-message
  /// availability/link-quality hook on the dispatcher overrides this with
  /// a time-varying value).
  double transient_failure_probability = 0.0;
  /// Total attempts per message, first try included (1 = never retry; a
  /// message whose last attempt fails is dropped).
  std::size_t max_attempts = 1;
  /// Backoff before retry k (1-based): min(backoff_max,
  /// backoff_initial * backoff_multiplier^(k-1)) plus a deterministic
  /// jitter in [0, base/4].
  SimDuration backoff_initial = Seconds(1.0);
  double backoff_multiplier = 2.0;
  SimDuration backoff_max = Seconds(60.0);
  /// Hard per-message upload deadline measured from the message's first
  /// attempt: a retry that would land past it is not scheduled and the
  /// message books a deadline drop. 0 = no deadline.
  SimDuration upload_deadline = 0;

  /// Whether this policy can change any message's fate on its own.
  bool active() const {
    return transient_failure_probability > 0.0 || upload_deadline > 0;
  }
};

/// Per-task dispatch accounting (drives Fig. 10 and Table II).
/// The loss taxonomy: every lost message counts in `dropped` (so
/// emitted == received-by-cloud + dropped always balances); deadline_drops
/// and churn_losses additionally classify losses the fault plane caused.
struct DispatchStats {
  std::size_t received = 0;
  std::size_t sent = 0;
  std::size_t dropped = 0;
  /// Retry attempts scheduled after a transiently-failed upload attempt.
  std::size_t retries = 0;
  /// Messages delivered on an attempt after the first.
  std::size_t retry_successes = 0;
  /// Messages dropped because the next retry would exceed the
  /// LinkPolicy::upload_deadline (also counted in `dropped`).
  std::size_t deadline_drops = 0;
  /// Messages dropped because the device was unavailable (churned out /
  /// offline) at their final attempt (also counted in `dropped`).
  std::size_t churn_losses = 0;
  /// (dispatch time, messages dispatched) per executed batch/slot. Growth
  /// is bounded by the dispatcher's batch_log_cap; ticks beyond the cap
  /// are counted in batches_truncated instead of stored, so week-long
  /// simulations do not grow memory without limit.
  std::vector<std::pair<SimTime, std::size_t>> batches;
  /// Parallel to `batches`: the first shelved message id of each logged
  /// tick. Ids are assigned globally in wave- then device-order, so this
  /// is the equal-timestamp merge key that lets per-shard logs interleave
  /// back into the single-fleet logging order (FlEngine::dispatch_stats).
  std::vector<std::uint64_t> batch_keys;
  /// Executed ticks not recorded in `batches` because the cap was reached.
  std::size_t batches_truncated = 0;
};

/// FIFO buffer of pending messages for one task (Fig. 4's "Shelf").
class Shelf {
 public:
  void Put(Message message) { messages_.push_back(std::move(message)); }

  /// Removes and returns up to `count` oldest messages.
  std::vector<Message> Take(std::size_t count);

  /// Allocation-free Take: appends up to `count` oldest messages to `out`
  /// (typically a recycled TickBufferPool buffer with warm capacity).
  void TakeInto(std::size_t count, std::vector<Message>& out);

  std::size_t size() const { return messages_.size(); }
  bool empty() const { return messages_.empty(); }

 private:
  std::deque<Message> messages_;
};

/// Executes one task's strategy against its shelf (Fig. 4's "Dispatcher").
class Dispatcher {
 public:
  Dispatcher(sim::EventLoop& loop, TaskId task, DispatchStrategy strategy,
             CloudEndpoint* downstream, std::uint64_t seed,
             DeliveryMode delivery_mode = DeliveryMode::kBatched);

  /// Cancels every still-pending strategy event this dispatcher scheduled;
  /// those closures capture `this`, so a dispatcher removed mid-interval
  /// must take them down with it (see DeviceFlow::RemoveTask).
  ~Dispatcher();

  Dispatcher(const Dispatcher&) = delete;
  Dispatcher& operator=(const Dispatcher&) = delete;

  /// Message ingress (already sorted to this task).
  void OnMessage(Message message);

  /// Round lifecycle hooks from the computational clusters (§V-A: clusters
  /// send signals at "the initiation and completion of each round").
  void OnRoundStart(std::size_t round);
  void OnRoundEnd(std::size_t round);

  const DispatchStats& stats() const { return stats_; }
  const Shelf& shelf() const { return shelf_; }
  TaskId task() const { return task_; }

  DeliveryMode delivery_mode() const { return delivery_mode_; }
  void set_delivery_mode(DeliveryMode mode) { delivery_mode_ = mode; }

  /// Arms the decoded payload plane: batched dispatch ticks fetch + decode
  /// every survivor through `decoder` at tick time (speculatively — see
  /// flow::DecodedUpdate) and deliver via DeliverDecodedBatch instead of
  /// DeliverBatch. Sharded fleets call Decode from shard loops advancing in
  /// parallel, so the decoder must be thread-safe. nullptr (default) keeps
  /// the undecoded plane; kPerMessage mode always delivers undecoded (it is
  /// the legacy reference path).
  void set_decoder(const PayloadDecoder* decoder) { decoder_ = decoder; }
  const PayloadDecoder* decoder() const { return decoder_; }

  /// Bounds DispatchStats::batches (default kDefaultBatchLogCap).
  void set_batch_log_cap(std::size_t cap) { batch_log_cap_ = cap; }

  /// Arms the transient-link fault plane (see LinkPolicy). Inactive by
  /// default — with the default policy and no hooks, dispatch behavior is
  /// bit-identical to a dispatcher without the fault plane.
  void set_link_policy(LinkPolicy policy) { link_ = policy; }
  const LinkPolicy& link_policy() const { return link_; }

  /// Device availability at a given instant (device::BehaviorModel binds
  /// here). When set, every upload attempt first checks the sender's
  /// availability; an unavailable device fails the attempt (retried under
  /// the link policy; the final such failure books a churn loss). MUST be
  /// a pure function of (device, time) and thread-safe: sharded fleets
  /// evaluate it from shard loops advancing in parallel, and purity is
  /// what keeps outcomes width-invariant.
  using AvailabilityFn = std::function<bool(DeviceId, SimTime)>;
  void set_availability(AvailabilityFn fn) { availability_ = std::move(fn); }

  /// Per-(device, time) transient failure probability, overriding
  /// LinkPolicy::transient_failure_probability (diurnal link quality).
  /// Same purity/thread-safety contract as the availability hook.
  using LinkProbabilityFn = std::function<double(DeviceId, SimTime)>;
  void set_link_probability(LinkProbabilityFn fn) {
    link_probability_ = std::move(fn);
  }

  /// Still-pending retry attempts (scheduled, not yet fired); their
  /// closures capture `this` and are cancelled on destruction.
  std::size_t pending_retries() const;

  /// Tick-buffer recycling telemetry: how many buffer acquisitions across
  /// all kinds were served from the pool instead of the heap.
  std::size_t tick_buffer_reuses() const {
    return tick_pool_->messages.reuses() + tick_pool_->arrivals.reuses() +
           tick_pool_->decoded.reuses();
  }

 private:
  /// Takes up to `count` from the shelf, applies dropout, rate-limits
  /// delivery to the downstream endpoint.
  void DispatchBatch(std::size_t count, double failure_probability,
                     std::size_t random_discard);
  /// Transmission-failure draw for one message. Keyed by (dispatcher
  /// seed, message id) rather than a shared sequential stream, so the
  /// decision for a given message is identical no matter how messages are
  /// partitioned across dispatchers or grouped into ticks — the property
  /// that keeps sharded fleets bit-identical at every width.
  bool TransmissionDrop(const Message& message, double failure_probability);
  /// Whether any link-fault mechanism (policy, availability hook, link
  /// probability hook) can alter a message's fate; false keeps DispatchBatch
  /// on the exact pre-fault-plane path.
  bool LinkFaultsActive() const;
  /// One upload attempt's verdict at `when` (attempt 0 = the dispatch
  /// tick itself). Draws are keyed on (retry seed, message id, attempt) —
  /// pure functions, no sequential RNG state.
  enum class AttemptOutcome { kDelivered, kChurn, kTransient };
  AttemptOutcome TryAttempt(const Message& message, SimTime when,
                            std::size_t attempt) const;
  /// Books a failed attempt: schedules the next retry under the backoff /
  /// deadline policy, or commits the loss (dropped + churn/deadline
  /// classification). `first_attempt` anchors the upload deadline.
  void OnAttemptFailed(Message message, SimTime first_attempt,
                       std::size_t attempt, bool churn);
  /// Delivers a message that succeeded on a retry attempt, logging it as
  /// its own single-message tick at `when`.
  void DeliverRetried(Message message, SimTime when);
  /// Backoff + deterministic jitter before retry `attempt` (1-based).
  SimDuration RetryDelay(std::uint64_t message_id, std::size_t attempt) const;
  void TrackRetryEvent(sim::EventHandle handle);
  void PumpRealtime();
  /// Records handles of scheduled strategy events (for ~Dispatcher),
  /// pruning ones that already fired so tracking stays bounded.
  void TrackStrategyEvents(std::vector<sim::EventHandle> handles);

  sim::EventLoop& loop_;
  TaskId task_;
  DispatchStrategy strategy_;
  CloudEndpoint* downstream_;
  Rng rng_;
  /// Decoded-plane fetch + decode hook (nullptr = undecoded delivery).
  const PayloadDecoder* decoder_ = nullptr;
  /// Key for per-message transmission-failure draws (see
  /// TransmissionDrop); shared-seed dispatchers derive the same key, so
  /// shard slices agree on every message's fate.
  std::uint64_t drop_seed_;
  /// Key for per-(message, attempt) transient-failure and jitter draws;
  /// derived like drop_seed_ so shard slices agree on retry schedules.
  std::uint64_t retry_seed_;
  /// Transient-link fault plane (inactive by default).
  LinkPolicy link_;
  AvailabilityFn availability_;
  LinkProbabilityFn link_probability_;
  /// Pending retry events (closures capture `this`); cancelled on
  /// destruction, pruned as they fire so tracking stays bounded.
  std::vector<sim::EventHandle> retry_events_;
  Shelf shelf_;
  DispatchStats stats_;
  /// Recycled tick buffers (see flow/tick_pool.h). shared_ptr: in-flight
  /// delivery events return their buffers through it and may outlive the
  /// dispatcher when a task is removed mid-tick.
  std::shared_ptr<TickBufferPool> tick_pool_ =
      std::make_shared<TickBufferPool>();
  DeliveryMode delivery_mode_;
  std::size_t batch_log_cap_ = kDefaultBatchLogCap;
  /// Pending OnRoundEnd time-point/slot events (their closures capture
  /// `this`); cancelled on destruction.
  std::vector<sim::EventHandle> strategy_events_;
  /// Threshold-cycle position for RealtimeAccumulated.
  std::size_t threshold_cursor_ = 0;
  /// Rate limiter: earliest time the next message may leave.
  SimTime next_send_time_ = 0;
};

/// The DeviceFlow service: Sorter + per-task Shelf/Dispatcher/Strategy.
class DeviceFlow {
 public:
  explicit DeviceFlow(sim::EventLoop& loop) : loop_(loop) {}

  /// Registers a task with its strategy and downstream service.
  Status ConfigureTask(TaskId task, DispatchStrategy strategy,
                       CloudEndpoint* downstream, std::uint64_t seed = 0,
                       DeliveryMode delivery_mode = DeliveryMode::kBatched);
  Status RemoveTask(TaskId task);

  /// Sorter entry point: routes by message.task (§V-A).
  Status OnMessage(Message message);

  Status OnRoundStart(TaskId task, std::size_t round);
  Status OnRoundEnd(TaskId task, std::size_t round);

  const Dispatcher* FindDispatcher(TaskId task) const;
  Dispatcher* FindDispatcher(TaskId task);
  std::size_t num_tasks() const { return dispatchers_.size(); }

 private:
  sim::EventLoop& loop_;
  std::unordered_map<TaskId, std::unique_ptr<Dispatcher>> dispatchers_;
};

}  // namespace simdc::flow
