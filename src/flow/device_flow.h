// DeviceFlow — the programmable device-behavior traffic controller (§V).
//
// Architecture (Fig. 4): the Sorter receives messages from the
// computational clusters and shelves them by task_id; one Dispatcher per
// Shelf executes the task's user-defined Strategy, pulling pending
// messages and delivering them to the downstream cloud service. Dispatchers
// of different tasks are fully independent ("the dispatch processes of
// different tasks remain isolated and do not interfere").
//
// From the edge's perspective DeviceFlow is a cloud proxy; from the
// cloud's perspective it *is* the device population — including its
// dropouts, bursts and diurnal traffic shapes.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/error.h"
#include "common/ids.h"
#include "common/rng.h"
#include "flow/decoded_update.h"
#include "flow/message.h"
#include "flow/strategy.h"
#include "flow/tick_pool.h"
#include "sim/event_loop.h"

namespace simdc::flow {

/// Downstream consumer (the cloud service / aggregation endpoint).
class CloudEndpoint {
 public:
  virtual ~CloudEndpoint() = default;
  virtual void Deliver(const Message& message, SimTime arrival) = 0;

  /// Batched delivery: one dispatch tick's worth of messages with their
  /// per-message arrival stamps (arrivals[i] belongs to messages[i]; both
  /// spans have equal length and arrivals are non-decreasing). The default
  /// loops over Deliver so sinks that only implement the per-message hook
  /// keep working; endpoints on the 100k-device hot path override this to
  /// consume a whole tick in one virtual call.
  virtual void DeliverBatch(std::span<const Message> messages,
                            std::span<const SimTime> arrivals) {
    for (std::size_t i = 0; i < messages.size(); ++i) {
      Deliver(messages[i], arrivals[i]);
    }
  }

  /// Decoded-plane delivery: one dispatch tick whose payloads were already
  /// fetched + decoded by the dispatcher (see flow::DecodedUpdate for the
  /// deferred-accounting contract). Same span shape as DeliverBatch. The
  /// default strips the decode and falls back to DeliverBatch, so sinks
  /// that still decode for themselves keep working behind a decoding
  /// dispatcher; endpoints on the hot path (cloud::AggregationService)
  /// override it and never touch storage in the handler.
  virtual void DeliverDecodedBatch(std::span<const DecodedUpdate> updates,
                                   std::span<const SimTime> arrivals);
};

/// How a dispatcher hands a dispatch tick to the event loop:
///   kBatched    — one MessageBatch event per tick carrying every survivor
///                 with its arrival stamp (O(ticks) event fan-in);
///   kPerMessage — one closure per message (the historical path, kept as
///                 the reference for equivalence tests).
/// Both paths draw the same RNG sequence and compute identical arrival
/// stamps, drops and stats. The granularity caveat: a batched tick is
/// delivered atomically at its *first* arrival, so a foreign event (e.g. a
/// scheduled aggregation) whose timestamp falls strictly inside a tick's
/// capacity window observes the whole tick in kBatched mode but only a
/// prefix in kPerMessage mode. Ticks of one message (the pass-through
/// default) have a zero-width window and never diverge; within one mode,
/// runs are always deterministic and parallelism-invariant.
enum class DeliveryMode { kBatched, kPerMessage };

/// Default bound on DispatchStats::batches entries (see batch_log_cap).
inline constexpr std::size_t kDefaultBatchLogCap = 1u << 20;

/// Per-task dispatch accounting (drives Fig. 10 and Table II).
struct DispatchStats {
  std::size_t received = 0;
  std::size_t sent = 0;
  std::size_t dropped = 0;
  /// (dispatch time, messages dispatched) per executed batch/slot. Growth
  /// is bounded by the dispatcher's batch_log_cap; ticks beyond the cap
  /// are counted in batches_truncated instead of stored, so week-long
  /// simulations do not grow memory without limit.
  std::vector<std::pair<SimTime, std::size_t>> batches;
  /// Parallel to `batches`: the first shelved message id of each logged
  /// tick. Ids are assigned globally in wave- then device-order, so this
  /// is the equal-timestamp merge key that lets per-shard logs interleave
  /// back into the single-fleet logging order (FlEngine::dispatch_stats).
  std::vector<std::uint64_t> batch_keys;
  /// Executed ticks not recorded in `batches` because the cap was reached.
  std::size_t batches_truncated = 0;
};

/// FIFO buffer of pending messages for one task (Fig. 4's "Shelf").
class Shelf {
 public:
  void Put(Message message) { messages_.push_back(std::move(message)); }

  /// Removes and returns up to `count` oldest messages.
  std::vector<Message> Take(std::size_t count);

  /// Allocation-free Take: appends up to `count` oldest messages to `out`
  /// (typically a recycled TickBufferPool buffer with warm capacity).
  void TakeInto(std::size_t count, std::vector<Message>& out);

  std::size_t size() const { return messages_.size(); }
  bool empty() const { return messages_.empty(); }

 private:
  std::deque<Message> messages_;
};

/// Executes one task's strategy against its shelf (Fig. 4's "Dispatcher").
class Dispatcher {
 public:
  Dispatcher(sim::EventLoop& loop, TaskId task, DispatchStrategy strategy,
             CloudEndpoint* downstream, std::uint64_t seed,
             DeliveryMode delivery_mode = DeliveryMode::kBatched);

  /// Cancels every still-pending strategy event this dispatcher scheduled;
  /// those closures capture `this`, so a dispatcher removed mid-interval
  /// must take them down with it (see DeviceFlow::RemoveTask).
  ~Dispatcher();

  Dispatcher(const Dispatcher&) = delete;
  Dispatcher& operator=(const Dispatcher&) = delete;

  /// Message ingress (already sorted to this task).
  void OnMessage(Message message);

  /// Round lifecycle hooks from the computational clusters (§V-A: clusters
  /// send signals at "the initiation and completion of each round").
  void OnRoundStart(std::size_t round);
  void OnRoundEnd(std::size_t round);

  const DispatchStats& stats() const { return stats_; }
  const Shelf& shelf() const { return shelf_; }
  TaskId task() const { return task_; }

  DeliveryMode delivery_mode() const { return delivery_mode_; }
  void set_delivery_mode(DeliveryMode mode) { delivery_mode_ = mode; }

  /// Arms the decoded payload plane: batched dispatch ticks fetch + decode
  /// every survivor through `decoder` at tick time (speculatively — see
  /// flow::DecodedUpdate) and deliver via DeliverDecodedBatch instead of
  /// DeliverBatch. Sharded fleets call Decode from shard loops advancing in
  /// parallel, so the decoder must be thread-safe. nullptr (default) keeps
  /// the undecoded plane; kPerMessage mode always delivers undecoded (it is
  /// the legacy reference path).
  void set_decoder(const PayloadDecoder* decoder) { decoder_ = decoder; }
  const PayloadDecoder* decoder() const { return decoder_; }

  /// Bounds DispatchStats::batches (default kDefaultBatchLogCap).
  void set_batch_log_cap(std::size_t cap) { batch_log_cap_ = cap; }

  /// Tick-buffer recycling telemetry: how many buffer acquisitions across
  /// all kinds were served from the pool instead of the heap.
  std::size_t tick_buffer_reuses() const {
    return tick_pool_->messages.reuses() + tick_pool_->arrivals.reuses() +
           tick_pool_->decoded.reuses();
  }

 private:
  /// Takes up to `count` from the shelf, applies dropout, rate-limits
  /// delivery to the downstream endpoint.
  void DispatchBatch(std::size_t count, double failure_probability,
                     std::size_t random_discard);
  /// Transmission-failure draw for one message. Keyed by (dispatcher
  /// seed, message id) rather than a shared sequential stream, so the
  /// decision for a given message is identical no matter how messages are
  /// partitioned across dispatchers or grouped into ticks — the property
  /// that keeps sharded fleets bit-identical at every width.
  bool TransmissionDrop(const Message& message, double failure_probability);
  void PumpRealtime();
  /// Records handles of scheduled strategy events (for ~Dispatcher),
  /// pruning ones that already fired so tracking stays bounded.
  void TrackStrategyEvents(std::vector<sim::EventHandle> handles);

  sim::EventLoop& loop_;
  TaskId task_;
  DispatchStrategy strategy_;
  CloudEndpoint* downstream_;
  Rng rng_;
  /// Decoded-plane fetch + decode hook (nullptr = undecoded delivery).
  const PayloadDecoder* decoder_ = nullptr;
  /// Key for per-message transmission-failure draws (see
  /// TransmissionDrop); shared-seed dispatchers derive the same key, so
  /// shard slices agree on every message's fate.
  std::uint64_t drop_seed_;
  Shelf shelf_;
  DispatchStats stats_;
  /// Recycled tick buffers (see flow/tick_pool.h). shared_ptr: in-flight
  /// delivery events return their buffers through it and may outlive the
  /// dispatcher when a task is removed mid-tick.
  std::shared_ptr<TickBufferPool> tick_pool_ =
      std::make_shared<TickBufferPool>();
  DeliveryMode delivery_mode_;
  std::size_t batch_log_cap_ = kDefaultBatchLogCap;
  /// Pending OnRoundEnd time-point/slot events (their closures capture
  /// `this`); cancelled on destruction.
  std::vector<sim::EventHandle> strategy_events_;
  /// Threshold-cycle position for RealtimeAccumulated.
  std::size_t threshold_cursor_ = 0;
  /// Rate limiter: earliest time the next message may leave.
  SimTime next_send_time_ = 0;
};

/// The DeviceFlow service: Sorter + per-task Shelf/Dispatcher/Strategy.
class DeviceFlow {
 public:
  explicit DeviceFlow(sim::EventLoop& loop) : loop_(loop) {}

  /// Registers a task with its strategy and downstream service.
  Status ConfigureTask(TaskId task, DispatchStrategy strategy,
                       CloudEndpoint* downstream, std::uint64_t seed = 0,
                       DeliveryMode delivery_mode = DeliveryMode::kBatched);
  Status RemoveTask(TaskId task);

  /// Sorter entry point: routes by message.task (§V-A).
  Status OnMessage(Message message);

  Status OnRoundStart(TaskId task, std::size_t round);
  Status OnRoundEnd(TaskId task, std::size_t round);

  const Dispatcher* FindDispatcher(TaskId task) const;
  Dispatcher* FindDispatcher(TaskId task);
  std::size_t num_tasks() const { return dispatchers_.size(); }

 private:
  sim::EventLoop& loop_;
  std::unordered_map<TaskId, std::unique_ptr<Dispatcher>> dispatchers_;
};

}  // namespace simdc::flow
