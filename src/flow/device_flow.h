// DeviceFlow — the programmable device-behavior traffic controller (§V).
//
// Architecture (Fig. 4): the Sorter receives messages from the
// computational clusters and shelves them by task_id; one Dispatcher per
// Shelf executes the task's user-defined Strategy, pulling pending
// messages and delivering them to the downstream cloud service. Dispatchers
// of different tasks are fully independent ("the dispatch processes of
// different tasks remain isolated and do not interfere").
//
// From the edge's perspective DeviceFlow is a cloud proxy; from the
// cloud's perspective it *is* the device population — including its
// dropouts, bursts and diurnal traffic shapes.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/error.h"
#include "common/ids.h"
#include "common/rng.h"
#include "flow/message.h"
#include "flow/strategy.h"
#include "sim/event_loop.h"

namespace simdc::flow {

/// Downstream consumer (the cloud service / aggregation endpoint).
class CloudEndpoint {
 public:
  virtual ~CloudEndpoint() = default;
  virtual void Deliver(const Message& message, SimTime arrival) = 0;
};

/// Per-task dispatch accounting (drives Fig. 10 and Table II).
struct DispatchStats {
  std::size_t received = 0;
  std::size_t sent = 0;
  std::size_t dropped = 0;
  /// (dispatch time, messages dispatched) per executed batch/slot.
  std::vector<std::pair<SimTime, std::size_t>> batches;
};

/// FIFO buffer of pending messages for one task (Fig. 4's "Shelf").
class Shelf {
 public:
  void Put(Message message) { messages_.push_back(std::move(message)); }

  /// Removes and returns up to `count` oldest messages.
  std::vector<Message> Take(std::size_t count);

  std::size_t size() const { return messages_.size(); }
  bool empty() const { return messages_.empty(); }

 private:
  std::deque<Message> messages_;
};

/// Executes one task's strategy against its shelf (Fig. 4's "Dispatcher").
class Dispatcher {
 public:
  Dispatcher(sim::EventLoop& loop, TaskId task, DispatchStrategy strategy,
             CloudEndpoint* downstream, std::uint64_t seed);

  /// Message ingress (already sorted to this task).
  void OnMessage(Message message);

  /// Round lifecycle hooks from the computational clusters (§V-A: clusters
  /// send signals at "the initiation and completion of each round").
  void OnRoundStart(std::size_t round);
  void OnRoundEnd(std::size_t round);

  const DispatchStats& stats() const { return stats_; }
  const Shelf& shelf() const { return shelf_; }
  TaskId task() const { return task_; }

 private:
  /// Takes up to `count` from the shelf, applies dropout, rate-limits
  /// delivery to the downstream endpoint.
  void DispatchBatch(std::size_t count, double failure_probability,
                     std::size_t random_discard);
  void PumpRealtime();

  sim::EventLoop& loop_;
  TaskId task_;
  DispatchStrategy strategy_;
  CloudEndpoint* downstream_;
  Rng rng_;
  Shelf shelf_;
  DispatchStats stats_;
  /// Threshold-cycle position for RealtimeAccumulated.
  std::size_t threshold_cursor_ = 0;
  /// Rate limiter: earliest time the next message may leave.
  SimTime next_send_time_ = 0;
};

/// The DeviceFlow service: Sorter + per-task Shelf/Dispatcher/Strategy.
class DeviceFlow {
 public:
  explicit DeviceFlow(sim::EventLoop& loop) : loop_(loop) {}

  /// Registers a task with its strategy and downstream service.
  Status ConfigureTask(TaskId task, DispatchStrategy strategy,
                       CloudEndpoint* downstream, std::uint64_t seed = 0);
  Status RemoveTask(TaskId task);

  /// Sorter entry point: routes by message.task (§V-A).
  Status OnMessage(Message message);

  Status OnRoundStart(TaskId task, std::size_t round);
  Status OnRoundEnd(TaskId task, std::size_t round);

  const Dispatcher* FindDispatcher(TaskId task) const;
  Dispatcher* FindDispatcher(TaskId task);
  std::size_t num_tasks() const { return dispatchers_.size(); }

 private:
  sim::EventLoop& loop_;
  std::unordered_map<TaskId, std::unique_ptr<Dispatcher>> dispatchers_;
};

}  // namespace simdc::flow
