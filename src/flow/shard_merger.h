// Deterministic shard-batch merge plane.
//
// Each fleet shard runs its own Dispatcher on its own event loop and
// delivers per-tick MessageBatch events into a ShardChannel instead of
// straight into the cloud. At every lockstep barrier the ShardMerger
// forwards the buffered ticks to the real downstream endpoint in
//
//     (tick time, first message id, shard index, per-shard FIFO)
//
// order. Message ids are assigned globally at round start in
// device-index order, so at any timestamp they encode exactly the
// single-loop scheduling order: device order within one upload wave, and
// wave order when two rounds' waves collide on the same microsecond
// (e.g. two threshold rounds closing at one instant anchor both next
// waves at the same time). With shards as CONTIGUOUS device-index ranges
// (data::PartitionDevices), the merge therefore reproduces the global
// FIFO order the unsharded dispatcher would have produced, making the
// reduction order into the aggregator — and every bit of the result —
// independent of the shard width. This is the parameter-server-style
// fixed-order reduction discipline: parallelism in the plane that
// produces batches, a single deterministic order in the plane that
// consumes them.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <span>
#include <vector>

#include "common/clock.h"
#include "flow/device_flow.h"
#include "sim/event_loop.h"

namespace simdc::flow {

/// Per-shard capture endpoint: a CloudEndpoint that records delivered
/// ticks (batched, decoded or per-message) instead of consuming them.
/// Single-writer by construction — only its shard's event loop touches it
/// — so the merger can run shards on a thread pool without locks.
class ShardChannel final : public CloudEndpoint {
 public:
  /// One captured dispatch tick. `time` is the tick's wire time —
  /// arrivals.front() — which is also the shard loop's clock when the
  /// delivery event fired. `key` is the first message's id: the
  /// equal-time merge key (ids are globally wave- then device-ordered).
  /// Exactly one of `messages` (undecoded tick) and `updates` (decoded
  /// tick — payloads already fetched + decoded on this shard's loop) is
  /// non-empty; the merger forwards through the matching endpoint hook.
  struct Tick {
    SimTime time = 0;
    std::uint64_t key = 0;
    std::vector<Message> messages;
    std::vector<DecodedUpdate> updates;
    std::vector<SimTime> arrivals;
  };

  void Deliver(const Message& message, SimTime arrival) override;
  void DeliverBatch(std::span<const Message> messages,
                    std::span<const SimTime> arrivals) override;
  void DeliverDecodedBatch(std::span<const DecodedUpdate> updates,
                           std::span<const SimTime> arrivals) override;

  bool empty() const { return ticks_.empty(); }
  /// Earliest buffered tick time (sim::EventLoop::kNoEvent when empty).
  SimTime NextTickTime() const {
    return ticks_.empty() ? sim::EventLoop::kNoEvent : ticks_.front().time;
  }

 private:
  friend class ShardMerger;
  std::deque<Tick> ticks_;
};

/// Funnels N ShardChannels into one downstream CloudEndpoint in
/// (tick time, message id, shard) order. Optionally advances a cloud-plane
/// event loop's clock to each tick time before forwarding, so downstream
/// code that consults Now() observes the same clock it would have seen as
/// a directly-scheduled delivery event.
class ShardMerger {
 public:
  /// `cloud_loop` may be nullptr (no clock synchronization). Neither
  /// pointer is owned; both must outlive the merger.
  ShardMerger(std::size_t shards, CloudEndpoint* downstream,
              sim::EventLoop* cloud_loop = nullptr);

  ShardChannel& channel(std::size_t shard) { return channels_[shard]; }
  std::size_t shards() const { return channels_.size(); }

  /// Earliest tick buffered across all shards (kNoEvent when none) —
  /// plugs into sim::LockstepGroup::Hooks::next_pending.
  SimTime NextTickTime() const;

  /// Forwards every buffered tick with time <= horizon downstream in
  /// (tick time, first message id, shard index, FIFO) order. Returns
  /// ticks forwarded.
  /// Reentrancy note: a forwarded tick may trigger downstream feedback
  /// (e.g. an aggregation closing a round) that synchronously produces
  /// nothing new here — shard channels only fill when their loops run —
  /// so the drain loop needs no snapshotting.
  std::size_t DrainUpTo(SimTime horizon);

  /// Forwards exactly the single earliest buffered tick if its time is
  /// <= horizon; returns whether one was forwarded. This is the
  /// single-step building block multi-tenant drivers interleave across
  /// tasks: globally-earliest-first, ties in fixed task order, one tick at
  /// a time, so every tenant's downstream observes the same clock and
  /// order it would have seen running solo.
  bool DrainOne(SimTime horizon);

  std::size_t ticks_merged() const { return ticks_merged_; }
  std::size_t messages_merged() const { return messages_merged_; }

 private:
  std::vector<ShardChannel> channels_;
  CloudEndpoint* downstream_;
  sim::EventLoop* cloud_loop_;
  std::size_t ticks_merged_ = 0;
  std::size_t messages_merged_ = 0;
};

}  // namespace simdc::flow
