// Decoded-payload delivery plane.
//
// §V-A messages carry a *reference* to the payload blob (see message.h),
// which makes fetch + decode embarrassingly parallel work: nothing about
// turning a BlobId into an ml::LrModel depends on delivery order, only the
// accumulate does. The decoded plane exploits that seam — dispatchers
// fetch-and-decode speculatively at dispatch-tick time (on shard worker
// threads when fleets are sharded), and the serial cloud side receives
// DecodedUpdates it only has to admit and accumulate. This is the
// parameter-server decode-offload discipline: parallel produce (decode),
// fixed-order reduce (FedAvg).
//
// The decode is *speculative* in two ways, both deliberate:
//   1. It runs before the cloud's staleness verdict, so a stale update is
//      decoded and then discarded. Correctness is unaffected (blobs are
//      immutable once Put) and the wasted decode is parallel-side work.
//   2. Its failure accounting is DEFERRED: the legacy path counts a decode
//      failure only after the reject_stale check and in delivery order, so
//      a DecodedUpdate carries the error and the serial accumulate point
//      commits the counter — a stale message with a corrupt blob must
//      count as a stale rejection, never a decode failure, on both planes.
#pragma once

#include <memory>

#include "common/error.h"
#include "flow/message.h"
#include "ml/lr_model.h"

namespace simdc::flow {

/// Which payload plane the device→cloud pipeline runs
/// (core::FlExperimentConfig::decode_plane; spec: [execution] decode_plane).
enum class DecodePlane {
  /// Dispatch ticks fetch + decode payload blobs and deliver DecodedUpdates;
  /// the serial aggregation side never touches storage on the receive path.
  kDecoded,
  /// Messages arrive undecoded; the cloud endpoint fetches + decodes inside
  /// its (serial) delivery handler. Kept as the reference for equivalence
  /// tests.
  kLegacy,
};

/// A device→cloud message whose payload blob has already been fetched and
/// decoded — or whose fetch/decode failed, with the failure captured for
/// deferred, delivery-ordered accounting at the serial accumulate point.
struct DecodedUpdate {
  /// Where the speculative fetch + decode gave up (kNone on success).
  /// kMissingBlob is strictly "the store answered kNotFound" (reclaimed or
  /// never-written payload); kStoreError is any other store failure (an
  /// I/O fault from the durability plane) — the two are accounted in
  /// different counters at the serial commit point.
  enum class Failure { kNone, kMissingBlob, kUndecodable, kStoreError };

  Message message;
  /// Decoded payload model; nullptr when failure != kNone. Shared ownership
  /// keeps the update cheap to buffer and re-queue through the merge plane.
  std::shared_ptr<const ml::LrModel> model;
  Failure failure = Failure::kNone;
  /// Failure detail for the warning the serial side logs on commit.
  Status error = Status::Ok();

  bool decoded() const { return model != nullptr; }
};

/// Fetch-and-decode seam between the flow plane and payload storage.
/// Implementations MUST be safe to call concurrently: sharded fleets decode
/// from N shard loops advancing in parallel on the worker pool
/// (sim::LockstepGroup). The canonical implementation is
/// cloud::BlobModelDecoder (shared-ownership blob fetch + LrModel decode).
class PayloadDecoder {
 public:
  virtual ~PayloadDecoder() = default;

  /// Fetches and decodes `message`'s payload blob, consuming the message
  /// into the returned update. Never throws on bad payloads — failures are
  /// data, carried to the serial accumulate point.
  virtual DecodedUpdate Decode(Message message) const = 0;
};

}  // namespace simdc::flow
