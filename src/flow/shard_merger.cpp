#include "flow/shard_merger.h"

#include <algorithm>

#include "common/error.h"

namespace simdc::flow {

void ShardChannel::Deliver(const Message& message, SimTime arrival) {
  // Per-message delivery mode: every message is its own one-entry tick,
  // preserving the (arrival, FIFO) order the mode contract specifies.
  Tick tick;
  tick.time = arrival;
  tick.key = message.id.value();
  tick.messages.push_back(message);
  tick.arrivals.push_back(arrival);
  ticks_.push_back(std::move(tick));
}

void ShardChannel::DeliverBatch(std::span<const Message> messages,
                                std::span<const SimTime> arrivals) {
  SIMDC_CHECK(messages.size() == arrivals.size(),
              "ShardChannel: batch span size mismatch");
  if (messages.empty()) return;
  Tick tick;
  tick.time = arrivals.front();
  tick.key = messages.front().id.value();
  tick.messages.assign(messages.begin(), messages.end());
  tick.arrivals.assign(arrivals.begin(), arrivals.end());
  ticks_.push_back(std::move(tick));
}

void ShardChannel::DeliverDecodedBatch(std::span<const DecodedUpdate> updates,
                                       std::span<const SimTime> arrivals) {
  SIMDC_CHECK(updates.size() == arrivals.size(),
              "ShardChannel: decoded batch span size mismatch");
  if (updates.empty()) return;
  // Decoded ticks buffer the updates as-is — the models are shared_ptrs,
  // so parking a tick at the barrier costs O(messages) pointer copies, not
  // O(messages * dim) payload copies.
  Tick tick;
  tick.time = arrivals.front();
  tick.key = updates.front().message.id.value();
  tick.updates.assign(updates.begin(), updates.end());
  tick.arrivals.assign(arrivals.begin(), arrivals.end());
  ticks_.push_back(std::move(tick));
}

ShardMerger::ShardMerger(std::size_t shards, CloudEndpoint* downstream,
                         sim::EventLoop* cloud_loop)
    : channels_(shards), downstream_(downstream), cloud_loop_(cloud_loop) {
  SIMDC_CHECK(shards > 0, "ShardMerger: need at least one shard");
  SIMDC_CHECK(downstream != nullptr, "ShardMerger: null downstream");
}

SimTime ShardMerger::NextTickTime() const {
  SimTime best = sim::EventLoop::kNoEvent;
  for (const ShardChannel& channel : channels_) {
    best = std::min(best, channel.NextTickTime());
  }
  return best;
}

std::size_t ShardMerger::DrainUpTo(SimTime horizon) {
  std::size_t forwarded = 0;
  while (DrainOne(horizon)) ++forwarded;
  return forwarded;
}

bool ShardMerger::DrainOne(SimTime horizon) {
  // Equal tick times resolve by first-message id (globally wave- then
  // device-ordered — the single-loop scheduling order), then by shard
  // index; strict-less keeps per-shard FIFO as the final tie-break.
  SimTime best = sim::EventLoop::kNoEvent;
  std::uint64_t best_key = 0;
  std::size_t shard = 0;
  for (std::size_t s = 0; s < channels_.size(); ++s) {
    const ShardChannel& channel = channels_[s];
    if (channel.ticks_.empty()) continue;
    const SimTime t = channel.ticks_.front().time;
    const std::uint64_t key = channel.ticks_.front().key;
    if (t < best || (t == best && key < best_key)) {
      best = t;
      best_key = key;
      shard = s;
    }
  }
  if (best == sim::EventLoop::kNoEvent || best > horizon) return false;

  // Pop before forwarding: downstream feedback may re-enter
  // NextTickTime() (via the lockstep hooks) and must not see this tick.
  ShardChannel::Tick tick = std::move(channels_[shard].ticks_.front());
  channels_[shard].ticks_.pop_front();

  // Mirror the clock a directly-scheduled delivery event would see: the
  // delivery fires at the tick's first arrival.
  if (cloud_loop_ != nullptr) cloud_loop_->RunUntil(tick.time);
  if (!tick.updates.empty()) {
    downstream_->DeliverDecodedBatch(
        std::span<const DecodedUpdate>(tick.updates),
        std::span<const SimTime>(tick.arrivals));
  } else {
    downstream_->DeliverBatch(std::span<const Message>(tick.messages),
                              std::span<const SimTime>(tick.arrivals));
  }
  ++ticks_merged_;
  messages_merged_ += tick.messages.size() + tick.updates.size();
  return true;
}

}  // namespace simdc::flow
