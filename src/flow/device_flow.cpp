#include "flow/device_flow.h"

#include <algorithm>
#include <cmath>
#include <iterator>

#include "common/det_hash.h"
#include "common/log.h"

namespace simdc::flow {

void CloudEndpoint::DeliverDecodedBatch(std::span<const DecodedUpdate> updates,
                                        std::span<const SimTime> arrivals) {
  // Fallback for sinks that predate the decoded plane: strip the decode and
  // hand the bare messages to the undecoded batch hook (which itself falls
  // back to per-message Deliver). The decode work is discarded, not the
  // messages — such a sink re-fetches exactly what it would have seen.
  std::vector<Message> messages;
  messages.reserve(updates.size());
  for (const DecodedUpdate& update : updates) {
    messages.push_back(update.message);
  }
  DeliverBatch(std::span<const Message>(messages), arrivals);
}

std::vector<Message> Shelf::Take(std::size_t count) {
  std::vector<Message> taken;
  TakeInto(count, taken);
  return taken;
}

void Shelf::TakeInto(std::size_t count, std::vector<Message>& out) {
  const std::size_t n = std::min(count, messages_.size());
  // Bulk range move + single erase instead of n front-pops: the deque
  // shrinks in one splice-like pass.
  out.reserve(out.size() + n);
  const auto end = messages_.begin() + static_cast<std::ptrdiff_t>(n);
  std::move(messages_.begin(), end, std::back_inserter(out));
  messages_.erase(messages_.begin(), end);
}

Dispatcher::Dispatcher(sim::EventLoop& loop, TaskId task,
                       DispatchStrategy strategy, CloudEndpoint* downstream,
                       std::uint64_t seed, DeliveryMode delivery_mode)
    : loop_(loop),
      task_(task),
      strategy_(std::move(strategy)),
      downstream_(downstream),
      rng_(Rng(seed).Split(task.value())),
      drop_seed_(Rng(seed).Split(task.value()).Split("transmission-drop")()),
      retry_seed_(Rng(seed).Split(task.value()).Split("link-retry")()),
      delivery_mode_(delivery_mode) {}

Dispatcher::~Dispatcher() {
  // Pending OnRoundEnd lambdas and retry attempts capture `this`; cancel
  // them so removing a task mid-interval (or unregistering a churned
  // device's fleet) cannot leave dangling callbacks on the loop.
  for (const sim::EventHandle handle : strategy_events_) {
    loop_.Cancel(handle);
  }
  for (const sim::EventHandle handle : retry_events_) {
    loop_.Cancel(handle);
  }
}

std::size_t Dispatcher::pending_retries() const {
  std::size_t pending = 0;
  for (const sim::EventHandle handle : retry_events_) {
    if (loop_.IsPending(handle)) ++pending;
  }
  return pending;
}

void Dispatcher::TrackRetryEvent(sim::EventHandle handle) {
  // Same bounded-tracking discipline as TrackStrategyEvents: prune fired
  // handles so the vector scales with in-flight retries, not history.
  std::erase_if(retry_events_, [this](sim::EventHandle h) {
    return !loop_.IsPending(h);
  });
  retry_events_.push_back(handle);
}

void Dispatcher::TrackStrategyEvents(std::vector<sim::EventHandle> handles) {
  // Prune fired handles first so the tracking vector stays proportional to
  // the number of *pending* ticks, not ticks ever scheduled.
  std::erase_if(strategy_events_, [this](sim::EventHandle handle) {
    return !loop_.IsPending(handle);
  });
  strategy_events_.insert(strategy_events_.end(), handles.begin(),
                          handles.end());
}

void Dispatcher::OnMessage(Message message) {
  ++stats_.received;
  shelf_.Put(std::move(message));
  if (std::holds_alternative<RealtimeAccumulated>(strategy_)) {
    PumpRealtime();
  }
}

void Dispatcher::PumpRealtime() {
  const auto& strategy = std::get<RealtimeAccumulated>(strategy_);
  if (strategy.thresholds.empty()) return;
  // Dispatch whenever the accumulated count reaches the next threshold in
  // the user sequence, cycling through it (§VI-C2's [20, 100, 50] example).
  for (;;) {
    const std::size_t threshold =
        std::max<std::size_t>(1, strategy.thresholds[threshold_cursor_ %
                                                     strategy.thresholds.size()]);
    if (shelf_.size() < threshold) break;
    DispatchBatch(threshold, strategy.failure_probability, 0);
    ++threshold_cursor_;
  }
}

void Dispatcher::OnRoundStart(std::size_t round) {
  (void)round;
  // §V-B: the real-time accumulated strategy "is activated at the beginning
  // of each round" — restart the threshold cycle.
  if (std::holds_alternative<RealtimeAccumulated>(strategy_)) {
    threshold_cursor_ = 0;
    PumpRealtime();
  }
}

void Dispatcher::OnRoundEnd(std::size_t round) {
  (void)round;
  const SimTime now = loop_.Now();
  if (const auto* points = std::get_if<TimePointDispatch>(&strategy_)) {
    // 2a: schedule each user-defined point (one bulk heap insert).
    std::vector<sim::TimedEvent> events;
    events.reserve(points->points.size());
    for (const auto& point : points->points) {
      const SimTime when = point.relative ? now + point.when : point.when;
      const TimePoint p = point;
      events.push_back({when, [this, p] {
                          DispatchBatch(p.count, p.failure_probability,
                                        p.random_discard);
                        }});
    }
    TrackStrategyEvents(loop_.ScheduleBulk(std::move(events)));
    return;
  }
  if (const auto* interval = std::get_if<TimeIntervalDispatch>(&strategy_)) {
    // 2b: equate pending messages with the curve's AUC, discretize under
    // the capacity limit, and execute as time points (§V-B).
    const std::size_t pending = shelf_.size();
    if (pending == 0) return;
    // Slot resolution (DESIGN.md D2): aim for four slots per second of
    // interval for temporal fidelity, but never so many that the average
    // slot holds fewer than ~10 messages — below that, integer
    // apportionment flattens the curve into a 0/1 pattern. Capacity
    // pressure can still grow the count further.
    const std::size_t by_time =
        static_cast<std::size_t>(4.0 * ToSeconds(interval->interval));
    const std::size_t by_volume = pending / 10;
    const std::size_t min_slots =
        std::max<std::size_t>(50, std::min(by_time, by_volume));
    const auto slots =
        DiscretizeRate(interval->rate, interval->interval, pending,
                       interval->capacity_per_second, min_slots);
    const SimTime start =
        interval->relative ? now + interval->start : interval->start;
    // Slot schedules are pre-sorted by offset; insert them with one heap
    // rebuild instead of one O(log H) push per slot.
    std::vector<sim::TimedEvent> events;
    events.reserve(slots.size());
    for (const auto& slot : slots) {
      if (slot.count == 0) continue;
      const std::size_t count = slot.count;
      const double fail = interval->failure_probability;
      const std::size_t discard = interval->random_discard_per_slot;
      events.push_back({start + slot.offset, [this, count, fail, discard] {
                          DispatchBatch(count, fail, discard);
                        }});
    }
    TrackStrategyEvents(loop_.ScheduleBulk(std::move(events)));
    return;
  }
  // Realtime accumulated: flush whatever remains below the threshold so a
  // finished round does not strand messages forever.
  if (const auto* realtime = std::get_if<RealtimeAccumulated>(&strategy_)) {
    if (!shelf_.empty()) {
      DispatchBatch(shelf_.size(), realtime->failure_probability, 0);
    }
  }
}

bool Dispatcher::TransmissionDrop(const Message& message,
                                  double failure_probability) {
  if (failure_probability <= 0.0) return false;
  // One uniform in [0, 1) per message, hashed from (drop key, message id)
  // — two SplitMix64 rounds instead of a child-Rng construction, since
  // this sits on the per-message reference path.
  // (HashCombine is the historical two-round SplitMix64 mix, bit for bit.)
  return HashUnit(HashCombine(drop_seed_, message.id.value())) <
         failure_probability;
}

bool Dispatcher::LinkFaultsActive() const {
  return link_.active() || availability_ != nullptr ||
         link_probability_ != nullptr;
}

Dispatcher::AttemptOutcome Dispatcher::TryAttempt(const Message& message,
                                                  SimTime when,
                                                  std::size_t attempt) const {
  // Churn first: an offline / churned-out device cannot attempt at all.
  if (availability_ && !availability_(message.device, when)) {
    return AttemptOutcome::kChurn;
  }
  const double p = link_probability_
                       ? link_probability_(message.device, when)
                       : link_.transient_failure_probability;
  if (p <= 0.0) return AttemptOutcome::kDelivered;
  // Keyed draw: even-numbered sub-keys are failure draws, odd ones jitter
  // (RetryDelay), so the two never alias. Pure in (seed, id, attempt) —
  // identical at every shard width and in both delivery modes.
  const std::uint64_t draw =
      DeterministicHash(retry_seed_, message.id.value(), attempt * 2);
  return HashUnit(draw) < p ? AttemptOutcome::kTransient
                            : AttemptOutcome::kDelivered;
}

SimDuration Dispatcher::RetryDelay(std::uint64_t message_id,
                                   std::size_t attempt) const {
  // Exponential backoff, capped, plus deterministic jitter in [0, base/4]
  // so equal-time retry collisions across messages are measure-zero (the
  // merged shard log and the unsharded log tie-break equal stamps
  // differently; jitter keeps that divergence out of reach).
  double base = ToSeconds(link_.backoff_initial);
  for (std::size_t k = 1; k < attempt; ++k) {
    base *= link_.backoff_multiplier;
    if (Seconds(base) >= link_.backoff_max) break;
  }
  SimDuration backoff = std::min(link_.backoff_max, Seconds(base));
  if (backoff < 1) backoff = 1;
  const std::uint64_t jitter_draw =
      DeterministicHash(retry_seed_, message_id, attempt * 2 + 1);
  const SimDuration jitter = static_cast<SimDuration>(
      jitter_draw % static_cast<std::uint64_t>(backoff / 4 + 1));
  return backoff + jitter;
}

void Dispatcher::OnAttemptFailed(Message message, SimTime first_attempt,
                                 std::size_t attempt, bool churn) {
  const std::size_t next = attempt + 1;
  const std::size_t max_attempts = std::max<std::size_t>(1, link_.max_attempts);
  if (next >= max_attempts) {
    // Attempts exhausted: the loss classification follows the LAST failure
    // cause — an offline device is a churn loss, a flaky link plain loss.
    ++stats_.dropped;
    if (churn) ++stats_.churn_losses;
    return;
  }
  const SimTime when = first_attempt + RetryDelay(message.id.value(), next);
  if (link_.upload_deadline > 0 &&
      when > first_attempt + link_.upload_deadline) {
    // Deadline math uses first_attempt, itself a pure function of the
    // message's arrival, so the verdict is width-invariant too.
    ++stats_.dropped;
    ++stats_.deadline_drops;
    return;
  }
  ++stats_.retries;
  // NOTE: `when` anchors on first_attempt plus the CUMULATIVE-free backoff
  // of attempt `next` — retry k fires at first + delay(k), not at the
  // previous failure time plus delay. Both are pure schedules; this one
  // keeps every attempt time derivable from (arrival, id, k) alone.
  TrackRetryEvent(loop_.ScheduleAt(
      when, [this, message = std::move(message), first_attempt,
             next]() mutable {
        const SimTime now = loop_.Now();
        switch (TryAttempt(message, now, next)) {
          case AttemptOutcome::kDelivered:
            DeliverRetried(std::move(message), now);
            break;
          case AttemptOutcome::kChurn:
            OnAttemptFailed(std::move(message), first_attempt, next, true);
            break;
          case AttemptOutcome::kTransient:
            OnAttemptFailed(std::move(message), first_attempt, next, false);
            break;
        }
      }));
}

void Dispatcher::DeliverRetried(Message message, SimTime when) {
  ++stats_.sent;
  ++stats_.retry_successes;
  // A retried delivery is its own single-message tick in the batch log —
  // stamped at its (jittered, message-keyed) delivery time, so per-shard
  // logs still interleave back into one canonical order.
  if (stats_.batches.size() < batch_log_cap_) {
    stats_.batches.emplace_back(when, 1);
    stats_.batch_keys.push_back(message.id.value());
  } else {
    ++stats_.batches_truncated;
  }
  if (downstream_ == nullptr) return;
  if (delivery_mode_ != DeliveryMode::kBatched) {
    downstream_->Deliver(message, when);
    return;
  }
  const SimTime arrival = when;
  if (decoder_ != nullptr) {
    const DecodedUpdate update = decoder_->Decode(std::move(message));
    downstream_->DeliverDecodedBatch(std::span<const DecodedUpdate>(&update, 1),
                                     std::span<const SimTime>(&arrival, 1));
  } else {
    downstream_->DeliverBatch(std::span<const Message>(&message, 1),
                              std::span<const SimTime>(&arrival, 1));
  }
}

void Dispatcher::DispatchBatch(std::size_t count, double failure_probability,
                               std::size_t random_discard) {
  // Every vector this tick touches comes from (and returns to) the
  // dispatcher's buffer pool; steady-state ticks allocate nothing.
  std::vector<Message> batch = tick_pool_->messages.Acquire();
  shelf_.TakeInto(count, batch);
  if (batch.empty()) {
    tick_pool_->messages.Release(std::move(batch));
    return;
  }
  const SimTime now = loop_.Now();
  // Log key for this tick (see DispatchStats::batch_keys); captured
  // before drops and moves below can disturb the batch.
  const std::uint64_t batch_key = batch.front().id.value();

  // Dropout method 2: randomly discard a fixed number of messages.
  if (random_discard > 0 && !batch.empty()) {
    const std::size_t discard = std::min(random_discard, batch.size());
    const auto victims =
        rng_.SampleWithoutReplacement(batch.size(), discard);
    std::vector<bool> dead(batch.size(), false);
    for (std::size_t v : victims) dead[v] = true;
    std::vector<Message> kept = tick_pool_->messages.Acquire();
    kept.reserve(batch.size() - discard);
    for (std::size_t i = 0; i < batch.size(); ++i) {
      if (!dead[i]) kept.push_back(std::move(batch[i]));
    }
    stats_.dropped += discard;
    std::swap(batch, kept);
    tick_pool_->messages.Release(std::move(kept));
  }

  // Capacity limit: each message occupies one 1/capacity slot on the
  // single-threaded sender, so a big batch reaches the cloud spread over
  // "the designated time point and subsequent certain intervals" (Fig 10b).
  double capacity = kDefaultCapacityPerSecond;
  if (const auto* interval = std::get_if<TimeIntervalDispatch>(&strategy_)) {
    capacity = interval->capacity_per_second;
  } else if (const auto* realtime = std::get_if<RealtimeAccumulated>(&strategy_)) {
    capacity = realtime->capacity_per_second;
  }
  // Infinite capacity means zero serialization delay — every message of
  // the tick carries the tick's own timestamp, independent of how many
  // other messages this dispatcher has sent (the width-invariant regime).
  // Finite capacities keep the historical >= 1 microsecond floor.
  const SimDuration per_message =
      std::isinf(capacity)
          ? 0
          : std::max<SimDuration>(1, static_cast<SimDuration>(1e6 / capacity));

  // The batched and per-message paths share this loop verbatim: identical
  // RNG draw order, identical next_send_time_ arithmetic, identical stats.
  // They differ only in how the survivors reach the event loop below.
  std::size_t sent = 0;
  std::vector<Message> survivors = tick_pool_->messages.Acquire();
  std::vector<SimTime> arrivals = tick_pool_->arrivals.Acquire();
  const bool batched =
      delivery_mode_ == DeliveryMode::kBatched && downstream_ != nullptr;
  const bool link_active = LinkFaultsActive();
  next_send_time_ = std::max(next_send_time_, now);
  if (batched && failure_probability <= 0.0 && !link_active) {
    // No transmission-failure draws: the whole batch survives, so adopt it
    // wholesale instead of moving message-by-message (same zero RNG draws
    // and the same arrival arithmetic as the general loop below).
    sent = batch.size();
    arrivals.reserve(batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
      arrivals.push_back(next_send_time_);
      next_send_time_ += per_message;
    }
    std::swap(survivors, batch);
  } else {
    if (batched) {
      survivors.reserve(batch.size());
      arrivals.reserve(batch.size());
    }
    for (auto& message : batch) {
      // Dropout method 1: per-message transmission failure (message-keyed
      // draw — see TransmissionDrop).
      if (TransmissionDrop(message, failure_probability)) {
        ++stats_.dropped;
        continue;
      }
      // Transient-link fault plane: attempt 0 happens at the message's
      // would-be arrival stamp. A failed first attempt neither counts as
      // sent nor advances the rate limiter — the message leaves the tick
      // and lives on its own retry schedule (or books its loss).
      if (link_active) {
        const AttemptOutcome outcome =
            TryAttempt(message, next_send_time_, 0);
        if (outcome != AttemptOutcome::kDelivered) {
          OnAttemptFailed(std::move(message), next_send_time_, 0,
                          outcome == AttemptOutcome::kChurn);
          continue;
        }
      }
      const SimTime arrival = next_send_time_;
      next_send_time_ += per_message;
      ++sent;
      if (downstream_ == nullptr) continue;
      if (batched) {
        survivors.push_back(std::move(message));
        arrivals.push_back(arrival);
      } else {
        Message delivered = std::move(message);
        CloudEndpoint* sink = downstream_;
        loop_.ScheduleAt(arrival, [sink, delivered = std::move(delivered),
                                   arrival]() mutable {
          sink->Deliver(delivered, arrival);
        });
      }
    }
  }
  if (!survivors.empty()) {
    // One event per dispatch tick: the whole capacity window reaches the
    // sink in a single DeliverBatch call at the window's first arrival,
    // carrying the exact per-message arrival stamps the per-message path
    // would have delivered at. Round fan-in is O(ticks), not O(messages).
    // Delivery events return their buffers to the pool after the sink
    // consumed them; the shared_ptr keeps the pool alive even if this
    // dispatcher is removed before the event fires.
    const SimTime first = arrivals.front();
    CloudEndpoint* sink = downstream_;
    std::shared_ptr<TickBufferPool> pool = tick_pool_;
    if (decoder_ != nullptr) {
      // Decoded plane: fetch + decode every survivor NOW, at tick time —
      // on the shard loop's worker thread when fleets advance in lockstep
      // — so the delivery event carries ready-to-accumulate updates and
      // the serial side never touches storage. Blobs are immutable once
      // Put, so decoding ahead of the delivery timestamp observes the
      // same bytes; failures ride along for deferred accounting.
      std::vector<DecodedUpdate> decoded = tick_pool_->decoded.Acquire();
      decoded.reserve(survivors.size());
      for (Message& message : survivors) {
        decoded.push_back(decoder_->Decode(std::move(message)));
      }
      tick_pool_->messages.Release(std::move(survivors));
      loop_.ScheduleAt(first, [sink, pool = std::move(pool),
                               decoded = std::move(decoded),
                               arrivals = std::move(arrivals)]() mutable {
        sink->DeliverDecodedBatch(std::span<const DecodedUpdate>(decoded),
                                  std::span<const SimTime>(arrivals));
        pool->decoded.Release(std::move(decoded));
        pool->arrivals.Release(std::move(arrivals));
      });
    } else {
      loop_.ScheduleAt(first, [sink, pool = std::move(pool),
                               survivors = std::move(survivors),
                               arrivals = std::move(arrivals)]() mutable {
        sink->DeliverBatch(std::span<const Message>(survivors),
                           std::span<const SimTime>(arrivals));
        pool->messages.Release(std::move(survivors));
        pool->arrivals.Release(std::move(arrivals));
      });
    }
  } else {
    tick_pool_->messages.Release(std::move(survivors));
    tick_pool_->arrivals.Release(std::move(arrivals));
  }
  tick_pool_->messages.Release(std::move(batch));
  stats_.sent += sent;
  if (stats_.batches.size() < batch_log_cap_) {
    stats_.batches.emplace_back(now, sent);
    stats_.batch_keys.push_back(batch_key);
  } else {
    ++stats_.batches_truncated;
  }
}

Status DeviceFlow::ConfigureTask(TaskId task, DispatchStrategy strategy,
                                 CloudEndpoint* downstream, std::uint64_t seed,
                                 DeliveryMode delivery_mode) {
  if (dispatchers_.contains(task)) {
    return AlreadyExists("DeviceFlow: task already configured: " +
                         task.ToString());
  }
  dispatchers_.emplace(task, std::make_unique<Dispatcher>(
                                 loop_, task, std::move(strategy), downstream,
                                 seed, delivery_mode));
  return Status::Ok();
}

Status DeviceFlow::RemoveTask(TaskId task) {
  if (dispatchers_.erase(task) == 0) {
    return NotFound("DeviceFlow: unknown task: " + task.ToString());
  }
  return Status::Ok();
}

Status DeviceFlow::OnMessage(Message message) {
  // Sorter: route to the task's shelf by the task_id inside the message.
  const auto it = dispatchers_.find(message.task);
  if (it == dispatchers_.end()) {
    return NotFound("DeviceFlow sorter: no shelf for " +
                    message.task.ToString());
  }
  it->second->OnMessage(std::move(message));
  return Status::Ok();
}

Status DeviceFlow::OnRoundStart(TaskId task, std::size_t round) {
  const auto it = dispatchers_.find(task);
  if (it == dispatchers_.end()) {
    return NotFound("DeviceFlow: unknown task: " + task.ToString());
  }
  it->second->OnRoundStart(round);
  return Status::Ok();
}

Status DeviceFlow::OnRoundEnd(TaskId task, std::size_t round) {
  const auto it = dispatchers_.find(task);
  if (it == dispatchers_.end()) {
    return NotFound("DeviceFlow: unknown task: " + task.ToString());
  }
  it->second->OnRoundEnd(round);
  return Status::Ok();
}

const Dispatcher* DeviceFlow::FindDispatcher(TaskId task) const {
  const auto it = dispatchers_.find(task);
  return it == dispatchers_.end() ? nullptr : it->second.get();
}

Dispatcher* DeviceFlow::FindDispatcher(TaskId task) {
  const auto it = dispatchers_.find(task);
  return it == dispatchers_.end() ? nullptr : it->second.get();
}

}  // namespace simdc::flow
