#include "flow/strategy.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/error.h"

namespace simdc::flow {
namespace {

/// Area under `rate` across one slot via 8-point midpoint quadrature.
double SlotAuc(const RateFunction& rate, double lo, double hi) {
  constexpr int kSamples = 8;
  const double width = hi - lo;
  double area = 0.0;
  for (int i = 0; i < kSamples; ++i) {
    const double t = lo + width * (static_cast<double>(i) + 0.5) /
                              static_cast<double>(kSamples);
    area += std::max(0.0, rate(t));
  }
  return area * width / kSamples;
}

}  // namespace

std::vector<SlotPlan> DiscretizeRate(const RateFunction& rate,
                                     SimDuration interval,
                                     std::size_t total_messages,
                                     double capacity_per_second,
                                     std::size_t min_slots,
                                     std::size_t max_slots) {
  SIMDC_CHECK(interval > 0, "dispatch interval must be positive");
  SIMDC_CHECK(rate.domain_hi > rate.domain_lo, "empty rate-function domain");
  SIMDC_CHECK(capacity_per_second > 0, "capacity must be positive");
  if (total_messages == 0) return {};

  // Grow the slot count until "the number of messages sent at any single
  // point does not exceed the transmission capacity limit" (§V-B): the
  // peak slot must dispatch at most one second's worth of the
  // single-threaded sender's throughput. Any residual burstiness is
  // absorbed by the dispatcher's rate limiter, which is exactly the
  // spreading the paper notes for Fig. 10(b).
  std::size_t slots = std::max<std::size_t>(2, min_slots);
  std::vector<double> areas;
  const double per_point_budget = std::max(1.0, capacity_per_second);
  for (;; slots = std::min(slots * 2, max_slots)) {
    areas.assign(slots, 0.0);
    const double width = rate.domain_width() / static_cast<double>(slots);
    double total_area = 0.0;
    for (std::size_t i = 0; i < slots; ++i) {
      const double lo = rate.domain_lo + width * static_cast<double>(i);
      areas[i] = SlotAuc(rate, lo, lo + width);
      total_area += areas[i];
    }
    SIMDC_CHECK(total_area > 0.0, "rate function integrates to zero");
    for (double& a : areas) a /= total_area;  // AUC ratios

    const double peak_count =
        *std::max_element(areas.begin(), areas.end()) *
        static_cast<double>(total_messages);
    if (peak_count <= per_point_budget || slots >= max_slots) {
      break;
    }
  }

  // Largest-remainder apportionment: counts sum exactly to total_messages.
  std::vector<SlotPlan> plan(slots);
  std::vector<std::pair<double, std::size_t>> remainders(slots);
  std::size_t assigned = 0;
  for (std::size_t i = 0; i < slots; ++i) {
    const double exact = areas[i] * static_cast<double>(total_messages);
    const auto base = static_cast<std::size_t>(exact);
    plan[i].offset = static_cast<SimTime>(
        static_cast<double>(interval) * static_cast<double>(i) /
        static_cast<double>(slots));
    plan[i].count = base;
    assigned += base;
    remainders[i] = {exact - static_cast<double>(base), i};
  }
  std::sort(remainders.begin(), remainders.end(),
            [](const auto& a, const auto& b) {
              if (a.first != b.first) return a.first > b.first;
              return a.second < b.second;  // deterministic tie-break
            });
  for (std::size_t k = 0; assigned < total_messages; ++k) {
    ++plan[remainders[k % slots].second].count;
    ++assigned;
  }
  return plan;
}

}  // namespace simdc::flow
