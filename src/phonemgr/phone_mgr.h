// PhoneMgr — management of the physical devices cluster.
//
// §III-B / §IV-C: PhoneMgr "is responsible for selecting appropriate real
// phone devices to participate in the simulation based on task
// requirements. It manages task submission, status monitoring, termination
// operations, and performance measurement." The cluster distinguishes
// Computing Devices (simulate device computations, possibly several
// sequentially per phone) from Benchmarking Devices (train one device's
// workload while being sampled for power/CPU/memory/bandwidth; "not reused
// as computation units").
//
// All measurement goes through the simulated ADB shell + text parsers —
// the same pipeline a real deployment uses — and samples are pushed to a
// MetricsSink (the cloud database).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "adb/adb_server.h"
#include "common/error.h"
#include "common/ids.h"
#include "device/fleet.h"
#include "device/fleet_store.h"
#include "device/grade.h"
#include "device/perf_sample.h"
#include "device/phone.h"
#include "sim/event_loop.h"

namespace simdc::device {

/// A device-simulation job for one grade (one slice of a platform task).
struct PhoneJob {
  TaskId task;
  DeviceGrade grade = DeviceGrade::kHigh;
  /// Simulated devices to run on computing phones (N_i - q_i - x_i).
  std::size_t devices_to_simulate = 0;
  /// Computing phones to spread them over (m_i).
  std::size_t computing_phones = 0;
  /// Benchmarking phones (q_i), each training one device's workload under
  /// measurement; not reused for bulk computation.
  std::size_t benchmarking_phones = 0;
  /// Idle time before APK launch (Table I stage 1: "clearing background
  /// tasks without running the APK"); sampling covers it.
  double pre_idle_s = 0.0;
  /// Multi-round operator flow repetition (paper §III-A).
  std::size_t rounds = 1;
  /// β_i: seconds per device-batch of training on a phone.
  double round_duration_s = 2.0;
  /// λ_i: APK / compute-framework startup seconds.
  double startup_s = 15.0;
  /// Wait between rounds (global aggregation latency seen by the device).
  double aggregation_wait_s = 10.0;
  /// Per-round communication volumes (bytes).
  std::int64_t download_bytes = 16 * 1024;
  std::int64_t upload_bytes = 17 * 1024;
  /// Sampling period for benchmarking phones.
  SimDuration sample_period = Seconds(15.0);
  /// Probability that the training APK crashes during any given round
  /// (§II-B lists application crashes among real edge-device behaviors).
  /// A crashed round produces no upload and is retried after recovery.
  double crash_probability = 0.0;
  /// Seconds to detect a crash and relaunch the compute framework.
  double crash_recovery_s = 20.0;
  /// Attempts per round before giving up on it (guards pathological p≈1).
  std::size_t max_round_attempts = 5;
  /// Seed for crash draws (split per phone).
  std::uint64_t seed = 0;
  /// Fires when a phone finishes one round (hook for DeviceFlow messages).
  std::function<void(PhoneId, std::size_t round, SimTime when)> on_round_complete;
  /// Fires once when the whole job is done.
  std::function<void(TaskId, SimTime when)> on_complete;
};

/// Handle describing a submitted job's layout and timing.
struct PhoneJobHandle {
  TaskId task;
  std::vector<PhoneId> computing;
  std::vector<PhoneId> benchmarking;
  SimTime finish_time = 0;
  /// APK crashes injected across all phones of the job.
  std::size_t crashes = 0;
  /// Rounds abandoned after max_round_attempts consecutive crashes.
  std::size_t abandoned_rounds = 0;
};

class PhoneMgr {
 public:
  /// `loop` drives stage schedules and sampling; its clock is shared by
  /// all registered phones.
  explicit PhoneMgr(sim::EventLoop& loop) : loop_(loop) {}

  /// Registers a phone in the cluster. Returns its id.
  PhoneId RegisterPhone(const PhoneSpec& spec);

  /// Registers a whole fleet (see device/fleet.h).
  void RegisterFleet(const std::vector<PhoneSpec>& fleet);

  /// Removes a phone from the cluster (dynamic scale-down, §III-B).
  /// Fails when the phone is running a task or unknown. O(log n):
  /// tombstones the phone's slot in the SoA store for later reuse instead
  /// of shifting the arrays and rebuilding every index.
  Status UnregisterPhone(PhoneId id);

  std::size_t TotalPhones() const { return store_.live_count(); }
  std::size_t CountIdle(DeviceGrade grade) const {
    return store_.CountIdle(GradeIndex(grade));
  }
  std::size_t CountTotal(DeviceGrade grade) const {
    return store_.CountTotal(GradeIndex(grade));
  }

  Phone* FindPhone(PhoneId id);
  const Phone* FindPhone(PhoneId id) const;
  adb::AdbServer* FindAdb(PhoneId id);

  /// Lifetime counters for one phone (jobs, completed rounds, crashes,
  /// perf samples); nullopt when the id is unknown. Counters reset when a
  /// phone is unregistered and its slot re-registered.
  std::optional<PhonePerfCounters> CountersFor(PhoneId id) const;

  /// Submits a job: selects phones, installs run plans, arms benchmarking
  /// samplers, schedules completion callbacks. Fails when the cluster has
  /// too few idle phones of the grade.
  Result<PhoneJobHandle> SubmitJob(const PhoneJob& job);

  /// Terminates a task early: clears plans and frees its phones.
  Status TerminateTask(TaskId task);

  void set_metrics_sink(MetricsSink* sink) { sink_ = sink; }

  /// Predicted makespan of a job per the allocation model:
  /// ceil(devices/m) * β + λ (paper §IV-B), plus aggregation waits.
  static double PredictJobSeconds(const PhoneJob& job);

 private:
  /// Locality slot inside the per-grade idle free-lists: local phones are
  /// preferred over remote MSP devices (same order as the historical scan).
  static std::size_t LocalityIndex(const PhoneSpec& spec) {
    return spec.remote_msp ? 1 : 0;
  }

  void InstallPlans(const PhoneJob& job,
                    const std::vector<std::size_t>& computing,
                    const std::vector<std::size_t>& benchmarking,
                    PhoneJobHandle& handle);
  void ArmSampler(std::size_t slot, const PhoneJob& job);
  /// One self-rescheduling sampler tick: measures through the ADB pipeline,
  /// then re-arms itself `period` later while `end` has not passed.
  void RunSampler(adb::AdbServer* shell, Phone* phone, std::string process,
                  TaskId task, PhoneId phone_id, SimDuration period,
                  SimTime end);
  /// Busy-flag transitions routed through the manager so the store's idle
  /// free-lists stay in sync with Phone::busy().
  void MarkBusy(std::size_t slot);
  void ReleasePhone(PhoneId id);

  static constexpr std::size_t npos = FleetStore::npos;

  sim::EventLoop& loop_;
  /// Scheduling-hot per-phone state (grade, locality, busy bit, owner,
  /// counters) as struct-of-arrays; the authority for slot liveness, the
  /// PhoneId → slot map and the idle free-lists.
  FleetStore store_;
  /// Cold per-phone objects, slot-aligned with store_ (null at tombstoned
  /// slots). Heap indirection keeps Phone/AdbServer addresses stable
  /// across registrations, which the sampler closures rely on.
  std::vector<std::unique_ptr<Phone>> phone_slots_;
  std::vector<std::unique_ptr<adb::AdbServer>> adb_slots_;
  MetricsSink* sink_ = nullptr;
  int next_pid_ = 4200;
};

}  // namespace simdc::device
