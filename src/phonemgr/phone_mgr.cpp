#include "phonemgr/phone_mgr.h"

#include <algorithm>
#include <cmath>

#include "adb/parsers.h"
#include "common/log.h"
#include "common/string_util.h"

namespace simdc::device {
namespace {

constexpr double kClosureSeconds = 15.0;  // Table I stage 5: 0.25 min

}  // namespace

std::size_t PhoneMgr::IndexOf(PhoneId id) const {
  const auto it = index_.find(id.value());
  return it == index_.end() ? npos : it->second;
}

void PhoneMgr::RebuildIndex() {
  index_.clear();
  for (auto& grade_sets : idle_) {
    for (auto& locality_set : grade_sets) locality_set.clear();
  }
  for (auto& totals : total_) totals[0] = totals[1] = 0;
  for (std::size_t i = 0; i < phones_.size(); ++i) {
    const auto& spec = phones_[i].phone->spec();
    index_.emplace(spec.id.value(), i);
    const std::size_t g = GradeIndex(spec.grade);
    const std::size_t l = LocalityIndex(spec);
    ++total_[g][l];
    if (!phones_[i].phone->busy()) idle_[g][l].insert(i);
  }
}

PhoneId PhoneMgr::RegisterPhone(const PhoneSpec& spec) {
  // First registration wins: a second phone with the same id would be
  // unreachable through every id-keyed path (FindPhone, MarkBusy,
  // ReleasePhone) and would desynchronize the idle free-lists, so it is
  // not admitted at all.
  if (index_.contains(spec.id.value())) return spec.id;
  Entry entry;
  entry.phone = std::make_unique<Phone>(spec, loop_.clock());
  entry.adb = std::make_unique<adb::AdbServer>(*entry.phone);
  phones_.push_back(std::move(entry));
  const std::size_t index = phones_.size() - 1;
  index_.emplace(spec.id.value(), index);
  const std::size_t g = GradeIndex(spec.grade);
  const std::size_t l = LocalityIndex(spec);
  ++total_[g][l];
  idle_[g][l].insert(index);
  return spec.id;
}

void PhoneMgr::RegisterFleet(const std::vector<PhoneSpec>& fleet) {
  for (const auto& spec : fleet) RegisterPhone(spec);
}

Status PhoneMgr::UnregisterPhone(PhoneId id) {
  const std::size_t index = IndexOf(id);
  if (index == npos) return NotFound("unknown phone " + id.ToString());
  if (phones_[index].phone->busy()) {
    return FailedPrecondition("cannot unregister busy phone " +
                              id.ToString());
  }
  phones_.erase(phones_.begin() + static_cast<std::ptrdiff_t>(index));
  // Scale-down is rare; an O(n) rebuild keeps every index structure exact
  // after the vector shift.
  RebuildIndex();
  return Status::Ok();
}

std::size_t PhoneMgr::CountIdle(DeviceGrade grade) const {
  const std::size_t g = GradeIndex(grade);
  return idle_[g][0].size() + idle_[g][1].size();
}

std::size_t PhoneMgr::CountTotal(DeviceGrade grade) const {
  const std::size_t g = GradeIndex(grade);
  return total_[g][0] + total_[g][1];
}

Phone* PhoneMgr::FindPhone(PhoneId id) {
  const std::size_t index = IndexOf(id);
  return index == npos ? nullptr : phones_[index].phone.get();
}

const Phone* PhoneMgr::FindPhone(PhoneId id) const {
  const std::size_t index = IndexOf(id);
  return index == npos ? nullptr : phones_[index].phone.get();
}

adb::AdbServer* PhoneMgr::FindAdb(PhoneId id) {
  const std::size_t index = IndexOf(id);
  return index == npos ? nullptr : phones_[index].adb.get();
}

void PhoneMgr::MarkBusy(Entry& entry) {
  entry.phone->set_busy(true);
  const std::size_t index = IndexOf(entry.phone->spec().id);
  if (index == npos) return;
  const auto& spec = entry.phone->spec();
  idle_[GradeIndex(spec.grade)][LocalityIndex(spec)].erase(index);
}

void PhoneMgr::ReleasePhone(PhoneId id) {
  const std::size_t index = IndexOf(id);
  if (index == npos) return;  // unregistered while its job wound down
  Entry& entry = phones_[index];
  entry.phone->set_busy(false);
  entry.phone->set_benchmarking(false);
  entry.owner = TaskId();
  const auto& spec = entry.phone->spec();
  idle_[GradeIndex(spec.grade)][LocalityIndex(spec)].insert(index);
}

std::vector<PhoneMgr::Entry*> PhoneMgr::SelectIdle(DeviceGrade grade,
                                                   std::size_t count) {
  // The free-lists are ordered by registration index and split local/MSP,
  // so walking them reproduces the historical "prefer local, registration
  // order" linear scan at O(count log n) instead of O(n).
  std::vector<Entry*> selected;
  selected.reserve(count);
  const std::size_t g = GradeIndex(grade);
  for (const auto& locality_set : idle_[g]) {
    for (const std::size_t index : locality_set) {
      if (selected.size() == count) return selected;
      selected.push_back(&phones_[index]);
    }
  }
  return selected;
}

Result<PhoneJobHandle> PhoneMgr::SubmitJob(const PhoneJob& job) {
  if (job.rounds == 0) return InvalidArgument("PhoneJob: rounds == 0");
  if (job.devices_to_simulate > 0 && job.computing_phones == 0) {
    return InvalidArgument("PhoneJob: devices to simulate but no phones");
  }
  const std::size_t want =
      job.computing_phones + job.benchmarking_phones;
  if (want == 0) return InvalidArgument("PhoneJob: no phones requested");
  if (CountIdle(job.grade) < want) {
    return ResourceExhausted(StrFormat(
        "PhoneMgr: need %zu idle %s-grade phones, have %zu", want,
        std::string(ToString(job.grade)).c_str(), CountIdle(job.grade)));
  }

  auto selected = SelectIdle(job.grade, want);
  std::vector<Entry*> benchmarking(selected.begin(),
                                   selected.begin() +
                                       static_cast<std::ptrdiff_t>(job.benchmarking_phones));
  std::vector<Entry*> computing(selected.begin() +
                                    static_cast<std::ptrdiff_t>(job.benchmarking_phones),
                                selected.end());

  PhoneJobHandle handle;
  handle.task = job.task;
  InstallPlans(job, computing, benchmarking, handle);

  for (Entry* entry : benchmarking) {
    entry->phone->set_benchmarking(true);
    ArmSampler(*entry, job);
  }

  // Completion: free phones and fire the callback at the latest closure.
  std::vector<PhoneId> all_ids = handle.computing;
  all_ids.insert(all_ids.end(), handle.benchmarking.begin(),
                 handle.benchmarking.end());
  const TaskId task = job.task;
  auto on_complete = job.on_complete;
  loop_.ScheduleAt(handle.finish_time, [this, all_ids, task, on_complete] {
    for (PhoneId id : all_ids) ReleasePhone(id);
    if (on_complete) on_complete(task, loop_.Now());
  });
  return handle;
}

void PhoneMgr::InstallPlans(const PhoneJob& job,
                            std::vector<Entry*>& computing,
                            std::vector<Entry*>& benchmarking,
                            PhoneJobHandle& handle) {
  const SimTime now = loop_.Now();
  // Devices multiplex over computing phones: each phone sequentially
  // simulates ceil(N/m) devices per round (paper §IV-B: a single physical
  // device is "capable of repetitive emulation of multiple devices").
  const std::size_t reps =
      computing.empty() ? 0
                        : (job.devices_to_simulate + computing.size() - 1) /
                              computing.size();
  // Round-completion hooks for the whole job are collected and inserted
  // with one heap rebuild (phones × rounds of them at 10k-fleet scale).
  std::vector<sim::TimedEvent> hooks;
  hooks.reserve((computing.size() + benchmarking.size()) * job.rounds);

  auto install = [&](Entry& entry, std::size_t device_batches) {
    const SimTime train_window =
        Seconds(job.round_duration_s * static_cast<double>(
                                           std::max<std::size_t>(1, device_batches)));
    // Crash draws are deterministic per (job seed, phone); the entire
    // schedule — including crash truncations and recovery relaunches — is
    // computed up front, so phone state stays a pure function of time.
    Rng crash_rng =
        Rng(job.seed ^ job.task.value()).Split(entry.phone->spec().id.value());

    RunPlan plan;
    plan.apk_launch_start = now + Seconds(job.pre_idle_s);
    plan.pid = next_pid_++;
    SimTime cursor = plan.apk_launch_start + Seconds(job.startup_s);
    SimTime end = 0;
    std::size_t round = 0;
    std::size_t attempts = 0;
    while (round < job.rounds) {
      const bool crash = job.crash_probability > 0.0 &&
                         crash_rng.Bernoulli(job.crash_probability);
      RoundWindow window;
      window.train_start = cursor;
      window.download_bytes = job.download_bytes;
      if (crash) {
        // The APK dies partway through the round: no upload, abrupt
        // closure, then a recovery relaunch that retries the round.
        ++handle.crashes;
        const double fraction = crash_rng.Uniform(0.1, 0.9);
        window.train_end =
            cursor + std::max<SimTime>(
                         1, static_cast<SimTime>(
                                static_cast<double>(train_window) * fraction));
        window.upload_bytes = 0;
        plan.rounds.push_back(window);
        plan.closure_start = window.train_end;
        plan.closure_end = window.train_end + Seconds(1.0);
        const SimTime relaunch =
            plan.closure_end + Seconds(job.crash_recovery_s);
        entry.phone->ScheduleRun(std::move(plan));
        plan = RunPlan{};
        plan.apk_launch_start = relaunch;
        plan.pid = next_pid_++;
        cursor = relaunch + Seconds(job.startup_s);
        if (++attempts >= job.max_round_attempts) {
          ++handle.abandoned_rounds;
          attempts = 0;
          ++round;  // give up on this round
        }
        continue;
      }
      window.train_end = cursor + train_window;
      window.upload_bytes = job.upload_bytes;
      plan.rounds.push_back(window);
      // Fire the round-completion hook (message to DeviceFlow).
      if (job.on_round_complete) {
        const PhoneId id = entry.phone->spec().id;
        auto hook = job.on_round_complete;
        const std::size_t completed = round;
        hooks.push_back({window.train_end, [hook, id, completed, this] {
                           hook(id, completed, loop_.Now());
                         }});
      }
      cursor = window.train_end + Seconds(job.aggregation_wait_s);
      attempts = 0;
      ++round;
    }
    if (plan.rounds.empty()) {
      // Every round of the final segment crashed away; the previous
      // segment already closed the APK.
      end = cursor;
    } else {
      plan.closure_start = cursor;
      plan.closure_end = cursor + Seconds(kClosureSeconds);
      end = plan.closure_end;
      entry.phone->ScheduleRun(std::move(plan));
    }
    MarkBusy(entry);
    entry.owner = job.task;
    handle.finish_time = std::max(handle.finish_time, end);
  };

  for (Entry* entry : computing) {
    install(*entry, reps);
    handle.computing.push_back(entry->phone->spec().id);
  }
  for (Entry* entry : benchmarking) {
    // Benchmarking devices train exactly one device's workload per round.
    install(*entry, 1);
    handle.benchmarking.push_back(entry->phone->spec().id);
  }
  (void)loop_.ScheduleBulk(std::move(hooks));
}

void PhoneMgr::ArmSampler(Entry& entry, const PhoneJob& job) {
  const RunPlan* plan = entry.phone->plan();
  if (plan == nullptr) return;
  // Sampling starts immediately (covering the pre-launch idle stage) and
  // runs through APK closure. One self-rescheduling sampler event per
  // phone keeps the heap at one live event per benchmarking phone instead
  // of one closure per sample (a week of 15 s samples is ~40k closures).
  const SimDuration period =
      job.sample_period > 0 ? job.sample_period : Seconds(1.0);
  const SimTime end = plan->closure_end;
  adb::AdbServer* shell = entry.adb.get();
  Phone* phone = entry.phone.get();
  std::string process = plan->process_name;
  const TaskId task = job.task;
  const PhoneId phone_id = entry.phone->spec().id;
  loop_.ScheduleAt(loop_.Now(),
                   [this, shell, phone, process = std::move(process), task,
                    phone_id, period, end] {
                     RunSampler(shell, phone, process, task, phone_id, period,
                                end);
                   });
}

void PhoneMgr::RunSampler(adb::AdbServer* shell, Phone* phone,
                          std::string process, TaskId task, PhoneId phone_id,
                          SimDuration period, SimTime end) {
  if (sink_ != nullptr) {
    // A real deployment issues these exact ADB commands (§IV-C) and
    // post-processes the text; we do the same against the simulation.
    PerfSample sample;
    sample.phone = phone_id;
    sample.task = task;
    sample.time = loop_.Now();
    sample.stage = phone->CurrentStage();

    if (auto out = shell->Shell(
            "cat /sys/class/power_supply/battery/current_now");
        out.ok()) {
      if (auto v = adb::ParseSysfsValue(*out); v.ok()) sample.current_ua = *v;
    }
    if (auto out = shell->Shell(
            "cat /sys/class/power_supply/battery/voltage_now");
        out.ok()) {
      if (auto v = adb::ParseSysfsValue(*out); v.ok()) {
        sample.voltage_mv = static_cast<double>(*v) / 1000.0;
      }
    }
    if (auto pgrep = shell->Shell("pgrep -f " + process); pgrep.ok()) {
      if (auto pid = adb::ParsePgrepPid(*pgrep); pid.ok()) {
        if (auto top = shell->Shell(StrFormat("top -b -n 1 -p %d", *pid));
            top.ok()) {
          if (auto cpu = adb::ParseTopCpuPercent(*top, *pid); cpu.ok()) {
            sample.cpu_percent = *cpu;
          }
        }
        if (auto mem = shell->Shell("dumpsys meminfo " + process); mem.ok()) {
          if (auto pss = adb::ParseDumpsysPssKb(*mem); pss.ok()) {
            sample.memory_kb = *pss;
          }
        }
        if (auto net = shell->Shell(StrFormat("cat /proc/%d/net/dev", *pid));
            net.ok()) {
          if (auto wlan = adb::ParseNetDevWlan(*net); wlan.ok()) {
            sample.bandwidth_bytes = wlan->total();
          }
        }
      }
    }
    sink_->Record(sample);
  }
  const SimTime next = loop_.Now() + period;
  if (next > end) return;
  loop_.ScheduleAt(next, [this, shell, phone, process = std::move(process),
                          task, phone_id, period, end] {
    RunSampler(shell, phone, process, task, phone_id, period, end);
  });
}

Status PhoneMgr::TerminateTask(TaskId task) {
  bool found = false;
  for (auto& entry : phones_) {
    if (entry.owner == task && entry.phone->busy()) {
      entry.phone->ClearPlan();
      ReleasePhone(entry.phone->spec().id);
      found = true;
    }
  }
  if (!found) return NotFound("no running phones for " + task.ToString());
  return Status::Ok();
}

double PhoneMgr::PredictJobSeconds(const PhoneJob& job) {
  const std::size_t reps =
      job.computing_phones == 0
          ? 1
          : (job.devices_to_simulate + job.computing_phones - 1) /
                job.computing_phones;
  const double per_round =
      job.round_duration_s * static_cast<double>(std::max<std::size_t>(1, reps));
  return job.startup_s +
         static_cast<double>(job.rounds) * (per_round + job.aggregation_wait_s) +
         kClosureSeconds;
}

}  // namespace simdc::device
