#include "phonemgr/phone_mgr.h"

#include <algorithm>
#include <cmath>

#include "adb/parsers.h"
#include "common/log.h"
#include "common/string_util.h"

namespace simdc::device {
namespace {

constexpr double kClosureSeconds = 15.0;  // Table I stage 5: 0.25 min

}  // namespace

PhoneId PhoneMgr::RegisterPhone(const PhoneSpec& spec) {
  // First registration wins: a second phone with the same id would be
  // unreachable through every id-keyed path (FindPhone, MarkBusy,
  // ReleasePhone) and would desynchronize the idle free-lists, so it is
  // not admitted at all.
  if (store_.SlotOf(spec.id.value()) != npos) return spec.id;
  const std::size_t slot =
      store_.Add(spec.id.value(), GradeIndex(spec.grade), LocalityIndex(spec));
  if (slot == phone_slots_.size()) {
    phone_slots_.emplace_back();
    adb_slots_.emplace_back();
  }
  phone_slots_[slot] = std::make_unique<Phone>(spec, loop_.clock());
  adb_slots_[slot] = std::make_unique<adb::AdbServer>(*phone_slots_[slot]);
  return spec.id;
}

void PhoneMgr::RegisterFleet(const std::vector<PhoneSpec>& fleet) {
  for (const auto& spec : fleet) RegisterPhone(spec);
}

Status PhoneMgr::UnregisterPhone(PhoneId id) {
  const std::size_t slot = store_.SlotOf(id.value());
  if (slot == npos) return NotFound("unknown phone " + id.ToString());
  if (store_.busy(slot)) {
    return FailedPrecondition("cannot unregister busy phone " +
                              id.ToString());
  }
  // Incremental O(log n) removal: tombstone the slot (the free-lists and
  // the id map are updated in place) and drop the cold objects. No array
  // shift, no rebuild — registration-order selection survives because the
  // idle sets are keyed by registration sequence, not slot number.
  store_.Remove(slot);
  adb_slots_[slot].reset();  // before the Phone it observes
  phone_slots_[slot].reset();
  return Status::Ok();
}

Phone* PhoneMgr::FindPhone(PhoneId id) {
  const std::size_t slot = store_.SlotOf(id.value());
  return slot == npos ? nullptr : phone_slots_[slot].get();
}

const Phone* PhoneMgr::FindPhone(PhoneId id) const {
  const std::size_t slot = store_.SlotOf(id.value());
  return slot == npos ? nullptr : phone_slots_[slot].get();
}

adb::AdbServer* PhoneMgr::FindAdb(PhoneId id) {
  const std::size_t slot = store_.SlotOf(id.value());
  return slot == npos ? nullptr : adb_slots_[slot].get();
}

std::optional<PhonePerfCounters> PhoneMgr::CountersFor(PhoneId id) const {
  const std::size_t slot = store_.SlotOf(id.value());
  if (slot == npos) return std::nullopt;
  return store_.counters(slot);
}

void PhoneMgr::MarkBusy(std::size_t slot) {
  phone_slots_[slot]->set_busy(true);
  store_.SetBusy(slot, true);
}

void PhoneMgr::ReleasePhone(PhoneId id) {
  const std::size_t slot = store_.SlotOf(id.value());
  if (slot == npos) return;  // unregistered while its job wound down
  phone_slots_[slot]->set_busy(false);
  phone_slots_[slot]->set_benchmarking(false);
  store_.SetOwner(slot, TaskId());
  store_.SetBusy(slot, false);
}

Result<PhoneJobHandle> PhoneMgr::SubmitJob(const PhoneJob& job) {
  if (job.rounds == 0) return InvalidArgument("PhoneJob: rounds == 0");
  if (job.devices_to_simulate > 0 && job.computing_phones == 0) {
    return InvalidArgument("PhoneJob: devices to simulate but no phones");
  }
  const std::size_t want =
      job.computing_phones + job.benchmarking_phones;
  if (want == 0) return InvalidArgument("PhoneJob: no phones requested");
  if (CountIdle(job.grade) < want) {
    return ResourceExhausted(StrFormat(
        "PhoneMgr: need %zu idle %s-grade phones, have %zu", want,
        std::string(ToString(job.grade)).c_str(), CountIdle(job.grade)));
  }

  // The store's free-lists are ordered local-before-MSP, registration
  // order within each, so selection reproduces the historical linear scan
  // at O(count log n).
  std::vector<std::size_t> selected;
  selected.reserve(want);
  store_.SelectIdle(GradeIndex(job.grade), want, selected);
  const std::vector<std::size_t> benchmarking(
      selected.begin(),
      selected.begin() + static_cast<std::ptrdiff_t>(job.benchmarking_phones));
  const std::vector<std::size_t> computing(
      selected.begin() + static_cast<std::ptrdiff_t>(job.benchmarking_phones),
      selected.end());

  PhoneJobHandle handle;
  handle.task = job.task;
  InstallPlans(job, computing, benchmarking, handle);

  for (const std::size_t slot : benchmarking) {
    phone_slots_[slot]->set_benchmarking(true);
    ArmSampler(slot, job);
  }

  // Completion: free phones and fire the callback at the latest closure.
  std::vector<PhoneId> all_ids = handle.computing;
  all_ids.insert(all_ids.end(), handle.benchmarking.begin(),
                 handle.benchmarking.end());
  const TaskId task = job.task;
  auto on_complete = job.on_complete;
  loop_.ScheduleAt(handle.finish_time, [this, all_ids, task, on_complete] {
    for (PhoneId id : all_ids) ReleasePhone(id);
    if (on_complete) on_complete(task, loop_.Now());
  });
  return handle;
}

void PhoneMgr::InstallPlans(const PhoneJob& job,
                            const std::vector<std::size_t>& computing,
                            const std::vector<std::size_t>& benchmarking,
                            PhoneJobHandle& handle) {
  const SimTime now = loop_.Now();
  // Devices multiplex over computing phones: each phone sequentially
  // simulates ceil(N/m) devices per round (paper §IV-B: a single physical
  // device is "capable of repetitive emulation of multiple devices").
  const std::size_t reps =
      computing.empty() ? 0
                        : (job.devices_to_simulate + computing.size() - 1) /
                              computing.size();
  // Round-completion hooks for the whole job are collected and inserted
  // with one heap rebuild (phones × rounds of them at 10k-fleet scale).
  std::vector<sim::TimedEvent> hooks;
  hooks.reserve((computing.size() + benchmarking.size()) * job.rounds);

  auto install = [&](std::size_t slot, std::size_t device_batches) {
    Phone& phone = *phone_slots_[slot];
    const SimTime train_window =
        Seconds(job.round_duration_s * static_cast<double>(
                                           std::max<std::size_t>(1, device_batches)));
    // Crash draws are deterministic per (job seed, phone); the entire
    // schedule — including crash truncations and recovery relaunches — is
    // computed up front, so phone state stays a pure function of time.
    Rng crash_rng =
        Rng(job.seed ^ job.task.value()).Split(phone.spec().id.value());

    RunPlan plan;
    plan.apk_launch_start = now + Seconds(job.pre_idle_s);
    plan.pid = next_pid_++;
    SimTime cursor = plan.apk_launch_start + Seconds(job.startup_s);
    SimTime end = 0;
    std::size_t round = 0;
    std::size_t attempts = 0;
    while (round < job.rounds) {
      const bool crash = job.crash_probability > 0.0 &&
                         crash_rng.Bernoulli(job.crash_probability);
      RoundWindow window;
      window.train_start = cursor;
      window.download_bytes = job.download_bytes;
      if (crash) {
        // The APK dies partway through the round: no upload, abrupt
        // closure, then a recovery relaunch that retries the round.
        ++handle.crashes;
        ++store_.counters(slot).crashes;
        const double fraction = crash_rng.Uniform(0.1, 0.9);
        window.train_end =
            cursor + std::max<SimTime>(
                         1, static_cast<SimTime>(
                                static_cast<double>(train_window) * fraction));
        window.upload_bytes = 0;
        plan.rounds.push_back(window);
        plan.closure_start = window.train_end;
        plan.closure_end = window.train_end + Seconds(1.0);
        const SimTime relaunch =
            plan.closure_end + Seconds(job.crash_recovery_s);
        phone.ScheduleRun(std::move(plan));
        plan = RunPlan{};
        plan.apk_launch_start = relaunch;
        plan.pid = next_pid_++;
        cursor = relaunch + Seconds(job.startup_s);
        if (++attempts >= job.max_round_attempts) {
          ++handle.abandoned_rounds;
          attempts = 0;
          ++round;  // give up on this round
        }
        continue;
      }
      window.train_end = cursor + train_window;
      window.upload_bytes = job.upload_bytes;
      plan.rounds.push_back(window);
      // Fire the round-completion hook (message to DeviceFlow) and credit
      // the phone's counter. Counter bumps go through the id map, not the
      // slot, in case the phone is unregistered (and its slot reused)
      // between scheduling and firing.
      {
        const PhoneId id = phone.spec().id;
        auto hook = job.on_round_complete;
        const std::size_t completed = round;
        hooks.push_back({window.train_end, [hook, id, completed, this] {
                           const std::size_t s = store_.SlotOf(id.value());
                           if (s != npos) {
                             ++store_.counters(s).rounds_completed;
                           }
                           if (hook) hook(id, completed, loop_.Now());
                         }});
      }
      cursor = window.train_end + Seconds(job.aggregation_wait_s);
      attempts = 0;
      ++round;
    }
    if (plan.rounds.empty()) {
      // Every round of the final segment crashed away; the previous
      // segment already closed the APK.
      end = cursor;
    } else {
      plan.closure_start = cursor;
      plan.closure_end = cursor + Seconds(kClosureSeconds);
      end = plan.closure_end;
      phone.ScheduleRun(std::move(plan));
    }
    MarkBusy(slot);
    store_.SetOwner(slot, job.task);
    ++store_.counters(slot).jobs_assigned;
    handle.finish_time = std::max(handle.finish_time, end);
  };

  for (const std::size_t slot : computing) {
    install(slot, reps);
    handle.computing.push_back(phone_slots_[slot]->spec().id);
  }
  for (const std::size_t slot : benchmarking) {
    // Benchmarking devices train exactly one device's workload per round.
    install(slot, 1);
    handle.benchmarking.push_back(phone_slots_[slot]->spec().id);
  }
  (void)loop_.ScheduleBulk(std::move(hooks));
}

void PhoneMgr::ArmSampler(std::size_t slot, const PhoneJob& job) {
  Phone* phone = phone_slots_[slot].get();
  const RunPlan* plan = phone->plan();
  if (plan == nullptr) return;
  // Sampling starts immediately (covering the pre-launch idle stage) and
  // runs through APK closure. One self-rescheduling sampler event per
  // phone keeps the heap at one live event per benchmarking phone instead
  // of one closure per sample (a week of 15 s samples is ~40k closures).
  const SimDuration period =
      job.sample_period > 0 ? job.sample_period : Seconds(1.0);
  const SimTime end = plan->closure_end;
  adb::AdbServer* shell = adb_slots_[slot].get();
  std::string process = plan->process_name;
  const TaskId task = job.task;
  const PhoneId phone_id = phone->spec().id;
  loop_.ScheduleAt(loop_.Now(),
                   [this, shell, phone, process = std::move(process), task,
                    phone_id, period, end] {
                     RunSampler(shell, phone, process, task, phone_id, period,
                                end);
                   });
}

void PhoneMgr::RunSampler(adb::AdbServer* shell, Phone* phone,
                          std::string process, TaskId task, PhoneId phone_id,
                          SimDuration period, SimTime end) {
  if (sink_ != nullptr) {
    // A real deployment issues these exact ADB commands (§IV-C) and
    // post-processes the text; we do the same against the simulation.
    PerfSample sample;
    sample.phone = phone_id;
    sample.task = task;
    sample.time = loop_.Now();
    sample.stage = phone->CurrentStage();

    if (auto out = shell->Shell(
            "cat /sys/class/power_supply/battery/current_now");
        out.ok()) {
      if (auto v = adb::ParseSysfsValue(*out); v.ok()) sample.current_ua = *v;
    }
    if (auto out = shell->Shell(
            "cat /sys/class/power_supply/battery/voltage_now");
        out.ok()) {
      if (auto v = adb::ParseSysfsValue(*out); v.ok()) {
        sample.voltage_mv = static_cast<double>(*v) / 1000.0;
      }
    }
    if (auto pgrep = shell->Shell("pgrep -f " + process); pgrep.ok()) {
      if (auto pid = adb::ParsePgrepPid(*pgrep); pid.ok()) {
        if (auto top = shell->Shell(StrFormat("top -b -n 1 -p %d", *pid));
            top.ok()) {
          if (auto cpu = adb::ParseTopCpuPercent(*top, *pid); cpu.ok()) {
            sample.cpu_percent = *cpu;
          }
        }
        if (auto mem = shell->Shell("dumpsys meminfo " + process); mem.ok()) {
          if (auto pss = adb::ParseDumpsysPssKb(*mem); pss.ok()) {
            sample.memory_kb = *pss;
          }
        }
        if (auto net = shell->Shell(StrFormat("cat /proc/%d/net/dev", *pid));
            net.ok()) {
          if (auto wlan = adb::ParseNetDevWlan(*net); wlan.ok()) {
            sample.bandwidth_bytes = wlan->total();
          }
        }
      }
    }
    sink_->Record(sample);
    if (const std::size_t slot = store_.SlotOf(phone_id.value());
        slot != npos) {
      ++store_.counters(slot).samples_recorded;
    }
  }
  const SimTime next = loop_.Now() + period;
  if (next > end) return;
  loop_.ScheduleAt(next, [this, shell, phone, process = std::move(process),
                          task, phone_id, period, end] {
    RunSampler(shell, phone, process, task, phone_id, period, end);
  });
}

Status PhoneMgr::TerminateTask(TaskId task) {
  bool found = false;
  for (std::size_t slot = 0; slot < store_.slot_count(); ++slot) {
    if (!store_.live(slot)) continue;
    if (store_.owner(slot) == task && store_.busy(slot)) {
      phone_slots_[slot]->ClearPlan();
      ReleasePhone(phone_slots_[slot]->spec().id);
      found = true;
    }
  }
  if (!found) return NotFound("no running phones for " + task.ToString());
  return Status::Ok();
}

double PhoneMgr::PredictJobSeconds(const PhoneJob& job) {
  const std::size_t reps =
      job.computing_phones == 0
          ? 1
          : (job.devices_to_simulate + job.computing_phones - 1) /
                job.computing_phones;
  const double per_round =
      job.round_duration_s * static_cast<double>(std::max<std::size_t>(1, reps));
  return job.startup_s +
         static_cast<double>(job.rounds) * (per_round + job.aggregation_wait_s) +
         kClosureSeconds;
}

}  // namespace simdc::device
