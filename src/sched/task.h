// Task design specifications (§III-A).
//
// A task is the platform's core operational unit: unique task_id, one
// operator flow executed uniformly by all simulated devices, repeated for
// multiple rounds; per-grade device counts (different datasets may use
// different grades and quantities); hybrid resource requests; and a
// scheduling-priority parameter consumed by the greedy Task Scheduler.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/ids.h"
#include "device/grade.h"

namespace simdc::sched {

enum class TaskState {
  kQueued,
  kScheduled,
  kRunning,
  kCompleted,
  kFailed,
  kCancelled,
};

constexpr const char* ToString(TaskState state) {
  switch (state) {
    case TaskState::kQueued: return "Queued";
    case TaskState::kScheduled: return "Scheduled";
    case TaskState::kRunning: return "Running";
    case TaskState::kCompleted: return "Completed";
    case TaskState::kFailed: return "Failed";
    case TaskState::kCancelled: return "Cancelled";
  }
  return "?";
}

/// One step of the operator flow ("multiple operators in a predetermined
/// sequence", §III-A).
struct OperatorStep {
  enum class Kind { kDownload, kTrain, kEvaluate, kUpload, kCustom };
  Kind kind = Kind::kTrain;
  std::string name = "train";
};

/// Default FL operator flow: download → train → upload.
std::vector<OperatorStep> DefaultFlOperatorFlow();

/// Per-grade simulation requirement of a task.
struct DeviceRequirement {
  device::DeviceGrade grade = device::DeviceGrade::kHigh;
  /// N_i: devices to simulate at this grade.
  std::size_t num_devices = 0;
  /// q_i: physical benchmarking phones reserved for measurement.
  std::size_t benchmarking_phones = 0;
  /// f_i: unit resource bundles requested in Logical Simulation.
  std::size_t logical_bundles = 0;
  /// m_i: computing phones requested in Device Simulation.
  std::size_t phones = 0;
};

struct TaskSpec {
  TaskId id;
  std::string name = "task";
  /// Higher runs earlier when resources suffice (§III-A).
  int priority = 0;
  std::vector<DeviceRequirement> requirements;
  /// Rounds the operator flow is repeated ("multi-round device-cloud
  /// collaborative processes").
  std::size_t rounds = 1;
  std::vector<OperatorStep> operator_flow = DefaultFlOperatorFlow();

  std::size_t TotalDevices() const {
    std::size_t n = 0;
    for (const auto& r : requirements) n += r.num_devices;
    return n;
  }
  std::size_t TotalLogicalBundles() const {
    std::size_t n = 0;
    for (const auto& r : requirements) n += r.logical_bundles;
    return n;
  }
  std::size_t TotalPhones() const {
    std::size_t n = 0;
    for (const auto& r : requirements) {
      n += r.phones + r.benchmarking_phones;
    }
    return n;
  }
};

}  // namespace simdc::sched
