#include "sched/scheduler.h"

namespace simdc::sched {

ResourceRequest RequestFor(const TaskSpec& task) {
  ResourceRequest request;
  for (const auto& requirement : task.requirements) {
    request.logical_bundles += requirement.logical_bundles;
    request.phones[device::GradeIndex(requirement.grade)] +=
        requirement.phones + requirement.benchmarking_phones;
  }
  return request;
}

std::vector<TaskSpec> GreedyScheduler::SchedulePass(TaskQueue& queue) {
  std::vector<TaskSpec> launched;
  // Greedy over the priority-ordered snapshot: each task that fits the
  // *remaining* pool is frozen and launched; the rest stay queued for a
  // later pass. Priority order maximizes expected benefit for the greedy
  // choice the paper describes.
  for (const auto& candidate : queue.SnapshotOrdered()) {
    const ResourceRequest request = RequestFor(candidate);
    if (!resources_.Freeze(request).ok()) continue;
    auto task = queue.Remove(candidate.id);
    if (!task) {
      // Raced away (removed elsewhere); undo the freeze.
      (void)resources_.Release(request);
      continue;
    }
    launched.push_back(std::move(*task));
  }
  return launched;
}

}  // namespace simdc::sched
