#include "sched/scheduler.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "sched/allocation.h"

namespace simdc::sched {

namespace {

std::size_t TotalPhones(const ResourceRequest& request) {
  return std::accumulate(request.phones.begin(), request.phones.end(),
                         std::size_t{0});
}

/// True when no future pass can satisfy the request against `totals`
/// (frozen resources all released): permanent rejection, not back-pressure.
bool NeverFits(const ResourceRequest& request, const ResourceSnapshot& totals,
               double max_fleet_share) {
  if (request.logical_bundles > totals.logical_bundles_total) return true;
  for (std::size_t g = 0; g < request.phones.size(); ++g) {
    if (request.phones[g] > totals.phones_total[g]) return true;
  }
  if (max_fleet_share > 0.0) {
    const auto fleet = static_cast<double>(std::accumulate(
        totals.phones_total.begin(), totals.phones_total.end(),
        std::size_t{0}));
    if (static_cast<double>(TotalPhones(request)) >
        max_fleet_share * fleet) {
      return true;
    }
  }
  return false;
}

}  // namespace

ResourceRequest RequestFor(const TaskSpec& task) {
  ResourceRequest request;
  for (const auto& requirement : task.requirements) {
    request.logical_bundles += requirement.logical_bundles;
    request.phones[device::GradeIndex(requirement.grade)] +=
        requirement.phones + requirement.benchmarking_phones;
  }
  return request;
}

std::vector<TaskSpec> GreedyScheduler::SchedulePass(TaskQueue& queue) {
  return SchedulePassEx(queue, SchedulePolicy{}).launched;
}

ScheduleDecision GreedyScheduler::SchedulePassEx(TaskQueue& queue,
                                                 const SchedulePolicy& policy) {
  ScheduleDecision decision;
  const std::vector<TaskSpec> candidates = queue.SnapshotOrdered();

  // Fair shares are solved against the pool as it stands at the START of
  // the pass — one waterline for every candidate — so the outcome depends
  // only on (candidate set, free pool), not on admission order.
  std::vector<std::size_t> fair_share;
  if (policy.mode == ScheduleMode::kWeightedFair) {
    const ResourceSnapshot snapshot = resources_.Snapshot();
    const std::size_t free_phones = std::accumulate(
        snapshot.phones_free.begin(), snapshot.phones_free.end(),
        std::size_t{0});
    std::vector<TenantDemand> demands;
    demands.reserve(candidates.size());
    for (const auto& candidate : candidates) {
      TenantDemand demand;
      demand.demand = TotalPhones(RequestFor(candidate));
      demand.weight = static_cast<std::size_t>(
          std::max(1, candidate.priority));
      demands.push_back(demand);
    }
    fair_share = SolveWeightedFairShares(demands, free_phones);
  }

  for (std::size_t i = 0; i < candidates.size(); ++i) {
    const TaskSpec& candidate = candidates[i];
    const ResourceRequest request = RequestFor(candidate);
    if (NeverFits(request, resources_.Snapshot(), policy.max_fleet_share)) {
      if (auto task = queue.Remove(candidate.id)) {
        decision.rejected.push_back(std::move(*task));
      }
      continue;
    }
    if (policy.mode == ScheduleMode::kWeightedFair &&
        TotalPhones(request) > fair_share[i]) {
      continue;  // over its fair share this pass; stays queued
    }
    if (!resources_.Freeze(request).ok()) continue;
    auto task = queue.Remove(candidate.id);
    if (!task) {
      // Raced away (removed elsewhere); undo the freeze.
      (void)resources_.Release(request);
      continue;
    }
    decision.launched.push_back(std::move(*task));
  }
  return decision;
}

}  // namespace simdc::sched
