#include "sched/allocation.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <vector>

namespace simdc::sched {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

std::size_t CeilDiv(std::size_t a, std::size_t b) {
  return b == 0 ? 0 : (a + b - 1) / b;
}

/// Logical-simulation seconds for grade `g` running x devices.
double LogicalTime(const GradeAllocationInput& g, std::size_t x) {
  if (x == 0) return 0.0;
  if (g.logical_bundles == 0) return kInf;
  return static_cast<double>(CeilDiv(g.bundles_per_device * x,
                                     g.logical_bundles)) *
         g.alpha_s;
}

/// Device-simulation seconds for grade `g` with `remaining` computing
/// devices on phones. Benchmarking phones always incur λ (they run on
/// phones by definition); with neither computing nor benchmarking devices
/// the phone side is untouched and costs nothing.
double DeviceTime(const GradeAllocationInput& g, std::size_t remaining) {
  if (remaining == 0) {
    return g.benchmarking > 0 ? g.beta_s + g.lambda_s : 0.0;
  }
  if (g.phones == 0) return kInf;
  return static_cast<double>(CeilDiv(remaining, g.phones)) * g.beta_s +
         g.lambda_s;
}

/// Feasible x-interval for one grade at makespan budget T.
/// Returns false when the grade cannot meet T at all.
bool FeasibleInterval(const GradeAllocationInput& g, double T,
                      std::size_t* x_min, std::size_t* x_max) {
  const std::size_t R = g.placeable();

  // Upper bound from the logical constraint: ceil(k·x/f)·α ≤ T.
  std::size_t max_logical;
  if (g.logical_bundles == 0 || g.alpha_s <= 0.0) {
    max_logical = g.logical_bundles == 0 ? 0 : R;
  } else {
    const double batches = std::floor(T / g.alpha_s + 1e-9);
    if (batches <= 0.0) {
      max_logical = 0;
    } else {
      max_logical = static_cast<std::size_t>(
          std::min<double>(static_cast<double>(R),
                           batches * static_cast<double>(g.logical_bundles) /
                               static_cast<double>(g.bundles_per_device) + 1e-9));
    }
  }

  // Lower bound from the phone constraint: ceil((R−x)/m)·β + λ ≤ T.
  std::size_t min_logical;
  if (g.benchmarking > 0 && T + 1e-9 < g.beta_s + g.lambda_s) {
    return false;  // benchmarking phones alone already exceed T
  }
  const double budget = T - g.lambda_s;
  if (g.phones == 0) {
    min_logical = R;  // nothing can run on phones
  } else if (R == 0) {
    min_logical = 0;
  } else if (budget + 1e-9 < 0.0 ||
             (budget + 1e-9 < g.beta_s && R > 0)) {
    // No time for even one phone batch: everything must go logical.
    min_logical = R;
  } else {
    const double batches = std::floor(budget / g.beta_s + 1e-9);
    const double max_on_phones =
        batches * static_cast<double>(g.phones);
    min_logical = max_on_phones >= static_cast<double>(R)
                      ? 0
                      : R - static_cast<std::size_t>(max_on_phones + 1e-9);
  }

  if (min_logical > max_logical) return false;
  *x_min = min_logical;
  *x_max = max_logical;
  return true;
}

AllocationResult BuildResult(const std::vector<GradeAllocationInput>& grades,
                             std::vector<std::size_t> x) {
  AllocationResult result;
  result.logical_devices = std::move(x);
  result.total_seconds =
      PredictMakespan(grades, result.logical_devices,
                      &result.logical_seconds, &result.device_seconds);
  return result;
}

}  // namespace

double PredictMakespan(const std::vector<GradeAllocationInput>& grades,
                       const std::vector<std::size_t>& logical_devices,
                       double* logical_seconds, double* device_seconds) {
  double tl = 0.0, tp = 0.0;
  for (std::size_t i = 0; i < grades.size(); ++i) {
    const auto& g = grades[i];
    const std::size_t x =
        std::min(i < logical_devices.size() ? logical_devices[i] : 0,
                 g.placeable());
    tl = std::max(tl, LogicalTime(g, x));
    tp = std::max(tp, DeviceTime(g, g.placeable() - x));
  }
  if (logical_seconds != nullptr) *logical_seconds = tl;
  if (device_seconds != nullptr) *device_seconds = tp;
  return std::max(tl, tp);
}

Result<AllocationResult> SolveHybridAllocation(
    const std::vector<GradeAllocationInput>& grades, bool prefer_logical) {
  if (grades.empty()) {
    return InvalidArgument("allocation: no grades supplied");
  }
  for (const auto& g : grades) {
    if (g.benchmarking > g.total_devices) {
      return InvalidArgument("allocation: benchmarking > total devices");
    }
    if (g.placeable() > 0 && g.logical_bundles == 0 && g.phones == 0) {
      return FailedPrecondition(
          "allocation: grade has devices but no resources at all");
    }
  }

  // Candidate makespans: every achievable per-grade batch count boundary.
  // Generated into a flat vector + one sort + unique — a std::set<double>
  // here costs one node allocation plus an O(log B) rebalance per boundary,
  // which dominated solve time at large device counts (Fig. 7).
  std::size_t candidate_count = 1;
  for (const auto& g : grades) {
    const std::size_t R = g.placeable();
    if (g.logical_bundles > 0) {
      candidate_count += CeilDiv(g.bundles_per_device * R, g.logical_bundles) + 1;
    }
    if (g.phones > 0) candidate_count += CeilDiv(R, g.phones) + 1;
    if (g.benchmarking > 0) ++candidate_count;
  }
  std::vector<double> sorted;
  sorted.reserve(candidate_count);
  sorted.push_back(0.0);
  for (const auto& g : grades) {
    const std::size_t R = g.placeable();
    if (g.logical_bundles > 0) {
      const std::size_t max_batches =
          CeilDiv(g.bundles_per_device * R, g.logical_bundles);
      for (std::size_t j = 0; j <= max_batches; ++j) {
        sorted.push_back(static_cast<double>(j) * g.alpha_s);
      }
    }
    if (g.phones > 0) {
      const std::size_t max_batches = CeilDiv(R, g.phones);
      for (std::size_t j = 0; j <= max_batches; ++j) {
        sorted.push_back(static_cast<double>(j) * g.beta_s + g.lambda_s);
      }
    }
    if (g.benchmarking > 0) sorted.push_back(g.beta_s + g.lambda_s);
  }
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());

  // Binary search the smallest feasible candidate T.
  std::size_t lo = 0, hi = sorted.size();
  auto feasible = [&](double T) {
    std::size_t x_min = 0, x_max = 0;
    for (const auto& g : grades) {
      if (!FeasibleInterval(g, T, &x_min, &x_max)) return false;
    }
    return true;
  };
  while (lo < hi) {
    const std::size_t mid = (lo + hi) / 2;
    if (feasible(sorted[mid])) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  if (lo == sorted.size()) {
    return FailedPrecondition("allocation: no feasible makespan");
  }
  const double best_t = sorted[lo];

  // Secondary objective at T = best_t: extremal x per grade.
  std::vector<std::size_t> x(grades.size());
  for (std::size_t i = 0; i < grades.size(); ++i) {
    std::size_t x_min = 0, x_max = 0;
    const bool ok = FeasibleInterval(grades[i], best_t, &x_min, &x_max);
    SIMDC_CHECK(ok, "allocation internal: infeasible at chosen T");
    x[i] = prefer_logical ? x_max : x_min;
  }
  return BuildResult(grades, std::move(x));
}

Result<AllocationResult> BruteForceAllocation(
    const std::vector<GradeAllocationInput>& grades, bool prefer_logical) {
  if (grades.empty()) {
    return InvalidArgument("allocation: no grades supplied");
  }
  std::vector<std::size_t> x(grades.size(), 0);
  std::vector<std::size_t> best;
  double best_t = kInf;
  long long best_sum = -1;

  // Odometer enumeration over all x vectors.
  for (;;) {
    const double t = PredictMakespan(grades, x);
    const long long sum = static_cast<long long>(
        std::accumulate(x.begin(), x.end(), std::size_t{0}));
    const long long score = prefer_logical ? sum : -sum;
    if (t < best_t - 1e-9 ||
        (std::abs(t - best_t) <= 1e-9 && score > best_sum)) {
      best_t = t;
      best_sum = score;
      best = x;
    }
    // Increment odometer.
    std::size_t d = 0;
    while (d < x.size()) {
      if (x[d] < grades[d].placeable()) {
        ++x[d];
        break;
      }
      x[d] = 0;
      ++d;
    }
    if (d == x.size()) break;
  }
  if (!std::isfinite(best_t)) {
    return FailedPrecondition("allocation: no feasible assignment");
  }
  return BuildResult(grades, std::move(best));
}

std::vector<std::size_t> FixedRatioAllocation(
    const std::vector<GradeAllocationInput>& grades, double logical_ratio) {
  std::vector<std::size_t> x;
  x.reserve(grades.size());
  for (const auto& g : grades) {
    const double exact =
        logical_ratio * static_cast<double>(g.placeable());
    x.push_back(static_cast<std::size_t>(std::lround(exact)));
  }
  return x;
}

std::vector<std::size_t> SolveWeightedFairShares(
    const std::vector<TenantDemand>& tenants, std::size_t capacity) {
  std::vector<std::size_t> shares(tenants.size(), 0);
  std::size_t remaining = capacity;
  // Water-filling sweeps: proportional grants shrink the unsatisfied set
  // each pass (a tenant whose demand is met leaves W), so the loop runs at
  // most tenants+1 proportional sweeps before the single-unit fallback.
  for (;;) {
    std::size_t unsatisfied_weight = 0;
    for (std::size_t i = 0; i < tenants.size(); ++i) {
      if (shares[i] < tenants[i].demand) {
        unsatisfied_weight += std::max<std::size_t>(1, tenants[i].weight);
      }
    }
    if (unsatisfied_weight == 0 || remaining == 0) break;
    std::size_t granted = 0;
    for (std::size_t i = 0; i < tenants.size(); ++i) {
      if (shares[i] >= tenants[i].demand) continue;
      const std::size_t w = std::max<std::size_t>(1, tenants[i].weight);
      const std::size_t quota = remaining * w / unsatisfied_weight;
      const std::size_t grant =
          std::min(quota, tenants[i].demand - shares[i]);
      shares[i] += grant;
      granted += grant;
      // remaining stays fixed within the sweep so every tenant's quota is
      // computed against the same waterline; it drops between sweeps.
    }
    if (granted == 0) {
      // Integer starvation: every unsatisfied quota floored to zero.
      // Hand out the leftovers one unit at a time, heaviest tenant first,
      // index order among equals — still fully deterministic.
      while (remaining > 0) {
        std::size_t best = tenants.size();
        std::size_t best_w = 0;
        for (std::size_t i = 0; i < tenants.size(); ++i) {
          if (shares[i] >= tenants[i].demand) continue;
          const std::size_t w = std::max<std::size_t>(1, tenants[i].weight);
          if (best == tenants.size() || w > best_w) {
            best = i;
            best_w = w;
          }
        }
        if (best == tenants.size()) break;
        ++shares[best];
        --remaining;
      }
      break;
    }
    remaining -= granted;
  }
  return shares;
}

}  // namespace simdc::sched
