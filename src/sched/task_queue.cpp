#include "sched/task_queue.h"

#include <algorithm>

namespace simdc::sched {

Status TaskQueue::Submit(TaskSpec task) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!ids_.insert(task.id).second) {
    return AlreadyExists("task already queued: " + task.id.ToString());
  }
  entries_.push_back(Entry{std::move(task), next_sequence_++});
  return Status::Ok();
}

std::optional<TaskSpec> TaskQueue::Remove(TaskId id) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (ids_.erase(id) == 0) return std::nullopt;
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    if (it->task.id == id) {
      TaskSpec task = std::move(it->task);
      entries_.erase(it);
      return task;
    }
  }
  return std::nullopt;  // unreachable: ids_ mirrors entries_
}

std::vector<TaskSpec> TaskQueue::SnapshotOrdered() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<Entry> sorted(entries_.begin(), entries_.end());
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const Entry& a, const Entry& b) {
                     if (a.task.priority != b.task.priority) {
                       return a.task.priority > b.task.priority;
                     }
                     return a.sequence < b.sequence;
                   });
  std::vector<TaskSpec> out;
  out.reserve(sorted.size());
  for (auto& entry : sorted) out.push_back(std::move(entry.task));
  return out;
}

bool TaskQueue::Contains(TaskId id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return ids_.count(id) != 0;
}

std::size_t TaskQueue::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

}  // namespace simdc::sched
