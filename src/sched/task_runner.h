// Task Runner (§III-B).
//
// "Task Runner dynamically adjusts execution strategies for scheduled
// tasks, ensuring that they are allocated to appropriate heterogeneous
// resources based on the requested resource amounts and the number of
// simulated devices. Additionally, the Task Runner supports multi-threaded
// concurrent processing to optimize task execution efficiency."
//
// The runner owns a worker pool; the platform supplies the body of each
// task (which performs the hybrid allocation and drives the simulators).
#pragma once

#include <functional>
#include <future>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/error.h"
#include "common/thread_pool.h"
#include "sched/allocation.h"
#include "sched/task.h"

namespace simdc::sched {

class TaskRunner {
 public:
  explicit TaskRunner(std::size_t worker_threads)
      : pool_(worker_threads) {}

  using RunFn = std::function<Status(const TaskSpec&)>;
  using StateCallback = std::function<void(TaskId, TaskState)>;

  /// Launches a scheduled task on the worker pool. The returned future
  /// resolves to the task's final status.
  std::future<Status> Launch(TaskSpec task, RunFn run,
                             StateCallback on_state = {});

  TaskState StateOf(TaskId id) const;
  std::size_t running_count() const;

  /// Blocks until all launched tasks finished.
  void WaitAll();

  /// Builds the per-grade allocation inputs of a task from its spec and
  /// grade runtime parameters, then solves the hybrid allocation.
  static Result<AllocationResult> PlanAllocation(
      const TaskSpec& task, bool prefer_logical = true);

 private:
  void SetState(TaskId id, TaskState state, const StateCallback& callback);

  ThreadPool pool_;
  mutable std::mutex mutex_;
  std::unordered_map<TaskId, TaskState> states_;
  std::vector<std::shared_future<Status>> inflight_;
};

}  // namespace simdc::sched
