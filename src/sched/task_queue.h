// Task Queue maintained by the Task Manager (§III-B).
//
// Submitted tasks wait here until the Task Scheduler selects them. Ordering
// is by scheduling priority (higher first), FIFO among equals.
#pragma once

#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <unordered_set>
#include <vector>

#include "common/error.h"
#include "sched/task.h"

namespace simdc::sched {

class TaskQueue {
 public:
  /// Enqueues a task. Fails if a task with the same id is already queued.
  Status Submit(TaskSpec task);

  /// Removes and returns a specific task (when the scheduler picks it).
  std::optional<TaskSpec> Remove(TaskId id);

  /// Snapshot in scheduling order: priority desc, then submission order.
  std::vector<TaskSpec> SnapshotOrdered() const;

  bool Contains(TaskId id) const;
  std::size_t size() const;
  bool empty() const { return size() == 0; }

 private:
  struct Entry {
    TaskSpec task;
    std::uint64_t sequence;  // FIFO tie-break
  };
  mutable std::mutex mutex_;
  std::deque<Entry> entries_;
  /// Ids currently queued — O(1) duplicate check and Contains under heavy
  /// submit traffic (entries_ stays the source of truth for order).
  std::unordered_set<TaskId> ids_;
  std::uint64_t next_sequence_ = 0;
};

}  // namespace simdc::sched
