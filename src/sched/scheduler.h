// Task Scheduler (§III-B).
//
// "Task Scheduler employs a greedy algorithm to schedule tasks from the
// queue, taking into account the current states of the resource pool from
// Resource Manager, demand resources, and the expected task benefits
// derived from the scheduling priority. It prioritizes tasks that meet
// resource requirements while maximizing the anticipated benefits."
//
// Multi-tenant extensions: SchedulePassEx adds a weighted-fair mode (any
// tenant's grab of the currently idle phones is bounded by its weighted
// max-min fair share — see SolveWeightedFairShares) and admission control
// (requests that can NEVER be satisfied — demand beyond fleet totals or
// the per-tenant fleet-share cap — are rejected permanently instead of
// waiting forever).
#pragma once

#include <vector>

#include "sched/resource_manager.h"
#include "sched/task.h"
#include "sched/task_queue.h"

namespace simdc::sched {

/// The resources a task spec asks the Resource Manager to freeze.
ResourceRequest RequestFor(const TaskSpec& task);

enum class ScheduleMode {
  /// Greedy priority order (the paper's §III-B algorithm): each candidate
  /// that fits the remaining pool is frozen, highest priority first.
  kPriority,
  /// Fairness mode: candidates are still walked in priority order, but a
  /// candidate is only admitted this pass if its phone demand fits within
  /// its weighted max-min fair share of the currently FREE phones
  /// (weight = max(1, priority)). A heavy tenant therefore cannot starve
  /// light ones at an admission barrier: whatever it cannot claim within
  /// its share stays free for the others.
  kWeightedFair,
};

struct SchedulePolicy {
  ScheduleMode mode = ScheduleMode::kPriority;
  /// Admission-control cap on one tenant's share of the fleet's TOTAL
  /// phones, in (0, 1]; 0 disables the cap. A request demanding more
  /// phones than max_fleet_share × total is rejected permanently (it
  /// could starve every other tenant while it runs).
  double max_fleet_share = 0.0;
};

struct ScheduleDecision {
  /// Tasks to launch now; their resources are frozen (caller releases).
  std::vector<TaskSpec> launched;
  /// Tasks removed permanently because no future pass can ever satisfy
  /// them: demand exceeds the fleet's totals, or the fleet-share cap.
  std::vector<TaskSpec> rejected;
};

class GreedyScheduler {
 public:
  explicit GreedyScheduler(ResourceManager& resources)
      : resources_(resources) {}

  /// One scheduling pass: walks the queue in priority order, freezing
  /// resources for every task that fits. Returns the tasks to launch now
  /// (their resources are already frozen; the caller must Release them
  /// when each task finishes).
  std::vector<TaskSpec> SchedulePass(TaskQueue& queue);

  /// Policy-aware pass: kPriority reproduces SchedulePass exactly (plus
  /// admission rejection when max_fleet_share is set); kWeightedFair
  /// bounds each tenant's grab of the idle phones to its fair share.
  ScheduleDecision SchedulePassEx(TaskQueue& queue,
                                  const SchedulePolicy& policy);

 private:
  ResourceManager& resources_;
};

}  // namespace simdc::sched
