// Task Scheduler (§III-B).
//
// "Task Scheduler employs a greedy algorithm to schedule tasks from the
// queue, taking into account the current states of the resource pool from
// Resource Manager, demand resources, and the expected task benefits
// derived from the scheduling priority. It prioritizes tasks that meet
// resource requirements while maximizing the anticipated benefits."
#pragma once

#include <vector>

#include "sched/resource_manager.h"
#include "sched/task.h"
#include "sched/task_queue.h"

namespace simdc::sched {

/// The resources a task spec asks the Resource Manager to freeze.
ResourceRequest RequestFor(const TaskSpec& task);

class GreedyScheduler {
 public:
  explicit GreedyScheduler(ResourceManager& resources)
      : resources_(resources) {}

  /// One scheduling pass: walks the queue in priority order, freezing
  /// resources for every task that fits. Returns the tasks to launch now
  /// (their resources are already frozen; the caller must Release them
  /// when each task finishes).
  std::vector<TaskSpec> SchedulePass(TaskQueue& queue);

 private:
  ResourceManager& resources_;
};

}  // namespace simdc::sched
