// Resource Manager (§III-B).
//
// "This module oversees the querying, freezing, and releasing of
// heterogeneous resources, while also enabling dynamic scaling up or
// down." The heterogeneous resources are (a) unit resource bundles in the
// Logical Simulation cluster and (b) physical phones per grade in the
// Device Simulation cluster.
#pragma once

#include <array>
#include <mutex>

#include "common/error.h"
#include "device/grade.h"

namespace simdc::sched {

/// Point-in-time view synchronized to the Task Manager.
struct ResourceSnapshot {
  std::size_t logical_bundles_free = 0;
  std::size_t logical_bundles_total = 0;
  std::array<std::size_t, device::kNumGrades> phones_free = {};
  std::array<std::size_t, device::kNumGrades> phones_total = {};
};

/// What one task wants to freeze.
struct ResourceRequest {
  std::size_t logical_bundles = 0;
  std::array<std::size_t, device::kNumGrades> phones = {};
};

class ResourceManager {
 public:
  ResourceManager(std::size_t logical_bundles,
                  std::array<std::size_t, device::kNumGrades> phones);

  /// All-or-nothing freeze of a task's resources.
  Status Freeze(const ResourceRequest& request);
  /// Releases previously frozen resources (clamped; over-release errors).
  Status Release(const ResourceRequest& request);

  bool Fits(const ResourceRequest& request) const;
  ResourceSnapshot Snapshot() const;

  /// Dynamic scaling (§III-B).
  void ScaleUpLogical(std::size_t extra_bundles);
  Status ScaleDownLogical(std::size_t fewer_bundles);
  void AddPhones(device::DeviceGrade grade, std::size_t count);
  Status RemovePhones(device::DeviceGrade grade, std::size_t count);

 private:
  bool FitsLocked(const ResourceRequest& request) const;

  mutable std::mutex mutex_;
  std::size_t logical_total_;
  std::size_t logical_used_ = 0;
  std::array<std::size_t, device::kNumGrades> phones_total_;
  std::array<std::size_t, device::kNumGrades> phones_used_ = {};
};

}  // namespace simdc::sched
