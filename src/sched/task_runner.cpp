#include "sched/task_runner.h"

#include "common/log.h"

namespace simdc::sched {

std::vector<OperatorStep> DefaultFlOperatorFlow() {
  return {
      OperatorStep{OperatorStep::Kind::kDownload, "download_model"},
      OperatorStep{OperatorStep::Kind::kTrain, "train_local"},
      OperatorStep{OperatorStep::Kind::kUpload, "upload_update"},
  };
}

std::future<Status> TaskRunner::Launch(TaskSpec task, RunFn run,
                                       StateCallback on_state) {
  SIMDC_CHECK(run != nullptr, "TaskRunner: missing run function");
  SetState(task.id, TaskState::kScheduled, on_state);
  auto future = pool_.Submit(
      [this, task = std::move(task), run = std::move(run), on_state] {
        SetState(task.id, TaskState::kRunning, on_state);
        Status status = Status::Ok();
        try {
          status = run(task);
        } catch (const std::exception& e) {
          status = Internal(std::string("task threw: ") + e.what());
        }
        SetState(task.id,
                 status.ok() ? TaskState::kCompleted : TaskState::kFailed,
                 on_state);
        if (!status.ok()) {
          SIMDC_LOG(kWarn, "TaskRunner")
              << task.id.ToString() << " failed: " << status.ToString();
        }
        return status;
      });
  std::shared_future<Status> shared = future.share();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    inflight_.push_back(shared);
  }
  // Hand the caller an equivalent future.
  return std::async(std::launch::deferred,
                    [shared]() mutable { return shared.get(); });
}

TaskState TaskRunner::StateOf(TaskId id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = states_.find(id);
  return it == states_.end() ? TaskState::kQueued : it->second;
}

std::size_t TaskRunner::running_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t n = 0;
  for (const auto& [id, state] : states_) {
    if (state == TaskState::kRunning || state == TaskState::kScheduled) ++n;
  }
  return n;
}

void TaskRunner::WaitAll() {
  std::vector<std::shared_future<Status>> pending;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    pending = inflight_;
  }
  for (auto& future : pending) future.wait();
}

void TaskRunner::SetState(TaskId id, TaskState state,
                          const StateCallback& callback) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    states_[id] = state;
  }
  if (callback) callback(id, state);
}

Result<AllocationResult> TaskRunner::PlanAllocation(const TaskSpec& task,
                                                    bool prefer_logical) {
  std::vector<GradeAllocationInput> grades;
  grades.reserve(task.requirements.size());
  for (const auto& requirement : task.requirements) {
    const device::GradeSpec spec = device::DefaultGradeSpec(requirement.grade);
    GradeAllocationInput input;
    input.total_devices = requirement.num_devices;
    input.benchmarking = requirement.benchmarking_phones;
    input.logical_bundles = requirement.logical_bundles;
    input.bundles_per_device = spec.unit_bundles;
    input.phones = requirement.phones;
    input.alpha_s = spec.alpha_s;
    input.beta_s = spec.beta_s;
    input.lambda_s = spec.lambda_s;
    grades.push_back(input);
  }
  return SolveHybridAllocation(grades, prefer_logical);
}

}  // namespace simdc::sched
