#include "sched/resource_manager.h"

#include "common/string_util.h"

namespace simdc::sched {

ResourceManager::ResourceManager(
    std::size_t logical_bundles,
    std::array<std::size_t, device::kNumGrades> phones)
    : logical_total_(logical_bundles), phones_total_(phones) {}

bool ResourceManager::FitsLocked(const ResourceRequest& request) const {
  if (logical_used_ + request.logical_bundles > logical_total_) return false;
  for (std::size_t g = 0; g < device::kNumGrades; ++g) {
    if (phones_used_[g] + request.phones[g] > phones_total_[g]) return false;
  }
  return true;
}

bool ResourceManager::Fits(const ResourceRequest& request) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return FitsLocked(request);
}

Status ResourceManager::Freeze(const ResourceRequest& request) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!FitsLocked(request)) {
    return ResourceExhausted(StrFormat(
        "freeze rejected: want %zu bundles (%zu free), phones H:%zu "
        "(%zu free) L:%zu (%zu free)",
        request.logical_bundles, logical_total_ - logical_used_,
        request.phones[0], phones_total_[0] - phones_used_[0],
        request.phones[1], phones_total_[1] - phones_used_[1]));
  }
  logical_used_ += request.logical_bundles;
  for (std::size_t g = 0; g < device::kNumGrades; ++g) {
    phones_used_[g] += request.phones[g];
  }
  return Status::Ok();
}

Status ResourceManager::Release(const ResourceRequest& request) {
  std::lock_guard<std::mutex> lock(mutex_);
  bool over = false;
  if (request.logical_bundles > logical_used_) {
    logical_used_ = 0;
    over = true;
  } else {
    logical_used_ -= request.logical_bundles;
  }
  for (std::size_t g = 0; g < device::kNumGrades; ++g) {
    if (request.phones[g] > phones_used_[g]) {
      phones_used_[g] = 0;
      over = true;
    } else {
      phones_used_[g] -= request.phones[g];
    }
  }
  if (over) return FailedPrecondition("release exceeds frozen resources");
  return Status::Ok();
}

ResourceSnapshot ResourceManager::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  ResourceSnapshot snapshot;
  snapshot.logical_bundles_total = logical_total_;
  snapshot.logical_bundles_free = logical_total_ - logical_used_;
  for (std::size_t g = 0; g < device::kNumGrades; ++g) {
    snapshot.phones_total[g] = phones_total_[g];
    snapshot.phones_free[g] = phones_total_[g] - phones_used_[g];
  }
  return snapshot;
}

void ResourceManager::ScaleUpLogical(std::size_t extra_bundles) {
  std::lock_guard<std::mutex> lock(mutex_);
  logical_total_ += extra_bundles;
}

Status ResourceManager::ScaleDownLogical(std::size_t fewer_bundles) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (fewer_bundles > logical_total_ ||
      logical_total_ - fewer_bundles < logical_used_) {
    return FailedPrecondition("scale-down below in-use logical bundles");
  }
  logical_total_ -= fewer_bundles;
  return Status::Ok();
}

void ResourceManager::AddPhones(device::DeviceGrade grade, std::size_t count) {
  std::lock_guard<std::mutex> lock(mutex_);
  phones_total_[device::GradeIndex(grade)] += count;
}

Status ResourceManager::RemovePhones(device::DeviceGrade grade,
                                     std::size_t count) {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::size_t g = device::GradeIndex(grade);
  if (count > phones_total_[g] || phones_total_[g] - count < phones_used_[g]) {
    return FailedPrecondition("cannot remove busy phones");
  }
  phones_total_[g] -= count;
  return Status::Ok();
}

}  // namespace simdc::sched
