// Hybrid allocation optimization (§IV-B, Eq. 1).
//
// A task simulates c grades of devices, {N_1..N_c} devices per grade, of
// which {q_i} are benchmarking phones. Grade i has f_i unit resource
// bundles available in Logical Simulation (a device of the grade needs k_i
// bundles) and m_i physical phones in Device Simulation. Measured runtime
// parameters: α_i (logical batch seconds), β_i (phone batch seconds), λ_i
// (phone compute-framework startup seconds).
//
// Choosing x_i devices for Logical Simulation (the rest on phones) yields
//   Tl = max_i ceil(k_i·x_i / f_i)·α_i
//   Tp = max_i ceil((N_i−q_i−x_i) / m_i)·β_i + λ_i
//   T  = max(Tl, Tp)  → minimize; tie-break: maximize Σ x_i when the user
//   asks to prioritize Logical Simulation resources (paper's secondary
//   objective), else minimize Σ x_i.
//
// Solved exactly: with T fixed, the constraints decouple per grade into an
// interval [x_min_i(T), x_max_i(T)], so feasibility is O(c); the optimum
// is found by binary search over the O(Σ N_i) candidate values of T
// (design decision D1 in DESIGN.md; brute force kept for verification).
#pragma once

#include <cstddef>
#include <vector>

#include "common/error.h"

namespace simdc::sched {

/// Inputs for one device grade.
struct GradeAllocationInput {
  std::size_t total_devices = 0;       // N_i
  std::size_t benchmarking = 0;        // q_i (always on phones)
  std::size_t logical_bundles = 0;     // f_i
  std::size_t bundles_per_device = 1;  // k_i
  std::size_t phones = 0;              // m_i
  double alpha_s = 1.0;                // α_i
  double beta_s = 1.0;                 // β_i
  double lambda_s = 0.0;               // λ_i

  /// Devices that still need placement (N_i - q_i).
  std::size_t placeable() const { return total_devices - benchmarking; }
};

struct AllocationResult {
  /// x_i: devices allocated to Logical Simulation, per grade.
  std::vector<std::size_t> logical_devices;
  double total_seconds = 0.0;    // T
  double logical_seconds = 0.0;  // Tl
  double device_seconds = 0.0;   // Tp
};

/// Makespan of a specific assignment x (also used to cost the fixed-ratio
/// Types 1–5 of Fig. 7). Grades with x_i > placeable are clamped.
double PredictMakespan(const std::vector<GradeAllocationInput>& grades,
                       const std::vector<std::size_t>& logical_devices,
                       double* logical_seconds = nullptr,
                       double* device_seconds = nullptr);

/// Exact optimizer (binary search over candidate makespans).
/// `prefer_logical` selects the secondary objective (max vs min Σ x_i).
Result<AllocationResult> SolveHybridAllocation(
    const std::vector<GradeAllocationInput>& grades,
    bool prefer_logical = true);

/// O(Π N_i) exhaustive reference used by tests and the ablation bench.
Result<AllocationResult> BruteForceAllocation(
    const std::vector<GradeAllocationInput>& grades,
    bool prefer_logical = true);

/// Fixed split: x_i = round(ratio × placeable_i) — the paper's Type 1–5
/// allocation ratios (Fig. 6/7), ratio = fraction on Logical Simulation.
std::vector<std::size_t> FixedRatioAllocation(
    const std::vector<GradeAllocationInput>& grades, double logical_ratio);

/// One tenant competing for a shared pool of fungible units (the
/// multi-tenant scheduler uses total phones as the unit).
struct TenantDemand {
  std::size_t demand = 0;  // units the tenant wants right now
  std::size_t weight = 1;  // fair-share weight (>= 1; 0 is treated as 1)
};

/// Weighted max-min fair integer shares over `capacity` units: classic
/// water-filling. Repeatedly grants each unsatisfied tenant
/// floor(remaining · w_i / W) (W = sum of unsatisfied weights), capping at
/// its demand; when a whole sweep grants nothing but units remain, the
/// leftover goes one unit at a time in (weight desc, index asc) order.
/// Properties: share_i <= demand_i, sum(shares) <= capacity, fully
/// deterministic in tenant index order, and any tenant demanding at least
/// its proportional slice receives at least floor(capacity · w_i / W_all)
/// minus integer slack (< number of tenants).
std::vector<std::size_t> SolveWeightedFairShares(
    const std::vector<TenantDemand>& tenants, std::size_t capacity);

}  // namespace simdc::sched
