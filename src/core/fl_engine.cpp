#include "core/fl_engine.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "sim/lockstep.h"

namespace simdc::core {

FlEngine::FlEngine(sim::EventLoop& loop, const data::FederatedDataset& dataset,
                   FlExperimentConfig config, ThreadPool* pool)
    : loop_(loop),
      runtime_(std::make_unique<TaskRuntime>(loop, dataset, std::move(config),
                                             pool)) {}

FlRunResult FlEngine::Run() {
  runtime_->Begin();
  if (!runtime_->sharded()) {
    loop_.Run();
  } else {
    // Lockstep: cloud events first at each tick, shard loops advanced in
    // parallel to a bounded horizon, then the merge barrier. The feedback
    // guard is the engine's floor on upload latency — every event a
    // drained delivery can schedule (uploads, round-end flush, stall
    // guard) sits at least compute_seconds after the triggering arrival.
    sim::LockstepGroup group(loop_, runtime_->ShardLoops(), runtime_->pool());
    sim::LockstepGroup::Hooks hooks;
    flow::ShardMerger* merger = runtime_->merger();
    hooks.next_pending = [merger] { return merger->NextTickTime(); };
    hooks.drain = [merger](SimTime horizon) { merger->DrainUpTo(horizon); };
    group.Run(hooks, runtime_->feedback_guard());
  }
  return runtime_->Finalize();
}

}  // namespace simdc::core
