#include "core/fl_engine.h"

#include <algorithm>
#include <future>
#include <memory>

#include "common/log.h"

namespace simdc::core {

FlEngine::FlEngine(sim::EventLoop& loop, const data::FederatedDataset& dataset,
                   FlExperimentConfig config, ThreadPool* pool)
    : loop_(loop),
      dataset_(dataset),
      config_(std::move(config)),
      pool_(pool),
      flow_(loop),
      rng_(Rng(config_.seed).Split("fl-engine")) {
  SIMDC_CHECK(!dataset.devices.empty(), "FlEngine: dataset has no devices");
  // Resolve the training parallelism knob (see FlExperimentConfig): 1
  // forces the sequential path, N > 1 guarantees exactly N workers. The
  // knob never changes results, only wall time.
  if (config_.parallelism == 1) {
    pool_ = nullptr;
  } else if (config_.parallelism > 1 &&
             (pool_ == nullptr || pool_->size() != config_.parallelism)) {
    owned_pool_ = std::make_unique<ThreadPool>(config_.parallelism);
    pool_ = owned_pool_.get();
  }
  cloud::AggregationConfig agg;
  agg.model_dim = dataset.hash_dim;
  agg.trigger = config_.trigger;
  agg.sample_threshold = config_.sample_threshold;
  agg.schedule_period = config_.schedule_period;
  agg.max_rounds = config_.rounds;
  agg.reject_stale = config_.reject_stale;
  service_ = std::make_unique<cloud::AggregationService>(loop_, storage_, agg);

  const Status configured =
      flow_.ConfigureTask(config_.task, config_.strategy, service_.get(),
                          config_.seed, config_.delivery_mode);
  SIMDC_CHECK(configured.ok(), "FlEngine: DeviceFlow configuration failed");

  // Build the train-evaluation pool: a deterministic, capped sample of the
  // union of device shards (Fig. 9b reports train accuracy).
  Rng pool_rng = Rng(config_.seed).Split("train-eval-pool");
  for (const auto& device : dataset_.devices) {
    for (const auto& example : device.examples) {
      if (train_eval_pool_.size() < config_.eval_cap) {
        train_eval_pool_.push_back(example);
      } else {
        // Approximate reservoir: each later example replaces a uniform
        // slot with fixed probability 1/8 (NOT the cap/seen schedule of a
        // true reservoir, so late shards are somewhat over-represented);
        // good enough for a smoothed train-metric pool, and deterministic.
        const auto j = static_cast<std::size_t>(pool_rng.UniformInt(
            0, static_cast<std::int64_t>(train_eval_pool_.size()) * 8));
        if (j < train_eval_pool_.size()) train_eval_pool_[j] = example;
      }
    }
  }
}

bool FlEngine::ShouldStop() const {
  if (result_.rounds.size() >= config_.rounds) return true;
  if (config_.time_window > 0 && loop_.Now() >= config_.time_window) {
    return true;
  }
  return false;
}

FlRunResult FlEngine::Run() {
  service_->set_on_aggregate(
      [this](const cloud::AggregationRecord& record, const ml::LrModel& model) {
        RecordRound(record, model);
      });
  service_->Start();
  StartRound(0);
  loop_.Run();

  const ml::LrModel& model = service_->global_model();
  result_.model_dim = model.dim();
  result_.final_weights.assign(model.weights().begin(),
                               model.weights().end());
  result_.final_bias = model.bias();
  if (const auto* dispatcher = flow_.FindDispatcher(config_.task)) {
    result_.messages_dropped = dispatcher->stats().dropped;
  }
  return result_;
}

void FlEngine::StartRoundFrom(std::size_t round, SimTime t0) {
  if (ShouldStop()) {
    service_->Stop();
    return;
  }
  ++rounds_started_;
  (void)flow_.OnRoundStart(config_.task, round);

  // Pick participants.
  std::vector<std::size_t> participants;
  const std::size_t n = dataset_.devices.size();
  if (config_.participants_per_round == 0 ||
      config_.participants_per_round >= n) {
    participants.resize(n);
    for (std::size_t i = 0; i < n; ++i) participants[i] = i;
  } else {
    Rng round_rng = Rng(config_.seed).Split(round * 2654435761ULL + 17);
    participants = round_rng.SampleWithoutReplacement(
        n, config_.participants_per_round);
    std::sort(participants.begin(), participants.end());
  }

  // Train every participant from the current global model. Work is
  // CPU-parallel but deterministic: each device's result depends only on
  // (global model, shard, seeds), never on execution order.
  struct Trained {
    std::vector<std::byte> bytes;
    std::size_t samples = 0;
    SimDuration delay = 0;
    DeviceId device;
  };
  const ml::LrModel& global = service_->global_model();
  const auto logical_cut = static_cast<std::size_t>(
      config_.logical_fraction * static_cast<double>(n) + 0.5);
  auto results = std::make_shared<std::vector<Trained>>(participants.size());

  auto train_one = [&, this](std::size_t slot) {
    const std::size_t device_index = participants[slot];
    const auto& shard = dataset_.devices[device_index];
    ml::LrModel local = global;
    // §VI-B2: logical simulation uses the PyMNN-like server kernel, device
    // simulation the MNN-like mobile kernel.
    const ml::OperatorVenue venue = device_index < logical_cut
                                        ? ml::OperatorVenue::kServer
                                        : ml::OperatorVenue::kMobile;
    const auto op = ml::MakeLrOperator(venue);
    ml::TrainConfig train = config_.train;
    train.shuffle_seed =
        SplitMix64(config_.seed ^ (device_index * 1000003ULL + round));
    op->Train(local, shard.examples, train);

    Trained& out = (*results)[slot];
    out.bytes = local.ToBytes();
    out.samples = shard.examples.size();
    out.device = shard.device;
    Rng delay_rng = Rng(config_.seed).Split(device_index ^ (round << 20));
    const SimDuration extra =
        config_.delay_fn
            ? config_.delay_fn(shard, round, delay_rng)
            : Seconds(shard.response_delay_s);
    out.delay = Seconds(config_.compute_seconds) + std::max<SimDuration>(0, extra);
  };

  if (pool_ != nullptr) {
    pool_->ParallelFor(participants.size(),
                       [&](std::size_t slot) { train_one(slot); });
  } else {
    for (std::size_t slot = 0; slot < participants.size(); ++slot) {
      train_one(slot);
    }
  }

  // Emit upload events: blob to storage + message into DeviceFlow at the
  // device's response time. Messages carry the *aggregation* round they
  // were trained against (what a staleness-filtering cloud checks), which
  // can lag the engine's round index when a round closed empty.
  const std::size_t aggregation_round = service_->rounds_completed();
  SimDuration max_delay = 0;
  std::vector<sim::TimedEvent> uploads;
  uploads.reserve(participants.size());
  for (std::size_t slot = 0; slot < participants.size(); ++slot) {
    const Trained& trained = (*results)[slot];
    max_delay = std::max(max_delay, trained.delay);
    const MessageId message_id(next_message_id_++);
    uploads.push_back({t0 + trained.delay, [this, results, slot,
                                            round = aggregation_round,
                                            message_id] {
                         Trained& trained = (*results)[slot];
                         flow::Message message;
                         message.id = message_id;
                         message.task = config_.task;
                         message.device = trained.device;
                         message.round = round;
                         message.payload_bytes =
                             static_cast<std::int64_t>(trained.bytes.size());
                         message.payload = storage_.Put(std::move(trained.bytes));
                         message.sample_count = trained.samples;
                         message.created = loop_.Now();
                         ++result_.messages_emitted;
                         (void)flow_.OnMessage(std::move(message));
                       }});
  }
  // One heap rebuild for the whole round's uploads (O(N + H), same FIFO
  // tie-breaks as scheduling them one by one).
  (void)loop_.ScheduleBulk(std::move(uploads));

  // Device-side round completion → rule-based strategies fire.
  const SimTime round_end = t0 + max_delay;
  loop_.ScheduleAt(round_end,
                   [this, round] { (void)flow_.OnRoundEnd(config_.task, round); });

  // Stall guard: if the trigger never fires (heavy dropout under a sample
  // threshold), force-aggregate; with nothing pending, close an empty
  // round so the experiment still advances.
  stall_event_ = loop_.ScheduleAt(
      round_end + config_.stall_timeout, [this, round] {
        stall_event_ = 0;
        if (last_recorded_round_ > round) return;  // already closed
        if (!service_->AggregateNow()) {
          RoundMetrics metrics;
          metrics.round = result_.rounds.size() + 1;
          metrics.time = loop_.Now();
          const auto eval_test = ml::Evaluate(
              service_->global_model(),
              std::span(dataset_.test_set.data(),
                        std::min(dataset_.test_set.size(), config_.eval_cap)));
          metrics.test_accuracy = eval_test.accuracy;
          metrics.test_logloss = eval_test.logloss;
          result_.rounds.push_back(metrics);
          last_recorded_round_ = round + 1;
          StartRound(round + 1);
        }
      });
}

void FlEngine::RecordRound(const cloud::AggregationRecord& record,
                           const ml::LrModel& model) {
  if (stall_event_ != 0) {
    loop_.Cancel(stall_event_);
    stall_event_ = 0;
  }
  RoundMetrics metrics;
  metrics.round = record.round;
  metrics.time = record.time;
  metrics.clients = record.clients;
  metrics.samples = record.samples;
  const auto test_span =
      std::span(dataset_.test_set.data(),
                std::min(dataset_.test_set.size(), config_.eval_cap));
  const auto test = ml::Evaluate(model, test_span);
  metrics.test_accuracy = test.accuracy;
  metrics.test_logloss = test.logloss;
  const auto train = ml::Evaluate(model, train_eval_pool_);
  metrics.train_accuracy = train.accuracy;
  metrics.train_logloss = train.logloss;
  result_.rounds.push_back(metrics);
  last_recorded_round_ = rounds_started_;

  if (!ShouldStop()) {
    // Anchor at the aggregation's wire time: equal to Now() when rounds
    // close inside per-message delivery events, and ahead of Now() when
    // they close inside a batched tick.
    StartRoundFrom(rounds_started_, std::max(loop_.Now(), record.time));
  } else {
    service_->Stop();
  }
}

}  // namespace simdc::core
