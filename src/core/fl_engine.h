// End-to-end federated-learning engine on the SimDC substrate.
//
// This drives the paper's experimental pipeline (§VI): simulated devices
// train a shared LR model locally (logical-simulation devices use the
// server operator, device-simulation devices the mobile operator), upload
// the update blob to shared storage, and send a message through
// DeviceFlow, which shapes the traffic per the task's strategy before it
// reaches the cloud AggregationService. Aggregations fire on a
// sample-threshold or on a schedule; each aggregation closes a round,
// publishes a new global model and is evaluated.
//
// Everything runs on the discrete-event loop: message delays, traffic
// curves, dropouts and 20-minute aggregation windows are virtual time.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "cloud/aggregation.h"
#include "cloud/storage.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "data/example.h"
#include "flow/device_flow.h"
#include "ml/metrics.h"
#include "ml/operators.h"
#include "sim/event_loop.h"

namespace simdc::core {

/// Per-round evaluation record.
struct RoundMetrics {
  std::size_t round = 0;
  SimTime time = 0;
  double test_accuracy = 0.0;
  double test_logloss = 0.0;
  double train_accuracy = 0.0;
  double train_logloss = 0.0;
  std::size_t clients = 0;
  std::size_t samples = 0;
};

struct FlRunResult {
  std::vector<RoundMetrics> rounds;
  std::size_t messages_emitted = 0;
  std::size_t messages_dropped = 0;
  /// Final global model (dimension = dataset hash_dim).
  std::uint32_t model_dim = 0;
  std::vector<float> final_weights;
  float final_bias = 0.0f;
};

struct FlExperimentConfig {
  ml::TrainConfig train;
  /// Maximum aggregation rounds.
  std::size_t rounds = 10;
  /// When > 0, stop once virtual time passes this window (Fig. 9a's
  /// "fixed 20-minute window") even if fewer rounds completed.
  SimDuration time_window = 0;
  /// Fraction of devices executed in Logical Simulation (server operator);
  /// the rest run as Device Simulation (mobile operator). Fig. 6 Types 1–5.
  double logical_fraction = 1.0;
  /// DeviceFlow strategy for this task's traffic.
  flow::DispatchStrategy strategy = flow::RealtimeAccumulated{{1}, 0.0};
  /// Event granularity of the device→cloud message plane: kBatched is
  /// O(ticks), kPerMessage the O(messages) reference path kept for
  /// equivalence testing. Results are bit-identical across modes except
  /// when a kScheduled aggregation tick lands strictly inside a
  /// multi-message tick's capacity window (see flow::DeliveryMode); with
  /// single-message ticks (the default pass-through strategy) or
  /// kSampleThreshold triggers the two modes never diverge. Within one
  /// mode, results are always deterministic at every parallelism.
  flow::DeliveryMode delivery_mode = flow::DeliveryMode::kBatched;
  cloud::AggregationTrigger trigger = cloud::AggregationTrigger::kScheduled;
  std::size_t sample_threshold = 1000;
  SimDuration schedule_period = Seconds(60.0);
  /// Cloud rejects updates from earlier rounds (see AggregationConfig).
  bool reject_stale = false;
  /// Message delay after round start for one device (traffic curve).
  /// Default: the device's stored response_delay_s.
  std::function<SimDuration(const data::DeviceData&, std::size_t round, Rng&)>
      delay_fn;
  /// Devices participating per round (0 = all).
  std::size_t participants_per_round = 0;
  /// Local compute latency added before a device's message leaves.
  double compute_seconds = 2.0;
  /// If an aggregation round stalls (e.g. heavy dropout under a sample
  /// threshold), force-aggregate after this much extra waiting.
  SimDuration stall_timeout = Minutes(5.0);
  /// Cap on test/train examples scored per evaluation (speed knob).
  std::size_t eval_cap = 20000;
  /// Worker threads for per-client local training within a round:
  ///   0  — inherit whatever pool the caller passed (Platform's worker
  ///        pool; sequential when constructed without one);
  ///   1  — force sequential execution in the calling thread;
  ///   N  — train with exactly N workers (the engine owns a private pool
  ///        unless the caller's pool already has N threads).
  /// Results are bit-for-bit identical for every setting: each client draws
  /// from its own seed-derived RNG stream and updates are reduced in fixed
  /// client-index order on the event loop.
  std::size_t parallelism = 0;
  std::uint64_t seed = 1;
  TaskId task = TaskId(1);
};

class FlEngine {
 public:
  FlEngine(sim::EventLoop& loop, const data::FederatedDataset& dataset,
           FlExperimentConfig config, ThreadPool* pool = nullptr);

  /// Runs the experiment to completion and returns per-round metrics.
  FlRunResult Run();

  const cloud::AggregationService& aggregation() const { return *service_; }
  const flow::DeviceFlow& device_flow() const { return flow_; }
  const cloud::BlobStore& storage() const { return storage_; }

 private:
  void StartRound(std::size_t round) { StartRoundFrom(round, loop_.Now()); }
  /// `t0` anchors the round's upload schedule. Threshold-triggered rounds
  /// pass the aggregation record time, which equals loop time in the
  /// per-message delivery path and keeps the batched path bit-identical.
  void StartRoundFrom(std::size_t round, SimTime t0);
  void RecordRound(const cloud::AggregationRecord& record,
                   const ml::LrModel& model);
  bool ShouldStop() const;

  sim::EventLoop& loop_;
  const data::FederatedDataset& dataset_;
  FlExperimentConfig config_;
  /// Pool created when config_.parallelism asks for a width the caller's
  /// pool does not provide; pool_ then points at it.
  std::unique_ptr<ThreadPool> owned_pool_;
  ThreadPool* pool_;
  cloud::BlobStore storage_;
  flow::DeviceFlow flow_;
  std::unique_ptr<cloud::AggregationService> service_;
  Rng rng_;
  FlRunResult result_;
  std::size_t rounds_started_ = 0;
  std::size_t last_recorded_round_ = 0;
  /// Training-set evaluation pool (capped union of device shards).
  std::vector<data::Example> train_eval_pool_;
  std::uint64_t next_message_id_ = 1;
  sim::EventHandle stall_event_ = 0;
};

}  // namespace simdc::core
