// End-to-end federated-learning engine on the SimDC substrate.
//
// This drives the paper's experimental pipeline (§VI): simulated devices
// train a shared LR model locally (logical-simulation devices use the
// server operator, device-simulation devices the mobile operator), upload
// the update blob to shared storage, and send a message through
// DeviceFlow, which shapes the traffic per the task's strategy before it
// reaches the cloud AggregationService. Aggregations fire on a
// sample-threshold or on a schedule; each aggregation closes a round,
// publishes a new global model and is evaluated.
//
// Everything runs on the discrete-event loop: message delays, traffic
// curves, dropouts and 20-minute aggregation windows are virtual time.
//
// FlEngine is the single-task facade: all per-task state lives in
// core::TaskRuntime (so N runtimes can share one cloud loop — see
// core::MultiTenantEngine); FlEngine owns exactly one runtime and drives
// its loops to completion, preserving the historical one-call Run() API
// bit-for-bit.
#pragma once

#include <memory>

#include "core/task_runtime.h"

namespace simdc::core {

class FlEngine {
 public:
  FlEngine(sim::EventLoop& loop, const data::FederatedDataset& dataset,
           FlExperimentConfig config, ThreadPool* pool = nullptr);

  /// Runs the experiment to completion and returns per-round metrics.
  FlRunResult Run();

  /// Prepares this (freshly constructed) engine to resume a crashed
  /// log+checkpoint run from `config.durability.dir`: loads the latest
  /// valid checkpoint, replays the blob log's valid prefix into the store
  /// (truncating any torn tail), restores aggregator / metrics / dispatch
  /// state, fast-forwards every event loop to the checkpoint time, and
  /// arms Run() to re-enter at the interrupted round. Must be called
  /// before Run() and on an engine that has not run yet. Returns NotFound
  /// when no checkpoint exists (caller should run fresh instead).
  Status RestoreFromRecovery() { return runtime_->RestoreFromRecovery(); }

  /// Optional metrics sink checkpointed alongside the aggregator (the
  /// platform wires its MetricsDatabase here). Checkpoints capture the
  /// database's rows in insertion order; RestoreFromRecovery replays them.
  void set_metrics_database(cloud::MetricsDatabase* db) {
    runtime_->set_metrics_database(db);
  }

  /// Durability plane, or nullptr when config.durability.mode == kOff.
  const persist::DurableStore* durable_store() const {
    return runtime_->durable_store();
  }

  const cloud::AggregationService& aggregation() const {
    return runtime_->aggregation();
  }
  /// Single-fleet flow service; holds no tasks when the run is sharded.
  const flow::DeviceFlow& device_flow() const {
    return runtime_->device_flow();
  }
  const cloud::BlobStore& storage() const { return runtime_->storage(); }
  /// Behavior model, or nullptr when config.behavior.enabled is false.
  /// Mutable so callers can LoadTrace (Fig. 5 replay) before Run().
  device::BehaviorModel* behavior_model() { return runtime_->behavior_model(); }
  const device::BehaviorModel* behavior_model() const {
    return runtime_->behavior_model();
  }

  /// Resolved fleet width (config.shards clamped to the device count).
  std::size_t shards() const { return runtime_->shards(); }
  /// Shard `s`'s device range under the resolved partition.
  const data::ShardRange& shard_range(std::size_t s) const {
    return runtime_->shard_range(s);
  }
  /// Task dispatch accounting, identical in shape for both topologies:
  /// single-fleet runs return the one dispatcher's stats; sharded runs
  /// return per-shard stats merged with summed counters and batch logs
  /// interleaved in (tick time, first message id, shard) order — the same
  /// order the unsharded dispatcher logs, so the result is width-invariant
  /// whenever
  /// the run itself is AND no per-shard log hit its cap (the batch-log
  /// cap is split across fleets to keep total memory at the single-fleet
  /// bound, so truncation points are per-fleet; batches_truncated > 0
  /// flags a capped — and therefore width-sensitive — log).
  flow::DispatchStats dispatch_stats() const {
    return runtime_->dispatch_stats();
  }

  /// Per-task SLA row of the completed (or in-flight) run.
  TaskSlaReport Sla() const { return runtime_->Sla(); }

  /// The underlying per-task runtime (escape hatch for drivers/tests).
  TaskRuntime& runtime() { return *runtime_; }
  const TaskRuntime& runtime() const { return *runtime_; }

 private:
  sim::EventLoop& loop_;
  std::unique_ptr<TaskRuntime> runtime_;
};

}  // namespace simdc::core
