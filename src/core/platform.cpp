#include "core/platform.h"

#include <algorithm>
#include <thread>

#include "common/log.h"
#include "device/fleet.h"

namespace simdc::core {
namespace {

std::size_t WorkerCount(std::size_t configured) {
  if (configured != 0) return configured;
  return std::max(2u, std::thread::hardware_concurrency());
}

}  // namespace

Platform::Platform(PlatformConfig config)
    : config_(config),
      workers_(WorkerCount(config.worker_threads)),
      phone_mgr_(loop_),
      resources_(config.logical_unit_bundles,
                 {config.local_high_phones + config.msp_high_phones,
                  config.local_low_phones + config.msp_low_phones}),
      scheduler_(resources_) {
  phone_mgr_.RegisterFleet(device::MakeLocalFleet(
      config.local_high_phones, config.local_low_phones, config.seed, 0));
  phone_mgr_.RegisterFleet(device::MakeMspFleet(
      config.msp_high_phones, config.msp_low_phones, config.seed ^ 0xABCD,
      1000));
  phone_mgr_.set_metrics_sink(&metrics_);
}

Status Platform::SubmitTask(sched::TaskSpec task) {
  if (!task.id.valid()) task.id = NextTaskId();
  return queue_.Submit(std::move(task));
}

std::vector<TaskReport> Platform::RunQueuedTasks(const ExecOptions& options) {
  finished_reports_.clear();
  SchedulerPass(options);
  loop_.Run();
  return finished_reports_;
}

void Platform::SchedulerPass(const ExecOptions& options) {
  for (auto& task : scheduler_.SchedulePass(queue_)) {
    LaunchTask(std::move(task), options);
  }
}

void Platform::LaunchTask(sched::TaskSpec task, const ExecOptions& options) {
  auto running = std::make_shared<RunningTask>();
  running->frozen = sched::RequestFor(task);
  running->report.id = task.id;
  running->report.started = loop_.Now();

  // Build per-grade allocation inputs from the spec.
  std::vector<sched::GradeAllocationInput> grades;
  for (const auto& requirement : task.requirements) {
    const device::GradeSpec spec = device::DefaultGradeSpec(requirement.grade);
    sched::GradeAllocationInput input;
    input.total_devices = requirement.num_devices;
    input.benchmarking = requirement.benchmarking_phones;
    input.logical_bundles = requirement.logical_bundles;
    input.bundles_per_device = spec.unit_bundles;
    input.phones = requirement.phones;
    input.alpha_s = spec.alpha_s;
    input.beta_s = spec.beta_s;
    input.lambda_s = spec.lambda_s;
    grades.push_back(input);
  }

  sched::AllocationResult allocation;
  if (options.use_optimizer) {
    auto solved = sched::SolveHybridAllocation(grades, /*prefer_logical=*/true);
    if (!solved.ok()) {
      running->report.ok = false;
      running->report.detail = solved.error().ToString();
      running->report.finished = loop_.Now();
      (void)resources_.Release(running->frozen);
      finished_reports_.push_back(running->report);
      return;
    }
    allocation = std::move(*solved);
  } else {
    allocation.logical_devices =
        sched::FixedRatioAllocation(grades, options.fixed_logical_ratio);
    allocation.total_seconds =
        sched::PredictMakespan(grades, allocation.logical_devices,
                               &allocation.logical_seconds,
                               &allocation.device_seconds);
  }
  running->report.allocation = allocation;
  running->report.ok = true;
  running->spec = task;
  running->report.benchmarking.resize(task.requirements.size());

  // Launch one phone job + one logical-completion event per grade.
  for (std::size_t g = 0; g < task.requirements.size(); ++g) {
    const auto& requirement = task.requirements[g];
    const device::GradeSpec grade_spec =
        device::DefaultGradeSpec(requirement.grade);
    const std::size_t x = allocation.logical_devices[g];
    const std::size_t on_phones =
        requirement.num_devices - requirement.benchmarking_phones - x;

    // Device Simulation part.
    if (on_phones > 0 || requirement.benchmarking_phones > 0) {
      device::PhoneJob job;
      job.task = task.id;
      job.grade = requirement.grade;
      job.devices_to_simulate = on_phones;
      job.computing_phones = on_phones > 0 ? requirement.phones : 0;
      job.benchmarking_phones = requirement.benchmarking_phones;
      job.rounds = task.rounds;
      job.round_duration_s = grade_spec.beta_s;
      job.startup_s = grade_spec.lambda_s;
      job.aggregation_wait_s = options.aggregation_wait_s;
      job.download_bytes = options.download_bytes;
      job.upload_bytes = options.upload_bytes;
      job.sample_period = options.sample_period;
      ++running->parts_pending;
      job.on_complete = [this, running, options](TaskId, SimTime) {
        FinishPart(running, options);
      };
      auto handle = phone_mgr_.SubmitJob(job);
      if (!handle.ok()) {
        --running->parts_pending;
        running->report.ok = false;
        running->report.detail = handle.error().ToString();
      } else {
        running->report.benchmarking[g] = handle->benchmarking;
      }
    }

    // Logical Simulation part (cost-modelled: Tl per round × rounds).
    if (x > 0) {
      const std::size_t batches =
          (grade_spec.unit_bundles * x + requirement.logical_bundles - 1) /
          std::max<std::size_t>(1, requirement.logical_bundles);
      const double seconds_per_round =
          static_cast<double>(batches) * grade_spec.alpha_s;
      const double total =
          seconds_per_round * static_cast<double>(task.rounds);
      ++running->parts_pending;
      loop_.ScheduleAfter(Seconds(total), [this, running, options] {
        FinishPart(running, options);
      });
    }
  }

  if (running->parts_pending == 0) {
    // Degenerate task (no devices anywhere): finish immediately.
    running->report.finished = loop_.Now();
    (void)resources_.Release(running->frozen);
    finished_reports_.push_back(running->report);
    SchedulerPass(options);
  }
}

void Platform::FinishPart(const std::shared_ptr<RunningTask>& running,
                          const ExecOptions& options) {
  if (--running->parts_pending > 0) return;
  running->report.finished = loop_.Now();
  (void)resources_.Release(running->frozen);
  finished_reports_.push_back(running->report);
  // Freed resources may unblock queued tasks — run another greedy pass.
  SchedulerPass(options);
}

FlRunResult Platform::RunFlExperiment(const data::FederatedDataset& dataset,
                                      FlExperimentConfig config) {
  // The engine resolves config.parallelism against the shared pool: it
  // ignores it when sequential is forced, reuses it when the width
  // matches, and owns a private pool otherwise.
  FlEngine engine(loop_, dataset, std::move(config), &workers_);
  // Durable runs checkpoint the platform's metrics database alongside the
  // aggregator so a resumed experiment reports identical rows.
  engine.set_metrics_database(&metrics_);
  return engine.Run();
}

std::vector<TenantResult> Platform::RunMultiTenantExperiment(
    std::vector<TenantTask> tasks, const sched::SchedulePolicy& policy) {
  MultiTenantEngine engine(loop_, resources_, &workers_);
  for (TenantTask& task : tasks) {
    if (const Status submitted = engine.Submit(std::move(task));
        !submitted.ok()) {
      SIMDC_LOG(kWarn, "Platform")
          << "multi-tenant submit failed: " << submitted.ToString();
    }
  }
  return engine.Run(policy);
}

}  // namespace simdc::core
