// Multi-tenant FL plane: N concurrent tasks on one shared fleet.
//
// The paper's scheduling plane (§III-B Task Queue / Scheduler, Fig. 7
// allocation) exists to arbitrate many concurrent FL tasks over one device
// fleet. MultiTenantEngine is that arbitration made executable: tenants
// submit (TaskSpec, FlExperimentConfig) pairs, the GreedyScheduler admits
// them from the TaskQueue against the shared ResourceManager (priority or
// weighted-fair policy, with admission control when the fleet saturates),
// and every admitted tenant runs as its own core::TaskRuntime — its own
// AggregationService (per-task quorum/deadline knobs), its own Dispatchers
// (per-task LinkPolicy), its own RNG streams — all interleaved on ONE
// shared cloud event loop.
//
// Determinism contract: every cross-task interleaving decision is made in
// fixed (task id, tick) order —
//   · admission walks the queue in (priority desc, submission) order and
//     completions re-run admission as cloud events at the completion time;
//   · the shared cloud loop orders same-time events by schedule FIFO,
//     which is itself a pure function of (task set, seeds);
//   · the cross-tenant merge barrier forwards buffered shard ticks
//     globally earliest-first, ties broken by ascending task id, one tick
//     at a time (flow::ShardMerger::DrainOne), so each tenant's
//     aggregator observes exactly the clock and order it would have seen
//     running solo.
// Per-task state is fully disjoint (storage, aggregator, dispatchers,
// RNG), so a fixed seed reproduces bit-identical per-task results at any
// engine parallelism and any shard width — and a contention-free run is
// bit-identical to the same tasks run solo in sequence.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "config/task_config.h"
#include "core/task_runtime.h"
#include "sched/resource_manager.h"
#include "sched/scheduler.h"
#include "sched/task_queue.h"

namespace simdc::core {

/// Maps one tenant's parsed spec onto the experiment it runs: [traffic]
/// strategy, [link] policy, [behavior] model, [aggregation] trigger and
/// the [execution] knobs (shards, parallelism, codec, durability,
/// quorum/deadline) all land in the PER-TASK FlExperimentConfig — two
/// specs with different [link] or round_quorum sections genuinely run two
/// different policies side by side (historically the first spec's set was
/// applied globally). `seed` feeds the task's RNG streams; rounds come
/// from the spec's [task] section.
FlExperimentConfig ExperimentFromTenantSpec(
    const config::TenantSpecConfig& spec, std::uint64_t seed);

/// One tenant's submission: the sched-plane spec (priority, per-grade
/// resource requirements — what admission arbitrates) plus the FL
/// experiment the tenant runs once admitted (per-task policies: strategy,
/// LinkPolicy, quorum/deadline, shards, seed).
struct TenantTask {
  sched::TaskSpec spec;
  FlExperimentConfig fl;
  /// Dataset the tenant trains on (not owned; must outlive Run()).
  const data::FederatedDataset* dataset = nullptr;
};

/// Per-tenant outcome of a multi-tenant run.
struct TenantResult {
  TaskId id;
  /// Admitted and ran to completion.
  bool completed = false;
  /// Permanently refused by admission control (demand exceeds the fleet's
  /// totals or the policy's fleet-share cap).
  bool rejected = false;
  std::string detail;
  FlRunResult result;
  TaskSlaReport sla;
};

class MultiTenantEngine {
 public:
  /// `loop` is the shared cloud-plane event loop; `resources` the shared
  /// fleet pool tenants contend over (frozen at admission, released at
  /// completion); `pool` parallelizes training and shard-loop advancement
  /// (results are identical with or without it).
  MultiTenantEngine(sim::EventLoop& loop, sched::ResourceManager& resources,
                    ThreadPool* pool = nullptr);

  /// Queues a tenant. Fails on duplicate task ids or a null dataset.
  /// All submissions before Run() carry submit time 0.
  Status Submit(TenantTask task);

  /// Admits and runs every queued tenant to global quiescence under
  /// `policy`, then returns per-tenant results in ascending task-id order.
  /// Tenants the fleet can never satisfy come back rejected; in
  /// weighted-fair mode, if a pass admits nothing while nothing is
  /// running (mutual fair-share deadlock among oversized demands), the
  /// pass falls back to priority-greedy so the queue always drains.
  std::vector<TenantResult> Run(const sched::SchedulePolicy& policy = {});

  /// Tenants currently admitted and not yet complete (valid during Run —
  /// e.g. from metrics hooks; 0 before/after).
  std::size_t active_tenants() const { return active_; }
  /// High-water mark of concurrently active tenants over the run.
  std::size_t peak_active_tenants() const { return peak_active_; }
  /// Admission passes executed (initial + one per completion event).
  std::size_t admission_passes() const { return admission_passes_; }

 private:
  struct Tenant {
    TenantTask task;
    sched::ResourceRequest frozen;
    std::unique_ptr<TaskRuntime> runtime;
    SimTime submitted = 0;
    bool admitted = false;
    bool rejected = false;
  };

  /// One scheduling pass at the loop's current time: admits every tenant
  /// the policy and pool allow, constructs + Begin()s their runtimes.
  void AdmissionPass(const sched::SchedulePolicy& policy);
  void Admit(Tenant& tenant, SimTime now);
  void OnTenantComplete(Tenant& tenant, SimTime when);
  /// Dynamic lockstep over the shared cloud loop, every active tenant's
  /// shard loops, and the cross-tenant merge barrier. Exits at global
  /// quiescence (no events or buffered ticks anywhere).
  void Drive();

  sim::EventLoop& loop_;
  sched::ResourceManager& resources_;
  ThreadPool* pool_;
  sched::TaskQueue queue_;
  sched::GreedyScheduler scheduler_;
  /// Keyed by task id: the fixed iteration order every cross-tenant
  /// decision (barrier ties, result assembly) is made in.
  std::map<TaskId, Tenant> tenants_;
  sched::SchedulePolicy policy_;
  /// Lockstep feedback guard: min over ALL submitted tenants (not just
  /// active ones). A tenant admitted mid-barrier at time τ >= t0 emits its
  /// first shard tick at >= τ + its own compute >= t0 + this guard >=
  /// horizon, so the barrier's cloud-clock mirror stays monotone no matter
  /// when admissions land. Using only the active tenants' min would let a
  /// small-compute late admission produce a tick behind an already
  /// mirrored clock.
  SimDuration global_guard_ = 0;
  std::size_t active_ = 0;
  std::size_t peak_active_ = 0;
  std::size_t admission_passes_ = 0;
  bool running_ = false;
};

}  // namespace simdc::core
