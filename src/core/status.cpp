#include "core/status.h"

#include "common/string_util.h"

namespace simdc::core {

std::string RenderStatus(Platform& platform) {
  std::string out;
  out += StrFormat("=== SimDC platform status @ t=%.1fs ===\n",
                   ToSeconds(platform.loop().Now()));

  const auto snapshot = platform.resources().Snapshot();
  out += StrFormat(
      "resources: %zu/%zu unit bundles free; phones High %zu/%zu free, "
      "Low %zu/%zu free\n",
      snapshot.logical_bundles_free, snapshot.logical_bundles_total,
      snapshot.phones_free[0], snapshot.phones_total[0],
      snapshot.phones_free[1], snapshot.phones_total[1]);

  auto& mgr = platform.phone_mgr();
  out += StrFormat(
      "phone cluster: %zu phones registered (High %zu idle / Low %zu "
      "idle)\n",
      mgr.TotalPhones(), mgr.CountIdle(device::DeviceGrade::kHigh),
      mgr.CountIdle(device::DeviceGrade::kLow));

  auto& queue = platform.queue();
  out += StrFormat("task queue: %zu waiting\n", queue.size());
  for (const auto& task : queue.SnapshotOrdered()) {
    out += StrFormat("  %-12s prio=%-3d devices=%-5zu bundles=%-4zu "
                     "phones=%zu  (%s)\n",
                     task.id.ToString().c_str(), task.priority,
                     task.TotalDevices(), task.TotalLogicalBundles(),
                     task.TotalPhones(), task.name.c_str());
  }

  out += StrFormat("cloud: %zu perf samples, %zu blobs (%zu KB) stored\n",
                   platform.metrics().sample_count(),
                   platform.storage().blob_count(),
                   platform.storage().total_bytes() / 1024);
  out += StrFormat("event loop: %zu events processed, %zu pending\n",
                   platform.loop().processed(), platform.loop().pending());
  return out;
}

std::string RenderStatusLine(Platform& platform) {
  const auto snapshot = platform.resources().Snapshot();
  return StrFormat(
      "t=%.1fs queue=%zu bundles_free=%zu/%zu phones_free=%zu samples=%zu",
      ToSeconds(platform.loop().Now()), platform.queue().size(),
      snapshot.logical_bundles_free, snapshot.logical_bundles_total,
      snapshot.phones_free[0] + snapshot.phones_free[1],
      platform.metrics().sample_count());
}

}  // namespace simdc::core
