#include "core/multi_tenant.h"

#include <algorithm>
#include <utility>

#include "common/log.h"

namespace simdc::core {

FlExperimentConfig ExperimentFromTenantSpec(
    const config::TenantSpecConfig& spec, std::uint64_t seed) {
  FlExperimentConfig fl;
  fl.task = spec.spec.id;
  fl.rounds = spec.spec.rounds;
  fl.seed = seed;
  if (spec.has_strategy) fl.strategy = spec.strategy;
  fl.link = spec.link;
  fl.behavior = spec.behavior;
  fl.trigger = spec.trigger;
  fl.sample_threshold = spec.sample_threshold;
  fl.schedule_period = spec.schedule_period;
  fl.reject_stale = spec.reject_stale;
  const config::ExecutionConfig& exec = spec.execution;
  fl.parallelism = exec.parallelism;
  fl.shards = exec.shards == 0 ? 1 : exec.shards;
  fl.decode_plane = exec.decode_plane;
  fl.aggregate_plane = exec.aggregate_plane;
  fl.payload_codec = exec.payload_codec;
  fl.reclaim_payload_blobs = exec.reclaim_payload_blobs;
  fl.durability.mode = exec.durability;
  fl.durability.dir = exec.durability_dir;
  fl.round_quorum = exec.round_quorum;
  fl.round_deadline = exec.round_deadline;
  fl.round_extension = exec.round_extension;
  fl.max_round_extensions = exec.max_round_extensions;
  return fl;
}

MultiTenantEngine::MultiTenantEngine(sim::EventLoop& loop,
                                     sched::ResourceManager& resources,
                                     ThreadPool* pool)
    : loop_(loop), resources_(resources), pool_(pool), scheduler_(resources) {}

Status MultiTenantEngine::Submit(TenantTask task) {
  if (task.dataset == nullptr) {
    return InvalidArgument("TenantTask: null dataset for " +
                           task.spec.id.ToString());
  }
  if (tenants_.count(task.spec.id) != 0) {
    return AlreadyExists("tenant already submitted: " +
                         task.spec.id.ToString());
  }
  // Per-task policies ride in task.fl; the engine only pins the identity
  // so the flow plane and the SLA rows agree on who the traffic belongs to.
  task.fl.task = task.spec.id;
  if (Status queued = queue_.Submit(task.spec); !queued.ok()) return queued;
  Tenant tenant;
  tenant.submitted = loop_.Now();
  tenant.task = std::move(task);
  tenants_.emplace(tenant.task.spec.id, std::move(tenant));
  return Status::Ok();
}

void MultiTenantEngine::Admit(Tenant& tenant, SimTime now) {
  tenant.admitted = true;
  ++active_;
  peak_active_ = std::max(peak_active_, active_);
  tenant.runtime = std::make_unique<TaskRuntime>(
      loop_, *tenant.task.dataset, tenant.task.fl, pool_);
  tenant.runtime->set_queue_times(tenant.submitted, now);
  Tenant* slot = &tenant;
  tenant.runtime->set_on_complete(
      [this, slot](SimTime when) { OnTenantComplete(*slot, when); });
  // Begin() starts round 0 at loop_.Now() — for tenants admitted by the
  // initial pass that is time 0, exactly what their solo run would see.
  tenant.runtime->Begin();
}

void MultiTenantEngine::OnTenantComplete(Tenant& tenant, SimTime when) {
  --active_;
  // Return the fleet slice, then re-arbitrate AS A CLOUD EVENT at the
  // completion time: the admission instant becomes part of the event
  // timeline (width- and parallelism-invariant) instead of depending on
  // where the driver's barrier boundaries happen to fall.
  if (const Status released = resources_.Release(tenant.frozen);
      !released.ok()) {
    SIMDC_LOG(kWarn, "MultiTenantEngine")
        << "release failed for " << tenant.task.spec.id.ToString() << ": "
        << released.ToString();
  }
  if (!queue_.empty()) {
    loop_.ScheduleAt(when, [this] { AdmissionPass(policy_); });
  }
}

void MultiTenantEngine::AdmissionPass(const sched::SchedulePolicy& policy) {
  ++admission_passes_;
  const SimTime now = loop_.Now();
  sched::ScheduleDecision decision = scheduler_.SchedulePassEx(queue_, policy);
  // Fair-share deadlock breaker: several queued tenants each demanding
  // more than their mutual fair share of an IDLE fleet would starve
  // forever (every pass grants each less than it needs). With nothing
  // running there is no fairness left to protect, so fall back to the
  // greedy priority pass, which admits the best-priority task that fits.
  if (policy.mode == sched::ScheduleMode::kWeightedFair &&
      decision.launched.empty() && active_ == 0 && !queue_.empty()) {
    sched::SchedulePolicy greedy = policy;
    greedy.mode = sched::ScheduleMode::kPriority;
    sched::ScheduleDecision retry = scheduler_.SchedulePassEx(queue_, greedy);
    decision.launched = std::move(retry.launched);
    for (auto& spec : retry.rejected) {
      decision.rejected.push_back(std::move(spec));
    }
  }
  for (const sched::TaskSpec& spec : decision.rejected) {
    Tenant& tenant = tenants_.at(spec.id);
    tenant.rejected = true;
  }
  // Launch in the scheduler's (priority desc, submission) order — the same
  // order their resources were frozen in, so the pass is one atomic
  // arbitration decision.
  for (const sched::TaskSpec& spec : decision.launched) {
    Tenant& tenant = tenants_.at(spec.id);
    tenant.frozen = sched::RequestFor(spec);
    Admit(tenant, now);
  }
}

void MultiTenantEngine::Drive() {
  // Dynamic lockstep — LockstepGroup generalized to N tenants with
  // changing membership (admissions add shard loops mid-run). Invariants
  // carried over: cloud plane first at each t0; shard horizons strictly
  // before the next cloud event and at most one feedback guard past t0;
  // barrier feedback can only schedule at or after the horizon (the guard
  // is the min over active tenants, so it under-promises — see below).
  std::vector<sim::EventLoop*> shard_loops;  // reused across iterations
  std::vector<std::size_t> executed;
  const SimDuration guard = global_guard_;
  for (;;) {
    // T0: globally earliest pending work — cloud events, any active
    // tenant's shard events, any buffered merge tick.
    SimTime t0 = loop_.NextEventTime();
    shard_loops.clear();
    for (auto& [id, tenant] : tenants_) {
      if (!tenant.admitted || !tenant.runtime->sharded()) continue;
      for (sim::EventLoop* shard : tenant.runtime->ShardLoops()) {
        t0 = std::min(t0, shard->NextEventTime());
        shard_loops.push_back(shard);
      }
      t0 = std::min(t0, tenant.runtime->merger()->NextTickTime());
    }
    if (t0 == sim::EventLoop::kNoEvent) break;

    // 1. Cloud plane first at T0. Unsharded tenants live entirely here;
    // admission passes and round feedback also fire here.
    loop_.RunUntil(t0);

    if (shard_loops.empty()) continue;  // re-derive membership + t0

    // 2. Horizon (LockstepGroup's rule, global min-guard): every event
    // the barrier's feedback can schedule on a shard loop sits at least
    // min-guard past the global t0 — tenant B's round opening (or first
    // round after admission) at tick.time >= t0 schedules uploads/flushes
    // at >= tick.time + compute_B >= t0 + min-guard >= horizon — so a
    // shorter guard than a tenant's own never lets feedback land behind
    // its shard clocks; it only shortens how far loops run ahead per
    // iteration.
    const SimTime cloud_next = loop_.NextEventTime();
    SimTime horizon = std::min(
        cloud_next - 1, t0 > sim::EventLoop::kNoEvent - 1 - guard
                            ? sim::EventLoop::kNoEvent - 1
                            : t0 + guard);
    horizon = std::max(horizon, t0);

    // 3. Advance every active tenant's shard loops to the shared horizon.
    // Loops touch only their own tenant's state (dispatchers write into
    // the tenant's own merger channels), so cross-tenant parallelism is
    // as safe as the intra-tenant kind.
    if (shard_loops.size() > 1 && pool_ != nullptr) {
      executed.assign(shard_loops.size(), 0);
      pool_->ParallelFor(shard_loops.size(), [&](std::size_t s) {
        executed[s] = shard_loops[s]->RunUntil(horizon);
      });
    } else {
      for (sim::EventLoop* shard : shard_loops) {
        (void)shard->RunUntil(horizon);
      }
    }

    // 4. Cross-tenant merge barrier: forward buffered ticks globally
    // earliest-first, ties in ascending task-id order, ONE tick at a time.
    // Each DrainOne mirrors the cloud clock to its tick time before
    // delivering, so every tenant's aggregator sees Now() == tick time —
    // the clock its solo run shows it — even when another tenant's later
    // tick has already been buffered. (Clock::AdvanceTo is monotone, so
    // an earlier-time tick after a later one would stall the mirror;
    // global earliest-first makes the mirror sequence non-decreasing.)
    for (;;) {
      flow::ShardMerger* best = nullptr;
      SimTime best_time = sim::EventLoop::kNoEvent;
      for (auto& [id, tenant] : tenants_) {
        if (!tenant.admitted || !tenant.runtime->sharded()) continue;
        flow::ShardMerger* merger = tenant.runtime->merger();
        const SimTime t = merger->NextTickTime();
        if (t < best_time) {  // strict less: earliest task id wins ties
          best_time = t;
          best = merger;
        }
      }
      if (best == nullptr || best_time > horizon) break;
      (void)best->DrainOne(horizon);
    }
  }
}

std::vector<TenantResult> MultiTenantEngine::Run(
    const sched::SchedulePolicy& policy) {
  SIMDC_CHECK(!running_, "MultiTenantEngine::Run is not reentrant");
  running_ = true;
  policy_ = policy;
  global_guard_ = 0;
  bool first = true;
  for (const auto& [id, tenant] : tenants_) {
    const SimDuration tenant_guard =
        std::max<SimDuration>(0, Seconds(tenant.task.fl.compute_seconds));
    global_guard_ = first ? tenant_guard : std::min(global_guard_,
                                                    tenant_guard);
    first = false;
  }
  // Initial arbitration before any event fires: contention-free tenants
  // all start round 0 at time 0, exactly like their solo runs.
  AdmissionPass(policy_);
  Drive();
  std::vector<TenantResult> results;
  results.reserve(tenants_.size());
  for (auto& [id, tenant] : tenants_) {
    TenantResult row;
    row.id = id;
    row.rejected = tenant.rejected;
    if (tenant.admitted) {
      SIMDC_CHECK(tenant.runtime->done(),
                  "MultiTenantEngine: tenant " << id.ToString()
                                               << " never completed");
      row.completed = true;
      row.result = tenant.runtime->Finalize();
      row.sla = tenant.runtime->Sla();
    } else if (tenant.rejected) {
      row.detail = "rejected by admission control";
    } else {
      row.detail = "never admitted";
    }
    results.push_back(std::move(row));
  }
  running_ = false;
  return results;
}

}  // namespace simdc::core
