// SimDC platform facade — the public entry point tying every subsystem
// together (paper Fig. 1): Task Manager (queue + greedy scheduler + task
// runner), Resource Manager, Logical Simulation (actor cluster cost
// model), Device Simulation (PhoneMgr + simulated phone cluster with ADB
// measurement), DeviceFlow, and the cloud storage / metrics database.
#pragma once

#include <memory>
#include <vector>

#include "actor/cluster.h"
#include "cloud/database.h"
#include "cloud/storage.h"
#include "common/error.h"
#include "core/fl_engine.h"
#include "core/multi_tenant.h"
#include "data/example.h"
#include "phonemgr/phone_mgr.h"
#include "sched/allocation.h"
#include "sched/resource_manager.h"
#include "sched/scheduler.h"
#include "sched/task.h"
#include "sched/task_queue.h"
#include "sim/event_loop.h"

namespace simdc::core {

struct PlatformConfig {
  /// Logical-simulation capacity in unit resource bundles (the paper's
  /// default cluster: 200 CPU cores / 300 GB ≈ 200 unit bundles).
  std::size_t logical_unit_bundles = 200;
  /// Physical cluster composition (§VI-A2 defaults).
  std::size_t local_high_phones = 4;
  std::size_t local_low_phones = 6;
  std::size_t msp_high_phones = 13;
  std::size_t msp_low_phones = 7;
  /// Worker threads for CPU-bound training (0 = hardware concurrency).
  /// This sizes the platform's shared pool; a per-experiment
  /// FlExperimentConfig::parallelism overrides it for that run.
  std::size_t worker_threads = 0;
  std::uint64_t seed = 42;
};

/// Options controlling how queued tasks execute.
struct ExecOptions {
  /// True: solve the hybrid allocation ILP; false: use fixed_logical_ratio
  /// (the paper's Type 1–5 settings).
  bool use_optimizer = true;
  double fixed_logical_ratio = 1.0;
  /// Collect benchmarking-device samples into the metrics database.
  SimDuration sample_period = Seconds(15.0);
  /// Aggregation wait between rounds seen by phones.
  double aggregation_wait_s = 10.0;
  /// Per-round communication volumes for phones.
  std::int64_t download_bytes = 16 * 1024;
  std::int64_t upload_bytes = 17 * 1024;
};

/// Outcome of one executed task.
struct TaskReport {
  TaskId id;
  bool ok = false;
  std::string detail;
  sched::AllocationResult allocation;
  SimTime started = 0;
  SimTime finished = 0;
  /// Benchmarking phones per requirement (for Table I queries).
  std::vector<std::vector<PhoneId>> benchmarking;

  double elapsed_seconds() const { return ToSeconds(finished - started); }
};

class Platform {
 public:
  explicit Platform(PlatformConfig config = {});

  /// Allocates a fresh unique task id (§III-A).
  TaskId NextTaskId() { return TaskId(next_task_id_++); }

  /// Queues a task for the scheduler.
  Status SubmitTask(sched::TaskSpec task);

  /// Runs scheduler passes and executes every queued task to completion on
  /// the virtual clock, honoring priorities and resource limits. Returns
  /// one report per executed task (submission order).
  std::vector<TaskReport> RunQueuedTasks(const ExecOptions& options = {});

  /// Runs a federated-learning experiment end-to-end (training, DeviceFlow
  /// traffic shaping, cloud aggregation) on the platform's event loop.
  /// Local training uses the platform worker pool unless
  /// `config.parallelism` pins a different width; results are identical
  /// either way (see FlExperimentConfig::parallelism). When
  /// `config.shards` > 1 the device population splits into that many
  /// fleet shards whose flow planes advance in lockstep on the same pool,
  /// merged deterministically into the one aggregator — still
  /// bit-identical to the single-fleet run (see FlExperimentConfig::shards).
  /// Payload blobs are decoded at dispatch-tick time (parallel across
  /// shards) unless `config.decode_plane` selects the legacy serial
  /// decode — bit-identical either way (FlExperimentConfig::decode_plane).
  FlRunResult RunFlExperiment(const data::FederatedDataset& dataset,
                              FlExperimentConfig config);

  /// Runs N FL tenants concurrently on the platform's shared fleet: the
  /// greedy scheduler admits them from the queue against the platform's
  /// ResourceManager under `policy` (priority or weighted-fair, plus the
  /// fleet-share admission cap), each admitted tenant runs its own
  /// TaskRuntime — per-task strategy, LinkPolicy, quorum/deadline knobs,
  /// seed — on the shared event loop and worker pool, and completions
  /// release resources and re-arbitrate. Returns per-tenant results in
  /// ascending task-id order; see core::MultiTenantEngine for the
  /// determinism contract (bit-identical per-task results at any shard
  /// width / parallelism; contention-free runs match solo runs).
  std::vector<TenantResult> RunMultiTenantExperiment(
      std::vector<TenantTask> tasks, const sched::SchedulePolicy& policy = {});

  // --- Subsystem access for experiments and tests ---
  sim::EventLoop& loop() { return loop_; }
  device::PhoneMgr& phone_mgr() { return phone_mgr_; }
  sched::ResourceManager& resources() { return resources_; }
  sched::TaskQueue& queue() { return queue_; }
  cloud::MetricsDatabase& metrics() { return metrics_; }
  cloud::BlobStore& storage() { return storage_; }
  ThreadPool& worker_pool() { return workers_; }

 private:
  struct RunningTask {
    sched::TaskSpec spec;
    sched::ResourceRequest frozen;
    TaskReport report;
    std::size_t parts_pending = 0;
  };

  void SchedulerPass(const ExecOptions& options);
  void LaunchTask(sched::TaskSpec task, const ExecOptions& options);
  void FinishPart(const std::shared_ptr<RunningTask>& running,
                  const ExecOptions& options);

  PlatformConfig config_;
  sim::EventLoop loop_;
  ThreadPool workers_;
  device::PhoneMgr phone_mgr_;
  sched::ResourceManager resources_;
  sched::TaskQueue queue_;
  sched::GreedyScheduler scheduler_;
  cloud::MetricsDatabase metrics_;
  cloud::BlobStore storage_;
  std::uint64_t next_task_id_ = 1;
  std::vector<TaskReport> finished_reports_;
};

}  // namespace simdc::core
