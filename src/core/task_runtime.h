// Per-task FL runtime: every piece of state one federated-learning task
// owns — model/aggregator wiring, round state machine, per-task
// Dispatcher/LinkPolicy instances, RNG streams, dispatch stats, durability
// plane — extracted from the historical single-task FlEngine so N of them
// can share one cloud event loop and one device fleet.
//
// A TaskRuntime does NOT drive event loops. Callers own the interleaving
// discipline: FlEngine (the single-task facade) drives one runtime with
// sim::LockstepGroup; MultiTenantEngine drives many runtimes against one
// shared cloud loop in fixed (task id, tick) order. Everything the driver
// needs — shard loops, merger, feedback guard — is exposed read-only, and
// all per-task state is private to the runtime, which is what makes
// contention-free multi-tenant runs bit-identical to solo runs.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "cloud/aggregation.h"
#include "cloud/database.h"
#include "cloud/payload_decoder.h"
#include "cloud/storage.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "data/example.h"
#include "data/sharding.h"
#include "device/behavior.h"
#include "flow/device_flow.h"
#include "flow/shard_merger.h"
#include "ml/metrics.h"
#include "ml/operators.h"
#include "persist/durable_store.h"
#include "sim/event_loop.h"

namespace simdc::core {

/// Per-round evaluation record.
struct RoundMetrics {
  std::size_t round = 0;
  SimTime time = 0;
  double test_accuracy = 0.0;
  double test_logloss = 0.0;
  double train_accuracy = 0.0;
  double train_logloss = 0.0;
  std::size_t clients = 0;
  std::size_t samples = 0;
};

struct FlRunResult {
  std::vector<RoundMetrics> rounds;
  std::size_t messages_emitted = 0;
  std::size_t messages_dropped = 0;
  /// Fault-plane accounting (all zero when the behavior model and the
  /// quorum/deadline policy are off, keeping the struct bit-identical to
  /// pre-fault-plane runs). Selected participants skipped because the
  /// behavior model reported them unavailable at round start:
  std::size_t skipped_unavailable = 0;
  /// Rounds committed at their deadline with only quorum-many updates
  /// (deadline commits), deadline extensions granted, and rounds aborted
  /// after exhausting extensions below quorum.
  std::size_t rounds_degraded = 0;
  std::size_t rounds_extended = 0;
  std::size_t rounds_aborted = 0;
  /// Final global model (dimension = dataset hash_dim).
  std::uint32_t model_dim = 0;
  std::vector<float> final_weights;
  float final_bias = 0.0f;
};

struct FlExperimentConfig {
  ml::TrainConfig train;
  /// Maximum aggregation rounds.
  std::size_t rounds = 10;
  /// When > 0, stop once virtual time passes this window (Fig. 9a's
  /// "fixed 20-minute window") even if fewer rounds completed.
  SimDuration time_window = 0;
  /// Fraction of devices executed in Logical Simulation (server operator);
  /// the rest run as Device Simulation (mobile operator). Fig. 6 Types 1–5.
  double logical_fraction = 1.0;
  /// DeviceFlow strategy for this task's traffic.
  flow::DispatchStrategy strategy = flow::RealtimeAccumulated{{1}, 0.0};
  /// Event granularity of the device→cloud message plane: kBatched is
  /// O(ticks), kPerMessage the O(messages) reference path kept for
  /// equivalence testing. Results are bit-identical across modes except
  /// when a kScheduled aggregation tick lands strictly inside a
  /// multi-message tick's capacity window (see flow::DeliveryMode); with
  /// single-message ticks (the default pass-through strategy) or
  /// kSampleThreshold triggers the two modes never diverge. Within one
  /// mode, results are always deterministic at every parallelism.
  flow::DeliveryMode delivery_mode = flow::DeliveryMode::kBatched;
  /// Payload plane of the batched delivery path (spec:
  /// [execution] decode_plane = decoded | legacy). kDecoded (default)
  /// fetches + decodes every payload blob at dispatch-tick time — on the
  /// shard workers when `shards` > 1, so decode parallelizes with the
  /// flow plane — and the serial AggregationService only admits and
  /// accumulates; kLegacy decodes inside the serial delivery handler (the
  /// reference for equivalence tests). Results, counters
  /// (decode_failures / stale_rejections) and dispatch stats are
  /// bit-identical across both planes at every shard width: decode draws
  /// no RNG and failure accounting is deferred to the serial commit
  /// point in delivery order (flow::DecodedUpdate). kPerMessage delivery
  /// always runs the legacy plane regardless of this knob. Wall-time
  /// honesty: the win needs cores — on a single-core machine a sharded
  /// decoded run pays ~25-35% over kLegacy (channel buffering plus
  /// allocator/mutex traffic from the pool-advanced decode with no
  /// parallelism to amortize it; fig8_decoded_shards_* measures this), so
  /// pin kLegacy for single-core batch farms if wall time there matters.
  flow::DecodePlane decode_plane = flow::DecodePlane::kDecoded;
  /// Aggregation plane of the decoded delivery path (spec:
  /// [execution] aggregate_plane = partial_sum | legacy). kPartialSum
  /// (default) stages admitted updates in O(1) at the serial side and
  /// accumulates them into per-lane partial FedAvg aggregators on the
  /// training pool, merged in fixed ascending-lane order — cutting the
  /// serial accumulate per round from O(msgs·dim) to O(lanes·dim).
  /// Bit-identical to kLegacy at every shard width and parallelism: the
  /// FedAvg cascade is order-invariant (ml/fedavg.h), so regrouping the
  /// sum is invisible in published models, counters and snapshots.
  /// kLegacy runs every O(dim) add inline in the delivery handler; the
  /// knob is inert on decode_plane = kLegacy, which always accumulates
  /// inline.
  cloud::AggregatePlane aggregate_plane = cloud::AggregatePlane::kPartialSum;
  /// Wire precision of device→cloud update payload blobs (spec:
  /// [execution] payload_codec = fp32 | fp16 | int8). kFp32 (default)
  /// keeps the historical format bit-for-bit, so results match the
  /// pre-codec engine exactly. kFp16 / kInt8 shrink payload bytes ~2×/~4×
  /// (BlobStore::bytes_written reflects it) at the cost of quantizing each
  /// update once on the device side; dequantization runs in the parallel
  /// decode plane. Any codec is deterministic and width-invariant — the
  /// quantize→dequantize round trip is a pure function of the update, so
  /// all shard widths see identical dequantized models.
  ml::PayloadCodec payload_codec = ml::PayloadCodec::kFp32;
  /// Bound steady-state blob memory to one round's working set: at each
  /// round start the engine deletes the previous round's update payload
  /// blobs and recycles the BlobStore arena (published global-model blobs
  /// are untouched). SharedBlob holders keep their bytes alive (arena
  /// blocks are refcounted), but a straggler message delivered after its
  /// round's reclaim finds its payload missing and is dropped as a decode
  /// failure instead of a stale rejection — identical at every shard width
  /// (in-flight sets are width-invariant), but not byte-identical to a
  /// run without reclaim when stragglers exist. This knob also selects the
  /// storage path: with reclaim on, payloads are arena-pooled
  /// (BlobStore::PutPooled) and the slabs recycle each round; with it off
  /// every payload gets its own buffer (BlobStore::Put by move — the
  /// historical pattern), since an arena that is never reclaimed only adds
  /// cold slabs. Off by default; the million-device ladder turns it on.
  bool reclaim_payload_blobs = false;
  cloud::AggregationTrigger trigger = cloud::AggregationTrigger::kScheduled;
  std::size_t sample_threshold = 1000;
  SimDuration schedule_period = Seconds(60.0);
  /// Cloud rejects updates from earlier rounds (see AggregationConfig).
  bool reject_stale = false;
  /// Device behavior model (spec: [behavior] section). Disabled by default
  /// — every device is always available with a perfect link, reproducing
  /// pre-fault-plane results exactly. When enabled, round-start participant
  /// selection skips unavailable devices (counted in
  /// FlRunResult::skipped_unavailable) and the dispatcher consults the
  /// model for mid-flight churn (availability hook) and diurnal link
  /// quality (link-probability hook). All queries are pure functions of
  /// (behavior.seed, device key, time), so the fault pattern is
  /// bit-identical at every shard width.
  device::BehaviorConfig behavior;
  /// Transient-link retry policy for every dispatcher (spec: [link]
  /// section). Inactive by default; see flow::LinkPolicy. Per-task: in a
  /// multi-tenant run each task's dispatchers carry their own policy.
  flow::LinkPolicy link;
  /// Graceful round degradation (spec: [execution] round_quorum /
  /// round_deadline_s / round_extension_s / max_round_extensions). Engages
  /// only when BOTH round_quorum > 0 and round_deadline > 0; the defaults
  /// reproduce pre-policy behavior exactly. See cloud::AggregationConfig.
  /// Per-task: each tenant's AggregationService gets its own knobs.
  std::size_t round_quorum = 0;
  SimDuration round_deadline = 0;
  SimDuration round_extension = 0;
  std::size_t max_round_extensions = 1;
  /// Message delay after round start for one device (traffic curve).
  /// Default: the device's stored response_delay_s.
  std::function<SimDuration(const data::DeviceData&, std::size_t round, Rng&)>
      delay_fn;
  /// Devices participating per round (0 = all).
  std::size_t participants_per_round = 0;
  /// Local compute latency added before a device's message leaves.
  double compute_seconds = 2.0;
  /// If an aggregation round stalls (e.g. heavy dropout under a sample
  /// threshold), force-aggregate after this much extra waiting.
  SimDuration stall_timeout = Minutes(5.0);
  /// Cap on test/train examples scored per evaluation (speed knob).
  std::size_t eval_cap = 20000;
  /// Worker threads for per-client local training within a round:
  ///   0  — inherit whatever pool the caller passed (Platform's worker
  ///        pool; sequential when constructed without one);
  ///   1  — force sequential execution in the calling thread;
  ///   N  — train with exactly N workers (the engine owns a private pool
  ///        unless the caller's pool already has N threads).
  /// Results are bit-for-bit identical for every setting: each client draws
  /// from its own seed-derived RNG stream and updates are reduced in fixed
  /// client-index order on the event loop.
  std::size_t parallelism = 0;
  /// Fleet shards (0 or 1 = the single-fleet path). N > 1 partitions the
  /// dataset's devices into N contiguous index ranges; each shard owns its
  /// own event loop and flow::Dispatcher producing per-tick MessageBatch
  /// events, advanced in lockstep (sim::LockstepGroup) and funneled into
  /// the one global AggregationService by a flow::ShardMerger in
  /// (tick time, first message id, shard) order. Because shards are
  /// contiguous ranges — so per-shard streams stay sorted by the global
  /// (wave, device) message-id order — and transmission-failure draws are
  /// message-keyed, FlRunResult,
  /// arrival stamps, drop counts and merged dispatch stats are
  /// bit-identical at every width — provided dispatch ticks carry one
  /// message (pass-through thresholds) and the strategy's
  /// capacity_per_second keeps the per-shard rate limiter disengaged
  /// (flow::kShardWidthInvariantCapacity); multi-message ticks and biting
  /// rate limits make per-shard state semantically per-fleet, which stays
  /// deterministic at a fixed width but is not width-invariant. Shard
  /// loops advance on the training pool when one is available, so the
  /// flow plane parallelizes across fleets; the merge stays single-
  /// threaded and fixed-order (the parameter-server reduction
  /// discipline). Exact-microsecond cross-plane collisions resolve
  /// cloud-plane-first, then shard order (see sim::LockstepGroup).
  std::size_t shards = 1;
  /// Durability plane (spec: [execution] durability = off | log |
  /// log+checkpoint, durability_dir = path). kOff (default) keeps the
  /// in-memory store and is bit-identical to the historical engine — no
  /// journal is attached, no I/O happens. kLog appends every BlobStore
  /// mutation to an on-disk record log, group-committed once per round
  /// boundary. kLogCheckpoint additionally writes an atomic aggregator
  /// checkpoint at each round boundary; a crashed run restored with
  /// RestoreFromRecovery() re-executes the interrupted round and finishes
  /// with bit-identical FlRunResult, counters and dispatch stats
  /// (persist::DurableStore documents the quiescent-boundary caveat).
  persist::DurabilityConfig durability;
  std::uint64_t seed = 1;
  TaskId task = TaskId(1);
};

/// Per-task SLA row: round-latency percentiles (computed through
/// simdc::Histogram) plus the fault-plane counters that feed per-tenant
/// SLO dashboards. All times are virtual (simulation) time.
struct TaskSlaReport {
  TaskId task = TaskId(0);
  std::size_t rounds = 0;
  /// Latency of one round = aggregation close time − round open t0,
  /// in seconds. Percentiles are read from a Histogram over the observed
  /// range (Histogram::ApproxPercentile), so p50/p95/p99 are exact to one
  /// bin of resolution.
  double round_latency_mean_s = 0.0;
  double round_latency_max_s = 0.0;
  double round_latency_p50_s = 0.0;
  double round_latency_p95_s = 0.0;
  double round_latency_p99_s = 0.0;
  /// Fault-plane counters (flow::DispatchStats / FlRunResult).
  std::uint64_t retries = 0;
  std::uint64_t deadline_drops = 0;
  std::uint64_t churn_losses = 0;
  std::size_t rounds_degraded = 0;
  std::size_t rounds_extended = 0;
  std::size_t rounds_aborted = 0;
  std::size_t skipped_unavailable = 0;
  std::size_t messages_emitted = 0;
  std::size_t messages_dropped = 0;
  /// Admission timeline (filled by MultiTenantEngine; zero for solo runs):
  /// submitted → admitted is the queue wait, admitted → completed the
  /// makespan.
  SimTime submitted = 0;
  SimTime admitted = 0;
  SimTime completed = 0;
  double queue_wait_s = 0.0;
  double makespan_s = 0.0;
};

class TaskRuntime {
 public:
  /// `loop` is the cloud-plane event loop (shared across tasks in a
  /// multi-tenant run). `pool` resolution follows
  /// FlExperimentConfig::parallelism.
  TaskRuntime(sim::EventLoop& loop, const data::FederatedDataset& dataset,
              FlExperimentConfig config, ThreadPool* pool = nullptr);

  // --- Lifecycle (the caller drives the loops between Begin and Finalize).
  /// Binds aggregation callbacks, arms the durability plane and starts
  /// round 0 (or the restored resume round) at the loop's current time.
  void Begin();
  /// Stamps the final model and degradation counters into the result.
  /// Call after every loop is quiescent (all of this task's events fired).
  FlRunResult Finalize();

  /// True once the task reached its terminal state (all rounds recorded or
  /// the time window expired). Leftover straggler events may still fire
  /// after this; they no longer change the result.
  bool done() const { return done_; }
  /// Fires exactly once at the terminal transition with the closing
  /// virtual time — the multi-tenant engine releases the task's frozen
  /// resources and re-runs admission here. Set before Begin().
  void set_on_complete(std::function<void(SimTime)> on_complete) {
    on_complete_ = std::move(on_complete);
  }

  /// See FlEngine::RestoreFromRecovery.
  Status RestoreFromRecovery();

  void set_metrics_database(cloud::MetricsDatabase* db) { metrics_ = db; }

  // --- Driver surface.
  bool sharded() const { return !shards_.empty(); }
  /// Shard-plane event loops (empty on the single-fleet path); stable for
  /// the runtime's lifetime.
  std::vector<sim::EventLoop*> ShardLoops();
  /// Shard merger, or nullptr on the single-fleet path.
  flow::ShardMerger* merger() { return merger_.get(); }
  const flow::ShardMerger* merger() const { return merger_.get(); }
  /// Training pool after parallelism resolution (may be nullptr).
  ThreadPool* pool() { return pool_; }
  /// Lower bound on the delay between a drained delivery and anything it
  /// schedules — the lockstep feedback guard (see sim::LockstepGroup).
  SimDuration feedback_guard() const {
    return std::max<SimDuration>(0, Seconds(config_.compute_seconds));
  }

  // --- Accessors (FlEngine's public surface delegates here).
  const FlExperimentConfig& config() const { return config_; }
  const persist::DurableStore* durable_store() const { return durable_.get(); }
  const cloud::AggregationService& aggregation() const { return *service_; }
  const flow::DeviceFlow& device_flow() const { return flow_; }
  const cloud::BlobStore& storage() const { return storage_; }
  device::BehaviorModel* behavior_model() { return behavior_.get(); }
  const device::BehaviorModel* behavior_model() const {
    return behavior_.get();
  }
  std::size_t shards() const { return sharded() ? shards_.size() : 1; }
  const data::ShardRange& shard_range(std::size_t s) const {
    return shard_ranges_.at(s);
  }
  flow::DispatchStats dispatch_stats() const;

  /// Per-task SLA row from the run so far: round-latency percentiles via
  /// Histogram::ApproxPercentile plus the fault-plane counters. The
  /// counter sums skip the batch-log merge, so this is O(rounds + shards).
  TaskSlaReport Sla() const;
  /// Admission timeline stamped into Sla() (multi-tenant bookkeeping).
  void set_queue_times(SimTime submitted, SimTime admitted) {
    submitted_at_ = submitted;
    admitted_at_ = admitted;
  }
  SimTime completed_at() const { return completed_at_; }

 private:
  /// One fleet shard: its own event loop carrying the shard's upload and
  /// dispatch events, and its own dispatcher delivering into the merger's
  /// channel. Loops are heap-allocated so Dispatcher's loop reference
  /// stays stable as the vector grows.
  struct FleetShard {
    std::unique_ptr<sim::EventLoop> loop;
    std::unique_ptr<flow::Dispatcher> dispatcher;
  };

  void StartRound(std::size_t round) { StartRoundFrom(round, loop_.Now()); }
  /// `t0` anchors the round's upload schedule. Threshold-triggered rounds
  /// pass the aggregation record time, which equals loop time in the
  /// per-message delivery path and keeps the batched path bit-identical.
  void StartRoundFrom(std::size_t round, SimTime t0);
  void RecordRound(const cloud::AggregationRecord& record,
                   const ml::LrModel& model);
  /// Quorum/deadline abort handler: records the degraded round (current
  /// model, no aggregation) and advances to the next round — the abort
  /// analogue of the stall guard's empty-round close.
  void OnRoundAborted(SimTime when);
  /// Binds the fault plane (link policy, availability and link-probability
  /// hooks) onto one dispatcher; called for every dispatcher at setup.
  void ConfigureLinkPlane(flow::Dispatcher& dispatcher);
  bool ShouldStop() const;
  /// Terminal transition: stops the aggregation service, stamps the
  /// completion time and fires on_complete_ exactly once.
  void Complete(SimTime when);
  /// Commits the pending blob-log records (one append + fsync) and, on the
  /// log+checkpoint plane, atomically publishes a checkpoint of the state
  /// a resumed run needs to re-enter at round `rounds_started_`. I/O
  /// failures are logged and the run continues (durability degrades; the
  /// simulation result is unaffected).
  void PersistRoundBoundary(const cloud::AggregationRecord& record);
  /// Dispatch stats of this process's run, before the restored-prefix
  /// merge that dispatch_stats() applies on recovered engines.
  flow::DispatchStats LocalDispatchStats() const;
  /// Books one closed round's latency (seconds since its StartRoundFrom
  /// t0) for the SLA percentiles.
  void RecordRoundLatency(SimTime closed_at);

  sim::EventLoop& loop_;
  const data::FederatedDataset& dataset_;
  FlExperimentConfig config_;
  /// Pool created when config_.parallelism asks for a width the caller's
  /// pool does not provide; pool_ then points at it.
  std::unique_ptr<ThreadPool> owned_pool_;
  ThreadPool* pool_;
  cloud::BlobStore storage_;
  /// Fetch-and-decode hook dispatchers use on the decoded payload plane
  /// (thread-safe; shared by every shard's dispatcher).
  cloud::BlobModelDecoder decoder_{storage_};
  flow::DeviceFlow flow_;
  std::unique_ptr<cloud::AggregationService> service_;
  /// Behavior model (null when config_.behavior.enabled is false). Shared
  /// by round-start participant filtering and every dispatcher's hooks;
  /// safe because all queries are const + pure after setup.
  std::unique_ptr<device::BehaviorModel> behavior_;
  /// Sharded topology (empty on the single-fleet path). merger_ is
  /// declared before shards_ so dispatchers — whose downstream_ points at
  /// the merger's channels — are destroyed before the channels they feed.
  std::vector<data::ShardRange> shard_ranges_;
  std::unique_ptr<flow::ShardMerger> merger_;
  std::vector<FleetShard> shards_;
  Rng rng_;
  FlRunResult result_;
  /// Per-participant training output for the round in flight. A member so
  /// the O(dim) payload buffers are recycled across rounds: under
  /// reclaim_payload_blobs the encode → PutPooled path does zero
  /// steady-state heap allocations per round (without reclaim the buffers
  /// move into the store and the slots reallocate, the historical cost).
  struct TrainedUpdate {
    std::vector<std::byte> bytes;
    std::size_t samples = 0;
    SimDuration delay = 0;
    DeviceId device;
  };
  std::vector<TrainedUpdate> train_scratch_;
  /// Payload blob ids created for the round in flight; tracked (and
  /// deleted at the next round start) only under reclaim_payload_blobs.
  std::vector<BlobId> round_blob_ids_;
  std::size_t rounds_started_ = 0;
  std::size_t last_recorded_round_ = 0;
  /// High-water marks of the service's degradation counters already booked
  /// into the metrics DB (RecordRound books deltas per closing round).
  std::size_t booked_deadline_commits_ = 0;
  std::size_t booked_round_extensions_ = 0;
  /// Training-set evaluation pool (capped union of device shards).
  std::vector<data::Example> train_eval_pool_;
  std::uint64_t next_message_id_ = 1;
  sim::EventHandle stall_event_ = 0;
  /// Durability plane (null when config_.durability.mode == kOff). The
  /// journal is attached to storage_ only after BeginFresh/BeginResume so
  /// recovery replay is never re-journaled.
  std::unique_ptr<persist::DurableStore> durable_;
  /// Optional metrics sink included in checkpoints (not owned).
  cloud::MetricsDatabase* metrics_ = nullptr;
  /// Dispatch stats recovered from the checkpoint; dispatch_stats()
  /// prepends them to this process's stats so a resumed run reports the
  /// same merged log as an uninterrupted one (every post-checkpoint tick
  /// stamps >= the checkpoint time, so prefix order is global order).
  flow::DispatchStats restored_stats_;
  bool has_restored_stats_ = false;
  /// Set by RestoreFromRecovery; Begin() consumes it to re-enter mid-run.
  bool resume_pending_ = false;
  std::size_t resume_round_ = 0;
  SimTime resume_t0_ = 0;
  // --- SLA bookkeeping (observes the run; never feeds back into it).
  bool done_ = false;
  std::function<void(SimTime)> on_complete_;
  SimTime current_round_t0_ = 0;
  std::vector<double> round_latencies_s_;
  SimTime submitted_at_ = 0;
  SimTime admitted_at_ = 0;
  SimTime completed_at_ = 0;
};

}  // namespace simdc::core
