#include "core/task_runtime.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "common/log.h"
#include "common/stats.h"

namespace simdc::core {

TaskRuntime::TaskRuntime(sim::EventLoop& loop,
                         const data::FederatedDataset& dataset,
                         FlExperimentConfig config, ThreadPool* pool)
    : loop_(loop),
      dataset_(dataset),
      config_(std::move(config)),
      pool_(pool),
      flow_(loop),
      rng_(Rng(config_.seed).Split("fl-engine")) {
  SIMDC_CHECK(!dataset.devices.empty(), "TaskRuntime: dataset has no devices");
  // Resolve the training parallelism knob (see FlExperimentConfig): 1
  // forces the sequential path, N > 1 guarantees exactly N workers. The
  // knob never changes results, only wall time.
  if (config_.parallelism == 1) {
    pool_ = nullptr;
  } else if (config_.parallelism > 1 &&
             (pool_ == nullptr || pool_->size() != config_.parallelism)) {
    owned_pool_ = std::make_unique<ThreadPool>(config_.parallelism);
    pool_ = owned_pool_.get();
  }
  cloud::AggregationConfig agg;
  agg.model_dim = dataset.hash_dim;
  agg.trigger = config_.trigger;
  agg.sample_threshold = config_.sample_threshold;
  agg.schedule_period = config_.schedule_period;
  agg.max_rounds = config_.rounds;
  agg.reject_stale = config_.reject_stale;
  agg.round_quorum = config_.round_quorum;
  agg.round_deadline = config_.round_deadline;
  agg.round_extension = config_.round_extension;
  agg.max_round_extensions = config_.max_round_extensions;
  agg.aggregate_plane = config_.aggregate_plane;
  service_ = std::make_unique<cloud::AggregationService>(loop_, storage_, agg);
  // The partial-sum flush borrows the training pool; with parallelism 1
  // there is no pool and the flush accumulates serially (bit-identical).
  service_->set_thread_pool(pool_);

  if (config_.behavior.enabled) {
    behavior_ = std::make_unique<device::BehaviorModel>(config_.behavior);
  }

  if (config_.durability.mode != persist::DurabilityMode::kOff) {
    // The journal is attached to storage_ later — by Begin() after
    // BeginFresh, or by RestoreFromRecovery after replay — so recovery
    // replay never re-logs itself.
    durable_ = std::make_unique<persist::DurableStore>(config_.durability);
  }

  const std::size_t width = std::clamp<std::size_t>(
      config_.shards == 0 ? 1 : config_.shards, 1, dataset.devices.size());
  if (width > 1) {
    // Sharded topology: contiguous device ranges, one event loop and one
    // dispatcher per fleet, all funneling into the global service through
    // the (tick time, message id, shard)-ordered merger.
    shard_ranges_ = data::PartitionDevices(dataset.devices.size(), width);
    merger_ = std::make_unique<flow::ShardMerger>(width, service_.get(),
                                                  &loop_);
    shards_.reserve(width);
    for (std::size_t s = 0; s < width; ++s) {
      FleetShard shard;
      shard.loop = std::make_unique<sim::EventLoop>();
      // Same seed for every shard: per-message draws (TransmissionDrop)
      // then agree across widths on each message's fate.
      shard.dispatcher = std::make_unique<flow::Dispatcher>(
          *shard.loop, config_.task, config_.strategy, &merger_->channel(s),
          config_.seed, config_.delivery_mode);
      // Split the batch-log cap across fleets so total log memory keeps
      // the single-fleet bound instead of scaling with shard count.
      shard.dispatcher->set_batch_log_cap(
          std::max<std::size_t>(1, flow::kDefaultBatchLogCap / width));
      if (config_.decode_plane == flow::DecodePlane::kDecoded) {
        shard.dispatcher->set_decoder(&decoder_);
      }
      ConfigureLinkPlane(*shard.dispatcher);
      shards_.push_back(std::move(shard));
    }
  } else {
    const Status configured =
        flow_.ConfigureTask(config_.task, config_.strategy, service_.get(),
                            config_.seed, config_.delivery_mode);
    SIMDC_CHECK(configured.ok(),
                "TaskRuntime: DeviceFlow configuration failed");
    if (config_.decode_plane == flow::DecodePlane::kDecoded) {
      flow_.FindDispatcher(config_.task)->set_decoder(&decoder_);
    }
    ConfigureLinkPlane(*flow_.FindDispatcher(config_.task));
  }

  // Build the train-evaluation pool: a deterministic, capped sample of the
  // union of device shards (Fig. 9b reports train accuracy).
  Rng pool_rng = Rng(config_.seed).Split("train-eval-pool");
  for (const auto& device : dataset_.devices) {
    for (const auto& example : device.examples) {
      if (train_eval_pool_.size() < config_.eval_cap) {
        train_eval_pool_.push_back(example);
      } else {
        // Approximate reservoir: each later example replaces a uniform
        // slot with fixed probability 1/8 (NOT the cap/seen schedule of a
        // true reservoir, so late shards are somewhat over-represented);
        // good enough for a smoothed train-metric pool, and deterministic.
        const auto j = static_cast<std::size_t>(pool_rng.UniformInt(
            0, static_cast<std::int64_t>(train_eval_pool_.size()) * 8));
        if (j < train_eval_pool_.size()) train_eval_pool_[j] = example;
      }
    }
  }
}

std::vector<sim::EventLoop*> TaskRuntime::ShardLoops() {
  std::vector<sim::EventLoop*> loops;
  loops.reserve(shards_.size());
  for (FleetShard& shard : shards_) loops.push_back(shard.loop.get());
  return loops;
}

void TaskRuntime::ConfigureLinkPlane(flow::Dispatcher& dispatcher) {
  dispatcher.set_link_policy(config_.link);
  if (behavior_ == nullptr) return;
  // Both hooks query a pure function of (seed, device key, time) on a
  // model shared across shards, so every width observes the same faults.
  device::BehaviorModel* model = behavior_.get();
  dispatcher.set_availability([model](DeviceId device, SimTime when) {
    return model->Available(device.value(), when);
  });
  if (config_.behavior.link_base_failure > 0.0 ||
      config_.behavior.link_diurnal_swing > 0.0) {
    dispatcher.set_link_probability([model](DeviceId device, SimTime when) {
      return model->LinkFailureProbability(device.value(), when);
    });
  }
}

bool TaskRuntime::ShouldStop() const {
  if (result_.rounds.size() >= config_.rounds) return true;
  if (config_.time_window > 0 && loop_.Now() >= config_.time_window) {
    return true;
  }
  return false;
}

void TaskRuntime::Complete(SimTime when) {
  service_->Stop();
  if (done_) return;
  done_ = true;
  completed_at_ = when;
  if (on_complete_) on_complete_(when);
}

void TaskRuntime::Begin() {
  service_->set_on_aggregate(
      [this](const cloud::AggregationRecord& record, const ml::LrModel& model) {
        RecordRound(record, model);
      });
  service_->set_on_round_aborted(
      [this](SimTime when) { OnRoundAborted(when); });
  if (durable_ != nullptr && !resume_pending_) {
    // Fresh durable run: wipe any previous run's log/checkpoints, then
    // attach the journal so every Put/Delete from here on is logged.
    const Status fresh = durable_->BeginFresh();
    SIMDC_CHECK(fresh.ok(),
                "TaskRuntime: durable store init failed: " << fresh.ToString());
    storage_.set_journal(durable_.get());
  }
  service_->Start();
  if (resume_pending_) {
    resume_pending_ = false;
    StartRoundFrom(resume_round_, resume_t0_);
  } else {
    StartRound(0);
  }
}

FlRunResult TaskRuntime::Finalize() {
  const ml::LrModel& model = service_->global_model();
  result_.model_dim = model.dim();
  result_.final_weights.assign(model.weights().begin(),
                               model.weights().end());
  result_.final_bias = model.bias();
  // Plain counter sums — not dispatch_stats(), whose batch-log merge
  // would copy every shard's tick log just to read one field.
  if (sharded()) {
    result_.messages_dropped = 0;
    for (const FleetShard& shard : shards_) {
      result_.messages_dropped += shard.dispatcher->stats().dropped;
    }
  } else if (const auto* dispatcher = flow_.FindDispatcher(config_.task)) {
    result_.messages_dropped = dispatcher->stats().dropped;
  }
  // A resumed run's pre-crash drops live in the checkpointed stats prefix,
  // not in this process's dispatchers.
  if (has_restored_stats_) {
    result_.messages_dropped += restored_stats_.dropped;
  }
  result_.rounds_degraded = service_->deadline_commits();
  result_.rounds_extended = service_->round_extensions();
  result_.rounds_aborted = service_->aborted_rounds();
  return result_;
}

flow::DispatchStats TaskRuntime::dispatch_stats() const {
  flow::DispatchStats current = LocalDispatchStats();
  if (!has_restored_stats_) return current;
  // Recovered engines report the checkpointed prefix followed by this
  // process's ticks. Every post-resume tick stamps at or after the
  // checkpoint time, so simple concatenation IS the global merge order.
  flow::DispatchStats merged = restored_stats_;
  merged.received += current.received;
  merged.sent += current.sent;
  merged.dropped += current.dropped;
  merged.retries += current.retries;
  merged.retry_successes += current.retry_successes;
  merged.deadline_drops += current.deadline_drops;
  merged.churn_losses += current.churn_losses;
  merged.batches_truncated += current.batches_truncated;
  merged.batches.insert(merged.batches.end(), current.batches.begin(),
                        current.batches.end());
  merged.batch_keys.insert(merged.batch_keys.end(),
                           current.batch_keys.begin(),
                           current.batch_keys.end());
  return merged;
}

flow::DispatchStats TaskRuntime::LocalDispatchStats() const {
  if (!sharded()) {
    const auto* dispatcher = flow_.FindDispatcher(config_.task);
    return dispatcher != nullptr ? dispatcher->stats() : flow::DispatchStats{};
  }
  flow::DispatchStats merged;
  std::vector<std::size_t> cursors(shards_.size(), 0);
  std::size_t remaining = 0;
  for (const FleetShard& shard : shards_) {
    const auto& stats = shard.dispatcher->stats();
    merged.received += stats.received;
    merged.sent += stats.sent;
    merged.dropped += stats.dropped;
    merged.retries += stats.retries;
    merged.retry_successes += stats.retry_successes;
    merged.deadline_drops += stats.deadline_drops;
    merged.churn_losses += stats.churn_losses;
    merged.batches_truncated += stats.batches_truncated;
    remaining += stats.batches.size();
  }
  merged.batches.reserve(remaining);
  merged.batch_keys.reserve(remaining);
  // Per-shard logs are time-sorted (appended in loop order); a strict-less
  // k-way merge interleaves them in (tick time, first message id, shard)
  // order — the same equal-timestamp key the ShardMerger uses, which is
  // the order the single-fleet dispatcher would have logged.
  while (remaining > 0) {
    std::size_t best_shard = shards_.size();
    SimTime best_time = 0;
    std::uint64_t best_key = 0;
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      const auto& stats = shards_[s].dispatcher->stats();
      if (cursors[s] >= stats.batches.size()) continue;
      const SimTime t = stats.batches[cursors[s]].first;
      const std::uint64_t key = stats.batch_keys[cursors[s]];
      if (best_shard == shards_.size() || t < best_time ||
          (t == best_time && key < best_key)) {
        best_shard = s;
        best_time = t;
        best_key = key;
      }
    }
    const auto& stats = shards_[best_shard].dispatcher->stats();
    merged.batches.push_back(stats.batches[cursors[best_shard]]);
    merged.batch_keys.push_back(stats.batch_keys[cursors[best_shard]]);
    ++cursors[best_shard];
    --remaining;
  }
  return merged;
}

void TaskRuntime::RecordRoundLatency(SimTime closed_at) {
  round_latencies_s_.push_back(
      ToSeconds(std::max<SimTime>(closed_at, current_round_t0_) -
                current_round_t0_));
}

TaskSlaReport TaskRuntime::Sla() const {
  TaskSlaReport sla;
  sla.task = config_.task;
  sla.rounds = result_.rounds.size();
  if (!round_latencies_s_.empty()) {
    RunningStats stats;
    double max_latency = 0.0;
    for (const double latency : round_latencies_s_) {
      stats.Add(latency);
      max_latency = std::max(max_latency, latency);
    }
    sla.round_latency_mean_s = stats.mean();
    sla.round_latency_max_s = max_latency;
    // Percentiles through a Histogram over the observed range. A fixed
    // 256-bin resolution bounds the interpolation error at 1/256 of the
    // span even when only a handful of rounds closed (fewer bins than
    // samples would smear a lone latency toward the range's midpoint).
    Histogram hist(0.0, std::max(max_latency, 1e-9), 256);
    for (const double latency : round_latencies_s_) hist.Add(latency);
    sla.round_latency_p50_s = hist.ApproxPercentile(0.50);
    sla.round_latency_p95_s = hist.ApproxPercentile(0.95);
    sla.round_latency_p99_s = hist.ApproxPercentile(0.99);
  }
  // Counter-only stat sums (same shape as Finalize's drop sum — the
  // batch-log merge is deliberately skipped).
  flow::DispatchStats counters;
  if (sharded()) {
    for (const FleetShard& shard : shards_) {
      const auto& stats = shard.dispatcher->stats();
      counters.retries += stats.retries;
      counters.deadline_drops += stats.deadline_drops;
      counters.churn_losses += stats.churn_losses;
      counters.dropped += stats.dropped;
    }
  } else if (const auto* dispatcher = flow_.FindDispatcher(config_.task)) {
    counters = dispatcher->stats();
  }
  if (has_restored_stats_) {
    counters.retries += restored_stats_.retries;
    counters.deadline_drops += restored_stats_.deadline_drops;
    counters.churn_losses += restored_stats_.churn_losses;
    counters.dropped += restored_stats_.dropped;
  }
  sla.retries = counters.retries;
  sla.deadline_drops = counters.deadline_drops;
  sla.churn_losses = counters.churn_losses;
  sla.rounds_degraded = service_->deadline_commits();
  sla.rounds_extended = service_->round_extensions();
  sla.rounds_aborted = service_->aborted_rounds();
  sla.skipped_unavailable = result_.skipped_unavailable;
  sla.messages_emitted = result_.messages_emitted;
  sla.messages_dropped = counters.dropped;
  sla.submitted = submitted_at_;
  sla.admitted = admitted_at_;
  sla.completed = completed_at_;
  sla.queue_wait_s = ToSeconds(std::max<SimTime>(admitted_at_, submitted_at_) -
                               submitted_at_);
  sla.makespan_s = ToSeconds(std::max<SimTime>(completed_at_, admitted_at_) -
                             admitted_at_);
  return sla;
}

void TaskRuntime::StartRoundFrom(std::size_t round, SimTime t0) {
  if (ShouldStop()) {
    Complete(t0);
    return;
  }
  ++rounds_started_;
  current_round_t0_ = t0;
  // Reclaim the previous round's payload blobs before emitting this
  // round's: bounds blob memory to one round's working set. Stragglers
  // still in flight lose their payloads (see FlExperimentConfig).
  if (config_.reclaim_payload_blobs && !round_blob_ids_.empty()) {
    for (const BlobId id : round_blob_ids_) {
      if (const Status deleted = storage_.Delete(id); !deleted.ok()) {
        // The engine only reclaims ids it put itself, so a failure means
        // the id bookkeeping drifted; say so instead of leaking silently.
        SIMDC_LOG(kWarn, "TaskRuntime")
            << "payload blob reclaim failed for id " << id.value() << ": "
            << deleted.ToString();
      }
    }
    round_blob_ids_.clear();
    (void)storage_.ReclaimArena();
  }
  if (sharded()) {
    // Round-start runs as a shard-loop EVENT, not synchronously: called
    // directly, the pump for leftover shelf messages (multi-message
    // thresholds) would read a shard clock that can sit BEHIND t0 and
    // stamp arrivals before the aggregation that opened the round.
    // ScheduleAt clamps to the shard clock, so the pump fires at
    // max(t0, shard clock): exactly t0 when the round opens from the
    // cloud plane (scheduled triggers — shards have not reached t0 yet),
    // and at most one feedback guard past t0 when it opens mid-drain
    // (shards already advanced to the barrier horizon). Stamps are thus
    // always >= t0; the residual lag is only observable outside the
    // width-invariance regime (pass-through strategies keep the shelf
    // empty, making the pump a no-op).
    for (FleetShard& shard : shards_) {
      flow::Dispatcher* dispatcher = shard.dispatcher.get();
      shard.loop->ScheduleAt(t0, [dispatcher, round] {
        dispatcher->OnRoundStart(round);
      });
    }
  } else {
    (void)flow_.OnRoundStart(config_.task, round);
  }

  // Open the round for the quorum/deadline policy (no-op when disabled).
  service_->OnRoundOpened(t0);

  // Pick participants.
  std::vector<std::size_t> participants;
  const std::size_t n = dataset_.devices.size();
  if (config_.participants_per_round == 0 ||
      config_.participants_per_round >= n) {
    participants.resize(n);
    for (std::size_t i = 0; i < n; ++i) participants[i] = i;
  } else {
    Rng round_rng = Rng(config_.seed).Split(round * 2654435761ULL + 17);
    participants = round_rng.SampleWithoutReplacement(
        n, config_.participants_per_round);
    std::sort(participants.begin(), participants.end());
  }

  // Behavior gate: unavailable devices (churned out, diurnal trough, low
  // battery, trace-offline) sit this round out. The selection above is
  // unchanged, so enabling the model never re-rolls WHO would have been
  // picked — it only subtracts the unavailable.
  if (behavior_ != nullptr) {
    std::size_t kept = 0;
    for (const std::size_t index : participants) {
      if (behavior_->Available(dataset_.devices[index].device.value(), t0)) {
        participants[kept++] = index;
      } else {
        ++result_.skipped_unavailable;
      }
    }
    participants.resize(kept);
  }

  // Train every participant from the current global model. Work is
  // CPU-parallel but deterministic: each device's result depends only on
  // (global model, shard, seeds), never on execution order.
  const ml::LrModel& global = service_->global_model();
  const auto logical_cut = static_cast<std::size_t>(
      config_.logical_fraction * static_cast<double>(n) + 0.5);
  // Member scratch: the per-slot payload buffers persist across rounds, so
  // steady-state rounds reuse them instead of reallocating O(dim) each.
  std::vector<TrainedUpdate>& results = train_scratch_;
  results.resize(participants.size());

  auto train_one = [&, this](std::size_t slot) {
    const std::size_t device_index = participants[slot];
    const auto& shard = dataset_.devices[device_index];
    ml::LrModel local = global;
    // §VI-B2: logical simulation uses the PyMNN-like server kernel, device
    // simulation the MNN-like mobile kernel.
    const ml::OperatorVenue venue = device_index < logical_cut
                                        ? ml::OperatorVenue::kServer
                                        : ml::OperatorVenue::kMobile;
    const auto op = ml::MakeLrOperator(venue);
    ml::TrainConfig train = config_.train;
    train.shuffle_seed =
        SplitMix64(config_.seed ^ (device_index * 1000003ULL + round));
    op->Train(local, shard.examples, train);

    TrainedUpdate& out = results[slot];
    out.bytes.resize(local.EncodedSize(config_.payload_codec));
    local.EncodeTo(out.bytes, config_.payload_codec);
    out.samples = shard.examples.size();
    out.device = shard.device;
    Rng delay_rng = Rng(config_.seed).Split(device_index ^ (round << 20));
    const SimDuration extra =
        config_.delay_fn
            ? config_.delay_fn(shard, round, delay_rng)
            : Seconds(shard.response_delay_s);
    out.delay = Seconds(config_.compute_seconds) + std::max<SimDuration>(0, extra);
  };

  if (pool_ != nullptr) {
    pool_->ParallelFor(participants.size(),
                       [&](std::size_t slot) { train_one(slot); });
  } else {
    for (std::size_t slot = 0; slot < participants.size(); ++slot) {
      train_one(slot);
    }
  }

  // Emit upload events: blob to storage + message into the flow plane at
  // the device's response time. Messages carry the *aggregation* round
  // they were trained against (what a staleness-filtering cloud checks),
  // which can lag the engine's round index when a round closed empty.
  // Message ids, blob ids and emit accounting are all assigned here, in
  // slot (device-index) order, so the fired closures touch only their own
  // shard's state — the property that lets shard loops advance on pool
  // threads without locks.
  const std::size_t aggregation_round = service_->rounds_completed();
  SimDuration max_delay = 0;
  std::vector<sim::TimedEvent> uploads;
  uploads.reserve(participants.size());
  // Sharded: per-shard event lists; participants are sorted by device
  // index and shards are contiguous ranges, so each shard's list keeps
  // global slot order and the (time, shard, FIFO) merge reproduces the
  // single-loop FIFO tie-breaks.
  std::vector<std::vector<sim::TimedEvent>> shard_uploads(shards_.size());
  for (std::size_t slot = 0; slot < participants.size(); ++slot) {
    TrainedUpdate& trained = results[slot];
    max_delay = std::max(max_delay, trained.delay);
    const SimTime when = t0 + trained.delay;
    flow::Message message;
    message.id = MessageId(next_message_id_++);
    message.task = config_.task;
    message.device = trained.device;
    message.round = aggregation_round;
    message.payload_bytes = static_cast<std::int64_t>(trained.bytes.size());
    if (config_.reclaim_payload_blobs) {
      // Pooled put: the payload is copied into the store's arena, leaving
      // the scratch buffer in place for the next round's encode. Round-
      // boundary reclamation recycles the slabs, so steady-state rounds
      // touch the allocator O(1) times. Pooling is only a win WITH
      // reclamation — without it the arena would grow one cold slab per
      // ~16 payloads with no reuse, paying fresh-page faults the
      // hand-over-by-move path below never incurs.
      message.payload = storage_.PutPooled(trained.bytes);
      round_blob_ids_.push_back(message.payload);
    } else {
      // Keep-everything mode: hand the encode buffer to the store whole
      // (the historical allocation pattern). The scratch slot reallocates
      // next round, but nothing is copied.
      message.payload = storage_.Put(std::move(trained.bytes));
    }
    message.sample_count = trained.samples;
    message.created = when;  // == loop time when the upload event fires
    ++result_.messages_emitted;
    if (sharded()) {
      const std::size_t s = data::ShardOf(
          participants[slot], dataset_.devices.size(), shards_.size());
      flow::Dispatcher* dispatcher = shards_[s].dispatcher.get();
      shard_uploads[s].push_back(
          {when, [dispatcher, message = std::move(message)]() mutable {
             dispatcher->OnMessage(std::move(message));
           }});
    } else {
      uploads.push_back(
          {when, [this, message = std::move(message)]() mutable {
             (void)flow_.OnMessage(std::move(message));
           }});
    }
  }
  // One heap rebuild per loop for the round's uploads (O(N + H), same
  // FIFO tie-breaks as scheduling them one by one).
  (void)loop_.ScheduleBulk(std::move(uploads));
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    (void)shards_[s].loop->ScheduleBulk(std::move(shard_uploads[s]));
  }

  // Device-side round completion → rule-based strategies fire. The global
  // round end (max delay over ALL shards) flushes every shard, exactly
  // when the single-fleet dispatcher would flush.
  const SimTime round_end = t0 + max_delay;
  if (sharded()) {
    for (FleetShard& shard : shards_) {
      flow::Dispatcher* dispatcher = shard.dispatcher.get();
      shard.loop->ScheduleAt(round_end, [dispatcher, round] {
        dispatcher->OnRoundEnd(round);
      });
    }
  } else {
    loop_.ScheduleAt(round_end, [this, round] {
      (void)flow_.OnRoundEnd(config_.task, round);
    });
  }

  // Stall guard: if the trigger never fires (heavy dropout under a sample
  // threshold), force-aggregate; with nothing pending, close an empty
  // round so the experiment still advances.
  stall_event_ = loop_.ScheduleAt(
      round_end + config_.stall_timeout, [this, round] {
        stall_event_ = 0;
        if (last_recorded_round_ > round) return;  // already closed
        if (!service_->AggregateNow()) {
          RoundMetrics metrics;
          metrics.round = result_.rounds.size() + 1;
          metrics.time = loop_.Now();
          const auto eval_test = ml::Evaluate(
              service_->global_model(),
              std::span(dataset_.test_set.data(),
                        std::min(dataset_.test_set.size(), config_.eval_cap)));
          metrics.test_accuracy = eval_test.accuracy;
          metrics.test_logloss = eval_test.logloss;
          result_.rounds.push_back(metrics);
          last_recorded_round_ = round + 1;
          RecordRoundLatency(metrics.time);
          StartRound(round + 1);
        }
      });

  // Group-commit the round's durable mutations (payload puts, reclaim
  // deletes) as one append + fsync. I/O failures degrade durability, never
  // the simulation: the records stay buffered (or, past a failed fsync,
  // un-synced in the file) and the run continues.
  if (durable_ != nullptr) {
    if (const Status committed = durable_->CommitLog(); !committed.ok()) {
      SIMDC_LOG(kWarn, "TaskRuntime")
          << "durable log commit failed: " << committed.ToString();
    }
  }
}

void TaskRuntime::OnRoundAborted(SimTime when) {
  if (stall_event_ != 0) {
    loop_.Cancel(stall_event_);
    stall_event_ = 0;
  }
  // The abort analogue of the stall guard's empty-round close: the global
  // model did not move, but the round still books an evaluation row so the
  // accuracy curve shows the hole where the aborted round would have been.
  RoundMetrics metrics;
  metrics.round = result_.rounds.size() + 1;
  metrics.time = when;
  const auto eval_test = ml::Evaluate(
      service_->global_model(),
      std::span(dataset_.test_set.data(),
                std::min(dataset_.test_set.size(), config_.eval_cap)));
  metrics.test_accuracy = eval_test.accuracy;
  metrics.test_logloss = eval_test.logloss;
  result_.rounds.push_back(metrics);
  last_recorded_round_ = rounds_started_;
  RecordRoundLatency(when);
  if (metrics_ != nullptr) {
    metrics_->RecordScalar("fl/round_aborted", when, 1.0);
  }
  StartRoundFrom(rounds_started_, std::max(loop_.Now(), when));
}

void TaskRuntime::RecordRound(const cloud::AggregationRecord& record,
                              const ml::LrModel& model) {
  if (stall_event_ != 0) {
    loop_.Cancel(stall_event_);
    stall_event_ = 0;
  }
  RoundMetrics metrics;
  metrics.round = record.round;
  metrics.time = record.time;
  metrics.clients = record.clients;
  metrics.samples = record.samples;
  const auto test_span =
      std::span(dataset_.test_set.data(),
                std::min(dataset_.test_set.size(), config_.eval_cap));
  const auto test = ml::Evaluate(model, test_span);
  metrics.test_accuracy = test.accuracy;
  metrics.test_logloss = test.logloss;
  const auto train = ml::Evaluate(model, train_eval_pool_);
  metrics.train_accuracy = train.accuracy;
  metrics.train_logloss = train.logloss;
  result_.rounds.push_back(metrics);
  last_recorded_round_ = rounds_started_;
  RecordRoundLatency(record.time);
  // Degradation accounting: a round that closed as a deadline commit (or
  // after extensions) books a row per event, keyed to the round's time, so
  // the metrics DB carries the same degradation curve the run result does.
  if (metrics_ != nullptr) {
    if (service_->deadline_commits() > booked_deadline_commits_) {
      booked_deadline_commits_ = service_->deadline_commits();
      metrics_->RecordScalar("fl/round_degraded", record.time,
                             static_cast<double>(record.clients));
    }
    if (service_->round_extensions() > booked_round_extensions_) {
      metrics_->RecordScalar(
          "fl/round_extensions", record.time,
          static_cast<double>(service_->round_extensions() -
                              booked_round_extensions_));
      booked_round_extensions_ = service_->round_extensions();
    }
  }
  PersistRoundBoundary(record);

  if (!ShouldStop()) {
    // Anchor at the aggregation's wire time: equal to Now() when rounds
    // close inside per-message delivery events, and ahead of Now() when
    // they close inside a batched tick.
    StartRoundFrom(rounds_started_, std::max(loop_.Now(), record.time));
  } else {
    Complete(record.time);
  }
}

void TaskRuntime::PersistRoundBoundary(const cloud::AggregationRecord& record) {
  if (durable_ == nullptr) return;
  // Commit first so the checkpoint's log offset covers everything the
  // snapshot references — most importantly the global-model blob this
  // aggregation just published.
  if (const Status committed = durable_->CommitLog(); !committed.ok()) {
    SIMDC_LOG(kWarn, "TaskRuntime")
        << "durable log commit failed: " << committed.ToString();
  }
  if (config_.durability.mode != persist::DurabilityMode::kLogCheckpoint) {
    return;
  }
  persist::CheckpointState state;
  state.time = record.time;
  // The same anchor RecordRound passes to StartRoundFrom: a resumed engine
  // re-enters the next round at exactly the t0 the uninterrupted run used.
  state.resume_t0 = std::max(loop_.Now(), record.time);
  state.next_round = rounds_started_;
  state.next_message_id = next_message_id_;
  state.next_blob_id = storage_.next_id();
  state.rounds_started = rounds_started_;
  state.last_recorded_round = last_recorded_round_;
  state.messages_emitted = result_.messages_emitted;
  state.storage_bytes_written = storage_.bytes_written();
  state.storage_bytes_read = storage_.bytes_read();
  state.pending_delete_blobs.reserve(round_blob_ids_.size());
  for (const BlobId id : round_blob_ids_) {
    state.pending_delete_blobs.push_back(id.value());
  }
  state.aggregation = service_->Snapshot();
  state.rounds.reserve(result_.rounds.size());
  for (const RoundMetrics& m : result_.rounds) {
    persist::CheckpointRound row;
    row.round = m.round;
    row.time = m.time;
    row.test_accuracy = m.test_accuracy;
    row.test_logloss = m.test_logloss;
    row.train_accuracy = m.train_accuracy;
    row.train_logloss = m.train_logloss;
    row.clients = m.clients;
    row.samples = m.samples;
    state.rounds.push_back(row);
  }
  state.dispatch = dispatch_stats();
  if (metrics_ != nullptr) {
    (void)metrics_->Flush();
    state.scalars = metrics_->ScalarRows();
    state.perf_samples = metrics_->Samples();
  }
  // No messages in flight <=> everything emitted was delivered or dropped.
  // Bit-identical resume is only guaranteed from quiescent boundaries; the
  // flag rides in the checkpoint so recovery can assert it.
  state.quiescent = result_.messages_emitted ==
                    service_->messages_received() + state.dispatch.dropped;
  if (const Status wrote = durable_->WriteCheckpoint(std::move(state));
      !wrote.ok()) {
    SIMDC_LOG(kWarn, "TaskRuntime")
        << "checkpoint write failed: " << wrote.ToString();
  }
}

Status TaskRuntime::RestoreFromRecovery() {
  SIMDC_CHECK(durable_ != nullptr &&
                  config_.durability.mode ==
                      persist::DurabilityMode::kLogCheckpoint,
              "TaskRuntime::RestoreFromRecovery requires durability = "
              "log+checkpoint");
  SIMDC_CHECK(rounds_started_ == 0 && result_.rounds.empty(),
              "TaskRuntime::RestoreFromRecovery: engine already ran");
  auto recovered = durable_->BeginResume(storage_);
  if (!recovered.ok()) return recovered.error();
  if (!recovered->has_checkpoint) {
    return NotFound("no checkpoint in '" + config_.durability.dir +
                    "'; run fresh instead");
  }
  const persist::CheckpointState& cp = recovered->checkpoint;

  next_message_id_ = cp.next_message_id;
  rounds_started_ = static_cast<std::size_t>(cp.rounds_started);
  last_recorded_round_ = static_cast<std::size_t>(cp.last_recorded_round);
  result_.messages_emitted = static_cast<std::size_t>(cp.messages_emitted);
  result_.rounds.clear();
  result_.rounds.reserve(cp.rounds.size());
  for (const persist::CheckpointRound& row : cp.rounds) {
    RoundMetrics m;
    m.round = static_cast<std::size_t>(row.round);
    m.time = row.time;
    m.test_accuracy = row.test_accuracy;
    m.test_logloss = row.test_logloss;
    m.train_accuracy = row.train_accuracy;
    m.train_logloss = row.train_logloss;
    m.clients = static_cast<std::size_t>(row.clients);
    m.samples = static_cast<std::size_t>(row.samples);
    result_.rounds.push_back(m);
  }
  round_blob_ids_.clear();
  round_blob_ids_.reserve(cp.pending_delete_blobs.size());
  for (const std::uint64_t id : cp.pending_delete_blobs) {
    round_blob_ids_.push_back(BlobId(id));
  }
  service_->RestoreSnapshot(cp.aggregation);
  restored_stats_ = cp.dispatch;
  has_restored_stats_ = true;
  if (metrics_ != nullptr) {
    metrics_->Restore(cp.perf_samples, cp.scalars);
  }
  // Re-anchor every loop at the checkpoint's virtual time before anything
  // is scheduled, so ScheduleAt clamping and FIFO tie-breaks behave as
  // they did in the original run.
  loop_.FastForwardTo(cp.resume_t0);
  for (FleetShard& shard : shards_) {
    shard.loop->FastForwardTo(cp.resume_t0);
  }
  resume_round_ = static_cast<std::size_t>(cp.next_round);
  resume_t0_ = cp.resume_t0;
  resume_pending_ = true;
  // Journal attaches only now: the log replay above must not re-log.
  storage_.set_journal(durable_.get());
  return Status::Ok();
}

}  // namespace simdc::core
