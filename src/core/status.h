// Textual platform monitoring — the headless stand-in for the paper's GUI
// (§III-C: "users can monitor various computational metrics, edge device
// performance, and updates to cloud services throughout the task execution
// process via the GUI").
#pragma once

#include <string>

#include "core/platform.h"

namespace simdc::core {

/// Renders a point-in-time dashboard of the platform: virtual clock, task
/// queue, resource pool, phone cluster occupancy and metrics-database
/// volume. Suitable for printing to a terminal or a log each tick.
std::string RenderStatus(Platform& platform);

/// One-line summary (for periodic log lines).
std::string RenderStatusLine(Platform& platform);

}  // namespace simdc::core
