#include "actor/cluster.h"

#include <algorithm>
#include <thread>

#include "common/log.h"

namespace simdc::actor {

Actor::Actor(ActorId id, NodeId node, ResourceBundle resources,
             ThreadPool& pool)
    : id_(id), node_(node), resources_(resources), pool_(pool) {}

std::future<void> Actor::Submit(std::function<void()> fn) {
  std::packaged_task<void()> task(std::move(fn));
  auto future = task.get_future();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    mailbox_.push_back(std::move(task));
  }
  MaybeStartDrain();
  return future;
}

void Actor::MaybeStartDrain() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (draining_ || mailbox_.empty()) return;
    draining_ = true;
  }
  // Drain the whole mailbox in one pool job; tasks submitted while draining
  // are picked up by the same loop, preserving per-actor FIFO order.
  pool_.Submit([this] {
    for (;;) {
      std::packaged_task<void()> task;
      {
        std::lock_guard<std::mutex> lock(mutex_);
        if (mailbox_.empty()) {
          draining_ = false;
          idle_cv_.notify_all();
          return;
        }
        task = std::move(mailbox_.front());
        mailbox_.pop_front();
      }
      task();
      {
        std::lock_guard<std::mutex> lock(mutex_);
        ++executed_;
      }
    }
  });
}

void Actor::Drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_cv_.wait(lock, [this] { return mailbox_.empty() && !draining_; });
}

std::size_t Actor::tasks_executed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return executed_;
}

Cluster::Cluster(std::size_t num_nodes, ResourceBundle per_node,
                 std::size_t worker_threads)
    : pool_(worker_threads != 0 ? worker_threads
                                : std::max(2u, std::thread::hardware_concurrency())) {
  SIMDC_CHECK(num_nodes > 0, "cluster needs at least one node");
  nodes_.reserve(num_nodes);
  for (std::size_t i = 0; i < num_nodes; ++i) {
    nodes_.push_back(std::make_unique<ResourcePool>(per_node));
  }
}

Result<PlacementGroup> Cluster::CreatePlacementGroup(
    const std::vector<ResourceBundle>& bundles, PlacementStrategy strategy) {
  if (bundles.empty()) {
    return InvalidArgument("placement group needs at least one bundle");
  }
  std::lock_guard<std::mutex> lock(mutex_);
  PlacementGroup group;
  group.id = next_group_id_++;
  group.allocations.reserve(bundles.size());

  std::size_t cursor = 0;  // node index for SPREAD round-robin
  for (const auto& bundle : bundles) {
    bool placed = false;
    for (std::size_t attempt = 0; attempt < nodes_.size(); ++attempt) {
      const std::size_t idx =
          strategy == PlacementStrategy::kSpread
              ? (cursor + attempt) % nodes_.size()
              : attempt;  // PACK always starts from node 0
      if (nodes_[idx]->Freeze(bundle).ok()) {
        group.allocations.push_back(
            BundleAllocation{NodeId(idx), bundle});
        if (strategy == PlacementStrategy::kSpread) {
          cursor = (idx + 1) % nodes_.size();
        }
        placed = true;
        break;
      }
    }
    if (!placed) {
      // Roll back everything reserved so far (all-or-nothing).
      for (const auto& alloc : group.allocations) {
        (void)nodes_[alloc.node.value()]->Release(alloc.bundle);
      }
      return ResourceExhausted("cannot place bundle " + bundle.ToString() +
                               " on any node");
    }
  }
  return group;
}

Status Cluster::RemovePlacementGroup(const PlacementGroup& group) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (std::find(removed_groups_.begin(), removed_groups_.end(), group.id) !=
      removed_groups_.end()) {
    return Status::Ok();  // idempotent
  }
  for (const auto& alloc : group.allocations) {
    const Status released = nodes_[alloc.node.value()]->Release(alloc.bundle);
    if (!released.ok()) {
      SIMDC_LOG(kWarn, "Cluster")
          << "release mismatch for group " << group.id << ": "
          << released.ToString();
    }
  }
  removed_groups_.push_back(group.id);
  return Status::Ok();
}

std::unique_ptr<Actor> Cluster::CreateActor(
    const BundleAllocation& allocation) {
  std::lock_guard<std::mutex> lock(mutex_);
  return std::make_unique<Actor>(ActorId(next_actor_id_++), allocation.node,
                                 allocation.bundle, pool_);
}

ResourceBundle Cluster::TotalCapacity() const {
  ResourceBundle total;
  for (const auto& node : nodes_) total += node->capacity();
  return total;
}

ResourceBundle Cluster::TotalAvailable() const {
  ResourceBundle total;
  for (const auto& node : nodes_) total += node->available();
  return total;
}

}  // namespace simdc::actor
