#include "actor/ray_runner.h"

#include <memory>

#include "common/log.h"

namespace simdc::actor {

Result<JobResult> RayRunner::SubmitJob(const JobSpec& spec) {
  if (spec.num_devices == 0) {
    return InvalidArgument("job '" + spec.label + "': num_devices == 0");
  }
  if (spec.num_actors == 0) {
    return InvalidArgument("job '" + spec.label + "': num_actors == 0");
  }
  if (!spec.device_fn) {
    return InvalidArgument("job '" + spec.label + "': missing device_fn");
  }

  // Reserve the placement group (all-or-nothing).
  std::vector<ResourceBundle> bundles(spec.num_actors, spec.per_actor);
  auto group = cluster_.CreatePlacementGroup(bundles, spec.strategy);
  if (!group.ok()) return group.error();

  // Launch one actor per bundle.
  std::vector<std::unique_ptr<Actor>> actors;
  actors.reserve(spec.num_actors);
  for (const auto& alloc : group->allocations) {
    actors.push_back(cluster_.CreateActor(alloc));
  }

  // Per-actor setup ("data download and distribution").
  if (spec.actor_setup) {
    for (std::size_t a = 0; a < actors.size(); ++a) {
      actors[a]->Submit([&setup = spec.actor_setup, a] { setup(a); });
    }
  }

  // Round-robin device distribution: actor a simulates devices
  // a, a + A, a + 2A, ... sequentially (paper §IV-A).
  JobResult result;
  result.devices_per_actor.assign(actors.size(), 0);
  for (std::size_t d = 0; d < spec.num_devices; ++d) {
    const std::size_t a = d % actors.size();
    actors[a]->Submit([&fn = spec.device_fn, d] { fn(d); });
    ++result.devices_per_actor[a];
  }

  for (auto& a : actors) a->Drain();

  result.devices_run = spec.num_devices;
  result.actors_used = actors.size();

  const Status removed = cluster_.RemovePlacementGroup(*group);
  if (!removed.ok()) {
    SIMDC_LOG(kWarn, "RayRunner") << "placement group release failed: "
                                  << removed.ToString();
  }
  return result;
}

}  // namespace simdc::actor
