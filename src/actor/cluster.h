// Worker cluster with placement groups — the logical-simulation substrate.
//
// The paper deploys Ray clusters on Kubernetes nodes and uses Ray's job
// submission to "directly launch placement groups of actors on worker
// nodes, with each actor sequentially simulating multiple devices"
// (§IV-A). This module reimplements exactly those semantics in-process:
// nodes with per-node resource pools, placement groups allocated with PACK
// or SPREAD strategies, and actors whose mailboxes serialize execution.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <vector>

#include "actor/resource.h"
#include "common/error.h"
#include "common/ids.h"
#include "common/thread_pool.h"

namespace simdc::actor {

/// Placement strategy for a group's bundles across nodes.
enum class PlacementStrategy {
  kPack,    // fill one node before moving to the next
  kSpread,  // round-robin across nodes
};

/// One bundle of a placement group pinned to a node.
struct BundleAllocation {
  NodeId node;
  ResourceBundle bundle;
};

/// A reserved set of bundles across the cluster. Returned by
/// Cluster::CreatePlacementGroup; release with RemovePlacementGroup.
struct PlacementGroup {
  std::uint64_t id = 0;
  std::vector<BundleAllocation> allocations;
};

/// An actor executes submitted closures strictly in submission order
/// ("sequentially simulating multiple devices"), while distinct actors run
/// concurrently on the cluster's worker threads.
class Actor {
 public:
  Actor(ActorId id, NodeId node, ResourceBundle resources, ThreadPool& pool);

  Actor(const Actor&) = delete;
  Actor& operator=(const Actor&) = delete;

  /// Enqueues work on this actor's mailbox.
  std::future<void> Submit(std::function<void()> fn);

  /// Blocks until every task submitted so far has finished.
  void Drain();

  ActorId id() const { return id_; }
  NodeId node() const { return node_; }
  const ResourceBundle& resources() const { return resources_; }
  std::size_t tasks_executed() const;

 private:
  void MaybeStartDrain();

  ActorId id_;
  NodeId node_;
  ResourceBundle resources_;
  ThreadPool& pool_;

  mutable std::mutex mutex_;
  std::deque<std::packaged_task<void()>> mailbox_;
  bool draining_ = false;
  std::size_t executed_ = 0;
  std::condition_variable idle_cv_;
};

/// A cluster of worker nodes backed by one shared thread pool.
class Cluster {
 public:
  /// `num_nodes` nodes, each with `per_node` capacity; computation runs on
  /// `worker_threads` OS threads (defaults to hardware concurrency).
  Cluster(std::size_t num_nodes, ResourceBundle per_node,
          std::size_t worker_threads = 0);

  /// Reserves one bundle per entry of `bundles`. All-or-nothing.
  Result<PlacementGroup> CreatePlacementGroup(
      const std::vector<ResourceBundle>& bundles,
      PlacementStrategy strategy = PlacementStrategy::kPack);

  /// Releases a group's resources. Idempotent per group id.
  Status RemovePlacementGroup(const PlacementGroup& group);

  /// Creates an actor bound to an allocation of a placement group.
  std::unique_ptr<Actor> CreateActor(const BundleAllocation& allocation);

  std::size_t num_nodes() const { return nodes_.size(); }
  ResourceBundle TotalCapacity() const;
  ResourceBundle TotalAvailable() const;
  ResourcePool& node_pool(std::size_t index) { return *nodes_.at(index); }
  ThreadPool& thread_pool() { return pool_; }

 private:
  std::vector<std::unique_ptr<ResourcePool>> nodes_;
  ThreadPool pool_;
  std::mutex mutex_;
  std::uint64_t next_group_id_ = 1;
  std::uint64_t next_actor_id_ = 1;
  std::vector<std::uint64_t> removed_groups_;
};

}  // namespace simdc::actor
