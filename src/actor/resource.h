// Resource bundles and pools.
//
// The paper (§IV-A, §IV-B) defines a "unit resource bundle" — e.g.
// {CPU: 1 core, memory: 1 GB} — as the quantum of logical-simulation
// capacity; a simulated High-grade device needs k such units (k=8 in the
// paper's example, 4 cores + 12 GB in the experiments). The Resource
// Manager queries, freezes and releases these bundles.
#pragma once

#include <cstddef>
#include <mutex>
#include <string>

#include "common/error.h"

namespace simdc::actor {

/// A bag of resources. All fields are non-negative.
struct ResourceBundle {
  double cpu_cores = 0.0;
  double memory_gb = 0.0;
  double gpu = 0.0;

  constexpr ResourceBundle() = default;
  constexpr ResourceBundle(double cpu, double mem, double gpu_units = 0.0)
      : cpu_cores(cpu), memory_gb(mem), gpu(gpu_units) {}

  /// True when every component of `other` fits within this bundle.
  constexpr bool Contains(const ResourceBundle& other) const {
    return cpu_cores >= other.cpu_cores && memory_gb >= other.memory_gb &&
           gpu >= other.gpu;
  }

  constexpr bool IsZero() const {
    return cpu_cores == 0.0 && memory_gb == 0.0 && gpu == 0.0;
  }

  ResourceBundle& operator+=(const ResourceBundle& other) {
    cpu_cores += other.cpu_cores;
    memory_gb += other.memory_gb;
    gpu += other.gpu;
    return *this;
  }
  ResourceBundle& operator-=(const ResourceBundle& other) {
    cpu_cores -= other.cpu_cores;
    memory_gb -= other.memory_gb;
    gpu -= other.gpu;
    return *this;
  }
  friend ResourceBundle operator+(ResourceBundle a, const ResourceBundle& b) {
    return a += b;
  }
  friend ResourceBundle operator-(ResourceBundle a, const ResourceBundle& b) {
    return a -= b;
  }
  friend ResourceBundle operator*(ResourceBundle a, double k) {
    a.cpu_cores *= k;
    a.memory_gb *= k;
    a.gpu *= k;
    return a;
  }
  friend constexpr bool operator==(const ResourceBundle& a,
                                   const ResourceBundle& b) {
    return a.cpu_cores == b.cpu_cores && a.memory_gb == b.memory_gb &&
           a.gpu == b.gpu;
  }

  std::string ToString() const;
};

/// Thread-safe pool of fungible resources with freeze/release semantics
/// (paper §III-B, Resource Manager). "Freezing" reserves capacity for a
/// scheduled task before it starts running.
class ResourcePool {
 public:
  explicit ResourcePool(ResourceBundle capacity);

  /// Reserves `amount`; fails with ResourceExhausted if it does not fit.
  Status Freeze(const ResourceBundle& amount);

  /// Returns previously frozen capacity. Over-release is clamped and
  /// reported as FailedPrecondition.
  Status Release(const ResourceBundle& amount);

  /// Dynamic scaling: grows capacity (scale up).
  void ScaleUp(const ResourceBundle& extra);

  /// Dynamic scaling: shrinks capacity; fails if in-use resources exceed
  /// the reduced capacity.
  Status ScaleDown(const ResourceBundle& less);

  ResourceBundle capacity() const;
  ResourceBundle available() const;
  ResourceBundle in_use() const;

  /// Largest integer multiple of `unit` that currently fits.
  std::size_t MaxUnitsAvailable(const ResourceBundle& unit) const;

 private:
  mutable std::mutex mutex_;
  ResourceBundle capacity_;
  ResourceBundle in_use_;
};

}  // namespace simdc::actor
