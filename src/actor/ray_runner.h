// Job submission for the logical simulation (the paper's "Ray Runner").
//
// §IV-A: "The master node (Ray Runner) is responsible for data downloading,
// distribution, and the configuration of runtime parameters for the
// simulated devices. Subsequently, this master node ... directly launches
// placement groups of actors on worker nodes, with each actor sequentially
// simulating multiple devices."
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "actor/cluster.h"
#include "common/error.h"

namespace simdc::actor {

/// Specification of a logical-simulation job.
struct JobSpec {
  /// Number of simulated devices to run.
  std::size_t num_devices = 0;
  /// Number of actors (== bundles of the placement group).
  std::size_t num_actors = 0;
  /// Resources reserved per actor (k unit bundles of the device grade).
  ResourceBundle per_actor;
  PlacementStrategy strategy = PlacementStrategy::kPack;
  /// Per-device computation; index is the device's position in [0, N).
  std::function<void(std::size_t device_index)> device_fn;
  /// Optional per-actor setup, e.g. "data download" (§IV-A). Runs once on
  /// each actor before any device work.
  std::function<void(std::size_t actor_index)> actor_setup;
  std::string label = "job";
};

/// Outcome of a completed job.
struct JobResult {
  std::size_t devices_run = 0;
  std::size_t actors_used = 0;
  /// Devices assigned to each actor (round-robin distribution).
  std::vector<std::size_t> devices_per_actor;
};

/// Executes JobSpecs on a Cluster: reserves a placement group, launches one
/// actor per bundle, distributes devices round-robin, waits for completion
/// and releases resources.
class RayRunner {
 public:
  explicit RayRunner(Cluster& cluster) : cluster_(cluster) {}

  Result<JobResult> SubmitJob(const JobSpec& spec);

 private:
  Cluster& cluster_;
};

}  // namespace simdc::actor
