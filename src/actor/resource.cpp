#include "actor/resource.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/string_util.h"

namespace simdc::actor {

std::string ResourceBundle::ToString() const {
  return StrFormat("{cpu: %.2f, mem: %.2f GB, gpu: %.2f}", cpu_cores,
                   memory_gb, gpu);
}

ResourcePool::ResourcePool(ResourceBundle capacity) : capacity_(capacity) {
  SIMDC_CHECK(capacity.cpu_cores >= 0 && capacity.memory_gb >= 0 &&
                  capacity.gpu >= 0,
              "pool capacity must be non-negative");
}

Status ResourcePool::Freeze(const ResourceBundle& amount) {
  std::lock_guard<std::mutex> lock(mutex_);
  const ResourceBundle would_use = in_use_ + amount;
  if (!capacity_.Contains(would_use)) {
    return ResourceExhausted("freeze of " + amount.ToString() +
                             " exceeds available " +
                             (capacity_ - in_use_).ToString());
  }
  in_use_ = would_use;
  return Status::Ok();
}

Status ResourcePool::Release(const ResourceBundle& amount) {
  std::lock_guard<std::mutex> lock(mutex_);
  ResourceBundle next = in_use_ - amount;
  const bool over = next.cpu_cores < -1e-9 || next.memory_gb < -1e-9 ||
                    next.gpu < -1e-9;
  next.cpu_cores = std::max(0.0, next.cpu_cores);
  next.memory_gb = std::max(0.0, next.memory_gb);
  next.gpu = std::max(0.0, next.gpu);
  in_use_ = next;
  if (over) {
    return FailedPrecondition("release of " + amount.ToString() +
                              " exceeds frozen amount");
  }
  return Status::Ok();
}

void ResourcePool::ScaleUp(const ResourceBundle& extra) {
  std::lock_guard<std::mutex> lock(mutex_);
  capacity_ += extra;
}

Status ResourcePool::ScaleDown(const ResourceBundle& less) {
  std::lock_guard<std::mutex> lock(mutex_);
  const ResourceBundle next = capacity_ - less;
  if (next.cpu_cores < 0 || next.memory_gb < 0 || next.gpu < 0) {
    return InvalidArgument("scale-down below zero capacity");
  }
  if (!next.Contains(in_use_)) {
    return FailedPrecondition(
        "scale-down below in-use resources; release first");
  }
  capacity_ = next;
  return Status::Ok();
}

ResourceBundle ResourcePool::capacity() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return capacity_;
}

ResourceBundle ResourcePool::available() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return capacity_ - in_use_;
}

ResourceBundle ResourcePool::in_use() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return in_use_;
}

std::size_t ResourcePool::MaxUnitsAvailable(const ResourceBundle& unit) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const ResourceBundle free = capacity_ - in_use_;
  double units = std::numeric_limits<double>::infinity();
  if (unit.cpu_cores > 0) units = std::min(units, free.cpu_cores / unit.cpu_cores);
  if (unit.memory_gb > 0) units = std::min(units, free.memory_gb / unit.memory_gb);
  if (unit.gpu > 0) units = std::min(units, free.gpu / unit.gpu);
  if (std::isinf(units)) return 0;  // zero unit: undefined, treat as none
  return units < 0 ? 0 : static_cast<std::size_t>(units + 1e-9);
}

}  // namespace simdc::actor
