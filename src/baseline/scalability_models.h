// Architectural cost models of SimDC and the baseline simulators —
// substitution for running FedScale / FederatedScope themselves.
//
// Fig. 8 compares average single-round training time from 100 to 100,000
// simulated devices on a 200-core cluster. The paper attributes the
// differences to architecture, not to training math:
//   * FedScale: "does not use device-cloud communication during
//     simulations. Its data and models are stored directly in memory, and
//     data is transferred only between memories" → essentially pure
//     compute, fastest but least realistic.
//   * FederatedScope: "employs a similar strategy for data and models and
//     can only use a single resource instance to simulate clients";
//     independently simulates clients and uses device-cloud communication
//     for aggregation → small fixed overhead, per-client messaging cost.
//   * SimDC: Ray placement groups across physical servers; "each actor
//     ... must download the corresponding data and model for its simulated
//     devices", results go to shared storage and cloud services → larger
//     fixed setup (job submission, placement, per-actor downloads), so it
//     is slower below ~1,000 devices, and comparable to FederatedScope
//     beyond ~10,000 where device scale dominates.
//
// The models below implement exactly these pipelines as closed-form costs
// with documented parameters; tests pin the orderings and crossovers the
// paper reports.
#pragma once

#include <cstddef>
#include <string_view>

namespace simdc::baseline {

/// Shared workload/cluster parameters (Fig. 8 setup).
struct ClusterParams {
  /// Total CPU cores of the server cluster.
  std::size_t cpu_cores = 200;
  /// Core-seconds to train one simulated device's local shard (LR, 10
  /// epochs, Python-stack overhead included).
  double per_device_train_s = 4.0;
};

class SimulatorModel {
 public:
  virtual ~SimulatorModel() = default;
  virtual std::string_view name() const = 0;
  /// Average single-round wall time for `devices` simulated devices.
  virtual double SingleRoundSeconds(std::size_t devices) const = 0;
};

/// FedScale-style: in-memory hand-off, no device-cloud communication.
class FedScaleModel final : public SimulatorModel {
 public:
  explicit FedScaleModel(ClusterParams cluster) : cluster_(cluster) {}
  std::string_view name() const override { return "FedScale"; }
  double SingleRoundSeconds(std::size_t devices) const override;

  /// In-memory frameworks avoid the interpreter/distribution overhead of a
  /// per-client pipeline; effective per-device cost is discounted.
  static constexpr double kComputeDiscount = 0.30;
  static constexpr double kRoundConstantS = 0.5;

 private:
  ClusterParams cluster_;
};

/// FederatedScope-style: single resource instance, clients simulated
/// independently, device-cloud communication for aggregation.
class FederatedScopeModel final : public SimulatorModel {
 public:
  explicit FederatedScopeModel(ClusterParams cluster) : cluster_(cluster) {}
  std::string_view name() const override { return "FederatedScope"; }
  double SingleRoundSeconds(std::size_t devices) const override;

  static constexpr double kStartupS = 3.0;
  /// Per-client message + aggregation handling on the single instance.
  static constexpr double kPerClientCommS = 0.004;

 private:
  ClusterParams cluster_;
};

/// SimDC's logical simulation: Ray job on k8s, placement group of actors,
/// per-actor data/model download, shared-storage uploads + cloud messages.
class SimDcModel final : public SimulatorModel {
 public:
  struct Params {
    /// Ray job submission + placement-group launch + runtime configuration.
    double job_setup_s = 12.0;
    /// Data + model download per actor (runs in parallel across actors).
    double actor_download_s = 3.5;
    /// Upload of results to shared storage + message to cloud, per device.
    double per_device_io_s = 0.5;
    /// When false (ablation D4), one actor per device instead of actors
    /// sequentially multiplexing devices; actor count is then capped by
    /// bundles and each actor pays the download cost.
    bool multiplex_devices_per_actor = true;
  };

  explicit SimDcModel(ClusterParams cluster)
      : cluster_(cluster), params_() {}
  SimDcModel(ClusterParams cluster, Params params)
      : cluster_(cluster), params_(params) {}
  std::string_view name() const override { return "SimDC"; }
  double SingleRoundSeconds(std::size_t devices) const override;

 private:
  ClusterParams cluster_;
  Params params_;
};

}  // namespace simdc::baseline
