#include "baseline/scalability_models.h"

#include <algorithm>
#include <cmath>

namespace simdc::baseline {
namespace {

double CeilDiv(std::size_t a, std::size_t b) {
  return b == 0 ? 0.0 : std::ceil(static_cast<double>(a) / static_cast<double>(b));
}

}  // namespace

double FedScaleModel::SingleRoundSeconds(std::size_t devices) const {
  // Pure parallel compute over the cluster cores; no per-client comms.
  const double waves = CeilDiv(devices, cluster_.cpu_cores);
  return kRoundConstantS +
         waves * cluster_.per_device_train_s * kComputeDiscount;
}

double FederatedScopeModel::SingleRoundSeconds(std::size_t devices) const {
  // One resource instance hosting all client processes: compute waves over
  // its cores plus a serial per-client communication/aggregation cost.
  const double waves = CeilDiv(devices, cluster_.cpu_cores);
  return kStartupS + waves * cluster_.per_device_train_s +
         static_cast<double>(devices) * kPerClientCommS;
}

double SimDcModel::SingleRoundSeconds(std::size_t devices) const {
  if (devices == 0) return params_.job_setup_s;
  // One actor per core when multiplexing (each actor sequentially runs
  // ceil(n/actors) devices, §IV-A); ablation: one actor per device, so the
  // placement group launches in waves of `cores` actors and each pays its
  // own download.
  if (params_.multiplex_devices_per_actor) {
    const std::size_t actors = std::min(devices, cluster_.cpu_cores);
    const double per_device =
        cluster_.per_device_train_s + params_.per_device_io_s;
    return params_.job_setup_s + params_.actor_download_s +
           CeilDiv(devices, actors) * per_device;
  }
  const double waves = CeilDiv(devices, cluster_.cpu_cores);
  const double per_device = cluster_.per_device_train_s +
                            params_.per_device_io_s +
                            params_.actor_download_s;  // per-actor download
  return params_.job_setup_s + waves * per_device;
}

}  // namespace simdc::baseline
