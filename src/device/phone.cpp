#include "device/phone.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "common/error.h"

namespace simdc::device {
namespace {

constexpr std::uint64_t kSaltCurrent = 0x11;
constexpr std::uint64_t kSaltVoltage = 0x22;
constexpr std::uint64_t kSaltCpu = 0x33;
constexpr std::uint64_t kSaltMem = 0x44;

double Clamp01(double x) { return std::clamp(x, 0.0, 1.0); }

}  // namespace

Phone::Phone(PhoneSpec spec, const Clock& clock)
    : spec_(std::move(spec)), clock_(clock), power_(spec_.grade) {}

void Phone::ScheduleRun(RunPlan plan) {
  SIMDC_CHECK(!plan.rounds.empty(), "run plan needs at least one round");
  SimTime prev = plan.apk_launch_start;
  for (const auto& round : plan.rounds) {
    SIMDC_CHECK(round.train_start >= prev, "rounds must be ordered");
    SIMDC_CHECK(round.train_end > round.train_start, "empty round window");
    prev = round.train_end;
  }
  SIMDC_CHECK(plan.closure_start >= prev, "closure before last round end");
  SIMDC_CHECK(plan.closure_end > plan.closure_start, "empty closure window");
  if (!plans_.empty()) {
    SIMDC_CHECK(plan.apk_launch_start >= plans_.back().closure_end,
                "plans must not overlap");
  }
  plans_.push_back(std::move(plan));
}

const RunPlan* Phone::PlanCovering(SimTime t) const {
  for (const auto& plan : plans_) {
    if (t >= plan.apk_launch_start && t < plan.closure_end) return &plan;
  }
  return nullptr;
}

const RoundWindow* Phone::RoundCovering(const RunPlan& plan, SimTime t) {
  for (const auto& round : plan.rounds) {
    if (t >= round.train_start && t < round.train_end) return &round;
  }
  return nullptr;
}

ApkStage Phone::StageWithin(const RunPlan& plan, SimTime t) const {
  if (t >= plan.closure_start) return ApkStage::kApkClosure;
  if (RoundCovering(plan, t) != nullptr) return ApkStage::kTraining;
  if (t < plan.rounds.front().train_start) return ApkStage::kApkLaunch;
  return ApkStage::kPostTraining;  // waiting for global aggregation
}

ApkStage Phone::StageAt(SimTime t) const {
  const RunPlan* plan = PlanCovering(t);
  return plan == nullptr ? ApkStage::kNoApk : StageWithin(*plan, t);
}

std::optional<int> Phone::PidOf(std::string_view process_name,
                                SimTime t) const {
  const RunPlan* plan = PlanCovering(t);
  if (plan == nullptr || process_name != plan->process_name) {
    return std::nullopt;
  }
  return plan->pid;
}

std::int64_t Phone::CurrentNowMicroAmps(SimTime t) const {
  Rng rng = NoiseAt(t, kSaltCurrent);
  return power_.CurrentNowMicroAmps(StageAt(t), rng);
}

std::int64_t Phone::VoltageNowMicroVolts(SimTime t) const {
  Rng rng = NoiseAt(t, kSaltVoltage);
  return power_.VoltageNowMicroVolts(StageAt(t), rng);
}

double Phone::CpuPercentAt(SimTime t) const {
  Rng rng = NoiseAt(t, kSaltCpu);
  const double jitter = rng.Normal();
  const double ts = ToSeconds(t);
  switch (StageAt(t)) {
    case ApkStage::kNoApk:
      return 0.0;  // process does not exist
    case ApkStage::kApkLaunch:
      return std::max(0.5, 21.0 + 2.5 * jitter);
    case ApkStage::kTraining: {
      // Fig. 5: CPU oscillates roughly 2–14% with a few-second period.
      const double base = spec_.grade == DeviceGrade::kHigh ? 8.0 : 11.0;
      const double phase =
          static_cast<double>(spec_.seed % 997) / 997.0 * 2.0 * std::numbers::pi;
      const double wave =
          4.0 * std::sin(2.0 * std::numbers::pi * ts / 6.5 + phase);
      return std::max(0.5, base + wave + 1.2 * jitter);
    }
    case ApkStage::kPostTraining:
      return std::max(0.3, 1.6 + 0.5 * jitter);
    case ApkStage::kApkClosure:
      return std::max(0.5, 5.0 + 1.0 * jitter);
  }
  return 0.0;
}

std::int64_t Phone::MemPssKbAt(SimTime t) const {
  const RunPlan* plan = PlanCovering(t);
  if (plan == nullptr) return 0;
  Rng rng = NoiseAt(t, kSaltMem);
  const double jitter_kb = 400.0 * rng.Normal();
  double mb = 0.0;
  switch (StageWithin(*plan, t)) {
    case ApkStage::kNoApk:
      return 0;
    case ApkStage::kApkLaunch: {
      // Ramp 12 → 22 MB while the APK initializes.
      const double span = static_cast<double>(
          plan->rounds.front().train_start - plan->apk_launch_start);
      const double progress =
          span <= 0 ? 1.0
                    : Clamp01(static_cast<double>(t - plan->apk_launch_start) / span);
      mb = 12.0 + 10.0 * progress;
      break;
    }
    case ApkStage::kTraining: {
      // Fig. 5: climbs from ~25 MB to ~45 MB across a training round.
      const RoundWindow* round = RoundCovering(*plan, t);
      const double span =
          static_cast<double>(round->train_end - round->train_start);
      const double progress =
          Clamp01(static_cast<double>(t - round->train_start) / span);
      mb = 25.0 + 20.0 * progress;
      break;
    }
    case ApkStage::kPostTraining:
      mb = 30.0;
      break;
    case ApkStage::kApkClosure:
      mb = 18.0;
      break;
  }
  return std::max<std::int64_t>(
      1024, static_cast<std::int64_t>(mb * 1024.0 + jitter_kb));
}

Phone::WlanCounters Phone::WlanAt(SimTime t) const {
  WlanCounters counters;
  for (const auto& plan : plans_) {
    // Per round: download streams over the opening slice of the training
    // window, upload over the closing slice, so all task communication is
    // attributed to the Training stage (Table I reports comm only there).
    for (const auto& round : plan.rounds) {
      const SimTime span = round.train_end - round.train_start;
      const SimTime window =
          std::max<SimTime>(1, std::min<SimTime>(Seconds(1.0), span / 5));
      // Download at round start.
      if (t >= round.train_start) {
        const double progress =
            Clamp01(static_cast<double>(t - round.train_start) /
                    static_cast<double>(window));
        counters.rx_bytes += static_cast<std::int64_t>(
            progress * static_cast<double>(round.download_bytes));
      }
      // Upload finishing exactly at round end.
      const SimTime upload_start = round.train_end - window;
      if (t >= upload_start) {
        const double progress =
            Clamp01(static_cast<double>(t - upload_start) /
                    static_cast<double>(window));
        counters.tx_bytes += static_cast<std::int64_t>(
            progress * static_cast<double>(round.upload_bytes));
      }
    }
    // Background drip while the APK is alive (keep-alives, telemetry).
    const SimTime alive_from = plan.apk_launch_start;
    if (t > alive_from) {
      const SimTime alive_until = std::min(t, plan.closure_end);
      const double alive_s =
          ToSeconds(std::max<SimTime>(0, alive_until - alive_from));
      counters.rx_bytes += static_cast<std::int64_t>(12.0 * alive_s);
      counters.tx_bytes += static_cast<std::int64_t>(9.0 * alive_s);
    }
  }
  return counters;
}

double Phone::EnergyConsumedMah(SimTime t0, SimTime t1) const {
  SIMDC_CHECK(t1 >= t0, "EnergyConsumedMah: t1 < t0");
  // Collect stage boundaries intersecting [t0, t1) and integrate piecewise.
  std::vector<SimTime> cuts = {t0, t1};
  for (const auto& plan : plans_) {
    cuts.push_back(plan.apk_launch_start);
    for (const auto& round : plan.rounds) {
      cuts.push_back(round.train_start);
      cuts.push_back(round.train_end);
    }
    cuts.push_back(plan.closure_start);
    cuts.push_back(plan.closure_end);
  }
  std::sort(cuts.begin(), cuts.end());
  double mah = 0.0;
  for (std::size_t i = 0; i + 1 < cuts.size(); ++i) {
    const SimTime a = std::clamp(cuts[i], t0, t1);
    const SimTime b = std::clamp(cuts[i + 1], t0, t1);
    if (b <= a) continue;
    const double hours = ToSeconds(b - a) / 3600.0;
    mah += power_.MeanCurrentMa(StageAt(a)) * hours;
  }
  return mah;
}

std::int64_t Phone::CommBytesBetween(SimTime t0, SimTime t1) const {
  const WlanCounters c0 = WlanAt(t0);
  const WlanCounters c1 = WlanAt(t1);
  return (c1.rx_bytes - c0.rx_bytes) + (c1.tx_bytes - c0.tx_bytes);
}

}  // namespace simdc::device
