// Simulated Android phone.
//
// Substitution for the physical mobile-phone cluster (paper §IV-A/§IV-C):
// a state machine over the five APK lifecycle stages of Table I whose
// observable surface matches what ADB exposes on a real handset —
// battery current/voltage sysfs nodes, a process table, per-process CPU
// and PSS memory, and wlan interface byte counters. PhoneMgr never touches
// this object directly for measurements; it goes through the simulated ADB
// shell and parses text, exactly like the real pipeline.
//
// The phone is *schedule-driven*: a RunPlan fixes the stage boundaries and
// per-round communication volumes, and every query is a pure function of
// (plan, query time, seed). This makes traces deterministic and lets the
// discrete-event loop sample at any frequency without simulating every
// microsecond.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/clock.h"
#include "common/ids.h"
#include "common/rng.h"
#include "device/grade.h"
#include "device/power_model.h"

namespace simdc::device {

/// Static description of one handset.
struct PhoneSpec {
  PhoneId id;
  DeviceGrade grade = DeviceGrade::kHigh;
  std::string model = "SDC-A1";
  double memory_gb = 12.0;
  double cpu_freq_ghz = 2.8;
  bool has_npu = false;
  /// True for remote phones provided by the Mobile Service Platform.
  bool remote_msp = false;
  std::uint64_t seed = 0;
};

/// One training round executed on the phone.
struct RoundWindow {
  SimTime train_start = 0;
  SimTime train_end = 0;
  /// Bytes pulled from cloud storage at round start (model + data).
  std::int64_t download_bytes = 0;
  /// Bytes pushed at round end (model update + message).
  std::int64_t upload_bytes = 0;
};

/// A complete APK run: launch → rounds (training / waiting) → closure.
struct RunPlan {
  SimTime apk_launch_start = 0;
  /// Rounds in increasing time order; gaps between rounds are
  /// "post-training" (device waiting for global aggregation, Fig. 5).
  std::vector<RoundWindow> rounds;
  SimTime closure_start = 0;
  SimTime closure_end = 0;
  std::string process_name = "com.simdc.fltrain";
  int pid = 0;  // assigned by PhoneMgr / test
};

class Phone {
 public:
  Phone(PhoneSpec spec, const Clock& clock);

  const PhoneSpec& spec() const { return spec_; }
  const Clock& clock() const { return clock_; }

  /// Installs a run plan. A phone may hold several non-overlapping plans
  /// (e.g. the original run plus a post-crash recovery run); plans must be
  /// appended in increasing time order.
  /// Precondition: stage boundaries are monotonically ordered and the plan
  /// starts at or after the previous plan's closure.
  void ScheduleRun(RunPlan plan);
  void ClearPlan() { plans_.clear(); }
  bool HasPlan() const { return !plans_.empty(); }
  /// Most recently installed plan (nullptr when none).
  const RunPlan* plan() const {
    return plans_.empty() ? nullptr : &plans_.back();
  }
  /// Plan whose [launch, closure) window covers `t` (nullptr when idle).
  const RunPlan* PlanCovering(SimTime t) const;
  std::size_t plan_count() const { return plans_.size(); }

  /// Lifecycle stage at absolute sim time `t`.
  ApkStage StageAt(SimTime t) const;
  ApkStage CurrentStage() const { return StageAt(clock_.Now()); }

  /// Process lookup (pgrep): pid while the APK is alive at `t`.
  std::optional<int> PidOf(std::string_view process_name, SimTime t) const;

  // --- Instantaneous sensors (deterministic noise keyed by query time) ---

  /// Battery current in microamps (negative = discharging).
  std::int64_t CurrentNowMicroAmps(SimTime t) const;
  /// Battery voltage in microvolts.
  std::int64_t VoltageNowMicroVolts(SimTime t) const;
  /// Per-process CPU usage percent as `top` would report.
  double CpuPercentAt(SimTime t) const;
  /// Per-process PSS memory in KB as `dumpsys meminfo` would report.
  std::int64_t MemPssKbAt(SimTime t) const;

  struct WlanCounters {
    std::int64_t rx_bytes = 0;
    std::int64_t tx_bytes = 0;
  };
  /// Cumulative wlan0 byte counters at `t` (monotone non-decreasing).
  WlanCounters WlanAt(SimTime t) const;

  // --- Ground-truth integrals (for calibration and Table I verification;
  //     a real phone cannot report these, only the sampled estimates) ---

  /// Exact energy consumed in [t0, t1) in mAh, integrating stage means.
  double EnergyConsumedMah(SimTime t0, SimTime t1) const;
  /// Exact bytes communicated in [t0, t1).
  std::int64_t CommBytesBetween(SimTime t0, SimTime t1) const;

  // --- Occupancy bookkeeping used by PhoneMgr ---
  bool busy() const { return busy_; }
  void set_busy(bool busy) { busy_ = busy; }
  bool benchmarking() const { return benchmarking_; }
  void set_benchmarking(bool b) { benchmarking_ = b; }

 private:
  Rng NoiseAt(SimTime t, std::uint64_t salt) const {
    return Rng(spec_.seed).Split(static_cast<std::uint64_t>(t) ^ salt);
  }
  /// Which round of `plan` (if any) covers `t`.
  static const RoundWindow* RoundCovering(const RunPlan& plan, SimTime t);
  ApkStage StageWithin(const RunPlan& plan, SimTime t) const;

  PhoneSpec spec_;
  const Clock& clock_;
  PowerModel power_;
  std::vector<RunPlan> plans_;  // non-overlapping, time-ordered
  bool busy_ = false;
  bool benchmarking_ = false;
};

}  // namespace simdc::device
