#include "device/behavior.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/det_hash.h"
#include "common/string_util.h"

namespace simdc::device {
namespace {

// Per-purpose hash salts so the per-device draws (availability threshold,
// churn membership, leave instant, rejoin membership, battery phase) are
// independent streams of one seed.
constexpr std::uint64_t kAvailSalt = HashString("behavior-availability");
constexpr std::uint64_t kChurnSalt = HashString("behavior-churn");
constexpr std::uint64_t kLeaveSalt = HashString("behavior-leave");
constexpr std::uint64_t kRejoinSalt = HashString("behavior-rejoin");
constexpr std::uint64_t kBatterySalt = HashString("behavior-battery");

constexpr double kTwoPi = 6.283185307179586476925286766559;

/// Fractional position in a cycle of `period` with a phase offset in
/// cycles; result in [0, 1).
double CyclePosition(SimTime t, SimDuration period, double phase) {
  if (period <= 0) return 0.0;
  const double x =
      ToSeconds(t) / ToSeconds(period) + phase;
  return x - std::floor(x);
}

}  // namespace

Result<std::vector<UsageTraceEvent>> ParseUsageTrace(std::string_view text) {
  std::vector<UsageTraceEvent> events;
  std::size_t line_number = 0;
  for (const auto& raw_line : SplitLines(text)) {
    ++line_number;
    std::string line = raw_line;
    if (const auto pos = line.find('#'); pos != std::string::npos) {
      line.erase(pos);
    }
    if (TrimWhitespace(line).empty()) continue;

    std::istringstream fields(line);
    double time_s = 0.0;
    std::uint64_t device = 0;
    std::string state;
    if (!(fields >> time_s >> device >> state) || time_s < 0.0) {
      return ParseError(StrFormat(
          "usage trace line %zu: expected '<time_s> <device> <state>', got "
          "'%s'",
          line_number, std::string(TrimWhitespace(line)).c_str()));
    }
    UsageTraceEvent event;
    event.device_key = device;
    event.time = Seconds(time_s);
    if (state == "online") {
      event.online = true;
    } else if (state == "offline") {
      event.online = false;
    } else if (const auto stage = ParseInt(state);
               stage && *stage >= 1 && *stage <= 5) {
      // ApkStage timelines: stage 1 (no APK running) is offline, every
      // running stage (2-5) is online.
      event.online = *stage > 1;
    } else {
      return ParseError(StrFormat(
          "usage trace line %zu: state must be online, offline or an "
          "ApkStage 1-5, got '%s'",
          line_number, state.c_str()));
    }
    events.push_back(event);
  }
  return events;
}

BehaviorModel::BehaviorModel(BehaviorConfig config)
    : config_(config) {}

void BehaviorModel::LoadTrace(std::vector<UsageTraceEvent> events) {
  for (UsageTraceEvent& event : events) {
    traces_[event.device_key].push_back(event);
  }
  for (auto& [key, timeline] : traces_) {
    std::stable_sort(timeline.begin(), timeline.end(),
                     [](const UsageTraceEvent& a, const UsageTraceEvent& b) {
                       return a.time < b.time;
                     });
  }
}

bool BehaviorModel::HasTrace(std::uint64_t device_key) const {
  return traces_.contains(device_key);
}

bool BehaviorModel::TracedAvailable(std::uint64_t device_key, SimTime t) const {
  const auto it = traces_.find(device_key);
  const std::vector<UsageTraceEvent>& timeline = it->second;
  // Last edge at or before t rules; before the first edge the device is
  // online (traces open mid-life, not at first boot).
  const auto after = std::upper_bound(
      timeline.begin(), timeline.end(), t,
      [](SimTime value, const UsageTraceEvent& e) { return value < e.time; });
  if (after == timeline.begin()) return true;
  return std::prev(after)->online;
}

double BehaviorModel::DutyCycle(SimTime t) const {
  const double swing =
      config_.diurnal_amplitude *
      std::sin(kTwoPi * CyclePosition(t, config_.diurnal_period,
                                      config_.diurnal_phase));
  return std::clamp(config_.mean_availability + swing, 0.0, 1.0);
}

SimTime BehaviorModel::LeaveTime(std::uint64_t device_key) const {
  if (config_.churn_rate <= 0.0) return -1;
  const double member =
      HashUnit(DeterministicHash(config_.seed, device_key, kChurnSalt));
  if (member >= config_.churn_rate) return -1;
  const double fraction =
      HashUnit(DeterministicHash(config_.seed, device_key, kLeaveSalt));
  return static_cast<SimTime>(fraction *
                              static_cast<double>(config_.churn_horizon));
}

SimTime BehaviorModel::RejoinTime(std::uint64_t device_key) const {
  const SimTime leave = LeaveTime(device_key);
  if (leave < 0 || config_.rejoin_fraction <= 0.0) return -1;
  const double member =
      HashUnit(DeterministicHash(config_.seed, device_key, kRejoinSalt));
  if (member >= config_.rejoin_fraction) return -1;
  return leave + std::max<SimDuration>(1, config_.churn_downtime);
}

bool BehaviorModel::ChurnedOut(std::uint64_t device_key, SimTime t) const {
  const SimTime leave = LeaveTime(device_key);
  if (leave < 0 || t < leave) return false;
  const SimTime rejoin = RejoinTime(device_key);
  return rejoin < 0 || t < rejoin;
}

double BehaviorModel::BatteryLevel(std::uint64_t device_key, SimTime t) const {
  if (!config_.enabled || config_.battery_period <= 0) return 1.0;
  const double phase =
      HashUnit(DeterministicHash(config_.seed, device_key, kBatterySalt));
  const double x = CyclePosition(t, config_.battery_period, phase);
  // Sawtooth: discharge 1.00 -> 0.05 over three quarters of the cycle,
  // charge back over the last quarter.
  if (x < 0.75) return 1.0 - (x / 0.75) * 0.95;
  return 0.05 + ((x - 0.75) / 0.25) * 0.95;
}

bool BehaviorModel::Charging(std::uint64_t device_key, SimTime t) const {
  if (!config_.enabled || config_.battery_period <= 0) return false;
  const double phase =
      HashUnit(DeterministicHash(config_.seed, device_key, kBatterySalt));
  return CyclePosition(t, config_.battery_period, phase) >= 0.75;
}

bool BehaviorModel::Available(std::uint64_t device_key, SimTime t) const {
  if (!config_.enabled) return true;
  if (HasTrace(device_key)) return TracedAvailable(device_key, t);
  if (ChurnedOut(device_key, t)) return false;
  // Fixed per-device threshold against the fleet duty cycle: the SET of
  // available devices evolves smoothly with the curve (devices with low
  // thresholds are the reliable ones), instead of re-rolling membership
  // every query.
  const double threshold =
      HashUnit(DeterministicHash(config_.seed, device_key, kAvailSalt));
  if (threshold >= DutyCycle(t)) return false;
  if (config_.min_battery > 0.0 &&
      BatteryLevel(device_key, t) < config_.min_battery &&
      !Charging(device_key, t)) {
    return false;
  }
  return true;
}

double BehaviorModel::LinkFailureProbability(std::uint64_t device_key,
                                             SimTime t) const {
  (void)device_key;  // per-device link tiers are a future knob
  if (!config_.enabled) return 0.0;
  // Peaks at the availability trough (sin == -1): congested evenings have
  // both fewer available devices and flakier links.
  const double swing =
      config_.link_diurnal_swing * 0.5 *
      (1.0 - std::sin(kTwoPi * CyclePosition(t, config_.diurnal_period,
                                             config_.diurnal_phase)));
  return std::clamp(config_.link_base_failure + swing, 0.0, 0.95);
}

std::vector<ChurnEvent> BehaviorModel::ChurnEventsBetween(std::uint64_t n,
                                                          SimTime t0,
                                                          SimTime t1) const {
  std::vector<ChurnEvent> events;
  for (std::uint64_t key = 0; key < n; ++key) {
    const SimTime leave = LeaveTime(key);
    if (leave >= t0 && leave < t1) events.push_back({key, leave, false});
    const SimTime rejoin = RejoinTime(key);
    if (rejoin >= t0 && rejoin < t1 && rejoin >= 0) {
      events.push_back({key, rejoin, true});
    }
  }
  std::sort(events.begin(), events.end(),
            [](const ChurnEvent& a, const ChurnEvent& b) {
              return a.time != b.time ? a.time < b.time
                                      : a.device_key < b.device_key;
            });
  return events;
}

}  // namespace simdc::device
