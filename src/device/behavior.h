// Device behavior model: availability, battery, link quality, churn.
//
// Real fleets are not a hash draw (§II-B): phones follow diurnal usage
// cycles, run out of battery and charge back up, sit behind flaky radios,
// and join or leave mid-experiment. BehaviorModel composes those effects
// into per-device state that is a PURE FUNCTION of (seed, device key,
// time) — no mutable per-query state — so any plane that consults it
// (participant selection, flow::Dispatcher's link hooks, PhoneMgr churn
// drivers) observes the same fleet at every shard width, parallelism and
// delivery mode. That purity is what lets fault behavior itself be gated
// as a bit-identity invariant instead of flaky test noise.
//
// Two sources of truth compose:
//   * the synthetic plane — seed-deterministic diurnal duty cycle, battery
//     sawtooth and churn schedule derived via common::DeterministicHash;
//   * trace replay — per-device online/offline timelines in the Fig. 5
//     usage-trace format, which override the synthetic curve for the
//     devices they cover.
#pragma once

#include <cstdint>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/clock.h"
#include "common/error.h"

namespace simdc::device {

struct BehaviorConfig {
  /// Master switch; a disabled model reports every device available with a
  /// perfect link, reproducing pre-fault-plane behavior exactly.
  bool enabled = false;
  std::uint64_t seed = 1;
  /// Mean fraction of the fleet available at any instant.
  double mean_availability = 0.85;
  /// Diurnal swing around the mean (0 = flat availability). The duty
  /// cycle is mean + amplitude * sin(2π(t/period + phase)).
  double diurnal_amplitude = 0.0;
  SimDuration diurnal_period = Seconds(86400.0);
  /// Phase offset as a fraction of the period in [0, 1).
  double diurnal_phase = 0.0;
  /// Fraction of devices that permanently leave (churn out) somewhere in
  /// [0, churn_horizon); hash-derived per device.
  double churn_rate = 0.0;
  SimDuration churn_horizon = Seconds(3600.0);
  /// Fraction of leavers that rejoin after churn_downtime.
  double rejoin_fraction = 0.0;
  SimDuration churn_downtime = Seconds(600.0);
  /// Devices below this battery level are unavailable unless charging
  /// (0 = battery never gates availability).
  double min_battery = 0.0;
  /// Full discharge/charge cycle length; per-device phase is hash-derived.
  SimDuration battery_period = Seconds(7200.0);
  /// Baseline transient upload-failure probability (flow::LinkPolicy
  /// override hook), plus a diurnal swing that peaks at the availability
  /// trough (congested evenings <-> flaky links).
  double link_base_failure = 0.0;
  double link_diurnal_swing = 0.0;
};

/// One edge in a device's usage-trace timeline (Fig. 5 format): from
/// `time` on, the device is online or offline — until its next edge.
struct UsageTraceEvent {
  std::uint64_t device_key = 0;
  SimTime time = 0;
  bool online = true;
};

/// Parses the textual usage-trace format: one `<time_s> <device> <state>`
/// line per edge, where state is `online`, `offline`, or a numeric ApkStage
/// (stage 1 — no APK running — maps to offline, stages 2–5 to online; the
/// stage timelines bench_fig5_usage_trace samples are directly replayable).
/// `#` comments and blank lines are skipped; malformed lines are errors.
Result<std::vector<UsageTraceEvent>> ParseUsageTrace(std::string_view text);

/// A join/leave edge in the synthetic churn schedule.
struct ChurnEvent {
  std::uint64_t device_key = 0;
  SimTime time = 0;
  bool join = false;  ///< false = leaves the fleet, true = rejoins
};

class BehaviorModel {
 public:
  explicit BehaviorModel(BehaviorConfig config);

  const BehaviorConfig& config() const { return config_; }

  /// Loads a usage trace; traced devices' availability follows their
  /// timeline instead of the synthetic curve (before a device's first
  /// edge it is online). Immutable once loaded — call during setup only;
  /// queries afterwards are const and thread-safe.
  void LoadTrace(std::vector<UsageTraceEvent> events);
  bool HasTrace(std::uint64_t device_key) const;

  /// Whether the device can upload / participate at `t` — the AND of the
  /// churn schedule, the diurnal duty cycle and the battery gate (or the
  /// trace timeline for traced devices). Pure and thread-safe.
  bool Available(std::uint64_t device_key, SimTime t) const;

  /// Battery level in [0, 1]: a per-device-phased sawtooth that discharges
  /// over 3/4 of battery_period and charges over the last 1/4.
  double BatteryLevel(std::uint64_t device_key, SimTime t) const;
  bool Charging(std::uint64_t device_key, SimTime t) const;

  /// Transient upload-failure probability at `t` (flow::Dispatcher's
  /// link-probability hook), in [0, 0.95].
  double LinkFailureProbability(std::uint64_t device_key, SimTime t) const;

  /// Fleet-level duty cycle (fraction of untraced devices the diurnal
  /// curve admits) at `t`, clamped to [0, 1].
  double DutyCycle(SimTime t) const;

  /// Churn schedule of one device: leave/rejoin instants, or negative
  /// times when the device never churns. Hash-derived, stable.
  SimTime LeaveTime(std::uint64_t device_key) const;
  SimTime RejoinTime(std::uint64_t device_key) const;

  /// All join/leave edges of device keys [0, n) inside [t0, t1), sorted by
  /// (time, key) — the driver feed for PhoneMgr register/unregister churn.
  std::vector<ChurnEvent> ChurnEventsBetween(std::uint64_t n, SimTime t0,
                                             SimTime t1) const;

 private:
  bool ChurnedOut(std::uint64_t device_key, SimTime t) const;
  bool TracedAvailable(std::uint64_t device_key, SimTime t) const;

  BehaviorConfig config_;
  /// Per-device trace timelines, each sorted by time (built in LoadTrace).
  std::unordered_map<std::uint64_t, std::vector<UsageTraceEvent>> traces_;
};

}  // namespace simdc::device
