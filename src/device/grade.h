// Device grades and their resource/runtime characteristics.
//
// The paper's experiments (§VI-A2) categorize devices into two grades:
//   High — 4 CPU cores + 12 GB memory in logical simulation; physical
//          phones with more than 8 GB memory;
//   Low  — 1 CPU core + 6 GB memory; phones with less than 8 GB memory.
// The hybrid allocation optimizer additionally needs per-grade runtime
// parameters measured "through empirical values or pre-experimental
// measurements" (§IV-B): α (average logical-simulation duration), β
// (average physical-device duration) and λ (compute-framework startup
// time on phones).
#pragma once

#include <cstddef>
#include <string_view>

#include "actor/resource.h"

namespace simdc::device {

enum class DeviceGrade { kHigh, kLow };

constexpr std::string_view ToString(DeviceGrade grade) {
  return grade == DeviceGrade::kHigh ? "High" : "Low";
}

constexpr std::size_t kNumGrades = 2;

constexpr std::size_t GradeIndex(DeviceGrade grade) {
  return grade == DeviceGrade::kHigh ? 0 : 1;
}

constexpr DeviceGrade GradeFromIndex(std::size_t index) {
  return index == 0 ? DeviceGrade::kHigh : DeviceGrade::kLow;
}

/// Static description of one grade used by schedulers and the allocator.
struct GradeSpec {
  DeviceGrade grade = DeviceGrade::kHigh;

  /// Logical-simulation actor resources for one simulated device of this
  /// grade (k_i unit bundles of {1 CPU, 1 GB} worth in total).
  actor::ResourceBundle logical_bundle;
  /// Number of unit resource bundles the logical_bundle corresponds to
  /// (k_i in the paper's allocation model).
  std::size_t unit_bundles = 1;

  /// α_i: average seconds for one scheduled batch on logical simulation.
  double alpha_s = 1.0;
  /// β_i: average seconds for one batch on a physical phone.
  double beta_s = 1.0;
  /// λ_i: startup seconds of the on-phone compute framework (APK launch).
  double lambda_s = 0.0;
};

/// Paper-calibrated defaults. α/β/λ are chosen so that, per Fig. 7, the
/// APK startup dominates at small scales (physical slower) while the
/// native device operator wins per-round at large scales.
constexpr GradeSpec HighGradeSpec() {
  GradeSpec spec;
  spec.grade = DeviceGrade::kHigh;
  spec.logical_bundle = actor::ResourceBundle{4.0, 12.0};
  spec.unit_bundles = 8;  // paper §IV-B example: k = 8 unit bundles
  spec.alpha_s = 2.4;
  spec.beta_s = 1.6;
  spec.lambda_s = 15.0;
  return spec;
}

constexpr GradeSpec LowGradeSpec() {
  GradeSpec spec;
  spec.grade = DeviceGrade::kLow;
  spec.logical_bundle = actor::ResourceBundle{1.0, 6.0};
  spec.unit_bundles = 4;
  spec.alpha_s = 5.2;
  spec.beta_s = 3.8;
  spec.lambda_s = 21.0;
  return spec;
}

constexpr GradeSpec DefaultGradeSpec(DeviceGrade grade) {
  return grade == DeviceGrade::kHigh ? HighGradeSpec() : LowGradeSpec();
}

}  // namespace simdc::device
