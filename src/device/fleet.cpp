#include "device/fleet.h"

#include <array>

#include "common/rng.h"
#include "common/string_util.h"

namespace simdc::device {
namespace {

constexpr std::array<const char*, 5> kHighModels = {
    "SDC-Find-X7", "SDC-Reno-11", "SDC-OnePlus-12", "SDC-Find-N3",
    "SDC-Reno-10P"};
constexpr std::array<const char*, 5> kLowModels = {
    "SDC-A38", "SDC-A17", "SDC-K11", "SDC-A2m", "SDC-A1k"};

PhoneSpec MakeSpec(std::uint64_t id, DeviceGrade grade, bool msp, Rng& rng) {
  PhoneSpec spec;
  spec.id = PhoneId(id);
  spec.grade = grade;
  spec.remote_msp = msp;
  spec.seed = rng.Split(id)();
  if (grade == DeviceGrade::kHigh) {
    spec.model = kHighModels[id % kHighModels.size()];
    // High grade: more than 8 GB memory (paper's classification rule).
    spec.memory_gb = 12.0 + 4.0 * static_cast<double>(rng.UniformInt(0, 1));
    spec.cpu_freq_ghz = rng.Uniform(2.8, 3.3);
    spec.has_npu = rng.Bernoulli(0.7);
  } else {
    spec.model = kLowModels[id % kLowModels.size()];
    // Low grade: less than 8 GB memory.
    spec.memory_gb = 4.0 + 2.0 * static_cast<double>(rng.UniformInt(0, 1));
    spec.cpu_freq_ghz = rng.Uniform(1.8, 2.4);
    spec.has_npu = false;
  }
  return spec;
}

std::vector<PhoneSpec> MakeFleet(std::size_t high, std::size_t low,
                                 std::uint64_t seed, std::uint64_t first_id,
                                 bool msp) {
  Rng rng(seed);
  std::vector<PhoneSpec> fleet;
  fleet.reserve(high + low);
  std::uint64_t id = first_id;
  for (std::size_t i = 0; i < high; ++i) {
    fleet.push_back(MakeSpec(id++, DeviceGrade::kHigh, msp, rng));
  }
  for (std::size_t i = 0; i < low; ++i) {
    fleet.push_back(MakeSpec(id++, DeviceGrade::kLow, msp, rng));
  }
  return fleet;
}

}  // namespace

std::vector<PhoneSpec> MakeLocalFleet(std::size_t high, std::size_t low,
                                      std::uint64_t seed,
                                      std::uint64_t first_id) {
  return MakeFleet(high, low, seed, first_id, /*msp=*/false);
}

std::vector<PhoneSpec> MakeMspFleet(std::size_t high, std::size_t low,
                                    std::uint64_t seed,
                                    std::uint64_t first_id) {
  return MakeFleet(high, low, seed, first_id, /*msp=*/true);
}

std::vector<PhoneSpec> MakeDefaultCluster(std::uint64_t seed) {
  auto fleet = MakeLocalFleet(4, 6, seed, 0);
  const auto msp = MakeMspFleet(13, 7, seed ^ 0x5555AAAA, 1000);
  fleet.insert(fleet.end(), msp.begin(), msp.end());
  return fleet;
}

}  // namespace simdc::device
