// Battery / power model of a simulated phone.
//
// PhoneMgr measures physical performance via ADB reads of
// /sys/class/power_supply/battery/{current_now,voltage_now} (§IV-C) and
// Table I reports per-stage energy (mAh) over the five APK lifecycle
// stages. This model produces instantaneous current/voltage readings whose
// integral over the stage durations reproduces Table I:
//
//   grade  stage                 mAh     min    => mean current (mA)
//   High   1 no APK initiated    0.24    0.25      57.6
//          2 APK launch          0.51    0.25     122.4
//          3 Training            0.18    0.27      40.0
//          4 Post-training       0.37    0.25      88.8
//          5 Closure of APK      0.44    0.25     105.6
//   Low    1 no APK initiated    1.71    0.25     410.4
//          2 APK launch          1.80    0.25     432.0
//          3 Training            0.66    0.36     110.0
//          4 Post-training       1.65    0.25     396.0
//          5 Closure of APK      1.82    0.25     436.8
//
// (Low-grade handsets draw notably more current at idle — older SoCs with
// poorer power management — which is exactly the heterogeneity the paper's
// physical cluster exists to expose.)
#pragma once

#include <array>
#include <cstdint>

#include "common/rng.h"
#include "device/grade.h"

namespace simdc::device {

/// APK lifecycle stages (Table I).
enum class ApkStage : int {
  kNoApk = 1,         // background cleared, APK not running
  kApkLaunch = 2,     // APK starting, training not begun
  kTraining = 3,      // local training running
  kPostTraining = 4,  // training done, APK still active (e.g. waiting)
  kApkClosure = 5,    // exiting APK, clearing background
};

constexpr std::array<ApkStage, 5> kAllStages = {
    ApkStage::kNoApk, ApkStage::kApkLaunch, ApkStage::kTraining,
    ApkStage::kPostTraining, ApkStage::kApkClosure};

constexpr const char* ToString(ApkStage stage) {
  switch (stage) {
    case ApkStage::kNoApk: return "no APK initiated";
    case ApkStage::kApkLaunch: return "APK launch";
    case ApkStage::kTraining: return "Training";
    case ApkStage::kPostTraining: return "Post-training";
    case ApkStage::kApkClosure: return "Closure of APK";
  }
  return "?";
}

class PowerModel {
 public:
  /// `noise_fraction` scales multiplicative sampling noise on reads.
  explicit PowerModel(DeviceGrade grade, double noise_fraction = 0.04)
      : grade_(grade), noise_fraction_(noise_fraction) {}

  /// Mean stage current in milliamps (Table I calibration).
  double MeanCurrentMa(ApkStage stage) const;

  /// Instantaneous current_now reading in microamps, with sampling noise.
  /// Negative sign convention (discharging) matches Android sysfs.
  std::int64_t CurrentNowMicroAmps(ApkStage stage, Rng& rng) const;

  /// Instantaneous voltage_now reading in microvolts (~3.85 V nominal,
  /// sagging slightly under load).
  std::int64_t VoltageNowMicroVolts(ApkStage stage, Rng& rng) const;

  DeviceGrade grade() const { return grade_; }

 private:
  DeviceGrade grade_;
  double noise_fraction_;
};

}  // namespace simdc::device
