// Performance samples collected from benchmarking devices.
//
// §IV-C: "Once the Benchmarking devices start training, PhoneMgr retrieves
// information from these devices at a certain frequency, organizes it in
// real-time, and uploads it to the cloud database for storage." The basic
// device information is current (µA), voltage (mV), CPU usage (%), memory
// usage (KB) and bandwidth usage (B) — exactly the fields below.
#pragma once

#include <cstdint>

#include "common/clock.h"
#include "common/ids.h"
#include "device/power_model.h"

namespace simdc::device {

struct PerfSample {
  PhoneId phone;
  TaskId task;
  SimTime time = 0;
  /// Battery current in µA (negative = discharging, Android convention).
  std::int64_t current_ua = 0;
  /// Battery voltage in mV.
  double voltage_mv = 0.0;
  /// Process CPU usage in percent.
  double cpu_percent = 0.0;
  /// Process PSS memory in KB.
  std::int64_t memory_kb = 0;
  /// Cumulative wlan bytes (rx + tx) at sample time.
  std::int64_t bandwidth_bytes = 0;
  /// Lifecycle stage the device was in (PhoneMgr tags samples using the
  /// task timeline so Table I can aggregate per stage).
  ApkStage stage = ApkStage::kNoApk;
};

/// Destination for samples — implemented by the cloud metrics database.
class MetricsSink {
 public:
  virtual ~MetricsSink() = default;
  virtual void Record(const PerfSample& sample) = 0;
};

}  // namespace simdc::device
