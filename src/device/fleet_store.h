// Struct-of-arrays store for the hot per-phone scheduling state.
//
// PhoneMgr's selection, counting and ownership queries used to chase one
// heap-allocated Phone object per device; at million-device fleets that is
// a pointer dereference (and a cache miss) per phone per query. FleetStore
// keeps the scheduling-hot state — grade, locality, busy bit, owning task,
// perf counters — in contiguous parallel arrays indexed by a dense slot,
// so scans touch a few packed bytes per phone. Cold per-phone state (the
// Phone state machine, its ADB server) stays in slot-aligned side arrays
// owned by PhoneMgr; the store is the single authority for which slots are
// live, idle and selectable.
//
// Slots are reused: unregistering tombstones a slot (O(log n), no vector
// shift, no index rebuild) and a later registration may fill it. Selection
// order is preserved across reuse by keying the idle free-lists on a
// monotonically increasing registration sequence, not the slot number —
// exactly the "prefer local, then registration order" scan the historical
// per-object manager performed, now O(count log n) over set views of the
// SoA arrays.
#pragma once

#include <cstdint>
#include <set>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/error.h"
#include "common/ids.h"
#include "device/grade.h"

namespace simdc::device {

/// Per-phone lifetime counters, maintained by PhoneMgr as jobs run.
struct PhonePerfCounters {
  std::uint32_t jobs_assigned = 0;
  std::uint32_t rounds_completed = 0;
  std::uint32_t crashes = 0;
  std::uint32_t samples_recorded = 0;
};

class FleetStore {
 public:
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
  static constexpr std::size_t kNumLocalities = 2;  // 0 = local, 1 = MSP

  /// Registers a phone; returns its dense slot (a tombstoned slot is
  /// reused when one is free, else the arrays grow by one).
  /// Precondition: `id` is not currently registered.
  std::size_t Add(std::uint64_t id, std::size_t grade_index,
                  std::size_t locality_index);

  /// Tombstones a live, idle slot so it can be reused.
  /// Precondition: `slot` is live and not busy.
  void Remove(std::size_t slot);

  /// Dense slot of a registered phone id; npos when unknown.
  std::size_t SlotOf(std::uint64_t id) const {
    const auto it = slot_of_.find(id);
    return it == slot_of_.end() ? npos : it->second;
  }

  /// Live phones (excludes tombstones).
  std::size_t live_count() const { return live_; }
  /// Array extent: live slots plus tombstones awaiting reuse. Iterate
  /// [0, slot_count()) and filter with live() for a full-fleet walk.
  std::size_t slot_count() const { return id_.size(); }

  bool live(std::size_t slot) const { return live_bits_[slot] != 0; }
  std::uint64_t id(std::size_t slot) const { return id_[slot]; }
  std::size_t grade(std::size_t slot) const { return grade_[slot]; }
  std::size_t locality(std::size_t slot) const { return locality_[slot]; }
  bool busy(std::size_t slot) const { return busy_[slot] != 0; }
  TaskId owner(std::size_t slot) const { return owner_[slot]; }

  /// Flips the busy bit, moving the slot out of (or back into) the idle
  /// free-lists. Idempotent for same-value writes.
  void SetBusy(std::size_t slot, bool busy);
  void SetOwner(std::size_t slot, TaskId owner) { owner_[slot] = owner; }

  const PhonePerfCounters& counters(std::size_t slot) const {
    return counters_[slot];
  }
  PhonePerfCounters& counters(std::size_t slot) { return counters_[slot]; }

  std::size_t CountIdle(std::size_t grade_index) const {
    std::size_t n = 0;
    for (const auto& locality_set : idle_[grade_index]) {
      n += locality_set.size();
    }
    return n;
  }
  std::size_t CountTotal(std::size_t grade_index) const {
    std::size_t n = 0;
    for (std::size_t l = 0; l < kNumLocalities; ++l) {
      n += total_[grade_index][l];
    }
    return n;
  }

  /// Appends up to `count` idle slots of `grade_index` to `out`: local
  /// phones before MSP, registration order within each locality.
  void SelectIdle(std::size_t grade_index, std::size_t count,
                  std::vector<std::size_t>& out) const;

 private:
  /// Parallel SoA arrays, all indexed by slot.
  std::vector<std::uint64_t> id_;
  std::vector<std::uint8_t> grade_;
  std::vector<std::uint8_t> locality_;
  std::vector<std::uint8_t> busy_;
  std::vector<std::uint8_t> live_bits_;
  /// Registration sequence: strictly increasing across Add calls, so idle
  /// ordering survives slot reuse.
  std::vector<std::uint64_t> reg_seq_;
  std::vector<TaskId> owner_;
  std::vector<PhonePerfCounters> counters_;

  std::unordered_map<std::uint64_t, std::size_t> slot_of_;
  /// Idle free-lists per (grade, locality), ordered by (reg_seq, slot) —
  /// views over the SoA arrays, never the other way around.
  std::set<std::pair<std::uint64_t, std::size_t>> idle_[kNumGrades]
                                                       [kNumLocalities];
  std::size_t total_[kNumGrades][kNumLocalities] = {};
  std::vector<std::size_t> free_slots_;
  std::uint64_t next_seq_ = 0;
  std::size_t live_ = 0;
};

}  // namespace simdc::device
