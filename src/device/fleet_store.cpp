#include "device/fleet_store.h"

namespace simdc::device {

std::size_t FleetStore::Add(std::uint64_t id, std::size_t grade_index,
                            std::size_t locality_index) {
  SIMDC_CHECK(grade_index < kNumGrades, "FleetStore: bad grade index");
  SIMDC_CHECK(locality_index < kNumLocalities,
              "FleetStore: bad locality index");
  SIMDC_CHECK(!slot_of_.contains(id),
              "FleetStore: id already registered: " << id);
  std::size_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
    id_[slot] = id;
    grade_[slot] = static_cast<std::uint8_t>(grade_index);
    locality_[slot] = static_cast<std::uint8_t>(locality_index);
    busy_[slot] = 0;
    live_bits_[slot] = 1;
    reg_seq_[slot] = next_seq_;
    owner_[slot] = TaskId();
    counters_[slot] = PhonePerfCounters{};
  } else {
    slot = id_.size();
    id_.push_back(id);
    grade_.push_back(static_cast<std::uint8_t>(grade_index));
    locality_.push_back(static_cast<std::uint8_t>(locality_index));
    busy_.push_back(0);
    live_bits_.push_back(1);
    reg_seq_.push_back(next_seq_);
    owner_.emplace_back();
    counters_.emplace_back();
  }
  slot_of_.emplace(id, slot);
  ++next_seq_;
  ++live_;
  ++total_[grade_index][locality_index];
  idle_[grade_index][locality_index].emplace(reg_seq_[slot], slot);
  return slot;
}

void FleetStore::Remove(std::size_t slot) {
  SIMDC_CHECK(slot < id_.size() && live_bits_[slot] != 0,
              "FleetStore: removing dead slot " << slot);
  SIMDC_CHECK(busy_[slot] == 0, "FleetStore: removing busy slot " << slot);
  const std::size_t g = grade_[slot];
  const std::size_t l = locality_[slot];
  idle_[g][l].erase({reg_seq_[slot], slot});
  --total_[g][l];
  --live_;
  live_bits_[slot] = 0;
  slot_of_.erase(id_[slot]);
  free_slots_.push_back(slot);
}

void FleetStore::SetBusy(std::size_t slot, bool busy) {
  SIMDC_CHECK(slot < id_.size() && live_bits_[slot] != 0,
              "FleetStore: busy bit on dead slot " << slot);
  if ((busy_[slot] != 0) == busy) return;
  busy_[slot] = busy ? 1 : 0;
  const std::size_t g = grade_[slot];
  const std::size_t l = locality_[slot];
  if (busy) {
    idle_[g][l].erase({reg_seq_[slot], slot});
  } else {
    idle_[g][l].emplace(reg_seq_[slot], slot);
  }
}

void FleetStore::SelectIdle(std::size_t grade_index, std::size_t count,
                            std::vector<std::size_t>& out) const {
  for (const auto& locality_set : idle_[grade_index]) {
    for (const auto& [seq, slot] : locality_set) {
      if (out.size() == count) return;
      out.push_back(slot);
    }
  }
}

}  // namespace simdc::device
