#include "device/power_model.h"

#include <algorithm>
#include <cmath>

namespace simdc::device {
namespace {

// Mean currents (mA) reproducing Table I energies over the stage durations.
constexpr std::array<double, 5> kHighCurrentMa = {57.6, 122.4, 40.0, 88.8,
                                                  105.6};
constexpr std::array<double, 5> kLowCurrentMa = {410.4, 432.0, 110.0, 396.0,
                                                 436.8};

constexpr std::size_t StageIndex(ApkStage stage) {
  return static_cast<std::size_t>(static_cast<int>(stage) - 1);
}

}  // namespace

double PowerModel::MeanCurrentMa(ApkStage stage) const {
  const auto& table =
      grade_ == DeviceGrade::kHigh ? kHighCurrentMa : kLowCurrentMa;
  return table[StageIndex(stage)];
}

std::int64_t PowerModel::CurrentNowMicroAmps(ApkStage stage, Rng& rng) const {
  const double mean_ua = MeanCurrentMa(stage) * 1000.0;
  const double noisy = mean_ua * (1.0 + noise_fraction_ * rng.Normal());
  // Android reports discharge as negative current.
  return -static_cast<std::int64_t>(std::llround(std::max(0.0, noisy)));
}

std::int64_t PowerModel::VoltageNowMicroVolts(ApkStage stage, Rng& rng) const {
  // Nominal 3.85 V battery; sags ~1 mV per mA of load, ±8 mV noise.
  const double sag_uv = MeanCurrentMa(stage) * 1000.0;
  const double noise_uv = 8000.0 * rng.Normal();
  const double reading = 3.85e6 - sag_uv + noise_uv;
  return static_cast<std::int64_t>(std::llround(reading));
}

}  // namespace simdc::device
