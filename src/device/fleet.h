// Fleet factories for the physical devices cluster.
//
// §VI-A2: "In the physical devices cluster, we have a default configuration
// of 10 local physical devices and 20 remote MSP devices. ... the physical
// devices are divided into High (4 devices, with more than 8 GB memory) and
// Low (6 devices, with less than 8 GB memory) grades. MSP devices are also
// categorized into High (13 devices) and Low (7 devices) grades."
#pragma once

#include <cstdint>
#include <vector>

#include "device/phone.h"

namespace simdc::device {

/// Builds `high` + `low` local phone specs with model/memory/frequency
/// diversity (deterministic in `seed`).
std::vector<PhoneSpec> MakeLocalFleet(std::size_t high, std::size_t low,
                                      std::uint64_t seed,
                                      std::uint64_t first_id = 0);

/// Builds remote MSP phone specs (remote_msp = true).
std::vector<PhoneSpec> MakeMspFleet(std::size_t high, std::size_t low,
                                    std::uint64_t seed,
                                    std::uint64_t first_id = 1000);

/// The paper's default cluster: 10 local (4 High / 6 Low) plus 20 MSP
/// (13 High / 7 Low).
std::vector<PhoneSpec> MakeDefaultCluster(std::uint64_t seed);

}  // namespace simdc::device
