#include "ml/metrics.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace simdc::ml {

double Accuracy(const LrModel& model, std::span<const data::Example> examples,
                double threshold) {
  if (examples.empty()) return 0.0;
  std::size_t correct = 0;
  for (const auto& example : examples) {
    const bool predicted = model.Predict(example) >= threshold;
    const bool actual = example.label > 0.5f;
    correct += predicted == actual ? 1 : 0;
  }
  return static_cast<double>(correct) / static_cast<double>(examples.size());
}

double LogLoss(const LrModel& model,
               std::span<const data::Example> examples) {
  if (examples.empty()) return 0.0;
  double total = 0.0;
  for (const auto& example : examples) {
    const double p = std::clamp(model.Predict(example), 1e-12, 1.0 - 1e-12);
    total += example.label > 0.5f ? -std::log(p) : -std::log(1.0 - p);
  }
  return total / static_cast<double>(examples.size());
}

namespace {

/// Tie-averaged rank statistic over (score, is_positive) pairs. Sorts
/// `scored` in place; the caller has already ruled out the degenerate
/// single-class / empty cases.
double AucFromScored(std::vector<std::pair<double, bool>>& scored,
                     std::size_t positives) {
  std::sort(scored.begin(), scored.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });

  // Sum of ranks of positives, averaging ranks across tied scores.
  double positive_rank_sum = 0.0;
  std::size_t i = 0;
  while (i < scored.size()) {
    std::size_t j = i;
    while (j < scored.size() && scored[j].first == scored[i].first) ++j;
    const double avg_rank = (static_cast<double>(i + 1) + static_cast<double>(j)) / 2.0;
    for (std::size_t k = i; k < j; ++k) {
      if (scored[k].second) positive_rank_sum += avg_rank;
    }
    i = j;
  }
  const auto np = static_cast<double>(positives);
  const auto nn = static_cast<double>(scored.size() - positives);
  return (positive_rank_sum - np * (np + 1.0) / 2.0) / (np * nn);
}

}  // namespace

double Auc(const LrModel& model, std::span<const data::Example> examples) {
  // Cheap label-only pass first: a single-class (or empty) set is 0.5 by
  // definition and needs neither the scoring pass nor the pair-sort buffer.
  std::size_t positives = 0;
  for (const auto& example : examples) positives += example.label > 0.5f ? 1 : 0;
  if (positives == 0 || positives == examples.size()) return 0.5;

  std::vector<std::pair<double, bool>> scored;
  scored.reserve(examples.size());
  for (const auto& example : examples) {
    scored.emplace_back(model.Score(example), example.label > 0.5f);
  }
  return AucFromScored(scored, positives);
}

EvalReport Evaluate(const LrModel& model,
                    std::span<const data::Example> examples) {
  // Hot path (called twice per FL round): score every example exactly once
  // and derive all three metrics from that single forward pass, instead of
  // the three independent passes Accuracy/LogLoss/Auc would make.
  EvalReport report;
  report.examples = examples.size();
  report.auc = 0.5;
  if (examples.empty()) return report;

  std::vector<std::pair<double, bool>> scored;
  scored.reserve(examples.size());
  std::size_t correct = 0;
  std::size_t positives = 0;
  double total_logloss = 0.0;
  for (const auto& example : examples) {
    const double score = model.Score(example);
    const double probability = 1.0 / (1.0 + std::exp(-score));
    const bool actual = example.label > 0.5f;
    correct += (probability >= 0.5) == actual ? 1 : 0;
    const double p = std::clamp(probability, 1e-12, 1.0 - 1e-12);
    total_logloss += actual ? -std::log(p) : -std::log(1.0 - p);
    positives += actual ? 1 : 0;
    scored.emplace_back(score, actual);
  }
  const auto n = static_cast<double>(examples.size());
  report.accuracy = static_cast<double>(correct) / n;
  report.logloss = total_logloss / n;
  if (positives > 0 && positives < examples.size()) {
    report.auc = AucFromScored(scored, positives);
  }
  return report;
}

}  // namespace simdc::ml
