#include "ml/metrics.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <vector>

namespace simdc::ml {

namespace {
// Crossover measured on the dev container (bench_micro_kernels
// auc_rank_{sort,radix} ops): radix wins clearly by a few thousand
// scores; below that std::sort's cache locality is competitive.
std::size_t g_auc_radix_threshold = 4096;
}  // namespace

std::size_t GetAucRadixThreshold() { return g_auc_radix_threshold; }
void SetAucRadixThreshold(std::size_t min_examples) {
  g_auc_radix_threshold = min_examples;
}

double Accuracy(const LrModel& model, std::span<const data::Example> examples,
                double threshold) {
  if (examples.empty()) return 0.0;
  std::size_t correct = 0;
  for (const auto& example : examples) {
    const bool predicted = model.Predict(example) >= threshold;
    const bool actual = example.label > 0.5f;
    correct += predicted == actual ? 1 : 0;
  }
  return static_cast<double>(correct) / static_cast<double>(examples.size());
}

double LogLoss(const LrModel& model,
               std::span<const data::Example> examples) {
  if (examples.empty()) return 0.0;
  double total = 0.0;
  for (const auto& example : examples) {
    const double p = std::clamp(model.Predict(example), 1e-12, 1.0 - 1e-12);
    total += example.label > 0.5f ? -std::log(p) : -std::log(1.0 - p);
  }
  return total / static_cast<double>(examples.size());
}

namespace {

/// Monotone 64-bit key for a (finite) double: key(a) < key(b) iff a < b,
/// except -0.0 < +0.0 (numerically equal; the tie walk below compares
/// scores, not keys, so the pair still lands in one tie group). Sign bit
/// flipped for non-negatives, all bits flipped for negatives — the
/// classic order-preserving IEEE-754 remap.
std::uint64_t OrderedKey(double value) {
  std::uint64_t bits;
  std::memcpy(&bits, &value, sizeof(bits));
  return (bits & 0x8000000000000000ull) != 0 ? ~bits
                                             : bits ^ 0x8000000000000000ull;
}

/// Stable LSD radix sort of (score, positive) pairs by ascending score.
/// 8 digit histograms are built in one pass; passes whose digit is
/// constant across all keys (common: CTR scores share exponent bytes)
/// are skipped outright.
void RadixSortByScore(std::vector<std::pair<double, bool>>& scored) {
  const std::size_t n = scored.size();
  if (n < 2) return;
  struct Keyed {
    std::uint64_t key;
    std::pair<double, bool> value;
  };
  std::vector<Keyed> from(n);
  std::vector<Keyed> to(n);
  constexpr std::size_t kDigits = 8;
  std::array<std::array<std::size_t, 256>, kDigits> counts{};
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t key = OrderedKey(scored[i].first);
    from[i] = {key, scored[i]};
    for (std::size_t d = 0; d < kDigits; ++d) {
      ++counts[d][(key >> (8 * d)) & 0xff];
    }
  }
  Keyed* src = from.data();
  Keyed* dst = to.data();
  for (std::size_t d = 0; d < kDigits; ++d) {
    auto& count = counts[d];
    const std::size_t first_bucket = (src[0].key >> (8 * d)) & 0xff;
    if (count[first_bucket] == n) continue;  // constant digit: no-op pass
    std::array<std::size_t, 256> offsets;
    std::size_t running = 0;
    for (std::size_t b = 0; b < 256; ++b) {
      offsets[b] = running;
      running += count[b];
    }
    for (std::size_t i = 0; i < n; ++i) {
      dst[offsets[(src[i].key >> (8 * d)) & 0xff]++] = src[i];
    }
    std::swap(src, dst);
  }
  for (std::size_t i = 0; i < n; ++i) scored[i] = src[i].value;
}

/// Tie-averaged rank statistic over (score, is_positive) pairs. Sorts
/// `scored` in place — radix at GetAucRadixThreshold() scores and above,
/// comparison sort below; identical bits either way. The caller has
/// already ruled out the degenerate single-class / empty cases.
double AucFromScored(std::vector<std::pair<double, bool>>& scored,
                     std::size_t positives) {
  if (scored.size() >= GetAucRadixThreshold()) {
    RadixSortByScore(scored);
  } else {
    std::sort(scored.begin(), scored.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
  }

  // Sum of ranks of positives, averaging ranks across tied scores.
  double positive_rank_sum = 0.0;
  std::size_t i = 0;
  while (i < scored.size()) {
    std::size_t j = i;
    while (j < scored.size() && scored[j].first == scored[i].first) ++j;
    const double avg_rank = (static_cast<double>(i + 1) + static_cast<double>(j)) / 2.0;
    for (std::size_t k = i; k < j; ++k) {
      if (scored[k].second) positive_rank_sum += avg_rank;
    }
    i = j;
  }
  const auto np = static_cast<double>(positives);
  const auto nn = static_cast<double>(scored.size() - positives);
  return (positive_rank_sum - np * (np + 1.0) / 2.0) / (np * nn);
}

}  // namespace

double Auc(const LrModel& model, std::span<const data::Example> examples) {
  // Cheap label-only pass first: a single-class (or empty) set is 0.5 by
  // definition and needs neither the scoring pass nor the pair-sort buffer.
  std::size_t positives = 0;
  for (const auto& example : examples) positives += example.label > 0.5f ? 1 : 0;
  if (positives == 0 || positives == examples.size()) return 0.5;

  std::vector<std::pair<double, bool>> scored;
  scored.reserve(examples.size());
  for (const auto& example : examples) {
    scored.emplace_back(model.Score(example), example.label > 0.5f);
  }
  return AucFromScored(scored, positives);
}

EvalReport Evaluate(const LrModel& model,
                    std::span<const data::Example> examples) {
  // Hot path (called twice per FL round): score every example exactly once
  // and derive all three metrics from that single forward pass, instead of
  // the three independent passes Accuracy/LogLoss/Auc would make.
  EvalReport report;
  report.examples = examples.size();
  report.auc = 0.5;
  if (examples.empty()) return report;

  std::vector<std::pair<double, bool>> scored;
  scored.reserve(examples.size());
  std::size_t correct = 0;
  std::size_t positives = 0;
  double total_logloss = 0.0;
  for (const auto& example : examples) {
    const double score = model.Score(example);
    const double probability = 1.0 / (1.0 + std::exp(-score));
    const bool actual = example.label > 0.5f;
    correct += (probability >= 0.5) == actual ? 1 : 0;
    const double p = std::clamp(probability, 1e-12, 1.0 - 1e-12);
    total_logloss += actual ? -std::log(p) : -std::log(1.0 - p);
    positives += actual ? 1 : 0;
    scored.emplace_back(score, actual);
  }
  const auto n = static_cast<double>(examples.size());
  report.accuracy = static_cast<double>(correct) / n;
  report.logloss = total_logloss / n;
  if (positives > 0 && positives < examples.size()) {
    report.auc = AucFromScored(scored, positives);
  }
  return report;
}

}  // namespace simdc::ml
