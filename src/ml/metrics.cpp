#include "ml/metrics.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace simdc::ml {

double Accuracy(const LrModel& model, std::span<const data::Example> examples,
                double threshold) {
  if (examples.empty()) return 0.0;
  std::size_t correct = 0;
  for (const auto& example : examples) {
    const bool predicted = model.Predict(example) >= threshold;
    const bool actual = example.label > 0.5f;
    correct += predicted == actual ? 1 : 0;
  }
  return static_cast<double>(correct) / static_cast<double>(examples.size());
}

double LogLoss(const LrModel& model,
               std::span<const data::Example> examples) {
  if (examples.empty()) return 0.0;
  double total = 0.0;
  for (const auto& example : examples) {
    const double p = std::clamp(model.Predict(example), 1e-12, 1.0 - 1e-12);
    total += example.label > 0.5f ? -std::log(p) : -std::log(1.0 - p);
  }
  return total / static_cast<double>(examples.size());
}

double Auc(const LrModel& model, std::span<const data::Example> examples) {
  std::vector<std::pair<double, bool>> scored;
  scored.reserve(examples.size());
  std::size_t positives = 0;
  for (const auto& example : examples) {
    const bool positive = example.label > 0.5f;
    positives += positive ? 1 : 0;
    scored.emplace_back(model.Score(example), positive);
  }
  const std::size_t negatives = scored.size() - positives;
  if (positives == 0 || negatives == 0) return 0.5;

  std::sort(scored.begin(), scored.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });

  // Sum of ranks of positives, averaging ranks across tied scores.
  double positive_rank_sum = 0.0;
  std::size_t i = 0;
  while (i < scored.size()) {
    std::size_t j = i;
    while (j < scored.size() && scored[j].first == scored[i].first) ++j;
    const double avg_rank = (static_cast<double>(i + 1) + static_cast<double>(j)) / 2.0;
    for (std::size_t k = i; k < j; ++k) {
      if (scored[k].second) positive_rank_sum += avg_rank;
    }
    i = j;
  }
  const auto np = static_cast<double>(positives);
  const auto nn = static_cast<double>(negatives);
  return (positive_rank_sum - np * (np + 1.0) / 2.0) / (np * nn);
}

EvalReport Evaluate(const LrModel& model,
                    std::span<const data::Example> examples) {
  EvalReport report;
  report.accuracy = Accuracy(model, examples);
  report.logloss = LogLoss(model, examples);
  report.auc = Auc(model, examples);
  report.examples = examples.size();
  return report;
}

}  // namespace simdc::ml
