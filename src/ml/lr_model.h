// Logistic-regression CTR model over hashed sparse features.
//
// The paper (§VI-A) trains LR with FedAvg (learning rate 1e-3, 10 local
// epochs) because "the industry currently favors simpler and more efficient
// models for CTR prediction in edge-cloud scenarios". The model is a dense
// weight vector over the feature-hashing space plus a bias.
//
// Payload codecs: device→cloud update blobs can be serialized at three
// precisions (FlExperimentConfig::payload_codec). kFp32 is the historical
// wire format, byte-identical to what ToBytes always produced; kFp16 and
// kInt8 (per-tensor scale) cut payload bytes 2×/4× for the million-device
// memory plane, with dequantization running in the parallel decode plane
// (cloud::BlobModelDecoder → FromBytesShared). Decoding auto-detects the
// codec from the blob header, so mixed-codec stores decode uniformly.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/error.h"
#include "data/example.h"

namespace simdc::ml {

/// Wire precision of a serialized model blob.
enum class PayloadCodec : std::uint8_t {
  /// dim:u32, bias:f32, weights:dim×f32 — the historical format, bit-
  /// identical to pre-codec blobs (no header tag, for compatibility).
  kFp32 = 0,
  /// IEEE 754 half-precision weights (round-to-nearest-even): ~2× smaller.
  kFp16 = 1,
  /// Symmetric per-tensor int8: scale = max|w|/127, w ≈ q·scale: ~4× smaller.
  kInt8 = 2,
};

const char* ToString(PayloadCodec codec);

class LrModel {
 public:
  explicit LrModel(std::uint32_t dim) : weights_(dim, 0.0f) {}

  std::uint32_t dim() const { return static_cast<std::uint32_t>(weights_.size()); }

  /// Raw score (log-odds) for an example.
  double Score(const data::Example& example) const {
    double s = bias_;
    for (std::uint32_t idx : example.features) {
      SIMDC_DCHECK(idx < weights_.size(),
                   "LrModel::Score: feature index " << idx
                       << " out of range for dim " << weights_.size());
      s += weights_[idx];
    }
    return s;
  }

  /// Click probability.
  double Predict(const data::Example& example) const {
    return 1.0 / (1.0 + std::exp(-Score(example)));
  }

  std::span<float> weights() { return weights_; }
  std::span<const float> weights() const { return weights_; }
  float& bias() { return bias_; }
  float bias() const { return bias_; }

  void SetZero() {
    std::fill(weights_.begin(), weights_.end(), 0.0f);
    bias_ = 0.0f;
  }

  /// L2 distance to another model (same dim required).
  double DistanceTo(const LrModel& other) const;

  /// Wire format (see PayloadCodec) — the blob devices upload to storage.
  std::vector<std::byte> ToBytes(PayloadCodec codec = PayloadCodec::kFp32) const;
  /// Serializes in place into `out`, which must be exactly
  /// EncodedSize(codec) bytes — the zero-allocation path the engine uses to
  /// write payloads straight into reusable per-device scratch buffers.
  void EncodeTo(std::span<std::byte> out, PayloadCodec codec) const;
  /// Codec-aware decode: auto-detects the wire format from the header.
  static Result<LrModel> FromBytes(std::span<const std::byte> bytes);
  /// Shared-ownership decode — the entry point of the parallel payload
  /// plane (flow::DecodedUpdate). Same validation and bits as FromBytes;
  /// the shared_ptr lets a decoded model travel the shard merge plane and
  /// be buffered/re-queued without O(dim) copies. For kFp16/kInt8 blobs
  /// this is where dequantization runs — on the shard workers, in parallel.
  static Result<std::shared_ptr<const LrModel>> FromBytesShared(
      std::span<const std::byte> bytes);

  /// Serialized size in bytes (what DeviceFlow/storage accounting uses).
  std::size_t SerializedSize() const {
    return sizeof(std::uint32_t) + sizeof(float) +
           weights_.size() * sizeof(float);
  }
  /// Serialized size under `codec`.
  std::size_t EncodedSize(PayloadCodec codec) const;

 private:
  std::vector<float> weights_;
  float bias_ = 0.0f;
};

}  // namespace simdc::ml
