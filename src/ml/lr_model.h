// Logistic-regression CTR model over hashed sparse features.
//
// The paper (§VI-A) trains LR with FedAvg (learning rate 1e-3, 10 local
// epochs) because "the industry currently favors simpler and more efficient
// models for CTR prediction in edge-cloud scenarios". The model is a dense
// weight vector over the feature-hashing space plus a bias.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/error.h"
#include "data/example.h"

namespace simdc::ml {

class LrModel {
 public:
  explicit LrModel(std::uint32_t dim) : weights_(dim, 0.0f) {}

  std::uint32_t dim() const { return static_cast<std::uint32_t>(weights_.size()); }

  /// Raw score (log-odds) for an example.
  double Score(const data::Example& example) const {
    double s = bias_;
    for (std::uint32_t idx : example.features) s += weights_[idx];
    return s;
  }

  /// Click probability.
  double Predict(const data::Example& example) const {
    return 1.0 / (1.0 + std::exp(-Score(example)));
  }

  std::span<float> weights() { return weights_; }
  std::span<const float> weights() const { return weights_; }
  float& bias() { return bias_; }
  float bias() const { return bias_; }

  void SetZero() {
    std::fill(weights_.begin(), weights_.end(), 0.0f);
    bias_ = 0.0f;
  }

  /// L2 distance to another model (same dim required).
  double DistanceTo(const LrModel& other) const;

  /// Wire format: dim, bias, weights — the blob devices upload to storage.
  std::vector<std::byte> ToBytes() const;
  static Result<LrModel> FromBytes(std::span<const std::byte> bytes);
  /// Shared-ownership decode — the entry point of the parallel payload
  /// plane (flow::DecodedUpdate). Same validation and bits as FromBytes;
  /// the shared_ptr lets a decoded model travel the shard merge plane and
  /// be buffered/re-queued without O(dim) copies.
  static Result<std::shared_ptr<const LrModel>> FromBytesShared(
      std::span<const std::byte> bytes);

  /// Serialized size in bytes (what DeviceFlow/storage accounting uses).
  std::size_t SerializedSize() const {
    return sizeof(std::uint32_t) + sizeof(float) +
           weights_.size() * sizeof(float);
  }

 private:
  std::vector<float> weights_;
  float bias_ = 0.0f;
};

}  // namespace simdc::ml
