// Local-training operators.
//
// §VI-B2 of the paper: "the training operators used in logical simulation
// are based on the PyMNN architecture, while device simulation employs
// operators from the C++ MNN architecture used in actual business SDKs.
// ... disparities in hardware architecture and compilation optimizations
// ... can lead to variations when executing the same operator across
// platforms." Fig. 6 verifies these variations keep ACC differences below
// 0.5%. We reproduce the situation with two mathematically-equivalent but
// numerically-distinct SGD kernels:
//   * ServerLrOperator  — double-precision accumulation, canonical feature
//     order (stands in for PyMNN on HPC servers);
//   * MobileLrOperator  — single-precision accumulation, reversed feature
//     traversal and fused update (stands in for C++ MNN on phones).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string_view>
#include <vector>

#include "data/example.h"
#include "ml/lr_model.h"

namespace simdc::ml {

/// Hyper-parameters for one local-training call (paper defaults).
struct TrainConfig {
  double learning_rate = 1e-3;
  std::size_t epochs = 10;
  /// Shuffle examples between epochs; seed keeps runs reproducible.
  bool shuffle = true;
  std::uint64_t shuffle_seed = 0;
};

/// Abstract local-training operator (one step of the "operator flow").
class TrainingOperator {
 public:
  virtual ~TrainingOperator() = default;

  virtual std::string_view name() const = 0;

  /// Trains `model` in place on `examples` for config.epochs passes of SGD.
  virtual void Train(LrModel& model, std::span<const data::Example> examples,
                     const TrainConfig& config) const = 0;
};

/// Double-precision server kernel (PyMNN stand-in).
class ServerLrOperator final : public TrainingOperator {
 public:
  std::string_view name() const override { return "lr_sgd/server"; }
  void Train(LrModel& model, std::span<const data::Example> examples,
             const TrainConfig& config) const override;

 private:
  /// Reused epoch-order scratch: Train is called once per participant per
  /// round, and reallocating the permutation every call showed up in the
  /// fig8 profiles. Mutable because Train is logically const; operators are
  /// created per training call in the engine, so there is no cross-thread
  /// sharing to guard.
  mutable std::vector<std::size_t> order_scratch_;
};

/// Single-precision mobile kernel (C++ MNN stand-in).
class MobileLrOperator final : public TrainingOperator {
 public:
  std::string_view name() const override { return "lr_sgd/mobile"; }
  void Train(LrModel& model, std::span<const data::Example> examples,
             const TrainConfig& config) const override;

 private:
  /// Same reusable scratch as ServerLrOperator (see that comment).
  mutable std::vector<std::size_t> order_scratch_;
};

/// Shared factory: the platform selects the operator per execution venue.
enum class OperatorVenue { kServer, kMobile };
std::unique_ptr<TrainingOperator> MakeLrOperator(OperatorVenue venue);

}  // namespace simdc::ml
