#include "ml/fedavg.h"

#include <algorithm>

namespace simdc::ml {

Status FedAvgAggregator::Add(const LrModel& model, std::size_t sample_count) {
  if (model.dim() != dim()) {
    return InvalidArgument("FedAvg: model dim " + std::to_string(model.dim()) +
                           " != aggregator dim " + std::to_string(dim()));
  }
  if (sample_count == 0) {
    return InvalidArgument("FedAvg: client update with zero samples");
  }
  const auto w = static_cast<double>(sample_count);
  const auto weights = model.weights();
  for (std::size_t i = 0; i < accumulator_.size(); ++i) {
    accumulator_[i] += w * static_cast<double>(weights[i]);
  }
  bias_accumulator_ += w * static_cast<double>(model.bias());
  total_samples_ += sample_count;
  ++clients_;
  return Status::Ok();
}

Result<LrModel> FedAvgAggregator::Aggregate() const {
  if (total_samples_ == 0) {
    return FailedPrecondition("FedAvg: no client updates to aggregate");
  }
  LrModel model(dim());
  const auto total = static_cast<double>(total_samples_);
  auto weights = model.weights();
  for (std::size_t i = 0; i < accumulator_.size(); ++i) {
    weights[i] = static_cast<float>(accumulator_[i] / total);
  }
  model.bias() = static_cast<float>(bias_accumulator_ / total);
  return model;
}

void FedAvgAggregator::Reset() {
  std::fill(accumulator_.begin(), accumulator_.end(), 0.0);
  bias_accumulator_ = 0.0;
  total_samples_ = 0;
  clients_ = 0;
}

Result<LrModel> FedAvg(std::span<const ClientUpdate> updates) {
  if (updates.empty()) {
    return InvalidArgument("FedAvg: empty update set");
  }
  FedAvgAggregator aggregator(updates.front().model.dim());
  for (const auto& update : updates) {
    const Status added = aggregator.Add(update.model, update.sample_count);
    if (!added.ok()) return added.error();
  }
  return aggregator.Aggregate();
}

}  // namespace simdc::ml
