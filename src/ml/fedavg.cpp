#include "ml/fedavg.h"

#include <algorithm>

namespace simdc::ml {

namespace kernels {
namespace {

/// Branch-free Knuth TwoSum: s = fl(a + b), err the exact residual so
/// that a + b == s + err. No magnitude precondition, no branches — one
/// straight-line dependency chain per lane, so the surrounding loops
/// vectorize.
inline void TwoSum(double a, double b, double& s, double& err) {
  s = a + b;
  const double bb = s - a;
  err = (a - (s - bb)) + (b - bb);
}

/// One cascade step shared by every kernel: folds term `t` into the
/// (sum, c1, c2) triple. Two error-free TwoSums; only the final c2 += e2
/// rounds, which is what bounds the order sensitivity (see fedavg.h).
inline void CascadeStep(double t, double& sum, double& c1, double& c2) {
  double s, e1;
  TwoSum(sum, t, s, e1);
  sum = s;
  double s2, e2;
  TwoSum(c1, e1, s2, e2);
  c1 = s2;
  c2 += e2;
}

}  // namespace

void CascadeAddScalar(std::span<const float> weights, double scale,
                      std::span<double> sum, std::span<double> c1,
                      std::span<double> c2) {
  for (std::size_t i = 0; i < weights.size(); ++i) {
    CascadeStep(scale * static_cast<double>(weights[i]), sum[i], c1[i],
                c2[i]);
  }
}

void CascadeAdd(const float* SIMDC_RESTRICT weights, std::size_t n,
                double scale, double* SIMDC_RESTRICT sum,
                double* SIMDC_RESTRICT c1, double* SIMDC_RESTRICT c2) {
  for (std::size_t i = 0; i < n; ++i) {
    CascadeStep(scale * static_cast<double>(weights[i]), sum[i], c1[i],
                c2[i]);
  }
}

void CascadeMerge(const double* SIMDC_RESTRICT other_sum,
                  const double* SIMDC_RESTRICT other_c1,
                  const double* SIMDC_RESTRICT other_c2, std::size_t n,
                  double* SIMDC_RESTRICT sum, double* SIMDC_RESTRICT c1,
                  double* SIMDC_RESTRICT c2) {
  // Each of the other cascade's terms is itself a partial-sum term inside
  // the invariance window, so folding the three through the same cascade
  // keeps the merged value within the window of the flat serial sum.
  for (std::size_t i = 0; i < n; ++i) {
    CascadeStep(other_sum[i], sum[i], c1[i], c2[i]);
    CascadeStep(other_c1[i], sum[i], c1[i], c2[i]);
    CascadeStep(other_c2[i], sum[i], c1[i], c2[i]);
  }
}

}  // namespace kernels

Status FedAvgAggregator::Add(const LrModel& model, std::size_t sample_count) {
  if (model.dim() != dim()) {
    return InvalidArgument("FedAvg: model dim " + std::to_string(model.dim()) +
                           " != aggregator dim " + std::to_string(dim()));
  }
  if (sample_count == 0) {
    return InvalidArgument("FedAvg: client update with zero samples");
  }
  const auto w = static_cast<double>(sample_count);
  const auto weights = model.weights();
  kernels::CascadeAdd(weights.data(), accumulator_.size(), w,
                      accumulator_.data(), compensation1_.data(),
                      compensation2_.data());
  kernels::CascadeStep(w * static_cast<double>(model.bias()),
                       bias_accumulator_, bias_compensation1_,
                       bias_compensation2_);
  total_samples_ += sample_count;
  ++clients_;
  return Status::Ok();
}

void FedAvgAggregator::MergeFrom(const FedAvgAggregator& other) {
  SIMDC_CHECK(other.dim() == dim(),
              "FedAvgAggregator::MergeFrom: dimension mismatch");
  kernels::CascadeMerge(other.accumulator_.data(), other.compensation1_.data(),
                        other.compensation2_.data(), accumulator_.size(),
                        accumulator_.data(), compensation1_.data(),
                        compensation2_.data());
  kernels::CascadeStep(other.bias_accumulator_, bias_accumulator_,
                       bias_compensation1_, bias_compensation2_);
  kernels::CascadeStep(other.bias_compensation1_, bias_accumulator_,
                       bias_compensation1_, bias_compensation2_);
  kernels::CascadeStep(other.bias_compensation2_, bias_accumulator_,
                       bias_compensation1_, bias_compensation2_);
  total_samples_ += other.total_samples_;
  clients_ += other.clients_;
}

Result<LrModel> FedAvgAggregator::Aggregate() const {
  if (total_samples_ == 0) {
    return FailedPrecondition("FedAvg: no client updates to aggregate");
  }
  LrModel model(dim());
  const auto total = static_cast<double>(total_samples_);
  auto weights = model.weights();
  const double* SIMDC_RESTRICT sum = accumulator_.data();
  const double* SIMDC_RESTRICT c1 = compensation1_.data();
  const double* SIMDC_RESTRICT c2 = compensation2_.data();
  float* SIMDC_RESTRICT out = weights.data();
  for (std::size_t i = 0; i < accumulator_.size(); ++i) {
    out[i] =
        static_cast<float>(kernels::CascadeValue(sum[i], c1[i], c2[i]) / total);
  }
  model.bias() = static_cast<float>(
      kernels::CascadeValue(bias_accumulator_, bias_compensation1_,
                            bias_compensation2_) /
      total);
  return model;
}

void FedAvgAggregator::Reset() {
  std::fill(accumulator_.begin(), accumulator_.end(), 0.0);
  std::fill(compensation1_.begin(), compensation1_.end(), 0.0);
  std::fill(compensation2_.begin(), compensation2_.end(), 0.0);
  bias_accumulator_ = 0.0;
  bias_compensation1_ = 0.0;
  bias_compensation2_ = 0.0;
  total_samples_ = 0;
  clients_ = 0;
}

Result<LrModel> FedAvg(std::span<const ClientUpdate> updates) {
  if (updates.empty()) {
    return InvalidArgument("FedAvg: empty update set");
  }
  FedAvgAggregator aggregator(updates.front().model.dim());
  for (const auto& update : updates) {
    const Status added = aggregator.Add(update.model, update.sample_count);
    if (!added.ok()) return added.error();
  }
  return aggregator.Aggregate();
}

}  // namespace simdc::ml
