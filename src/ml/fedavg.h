// FedAvg aggregation (McMahan et al., AISTATS 2017) — the aggregation
// strategy the paper uses for its CTR experiments (§II-A, §VI-A).
//
// The global objective is min_w Σ_k p_k F_k(w; D_k) with p_k proportional
// to client dataset sizes; one aggregation step averages client models
// weighted by their sample counts.
//
// Order invariance. The accumulator keeps each element as a three-term
// compensated cascade (sum, c1, c2): every Add runs two error-free TwoSum
// transforms and pushes the residual into c2, so the represented value
// sum + c1 + c2 tracks the exact Σ w_k·x_k[i] to a relative error of
// roughly n³·2⁻¹⁵⁹ (n = terms added). Reordering or regrouping the same
// multiset of updates perturbs the represented value only inside that
// window — ~2⁻⁹⁹ at a million updates — which is orders of magnitude
// below where the final double round-off (2⁻⁵³) and float publication
// (2⁻²⁴) can observe it. That is what lets per-shard partial aggregators
// (cloud::AggregatePlane::kPartialSum) accumulate in parallel and merge
// in any fixed order while reproducing the serial legacy accumulate
// bit-for-bit; tests/ml_test.cpp pins the invariance with adversarial
// shuffles and shard splits.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "common/error.h"
#include "common/restrict.h"
#include "ml/lr_model.h"

namespace simdc::ml {

/// One client's contribution to a round.
struct ClientUpdate {
  LrModel model;
  /// Number of local training samples (p_k numerator).
  std::size_t sample_count = 0;
  /// Identifier kept for diagnostics.
  std::uint64_t client_id = 0;
};

namespace kernels {

/// Scalar reference cascade: for each i, folds scale·weights[i] into the
/// (sum, c1, c2) triple with two TwoSum transforms. Defines the numerics
/// every other accumulate kernel must reproduce bit-for-bit.
void CascadeAddScalar(std::span<const float> weights, double scale,
                      std::span<double> sum, std::span<double> c1,
                      std::span<double> c2);

/// Production kernel: the same cascade as CascadeAddScalar over
/// restrict-qualified contiguous arrays — branch-free TwoSum per lane, no
/// aliasing checks, auto-vectorizable. Bit-identical to the scalar
/// reference (bench_micro_kernels asserts it; fedavg_add_scalar vs
/// fedavg_add_simd measures it).
void CascadeAdd(const float* SIMDC_RESTRICT weights, std::size_t n,
                double scale, double* SIMDC_RESTRICT sum,
                double* SIMDC_RESTRICT c1, double* SIMDC_RESTRICT c2);

/// Folds another cascade's three terms into (sum, c1, c2) — the exact
/// shard-reduce step. Restrict-qualified like CascadeAdd.
void CascadeMerge(const double* SIMDC_RESTRICT other_sum,
                  const double* SIMDC_RESTRICT other_c1,
                  const double* SIMDC_RESTRICT other_c2, std::size_t n,
                  double* SIMDC_RESTRICT sum, double* SIMDC_RESTRICT c1,
                  double* SIMDC_RESTRICT c2);

/// Rounds a cascade triple to one double; the fixed evaluation order
/// (low terms first) is part of the bit-identity contract.
inline double CascadeValue(double sum, double c1, double c2) {
  return sum + (c1 + c2);
}

}  // namespace kernels

/// Streaming FedAvg aggregator. Feed updates as they arrive (possibly
/// across a DeviceFlow-shaped schedule), then call Aggregate() when the
/// trigger condition fires. Accumulation is order-invariant (see the file
/// comment), so disjoint partial aggregators merged via MergeFrom produce
/// the same published model as one serial aggregator fed every update.
class FedAvgAggregator {
 public:
  explicit FedAvgAggregator(std::uint32_t dim)
      : accumulator_(dim), compensation1_(dim), compensation2_(dim) {}

  /// Adds one client model weighted by its sample count.
  Status Add(const LrModel& model, std::size_t sample_count);

  /// Folds `other`'s accumulated state into this aggregator (partial-sum
  /// reduction). Both must share a dimension. `other` is unchanged.
  void MergeFrom(const FedAvgAggregator& other);

  /// Weighted-average model of everything added since the last Reset.
  /// Fails when no samples were added.
  Result<LrModel> Aggregate() const;

  void Reset();

  std::size_t clients() const { return clients_; }
  std::size_t total_samples() const { return total_samples_; }

  /// Raw cascade state, exposed bit-exactly for checkpointing: the primary
  /// sums and the two compensation planes.
  std::span<const double> accumulator() const { return accumulator_; }
  std::span<const double> compensation1() const { return compensation1_; }
  std::span<const double> compensation2() const { return compensation2_; }
  double bias_accumulator() const { return bias_accumulator_; }
  double bias_compensation1() const { return bias_compensation1_; }
  double bias_compensation2() const { return bias_compensation2_; }

  /// Restores cascade state from a checkpoint. All three spans must match
  /// this aggregator's dimension.
  void Restore(std::span<const double> accumulator,
               std::span<const double> compensation1,
               std::span<const double> compensation2, double bias_accumulator,
               double bias_compensation1, double bias_compensation2,
               std::size_t total_samples, std::size_t clients) {
    SIMDC_CHECK(accumulator.size() == accumulator_.size() &&
                    compensation1.size() == accumulator_.size() &&
                    compensation2.size() == accumulator_.size(),
                "FedAvgAggregator::Restore: dimension mismatch");
    std::copy(accumulator.begin(), accumulator.end(), accumulator_.begin());
    std::copy(compensation1.begin(), compensation1.end(),
              compensation1_.begin());
    std::copy(compensation2.begin(), compensation2.end(),
              compensation2_.begin());
    bias_accumulator_ = bias_accumulator;
    bias_compensation1_ = bias_compensation1;
    bias_compensation2_ = bias_compensation2;
    total_samples_ = total_samples;
    clients_ = clients;
  }

 private:
  /// Per-element cascade: accumulator_ carries the primary sums of
  /// weight·sample_count terms, compensation1_/compensation2_ the two
  /// error planes (see kernels::CascadeAdd).
  std::vector<double> accumulator_;
  std::vector<double> compensation1_;
  std::vector<double> compensation2_;
  double bias_accumulator_ = 0.0;
  double bias_compensation1_ = 0.0;
  double bias_compensation2_ = 0.0;
  std::size_t total_samples_ = 0;
  std::size_t clients_ = 0;
  std::uint32_t dim() const {
    return static_cast<std::uint32_t>(accumulator_.size());
  }
};

/// One-shot convenience: FedAvg over a batch of updates.
Result<LrModel> FedAvg(std::span<const ClientUpdate> updates);

}  // namespace simdc::ml
