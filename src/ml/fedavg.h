// FedAvg aggregation (McMahan et al., AISTATS 2017) — the aggregation
// strategy the paper uses for its CTR experiments (§II-A, §VI-A).
//
// The global objective is min_w Σ_k p_k F_k(w; D_k) with p_k proportional
// to client dataset sizes; one aggregation step averages client models
// weighted by their sample counts.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "common/error.h"
#include "ml/lr_model.h"

namespace simdc::ml {

/// One client's contribution to a round.
struct ClientUpdate {
  LrModel model;
  /// Number of local training samples (p_k numerator).
  std::size_t sample_count = 0;
  /// Identifier kept for diagnostics.
  std::uint64_t client_id = 0;
};

/// Streaming FedAvg aggregator. Feed updates as they arrive (possibly
/// across a DeviceFlow-shaped schedule), then call Aggregate() when the
/// trigger condition fires.
class FedAvgAggregator {
 public:
  explicit FedAvgAggregator(std::uint32_t dim) : accumulator_(dim) {}

  /// Adds one client model weighted by its sample count.
  Status Add(const LrModel& model, std::size_t sample_count);

  /// Weighted-average model of everything added since the last Reset.
  /// Fails when no samples were added.
  Result<LrModel> Aggregate() const;

  void Reset();

  std::size_t clients() const { return clients_; }
  std::size_t total_samples() const { return total_samples_; }

  /// Raw accumulator state, exposed bit-exactly for checkpointing.
  std::span<const double> accumulator() const { return accumulator_; }
  double bias_accumulator() const { return bias_accumulator_; }

  /// Restores accumulator state from a checkpoint. `accumulator` must
  /// match this aggregator's dimension.
  void Restore(std::span<const double> accumulator, double bias_accumulator,
               std::size_t total_samples, std::size_t clients) {
    SIMDC_CHECK(accumulator.size() == accumulator_.size(),
                "FedAvgAggregator::Restore: dimension mismatch");
    std::copy(accumulator.begin(), accumulator.end(), accumulator_.begin());
    bias_accumulator_ = bias_accumulator;
    total_samples_ = total_samples;
    clients_ = clients;
  }

 private:
  /// Accumulates weight * sample_count in double precision.
  std::vector<double> accumulator_;
  double bias_accumulator_ = 0.0;
  std::size_t total_samples_ = 0;
  std::size_t clients_ = 0;
  std::uint32_t dim() const {
    return static_cast<std::uint32_t>(accumulator_.size());
  }
};

/// One-shot convenience: FedAvg over a batch of updates.
Result<LrModel> FedAvg(std::span<const ClientUpdate> updates);

}  // namespace simdc::ml
