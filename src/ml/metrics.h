// Evaluation metrics for the CTR task: accuracy, log-loss and AUC.
#pragma once

#include <cstddef>
#include <span>

#include "data/example.h"
#include "ml/lr_model.h"

namespace simdc::ml {

/// Score count at or above which the AUC rank statistic ranks via an LSD
/// radix sort over order-preserving 64-bit score keys instead of the
/// comparison pair-sort (the eval bottleneck once scoring was cut to one
/// pass). Both paths are EXACT and produce bit-identical AUC — the radix
/// key is the IEEE-754 bit pattern monotonically remapped, not a lossy
/// quantization, and tie groups are still detected by score equality (so
/// -0.0/+0.0 stay one group). Below the cap the comparison sort's cache
/// behavior wins; 0 forces radix everywhere, SIZE_MAX disables it.
std::size_t GetAucRadixThreshold();
void SetAucRadixThreshold(std::size_t min_examples);

/// Fraction of examples where thresholded prediction matches the label.
double Accuracy(const LrModel& model, std::span<const data::Example> examples,
                double threshold = 0.5);

/// Mean binary cross-entropy (clamped probabilities).
double LogLoss(const LrModel& model, std::span<const data::Example> examples);

/// Area under the ROC curve via the rank statistic (ties averaged).
/// Returns 0.5 when one class is absent.
double Auc(const LrModel& model, std::span<const data::Example> examples);

struct EvalReport {
  double accuracy = 0.0;
  double logloss = 0.0;
  double auc = 0.0;
  std::size_t examples = 0;
};

/// Computes all three metrics from a single scoring pass over `examples`
/// (identical results to calling Accuracy/LogLoss/Auc individually, at a
/// third of the forward-pass cost).
EvalReport Evaluate(const LrModel& model,
                    std::span<const data::Example> examples);

}  // namespace simdc::ml
