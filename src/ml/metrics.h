// Evaluation metrics for the CTR task: accuracy, log-loss and AUC.
#pragma once

#include <span>

#include "data/example.h"
#include "ml/lr_model.h"

namespace simdc::ml {

/// Fraction of examples where thresholded prediction matches the label.
double Accuracy(const LrModel& model, std::span<const data::Example> examples,
                double threshold = 0.5);

/// Mean binary cross-entropy (clamped probabilities).
double LogLoss(const LrModel& model, std::span<const data::Example> examples);

/// Area under the ROC curve via the rank statistic (ties averaged).
/// Returns 0.5 when one class is absent.
double Auc(const LrModel& model, std::span<const data::Example> examples);

struct EvalReport {
  double accuracy = 0.0;
  double logloss = 0.0;
  double auc = 0.0;
  std::size_t examples = 0;
};

/// Computes all three metrics from a single scoring pass over `examples`
/// (identical results to calling Accuracy/LogLoss/Auc individually, at a
/// third of the forward-pass cost).
EvalReport Evaluate(const LrModel& model,
                    std::span<const data::Example> examples);

}  // namespace simdc::ml
