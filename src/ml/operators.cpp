#include "ml/operators.h"

#include <cmath>
#include <numeric>
#include <vector>

#include "common/restrict.h"
#include "common/rng.h"

namespace simdc::ml {
namespace {

/// Epoch ordering shared by both kernels so their only differences are
/// numerical (precision / traversal order), not statistical. Refills the
/// caller's scratch buffer in place: identical permutations to building a
/// fresh identity each epoch, without the per-epoch allocation.
void FillEpochOrder(std::vector<std::size_t>& order, bool shuffle, Rng& rng) {
  std::iota(order.begin(), order.end(), 0);
  if (shuffle) rng.Shuffle(order);
}

}  // namespace

void ServerLrOperator::Train(LrModel& model,
                             std::span<const data::Example> examples,
                             const TrainConfig& config) const {
  if (examples.empty()) return;
  Rng rng(config.shuffle_seed);
  // Hoisted out of the example loop: raw weight pointer (span indexing per
  // feature adds up over epochs × examples × features) and the bias, which
  // the update writes every example. The bias stays a float between
  // examples, exactly as when it round-tripped through the model. The
  // weight array never aliases the example features, so restrict lets the
  // gather/update loops vectorize without runtime overlap checks.
  float* SIMDC_RESTRICT const weights = model.weights().data();
  const std::size_t weight_dim = model.weights().size();
  (void)weight_dim;  // referenced only by the debug-build bounds check
  float bias = model.bias();
  const double learning_rate = config.learning_rate;
  order_scratch_.resize(examples.size());
  std::vector<std::size_t>& order = order_scratch_;
  for (std::size_t epoch = 0; epoch < config.epochs; ++epoch) {
    FillEpochOrder(order, config.shuffle, rng);
    for (const std::size_t i : order) {
      const auto& example = examples[i];
      // Double-precision forward pass, canonical feature order.
      double score = static_cast<double>(bias);
      for (std::uint32_t idx : example.features) {
        SIMDC_DCHECK(idx < weight_dim,
                     "ServerLrOperator::Train: feature index "
                         << idx << " out of range for dim " << weight_dim);
        score += static_cast<double>(weights[idx]);
      }
      const double probability = 1.0 / (1.0 + std::exp(-score));
      const double gradient = probability - static_cast<double>(example.label);
      const double step = learning_rate * gradient;
      for (std::uint32_t idx : example.features) {
        weights[idx] = static_cast<float>(static_cast<double>(weights[idx]) - step);
      }
      bias = static_cast<float>(static_cast<double>(bias) - step);
    }
  }
  model.bias() = bias;
}

void MobileLrOperator::Train(LrModel& model,
                             std::span<const data::Example> examples,
                             const TrainConfig& config) const {
  if (examples.empty()) return;
  // An independent RNG stream: the C++ MNN runtime does not share the
  // Python stack's shuffling, so the per-epoch visit order differs. This
  // (not float rounding) is the dominant source of the small cross-venue
  // divergence Fig. 6 quantifies.
  Rng rng(SplitMix64(config.shuffle_seed ^ 0x4D4F42494C45ULL));
  float* SIMDC_RESTRICT const weights = model.weights().data();
  const std::size_t weight_dim = model.weights().size();
  (void)weight_dim;  // referenced only by the debug-build bounds check
  float bias = model.bias();
  // The double→float learning-rate conversion happened once per example;
  // it is loop-invariant, so do it once per call.
  const float learning_rate = static_cast<float>(config.learning_rate);
  order_scratch_.resize(examples.size());
  std::vector<std::size_t>& order = order_scratch_;
  for (std::size_t epoch = 0; epoch < config.epochs; ++epoch) {
    FillEpochOrder(order, config.shuffle, rng);
    for (const std::size_t i : order) {
      const auto& example = examples[i];
      const auto& features = example.features;
      // Single-precision forward pass, reversed traversal — mirrors the
      // different accumulation order a fused mobile kernel produces.
      float score = bias;
      for (std::size_t k = features.size(); k-- > 0;) {
        SIMDC_DCHECK(features[k] < weight_dim,
                     "MobileLrOperator::Train: feature index "
                         << features[k] << " out of range for dim "
                         << weight_dim);
        score += weights[features[k]];
      }
      // expf: the mobile math library's single-precision exponential.
      const float probability = 1.0f / (1.0f + ::expf(-score));
      const float step = learning_rate * (probability - example.label);
      for (std::size_t k = features.size(); k-- > 0;) {
        weights[features[k]] -= step;
      }
      bias -= step;
    }
  }
  model.bias() = bias;
}

std::unique_ptr<TrainingOperator> MakeLrOperator(OperatorVenue venue) {
  switch (venue) {
    case OperatorVenue::kServer:
      return std::make_unique<ServerLrOperator>();
    case OperatorVenue::kMobile:
      return std::make_unique<MobileLrOperator>();
  }
  return nullptr;
}

}  // namespace simdc::ml
