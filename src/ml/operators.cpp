#include "ml/operators.h"

#include <cmath>
#include <numeric>
#include <vector>

#include "common/rng.h"

namespace simdc::ml {
namespace {

/// Epoch ordering shared by both kernels so their only differences are
/// numerical (precision / traversal order), not statistical.
std::vector<std::size_t> EpochOrder(std::size_t n, bool shuffle, Rng& rng) {
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  if (shuffle) rng.Shuffle(order);
  return order;
}

}  // namespace

void ServerLrOperator::Train(LrModel& model,
                             std::span<const data::Example> examples,
                             const TrainConfig& config) const {
  if (examples.empty()) return;
  Rng rng(config.shuffle_seed);
  auto weights = model.weights();
  for (std::size_t epoch = 0; epoch < config.epochs; ++epoch) {
    const auto order = EpochOrder(examples.size(), config.shuffle, rng);
    for (const std::size_t i : order) {
      const auto& example = examples[i];
      // Double-precision forward pass, canonical feature order.
      double score = static_cast<double>(model.bias());
      for (std::uint32_t idx : example.features) {
        score += static_cast<double>(weights[idx]);
      }
      const double probability = 1.0 / (1.0 + std::exp(-score));
      const double gradient = probability - static_cast<double>(example.label);
      const double step = config.learning_rate * gradient;
      for (std::uint32_t idx : example.features) {
        weights[idx] = static_cast<float>(static_cast<double>(weights[idx]) - step);
      }
      model.bias() = static_cast<float>(static_cast<double>(model.bias()) - step);
    }
  }
}

void MobileLrOperator::Train(LrModel& model,
                             std::span<const data::Example> examples,
                             const TrainConfig& config) const {
  if (examples.empty()) return;
  // An independent RNG stream: the C++ MNN runtime does not share the
  // Python stack's shuffling, so the per-epoch visit order differs. This
  // (not float rounding) is the dominant source of the small cross-venue
  // divergence Fig. 6 quantifies.
  Rng rng(SplitMix64(config.shuffle_seed ^ 0x4D4F42494C45ULL));
  auto weights = model.weights();
  for (std::size_t epoch = 0; epoch < config.epochs; ++epoch) {
    const auto order = EpochOrder(examples.size(), config.shuffle, rng);
    for (const std::size_t i : order) {
      const auto& example = examples[i];
      // Single-precision forward pass, reversed traversal — mirrors the
      // different accumulation order a fused mobile kernel produces.
      float score = model.bias();
      for (auto it = example.features.rbegin(); it != example.features.rend();
           ++it) {
        score += weights[*it];
      }
      // expf: the mobile math library's single-precision exponential.
      const float probability = 1.0f / (1.0f + ::expf(-score));
      const float step =
          static_cast<float>(config.learning_rate) * (probability - example.label);
      for (auto it = example.features.rbegin(); it != example.features.rend();
           ++it) {
        weights[*it] -= step;
      }
      model.bias() -= step;
    }
  }
}

std::unique_ptr<TrainingOperator> MakeLrOperator(OperatorVenue venue) {
  switch (venue) {
    case OperatorVenue::kServer:
      return std::make_unique<ServerLrOperator>();
    case OperatorVenue::kMobile:
      return std::make_unique<MobileLrOperator>();
  }
  return nullptr;
}

}  // namespace simdc::ml
