#include "ml/lr_model.h"

#include <cmath>
#include <cstring>

namespace simdc::ml {

double LrModel::DistanceTo(const LrModel& other) const {
  SIMDC_CHECK(dim() == other.dim(), "model dimension mismatch");
  double sum = 0.0;
  for (std::size_t i = 0; i < weights_.size(); ++i) {
    const double d = static_cast<double>(weights_[i]) - other.weights_[i];
    sum += d * d;
  }
  const double db = static_cast<double>(bias_) - other.bias_;
  sum += db * db;
  return std::sqrt(sum);
}

std::vector<std::byte> LrModel::ToBytes() const {
  std::vector<std::byte> out(SerializedSize());
  std::byte* p = out.data();
  const std::uint32_t d = dim();
  std::memcpy(p, &d, sizeof(d));
  p += sizeof(d);
  std::memcpy(p, &bias_, sizeof(bias_));
  p += sizeof(bias_);
  std::memcpy(p, weights_.data(), weights_.size() * sizeof(float));
  return out;
}

Result<LrModel> LrModel::FromBytes(std::span<const std::byte> bytes) {
  if (bytes.size() < sizeof(std::uint32_t) + sizeof(float)) {
    return ParseError("model blob too small");
  }
  std::uint32_t d = 0;
  const std::byte* p = bytes.data();
  std::memcpy(&d, p, sizeof(d));
  p += sizeof(d);
  const std::size_t expected =
      sizeof(std::uint32_t) + sizeof(float) + static_cast<std::size_t>(d) * sizeof(float);
  if (bytes.size() != expected) {
    return ParseError("model blob size mismatch: got " +
                      std::to_string(bytes.size()) + ", want " +
                      std::to_string(expected));
  }
  LrModel model(d);
  std::memcpy(&model.bias_, p, sizeof(float));
  p += sizeof(float);
  std::memcpy(model.weights_.data(), p, static_cast<std::size_t>(d) * sizeof(float));
  return model;
}

Result<std::shared_ptr<const LrModel>> LrModel::FromBytesShared(
    std::span<const std::byte> bytes) {
  auto model = FromBytes(bytes);
  if (!model.ok()) return model.error();
  return std::shared_ptr<const LrModel>(
      std::make_shared<LrModel>(std::move(*model)));
}

}  // namespace simdc::ml
