#include "ml/lr_model.h"

#include <bit>
#include <cmath>
#include <cstring>

namespace simdc::ml {
namespace {

// Quantized blobs carry a small header so the decoder can tell them apart
// from legacy fp32 blobs (which start with the raw dimension). "SDCQ" as a
// little-endian u32. A legacy blob whose dim field collided with this magic
// would need a ~7.6 GB payload to also pass fp32 size validation, so the
// two formats are unambiguous in practice.
constexpr std::uint32_t kQuantMagic = 0x51434453;  // "SDCQ"

// Tagged header: magic:u32, codec:u32, dim:u32, bias:f32, then the
// per-codec payload (fp16: dim×u16; int8: scale:f32 + dim×i8).
constexpr std::size_t kTaggedHeaderBytes =
    sizeof(std::uint32_t) * 3 + sizeof(float);

// --- Portable float <-> IEEE 754 half conversion (round-to-nearest-even).
// Bit-twiddling only: no <stdfloat>, no compiler intrinsics, so the wire
// format is identical across toolchains.

std::uint16_t FloatToHalf(float value) {
  const std::uint32_t bits = std::bit_cast<std::uint32_t>(value);
  const std::uint32_t sign = (bits >> 16) & 0x8000u;
  const std::uint32_t exp = (bits >> 23) & 0xFFu;
  std::uint32_t mant = bits & 0x007FFFFFu;

  if (exp >= 143) {  // >= 2^16 overflows half (or fp32 inf/nan) -> inf/nan
    if (exp == 0xFF && mant != 0) {
      return static_cast<std::uint16_t>(sign | 0x7E00u);  // quiet NaN
    }
    return static_cast<std::uint16_t>(sign | 0x7C00u);  // infinity
  }
  if (exp >= 113) {  // normal half range
    const std::uint32_t half_exp = exp - 112;
    // Round mantissa from 23 to 10 bits, ties-to-even.
    std::uint32_t half = (half_exp << 10) | (mant >> 13);
    const std::uint32_t round_bits = mant & 0x1FFFu;
    if (round_bits > 0x1000u || (round_bits == 0x1000u && (half & 1u))) {
      ++half;  // may carry into the exponent; that is the correct rounding
    }
    return static_cast<std::uint16_t>(sign | half);
  }
  if (exp >= 102) {  // subnormal half
    mant |= 0x00800000u;  // restore the implicit leading bit
    const std::uint32_t shift = 125 - exp;
    std::uint32_t half = mant >> (shift + 1);
    const std::uint32_t round_mask = (1u << (shift + 1)) - 1;
    const std::uint32_t round_bits = mant & round_mask;
    const std::uint32_t halfway = 1u << shift;
    if (round_bits > halfway || (round_bits == halfway && (half & 1u))) {
      ++half;
    }
    return static_cast<std::uint16_t>(sign | half);
  }
  return static_cast<std::uint16_t>(sign);  // underflow to signed zero
}

float HalfToFloat(std::uint16_t value) {
  const std::uint32_t sign = (static_cast<std::uint32_t>(value) & 0x8000u) << 16;
  const std::uint32_t exp = (value >> 10) & 0x1Fu;
  std::uint32_t mant = value & 0x3FFu;

  if (exp == 0x1F) {  // inf / nan
    return std::bit_cast<float>(sign | 0x7F800000u | (mant << 13));
  }
  if (exp == 0) {
    if (mant == 0) return std::bit_cast<float>(sign);  // signed zero
    // Subnormal half: normalize into fp32.
    std::uint32_t e = 113;
    while ((mant & 0x400u) == 0) {
      mant <<= 1;
      --e;
    }
    mant &= 0x3FFu;
    return std::bit_cast<float>(sign | (e << 23) | (mant << 13));
  }
  return std::bit_cast<float>(sign | ((exp + 112) << 23) | (mant << 13));
}

template <typename T>
void AppendRaw(std::byte*& p, const T& value) {
  std::memcpy(p, &value, sizeof(T));
  p += sizeof(T);
}

template <typename T>
T ReadRaw(const std::byte*& p) {
  T value;
  std::memcpy(&value, p, sizeof(T));
  p += sizeof(T);
  return value;
}

}  // namespace

const char* ToString(PayloadCodec codec) {
  switch (codec) {
    case PayloadCodec::kFp32: return "fp32";
    case PayloadCodec::kFp16: return "fp16";
    case PayloadCodec::kInt8: return "int8";
  }
  return "unknown";
}

double LrModel::DistanceTo(const LrModel& other) const {
  SIMDC_CHECK(dim() == other.dim(), "model dimension mismatch");
  double sum = 0.0;
  for (std::size_t i = 0; i < weights_.size(); ++i) {
    const double d = static_cast<double>(weights_[i]) - other.weights_[i];
    sum += d * d;
  }
  const double db = static_cast<double>(bias_) - other.bias_;
  sum += db * db;
  return std::sqrt(sum);
}

std::size_t LrModel::EncodedSize(PayloadCodec codec) const {
  switch (codec) {
    case PayloadCodec::kFp32:
      return SerializedSize();
    case PayloadCodec::kFp16:
      return kTaggedHeaderBytes + weights_.size() * sizeof(std::uint16_t);
    case PayloadCodec::kInt8:
      return kTaggedHeaderBytes + sizeof(float) + weights_.size();
  }
  SIMDC_CHECK(false, "unknown payload codec");
  return 0;
}

void LrModel::EncodeTo(std::span<std::byte> out, PayloadCodec codec) const {
  SIMDC_CHECK(out.size() == EncodedSize(codec),
              "EncodeTo buffer size " << out.size() << " != encoded size "
                                      << EncodedSize(codec));
  std::byte* p = out.data();
  const std::uint32_t d = dim();
  switch (codec) {
    case PayloadCodec::kFp32: {
      // Historical untagged format — must stay bit-identical.
      AppendRaw(p, d);
      AppendRaw(p, bias_);
      std::memcpy(p, weights_.data(), weights_.size() * sizeof(float));
      return;
    }
    case PayloadCodec::kFp16: {
      AppendRaw(p, kQuantMagic);
      AppendRaw(p, static_cast<std::uint32_t>(PayloadCodec::kFp16));
      AppendRaw(p, d);
      AppendRaw(p, bias_);
      for (float w : weights_) {
        AppendRaw(p, FloatToHalf(w));
      }
      return;
    }
    case PayloadCodec::kInt8: {
      AppendRaw(p, kQuantMagic);
      AppendRaw(p, static_cast<std::uint32_t>(PayloadCodec::kInt8));
      AppendRaw(p, d);
      AppendRaw(p, bias_);
      // The scale is taken over finite weights only so a stray inf cannot
      // collapse every other weight to zero.
      float max_abs = 0.0f;
      for (float w : weights_) {
        if (!std::isfinite(w)) continue;
        const float a = std::fabs(w);
        if (a > max_abs) max_abs = a;
      }
      // Zero scale means all-zero weights; decoder maps any q back to 0.
      const float scale = max_abs > 0.0f ? max_abs / 127.0f : 0.0f;
      AppendRaw(p, scale);
      for (float w : weights_) {
        // lround on NaN or out-of-range input is unspecified, so handle
        // non-finite weights explicitly: NaN encodes as 0, inf saturates.
        int q = 0;
        if (std::isinf(w)) {
          q = std::signbit(w) ? -127 : 127;
        } else if (std::isfinite(w) && scale > 0.0f) {
          const float scaled = w / scale;
          q = scaled >= 127.0f   ? 127
              : scaled <= -127.0f ? -127
                                  : static_cast<int>(std::lround(scaled));
        }
        AppendRaw(p, static_cast<std::int8_t>(q));
      }
      return;
    }
  }
  SIMDC_CHECK(false, "unknown payload codec");
}

std::vector<std::byte> LrModel::ToBytes(PayloadCodec codec) const {
  std::vector<std::byte> out(EncodedSize(codec));
  EncodeTo(out, codec);
  return out;
}

Result<LrModel> LrModel::FromBytes(std::span<const std::byte> bytes) {
  if (bytes.size() < sizeof(std::uint32_t) + sizeof(float)) {
    return ParseError("model blob too small");
  }
  const std::byte* p = bytes.data();
  const std::uint32_t head = ReadRaw<std::uint32_t>(p);

  if (head != kQuantMagic) {
    // Legacy fp32 blob: head is the dimension.
    const std::uint32_t d = head;
    const std::size_t expected = sizeof(std::uint32_t) + sizeof(float) +
                                 static_cast<std::size_t>(d) * sizeof(float);
    if (bytes.size() != expected) {
      return ParseError("model blob size mismatch: got " +
                        std::to_string(bytes.size()) + ", want " +
                        std::to_string(expected));
    }
    LrModel model(d);
    std::memcpy(&model.bias_, p, sizeof(float));
    p += sizeof(float);
    std::memcpy(model.weights_.data(), p,
                static_cast<std::size_t>(d) * sizeof(float));
    return model;
  }

  if (bytes.size() < kTaggedHeaderBytes) {
    return ParseError("quantized model blob truncated header");
  }
  const std::uint32_t codec_raw = ReadRaw<std::uint32_t>(p);
  const std::uint32_t d = ReadRaw<std::uint32_t>(p);
  const float bias = ReadRaw<float>(p);

  switch (static_cast<PayloadCodec>(codec_raw)) {
    case PayloadCodec::kFp16: {
      const std::size_t expected =
          kTaggedHeaderBytes + static_cast<std::size_t>(d) * sizeof(std::uint16_t);
      if (bytes.size() != expected) {
        return ParseError("fp16 model blob size mismatch: got " +
                          std::to_string(bytes.size()) + ", want " +
                          std::to_string(expected));
      }
      LrModel model(d);
      model.bias_ = bias;
      for (std::uint32_t i = 0; i < d; ++i) {
        model.weights_[i] = HalfToFloat(ReadRaw<std::uint16_t>(p));
      }
      return model;
    }
    case PayloadCodec::kInt8: {
      const std::size_t expected =
          kTaggedHeaderBytes + sizeof(float) + static_cast<std::size_t>(d);
      if (bytes.size() != expected) {
        return ParseError("int8 model blob size mismatch: got " +
                          std::to_string(bytes.size()) + ", want " +
                          std::to_string(expected));
      }
      LrModel model(d);
      model.bias_ = bias;
      const float scale = ReadRaw<float>(p);
      for (std::uint32_t i = 0; i < d; ++i) {
        const auto q = ReadRaw<std::int8_t>(p);
        model.weights_[i] = static_cast<float>(q) * scale;
      }
      return model;
    }
    case PayloadCodec::kFp32:
      break;  // fp32 is never tagged; fall through to the error
  }
  return ParseError("unknown payload codec tag: " + std::to_string(codec_raw));
}

Result<std::shared_ptr<const LrModel>> LrModel::FromBytesShared(
    std::span<const std::byte> bytes) {
  auto model = FromBytes(bytes);
  if (!model.ok()) return model.error();
  return std::shared_ptr<const LrModel>(
      std::make_shared<LrModel>(std::move(*model)));
}

}  // namespace simdc::ml
