// Time abstraction.
//
// All timed behaviour (DeviceFlow dispatch schedules, aggregation windows,
// phone-stage durations) is expressed against a Clock interface so the same
// code runs either on the discrete-event virtual clock (fast, deterministic;
// used by every experiment) or on wall time (used by the real-time example).
#pragma once

#include <chrono>
#include <cstdint>
#include <thread>

namespace simdc {

/// Simulation time in microseconds since simulation start.
using SimTime = std::int64_t;
/// Duration in microseconds.
using SimDuration = std::int64_t;

constexpr SimDuration Micros(std::int64_t us) { return us; }
constexpr SimDuration Millis(double ms) {
  return static_cast<SimDuration>(ms * 1e3);
}
constexpr SimDuration Seconds(double s) {
  return static_cast<SimDuration>(s * 1e6);
}
constexpr SimDuration Minutes(double m) {
  return static_cast<SimDuration>(m * 60e6);
}
constexpr double ToSeconds(SimDuration d) { return static_cast<double>(d) / 1e6; }
constexpr double ToMinutes(SimDuration d) { return static_cast<double>(d) / 60e6; }

/// Read-only clock interface.
class Clock {
 public:
  virtual ~Clock() = default;
  virtual SimTime Now() const = 0;
};

/// Wall-clock implementation; Now() counts from construction.
class RealClock final : public Clock {
 public:
  RealClock() : start_(std::chrono::steady_clock::now()) {}

  SimTime Now() const override {
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    return std::chrono::duration_cast<std::chrono::microseconds>(elapsed)
        .count();
  }

  /// Blocks the calling thread until the given simulation time.
  void SleepUntil(SimTime t) const {
    const SimTime now = Now();
    if (t > now) {
      std::this_thread::sleep_for(std::chrono::microseconds(t - now));
    }
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Manually-advanced clock. The discrete-event scheduler in src/sim owns
/// one and moves it from event to event.
class ManualClock final : public Clock {
 public:
  SimTime Now() const override { return now_; }
  void AdvanceTo(SimTime t) {
    if (t > now_) now_ = t;
  }
  void Advance(SimDuration d) { now_ += d; }

 private:
  SimTime now_ = 0;
};

}  // namespace simdc
