// Fixed-size worker thread pool.
//
// The Logical Simulation's worker "cluster" and the Task Runner's
// multi-threaded concurrent task processing (paper §III-B) run on this pool.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace simdc {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (at least 1).
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a job; returns a future for its result.
  template <typename F>
  auto Submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    auto future = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (stopped_) throw std::runtime_error("ThreadPool: submit after stop");
      queue_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return future;
  }

  /// Runs fn(i) for i in [0, n) across the pool and waits for completion.
  void ParallelFor(std::size_t n, const std::function<void(std::size_t)>& fn);

  std::size_t size() const { return workers_.size(); }

  /// Number of jobs waiting (not yet picked up).
  std::size_t pending() const;

 private:
  void WorkerLoop();

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  bool stopped_ = false;
};

}  // namespace simdc
