// Deterministic, splittable random number generation.
//
// Every stochastic component in SimDC (data synthesis, dropout, traffic
// jitter, phone noise) draws from an explicitly-seeded Rng so experiments
// are exactly reproducible. Rng::Split derives independent child streams
// (per device, per round) from a parent without sharing state, which keeps
// results invariant to execution order across threads.
#pragma once

#include <cstdint>
#include <random>
#include <string_view>
#include <vector>

namespace simdc {

/// SplitMix64 step — used both as a seed scrambler and stream splitter.
constexpr std::uint64_t SplitMix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

/// Stable 64-bit FNV-1a hash of a string (used to derive stream labels).
constexpr std::uint64_t HashString(std::string_view s) {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ULL;
  }
  return h;
}

/// Seeded random generator wrapping xoshiro256**.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed) {
    std::uint64_t s = seed;
    for (auto& word : state_) {
      s = SplitMix64(s);
      word = s;
    }
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  /// Raw 64 random bits (xoshiro256** step).
  result_type operator()() {
    const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Derives an independent child stream keyed by `label`.
  /// Splitting with the same label twice yields the same child.
  Rng Split(std::uint64_t label) const {
    std::uint64_t mix = state_[0];
    mix = SplitMix64(mix ^ SplitMix64(label));
    mix = SplitMix64(mix ^ state_[3]);
    return Rng(mix);
  }
  Rng Split(std::string_view label) const { return Split(HashString(label)); }

  /// Uniform double in [0, 1).
  double Uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

  /// Uniform integer in [lo, hi] (inclusive).
  std::int64_t UniformInt(std::int64_t lo, std::int64_t hi);

  /// Standard normal via Box–Muller (cached pair).
  double Normal();
  double Normal(double mean, double stddev) { return mean + stddev * Normal(); }

  /// Bernoulli trial with probability p of true.
  bool Bernoulli(double p) { return Uniform() < p; }

  /// Exponential with given rate (lambda).
  double Exponential(double rate);

  /// Log-normal: exp(Normal(mu, sigma)).
  double LogNormal(double mu, double sigma);

  /// Samples an index in [0, weights.size()) proportional to weights.
  std::size_t Categorical(const std::vector<double>& weights);

  /// Fisher–Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(UniformInt(0, static_cast<std::int64_t>(i) - 1));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  /// Samples k distinct indices from [0, n) (reservoir; order unspecified).
  std::vector<std::size_t> SampleWithoutReplacement(std::size_t n, std::size_t k);

 private:
  static constexpr std::uint64_t Rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4] = {};
  bool have_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace simdc
