// Minimal leveled logger.
//
// The platform components (Task Manager, PhoneMgr, DeviceFlow) log state
// transitions; tests silence the logger by raising the threshold.
#pragma once

#include <mutex>
#include <sstream>
#include <string>

namespace simdc {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

const char* ToString(LogLevel level);

/// Process-wide logger. Thread safe. Writes to stderr.
class Logger {
 public:
  static Logger& Instance();

  void set_level(LogLevel level) { level_ = level; }
  LogLevel level() const { return level_; }

  void Write(LogLevel level, const std::string& component,
             const std::string& message);

 private:
  Logger() = default;
  LogLevel level_ = LogLevel::kWarn;
  std::mutex mutex_;
};

/// Stream-style log statement, e.g. SIMDC_LOG(kInfo, "PhoneMgr") << "...";
class LogStream {
 public:
  LogStream(LogLevel level, std::string component)
      : level_(level), component_(std::move(component)) {}
  ~LogStream() { Logger::Instance().Write(level_, component_, oss_.str()); }

  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;

  template <typename T>
  LogStream& operator<<(const T& value) {
    oss_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::string component_;
  std::ostringstream oss_;
};

#define SIMDC_LOG(level, component) \
  ::simdc::LogStream(::simdc::LogLevel::level, (component))

}  // namespace simdc
