// SIMDC_RESTRICT: the no-aliasing qualifier for hot kernel pointers.
//
// Restrict-qualified contiguous loops are what lets the compiler vectorize
// the FedAvg cascade and the SGD update kernels without emitting runtime
// overlap checks; the macro spells the compiler-specific keyword.
#pragma once

#if defined(_MSC_VER) && !defined(__clang__)
#define SIMDC_RESTRICT __restrict
#else
#define SIMDC_RESTRICT __restrict__
#endif
