#include "common/rng.h"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace simdc {

std::int64_t Rng::UniformInt(std::int64_t lo, std::int64_t hi) {
  if (lo > hi) throw std::invalid_argument("UniformInt: lo > hi");
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) {  // full 64-bit range
    return static_cast<std::int64_t>((*this)());
  }
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = max() - max() % span;
  std::uint64_t draw;
  do {
    draw = (*this)();
  } while (draw >= limit);
  return lo + static_cast<std::int64_t>(draw % span);
}

double Rng::Normal() {
  if (have_cached_normal_) {
    have_cached_normal_ = false;
    return cached_normal_;
  }
  // Box–Muller transform; u1 in (0,1] so log is finite.
  double u1;
  do {
    u1 = Uniform();
  } while (u1 <= 0.0);
  const double u2 = Uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * std::numbers::pi * u2;
  cached_normal_ = radius * std::sin(angle);
  have_cached_normal_ = true;
  return radius * std::cos(angle);
}

double Rng::Exponential(double rate) {
  if (rate <= 0.0) throw std::invalid_argument("Exponential: rate must be > 0");
  double u;
  do {
    u = Uniform();
  } while (u <= 0.0);
  return -std::log(u) / rate;
}

double Rng::LogNormal(double mu, double sigma) {
  return std::exp(Normal(mu, sigma));
}

std::size_t Rng::Categorical(const std::vector<double>& weights) {
  if (weights.empty()) throw std::invalid_argument("Categorical: empty weights");
  double total = 0.0;
  for (double w : weights) {
    if (w < 0.0) throw std::invalid_argument("Categorical: negative weight");
    total += w;
  }
  if (total <= 0.0) throw std::invalid_argument("Categorical: zero total weight");
  double target = Uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    target -= weights[i];
    if (target < 0.0) return i;
  }
  return weights.size() - 1;  // numerical edge: land on last bucket
}

std::vector<std::size_t> Rng::SampleWithoutReplacement(std::size_t n,
                                                       std::size_t k) {
  if (k > n) throw std::invalid_argument("SampleWithoutReplacement: k > n");
  // Reservoir sampling keeps memory at O(k) even for large n.
  std::vector<std::size_t> reservoir;
  reservoir.reserve(k);
  for (std::size_t i = 0; i < n; ++i) {
    if (reservoir.size() < k) {
      reservoir.push_back(i);
    } else {
      const auto j = static_cast<std::size_t>(
          UniformInt(0, static_cast<std::int64_t>(i)));
      if (j < k) reservoir[j] = i;
    }
  }
  return reservoir;
}

}  // namespace simdc
