// Refcounted bump arena for the hot-path memory plane.
//
// A million-device round creates O(msgs) payload blobs; heap-allocating
// each one individually is O(msgs) allocator traffic per round. ByteArena
// bump-allocates them out of large shared blocks instead: steady-state
// rounds touch the allocator O(1) times (blocks are recycled, not freed),
// while every allocation stays independently *liveness-safe* — an
// Allocation carries shared ownership of its block, so bytes outlive both
// the arena's Reclaim cycle and the arena itself for as long as any reader
// holds them. This is what lets cloud::BlobStore keep the SharedBlob
// Delete-while-held guarantee on top of pooled storage: blocks are
// refcounted, never freed per-blob.
//
// Not thread-safe; callers (BlobStore) serialize access externally.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

namespace simdc {

/// One slab of arena memory. Immutable capacity; bytes are written once by
/// the allocator's caller before the allocation is published to readers.
struct ArenaBlock {
  explicit ArenaBlock(std::size_t capacity_bytes)
      : bytes(new std::byte[capacity_bytes]), capacity(capacity_bytes) {}

  std::unique_ptr<std::byte[]> bytes;
  std::size_t capacity = 0;
};

class ByteArena {
 public:
  /// Default slab size. Big enough that a 16 KB model blob packs ~60 per
  /// block; small enough that a pinned block (one live blob) wastes little.
  static constexpr std::size_t kDefaultBlockBytes = 1u << 20;

  explicit ByteArena(std::size_t block_bytes = kDefaultBlockBytes)
      : block_bytes_(block_bytes == 0 ? kDefaultBlockBytes : block_bytes) {}

  /// A bump allocation. `data` points into `block`'s slab; holding `block`
  /// keeps the bytes alive independent of the arena's recycling.
  struct Allocation {
    std::shared_ptr<const ArenaBlock> block;
    std::byte* data = nullptr;
    std::size_t size = 0;
  };

  /// Bump-allocates `size` bytes (8-byte aligned). Requests larger than the
  /// block size get a dedicated exact-size block. Amortized O(1): a new
  /// slab is touched only when the current one is exhausted.
  Allocation Allocate(std::size_t size);

  /// Round-boundary reset: retires the current block and recycles every
  /// retired block no outstanding Allocation references (use_count == 1 —
  /// only the arena's own handle left). Recycled blocks go to a bounded
  /// free list and are reused by later Allocate calls, so steady-state
  /// rounds perform zero slab allocations. Blocks still referenced by live
  /// allocations are left untouched — their bytes stay bit-stable until the
  /// last holder drops them. Returns the number of blocks recycled.
  std::size_t Reclaim();

  // --- accounting (tests and bench assertions) ---
  /// Slabs ever heap-allocated (the O(1)-steady-state gate watches this).
  std::size_t blocks_created() const { return blocks_created_; }
  /// Reclaim() recycle events (block reuses, cumulative).
  std::size_t blocks_recycled() const { return blocks_recycled_; }
  /// Blocks currently owned by the arena (filling + retired + free).
  std::size_t blocks_held() const {
    return retired_.size() + free_.size() + (current_ != nullptr ? 1 : 0);
  }
  std::size_t block_bytes() const { return block_bytes_; }

 private:
  /// Bound on the recycled-block free list; blocks beyond it are genuinely
  /// freed so a one-off burst does not pin memory forever.
  static constexpr std::size_t kMaxFreeBlocks = 16;

  std::size_t block_bytes_;
  std::shared_ptr<ArenaBlock> current_;
  std::size_t offset_ = 0;
  /// Full (or retired-by-Reclaim) blocks that may still back live
  /// allocations.
  std::vector<std::shared_ptr<ArenaBlock>> retired_;
  /// Recycled blocks ready for reuse.
  std::vector<std::shared_ptr<ArenaBlock>> free_;
  std::size_t blocks_created_ = 0;
  std::size_t blocks_recycled_ = 0;
};

}  // namespace simdc
