#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>

namespace simdc {

ThreadPool::ThreadPool(std::size_t num_threads) {
  const std::size_t n = std::max<std::size_t>(1, num_threads);
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopped_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopped_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stopped_) return;
        continue;
      }
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    job();
  }
}

void ThreadPool::ParallelFor(std::size_t n,
                             const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  // Chunk so we enqueue at most one job per worker.
  const std::size_t chunks = std::min(n, workers_.size());
  std::vector<std::future<void>> futures;
  futures.reserve(chunks);
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t begin = n * c / chunks;
    const std::size_t end = n * (c + 1) / chunks;
    futures.push_back(Submit([&fn, begin, end] {
      for (std::size_t i = begin; i < end; ++i) fn(i);
    }));
  }
  for (auto& f : futures) f.get();
}

std::size_t ThreadPool::pending() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

}  // namespace simdc
