#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace simdc {

void RunningStats::AccumulateSum(double x) {
  // Neumaier variant of Kahan summation: exact to within one rounding of
  // the true sum regardless of magnitude ordering, so per-shard partials
  // merged round after round do not drift.
  const double t = sum_ + x;
  if (std::abs(sum_) >= std::abs(x)) {
    sum_c_ += (sum_ - t) + x;
  } else {
    sum_c_ += (x - t) + sum_;
  }
  sum_ = t;
}

void RunningStats::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  AccumulateSum(x);
}

void RunningStats::Merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(count_);
  const auto nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  count_ += other.count_;
  AccumulateSum(other.sum_);
  AccumulateSum(other.sum_c_);
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double PearsonCorrelation(std::span<const double> x,
                          std::span<const double> y) {
  if (x.size() != y.size()) {
    throw std::invalid_argument("PearsonCorrelation: size mismatch");
  }
  const std::size_t n = x.size();
  if (n < 2) return 0.0;
  double mx = 0.0, my = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    mx += x[i];
    my += y[i];
  }
  mx /= static_cast<double>(n);
  my /= static_cast<double>(n);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

double Percentile(std::span<const double> values, double p) {
  if (values.empty()) throw std::invalid_argument("Percentile: empty input");
  if (p < 0.0 || p > 100.0) {
    throw std::invalid_argument("Percentile: p out of [0,100]");
  }
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted.front();
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double Mean(std::span<const double> values) {
  RunningStats s;
  for (double v : values) s.Add(v);
  return s.mean();
}

double StdDev(std::span<const double> values) {
  RunningStats s;
  for (double v : values) s.Add(v);
  return s.stddev();
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  if (bins == 0) throw std::invalid_argument("Histogram: bins must be > 0");
  // Finite bounds only: an infinite edge makes the bin width infinite and
  // (x - lo) / width NaN for every sample, which would reintroduce the
  // undefined integer cast Add() exists to avoid.
  if (!std::isfinite(lo) || !std::isfinite(hi)) {
    throw std::invalid_argument("Histogram: bounds must be finite");
  }
  if (!(lo < hi)) throw std::invalid_argument("Histogram: lo must be < hi");
}

void Histogram::Add(double x) {
  // NaN cannot be binned: drop and tally. ±inf clamps to the edge bins.
  // Finite samples clamp in the double domain BEFORE the integer cast —
  // casting a value outside ptrdiff_t's range (any inf, or e.g. 1e300
  // against a narrow [lo, hi)) is undefined behavior, not a clamp.
  if (std::isnan(x)) {
    ++nan_dropped_;
    return;
  }
  const std::size_t last = counts_.size() - 1;
  std::size_t idx;
  if (std::isinf(x)) {
    idx = x > 0.0 ? last : 0;
  } else {
    const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
    const double pos = (x - lo_) / width;
    if (pos <= 0.0) {
      idx = 0;
    } else if (pos >= static_cast<double>(last)) {
      idx = last;
    } else {
      idx = static_cast<std::size_t>(pos);
    }
  }
  ++counts_[idx];
  ++total_;
}

double Histogram::bin_lo(std::size_t i) const {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + width * static_cast<double>(i);
}

double Histogram::bin_hi(std::size_t i) const {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + width * static_cast<double>(i + 1);
}

double Histogram::ApproxPercentile(double p) const {
  if (total_ == 0) return 0.0;
  p = std::clamp(p, 0.0, 1.0);
  // Rank of the p-th sample under the nearest-rank-with-interpolation
  // convention: p spans [first sample, last sample].
  const double rank = p * static_cast<double>(total_ - 1);
  const auto target = static_cast<std::size_t>(rank);
  std::size_t seen = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    if (seen + counts_[i] > target) {
      // The target rank lands in bin i. Model the bin's k samples as
      // sitting at the midpoints of k equal sub-intervals of
      // [bin_lo, bin_hi) — the +0.5 keeps a lone sample estimated at the
      // bin's midpoint rather than its lower edge — and interpolate to
      // the rank's position.
      const double within =
          std::clamp((rank - static_cast<double>(seen) + 0.5) /
                         static_cast<double>(counts_[i]),
                     0.0, 1.0);
      return bin_lo(i) + (bin_hi(i) - bin_lo(i)) * within;
    }
    seen += counts_[i];
  }
  return bin_hi(counts_.size() - 1);  // unreachable for consistent totals
}

std::string Histogram::ToAscii(std::size_t width) const {
  std::size_t peak = 0;
  for (std::size_t c : counts_) peak = std::max(peak, c);
  std::string out;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    // Size the label exactly instead of truncating into a fixed buffer:
    // wide bin edges (|edge| >= 1e5 at %.3f) and large counts overflowed
    // the historical char[64].
    const int needed = std::snprintf(nullptr, 0, "[%8.3f, %8.3f) %6zu ",
                                     bin_lo(i), bin_hi(i), counts_[i]);
    if (needed > 0) {
      const auto offset = out.size();
      out.resize(offset + static_cast<std::size_t>(needed));
      std::snprintf(out.data() + offset, static_cast<std::size_t>(needed) + 1,
                    "[%8.3f, %8.3f) %6zu ", bin_lo(i), bin_hi(i), counts_[i]);
    }
    // Scale the bar in double precision: counts_[i] * width overflows
    // std::size_t once counts pass ~2^64 / width (reachable for week-long
    // million-device traces).
    const std::size_t bar =
        peak == 0 ? 0
                  : static_cast<std::size_t>(static_cast<double>(counts_[i]) *
                                             static_cast<double>(width) /
                                             static_cast<double>(peak));
    out.append(bar, '#');
    out += '\n';
  }
  return out;
}

}  // namespace simdc
