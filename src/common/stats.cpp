#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace simdc {

void RunningStats::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStats::Merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(count_);
  const auto nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  count_ += other.count_;
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double PearsonCorrelation(std::span<const double> x,
                          std::span<const double> y) {
  if (x.size() != y.size()) {
    throw std::invalid_argument("PearsonCorrelation: size mismatch");
  }
  const std::size_t n = x.size();
  if (n < 2) return 0.0;
  double mx = 0.0, my = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    mx += x[i];
    my += y[i];
  }
  mx /= static_cast<double>(n);
  my /= static_cast<double>(n);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

double Percentile(std::span<const double> values, double p) {
  if (values.empty()) throw std::invalid_argument("Percentile: empty input");
  if (p < 0.0 || p > 100.0) {
    throw std::invalid_argument("Percentile: p out of [0,100]");
  }
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted.front();
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double Mean(std::span<const double> values) {
  RunningStats s;
  for (double v : values) s.Add(v);
  return s.mean();
}

double StdDev(std::span<const double> values) {
  RunningStats s;
  for (double v : values) s.Add(v);
  return s.stddev();
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  if (bins == 0) throw std::invalid_argument("Histogram: bins must be > 0");
  if (!(lo < hi)) throw std::invalid_argument("Histogram: lo must be < hi");
}

void Histogram::Add(double x) {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  auto idx = static_cast<std::ptrdiff_t>((x - lo_) / width);
  idx = std::clamp<std::ptrdiff_t>(idx, 0,
                                   static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

double Histogram::bin_lo(std::size_t i) const {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + width * static_cast<double>(i);
}

double Histogram::bin_hi(std::size_t i) const {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + width * static_cast<double>(i + 1);
}

std::string Histogram::ToAscii(std::size_t width) const {
  std::size_t peak = 0;
  for (std::size_t c : counts_) peak = std::max(peak, c);
  std::string out;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    char line[64];
    std::snprintf(line, sizeof(line), "[%8.3f, %8.3f) %6zu ", bin_lo(i),
                  bin_hi(i), counts_[i]);
    out += line;
    const std::size_t bar =
        peak == 0 ? 0 : counts_[i] * width / peak;
    out.append(bar, '#');
    out += '\n';
  }
  return out;
}

}  // namespace simdc
