// Lightweight error and result types used across SimDC.
//
// SimDC is a simulation platform: most failures (bad task specs, exhausted
// resources, malformed ADB output) are expected, recoverable conditions the
// caller must handle, so the public API reports them through Result<T>
// rather than exceptions. Exceptions are reserved for programming errors
// (precondition violations) via SIMDC_CHECK.
#pragma once

#include <cstdint>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>
#include <variant>

namespace simdc {

/// Coarse error categories; fine detail lives in the message.
enum class ErrorCode : std::uint8_t {
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kResourceExhausted,
  kFailedPrecondition,
  kUnavailable,
  kParseError,
  kTimeout,
  kInternal,
};

/// Human-readable name for an ErrorCode.
constexpr const char* ToString(ErrorCode code) {
  switch (code) {
    case ErrorCode::kInvalidArgument: return "InvalidArgument";
    case ErrorCode::kNotFound: return "NotFound";
    case ErrorCode::kAlreadyExists: return "AlreadyExists";
    case ErrorCode::kResourceExhausted: return "ResourceExhausted";
    case ErrorCode::kFailedPrecondition: return "FailedPrecondition";
    case ErrorCode::kUnavailable: return "Unavailable";
    case ErrorCode::kParseError: return "ParseError";
    case ErrorCode::kTimeout: return "Timeout";
    case ErrorCode::kInternal: return "Internal";
  }
  return "Unknown";
}

/// An error: a code plus a message describing what went wrong.
class Error {
 public:
  Error(ErrorCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  ErrorCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const {
    std::string out = simdc::ToString(code_);
    out += ": ";
    out += message_;
    return out;
  }

  friend bool operator==(const Error& a, const Error& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  ErrorCode code_;
  std::string message_;
};

/// Result<T> holds either a value or an Error (a minimal std::expected).
template <typename T>
class [[nodiscard]] Result {
 public:
  // NOLINTNEXTLINE(google-explicit-constructor): intentional implicit wrap.
  Result(T value) : data_(std::move(value)) {}
  // NOLINTNEXTLINE(google-explicit-constructor)
  Result(Error error) : data_(std::move(error)) {}

  bool ok() const { return std::holds_alternative<T>(data_); }
  explicit operator bool() const { return ok(); }

  /// Value access. Precondition: ok().
  const T& value() const& {
    RequireOk();
    return std::get<T>(data_);
  }
  T& value() & {
    RequireOk();
    return std::get<T>(data_);
  }
  T&& value() && {
    RequireOk();
    return std::get<T>(std::move(data_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Error access. Precondition: !ok().
  const Error& error() const {
    if (ok()) throw std::logic_error("Result::error() called on OK result");
    return std::get<Error>(data_);
  }

  /// Returns the value or `fallback` when this holds an error.
  T value_or(T fallback) const& {
    return ok() ? std::get<T>(data_) : std::move(fallback);
  }

 private:
  void RequireOk() const {
    if (!ok()) {
      throw std::logic_error("Result::value() on error: " +
                             std::get<Error>(data_).ToString());
    }
  }

  std::variant<T, Error> data_;
};

/// Result specialization for operations without a payload.
class [[nodiscard]] Status {
 public:
  Status() = default;  // OK
  // NOLINTNEXTLINE(google-explicit-constructor)
  Status(Error error) : error_(std::move(error)) {}

  bool ok() const { return !error_.has_value(); }
  explicit operator bool() const { return ok(); }

  const Error& error() const {
    if (ok()) throw std::logic_error("Status::error() called on OK status");
    return *error_;
  }

  std::string ToString() const { return ok() ? "OK" : error_->ToString(); }

  static Status Ok() { return Status(); }

 private:
  std::optional<Error> error_;
};

/// Convenience factories.
inline Error InvalidArgument(std::string msg) {
  return Error(ErrorCode::kInvalidArgument, std::move(msg));
}
inline Error NotFound(std::string msg) {
  return Error(ErrorCode::kNotFound, std::move(msg));
}
inline Error AlreadyExists(std::string msg) {
  return Error(ErrorCode::kAlreadyExists, std::move(msg));
}
inline Error ResourceExhausted(std::string msg) {
  return Error(ErrorCode::kResourceExhausted, std::move(msg));
}
inline Error FailedPrecondition(std::string msg) {
  return Error(ErrorCode::kFailedPrecondition, std::move(msg));
}
inline Error Unavailable(std::string msg) {
  return Error(ErrorCode::kUnavailable, std::move(msg));
}
inline Error ParseError(std::string msg) {
  return Error(ErrorCode::kParseError, std::move(msg));
}
inline Error Timeout(std::string msg) {
  return Error(ErrorCode::kTimeout, std::move(msg));
}
inline Error Internal(std::string msg) {
  return Error(ErrorCode::kInternal, std::move(msg));
}

/// Precondition check: throws std::invalid_argument on failure.
#define SIMDC_CHECK(cond, msg)                                     \
  do {                                                             \
    if (!(cond)) {                                                 \
      std::ostringstream simdc_check_oss_;                         \
      simdc_check_oss_ << "SIMDC_CHECK failed: " #cond " — " << msg; \
      throw std::invalid_argument(simdc_check_oss_.str());         \
    }                                                              \
  } while (0)

/// Debug-build-only check for hot-path invariants (feature-index bounds in
/// the ML kernels): active when NDEBUG is not defined, compiled out of
/// Release builds entirely. A corrupt input (e.g. a quantized blob decoded
/// against the wrong dimension) must fail loudly in debug runs, never UB.
#ifndef NDEBUG
#define SIMDC_DCHECK(cond, msg) SIMDC_CHECK(cond, msg)
#else
#define SIMDC_DCHECK(cond, msg) \
  do {                          \
    (void)sizeof(cond);         \
  } while (0)
#endif

}  // namespace simdc
