#include "common/arena.h"

namespace simdc {
namespace {

constexpr std::size_t kAlignment = 8;

std::size_t AlignUp(std::size_t n) {
  return (n + (kAlignment - 1)) & ~(kAlignment - 1);
}

}  // namespace

ByteArena::Allocation ByteArena::Allocate(std::size_t size) {
  if (size > block_bytes_) {
    // Oversized request: dedicated exact-size block, immediately retired
    // (it can never host a second allocation).
    auto block = std::make_shared<ArenaBlock>(size);
    ++blocks_created_;
    retired_.push_back(block);
    return {block, block->bytes.get(), size};
  }
  const std::size_t aligned = AlignUp(size);
  if (current_ == nullptr || offset_ + aligned > current_->capacity) {
    if (current_ != nullptr) retired_.push_back(std::move(current_));
    if (!free_.empty()) {
      current_ = std::move(free_.back());
      free_.pop_back();
    } else {
      current_ = std::make_shared<ArenaBlock>(block_bytes_);
      ++blocks_created_;
    }
    offset_ = 0;
  }
  std::byte* data = current_->bytes.get() + offset_;
  offset_ += aligned;
  return {current_, data, size};
}

std::size_t ByteArena::Reclaim() {
  if (current_ != nullptr) {
    retired_.push_back(std::move(current_));
    offset_ = 0;
  }
  std::size_t recycled = 0;
  std::vector<std::shared_ptr<ArenaBlock>> still_live;
  still_live.reserve(retired_.size());
  for (auto& block : retired_) {
    // use_count == 1: only the arena's own handle is left — no Allocation
    // (and therefore no SharedBlob) can still read these bytes.
    if (block.use_count() == 1 && block->capacity == block_bytes_) {
      ++recycled;
      ++blocks_recycled_;
      if (free_.size() < kMaxFreeBlocks) free_.push_back(std::move(block));
    } else if (block.use_count() == 1) {
      // Oversized one-off block: recycle accounting, but never reused.
      ++recycled;
      ++blocks_recycled_;
    } else {
      still_live.push_back(std::move(block));
    }
  }
  retired_ = std::move(still_live);
  return recycled;
}

}  // namespace simdc
