// Statistics utilities: running moments, percentiles, Pearson correlation,
// and histograms.
//
// Table II of the paper reports Pearson correlation coefficients between
// user-defined traffic curves and DeviceFlow's actual dispatch schedule;
// the platform also aggregates performance samples (CPU%, memory, power)
// collected from benchmarking devices.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace simdc {

/// Welford single-pass accumulator for mean/variance/min/max.
class RunningStats {
 public:
  void Add(double x);
  void Merge(const RunningStats& other);

  std::size_t count() const { return count_; }
  double mean() const { return count_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than 2 samples.
  double variance() const;
  double stddev() const;
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  /// Exact Neumaier-compensated running total. Never reconstructed from
  /// mean * count, whose error compounds across chained Merge() calls.
  double sum() const { return count_ ? sum_ + sum_c_ : 0.0; }

 private:
  void AccumulateSum(double x);

  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
  double sum_c_ = 0.0;  // Neumaier compensation term for sum_
};

/// Pearson correlation coefficient of two equal-length series.
/// Returns 0 when either series has zero variance or fewer than 2 points.
double PearsonCorrelation(std::span<const double> x, std::span<const double> y);

/// Percentile with linear interpolation; p in [0, 100]. Copies + sorts.
double Percentile(std::span<const double> values, double p);

double Mean(std::span<const double> values);
double StdDev(std::span<const double> values);

/// Fixed-bin histogram over [lo, hi); out-of-range values clamp to edge
/// bins. Non-finite samples are routed explicitly: ±infinity counts into
/// the corresponding edge bin, NaN is dropped (and tallied in
/// nan_dropped()) — never cast to an integer, which would be UB.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void Add(double x);
  std::size_t bin_count(std::size_t i) const { return counts_.at(i); }
  std::size_t bins() const { return counts_.size(); }
  std::size_t total() const { return total_; }
  /// NaN samples seen by Add (excluded from total()/bins).
  std::size_t nan_dropped() const { return nan_dropped_; }
  double bin_lo(std::size_t i) const;
  double bin_hi(std::size_t i) const;

  /// Approximate percentile (p in [0, 1]) by linear interpolation inside
  /// the bin holding the p-th sample, assuming samples spread uniformly
  /// within each bin — exact to one bin of resolution. Returns 0 on an
  /// empty histogram; p clamps to [0, 1].
  double ApproxPercentile(double p) const;

  /// Renders a compact ASCII bar chart (used by bench binaries).
  std::string ToAscii(std::size_t width = 40) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
  std::size_t nan_dropped_ = 0;
};

}  // namespace simdc
