#include "common/string_util.h"

#include <cctype>
#include <charconv>
#include <cstdarg>
#include <cstdio>

namespace simdc {

std::vector<std::string> Split(std::string_view text, char delim) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == delim) {
      parts.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return parts;
}

std::vector<std::string> SplitWhitespace(std::string_view text) {
  std::vector<std::string> parts;
  std::size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i]))) {
      ++i;
    }
    const std::size_t start = i;
    while (i < text.size() && !std::isspace(static_cast<unsigned char>(text[i]))) {
      ++i;
    }
    if (i > start) parts.emplace_back(text.substr(start, i - start));
  }
  return parts;
}

std::vector<std::string> SplitLines(std::string_view text) {
  auto lines = Split(text, '\n');
  if (!lines.empty() && lines.back().empty()) lines.pop_back();
  return lines;
}

std::string_view TrimWhitespace(std::string_view text) {
  std::size_t begin = 0;
  while (begin < text.size() &&
         std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  std::size_t end = text.size();
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

bool Contains(std::string_view haystack, std::string_view needle) {
  return haystack.find(needle) != std::string_view::npos;
}

std::optional<std::int64_t> ParseInt(std::string_view text) {
  text = TrimWhitespace(text);
  if (text.empty()) return std::nullopt;
  std::int64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || ptr != text.data() + text.size()) {
    return std::nullopt;
  }
  return value;
}

std::optional<double> ParseDouble(std::string_view text) {
  text = TrimWhitespace(text);
  if (text.empty()) return std::nullopt;
  // std::from_chars for double is not universally available; use strtod on a
  // bounded copy.
  std::string buf(text);
  char* end = nullptr;
  const double value = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size()) return std::nullopt;
  return value;
}

std::optional<std::int64_t> FirstIntIn(std::string_view text) {
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    const bool digit = std::isdigit(static_cast<unsigned char>(c)) != 0;
    const bool sign =
        (c == '-' || c == '+') && i + 1 < text.size() &&
        std::isdigit(static_cast<unsigned char>(text[i + 1])) != 0;
    if (digit || sign) {
      std::size_t end = i + 1;
      while (end < text.size() &&
             std::isdigit(static_cast<unsigned char>(text[end]))) {
        ++end;
      }
      return ParseInt(text.substr(i, end - i));
    }
  }
  return std::nullopt;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

}  // namespace simdc
