// Strongly-typed identifiers for the SimDC platform.
//
// The paper's task design (§III-A) requires every task to carry a unique
// task_id used for tracking, shelf routing in DeviceFlow and metrics
// storage. We use distinct wrapper types so a DeviceId can never be passed
// where a TaskId is expected.
#pragma once

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>

namespace simdc {

namespace detail {

/// CRTP base for a 64-bit strongly-typed id.
template <typename Tag>
class StrongId {
 public:
  constexpr StrongId() = default;
  constexpr explicit StrongId(std::uint64_t value) : value_(value) {}

  constexpr std::uint64_t value() const { return value_; }
  constexpr bool valid() const { return value_ != kInvalid; }

  friend constexpr bool operator==(StrongId a, StrongId b) {
    return a.value_ == b.value_;
  }
  friend constexpr bool operator!=(StrongId a, StrongId b) {
    return a.value_ != b.value_;
  }
  friend constexpr bool operator<(StrongId a, StrongId b) {
    return a.value_ < b.value_;
  }

  friend std::ostream& operator<<(std::ostream& os, StrongId id) {
    return os << Tag::kPrefix << id.value_;
  }

  std::string ToString() const {
    return std::string(Tag::kPrefix) + std::to_string(value_);
  }

  static constexpr std::uint64_t kInvalid = ~std::uint64_t{0};

 private:
  std::uint64_t value_ = kInvalid;
};

}  // namespace detail

struct TaskIdTag { static constexpr const char* kPrefix = "task-"; };
struct DeviceIdTag { static constexpr const char* kPrefix = "dev-"; };
struct PhoneIdTag { static constexpr const char* kPrefix = "phone-"; };
struct ActorIdTag { static constexpr const char* kPrefix = "actor-"; };
struct NodeIdTag { static constexpr const char* kPrefix = "node-"; };
struct MessageIdTag { static constexpr const char* kPrefix = "msg-"; };
struct RoundIdTag { static constexpr const char* kPrefix = "round-"; };
struct BlobIdTag { static constexpr const char* kPrefix = "blob-"; };

/// Unique identifier for a submitted task (paper §III-A).
using TaskId = detail::StrongId<TaskIdTag>;
/// Identifier for a *simulated* device (logical or physical slot).
using DeviceId = detail::StrongId<DeviceIdTag>;
/// Identifier for a physical phone in the device cluster.
using PhoneId = detail::StrongId<PhoneIdTag>;
/// Identifier for a logical-simulation actor.
using ActorId = detail::StrongId<ActorIdTag>;
/// Identifier for a worker node hosting actors.
using NodeId = detail::StrongId<NodeIdTag>;
/// Identifier for a DeviceFlow message.
using MessageId = detail::StrongId<MessageIdTag>;
/// Identifier for a blob in cloud storage.
using BlobId = detail::StrongId<BlobIdTag>;

}  // namespace simdc

namespace std {
template <typename Tag>
struct hash<simdc::detail::StrongId<Tag>> {
  size_t operator()(simdc::detail::StrongId<Tag> id) const noexcept {
    return std::hash<std::uint64_t>{}(id.value());
  }
};
}  // namespace std
