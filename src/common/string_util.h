// Small string helpers used mainly by the ADB output parsers, which must
// post-process noisy textual command output (paper §IV-C: "The information
// collected typically contains other non-essential data, requiring
// post-processing to extract valid data").
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace simdc {

/// Splits on `delim`, keeping empty fields.
std::vector<std::string> Split(std::string_view text, char delim);

/// Splits on runs of whitespace, dropping empty fields (like awk).
std::vector<std::string> SplitWhitespace(std::string_view text);

/// Splits into lines on '\n' (drops a trailing empty line).
std::vector<std::string> SplitLines(std::string_view text);

std::string_view TrimWhitespace(std::string_view text);

bool StartsWith(std::string_view text, std::string_view prefix);
bool Contains(std::string_view haystack, std::string_view needle);

/// Strict integer / double parsing; nullopt on any trailing garbage.
std::optional<std::int64_t> ParseInt(std::string_view text);
std::optional<double> ParseDouble(std::string_view text);

/// First integer appearing anywhere in the text (sign-aware), if any.
std::optional<std::int64_t> FirstIntIn(std::string_view text);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace simdc
