#include "common/log.h"

#include <cstdio>

namespace simdc {

const char* ToString(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

Logger& Logger::Instance() {
  static Logger logger;
  return logger;
}

void Logger::Write(LogLevel level, const std::string& component,
                   const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(level_)) return;
  std::lock_guard<std::mutex> lock(mutex_);
  std::fprintf(stderr, "[%s] %s: %s\n", ToString(level), component.c_str(),
               message.c_str());
}

}  // namespace simdc
