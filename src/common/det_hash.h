// Deterministic message/fault hashing.
//
// Several planes need per-entity random decisions that are pure functions
// of (seed, entity id, ...) — never of execution order — so outcomes stay
// bit-identical no matter how work is partitioned across shards, threads
// or processes: flow::Dispatcher's transmission-failure and link-retry
// draws, and persist::FaultInjector's torn-write lengths. They all share
// this one combine shape instead of re-deriving ad-hoc SplitMix64 mixes.
//
// HashCombine(key, v) reproduces the historical transmission-drop formula
// bit for bit (SplitMix64(key ^ SplitMix64(v))), so refactoring a caller
// onto it cannot change existing results.
#pragma once

#include <cstdint>

#include "common/rng.h"

namespace simdc {

/// Mixes one 64-bit value into a key: SplitMix64(key ^ SplitMix64(value)).
/// Both inputs pass through a full avalanche round, so nearby ids (the
/// common case — message ids are sequential) land far apart.
constexpr std::uint64_t HashCombine(std::uint64_t key, std::uint64_t value) {
  return SplitMix64(key ^ SplitMix64(value));
}

/// Chains HashCombine over any number of values:
/// DeterministicHash(k, a, b) == HashCombine(HashCombine(k, a), b).
/// With a single value it IS HashCombine, so single-key callers pay two
/// SplitMix64 rounds, same as the historical inline formula.
template <typename... Rest>
constexpr std::uint64_t DeterministicHash(std::uint64_t key,
                                          std::uint64_t value, Rest... rest) {
  const std::uint64_t mixed = HashCombine(key, value);
  if constexpr (sizeof...(rest) == 0) {
    return mixed;
  } else {
    return DeterministicHash(mixed, rest...);
  }
}

/// Maps a hash to a uniform double in [0, 1) — the top-53-bit mapping every
/// probability draw in the codebase uses (Rng::Uniform's formula).
constexpr double HashUnit(std::uint64_t hash) {
  return static_cast<double>(hash >> 11) * 0x1.0p-53;
}

}  // namespace simdc
