#include "persist/durable_store.h"

#include <utility>
#include <vector>

namespace simdc::persist {

const char* ToString(DurabilityMode mode) {
  switch (mode) {
    case DurabilityMode::kOff: return "off";
    case DurabilityMode::kLog: return "log";
    case DurabilityMode::kLogCheckpoint: return "log+checkpoint";
  }
  return "unknown";
}

DurableStore::DurableStore(DurabilityConfig config)
    : config_(std::move(config)),
      io_(config_.io != nullptr ? config_.io : &RealFileIo::Instance()),
      writer_(*io_, BlobLogPath(config_.dir)) {
  SIMDC_CHECK(config_.mode != DurabilityMode::kOff,
              "DurableStore: construct only with durability enabled");
  SIMDC_CHECK(!config_.dir.empty(), "DurableStore: durability dir required");
}

void DurableStore::OnPut(BlobId id, std::span<const std::byte> bytes) {
  std::lock_guard<std::mutex> lock(mutex_);
  writer_.AppendPut(id, bytes);
}

void DurableStore::OnDelete(BlobId id) {
  std::lock_guard<std::mutex> lock(mutex_);
  writer_.AppendDelete(id);
}

Status DurableStore::BeginFresh() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (Status made = io_->CreateDirs(config_.dir); !made.ok()) return made;
  for (const std::string& stale :
       {BlobLogPath(config_.dir), CheckpointPath(config_.dir),
        CheckpointTmpPath(config_.dir), CheckpointPrevPath(config_.dir)}) {
    if (Status removed = io_->Remove(stale); !removed.ok()) return removed;
  }
  writer_.ResetDurableSize(0);
  sequence_ = 0;
  return Status::Ok();
}

Result<RecoveredState> DurableStore::BeginResume(cloud::BlobStore& store) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (Status made = io_->CreateDirs(config_.dir); !made.ok()) {
    return made.error();
  }
  const std::string log = BlobLogPath(config_.dir);
  RecoveredState out;

  if (config_.mode == DurabilityMode::kLogCheckpoint) {
    auto checkpoint = LoadLatestCheckpoint(*io_, config_.dir);
    if (checkpoint.ok()) {
      out.checkpoint = std::move(*checkpoint);
      out.has_checkpoint = true;
      // Log records past the checkpoint's offset belong to the partial
      // round the engine will re-execute; replaying them would duplicate
      // its blob ids. Drop them before replay.
      if (io_->Exists(log)) {
        auto size = io_->FileSize(log);
        if (size.ok() && *size > out.checkpoint.log_offset) {
          if (Status cut = io_->TruncateTo(log, out.checkpoint.log_offset);
              !cut.ok()) {
            return cut.error();
          }
        }
      }
    }
  }

  std::uint64_t put_bytes = 0;
  auto replay =
      ReplayBlobLog(*io_, log, [&](const BlobLogRecord& record) {
        if (record.kind == BlobRecordKind::kPut) {
          store.RestoreBlob(record.id, std::vector<std::byte>(
                                           record.bytes.begin(),
                                           record.bytes.end()));
          put_bytes += record.bytes.size();
        } else {
          (void)store.Delete(record.id);
        }
      });
  if (!replay.ok()) return replay.error();
  out.log_bytes = replay->valid_bytes;
  out.log_records = replay->records;
  out.truncated_tail = replay->truncated_tail;
  // Drop the torn tail on disk so future appends extend a valid prefix
  // instead of burying garbage mid-file.
  if (replay->truncated_tail) {
    if (Status cut = io_->TruncateTo(log, replay->valid_bytes); !cut.ok()) {
      return cut.error();
    }
  }
  writer_.ResetDurableSize(replay->valid_bytes);

  if (out.has_checkpoint) {
    store.SetNextId(out.checkpoint.next_blob_id);
    store.RestoreTrafficCounters(
        static_cast<std::size_t>(out.checkpoint.storage_bytes_written),
        static_cast<std::size_t>(out.checkpoint.storage_bytes_read));
    sequence_ = out.checkpoint.sequence;
  } else {
    // Log-only reload: written traffic is exactly the replayed put bytes
    // (reads are not logged); the id cursor was advanced by RestoreBlob.
    store.RestoreTrafficCounters(static_cast<std::size_t>(put_bytes), 0);
  }
  return out;
}

Status DurableStore::CommitLog() {
  std::lock_guard<std::mutex> lock(mutex_);
  return writer_.Commit();
}

bool DurableStore::HasPendingLog() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return writer_.HasPending();
}

Status DurableStore::WriteCheckpoint(CheckpointState state) {
  std::lock_guard<std::mutex> lock(mutex_);
  SIMDC_CHECK(config_.mode == DurabilityMode::kLogCheckpoint,
              "DurableStore::WriteCheckpoint: mode is "
                  << ToString(config_.mode));
  if (writer_.HasPending()) {
    // A failed CommitLog left records buffered; a checkpoint now would pin
    // an offset that does not cover the state it describes. Degrade (the
    // previous checkpoint stays valid) instead of throwing mid-run.
    return FailedPrecondition(
        "DurableStore::WriteCheckpoint: uncommitted log records pending");
  }
  state.sequence = ++sequence_;
  state.log_offset = writer_.durable_size();
  return persist::WriteCheckpoint(*io_, config_.dir, state);
}

std::uint64_t DurableStore::log_commits() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return writer_.commits();
}

std::uint64_t DurableStore::checkpoints_written() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return sequence_;
}

}  // namespace simdc::persist
