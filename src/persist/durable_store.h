// Durable, crash-recoverable cloud store.
//
// DurableStore is the orchestration layer of the durability plane: it
// listens to BlobStore mutations through the cloud::BlobJournal seam,
// buffers them into the append-only blob log (blob_log.h), group-commits
// at the engine's round boundaries, and publishes atomic checkpoints of
// aggregator state (checkpoint.h). Recovery is the composition: load the
// latest valid checkpoint, truncate the log to the offset it pins, replay
// the remaining valid prefix into a fresh BlobStore — and the engine
// re-executes the partial round deterministically, landing bit-identical
// to an uninterrupted run (DurableRecoveryTest proves it under injected
// crashes, torn writes, short reads, and fsync failures).
//
// Modes ([execution] durability):
//   off             — today's in-memory store, nothing written, bit-
//                     identical to the pre-durability engine.
//   log             — blob mutations are logged + group-committed; the
//                     store's contents survive a crash, aggregator state
//                     does not (no engine resume).
//   log+checkpoint  — logging plus round-boundary checkpoints; a crashed
//                     experiment resumes bit-identically.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>

#include "cloud/storage.h"
#include "common/error.h"
#include "persist/blob_log.h"
#include "persist/checkpoint.h"
#include "persist/file_io.h"

namespace simdc::persist {

enum class DurabilityMode : std::uint8_t {
  kOff = 0,
  kLog = 1,
  kLogCheckpoint = 2,
};

const char* ToString(DurabilityMode mode);

struct DurabilityConfig {
  DurabilityMode mode = DurabilityMode::kOff;
  /// Directory holding blob.log and checkpoint.{bin,tmp,prev}.
  std::string dir;
  /// File I/O implementation; null = RealFileIo::Instance(). Tests inject
  /// a FaultInjector here to crash the engine at chosen I/O points.
  FileIo* io = nullptr;
};

/// What BeginResume reconstructed.
struct RecoveredState {
  /// Valid only when has_checkpoint (default-initialized otherwise).
  CheckpointState checkpoint;
  bool has_checkpoint = false;
  /// Validated log prefix replayed into the store.
  std::uint64_t log_bytes = 0;
  std::uint64_t log_records = 0;
  /// True when a torn/corrupt suffix was dropped during replay.
  bool truncated_tail = false;
};

class DurableStore final : public cloud::BlobJournal {
 public:
  explicit DurableStore(DurabilityConfig config);

  // BlobJournal — called under the BlobStore mutex; pure in-memory
  // buffering (the log's group-commit discipline), no I/O.
  void OnPut(BlobId id, std::span<const std::byte> bytes) override;
  void OnDelete(BlobId id) override;

  /// Fresh-run initialization: creates the directory and removes any
  /// previous run's log and checkpoints. Call BEFORE attaching the
  /// journal; never called on the resume path (which must read them).
  Status BeginFresh();

  /// Resume initialization: loads the newest valid checkpoint (in
  /// log+checkpoint mode), truncates the log to the offset it pins —
  /// records past it belong to the partial round the engine re-executes —
  /// then replays the remaining valid log prefix into `store`
  /// (RestoreBlob / Delete), dropping any torn tail. Restores the store's
  /// id cursor and traffic counters. Call BEFORE attaching the journal so
  /// replayed mutations are not re-logged.
  Result<RecoveredState> BeginResume(cloud::BlobStore& store);

  /// Group commit: flushes buffered mutations as one Append + Sync.
  Status CommitLog();
  /// True when mutations are buffered but not yet committed.
  bool HasPendingLog() const;

  /// Stamps `state` with the next checkpoint sequence and the current
  /// durable log offset, then publishes it atomically. Callers commit the
  /// log first so the offset covers everything the state references.
  Status WriteCheckpoint(CheckpointState state);

  const DurabilityConfig& config() const { return config_; }
  std::uint64_t log_commits() const;
  std::uint64_t checkpoints_written() const;

 private:
  DurabilityConfig config_;
  FileIo* io_;
  mutable std::mutex mutex_;
  BlobLogWriter writer_;
  std::uint64_t sequence_ = 0;
};

}  // namespace simdc::persist
