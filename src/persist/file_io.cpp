#include "persist/file_io.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <filesystem>

#include "common/det_hash.h"
#include "common/rng.h"

namespace simdc::persist {

namespace {

Error Errno(const std::string& op, const std::string& path) {
  return Unavailable(op + " '" + path + "': " + std::strerror(errno));
}

/// write(2) until done (short writes are legal for regular files under
/// signals; loop so callers see all-or-error).
Status WriteAll(int fd, const std::string& path,
                std::span<const std::byte> bytes) {
  std::size_t done = 0;
  while (done < bytes.size()) {
    const ssize_t n = ::write(fd, bytes.data() + done, bytes.size() - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("write", path);
    }
    done += static_cast<std::size_t>(n);
  }
  return Status::Ok();
}

}  // namespace

Status RealFileIo::Append(const std::string& path,
                          std::span<const std::byte> bytes) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0) return Errno("open for append", path);
  const Status written = WriteAll(fd, path, bytes);
  ::close(fd);
  return written;
}

Status RealFileIo::Sync(const std::string& path) {
  const int fd = ::open(path.c_str(), O_WRONLY);
  if (fd < 0) return Errno("open for sync", path);
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) return Errno("fsync", path);
  return Status::Ok();
}

Status RealFileIo::WriteFile(const std::string& path,
                             std::span<const std::byte> bytes) {
  const int fd =
      ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return Errno("open for write", path);
  Status result = WriteAll(fd, path, bytes);
  if (result.ok() && ::fsync(fd) != 0) result = Errno("fsync", path);
  ::close(fd);
  return result;
}

Status RealFileIo::Rename(const std::string& from, const std::string& to) {
  if (::rename(from.c_str(), to.c_str()) != 0) {
    return Errno("rename to '" + to + "' from", from);
  }
  return Status::Ok();
}

Result<std::vector<std::byte>> RealFileIo::ReadFile(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) return NotFound("no such file: " + path);
    return Errno("open for read", path);
  }
  std::vector<std::byte> out;
  std::byte buffer[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, buffer, sizeof(buffer));
    if (n < 0) {
      if (errno == EINTR) continue;
      const Error e = Errno("read", path);
      ::close(fd);
      return e;
    }
    if (n == 0) break;
    out.insert(out.end(), buffer, buffer + n);
  }
  ::close(fd);
  return out;
}

Result<std::uint64_t> RealFileIo::FileSize(const std::string& path) {
  struct stat st{};
  if (::stat(path.c_str(), &st) != 0) {
    if (errno == ENOENT) return NotFound("no such file: " + path);
    return Errno("stat", path);
  }
  return static_cast<std::uint64_t>(st.st_size);
}

Status RealFileIo::TruncateTo(const std::string& path, std::uint64_t size) {
  if (::truncate(path.c_str(), static_cast<off_t>(size)) != 0) {
    return Errno("truncate", path);
  }
  return Status::Ok();
}

bool RealFileIo::Exists(const std::string& path) {
  struct stat st{};
  return ::stat(path.c_str(), &st) == 0;
}

Status RealFileIo::Remove(const std::string& path) {
  if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
    return Errno("unlink", path);
  }
  return Status::Ok();
}

Status RealFileIo::CreateDirs(const std::string& path) {
  std::error_code ec;
  std::filesystem::create_directories(path, ec);
  if (ec) return Unavailable("mkdir -p '" + path + "': " + ec.message());
  return Status::Ok();
}

RealFileIo& RealFileIo::Instance() {
  static RealFileIo io;
  return io;
}

std::uint64_t FaultInjector::TornLength(std::uint64_t configured,
                                        std::uint64_t index,
                                        std::uint64_t size) const {
  if (configured != FaultPlan::kSeedDerived) {
    return configured < size ? configured : size;
  }
  // Seed-derived lengths share the common::DeterministicHash combine shape
  // used by the flow plane's message-keyed draws — one formula for every
  // seed-deterministic fault schedule in the tree.
  return DeterministicHash(plan_.seed, index) % (size + 1);
}

Status FaultInjector::Append(const std::string& path,
                             std::span<const std::byte> bytes) {
  ++appends_;
  if (plan_.crash_on_append != 0 && appends_ == plan_.crash_on_append) {
    const std::uint64_t keep =
        TornLength(plan_.torn_keep_bytes, appends_, bytes.size());
    (void)inner_->Append(path, bytes.subspan(0, keep));
    throw SimulatedCrash("crash on append #" + std::to_string(appends_) +
                         " after " + std::to_string(keep) + "/" +
                         std::to_string(bytes.size()) + " bytes of '" + path +
                         "'");
  }
  return inner_->Append(path, bytes);
}

Status FaultInjector::Sync(const std::string& path) {
  ++syncs_;
  if (plan_.fail_sync_on != 0 && syncs_ == plan_.fail_sync_on) {
    return Unavailable("injected fsync failure #" + std::to_string(syncs_) +
                       " on '" + path + "'");
  }
  return inner_->Sync(path);
}

Status FaultInjector::WriteFile(const std::string& path,
                                std::span<const std::byte> bytes) {
  ++write_files_;
  if (plan_.crash_on_write_file != 0 &&
      write_files_ == plan_.crash_on_write_file) {
    const std::uint64_t keep =
        TornLength(plan_.torn_keep_bytes, write_files_, bytes.size());
    (void)inner_->WriteFile(path, bytes.subspan(0, keep));
    throw SimulatedCrash("crash on write #" + std::to_string(write_files_) +
                         " after " + std::to_string(keep) + "/" +
                         std::to_string(bytes.size()) + " bytes of '" + path +
                         "'");
  }
  return inner_->WriteFile(path, bytes);
}

Status FaultInjector::Rename(const std::string& from, const std::string& to) {
  ++renames_;
  if (plan_.crash_before_rename != 0 &&
      renames_ == plan_.crash_before_rename) {
    throw SimulatedCrash("crash before rename #" + std::to_string(renames_) +
                         " of '" + from + "'");
  }
  const Status renamed = inner_->Rename(from, to);
  if (plan_.crash_after_rename != 0 && renames_ == plan_.crash_after_rename) {
    throw SimulatedCrash("crash after rename #" + std::to_string(renames_) +
                         " to '" + to + "'");
  }
  return renamed;
}

Result<std::vector<std::byte>> FaultInjector::ReadFile(
    const std::string& path) {
  ++reads_;
  auto bytes = inner_->ReadFile(path);
  if (bytes.ok() && plan_.short_read_on != 0 &&
      reads_ == plan_.short_read_on) {
    const std::uint64_t keep =
        TornLength(plan_.short_read_bytes, reads_, bytes->size());
    bytes->resize(keep);
  }
  return bytes;
}

Result<std::uint64_t> FaultInjector::FileSize(const std::string& path) {
  return inner_->FileSize(path);
}

Status FaultInjector::TruncateTo(const std::string& path,
                                 std::uint64_t size) {
  return inner_->TruncateTo(path, size);
}

bool FaultInjector::Exists(const std::string& path) {
  return inner_->Exists(path);
}

Status FaultInjector::Remove(const std::string& path) {
  return inner_->Remove(path);
}

Status FaultInjector::CreateDirs(const std::string& path) {
  return inner_->CreateDirs(path);
}

}  // namespace simdc::persist
