#include "persist/blob_log.h"

#include <utility>

#include "persist/wire.h"

namespace simdc::persist {

namespace {

/// Opens a frame on `out`: reserves the [len][crc] header and returns its
/// offset. The record payload is then written *directly* into `out` (one
/// copy of the blob bytes instead of staging them in a scratch vector) and
/// CloseFrame patches the header over the bytes in place.
std::size_t OpenFrame(std::vector<std::byte>& out) {
  const std::size_t header_at = out.size();
  ByteWriter w(out);
  w.Put<std::uint32_t>(0);  // payload length, patched by CloseFrame
  w.Put<std::uint32_t>(0);  // payload crc, patched by CloseFrame
  return header_at;
}

void CloseFrame(std::vector<std::byte>& out, std::size_t header_at) {
  const std::size_t payload_at = header_at + 2 * sizeof(std::uint32_t);
  const std::span<const std::byte> payload(out.data() + payload_at,
                                           out.size() - payload_at);
  const auto length = static_cast<std::uint32_t>(payload.size());
  const std::uint32_t crc = Crc32(payload);
  std::memcpy(out.data() + header_at, &length, sizeof(length));
  std::memcpy(out.data() + header_at + sizeof(length), &crc, sizeof(crc));
}

}  // namespace

void BlobLogWriter::AppendPut(BlobId id, std::span<const std::byte> bytes) {
  const std::size_t frame = OpenFrame(pending_);
  ByteWriter w(pending_);
  w.Put<std::uint8_t>(static_cast<std::uint8_t>(BlobRecordKind::kPut));
  w.Put<std::uint64_t>(id.value());
  w.Put<std::uint64_t>(bytes.size());
  w.PutBytes(bytes);
  CloseFrame(pending_, frame);
}

void BlobLogWriter::AppendDelete(BlobId id) {
  const std::size_t frame = OpenFrame(pending_);
  ByteWriter w(pending_);
  w.Put<std::uint8_t>(static_cast<std::uint8_t>(BlobRecordKind::kDelete));
  w.Put<std::uint64_t>(id.value());
  CloseFrame(pending_, frame);
}

Status BlobLogWriter::Commit() {
  if (pending_.empty()) return Status::Ok();
  if (Status appended = io_.Append(path_, pending_); !appended.ok()) {
    // Nothing reached the file; keep the records buffered for a retry at
    // the next commit point.
    return appended;
  }
  // The bytes are in the file whether or not the sync below succeeds, and
  // durable_size_ must track file contents (checkpoints pin it as a byte
  // offset). A failed fsync therefore still consumes the pending buffer —
  // re-appending it would duplicate records on replay — and only the
  // status reports the degraded durability.
  durable_size_ += pending_.size();
  ++commits_;
  pending_.clear();
  return io_.Sync(path_);
}

Result<BlobLogReplayResult> ReplayBlobLog(
    FileIo& io, const std::string& path,
    const std::function<void(const BlobLogRecord&)>& apply) {
  BlobLogReplayResult result;
  if (!io.Exists(path)) return result;
  auto file = io.ReadFile(path);
  if (!file.ok()) return file.error();
  const std::span<const std::byte> bytes = *file;

  std::uint64_t pos = 0;
  constexpr std::uint64_t kHeader = 2 * sizeof(std::uint32_t);
  while (pos + kHeader <= bytes.size()) {
    ByteReader header(bytes.subspan(pos, kHeader));
    const auto length = header.Get<std::uint32_t>();
    const auto crc = header.Get<std::uint32_t>();
    if (pos + kHeader + length > bytes.size()) break;  // torn final record
    const auto payload = bytes.subspan(pos + kHeader, length);
    if (Crc32(payload) != crc) break;  // corrupt record

    ByteReader body(payload);
    const auto kind = body.Get<std::uint8_t>();
    BlobLogRecord record;
    record.id = BlobId(body.Get<std::uint64_t>());
    if (kind == static_cast<std::uint8_t>(BlobRecordKind::kPut)) {
      record.kind = BlobRecordKind::kPut;
      const auto n = body.Get<std::uint64_t>();
      record.bytes = body.GetBytes(static_cast<std::size_t>(n));
      if (!body.ok() || body.remaining() != 0) break;  // malformed payload
    } else if (kind == static_cast<std::uint8_t>(BlobRecordKind::kDelete)) {
      record.kind = BlobRecordKind::kDelete;
      if (!body.ok() || body.remaining() != 0) break;
    } else {
      break;  // unknown record kind — treat as corruption
    }

    apply(record);
    pos += kHeader + length;
    ++result.records;
  }

  result.valid_bytes = pos;
  result.truncated_tail = pos < bytes.size();
  return result;
}

}  // namespace simdc::persist
