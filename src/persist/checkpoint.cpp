#include "persist/checkpoint.h"

#include <utility>

#include "persist/wire.h"

namespace simdc::persist {

namespace {

constexpr std::uint32_t kMagic = 0x50434453u;  // "SDCP" little-endian
// v2: fault-plane counters (dispatch retries/retry_successes/
// deadline_drops/churn_losses, aggregation deadline_commits/
// round_extensions/aborted_rounds). v3: the FedAvg cascade's two
// compensation planes (vector + bias), carried bit-exactly so recovery
// resumes the same represented accumulator sum (ml/fedavg.h). Pre-v3
// images are rejected — a crashed old-format run recovers with its old
// binary, not this one.
constexpr std::uint32_t kVersion = 3;

void PutAggregation(ByteWriter& w, const cloud::AggregationSnapshot& a) {
  w.Put<std::uint64_t>(a.history.size());
  for (const auto& r : a.history) {
    w.Put<std::uint64_t>(r.round);
    w.Put<std::int64_t>(r.time);
    w.Put<std::uint64_t>(r.clients);
    w.Put<std::uint64_t>(r.samples);
    w.Put<std::uint64_t>(r.model_blob.value());
  }
  w.Put<std::uint64_t>(a.messages_received);
  w.Put<std::uint64_t>(a.decode_failures);
  w.Put<std::uint64_t>(a.stale_rejections);
  w.Put<std::uint64_t>(a.store_errors);
  w.Put<std::uint64_t>(a.deadline_commits);
  w.Put<std::uint64_t>(a.round_extensions);
  w.Put<std::uint64_t>(a.aborted_rounds);
  w.Put<std::uint32_t>(a.model_dim);
  w.Put<std::uint64_t>(a.global_weights.size());
  for (const float v : a.global_weights) w.Put<float>(v);
  w.Put<float>(a.global_bias);
  w.Put<std::uint64_t>(a.accumulator.size());
  for (const double v : a.accumulator) w.Put<double>(v);
  // v3: the compensation planes share the accumulator's length, so no
  // separate size prefixes.
  for (const double v : a.accumulator_c1) w.Put<double>(v);
  for (const double v : a.accumulator_c2) w.Put<double>(v);
  w.Put<double>(a.bias_accumulator);
  w.Put<double>(a.bias_accumulator_c1);
  w.Put<double>(a.bias_accumulator_c2);
  w.Put<std::uint64_t>(a.accumulator_samples);
  w.Put<std::uint64_t>(a.accumulator_clients);
}

cloud::AggregationSnapshot GetAggregation(ByteReader& r) {
  cloud::AggregationSnapshot a;
  const auto history = r.Get<std::uint64_t>();
  for (std::uint64_t i = 0; r.ok() && i < history; ++i) {
    cloud::AggregationRecord rec;
    rec.round = static_cast<std::size_t>(r.Get<std::uint64_t>());
    rec.time = r.Get<std::int64_t>();
    rec.clients = static_cast<std::size_t>(r.Get<std::uint64_t>());
    rec.samples = static_cast<std::size_t>(r.Get<std::uint64_t>());
    rec.model_blob = BlobId(r.Get<std::uint64_t>());
    a.history.push_back(rec);
  }
  a.messages_received = r.Get<std::uint64_t>();
  a.decode_failures = r.Get<std::uint64_t>();
  a.stale_rejections = r.Get<std::uint64_t>();
  a.store_errors = r.Get<std::uint64_t>();
  a.deadline_commits = r.Get<std::uint64_t>();
  a.round_extensions = r.Get<std::uint64_t>();
  a.aborted_rounds = r.Get<std::uint64_t>();
  a.model_dim = r.Get<std::uint32_t>();
  const auto weights = r.Get<std::uint64_t>();
  for (std::uint64_t i = 0; r.ok() && i < weights; ++i) {
    a.global_weights.push_back(r.Get<float>());
  }
  a.global_bias = r.Get<float>();
  const auto acc = r.Get<std::uint64_t>();
  for (std::uint64_t i = 0; r.ok() && i < acc; ++i) {
    a.accumulator.push_back(r.Get<double>());
  }
  for (std::uint64_t i = 0; r.ok() && i < acc; ++i) {
    a.accumulator_c1.push_back(r.Get<double>());
  }
  for (std::uint64_t i = 0; r.ok() && i < acc; ++i) {
    a.accumulator_c2.push_back(r.Get<double>());
  }
  a.bias_accumulator = r.Get<double>();
  a.bias_accumulator_c1 = r.Get<double>();
  a.bias_accumulator_c2 = r.Get<double>();
  a.accumulator_samples = r.Get<std::uint64_t>();
  a.accumulator_clients = r.Get<std::uint64_t>();
  return a;
}

void PutDispatch(ByteWriter& w, const flow::DispatchStats& d) {
  w.Put<std::uint64_t>(d.received);
  w.Put<std::uint64_t>(d.sent);
  w.Put<std::uint64_t>(d.dropped);
  w.Put<std::uint64_t>(d.retries);
  w.Put<std::uint64_t>(d.retry_successes);
  w.Put<std::uint64_t>(d.deadline_drops);
  w.Put<std::uint64_t>(d.churn_losses);
  w.Put<std::uint64_t>(d.batches_truncated);
  w.Put<std::uint64_t>(d.batches.size());
  for (const auto& [time, count] : d.batches) {
    w.Put<std::int64_t>(time);
    w.Put<std::uint64_t>(count);
  }
  w.Put<std::uint64_t>(d.batch_keys.size());
  for (const std::uint64_t key : d.batch_keys) w.Put<std::uint64_t>(key);
}

flow::DispatchStats GetDispatch(ByteReader& r) {
  flow::DispatchStats d;
  d.received = static_cast<std::size_t>(r.Get<std::uint64_t>());
  d.sent = static_cast<std::size_t>(r.Get<std::uint64_t>());
  d.dropped = static_cast<std::size_t>(r.Get<std::uint64_t>());
  d.retries = static_cast<std::size_t>(r.Get<std::uint64_t>());
  d.retry_successes = static_cast<std::size_t>(r.Get<std::uint64_t>());
  d.deadline_drops = static_cast<std::size_t>(r.Get<std::uint64_t>());
  d.churn_losses = static_cast<std::size_t>(r.Get<std::uint64_t>());
  d.batches_truncated = static_cast<std::size_t>(r.Get<std::uint64_t>());
  const auto batches = r.Get<std::uint64_t>();
  for (std::uint64_t i = 0; r.ok() && i < batches; ++i) {
    const auto time = r.Get<std::int64_t>();
    const auto count = r.Get<std::uint64_t>();
    d.batches.emplace_back(time, static_cast<std::size_t>(count));
  }
  const auto keys = r.Get<std::uint64_t>();
  for (std::uint64_t i = 0; r.ok() && i < keys; ++i) {
    d.batch_keys.push_back(r.Get<std::uint64_t>());
  }
  return d;
}

}  // namespace

std::vector<std::byte> SerializeCheckpoint(const CheckpointState& s) {
  std::vector<std::byte> out;
  ByteWriter w(out);
  w.Put<std::uint32_t>(kMagic);
  w.Put<std::uint32_t>(kVersion);
  w.Put<std::uint64_t>(s.sequence);
  w.Put<std::uint64_t>(s.log_offset);
  w.Put<std::int64_t>(s.time);
  w.Put<std::int64_t>(s.resume_t0);
  w.Put<std::uint64_t>(s.next_round);
  w.Put<std::uint8_t>(s.quiescent ? 1 : 0);
  w.Put<std::uint64_t>(s.next_message_id);
  w.Put<std::uint64_t>(s.next_blob_id);
  w.Put<std::uint64_t>(s.rounds_started);
  w.Put<std::uint64_t>(s.last_recorded_round);
  w.Put<std::uint64_t>(s.messages_emitted);
  w.Put<std::uint64_t>(s.storage_bytes_written);
  w.Put<std::uint64_t>(s.storage_bytes_read);
  w.Put<std::uint64_t>(s.pending_delete_blobs.size());
  for (const std::uint64_t id : s.pending_delete_blobs) {
    w.Put<std::uint64_t>(id);
  }
  PutAggregation(w, s.aggregation);
  w.Put<std::uint64_t>(s.rounds.size());
  for (const auto& r : s.rounds) {
    w.Put<std::uint64_t>(r.round);
    w.Put<std::int64_t>(r.time);
    w.Put<double>(r.test_accuracy);
    w.Put<double>(r.test_logloss);
    w.Put<double>(r.train_accuracy);
    w.Put<double>(r.train_logloss);
    w.Put<std::uint64_t>(r.clients);
    w.Put<std::uint64_t>(r.samples);
  }
  PutDispatch(w, s.dispatch);
  w.Put<std::uint64_t>(s.scalars.size());
  for (const auto& row : s.scalars) {
    w.PutString(row.series);
    w.Put<std::int64_t>(row.time);
    w.Put<double>(row.value);
  }
  w.Put<std::uint64_t>(s.perf_samples.size());
  for (const auto& p : s.perf_samples) {
    w.Put<std::uint64_t>(p.phone.value());
    w.Put<std::uint64_t>(p.task.value());
    w.Put<std::int64_t>(p.time);
    w.Put<std::int64_t>(p.current_ua);
    w.Put<double>(p.voltage_mv);
    w.Put<double>(p.cpu_percent);
    w.Put<std::int64_t>(p.memory_kb);
    w.Put<std::int64_t>(p.bandwidth_bytes);
    w.Put<std::uint8_t>(static_cast<std::uint8_t>(p.stage));
  }
  const std::uint32_t crc = Crc32(out);
  w.Put<std::uint32_t>(crc);
  return out;
}

Result<CheckpointState> DeserializeCheckpoint(
    std::span<const std::byte> bytes) {
  if (bytes.size() < 3 * sizeof(std::uint32_t)) {
    return ParseError("checkpoint image too small: " +
                      std::to_string(bytes.size()) + " bytes");
  }
  const auto body = bytes.first(bytes.size() - sizeof(std::uint32_t));
  ByteReader crc_reader(bytes.subspan(body.size()));
  if (Crc32(body) != crc_reader.Get<std::uint32_t>()) {
    return ParseError("checkpoint CRC mismatch");
  }
  ByteReader r(body);
  if (r.Get<std::uint32_t>() != kMagic) {
    return ParseError("checkpoint magic mismatch");
  }
  const auto version = r.Get<std::uint32_t>();
  if (version != kVersion) {
    return ParseError("unsupported checkpoint version " +
                      std::to_string(version));
  }
  CheckpointState s;
  s.sequence = r.Get<std::uint64_t>();
  s.log_offset = r.Get<std::uint64_t>();
  s.time = r.Get<std::int64_t>();
  s.resume_t0 = r.Get<std::int64_t>();
  s.next_round = r.Get<std::uint64_t>();
  s.quiescent = r.Get<std::uint8_t>() != 0;
  s.next_message_id = r.Get<std::uint64_t>();
  s.next_blob_id = r.Get<std::uint64_t>();
  s.rounds_started = r.Get<std::uint64_t>();
  s.last_recorded_round = r.Get<std::uint64_t>();
  s.messages_emitted = r.Get<std::uint64_t>();
  s.storage_bytes_written = r.Get<std::uint64_t>();
  s.storage_bytes_read = r.Get<std::uint64_t>();
  const auto pending = r.Get<std::uint64_t>();
  for (std::uint64_t i = 0; r.ok() && i < pending; ++i) {
    s.pending_delete_blobs.push_back(r.Get<std::uint64_t>());
  }
  s.aggregation = GetAggregation(r);
  const auto rounds = r.Get<std::uint64_t>();
  for (std::uint64_t i = 0; r.ok() && i < rounds; ++i) {
    CheckpointRound row;
    row.round = r.Get<std::uint64_t>();
    row.time = r.Get<std::int64_t>();
    row.test_accuracy = r.Get<double>();
    row.test_logloss = r.Get<double>();
    row.train_accuracy = r.Get<double>();
    row.train_logloss = r.Get<double>();
    row.clients = r.Get<std::uint64_t>();
    row.samples = r.Get<std::uint64_t>();
    s.rounds.push_back(row);
  }
  s.dispatch = GetDispatch(r);
  const auto scalars = r.Get<std::uint64_t>();
  for (std::uint64_t i = 0; r.ok() && i < scalars; ++i) {
    cloud::ScalarRow row;
    row.series = r.GetString();
    row.time = r.Get<std::int64_t>();
    row.value = r.Get<double>();
    s.scalars.push_back(std::move(row));
  }
  const auto perf = r.Get<std::uint64_t>();
  for (std::uint64_t i = 0; r.ok() && i < perf; ++i) {
    device::PerfSample p;
    p.phone = PhoneId(r.Get<std::uint64_t>());
    p.task = TaskId(r.Get<std::uint64_t>());
    p.time = r.Get<std::int64_t>();
    p.current_ua = r.Get<std::int64_t>();
    p.voltage_mv = r.Get<double>();
    p.cpu_percent = r.Get<double>();
    p.memory_kb = r.Get<std::int64_t>();
    p.bandwidth_bytes = r.Get<std::int64_t>();
    p.stage = static_cast<device::ApkStage>(r.Get<std::uint8_t>());
    s.perf_samples.push_back(p);
  }
  if (!r.ok() || r.remaining() != 0) {
    return ParseError("checkpoint payload malformed");
  }
  return s;
}

std::string CheckpointPath(const std::string& dir) {
  return dir + "/checkpoint.bin";
}
std::string CheckpointTmpPath(const std::string& dir) {
  return dir + "/checkpoint.tmp";
}
std::string CheckpointPrevPath(const std::string& dir) {
  return dir + "/checkpoint.prev";
}
std::string BlobLogPath(const std::string& dir) { return dir + "/blob.log"; }

Status WriteCheckpoint(FileIo& io, const std::string& dir,
                       const CheckpointState& state) {
  const std::vector<std::byte> image = SerializeCheckpoint(state);
  const std::string tmp = CheckpointTmpPath(dir);
  const std::string bin = CheckpointPath(dir);
  if (Status written = io.WriteFile(tmp, image); !written.ok()) {
    return written;
  }
  // Demote the live checkpoint before publishing: if the crash lands
  // between the renames, recovery finds the complete tmp (tried second)
  // or the demoted prev (tried third) — never zero valid images.
  if (io.Exists(bin)) {
    if (Status demoted = io.Rename(bin, CheckpointPrevPath(dir));
        !demoted.ok()) {
      return demoted;
    }
  }
  return io.Rename(tmp, bin);
}

Result<CheckpointState> LoadLatestCheckpoint(FileIo& io,
                                             const std::string& dir) {
  for (const std::string& path :
       {CheckpointPath(dir), CheckpointTmpPath(dir),
        CheckpointPrevPath(dir)}) {
    if (!io.Exists(path)) continue;
    auto image = io.ReadFile(path);
    if (!image.ok()) continue;
    auto state = DeserializeCheckpoint(*image);
    if (state.ok()) return state;
  }
  return NotFound("no valid checkpoint in '" + dir + "'");
}

}  // namespace simdc::persist
