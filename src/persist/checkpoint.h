// Aggregator checkpoints: the snapshot half of the durable cloud store.
//
// A checkpoint is one flat CRC-framed image of everything the cloud plane
// needs to resume an experiment at a round boundary: the engine's round /
// id cursors, the AggregationService (history, counters, accumulated
// FedAvg state, published global model bits), recorded round metrics, the
// merged dispatch-stats prefix, and the cloud metrics database rows. The
// blob store itself is NOT in the checkpoint — its contents are the blob
// log's job; the checkpoint only pins `log_offset`, the durable log size
// its state corresponds to.
//
// File image:
//
//   [u32 magic "SDCP"][u32 version][payload][u32 crc32(magic..payload)]
//
// Publication is atomic: write checkpoint.tmp (+fsync), demote the
// previous checkpoint.bin to checkpoint.prev, rename tmp -> bin. Recovery
// tries bin, then tmp (crash landed between the two renames), then prev —
// any image whose CRC validates is a consistent resume point, because the
// log is append-only and an older checkpoint just replays a longer
// suffix.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cloud/aggregation.h"
#include "cloud/database.h"
#include "common/clock.h"
#include "common/error.h"
#include "device/perf_sample.h"
#include "flow/device_flow.h"
#include "persist/file_io.h"

namespace simdc::persist {

/// One recorded round (mirror of core::RoundMetrics; persist sits below
/// core in the layer order, so it carries its own row type).
struct CheckpointRound {
  std::uint64_t round = 0;
  SimTime time = 0;
  double test_accuracy = 0.0;
  double test_logloss = 0.0;
  double train_accuracy = 0.0;
  double train_logloss = 0.0;
  std::uint64_t clients = 0;
  std::uint64_t samples = 0;
};

/// Everything a resumed engine restores before re-entering the round loop.
struct CheckpointState {
  /// Monotonic checkpoint number (diagnostics; recovery picks by file
  /// precedence, not sequence).
  std::uint64_t sequence = 0;
  /// Durable blob-log bytes this state corresponds to. Resume truncates
  /// the log here: records past it belong to the partial round that will
  /// be deterministically re-executed.
  std::uint64_t log_offset = 0;
  /// Virtual time of the checkpoint (the recorded round's time).
  SimTime time = 0;
  /// t0 anchor for StartRoundFrom(next_round, resume_t0) on resume.
  SimTime resume_t0 = 0;
  std::uint64_t next_round = 0;
  /// True when no messages were in flight at the boundary (emitted ==
  /// delivered + dropped). Bit-identical resume is only guaranteed from
  /// quiescent boundaries; recovery surfaces the flag so callers can
  /// assert it.
  bool quiescent = true;
  std::uint64_t next_message_id = 1;
  std::uint64_t next_blob_id = 1;
  std::uint64_t rounds_started = 0;
  std::uint64_t last_recorded_round = 0;
  std::uint64_t messages_emitted = 0;
  /// BlobStore cumulative traffic counters (contents come from the log).
  std::uint64_t storage_bytes_written = 0;
  std::uint64_t storage_bytes_read = 0;
  /// Payload blob ids of the round preceding `next_round`, pending
  /// deletion at its start (reclaim_payload_blobs bookkeeping).
  std::vector<std::uint64_t> pending_delete_blobs;
  cloud::AggregationSnapshot aggregation;
  std::vector<CheckpointRound> rounds;
  /// Merged dispatch-stats prefix up to the boundary; the resumed engine
  /// concatenates its fresh stats after it (all later ticks stamp >= time,
  /// so prefix order is the global merge order).
  flow::DispatchStats dispatch;
  std::vector<cloud::ScalarRow> scalars;
  std::vector<device::PerfSample> perf_samples;
};

/// Flat CRC-framed image of `state` (see file-image comment above).
std::vector<std::byte> SerializeCheckpoint(const CheckpointState& state);

/// Validates magic/version/CRC and decodes. Any malformed image — torn,
/// truncated, bit-flipped — returns an error, never UB.
Result<CheckpointState> DeserializeCheckpoint(
    std::span<const std::byte> bytes);

/// File names inside a durability directory.
std::string CheckpointPath(const std::string& dir);
std::string CheckpointTmpPath(const std::string& dir);
std::string CheckpointPrevPath(const std::string& dir);
std::string BlobLogPath(const std::string& dir);

/// Atomically publishes `state` as `dir`'s checkpoint (tmp + demote +
/// rename; see file comment for the crash windows each step tolerates).
Status WriteCheckpoint(FileIo& io, const std::string& dir,
                       const CheckpointState& state);

/// Loads the newest checkpoint image that validates (bin, then tmp, then
/// prev). kNotFound when no file yields a valid image.
Result<CheckpointState> LoadLatestCheckpoint(FileIo& io,
                                             const std::string& dir);

}  // namespace simdc::persist
