// Append-only blob log: the redo stream of the durable cloud store.
//
// Every BlobStore mutation (Put / PutPooled / Delete) becomes one framed
// record appended to a single log file. Records are buffered in memory and
// group-committed — one Append + one Sync per commit point (a dispatch
// tick or round boundary) — so the simulation hot path stays O(1) syscalls
// per tick regardless of how many uploads the tick carried.
//
// Record framing:
//
//   [u32 payload_len][u32 crc32(payload)][payload]
//     payload := [u8 kind = kPut]    [u64 blob_id][u64 n][n bytes]
//              | [u8 kind = kDelete] [u64 blob_id]
//
// The CRC is the recovery contract: replay walks the file record by
// record, verifies length + CRC, and *truncates at the first torn or
// corrupt record* — whatever prefix validates is, by construction, exactly
// the state at some past group-commit boundary.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "common/error.h"
#include "common/ids.h"
#include "persist/file_io.h"

namespace simdc::persist {

enum class BlobRecordKind : std::uint8_t {
  kPut = 1,
  kDelete = 2,
};

/// One decoded log record handed to the replay callback. `bytes` aliases
/// the replay buffer — copy if you keep it.
struct BlobLogRecord {
  BlobRecordKind kind = BlobRecordKind::kPut;
  BlobId id;
  std::span<const std::byte> bytes;  // kPut only
};

/// Buffering writer over one log file. Mutations accumulate in memory
/// until Commit(), which appends + syncs them as a single batch. Nothing
/// is durable (and recovery will not see it) until Commit returns Ok.
class BlobLogWriter {
 public:
  BlobLogWriter(FileIo& io, std::string path)
      : io_(io), path_(std::move(path)) {}

  void AppendPut(BlobId id, std::span<const std::byte> bytes);
  void AppendDelete(BlobId id);

  /// Group commit: one Append + one Sync for everything buffered since the
  /// last commit. When the append itself fails the buffered records are
  /// kept for a retry; once the append succeeds the buffer is consumed and
  /// durable_size() advances even if the sync then fails (the bytes are in
  /// the file — re-appending them would duplicate records on replay — so
  /// only the returned status reports the degraded durability barrier).
  Status Commit();

  bool HasPending() const { return !pending_.empty(); }
  /// Bytes of log known durable (offset of the next commit's first byte).
  std::uint64_t durable_size() const { return durable_size_; }
  /// Commits issued (each = one Append + one Sync syscall pair).
  std::uint64_t commits() const { return commits_; }

  /// Aligns the writer with an existing log recovered to `size` bytes
  /// (resume path: the file already holds a validated prefix).
  void ResetDurableSize(std::uint64_t size) { durable_size_ = size; }

 private:
  FileIo& io_;
  std::string path_;
  std::vector<std::byte> pending_;
  std::uint64_t durable_size_ = 0;
  std::uint64_t commits_ = 0;
};

/// Outcome of a replay pass: how much of the file validated, and whether a
/// torn/corrupt suffix was dropped.
struct BlobLogReplayResult {
  std::uint64_t valid_bytes = 0;
  std::uint64_t records = 0;
  bool truncated_tail = false;
};

/// Replays `path` from the start, invoking `apply` for each record whose
/// frame validates (length fits, CRC matches), stopping at the first
/// invalid record. A missing file replays as empty. Does not modify the
/// file — pair with FileIo::TruncateTo(valid_bytes) to drop a torn tail.
Result<BlobLogReplayResult> ReplayBlobLog(
    FileIo& io, const std::string& path,
    const std::function<void(const BlobLogRecord&)>& apply);

}  // namespace simdc::persist
