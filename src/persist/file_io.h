// File I/O seam of the durability plane.
//
// All disk traffic of the durable cloud store (blob-log appends, fsync
// barriers, checkpoint temp-file + rename) goes through the FileIo
// interface, for one reason: crash-recovery is only a *testable* property
// if the test can make the I/O fail at chosen points. RealFileIo is the
// POSIX implementation; FaultInjector wraps any FileIo and injects
// seed-deterministic faults — a simulated process kill mid-append (torn
// final write), a failed fsync, a short read — so DurableRecoveryTest can
// crash the engine at every interesting byte and prove recovery lands on a
// valid prefix state.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/error.h"

namespace simdc::persist {

/// Minimal file-system surface the durability plane needs. Paths are plain
/// strings; implementations must be usable from one thread at a time (the
/// durable store serializes calls on the engine's serial plane).
class FileIo {
 public:
  virtual ~FileIo() = default;

  /// Appends `bytes` to `path`, creating the file if missing.
  virtual Status Append(const std::string& path,
                        std::span<const std::byte> bytes) = 0;

  /// Durability barrier: flushes `path`'s written data to stable storage.
  virtual Status Sync(const std::string& path) = 0;

  /// Creates/truncates `path` with `bytes` and syncs it (checkpoint temp
  /// files; pair with Rename for atomic publication).
  virtual Status WriteFile(const std::string& path,
                           std::span<const std::byte> bytes) = 0;

  /// Atomically replaces `to` with `from` (POSIX rename semantics).
  virtual Status Rename(const std::string& from, const std::string& to) = 0;

  /// Whole-file read. A short read (fewer bytes than the file holds) is a
  /// legal outcome under injected faults; recovery treats the missing tail
  /// as torn.
  virtual Result<std::vector<std::byte>> ReadFile(const std::string& path) = 0;

  virtual Result<std::uint64_t> FileSize(const std::string& path) = 0;
  virtual Status TruncateTo(const std::string& path, std::uint64_t size) = 0;
  virtual bool Exists(const std::string& path) = 0;
  virtual Status Remove(const std::string& path) = 0;
  /// mkdir -p.
  virtual Status CreateDirs(const std::string& path) = 0;
};

/// POSIX-backed FileIo. Every call opens/closes its own descriptor —
/// O(1) syscalls per call, and the durable store only calls at group-commit
/// and checkpoint boundaries, so descriptor churn is off the hot path (and
/// no descriptor can leak across a simulated crash).
class RealFileIo final : public FileIo {
 public:
  Status Append(const std::string& path,
                std::span<const std::byte> bytes) override;
  Status Sync(const std::string& path) override;
  Status WriteFile(const std::string& path,
                   std::span<const std::byte> bytes) override;
  Status Rename(const std::string& from, const std::string& to) override;
  Result<std::vector<std::byte>> ReadFile(const std::string& path) override;
  Result<std::uint64_t> FileSize(const std::string& path) override;
  Status TruncateTo(const std::string& path, std::uint64_t size) override;
  bool Exists(const std::string& path) override;
  Status Remove(const std::string& path) override;
  Status CreateDirs(const std::string& path) override;

  /// Process-wide instance (the default when DurabilityConfig::io is null).
  static RealFileIo& Instance();
};

/// Thrown by FaultInjector at a configured crash point: models the process
/// dying mid-I/O. Tests catch it, destroy the engine, and recover from
/// whatever reached the (real) files — including the torn tail the
/// injector left behind.
class SimulatedCrash : public std::runtime_error {
 public:
  explicit SimulatedCrash(const std::string& what)
      : std::runtime_error(what) {}
};

/// Deterministic fault schedule for one FaultInjector. Operation indices
/// are 1-based and count calls of that operation kind on the injector;
/// 0 disables the fault. Unspecified torn/short lengths derive from `seed`
/// so sweeps over seeds explore different byte offsets reproducibly.
struct FaultPlan {
  std::uint64_t seed = 0;
  /// Crash on the Nth Append: write only `torn_keep_bytes` of it, throw.
  std::uint64_t crash_on_append = 0;
  /// Bytes of the crashing append that reach the file (kSeedDerived =
  /// SplitMix64(seed ^ append index) % (size + 1)).
  std::uint64_t torn_keep_bytes = kSeedDerived;
  /// Crash on the Nth WriteFile: leave a torn temp file, throw.
  std::uint64_t crash_on_write_file = 0;
  /// Crash around the Nth Rename: before applying it (torn-checkpoint
  /// publication) or after (checkpoint durable, crash before anything else).
  std::uint64_t crash_before_rename = 0;
  std::uint64_t crash_after_rename = 0;
  /// The Nth Sync fails with kUnavailable (no crash) — models fsync EIO.
  std::uint64_t fail_sync_on = 0;
  /// The Nth ReadFile returns only a prefix (length seed-derived unless
  /// `short_read_bytes` pins it).
  std::uint64_t short_read_on = 0;
  std::uint64_t short_read_bytes = kSeedDerived;

  static constexpr std::uint64_t kSeedDerived = ~std::uint64_t{0};
};

/// FileIo decorator injecting the faults a FaultPlan schedules. All
/// bookkeeping is plain counters — no RNG draws at call time beyond the
/// SplitMix64 hash of (seed, op index) — so a given plan produces the same
/// fault bytes on every run.
class FaultInjector final : public FileIo {
 public:
  explicit FaultInjector(FaultPlan plan, FileIo* inner = nullptr)
      : plan_(plan), inner_(inner != nullptr ? inner : &RealFileIo::Instance()) {}

  Status Append(const std::string& path,
                std::span<const std::byte> bytes) override;
  Status Sync(const std::string& path) override;
  Status WriteFile(const std::string& path,
                   std::span<const std::byte> bytes) override;
  Status Rename(const std::string& from, const std::string& to) override;
  Result<std::vector<std::byte>> ReadFile(const std::string& path) override;
  Result<std::uint64_t> FileSize(const std::string& path) override;
  Status TruncateTo(const std::string& path, std::uint64_t size) override;
  bool Exists(const std::string& path) override;
  Status Remove(const std::string& path) override;
  Status CreateDirs(const std::string& path) override;

  std::uint64_t appends() const { return appends_; }
  std::uint64_t syncs() const { return syncs_; }
  std::uint64_t write_files() const { return write_files_; }
  std::uint64_t renames() const { return renames_; }
  std::uint64_t reads() const { return reads_; }

 private:
  std::uint64_t TornLength(std::uint64_t configured, std::uint64_t index,
                           std::uint64_t size) const;

  FaultPlan plan_;
  FileIo* inner_;
  std::uint64_t appends_ = 0;
  std::uint64_t syncs_ = 0;
  std::uint64_t write_files_ = 0;
  std::uint64_t renames_ = 0;
  std::uint64_t reads_ = 0;
};

}  // namespace simdc::persist
