// Byte-level wire helpers for the durability plane.
//
// Checkpoints and blob-log records are flat little-endian images whose
// bit-exactness *is* the recovery contract: a recovered f32 weight or f64
// metric must be the same bits that were checkpointed, so every scalar is
// moved with memcpy (never a lossy cast) and every read is bounds-checked
// so a torn or corrupt file can never read past its buffer. CRC-32 (IEEE,
// reflected 0xEDB88320 — the zlib/ethernet polynomial) frames both record
// and checkpoint payloads.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "common/error.h"

namespace simdc::persist {

namespace detail {
// Slicing-by-8 tables: table[0] is the classic byte-at-a-time table;
// table[s][i] is the CRC of byte i followed by s zero bytes, letting the
// hot loop fold 8 input bytes per iteration. Blob payloads dominate the
// log, so the CRC runs over every model upload — the sliced loop is ~4x
// the byte loop and keeps the durability plane off the round's critical
// path.
constexpr std::array<std::array<std::uint32_t, 256>, 8> MakeCrc32Tables() {
  std::array<std::array<std::uint32_t, 256>, 8> tables{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    tables[0][i] = c;
  }
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = tables[0][i];
    for (std::size_t s = 1; s < 8; ++s) {
      c = tables[0][c & 0xFFu] ^ (c >> 8);
      tables[s][i] = c;
    }
  }
  return tables;
}
inline constexpr std::array<std::array<std::uint32_t, 256>, 8> kCrc32Tables =
    MakeCrc32Tables();
}  // namespace detail

/// CRC-32 (IEEE) of `bytes`; init/xorout 0xFFFFFFFF. The 8-byte fold
/// loads words host-endian — same single-architecture contract as the
/// rest of the wire format (see file comment).
inline std::uint32_t Crc32(std::span<const std::byte> bytes) {
  const auto& t = detail::kCrc32Tables;
  std::uint32_t c = 0xFFFFFFFFu;
  const std::byte* p = bytes.data();
  std::size_t n = bytes.size();
  for (; n >= 8; p += 8, n -= 8) {
    std::uint32_t lo;
    std::uint32_t hi;
    std::memcpy(&lo, p, sizeof(lo));
    std::memcpy(&hi, p + 4, sizeof(hi));
    lo ^= c;
    c = t[7][lo & 0xFFu] ^ t[6][(lo >> 8) & 0xFFu] ^
        t[5][(lo >> 16) & 0xFFu] ^ t[4][lo >> 24] ^ t[3][hi & 0xFFu] ^
        t[2][(hi >> 8) & 0xFFu] ^ t[1][(hi >> 16) & 0xFFu] ^ t[0][hi >> 24];
  }
  for (; n > 0; ++p, --n) {
    c = t[0][(c ^ static_cast<std::uint8_t>(*p)) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

/// Appends fixed-width scalars to a byte buffer. All multi-byte values are
/// host-endian (the platform targets one architecture per deployment; a
/// checkpoint is not a network interchange format), moved with memcpy so
/// float/double bit patterns survive exactly.
class ByteWriter {
 public:
  explicit ByteWriter(std::vector<std::byte>& out) : out_(out) {}

  template <typename T>
  void Put(T value) {
    static_assert(std::is_trivially_copyable_v<T>);
    const std::size_t at = out_.size();
    out_.resize(at + sizeof(T));
    std::memcpy(out_.data() + at, &value, sizeof(T));
  }

  void PutBytes(std::span<const std::byte> bytes) {
    out_.insert(out_.end(), bytes.begin(), bytes.end());
  }

  void PutString(const std::string& s) {
    Put<std::uint64_t>(s.size());
    PutBytes(std::as_bytes(std::span(s.data(), s.size())));
  }

  std::size_t size() const { return out_.size(); }

 private:
  std::vector<std::byte>& out_;
};

/// Bounds-checked reader over a byte image. Every accessor reports
/// exhaustion through ok() instead of reading past the end, so recovery
/// can treat any malformed image as "corrupt" without UB.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::byte> bytes) : bytes_(bytes) {}

  bool ok() const { return ok_; }
  std::size_t remaining() const { return bytes_.size() - pos_; }

  template <typename T>
  T Get() {
    static_assert(std::is_trivially_copyable_v<T>);
    T value{};
    if (!ok_ || remaining() < sizeof(T)) {
      ok_ = false;
      return value;
    }
    std::memcpy(&value, bytes_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return value;
  }

  std::span<const std::byte> GetBytes(std::size_t n) {
    if (!ok_ || remaining() < n) {
      ok_ = false;
      return {};
    }
    const auto out = bytes_.subspan(pos_, n);
    pos_ += n;
    return out;
  }

  std::string GetString() {
    const auto n = Get<std::uint64_t>();
    const auto bytes = GetBytes(static_cast<std::size_t>(n));
    return ok_ ? std::string(reinterpret_cast<const char*>(bytes.data()),
                             bytes.size())
               : std::string();
  }

 private:
  std::span<const std::byte> bytes_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace simdc::persist
