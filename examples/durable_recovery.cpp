// Durable recovery quickstart: kill a federated-learning run mid-flight
// and resume it bit-identically from the append-only blob log + the last
// aggregator checkpoint.
//
//   1. Run a small FL experiment to completion with
//      durability = log+checkpoint — the reference bits.
//   2. Re-run it against a persist::FaultInjector that crashes the
//      process (SimulatedCrash) on the 4th log append — a mid-run kill.
//   3. Build a fresh engine over the same durability directory, call
//      RestoreFromRecovery() (latest valid checkpoint + log replay), and
//      finish the run.
//   4. Assert the recovered run's rounds, weights, and traffic counters
//      are bit-identical to the uninterrupted reference.
//
// Build & run:  ./build/examples/durable_recovery
#include <cstdio>
#include <filesystem>

#include "core/fl_engine.h"
#include "data/synth_avazu.h"
#include "persist/file_io.h"
#include "sim/event_loop.h"

int main() {
  using namespace simdc;

  // --- A small synthetic CTR fleet ---
  data::SynthConfig data_config;
  data_config.num_devices = 24;
  data_config.records_per_device_mean = 10;
  data_config.num_test_devices = 6;
  data_config.hash_dim = 1u << 10;
  data_config.seed = 21;
  const auto dataset = data::GenerateSyntheticAvazu(data_config);

  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "simdc_example_durable";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  auto make_config = [&](persist::FileIo* io) {
    core::FlExperimentConfig config;
    config.rounds = 3;
    config.train.learning_rate = 0.05;
    config.train.epochs = 1;
    config.logical_fraction = 0.5;
    config.trigger = cloud::AggregationTrigger::kScheduled;
    config.schedule_period = Seconds(60.0);
    config.seed = 11;
    config.durability.mode = persist::DurabilityMode::kLogCheckpoint;
    config.durability.dir = (dir / (io ? "crash" : "ref")).string();
    config.durability.io = io;
    return config;
  };

  // --- 1. The uninterrupted reference ---
  core::FlRunResult reference;
  {
    sim::EventLoop loop;
    core::FlEngine engine(loop, dataset, make_config(nullptr));
    reference = engine.Run();
  }
  std::printf("reference run: %zu rounds, final acc %.4f\n",
              reference.rounds.size(),
              reference.rounds.back().test_accuracy);

  // --- 2. Kill the run on the 4th durable log append ---
  persist::FaultPlan plan;
  plan.seed = 7;
  plan.crash_on_append = 4;
  persist::FaultInjector chaos(plan);
  const auto crash_config = make_config(&chaos);
  bool crashed = false;
  try {
    sim::EventLoop loop;
    core::FlEngine engine(loop, dataset, crash_config);
    (void)engine.Run();
  } catch (const persist::SimulatedCrash& crash) {
    crashed = true;
    std::printf("crashed mid-run as planned: %s\n", crash.what());
  }
  if (!crashed) {
    std::fprintf(stderr, "fault plan never fired\n");
    return 1;
  }

  // --- 3. Recover: new engine, same directory, resume + finish ---
  auto resume_config = crash_config;
  resume_config.durability.io = nullptr;  // healthy I/O this time
  sim::EventLoop loop;
  core::FlEngine engine(loop, dataset, resume_config);
  if (const Status restored = engine.RestoreFromRecovery(); !restored.ok()) {
    std::fprintf(stderr, "recovery failed: %s\n",
                 restored.ToString().c_str());
    return 1;
  }
  const core::FlRunResult recovered = engine.Run();
  std::printf("recovered run: resumed and finished %zu rounds\n",
              recovered.rounds.size());

  // --- 4. Bit-identity against the reference ---
  bool identical = recovered.final_weights == reference.final_weights &&
                   recovered.final_bias == reference.final_bias &&
                   recovered.messages_dropped == reference.messages_dropped &&
                   recovered.rounds.size() == reference.rounds.size();
  for (std::size_t r = 0; identical && r < reference.rounds.size(); ++r) {
    identical = recovered.rounds[r].time == reference.rounds[r].time &&
                recovered.rounds[r].clients == reference.rounds[r].clients &&
                recovered.rounds[r].samples == reference.rounds[r].samples;
  }
  for (const auto& round : recovered.rounds) {
    std::printf("  round %zu @ %5.1fs: test acc %.4f (%zu clients)\n",
                round.round, ToSeconds(round.time), round.test_accuracy,
                round.clients);
  }
  std::printf("recovered bits identical to uninterrupted run: %s\n",
              identical ? "yes" : "NO");
  std::filesystem::remove_all(dir);
  return identical ? 0 : 1;
}
