// Traffic shaping: simulate a day of global device traffic hitting a
// cloud service through DeviceFlow.
//
// Scenario (paper §V, Fig. 3): a fleet spread across time zones produces a
// diurnal two-peak traffic pattern. A capacity-planning engineer wants to
// know the peak arrival rate their aggregation endpoint must sustain and
// how a burst at a single time point smears under DeviceFlow's 700 msg/s
// sender. We shape 100,000 device reports over a virtual 24 h with a
// user-defined diurnal curve and print the hourly load profile the cloud
// observes.
//
// Build & run:  ./build/examples/traffic_shaping
#include <cstdio>
#include <vector>

#include "flow/device_flow.h"
#include "flow/rate_functions.h"
#include "sim/event_loop.h"

namespace {

using namespace simdc;

class HourlyLoadEndpoint final : public flow::CloudEndpoint {
 public:
  explicit HourlyLoadEndpoint(double hours) : per_hour_(static_cast<std::size_t>(hours), 0) {}

  void Deliver(const flow::Message&, SimTime arrival) override {
    const auto hour = static_cast<std::size_t>(ToSeconds(arrival) / 3600.0);
    if (hour < per_hour_.size()) ++per_hour_[hour];
    ++total_;
  }

  const std::vector<std::size_t>& per_hour() const { return per_hour_; }
  std::size_t total() const { return total_; }

 private:
  std::vector<std::size_t> per_hour_;
  std::size_t total_ = 0;
};

}  // namespace

int main() {
  sim::EventLoop loop;
  flow::DeviceFlow device_flow(loop);
  HourlyLoadEndpoint cloud(24);

  // User-defined diurnal curve: morning peak ~9:30, bigger evening peak
  // ~20:00, scaled onto a 24 h dispatch interval.
  flow::TimeIntervalDispatch strategy;
  strategy.rate = flow::DiurnalCurve();
  strategy.interval = Seconds(24.0 * 3600.0);
  strategy.failure_probability = 0.02;  // 2% of uploads fail in transit
  if (!device_flow.ConfigureTask(TaskId(1), strategy, &cloud, 2024).ok()) {
    return 1;
  }

  // 100,000 device reports accumulated from the edge during the "night".
  constexpr std::size_t kReports = 100000;
  for (std::size_t i = 0; i < kReports; ++i) {
    flow::Message m;
    m.id = MessageId(i + 1);
    m.task = TaskId(1);
    m.device = DeviceId(i);
    m.payload_bytes = 33 * 1024;
    if (!device_flow.OnMessage(std::move(m)).ok()) return 1;
  }
  if (!device_flow.OnRoundEnd(TaskId(1), 0).ok()) return 1;
  loop.Run();

  std::printf("Diurnal traffic of %zu devices over a virtual day "
              "(2%% dropout):\n\n", kReports);
  std::printf("%6s %10s  %s\n", "hour", "arrivals", "load");
  std::size_t peak = 0;
  for (std::size_t h = 0; h < 24; ++h) {
    peak = std::max(peak, cloud.per_hour()[h]);
  }
  for (std::size_t h = 0; h < 24; ++h) {
    const std::size_t n = cloud.per_hour()[h];
    const std::size_t bar = peak == 0 ? 0 : n * 50 / peak;
    std::printf("%4zu:00 %9zu  %s\n", h, n, std::string(bar, '#').c_str());
  }
  const auto& stats = device_flow.FindDispatcher(TaskId(1))->stats();
  std::printf("\nreceived by cloud: %zu, dropped in transit: %zu\n",
              cloud.total(), stats.dropped);
  std::printf("peak hourly load: %zu messages (%.1f msg/s sustained)\n", peak,
              static_cast<double>(peak) / 3600.0);
  std::printf("provisioning hint: the aggregation endpoint must sustain the "
              "evening peak,\nnot the daily average (%.1f msg/s).\n",
              static_cast<double>(cloud.total()) / (24.0 * 3600.0));
  return 0;
}
