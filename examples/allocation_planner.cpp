// Allocation planner: interactive-style "what if" tool for the hybrid
// allocation optimizer (paper §IV-B).
//
// Scenario: a platform operator wants to know, before submitting a task,
// how many simulated devices should run on the server cluster vs the
// physical phone cluster, and what buying more phones or more cluster
// capacity would do to the makespan. This example sweeps both axes and
// prints the resulting plans — the kind of capacity planning the paper's
// optimization enables.
//
// Build & run:  ./build/examples/allocation_planner
#include <cstdio>

#include "device/grade.h"
#include "sched/allocation.h"

namespace {

using namespace simdc;

sched::GradeAllocationInput MakeInput(const device::GradeSpec& spec,
                                      std::size_t devices,
                                      std::size_t bundles,
                                      std::size_t phones) {
  sched::GradeAllocationInput input;
  input.total_devices = devices;
  input.benchmarking = 5;
  input.logical_bundles = bundles;
  input.bundles_per_device = spec.unit_bundles;
  input.phones = phones;
  input.alpha_s = spec.alpha_s;
  input.beta_s = spec.beta_s;
  input.lambda_s = spec.lambda_s;
  return input;
}

}  // namespace

int main() {
  const auto high = device::HighGradeSpec();
  const auto low = device::LowGradeSpec();

  std::printf("Hybrid allocation planner — 500 High + 500 Low devices\n\n");

  // Axis 1: growing the logical cluster.
  std::printf("A. Scaling the logical cluster (phones fixed at 12 High / 8 "
              "Low):\n");
  std::printf("%18s %14s %16s %16s\n", "bundles/grade", "makespan (s)",
              "High on logical", "Low on logical");
  for (const std::size_t bundles : {40u, 80u, 160u, 320u, 640u}) {
    const std::vector<sched::GradeAllocationInput> grades = {
        MakeInput(high, 500, bundles, 12), MakeInput(low, 500, bundles, 8)};
    const auto plan = sched::SolveHybridAllocation(grades);
    if (!plan.ok()) {
      std::printf("%18zu %14s\n", bundles, "infeasible");
      continue;
    }
    std::printf("%18zu %14.1f %16zu %16zu\n", bundles, plan->total_seconds,
                plan->logical_devices[0], plan->logical_devices[1]);
  }

  // Axis 2: growing the phone cluster.
  std::printf("\nB. Scaling the phone cluster (bundles fixed at 100/grade):\n");
  std::printf("%18s %14s %16s %16s\n", "phones/grade", "makespan (s)",
              "High on phones", "Low on phones");
  for (const std::size_t phones : {4u, 8u, 16u, 32u, 64u}) {
    const std::vector<sched::GradeAllocationInput> grades = {
        MakeInput(high, 500, 100, phones), MakeInput(low, 500, 100, phones)};
    const auto plan = sched::SolveHybridAllocation(grades);
    if (!plan.ok()) {
      std::printf("%18zu %14s\n", phones, "infeasible");
      continue;
    }
    std::printf("%18zu %14.1f %16zu %16zu\n", phones, plan->total_seconds,
                495 - plan->logical_devices[0],
                495 - plan->logical_devices[1]);
  }

  // Axis 3: the paper's five fixed ratios vs the optimum, at one config.
  std::printf("\nC. Fixed allocation ratios vs optimizer (100 bundles, 12/8 "
              "phones):\n");
  const std::vector<sched::GradeAllocationInput> grades = {
      MakeInput(high, 500, 100, 12), MakeInput(low, 500, 100, 8)};
  for (const double ratio : {1.0, 0.75, 0.5, 0.25, 0.0}) {
    const auto x = sched::FixedRatioAllocation(grades, ratio);
    std::printf("  %3.0f%% logical: %8.1f s\n", ratio * 100.0,
                sched::PredictMakespan(grades, x));
  }
  const auto best = sched::SolveHybridAllocation(grades);
  if (best.ok()) {
    std::printf("  optimizer   : %8.1f s  (x_High=%zu, x_Low=%zu)\n",
                best->total_seconds, best->logical_devices[0],
                best->logical_devices[1]);
  }
  std::printf(
      "\nReading the output: adding cluster bundles helps until the phone\n"
      "side becomes the bottleneck and vice versa; the optimizer always\n"
      "balances the two queues (Tl ~ Tp) — exactly Fig. 7's red line.\n");
  return 0;
}
