// Spec-driven submission: run SimDC tasks from textual task specs — the
// headless equivalent of the paper's GUI workflow (§III-C).
//
// Usage:
//   ./build/examples/spec_driven              # runs two built-in specs
//   ./build/examples/spec_driven my_task.ini  # runs a spec from disk
#include <cstdio>
#include <fstream>
#include <sstream>

#include "config/task_config.h"
#include "core/platform.h"
#include "core/status.h"
#include "data/synth_avazu.h"

namespace {

constexpr const char* kNightlySpec = R"(
# High-priority nightly training job across both grades.
[task]
name = nightly-ctr
priority = 9
rounds = 2

[devices.high]
count = 80
benchmarking = 2
logical_bundles = 96
phones = 6

[devices.low]
count = 60
benchmarking = 2
logical_bundles = 64
phones = 4

[execution]
parallelism = 2
shards = 2
decode_plane = decoded
)";

constexpr const char* kSmokeSpec = R"(
# Low-priority functional smoke test; queued behind the nightly job.
[task]
name = smoke-test
priority = 1
rounds = 1

[devices.high]
count = 200
logical_bundles = 160
phones = 8
)";

}  // namespace

int main(int argc, char** argv) {
  using namespace simdc;

  std::vector<std::string> spec_texts;
  if (argc > 1) {
    std::ifstream file(argv[1]);
    if (!file) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    std::ostringstream buffer;
    buffer << file.rdbuf();
    spec_texts.push_back(buffer.str());
  } else {
    spec_texts = {kNightlySpec, kSmokeSpec};
  }

  // Parse each spec once; the [execution] scan below and the task
  // submission loop share the parsed documents.
  std::vector<config::IniDocument> docs;
  for (const auto& text : spec_texts) {
    auto doc = config::ParseIni(text);
    if (!doc.ok()) {
      std::fprintf(stderr, "spec rejected: %s\n",
                   doc.error().ToString().c_str());
      return 1;
    }
    docs.push_back(std::move(*doc));
  }

  // Size the platform's training pool from the first spec that pins a
  // [execution] parallelism (0 keeps the hardware-concurrency default).
  core::PlatformConfig platform_config;
  config::ExecutionConfig execution_knobs;
  for (const auto& doc : docs) {
    auto execution = config::LoadExecution(doc);
    if (!execution.ok()) continue;
    // Knobs are independent: the first spec pinning each one wins, so a
    // shards-only spec cannot shadow a later spec's parallelism.
    if (execution->parallelism > 0 && execution_knobs.parallelism == 0) {
      execution_knobs.parallelism = execution->parallelism;
      platform_config.worker_threads = execution->parallelism;
    }
    if (execution->shards > 0 && execution_knobs.shards == 0) {
      execution_knobs.shards = execution->shards;
    }
    // decode_plane defaults to decoded; the first spec asking for the
    // legacy (serial-decode) plane pins it for the run.
    if (execution->decode_plane == flow::DecodePlane::kLegacy) {
      execution_knobs.decode_plane = flow::DecodePlane::kLegacy;
    }
  }
  const bool have_knobs =
      execution_knobs.parallelism > 0 || execution_knobs.shards > 0;
  if (have_knobs) {
    std::printf("using parallelism = %zu, shards = %zu, decode_plane = %s "
                "from spec [execution]\n",
                execution_knobs.parallelism, execution_knobs.shards,
                execution_knobs.decode_plane == flow::DecodePlane::kDecoded
                    ? "decoded"
                    : "legacy");
  }
  core::Platform platform(platform_config);
  for (const auto& doc : docs) {
    auto task = config::LoadTaskSpec(doc);
    if (!task.ok()) {
      std::fprintf(stderr, "spec rejected: %s\n",
                   task.error().ToString().c_str());
      return 1;
    }
    task->id = platform.NextTaskId();
    std::printf("submitting '%s' as %s (priority %d, %zu devices)\n",
                task->name.c_str(), task->id.ToString().c_str(),
                task->priority, task->TotalDevices());
    if (auto submitted = platform.SubmitTask(std::move(*task));
        !submitted.ok()) {
      std::fprintf(stderr, "submit failed: %s\n",
                   submitted.ToString().c_str());
      return 1;
    }
  }

  std::printf("\n%s\n", core::RenderStatus(platform).c_str());
  const auto reports = platform.RunQueuedTasks();
  for (const auto& report : reports) {
    std::printf("%s: %s — %.1f virtual seconds (logical %.1fs / device "
                "%.1fs)\n",
                report.id.ToString().c_str(),
                report.ok ? "completed" : "FAILED",
                report.elapsed_seconds(), report.allocation.logical_seconds,
                report.allocation.device_seconds);
  }
  std::printf("\n%s\n", core::RenderStatus(platform).c_str());

  // The [execution] knobs map straight onto the FL engine: parallelism
  // sizes the training pool, shards the fleet topology. Both leave every
  // bit of the result unchanged (FlExperimentConfig::shards).
  if (have_knobs) {
    data::SynthConfig data_config;
    data_config.num_devices = 60;
    data_config.hash_dim = 1u << 12;
    const auto dataset = data::GenerateSyntheticAvazu(data_config);
    core::FlExperimentConfig fl;
    fl.rounds = 2;
    fl.trigger = cloud::AggregationTrigger::kScheduled;
    fl.schedule_period = Seconds(30.0);
    fl.strategy = flow::RealtimeAccumulated{
        {1}, 0.0, flow::kShardWidthInvariantCapacity};
    fl.parallelism = execution_knobs.parallelism;
    fl.shards = execution_knobs.shards;
    fl.decode_plane = execution_knobs.decode_plane;
    const auto fl_result = platform.RunFlExperiment(dataset, fl);
    std::printf("\nspec-driven FL (%zu devices, %zu fleet shards):\n",
                dataset.devices.size(),
                std::max<std::size_t>(1, execution_knobs.shards));
    for (const auto& round : fl_result.rounds) {
      std::printf("  round %zu @ %5.1fs: test acc %.4f, logloss %.4f\n",
                  round.round, ToSeconds(round.time), round.test_accuracy,
                  round.test_logloss);
    }
  }
  return 0;
}
