// Spec-driven submission: run SimDC tasks from textual task specs — the
// headless equivalent of the paper's GUI workflow (§III-C).
//
// Usage:
//   ./build/examples/spec_driven              # runs two built-in specs
//   ./build/examples/spec_driven my_task.ini  # runs a spec from disk
#include <cstdio>
#include <fstream>
#include <sstream>

#include "config/task_config.h"
#include "core/platform.h"
#include "core/status.h"

namespace {

constexpr const char* kNightlySpec = R"(
# High-priority nightly training job across both grades.
[task]
name = nightly-ctr
priority = 9
rounds = 2

[devices.high]
count = 80
benchmarking = 2
logical_bundles = 96
phones = 6

[devices.low]
count = 60
benchmarking = 2
logical_bundles = 64
phones = 4

[execution]
parallelism = 2
)";

constexpr const char* kSmokeSpec = R"(
# Low-priority functional smoke test; queued behind the nightly job.
[task]
name = smoke-test
priority = 1
rounds = 1

[devices.high]
count = 200
logical_bundles = 160
phones = 8
)";

}  // namespace

int main(int argc, char** argv) {
  using namespace simdc;

  std::vector<std::string> spec_texts;
  if (argc > 1) {
    std::ifstream file(argv[1]);
    if (!file) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    std::ostringstream buffer;
    buffer << file.rdbuf();
    spec_texts.push_back(buffer.str());
  } else {
    spec_texts = {kNightlySpec, kSmokeSpec};
  }

  // Parse each spec once; the [execution] scan below and the task
  // submission loop share the parsed documents.
  std::vector<config::IniDocument> docs;
  for (const auto& text : spec_texts) {
    auto doc = config::ParseIni(text);
    if (!doc.ok()) {
      std::fprintf(stderr, "spec rejected: %s\n",
                   doc.error().ToString().c_str());
      return 1;
    }
    docs.push_back(std::move(*doc));
  }

  // Size the platform's training pool from the first spec that pins a
  // [execution] parallelism (0 keeps the hardware-concurrency default).
  core::PlatformConfig platform_config;
  for (const auto& doc : docs) {
    auto execution = config::LoadExecution(doc);
    if (execution.ok() && execution->parallelism > 0) {
      platform_config.worker_threads = execution->parallelism;
      std::printf("using parallelism = %zu from spec [execution]\n",
                  execution->parallelism);
      break;
    }
  }
  core::Platform platform(platform_config);
  for (const auto& doc : docs) {
    auto task = config::LoadTaskSpec(doc);
    if (!task.ok()) {
      std::fprintf(stderr, "spec rejected: %s\n",
                   task.error().ToString().c_str());
      return 1;
    }
    task->id = platform.NextTaskId();
    std::printf("submitting '%s' as %s (priority %d, %zu devices)\n",
                task->name.c_str(), task->id.ToString().c_str(),
                task->priority, task->TotalDevices());
    if (auto submitted = platform.SubmitTask(std::move(*task));
        !submitted.ok()) {
      std::fprintf(stderr, "submit failed: %s\n",
                   submitted.ToString().c_str());
      return 1;
    }
  }

  std::printf("\n%s\n", core::RenderStatus(platform).c_str());
  const auto reports = platform.RunQueuedTasks();
  for (const auto& report : reports) {
    std::printf("%s: %s — %.1f virtual seconds (logical %.1fs / device "
                "%.1fs)\n",
                report.id.ToString().c_str(),
                report.ok ? "completed" : "FAILED",
                report.elapsed_seconds(), report.allocation.logical_seconds,
                report.allocation.device_seconds);
  }
  std::printf("\n%s\n", core::RenderStatus(platform).c_str());
  return 0;
}
