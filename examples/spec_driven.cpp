// Spec-driven submission: run SimDC tasks from textual task specs — the
// headless equivalent of the paper's GUI workflow (§III-C).
//
// Each spec is one TENANT. Its [traffic], [link], [behavior],
// [aggregation] and [execution] sections configure THAT task alone —
// two specs with different [link] retry policies or round_quorum knobs
// genuinely run two different policies side by side on the shared fleet
// (historically the first spec's [execution] block was applied
// globally). Admission, fair allocation and per-task SLA rows come from
// the multi-tenant plane (core::MultiTenantEngine).
//
// Usage:
//   ./build/examples/spec_driven                # runs two built-in specs
//   ./build/examples/spec_driven a.ini b.ini    # runs specs from disk
#include <cstdio>
#include <fstream>
#include <sstream>

#include "config/task_config.h"
#include "core/platform.h"
#include "core/status.h"
#include "data/synth_avazu.h"

namespace {

constexpr const char* kNightlySpec = R"(
# High-priority nightly training job across both grades: lossy links with
# retries, and a round quorum so stragglers cannot stall the round.
[task]
name = nightly-ctr
priority = 9
rounds = 2

[devices.high]
count = 80
benchmarking = 2
logical_bundles = 96
phones = 6

[devices.low]
count = 60
benchmarking = 2
logical_bundles = 64
phones = 4

[link]
transient_failure_probability = 0.1
max_attempts = 3
backoff_initial_s = 2
backoff_multiplier = 2.0
backoff_max_s = 30

[execution]
parallelism = 2
shards = 2
decode_plane = decoded
aggregate_plane = partial_sum
round_quorum = 20
round_deadline_s = 90
round_extension_s = 30
)";

constexpr const char* kSmokeSpec = R"(
# Low-priority functional smoke test; clean links, no quorum — queued
# until the nightly job frees enough logical bundles.
[task]
name = smoke-test
priority = 1
rounds = 1

[devices.high]
count = 200
logical_bundles = 160
phones = 8
)";

}  // namespace

int main(int argc, char** argv) {
  using namespace simdc;

  std::vector<std::string> spec_texts;
  if (argc > 1) {
    for (int i = 1; i < argc; ++i) {
      std::ifstream file(argv[i]);
      if (!file) {
        std::fprintf(stderr, "cannot open %s\n", argv[i]);
        return 1;
      }
      std::ostringstream buffer;
      buffer << file.rdbuf();
      spec_texts.push_back(buffer.str());
    }
  } else {
    spec_texts = {kNightlySpec, kSmokeSpec};
  }

  // Load each spec into its own complete per-task configuration: the
  // sched-plane TaskSpec plus every policy section the tenant pins.
  std::vector<config::TenantSpecConfig> specs;
  for (const auto& text : spec_texts) {
    auto doc = config::ParseIni(text);
    if (!doc.ok()) {
      std::fprintf(stderr, "spec rejected: %s\n",
                   doc.error().ToString().c_str());
      return 1;
    }
    auto spec = config::LoadTenantSpec(*doc);
    if (!spec.ok()) {
      std::fprintf(stderr, "spec rejected: %s\n",
                   spec.error().ToString().c_str());
      return 1;
    }
    specs.push_back(std::move(*spec));
  }

  core::Platform platform;

  // One shared dataset; every tenant trains its own model over it with
  // its own RNG streams, so tenants stay bit-independent.
  data::SynthConfig data_config;
  data_config.num_devices = 60;
  data_config.hash_dim = 1u << 12;
  const auto dataset = data::GenerateSyntheticAvazu(data_config);

  std::vector<core::TenantTask> tenants;
  for (auto& spec : specs) {
    spec.spec.id = platform.NextTaskId();
    core::TenantTask tenant;
    tenant.fl = core::ExperimentFromTenantSpec(
        spec, /*seed=*/1000 + spec.spec.id.value());
    tenant.spec = spec.spec;
    tenant.dataset = &dataset;
    std::printf(
        "submitting '%s' as %s (priority %d, %zu devices) — link retries "
        "x%zu @ p=%.2f, round_quorum %zu, shards %zu\n",
        spec.spec.name.c_str(), spec.spec.id.ToString().c_str(),
        spec.spec.priority, spec.spec.TotalDevices(),
        spec.link.max_attempts, spec.link.transient_failure_probability,
        spec.execution.round_quorum,
        std::max<std::size_t>(1, spec.execution.shards));
    tenants.push_back(std::move(tenant));
  }

  std::printf("\n%s\n", core::RenderStatus(platform).c_str());

  // Priority-greedy admission (the default policy); pass
  // mode = kWeightedFair + max_fleet_share to bound any tenant's slice.
  const auto results = platform.RunMultiTenantExperiment(std::move(tenants));

  for (const auto& tenant : results) {
    if (!tenant.completed) {
      std::printf("%s: NOT RUN (%s)\n", tenant.id.ToString().c_str(),
                  tenant.detail.c_str());
      continue;
    }
    const core::TaskSlaReport& sla = tenant.sla;
    std::printf(
        "%s: completed %zu rounds — queue wait %.1fs, makespan %.1fs, "
        "round latency p50/p95/p99 %.1f/%.1f/%.1f s, retries %zu, "
        "deadline drops %zu, degraded rounds %zu\n",
        tenant.id.ToString().c_str(), sla.rounds, sla.queue_wait_s,
        sla.makespan_s, sla.round_latency_p50_s, sla.round_latency_p95_s,
        sla.round_latency_p99_s, sla.retries, sla.deadline_drops,
        sla.rounds_degraded);
    for (const auto& round : tenant.result.rounds) {
      std::printf("  round %zu @ %5.1fs: test acc %.4f, logloss %.4f\n",
                  round.round, ToSeconds(round.time), round.test_accuracy,
                  round.test_logloss);
    }
  }
  std::printf("\n%s\n", core::RenderStatus(platform).c_str());
  return 0;
}
