// Dropout study: how device dropout interacts with data heterogeneity.
//
// Scenario (paper §VI-C2 / Fig. 11): an algorithm team is deciding whether
// their CTR model can tolerate flaky connectivity. We run the same
// LR+FedAvg workload on an IID and a polarized non-IID partition of the
// synthetic Avazu data while sweeping the per-message dropout probability,
// then report final accuracy and convergence stability. The takeaway the
// paper stresses: dropout is harmless under IID data but destabilizes
// non-IID training, so a realistic simulator must model it.
//
// Build & run:  ./build/examples/dropout_study
#include <cmath>
#include <cstdio>

#include "common/stats.h"
#include "core/fl_engine.h"
#include "data/synth_avazu.h"

namespace {

using namespace simdc;

struct Outcome {
  double final_accuracy = 0.0;
  double volatility = 0.0;  // mean |ACC_t - ACC_{t-1}| in the tail
  std::size_t mean_clients = 0;
};

Outcome Run(const data::FederatedDataset& dataset, double dropout,
            ThreadPool& pool) {
  sim::EventLoop loop;
  core::FlExperimentConfig config;
  config.rounds = 10;
  config.train.learning_rate = 0.1;
  config.train.epochs = 4;
  config.trigger = cloud::AggregationTrigger::kScheduled;
  config.schedule_period = Seconds(45.0);
  config.strategy = flow::RealtimeAccumulated{{1}, dropout};
  config.seed = 4;
  core::FlEngine engine(loop, dataset, config, &pool);
  const auto result = engine.Run();

  Outcome outcome;
  outcome.final_accuracy = result.rounds.back().test_accuracy;
  RunningStats deltas, clients;
  for (std::size_t i = 1; i < result.rounds.size(); ++i) {
    if (i >= 4) {
      deltas.Add(std::abs(result.rounds[i].test_accuracy -
                          result.rounds[i - 1].test_accuracy));
    }
    clients.Add(static_cast<double>(result.rounds[i].clients));
  }
  outcome.volatility = deltas.mean();
  outcome.mean_clients = static_cast<std::size_t>(clients.mean());
  return outcome;
}

}  // namespace

int main() {
  ThreadPool pool(0);

  data::SynthConfig config;
  config.num_devices = 400;
  config.records_per_device_mean = 20;
  config.hash_dim = 1u << 13;
  config.distribution = data::LabelDistribution::kPolarized;
  config.polarized_positive_fraction = 0.7;
  config.seed = 1;
  const auto noniid = data::GenerateSyntheticAvazu(config);
  const auto iid = data::RepartitionIid(noniid, 2);

  std::printf("Dropout tolerance study: LR + FedAvg, 400 devices, 10 "
              "rounds, timed aggregation\n\n");
  std::printf("%-10s %-8s %12s %12s %14s\n", "Partition", "dropout",
              "final ACC", "volatility", "avg clients");
  std::printf("------------------------------------------------------------\n");
  for (const auto* name : {"IID", "non-IID"}) {
    const auto& dataset = std::string(name) == "IID" ? iid : noniid;
    for (const double dropout : {0.0, 0.3, 0.7, 0.9}) {
      const Outcome outcome = Run(dataset, dropout, pool);
      std::printf("%-10s %-8.1f %12.4f %12.4f %14zu\n", name, dropout,
                  outcome.final_accuracy, outcome.volatility,
                  outcome.mean_clients);
    }
    std::printf("------------------------------------------------------------\n");
  }
  std::printf(
      "\nReading the table: on IID data the accuracy column barely moves\n"
      "with dropout; on non-IID data volatility climbs with dropout and\n"
      "the convergence-phase accuracy suffers — matching the paper's\n"
      "conclusion that dropout simulation is essential for evaluating\n"
      "device-cloud algorithms on heterogeneous data.\n");
  return 0;
}
