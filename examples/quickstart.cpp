// Quickstart: the smallest end-to-end SimDC session.
//
//   1. Build a Platform (logical cluster + the paper's default physical
//      phone cluster).
//   2. Submit a task simulating 60 High-grade devices with hybrid
//      resources and one benchmarking phone; the greedy scheduler and
//      hybrid allocation optimizer place it.
//   3. Inspect the allocation, execution time, and the physical metrics
//      PhoneMgr collected over ADB.
//   4. Run a small federated-learning experiment (synthetic Avazu CTR
//      data, LR + FedAvg) through DeviceFlow to the cloud aggregator.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "core/platform.h"
#include "data/synth_avazu.h"

int main() {
  using namespace simdc;

  // --- 1. The platform ---
  core::PlatformConfig platform_config;
  platform_config.logical_unit_bundles = 200;  // ~200 cores / 300 GB
  core::Platform platform(platform_config);

  // --- 2. A hybrid device-simulation task ---
  sched::TaskSpec task;
  task.name = "quickstart-hybrid";
  task.priority = 5;
  task.rounds = 2;
  sched::DeviceRequirement requirement;
  requirement.grade = device::DeviceGrade::kHigh;
  requirement.num_devices = 60;       // N: simulated devices
  requirement.benchmarking_phones = 1;  // q: measured physical phone
  requirement.logical_bundles = 80;   // f: unit bundles requested
  requirement.phones = 3;             // m: computing phones requested
  task.requirements.push_back(requirement);
  if (auto submitted = platform.SubmitTask(task); !submitted.ok()) {
    std::fprintf(stderr, "submit failed: %s\n",
                 submitted.ToString().c_str());
    return 1;
  }

  const auto reports = platform.RunQueuedTasks();
  for (const auto& report : reports) {
    std::printf("task %s: %s in %.1f virtual seconds\n",
                report.id.ToString().c_str(), report.ok ? "completed" : "FAILED",
                report.elapsed_seconds());
    std::printf("  optimizer put %zu of %zu devices on Logical Simulation "
                "(Tl=%.1fs, Tp=%.1fs)\n",
                report.allocation.logical_devices[0],
                requirement.num_devices - requirement.benchmarking_phones,
                report.allocation.logical_seconds,
                report.allocation.device_seconds);

    // --- 3. Physical metrics measured through ADB ---
    for (const auto& phones : report.benchmarking) {
      const auto stages = platform.metrics().AverageStages(report.id, phones);
      for (const auto& stage : stages) {
        std::printf("  stage %d (%s): %.2f mAh over %.2f min, %.1f KB comm\n",
                    static_cast<int>(stage.stage), ToString(stage.stage),
                    stage.energy_mah, stage.duration_min, stage.comm_kb);
      }
    }
  }

  // --- 4. A small FL experiment ---
  data::SynthConfig data_config;
  data_config.num_devices = 100;
  data_config.hash_dim = 1u << 13;
  const auto dataset = data::GenerateSyntheticAvazu(data_config);

  core::FlExperimentConfig fl;
  fl.rounds = 5;
  fl.train.learning_rate = 0.05;
  fl.train.epochs = 3;
  fl.trigger = cloud::AggregationTrigger::kScheduled;
  fl.schedule_period = Seconds(30.0);
  // Train clients on 2 workers; any parallelism gives bit-identical results.
  fl.parallelism = 2;
  // Split the device population into 2 fleet shards: each shard runs its
  // own dispatcher/event loop (advanced on the worker pool) and a
  // deterministic merger funnels their batches into the one aggregator —
  // same bits as shards = 1, at any width. Width-invariance requires the
  // rate limiter disengaged (see FlExperimentConfig::shards), so pass-
  // through dispatch runs at infinite capacity here.
  fl.strategy = flow::RealtimeAccumulated{
      {1}, 0.0, flow::kShardWidthInvariantCapacity};
  fl.shards = 2;
  // Payload blobs are fetched + decoded at dispatch-tick time (on the
  // shard workers), so the serial aggregator only admits and accumulates;
  // decoded is the default — spelled out here because it pairs with
  // shards. flow::DecodePlane::kLegacy decodes serially instead, with
  // bit-identical results.
  fl.decode_plane = flow::DecodePlane::kDecoded;
  // Decoded updates accumulate as per-lane partial sums on the worker
  // pool, merged in fixed ascending order; partial_sum is the default —
  // cloud::AggregatePlane::kLegacy runs every add serially instead, with
  // bit-identical results (the FedAvg cascade is order-invariant).
  fl.aggregate_plane = cloud::AggregatePlane::kPartialSum;
  const auto result = platform.RunFlExperiment(dataset, fl);
  std::printf("\nfederated learning (%zu devices, %zu rounds, 2 fleet "
              "shards):\n",
              dataset.devices.size(), result.rounds.size());
  for (const auto& round : result.rounds) {
    std::printf("  round %zu @ %5.1fs: test acc %.4f, logloss %.4f "
                "(%zu clients)\n",
                round.round, ToSeconds(round.time), round.test_accuracy,
                round.test_logloss, round.clients);
  }
  return 0;
}
