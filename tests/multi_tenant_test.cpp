// Multi-tenant plane suite: N concurrent FL tasks on one shared fleet
// must (a) keep every tenant bit-identical to its solo run whenever the
// fleet is contention-free, (b) stay bit-identical at every shard width
// and engine parallelism, (c) arbitrate contention deterministically
// (priority queueing, weighted-fair shares, admission rejection) and
// (d) report faithful per-task SLA rows.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "core/fl_engine.h"
#include "core/multi_tenant.h"
#include "data/synth_avazu.h"
#include "flow/rate_functions.h"

namespace simdc::core {
namespace {

data::FederatedDataset Dataset(std::size_t devices = 40) {
  data::SynthConfig config;
  config.num_devices = devices;
  config.records_per_device_mean = 10;
  config.num_test_devices = 8;
  config.hash_dim = 1u << 12;
  config.seed = 33;
  return data::GenerateSyntheticAvazu(config);
}

/// Width-invariant regime (pass-through ticks, disengaged rate limiter)
/// with message-keyed transmission dropout, so both the model math and
/// the dropout plane are exercised.
FlExperimentConfig BaseFl(std::uint64_t task_id) {
  FlExperimentConfig config;
  config.task = TaskId(task_id);
  config.rounds = 2;
  config.train.learning_rate = 0.05;
  config.train.epochs = 1;
  config.trigger = cloud::AggregationTrigger::kScheduled;
  config.schedule_period = Seconds(30.0);
  config.strategy = flow::RealtimeAccumulated{
      {1}, 0.25, flow::kShardWidthInvariantCapacity};
  config.seed = 100 + task_id;
  return config;
}

sched::TaskSpec Spec(std::uint64_t id, int priority, std::size_t phones,
                     std::size_t bundles = 10) {
  sched::TaskSpec spec;
  spec.id = TaskId(id);
  spec.name = "tenant-" + std::to_string(id);
  spec.priority = priority;
  spec.rounds = 2;
  sched::DeviceRequirement requirement;
  requirement.grade = device::DeviceGrade::kHigh;
  requirement.num_devices = 40;
  requirement.phones = phones;
  requirement.logical_bundles = bundles;
  spec.requirements.push_back(requirement);
  return spec;
}

TenantTask Tenant(std::uint64_t id, int priority, std::size_t phones,
                  const data::FederatedDataset& dataset) {
  TenantTask task;
  task.spec = Spec(id, priority, phones);
  task.fl = BaseFl(id);
  task.dataset = &dataset;
  return task;
}

struct MultiRun {
  std::vector<TenantResult> results;
  std::size_t peak_active = 0;
  std::size_t admission_passes = 0;
  sched::ResourceSnapshot final_resources;
};

MultiRun RunTenants(std::vector<TenantTask> tasks,
                    const sched::SchedulePolicy& policy = {},
                    std::size_t fleet_phones = 1000,
                    std::size_t bundles = 10000, std::size_t pool_width = 0) {
  sim::EventLoop loop;
  sched::ResourceManager resources(bundles, {fleet_phones, fleet_phones});
  std::unique_ptr<ThreadPool> pool;
  if (pool_width > 0) pool = std::make_unique<ThreadPool>(pool_width);
  MultiTenantEngine engine(loop, resources, pool.get());
  for (auto& task : tasks) {
    EXPECT_TRUE(engine.Submit(std::move(task)).ok());
  }
  MultiRun run;
  run.results = engine.Run(policy);
  run.peak_active = engine.peak_active_tenants();
  run.admission_passes = engine.admission_passes();
  run.final_resources = resources.Snapshot();
  return run;
}

FlRunResult RunSolo(const data::FederatedDataset& dataset,
                    FlExperimentConfig config) {
  sim::EventLoop loop;
  FlEngine engine(loop, dataset, std::move(config));
  return engine.Run();
}

void ExpectIdentical(const FlRunResult& a, const FlRunResult& b,
                     const std::string& context) {
  ASSERT_EQ(a.rounds.size(), b.rounds.size()) << context;
  for (std::size_t i = 0; i < a.rounds.size(); ++i) {
    EXPECT_EQ(a.rounds[i].round, b.rounds[i].round) << context;
    EXPECT_EQ(a.rounds[i].time, b.rounds[i].time) << context;
    EXPECT_EQ(a.rounds[i].clients, b.rounds[i].clients) << context;
    EXPECT_EQ(a.rounds[i].samples, b.rounds[i].samples) << context;
    EXPECT_EQ(a.rounds[i].test_accuracy, b.rounds[i].test_accuracy) << context;
    EXPECT_EQ(a.rounds[i].test_logloss, b.rounds[i].test_logloss) << context;
  }
  EXPECT_EQ(a.messages_emitted, b.messages_emitted) << context;
  EXPECT_EQ(a.messages_dropped, b.messages_dropped) << context;
  ASSERT_EQ(a.final_weights.size(), b.final_weights.size()) << context;
  EXPECT_EQ(0, std::memcmp(a.final_weights.data(), b.final_weights.data(),
                           a.final_weights.size() * sizeof(float)))
      << context;
  EXPECT_EQ(a.final_bias, b.final_bias) << context;
}

// ---------- Solo equivalence ----------

TEST(MultiTenantTest, SingleTenantMatchesSoloRun) {
  const auto dataset = Dataset();
  const auto solo = RunSolo(dataset, BaseFl(1));
  ASSERT_EQ(solo.rounds.size(), 2u);
  EXPECT_GT(solo.messages_dropped, 0u);

  auto run = RunTenants({Tenant(1, 5, 10, dataset)});
  ASSERT_EQ(run.results.size(), 1u);
  ASSERT_TRUE(run.results[0].completed);
  ExpectIdentical(solo, run.results[0].result, "single tenant");
  EXPECT_EQ(run.results[0].sla.rounds, 2u);
  EXPECT_EQ(run.results[0].sla.queue_wait_s, 0.0);
  EXPECT_EQ(run.peak_active, 1u);
}

TEST(MultiTenantTest, ContentionFreeTenantsMatchSoloInSequence) {
  // Ten tenants, each with a distinct seed, on a fleet that fits all of
  // them at once: every per-task result must equal the same task run
  // alone, and all ten must start at t=0 (no queue wait anywhere).
  const auto dataset = Dataset();
  std::vector<TenantTask> tasks;
  for (std::uint64_t id = 1; id <= 10; ++id) {
    tasks.push_back(Tenant(id, static_cast<int>(id), 10, dataset));
  }
  auto run = RunTenants(std::move(tasks));
  ASSERT_EQ(run.results.size(), 10u);
  EXPECT_EQ(run.peak_active, 10u);
  for (std::uint64_t id = 1; id <= 10; ++id) {
    const TenantResult& tenant = run.results[id - 1];
    ASSERT_TRUE(tenant.completed) << "task " << id;
    EXPECT_EQ(tenant.id, TaskId(id));
    ExpectIdentical(RunSolo(dataset, BaseFl(id)), tenant.result,
                    "task " + std::to_string(id));
    EXPECT_EQ(tenant.sla.queue_wait_s, 0.0) << "task " << id;
  }
  // Everything released at quiescence.
  EXPECT_EQ(run.final_resources.phones_free[0],
            run.final_resources.phones_total[0]);
  EXPECT_EQ(run.final_resources.logical_bundles_free,
            run.final_resources.logical_bundles_total);
}

// ---------- Shard-width / parallelism invariance ----------

TEST(MultiTenantTest, ShardWidthsBitIdenticalAcrossTenants) {
  // All tenants sharded at width w, for w in {1, 2, 4, 8}: per-task
  // results must match the all-unsharded reference bit for bit — the
  // cross-tenant merge barrier must not perturb any tenant's stream.
  const auto dataset = Dataset();
  auto make_tasks = [&](std::size_t shards) {
    std::vector<TenantTask> tasks;
    for (std::uint64_t id = 1; id <= 4; ++id) {
      TenantTask task = Tenant(id, 5, 10, dataset);
      task.fl.shards = shards;
      tasks.push_back(std::move(task));
    }
    return tasks;
  };
  const auto reference = RunTenants(make_tasks(1));
  ASSERT_EQ(reference.results.size(), 4u);
  for (const std::size_t shards : {2u, 4u, 8u}) {
    auto run = RunTenants(make_tasks(shards));
    ASSERT_EQ(run.results.size(), 4u);
    for (std::size_t i = 0; i < 4; ++i) {
      ASSERT_TRUE(run.results[i].completed);
      ExpectIdentical(reference.results[i].result, run.results[i].result,
                      "shards=" + std::to_string(shards) + " task " +
                          std::to_string(i + 1));
    }
  }
}

TEST(MultiTenantTest, MixedShardWidthsEachMatchSolo) {
  // Tenants at DIFFERENT widths in the same run — the dynamic lockstep
  // driver must hold every tenant to its solo result simultaneously.
  const auto dataset = Dataset();
  const std::size_t widths[] = {1, 2, 4, 8};
  std::vector<TenantTask> tasks;
  for (std::uint64_t id = 1; id <= 4; ++id) {
    TenantTask task = Tenant(id, 5, 10, dataset);
    task.fl.shards = widths[id - 1];
    tasks.push_back(std::move(task));
  }
  auto run = RunTenants(std::move(tasks));
  ASSERT_EQ(run.results.size(), 4u);
  for (std::uint64_t id = 1; id <= 4; ++id) {
    ASSERT_TRUE(run.results[id - 1].completed);
    // Solo sharded == solo unsharded (existing contract), so the
    // unsharded solo run is the reference for every width.
    ExpectIdentical(RunSolo(dataset, BaseFl(id)), run.results[id - 1].result,
                    "mixed width task " + std::to_string(id));
  }
}

TEST(MultiTenantTest, WorkerPoolDoesNotChangeResults) {
  const auto dataset = Dataset();
  auto make_tasks = [&] {
    std::vector<TenantTask> tasks;
    for (std::uint64_t id = 1; id <= 3; ++id) {
      TenantTask task = Tenant(id, 5, 10, dataset);
      task.fl.shards = 2;
      task.fl.parallelism = 0;  // inherit the engine pool (when given)
      tasks.push_back(std::move(task));
    }
    return tasks;
  };
  const auto sequential = RunTenants(make_tasks(), {}, 1000, 10000, 0);
  for (const std::size_t width : {2u, 4u, 8u}) {
    auto pooled = RunTenants(make_tasks(), {}, 1000, 10000, width);
    ASSERT_EQ(pooled.results.size(), 3u);
    for (std::size_t i = 0; i < 3; ++i) {
      ASSERT_TRUE(pooled.results[i].completed);
      ExpectIdentical(sequential.results[i].result, pooled.results[i].result,
                      "pool width " + std::to_string(width));
    }
  }
}

// ---------- Contention, admission control, fairness ----------

TEST(MultiTenantTest, ContentionQueuesLowerPriorityTenant) {
  // Fleet of 10 high-grade phones; two tenants wanting 8 each. The
  // priority-9 tenant runs first; the priority-1 tenant waits exactly
  // until the first completes, and its SLA row records the wait.
  const auto dataset = Dataset();
  auto run = RunTenants(
      {Tenant(1, 9, 8, dataset), Tenant(2, 1, 8, dataset)},
      sched::SchedulePolicy{}, /*fleet_phones=*/10);
  ASSERT_EQ(run.results.size(), 2u);
  ASSERT_TRUE(run.results[0].completed);
  ASSERT_TRUE(run.results[1].completed);
  EXPECT_EQ(run.peak_active, 1u);
  const TaskSlaReport& first = run.results[0].sla;
  const TaskSlaReport& second = run.results[1].sla;
  EXPECT_EQ(first.queue_wait_s, 0.0);
  EXPECT_GT(second.queue_wait_s, 0.0);
  EXPECT_EQ(second.admitted, first.completed);
  // The deferred tenant still reproduces its solo result, shifted in time.
  const auto solo = RunSolo(dataset, BaseFl(2));
  const FlRunResult& deferred = run.results[1].result;
  ASSERT_EQ(solo.rounds.size(), deferred.rounds.size());
  for (std::size_t i = 0; i < solo.rounds.size(); ++i) {
    EXPECT_EQ(deferred.rounds[i].time - second.admitted, solo.rounds[i].time);
    EXPECT_EQ(deferred.rounds[i].test_accuracy, solo.rounds[i].test_accuracy);
  }
  ASSERT_EQ(solo.final_weights.size(), deferred.final_weights.size());
  EXPECT_EQ(0, std::memcmp(solo.final_weights.data(),
                           deferred.final_weights.data(),
                           solo.final_weights.size() * sizeof(float)));
  EXPECT_EQ(run.final_resources.phones_free[0], 10u);
}

TEST(MultiTenantTest, OversizedDemandRejectedOthersRun) {
  const auto dataset = Dataset();
  auto run = RunTenants(
      {Tenant(1, 9, 5000, dataset), Tenant(2, 1, 10, dataset)},
      sched::SchedulePolicy{}, /*fleet_phones=*/1000);
  ASSERT_EQ(run.results.size(), 2u);
  EXPECT_FALSE(run.results[0].completed);
  EXPECT_TRUE(run.results[0].rejected);
  EXPECT_EQ(run.results[0].detail, "rejected by admission control");
  EXPECT_TRUE(run.results[1].completed);
}

TEST(MultiTenantTest, FleetShareCapRejectsHeavyTenant) {
  // max_fleet_share = 0.25 over a 200-phone fleet (100 per grade): a
  // 60-phone tenant exceeds its 50-phone cap and is rejected even though
  // the fleet could physically host it.
  const auto dataset = Dataset();
  sched::SchedulePolicy policy;
  policy.max_fleet_share = 0.25;
  auto run = RunTenants(
      {Tenant(1, 9, 60, dataset), Tenant(2, 1, 40, dataset)}, policy,
      /*fleet_phones=*/100);
  ASSERT_EQ(run.results.size(), 2u);
  EXPECT_TRUE(run.results[0].rejected);
  EXPECT_TRUE(run.results[1].completed);
}

TEST(MultiTenantTest, WeightedFairBreaksMutualDeadlock) {
  // Two tenants each demanding 150 of the 200 free phones: neither fits
  // its ~100-phone fair share, and with nothing running the fair pass
  // would starve both forever. The engine's fallback admits them in
  // priority order instead, one at a time.
  const auto dataset = Dataset();
  sched::SchedulePolicy policy;
  policy.mode = sched::ScheduleMode::kWeightedFair;
  auto run = RunTenants(
      {Tenant(1, 5, 150, dataset), Tenant(2, 5, 150, dataset)}, policy,
      /*fleet_phones=*/200);
  ASSERT_EQ(run.results.size(), 2u);
  EXPECT_TRUE(run.results[0].completed);
  EXPECT_TRUE(run.results[1].completed);
  EXPECT_EQ(run.peak_active, 1u);
  EXPECT_GT(run.results[1].sla.queue_wait_s, 0.0);
}

TEST(MultiTenantTest, WeightedFairAdmitsWithinShares) {
  // Four equal-weight tenants each demanding exactly a quarter of the
  // free phones all fit their fair shares and start together.
  const auto dataset = Dataset();
  sched::SchedulePolicy policy;
  policy.mode = sched::ScheduleMode::kWeightedFair;
  std::vector<TenantTask> tasks;
  for (std::uint64_t id = 1; id <= 4; ++id) {
    tasks.push_back(Tenant(id, 5, 50, dataset));
  }
  auto run = RunTenants(std::move(tasks), policy, /*fleet_phones=*/200);
  ASSERT_EQ(run.results.size(), 4u);
  EXPECT_EQ(run.peak_active, 4u);
  for (const auto& tenant : run.results) {
    EXPECT_TRUE(tenant.completed);
    EXPECT_EQ(tenant.sla.queue_wait_s, 0.0);
  }
}

TEST(MultiTenantTest, DuplicateAndNullSubmissionsRejected) {
  const auto dataset = Dataset();
  sim::EventLoop loop;
  sched::ResourceManager resources(100, {100, 100});
  MultiTenantEngine engine(loop, resources);
  ASSERT_TRUE(engine.Submit(Tenant(1, 5, 10, dataset)).ok());
  EXPECT_FALSE(engine.Submit(Tenant(1, 5, 10, dataset)).ok());
  TenantTask null_dataset = Tenant(2, 5, 10, dataset);
  null_dataset.dataset = nullptr;
  EXPECT_FALSE(engine.Submit(std::move(null_dataset)).ok());
}

// ---------- Per-tenant policies and SLA rows ----------

TEST(MultiTenantTest, PerTenantLinkAndQuorumPoliciesAreDistinct) {
  // Tenant 1 runs lossy links with retries and quorum'd rounds; tenant 2
  // runs the clean defaults. In ONE multi-tenant run, their SLA rows must
  // reflect their OWN policies — the historical failure mode applied one
  // global LinkPolicy/quorum set to everyone.
  const auto dataset = Dataset();
  TenantTask lossy = Tenant(1, 5, 10, dataset);
  lossy.fl.link.transient_failure_probability = 0.4;
  lossy.fl.link.max_attempts = 3;
  lossy.fl.link.backoff_initial = Seconds(1.0);
  lossy.fl.round_quorum = 5;
  lossy.fl.round_deadline = Seconds(40.0);
  lossy.fl.round_extension = Seconds(20.0);
  TenantTask clean = Tenant(2, 5, 10, dataset);

  auto run = RunTenants({std::move(lossy), std::move(clean)});
  ASSERT_EQ(run.results.size(), 2u);
  ASSERT_TRUE(run.results[0].completed);
  ASSERT_TRUE(run.results[1].completed);
  EXPECT_GT(run.results[0].sla.retries, 0u);
  EXPECT_EQ(run.results[1].sla.retries, 0u);
  // And each still equals its solo run under its own policy.
  TenantTask lossy_again = Tenant(1, 5, 10, dataset);
  lossy_again.fl.link.transient_failure_probability = 0.4;
  lossy_again.fl.link.max_attempts = 3;
  lossy_again.fl.link.backoff_initial = Seconds(1.0);
  lossy_again.fl.round_quorum = 5;
  lossy_again.fl.round_deadline = Seconds(40.0);
  lossy_again.fl.round_extension = Seconds(20.0);
  ExpectIdentical(RunSolo(dataset, lossy_again.fl), run.results[0].result,
                  "lossy tenant vs solo");
}

TEST(MultiTenantTest, SlaRowsReportRoundLatencies) {
  const auto dataset = Dataset();
  auto run = RunTenants({Tenant(1, 5, 10, dataset)});
  ASSERT_EQ(run.results.size(), 1u);
  const TaskSlaReport& sla = run.results[0].sla;
  EXPECT_EQ(sla.task, TaskId(1));
  EXPECT_EQ(sla.rounds, 2u);
  EXPECT_GT(sla.round_latency_mean_s, 0.0);
  EXPECT_GT(sla.round_latency_max_s, 0.0);
  EXPECT_LE(sla.round_latency_p50_s, sla.round_latency_p95_s);
  EXPECT_LE(sla.round_latency_p95_s, sla.round_latency_p99_s);
  EXPECT_LE(sla.round_latency_p99_s, sla.round_latency_max_s);
  EXPECT_GT(sla.makespan_s, 0.0);
  EXPECT_GT(sla.messages_emitted, 0u);
}

TEST(MultiTenantTest, HundredTenantsCompleteDeterministically) {
  // Scale smoke: 100 tenants (the Fig. 7 ladder's top rung runs in the
  // bench with full width sweeps; here we pin determinism at width 1).
  const auto dataset = Dataset(20);
  auto make_tasks = [&] {
    std::vector<TenantTask> tasks;
    for (std::uint64_t id = 1; id <= 100; ++id) {
      TenantTask task = Tenant(id, static_cast<int>(id % 7), 2, dataset);
      task.fl.rounds = 1;
      tasks.push_back(std::move(task));
    }
    return tasks;
  };
  auto first = RunTenants(make_tasks(), {}, /*fleet_phones=*/50);
  auto again = RunTenants(make_tasks(), {}, /*fleet_phones=*/50);
  ASSERT_EQ(first.results.size(), 100u);
  ASSERT_EQ(again.results.size(), 100u);
  EXPECT_GT(first.peak_active, 1u);
  EXPECT_LT(first.peak_active, 100u);  // contention forces staggering
  for (std::size_t i = 0; i < 100; ++i) {
    ASSERT_TRUE(first.results[i].completed) << "task " << i + 1;
    ExpectIdentical(first.results[i].result, again.results[i].result,
                    "repeat run task " + std::to_string(i + 1));
    EXPECT_EQ(first.results[i].sla.queue_wait_s,
              again.results[i].sla.queue_wait_s);
  }
  EXPECT_EQ(first.final_resources.phones_free[0], 50u);
}

}  // namespace
}  // namespace simdc::core
