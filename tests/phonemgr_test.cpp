// Unit tests for PhoneMgr: device selection, job submission, benchmarking
// measurement through the ADB pipeline, termination.
#include <gtest/gtest.h>

#include "cloud/database.h"
#include "device/fleet.h"
#include "phonemgr/phone_mgr.h"
#include "sim/event_loop.h"

namespace simdc::device {
namespace {

class PhoneMgrTest : public ::testing::Test {
 protected:
  PhoneMgrTest() : mgr_(loop_) {
    mgr_.RegisterFleet(MakeDefaultCluster(42));
    mgr_.set_metrics_sink(&db_);
  }

  static PhoneJob BasicJob(TaskId task, DeviceGrade grade) {
    PhoneJob job;
    job.task = task;
    job.grade = grade;
    job.devices_to_simulate = 12;
    job.computing_phones = 3;
    job.benchmarking_phones = 2;
    job.rounds = 2;
    job.round_duration_s = 2.0;
    job.startup_s = 15.0;
    job.aggregation_wait_s = 5.0;
    job.sample_period = Seconds(1.0);
    return job;
  }

  sim::EventLoop loop_;
  PhoneMgr mgr_;
  cloud::MetricsDatabase db_;
};

TEST_F(PhoneMgrTest, FleetCounts) {
  EXPECT_EQ(mgr_.TotalPhones(), 30u);
  EXPECT_EQ(mgr_.CountTotal(DeviceGrade::kHigh), 17u);  // 4 local + 13 MSP
  EXPECT_EQ(mgr_.CountTotal(DeviceGrade::kLow), 13u);
  EXPECT_EQ(mgr_.CountIdle(DeviceGrade::kHigh), 17u);
}

TEST_F(PhoneMgrTest, SubmitJobSelectsAndOccupiesPhones) {
  auto handle = mgr_.SubmitJob(BasicJob(TaskId(1), DeviceGrade::kHigh));
  ASSERT_TRUE(handle.ok());
  EXPECT_EQ(handle->computing.size(), 3u);
  EXPECT_EQ(handle->benchmarking.size(), 2u);
  EXPECT_EQ(mgr_.CountIdle(DeviceGrade::kHigh), 12u);
  // Local phones preferred over MSP.
  std::size_t local = 0;
  for (PhoneId id : handle->benchmarking) {
    if (!mgr_.FindPhone(id)->spec().remote_msp) ++local;
  }
  for (PhoneId id : handle->computing) {
    if (!mgr_.FindPhone(id)->spec().remote_msp) ++local;
  }
  EXPECT_EQ(local, 4u);  // all 4 local High phones used first
}

TEST_F(PhoneMgrTest, PhonesFreedOnCompletion) {
  bool completed = false;
  auto job = BasicJob(TaskId(2), DeviceGrade::kLow);
  job.on_complete = [&](TaskId task, SimTime) {
    completed = true;
    EXPECT_EQ(task, TaskId(2));
  };
  ASSERT_TRUE(mgr_.SubmitJob(job).ok());
  loop_.Run();
  EXPECT_TRUE(completed);
  EXPECT_EQ(mgr_.CountIdle(DeviceGrade::kLow), 13u);
}

TEST_F(PhoneMgrTest, RoundCompleteHookFiresPerPhonePerRound) {
  std::size_t hooks = 0;
  auto job = BasicJob(TaskId(3), DeviceGrade::kHigh);
  job.on_round_complete = [&](PhoneId, std::size_t, SimTime) { ++hooks; };
  ASSERT_TRUE(mgr_.SubmitJob(job).ok());
  loop_.Run();
  // 5 phones (3 computing + 2 benchmarking) × 2 rounds.
  EXPECT_EQ(hooks, 10u);
}

TEST_F(PhoneMgrTest, InsufficientPhonesRejected) {
  auto job = BasicJob(TaskId(4), DeviceGrade::kHigh);
  job.computing_phones = 20;  // only 17 High phones exist
  auto handle = mgr_.SubmitJob(job);
  ASSERT_FALSE(handle.ok());
  EXPECT_EQ(handle.error().code(), ErrorCode::kResourceExhausted);
}

TEST_F(PhoneMgrTest, InvalidJobsRejected) {
  PhoneJob job;
  job.task = TaskId(5);
  job.rounds = 0;
  EXPECT_FALSE(mgr_.SubmitJob(job).ok());
  job.rounds = 1;
  job.devices_to_simulate = 5;
  job.computing_phones = 0;
  EXPECT_FALSE(mgr_.SubmitJob(job).ok());
  job.devices_to_simulate = 0;
  job.benchmarking_phones = 0;
  EXPECT_FALSE(mgr_.SubmitJob(job).ok());  // nothing requested
}

TEST_F(PhoneMgrTest, ConcurrentJobsUseDisjointPhones) {
  auto h1 = mgr_.SubmitJob(BasicJob(TaskId(6), DeviceGrade::kHigh));
  auto h2 = mgr_.SubmitJob(BasicJob(TaskId(7), DeviceGrade::kHigh));
  ASSERT_TRUE(h1.ok());
  ASSERT_TRUE(h2.ok());
  std::set<std::uint64_t> ids;
  for (const auto* handle : {&*h1, &*h2}) {
    for (PhoneId id : handle->computing) ids.insert(id.value());
    for (PhoneId id : handle->benchmarking) ids.insert(id.value());
  }
  EXPECT_EQ(ids.size(), 10u);  // no phone shared
  loop_.Run();
}

TEST_F(PhoneMgrTest, BenchmarkingSamplesReachDatabase) {
  auto job = BasicJob(TaskId(8), DeviceGrade::kHigh);
  auto handle = mgr_.SubmitJob(job);
  ASSERT_TRUE(handle.ok());
  loop_.Run();
  // Sampling covers launch → closure at 1 Hz for each benchmarking phone.
  const auto samples = db_.QueryTask(TaskId(8));
  EXPECT_GT(samples.size(), 60u);
  // Samples from both benchmarking phones, none from computing phones.
  std::set<std::uint64_t> sampled;
  for (const auto& s : samples) sampled.insert(s.phone.value());
  EXPECT_EQ(sampled.size(), 2u);
  for (PhoneId id : handle->benchmarking) {
    EXPECT_TRUE(sampled.contains(id.value()));
  }
  // Measured quantities look physical.
  for (const auto& s : samples) {
    EXPECT_LT(s.current_ua, 0);
    EXPECT_GT(s.voltage_mv, 3000.0);
    EXPECT_GE(s.cpu_percent, 0.0);
  }
}

TEST_F(PhoneMgrTest, SamplesCoverTrainingStage) {
  auto job = BasicJob(TaskId(9), DeviceGrade::kLow);
  ASSERT_TRUE(mgr_.SubmitJob(job).ok());
  loop_.Run();
  std::size_t training_samples = 0;
  for (const auto& s : db_.QueryTask(TaskId(9))) {
    if (s.stage == ApkStage::kTraining) {
      ++training_samples;
      EXPECT_GT(s.cpu_percent, 2.0);   // actively training
      EXPECT_GT(s.memory_kb, 20000);   // PSS ≥ ~20 MB
    }
  }
  EXPECT_GT(training_samples, 2u);
}

TEST_F(PhoneMgrTest, TerminateFreesPhonesEarly) {
  auto job = BasicJob(TaskId(10), DeviceGrade::kHigh);
  ASSERT_TRUE(mgr_.SubmitJob(job).ok());
  EXPECT_EQ(mgr_.CountIdle(DeviceGrade::kHigh), 12u);
  EXPECT_TRUE(mgr_.TerminateTask(TaskId(10)).ok());
  EXPECT_EQ(mgr_.CountIdle(DeviceGrade::kHigh), 17u);
  EXPECT_FALSE(mgr_.TerminateTask(TaskId(10)).ok());  // already gone
  loop_.Run();  // leftover events are harmless
}

TEST_F(PhoneMgrTest, PredictJobSecondsMatchesModel) {
  auto job = BasicJob(TaskId(11), DeviceGrade::kHigh);
  // reps = ceil(12/3) = 4 → per round 8 s; 2 rounds + waits + λ + closure.
  const double predicted = PhoneMgr::PredictJobSeconds(job);
  EXPECT_NEAR(predicted, 15.0 + 2 * (8.0 + 5.0) + 15.0, 1e-9);

  auto handle = mgr_.SubmitJob(job);
  ASSERT_TRUE(handle.ok());
  EXPECT_NEAR(ToSeconds(handle->finish_time), predicted, 1e-6);
  loop_.Run();
}

TEST_F(PhoneMgrTest, FindPhoneAndAdb) {
  EXPECT_NE(mgr_.FindPhone(PhoneId(0)), nullptr);
  EXPECT_NE(mgr_.FindAdb(PhoneId(0)), nullptr);
  EXPECT_EQ(mgr_.FindPhone(PhoneId(555)), nullptr);
  EXPECT_EQ(mgr_.FindAdb(PhoneId(555)), nullptr);
}

TEST_F(PhoneMgrTest, IndexSurvivesUnregisterAndReregister) {
  // Unregistering shifts vector indices; the id→index map and idle
  // free-lists must be rebuilt so every lookup stays exact.
  const Phone* p5 = mgr_.FindPhone(PhoneId(5));
  ASSERT_NE(p5, nullptr);
  const DeviceGrade grade = p5->spec().grade;
  const std::size_t idle_before = mgr_.CountIdle(grade);
  const std::size_t total_before = mgr_.CountTotal(grade);
  ASSERT_TRUE(mgr_.UnregisterPhone(PhoneId(5)).ok());
  EXPECT_EQ(mgr_.FindPhone(PhoneId(5)), nullptr);
  EXPECT_EQ(mgr_.FindAdb(PhoneId(5)), nullptr);
  EXPECT_EQ(mgr_.CountIdle(grade), idle_before - 1);
  EXPECT_EQ(mgr_.CountTotal(grade), total_before - 1);
  // Every other phone is still reachable by id (local ids 0–9, MSP ids
  // 1000–1019 per MakeDefaultCluster).
  for (std::uint64_t id = 0; id < 10; ++id) {
    if (id == 5) continue;
    EXPECT_NE(mgr_.FindPhone(PhoneId(id)), nullptr) << "id=" << id;
  }
  for (std::uint64_t id = 1000; id < 1020; ++id) {
    EXPECT_NE(mgr_.FindPhone(PhoneId(id)), nullptr) << "id=" << id;
  }
  // Re-registering restores lookups and idle accounting.
  PhoneSpec spec;
  spec.id = PhoneId(5);
  spec.grade = grade;
  mgr_.RegisterPhone(spec);
  EXPECT_NE(mgr_.FindPhone(PhoneId(5)), nullptr);
  EXPECT_EQ(mgr_.CountIdle(grade), idle_before);
}

TEST_F(PhoneMgrTest, DuplicateIdRegistrationIsIgnored) {
  // "First registration wins": a second phone under an existing id must
  // not enter the fleet (it would be unreachable by id and would corrupt
  // the idle free-lists).
  const std::size_t total = mgr_.TotalPhones();
  const Phone* original = mgr_.FindPhone(PhoneId(0));
  ASSERT_NE(original, nullptr);
  const std::size_t idle = mgr_.CountIdle(original->spec().grade);
  PhoneSpec dup;
  dup.id = PhoneId(0);
  dup.grade = original->spec().grade;
  dup.model = "DUP-1";
  mgr_.RegisterPhone(dup);
  EXPECT_EQ(mgr_.TotalPhones(), total);
  EXPECT_EQ(mgr_.CountIdle(original->spec().grade), idle);
  EXPECT_EQ(mgr_.FindPhone(PhoneId(0)), original);
  EXPECT_NE(mgr_.FindPhone(PhoneId(0))->spec().model, "DUP-1");
}

TEST_F(PhoneMgrTest, UnregisterPreservesSelectionOrderAfterRebuild) {
  // Scale-down rebuilds the per-(grade, locality) idle free-lists; the
  // survivors must keep registration order so SelectIdle stays
  // deterministic. Default cluster: local high = ids 0–3, MSP high =
  // 1000–1012. Removing local 1 leaves selection order 0,2,3,1000,1001.
  ASSERT_TRUE(mgr_.UnregisterPhone(PhoneId(1)).ok());
  auto handle = mgr_.SubmitJob(BasicJob(TaskId(30), DeviceGrade::kHigh));
  ASSERT_TRUE(handle.ok());
  EXPECT_EQ(handle->benchmarking,
            (std::vector<PhoneId>{PhoneId(0), PhoneId(2)}));
  EXPECT_EQ(handle->computing,
            (std::vector<PhoneId>{PhoneId(3), PhoneId(1000), PhoneId(1001)}));
  loop_.Run();
}

TEST_F(PhoneMgrTest, UnregisterMidExperimentKeepsSelectIdleDeterministic) {
  // Scale-down while a job is running: busy phones are protected, idle
  // ones may leave, and both the shifted indices and the post-release
  // free-lists must still reproduce registration order.
  auto first = mgr_.SubmitJob(BasicJob(TaskId(40), DeviceGrade::kHigh));
  ASSERT_TRUE(first.ok());  // occupies 0,1 (bench) + 2,3,1000 (compute)
  const auto busy = first->computing.front();
  EXPECT_FALSE(mgr_.UnregisterPhone(busy).ok());
  EXPECT_NE(mgr_.FindPhone(busy), nullptr);  // refused, still present

  ASSERT_TRUE(mgr_.UnregisterPhone(PhoneId(1001)).ok());
  EXPECT_EQ(mgr_.CountTotal(DeviceGrade::kHigh), 16u);
  EXPECT_EQ(mgr_.CountIdle(DeviceGrade::kHigh), 11u);

  auto second = mgr_.SubmitJob(BasicJob(TaskId(41), DeviceGrade::kHigh));
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->benchmarking,
            (std::vector<PhoneId>{PhoneId(1002), PhoneId(1003)}));
  EXPECT_EQ(second->computing,
            (std::vector<PhoneId>{PhoneId(1004), PhoneId(1005), PhoneId(1006)}));

  loop_.Run();  // both jobs finish; phones release back into the lists
  EXPECT_EQ(mgr_.CountIdle(DeviceGrade::kHigh), 16u);
  auto third = mgr_.SubmitJob(BasicJob(TaskId(42), DeviceGrade::kHigh));
  ASSERT_TRUE(third.ok());
  // Released phones rejoin at their registration positions, so the third
  // job selects exactly the first job's phones again.
  EXPECT_EQ(third->benchmarking, first->benchmarking);
  EXPECT_EQ(third->computing, first->computing);
  loop_.Run();
}

TEST_F(PhoneMgrTest, MixedRegisterUnregisterReleaseSequence) {
  // Interleaved scale-down, scale-up and release. A phone registered
  // after the fleet is still LOCAL, so it outranks every MSP device in
  // SelectIdle despite registering last — locality first, then
  // registration order.
  ASSERT_TRUE(mgr_.UnregisterPhone(PhoneId(2)).ok());
  PhoneSpec extra;
  extra.id = PhoneId(77);
  extra.grade = DeviceGrade::kHigh;
  mgr_.RegisterPhone(extra);
  EXPECT_NE(mgr_.FindAdb(PhoneId(77)), nullptr);
  EXPECT_EQ(mgr_.CountTotal(DeviceGrade::kHigh), 17u);

  auto job = mgr_.SubmitJob(BasicJob(TaskId(50), DeviceGrade::kHigh));
  ASSERT_TRUE(job.ok());
  EXPECT_EQ(job->benchmarking,
            (std::vector<PhoneId>{PhoneId(0), PhoneId(1)}));
  EXPECT_EQ(job->computing,
            (std::vector<PhoneId>{PhoneId(3), PhoneId(77), PhoneId(1000)}));

  loop_.Run();  // release everything
  ASSERT_TRUE(mgr_.UnregisterPhone(PhoneId(77)).ok());
  EXPECT_EQ(mgr_.FindPhone(PhoneId(77)), nullptr);

  auto after = mgr_.SubmitJob(BasicJob(TaskId(51), DeviceGrade::kHigh));
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->benchmarking,
            (std::vector<PhoneId>{PhoneId(0), PhoneId(1)}));
  EXPECT_EQ(after->computing,
            (std::vector<PhoneId>{PhoneId(3), PhoneId(1000), PhoneId(1001)}));
  loop_.Run();
}

TEST_F(PhoneMgrTest, FreedPhonesRejoinSelectionInRegistrationOrder) {
  // A released phone must be preferred again over later-registered MSP
  // devices: the idle free-lists keep registration order, matching the
  // historical linear scan.
  auto h1 = mgr_.SubmitJob(BasicJob(TaskId(20), DeviceGrade::kHigh));
  ASSERT_TRUE(h1.ok());
  loop_.Run();  // job completes, phones freed
  auto h2 = mgr_.SubmitJob(BasicJob(TaskId(21), DeviceGrade::kHigh));
  ASSERT_TRUE(h2.ok());
  EXPECT_EQ(h1->computing, h2->computing);
  EXPECT_EQ(h1->benchmarking, h2->benchmarking);
  loop_.Run();
}

TEST_F(PhoneMgrTest, CountersForTracksJobLifecycle) {
  auto handle = mgr_.SubmitJob(BasicJob(TaskId(60), DeviceGrade::kHigh));
  ASSERT_TRUE(handle.ok());
  loop_.Run();
  for (PhoneId id : handle->computing) {
    const auto counters = mgr_.CountersFor(id);
    ASSERT_TRUE(counters.has_value());
    EXPECT_EQ(counters->jobs_assigned, 1u);
    EXPECT_EQ(counters->rounds_completed, 2u);  // BasicJob runs 2 rounds
    EXPECT_EQ(counters->crashes, 0u);
  }
  for (PhoneId id : handle->benchmarking) {
    const auto counters = mgr_.CountersFor(id);
    ASSERT_TRUE(counters.has_value());
    EXPECT_EQ(counters->jobs_assigned, 1u);
    EXPECT_GT(counters->samples_recorded, 0u);
  }
  // Idle phones saw no work; unknown ids resolve to nothing.
  EXPECT_EQ(mgr_.CountersFor(PhoneId(1010))->jobs_assigned, 0u);
  EXPECT_FALSE(mgr_.CountersFor(PhoneId(9999)).has_value());
}

TEST_F(PhoneMgrTest, CountersCountCrashesAndResetOnReregister) {
  auto job = BasicJob(TaskId(61), DeviceGrade::kLow);
  job.crash_probability = 1.0;  // every round attempt crashes
  job.max_round_attempts = 2;
  auto handle = mgr_.SubmitJob(job);
  ASSERT_TRUE(handle.ok());
  loop_.Run();
  EXPECT_GT(handle->crashes, 0u);
  const PhoneId victim = handle->computing.front();
  auto counters = mgr_.CountersFor(victim);
  ASSERT_TRUE(counters.has_value());
  EXPECT_GT(counters->crashes, 0u);
  // A re-registered slot starts with fresh counters — lifetime stats
  // belong to a registration, not to a reused slot.
  const DeviceGrade grade = mgr_.FindPhone(victim)->spec().grade;
  ASSERT_TRUE(mgr_.UnregisterPhone(victim).ok());
  PhoneSpec spec;
  spec.id = victim;
  spec.grade = grade;
  mgr_.RegisterPhone(spec);
  counters = mgr_.CountersFor(victim);
  ASSERT_TRUE(counters.has_value());
  EXPECT_EQ(counters->jobs_assigned, 0u);
  EXPECT_EQ(counters->crashes, 0u);
  EXPECT_EQ(counters->rounds_completed, 0u);
}

}  // namespace
}  // namespace simdc::device
