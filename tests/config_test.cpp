// Unit tests for the textual task-spec configuration (the headless
// substitute for the paper's GUI front-end).
#include <gtest/gtest.h>

#include "config/task_config.h"
#include "core/multi_tenant.h"
#include "sched/scheduler.h"

namespace simdc::config {
namespace {

constexpr const char* kFullSpec = R"(
# nightly CTR training task
[task]
name = nightly-ctr
priority = 5
rounds = 10

[devices.high]
count = 500
benchmarking = 5
logical_bundles = 100
phones = 12

[devices.low]
count = 500
benchmarking = 5
logical_bundles = 100
phones = 8

[traffic]
strategy = interval
curve = normal
sigma = 1.0
interval_s = 60
failure_probability = 0.05

[aggregation]
trigger = scheduled
period_s = 120
reject_stale = 1
)";

// ---------- INI parsing ----------

TEST(IniTest, ParsesSectionsAndKeys) {
  auto doc = ParseIni("[a]\nx = 1\ny = two words\n[b]\nz=3\n");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(*GetString(*doc, "a", "x"), "1");
  EXPECT_EQ(*GetString(*doc, "a", "y"), "two words");
  EXPECT_EQ(*GetInt(*doc, "b", "z"), 3);
}

TEST(IniTest, CommentsAndBlankLines) {
  auto doc = ParseIni("# leading comment\n[s]\n; comment\nk = v  # trailing\n\n");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(*GetString(*doc, "s", "k"), "v");
}

TEST(IniTest, LaterDuplicateWins) {
  auto doc = ParseIni("[s]\nk = 1\nk = 2\n");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(*GetInt(*doc, "s", "k"), 2);
}

TEST(IniTest, KeysOutsideSectionGoToRoot) {
  auto doc = ParseIni("k = root\n[s]\nk = nested\n");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(*GetString(*doc, "", "k"), "root");
}

TEST(IniTest, MalformedInputsRejectedWithLineNumbers) {
  auto bad_header = ParseIni("[unclosed\nk = v\n");
  ASSERT_FALSE(bad_header.ok());
  EXPECT_NE(bad_header.error().message().find("line 1"), std::string::npos);
  EXPECT_FALSE(ParseIni("[]\n").ok());
  auto no_equals = ParseIni("[s]\njust words\n");
  ASSERT_FALSE(no_equals.ok());
  EXPECT_NE(no_equals.error().message().find("line 2"), std::string::npos);
  EXPECT_FALSE(ParseIni("[s]\n= value\n").ok());
}

TEST(IniTest, TypedAccessorErrors) {
  auto doc = ParseIni("[s]\nnum = abc\n");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(GetString(*doc, "missing", "k").error().code(),
            ErrorCode::kNotFound);
  EXPECT_EQ(GetString(*doc, "s", "missing").error().code(),
            ErrorCode::kNotFound);
  EXPECT_EQ(GetInt(*doc, "s", "num").error().code(), ErrorCode::kParseError);
  EXPECT_EQ(GetDouble(*doc, "s", "num").error().code(),
            ErrorCode::kParseError);
}

TEST(IniTest, SizeLists) {
  auto doc = ParseIni("[s]\nlist = 20, 100, 50\nbad = 1,x\nneg = -2\n");
  ASSERT_TRUE(doc.ok());
  auto list = GetSizeList(*doc, "s", "list");
  ASSERT_TRUE(list.ok());
  EXPECT_EQ(*list, (std::vector<std::size_t>{20, 100, 50}));
  EXPECT_FALSE(GetSizeList(*doc, "s", "bad").ok());
  EXPECT_FALSE(GetSizeList(*doc, "s", "neg").ok());
}

// ---------- TaskSpec loading ----------

TEST(TaskSpecTest, LoadsFullSpec) {
  auto task = ParseTaskSpec(kFullSpec);
  ASSERT_TRUE(task.ok());
  EXPECT_EQ(task->name, "nightly-ctr");
  EXPECT_EQ(task->priority, 5);
  EXPECT_EQ(task->rounds, 10u);
  ASSERT_EQ(task->requirements.size(), 2u);
  const auto& high =
      task->requirements[0].grade == device::DeviceGrade::kHigh
          ? task->requirements[0]
          : task->requirements[1];
  EXPECT_EQ(high.num_devices, 500u);
  EXPECT_EQ(high.benchmarking_phones, 5u);
  EXPECT_EQ(high.logical_bundles, 100u);
  EXPECT_EQ(high.phones, 12u);
}

TEST(TaskSpecTest, DefaultsApplyWhenOmitted) {
  auto task = ParseTaskSpec("[devices.high]\ncount = 10\n");
  ASSERT_TRUE(task.ok());
  EXPECT_EQ(task->rounds, 1u);
  EXPECT_EQ(task->priority, 0);
  EXPECT_EQ(task->requirements[0].benchmarking_phones, 0u);
}

TEST(TaskSpecTest, RejectsInvalidSpecs) {
  EXPECT_FALSE(ParseTaskSpec("[task]\nname = empty\n").ok());  // no devices
  EXPECT_FALSE(ParseTaskSpec("[devices.medium]\ncount = 5\n").ok());
  EXPECT_FALSE(ParseTaskSpec("[devices.high]\ncount = 5\nbenchmarking = 9\n").ok());
  EXPECT_FALSE(
      ParseTaskSpec("[task]\nrounds = 0\n[devices.high]\ncount = 5\n").ok());
  EXPECT_FALSE(ParseTaskSpec("[devices.high]\nphones = 3\n").ok());  // no count
}

// ---------- Strategy loading ----------

TEST(StrategyTest, Realtime) {
  auto doc = ParseIni(
      "[traffic]\nstrategy = realtime\nthresholds = 20,100,50\n"
      "failure_probability = 0.1\n");
  ASSERT_TRUE(doc.ok());
  auto strategy = LoadStrategy(*doc);
  ASSERT_TRUE(strategy.ok());
  const auto* realtime = std::get_if<flow::RealtimeAccumulated>(&*strategy);
  ASSERT_NE(realtime, nullptr);
  EXPECT_EQ(realtime->thresholds, (std::vector<std::size_t>{20, 100, 50}));
  EXPECT_DOUBLE_EQ(realtime->failure_probability, 0.1);
}

TEST(StrategyTest, Points) {
  auto doc = ParseIni(
      "[traffic]\nstrategy = points\nat_s = 10,25,40\ncounts = 200,600,400\n"
      "random_discard = 3\n");
  ASSERT_TRUE(doc.ok());
  auto strategy = LoadStrategy(*doc);
  ASSERT_TRUE(strategy.ok());
  const auto* points = std::get_if<flow::TimePointDispatch>(&*strategy);
  ASSERT_NE(points, nullptr);
  ASSERT_EQ(points->points.size(), 3u);
  EXPECT_EQ(points->points[1].when, Seconds(25.0));
  EXPECT_EQ(points->points[1].count, 600u);
  EXPECT_EQ(points->points[2].random_discard, 3u);
}

TEST(StrategyTest, IntervalCurves) {
  for (const char* curve :
       {"normal", "right_tail", "sin", "cos", "pow2", "pow10", "diurnal"}) {
    auto doc = ParseIni("[traffic]\nstrategy = interval\ncurve = " +
                        std::string(curve) + "\ninterval_s = 30\n");
    ASSERT_TRUE(doc.ok());
    auto strategy = LoadStrategy(*doc);
    ASSERT_TRUE(strategy.ok()) << curve;
    const auto* interval = std::get_if<flow::TimeIntervalDispatch>(&*strategy);
    ASSERT_NE(interval, nullptr) << curve;
    EXPECT_EQ(interval->interval, Seconds(30.0)) << curve;
    EXPECT_GE(interval->rate(interval->rate.domain_lo), 0.0);
  }
}

TEST(StrategyTest, RejectsInvalid) {
  auto bad = [](const std::string& body) {
    auto doc = ParseIni(body);
    EXPECT_TRUE(doc.ok());
    return !LoadStrategy(*doc).ok();
  };
  EXPECT_TRUE(bad("[traffic]\nstrategy = teleport\n"));
  EXPECT_TRUE(bad("[traffic]\nstrategy = realtime\nthresholds = 0\n"));
  EXPECT_TRUE(bad("[traffic]\nstrategy = realtime\nfailure_probability = 1.5\n"));
  EXPECT_TRUE(bad("[traffic]\nstrategy = points\nat_s = 1,2\ncounts = 5\n"));
  EXPECT_TRUE(bad("[traffic]\nstrategy = interval\ncurve = wiggle\n"));
  EXPECT_TRUE(bad("[traffic]\nstrategy = interval\ncurve = normal\nsigma = -1\n"));
  EXPECT_TRUE(bad("[traffic]\nstrategy = interval\ncurve = normal\ninterval_s = 0\n"));
  EXPECT_TRUE(bad("[missing]\nx = 1\n"));
}

// ---------- Aggregation loading ----------

TEST(AggregationConfigTest, Scheduled) {
  auto doc = ParseIni(
      "[aggregation]\ntrigger = scheduled\nperiod_s = 120\nreject_stale = 1\n");
  ASSERT_TRUE(doc.ok());
  auto config = LoadAggregation(*doc, 4096);
  ASSERT_TRUE(config.ok());
  EXPECT_EQ(config->trigger, cloud::AggregationTrigger::kScheduled);
  EXPECT_EQ(config->schedule_period, Seconds(120.0));
  EXPECT_TRUE(config->reject_stale);
  EXPECT_EQ(config->model_dim, 4096u);
}

TEST(AggregationConfigTest, SampleThreshold) {
  auto doc = ParseIni(
      "[aggregation]\ntrigger = sample_threshold\nthreshold = 5000\n");
  ASSERT_TRUE(doc.ok());
  auto config = LoadAggregation(*doc, 16);
  ASSERT_TRUE(config.ok());
  EXPECT_EQ(config->trigger, cloud::AggregationTrigger::kSampleThreshold);
  EXPECT_EQ(config->sample_threshold, 5000u);
  EXPECT_FALSE(config->reject_stale);
}

TEST(AggregationConfigTest, RejectsInvalid) {
  auto check = [](const std::string& body) {
    auto doc = ParseIni(body);
    EXPECT_TRUE(doc.ok());
    return !LoadAggregation(*doc, 16).ok();
  };
  EXPECT_TRUE(check("[aggregation]\ntrigger = magic\n"));
  EXPECT_TRUE(check("[aggregation]\ntrigger = scheduled\nperiod_s = 0\n"));
  EXPECT_TRUE(check("[aggregation]\ntrigger = scheduled\n"));  // no period
  EXPECT_TRUE(check("[aggregation]\ntrigger = sample_threshold\nthreshold = 0\n"));
}

// ---------- Execution loading ----------

TEST(ExecutionConfigTest, ParsesParallelism) {
  auto doc = ParseIni("[execution]\nparallelism = 4\n");
  ASSERT_TRUE(doc.ok());
  auto config = LoadExecution(*doc);
  ASSERT_TRUE(config.ok());
  EXPECT_EQ(config->parallelism, 4u);
  EXPECT_EQ(config->shards, 0u);  // single fleet unless asked
}

TEST(ExecutionConfigTest, ParsesShards) {
  auto doc = ParseIni("[execution]\nparallelism = 2\nshards = 8\n");
  ASSERT_TRUE(doc.ok());
  auto config = LoadExecution(*doc);
  ASSERT_TRUE(config.ok());
  EXPECT_EQ(config->parallelism, 2u);
  EXPECT_EQ(config->shards, 8u);

  auto alone = ParseIni("[execution]\nshards = 4\n");
  ASSERT_TRUE(alone.ok());
  auto alone_config = LoadExecution(*alone);
  ASSERT_TRUE(alone_config.ok());
  EXPECT_EQ(alone_config->parallelism, 0u);
  EXPECT_EQ(alone_config->shards, 4u);
}

TEST(ExecutionConfigTest, RejectsInvalidShards) {
  auto check = [](const std::string& body) {
    auto doc = ParseIni(body);
    EXPECT_TRUE(doc.ok());
    return !LoadExecution(*doc).ok();
  };
  EXPECT_TRUE(check("[execution]\nshards = -1\n"));
  EXPECT_TRUE(check("[execution]\nshards = many\n"));
}

TEST(ExecutionConfigTest, MissingSectionOrKeyYieldsDefaults) {
  auto empty = ParseIni("[task]\nname = x\n");
  ASSERT_TRUE(empty.ok());
  auto config = LoadExecution(*empty);
  ASSERT_TRUE(config.ok());
  EXPECT_EQ(config->parallelism, 0u);  // inherit the platform pool

  auto bare = ParseIni("[execution]\n");
  ASSERT_TRUE(bare.ok());
  auto bare_config = LoadExecution(*bare);
  ASSERT_TRUE(bare_config.ok());
  EXPECT_EQ(bare_config->parallelism, 0u);
  EXPECT_EQ(bare_config->shards, 0u);
}

TEST(ExecutionConfigTest, RejectsInvalidParallelism) {
  auto check = [](const std::string& body) {
    auto doc = ParseIni(body);
    EXPECT_TRUE(doc.ok());
    return !LoadExecution(*doc).ok();
  };
  EXPECT_TRUE(check("[execution]\nparallelism = -2\n"));
  EXPECT_TRUE(check("[execution]\nparallelism = lots\n"));
}

TEST(ExecutionConfigTest, ParsesDecodePlane) {
  auto decoded = ParseIni("[execution]\ndecode_plane = decoded\n");
  ASSERT_TRUE(decoded.ok());
  auto decoded_config = LoadExecution(*decoded);
  ASSERT_TRUE(decoded_config.ok());
  EXPECT_EQ(decoded_config->decode_plane, flow::DecodePlane::kDecoded);

  auto legacy = ParseIni("[execution]\nshards = 2\ndecode_plane = legacy\n");
  ASSERT_TRUE(legacy.ok());
  auto legacy_config = LoadExecution(*legacy);
  ASSERT_TRUE(legacy_config.ok());
  EXPECT_EQ(legacy_config->decode_plane, flow::DecodePlane::kLegacy);
  EXPECT_EQ(legacy_config->shards, 2u);

  // Missing key keeps the decoded default; junk is rejected loudly.
  auto missing = ParseIni("[execution]\nparallelism = 2\n");
  ASSERT_TRUE(missing.ok());
  auto missing_config = LoadExecution(*missing);
  ASSERT_TRUE(missing_config.ok());
  EXPECT_EQ(missing_config->decode_plane, flow::DecodePlane::kDecoded);

  auto junk = ParseIni("[execution]\ndecode_plane = sideways\n");
  ASSERT_TRUE(junk.ok());
  EXPECT_FALSE(LoadExecution(*junk).ok());
}

TEST(ExecutionConfigTest, ParsesAggregatePlane) {
  auto partial = ParseIni("[execution]\naggregate_plane = partial_sum\n");
  ASSERT_TRUE(partial.ok());
  auto partial_config = LoadExecution(*partial);
  ASSERT_TRUE(partial_config.ok());
  EXPECT_EQ(partial_config->aggregate_plane, cloud::AggregatePlane::kPartialSum);

  auto legacy =
      ParseIni("[execution]\nshards = 4\naggregate_plane = legacy\n");
  ASSERT_TRUE(legacy.ok());
  auto legacy_config = LoadExecution(*legacy);
  ASSERT_TRUE(legacy_config.ok());
  EXPECT_EQ(legacy_config->aggregate_plane, cloud::AggregatePlane::kLegacy);
  EXPECT_EQ(legacy_config->shards, 4u);

  // Missing key keeps the partial_sum default; junk is rejected loudly.
  auto missing = ParseIni("[execution]\nparallelism = 2\n");
  ASSERT_TRUE(missing.ok());
  auto missing_config = LoadExecution(*missing);
  ASSERT_TRUE(missing_config.ok());
  EXPECT_EQ(missing_config->aggregate_plane,
            cloud::AggregatePlane::kPartialSum);

  auto junk = ParseIni("[execution]\naggregate_plane = serial\n");
  ASSERT_TRUE(junk.ok());
  EXPECT_FALSE(LoadExecution(*junk).ok());
}

TEST(ExecutionConfigTest, ParsesPayloadCodec) {
  auto fp16 = ParseIni("[execution]\npayload_codec = fp16\n");
  ASSERT_TRUE(fp16.ok());
  auto fp16_config = LoadExecution(*fp16);
  ASSERT_TRUE(fp16_config.ok());
  EXPECT_EQ(fp16_config->payload_codec, ml::PayloadCodec::kFp16);

  auto int8 = ParseIni("[execution]\npayload_codec = INT8\n");  // case-folded
  ASSERT_TRUE(int8.ok());
  auto int8_config = LoadExecution(*int8);
  ASSERT_TRUE(int8_config.ok());
  EXPECT_EQ(int8_config->payload_codec, ml::PayloadCodec::kInt8);

  // Missing key keeps the bit-compatible fp32 default; junk is rejected.
  auto missing = ParseIni("[execution]\nparallelism = 2\n");
  ASSERT_TRUE(missing.ok());
  auto missing_config = LoadExecution(*missing);
  ASSERT_TRUE(missing_config.ok());
  EXPECT_EQ(missing_config->payload_codec, ml::PayloadCodec::kFp32);

  auto junk = ParseIni("[execution]\npayload_codec = fp8\n");
  ASSERT_TRUE(junk.ok());
  EXPECT_FALSE(LoadExecution(*junk).ok());
}

TEST(ExecutionConfigTest, ParsesReclaimPayloadBlobs) {
  auto on = ParseIni("[execution]\nreclaim_payload_blobs = 1\n");
  ASSERT_TRUE(on.ok());
  auto on_config = LoadExecution(*on);
  ASSERT_TRUE(on_config.ok());
  EXPECT_TRUE(on_config->reclaim_payload_blobs);

  auto off = ParseIni("[execution]\nreclaim_payload_blobs = 0\n");
  ASSERT_TRUE(off.ok());
  auto off_config = LoadExecution(*off);
  ASSERT_TRUE(off_config.ok());
  EXPECT_FALSE(off_config->reclaim_payload_blobs);

  auto missing = ParseIni("[execution]\n");
  ASSERT_TRUE(missing.ok());
  auto missing_config = LoadExecution(*missing);
  ASSERT_TRUE(missing_config.ok());
  EXPECT_FALSE(missing_config->reclaim_payload_blobs);  // off by default
}

TEST(ExecutionConfigTest, ParsesDurability) {
  auto log = ParseIni("[execution]\ndurability = log\ndurability_dir = /tmp/d\n");
  ASSERT_TRUE(log.ok());
  auto log_config = LoadExecution(*log);
  ASSERT_TRUE(log_config.ok());
  EXPECT_EQ(log_config->durability, persist::DurabilityMode::kLog);
  EXPECT_EQ(log_config->durability_dir, "/tmp/d");

  auto ckpt = ParseIni(
      "[execution]\ndurability = LOG+CHECKPOINT\ndurability_dir = state\n");
  ASSERT_TRUE(ckpt.ok());  // case-folded like the other enum keys
  auto ckpt_config = LoadExecution(*ckpt);
  ASSERT_TRUE(ckpt_config.ok());
  EXPECT_EQ(ckpt_config->durability, persist::DurabilityMode::kLogCheckpoint);

  auto off = ParseIni("[execution]\ndurability = off\n");
  ASSERT_TRUE(off.ok());
  auto off_config = LoadExecution(*off);
  ASSERT_TRUE(off_config.ok());  // off needs no directory
  EXPECT_EQ(off_config->durability, persist::DurabilityMode::kOff);

  // Missing key keeps the zero-overhead default.
  auto missing = ParseIni("[execution]\nparallelism = 2\n");
  ASSERT_TRUE(missing.ok());
  auto missing_config = LoadExecution(*missing);
  ASSERT_TRUE(missing_config.ok());
  EXPECT_EQ(missing_config->durability, persist::DurabilityMode::kOff);
  EXPECT_TRUE(missing_config->durability_dir.empty());
}

TEST(ExecutionConfigTest, RejectsBadDurability) {
  // Junk mode names are rejected loudly.
  auto junk = ParseIni("[execution]\ndurability = sometimes\n");
  ASSERT_TRUE(junk.ok());
  EXPECT_FALSE(LoadExecution(*junk).ok());

  // Durable modes without a directory have nowhere to write — reject at
  // load time rather than failing mid-run.
  auto no_dir = ParseIni("[execution]\ndurability = log\n");
  ASSERT_TRUE(no_dir.ok());
  auto no_dir_config = LoadExecution(*no_dir);
  ASSERT_FALSE(no_dir_config.ok());
  EXPECT_EQ(no_dir_config.error().code(), ErrorCode::kInvalidArgument);

  auto ckpt_no_dir = ParseIni("[execution]\ndurability = log+checkpoint\n");
  ASSERT_TRUE(ckpt_no_dir.ok());
  EXPECT_FALSE(LoadExecution(*ckpt_no_dir).ok());
}

// ---------- round trip into the platform types ----------

TEST(RoundTripTest, FullSpecProducesSchedulableTask) {
  auto task = ParseTaskSpec(kFullSpec);
  ASSERT_TRUE(task.ok());
  const auto request = sched::RequestFor(*task);
  EXPECT_EQ(request.logical_bundles, 200u);
  EXPECT_EQ(request.phones[0], 17u);  // 12 + 5 benchmarking
  EXPECT_EQ(request.phones[1], 13u);
}

// ---------- per-tenant specs (multi-tenant plane) ----------

constexpr const char* kLossyTenantSpec = R"(
[task]
name = lossy-tenant
priority = 7
rounds = 3

[devices.high]
count = 50
logical_bundles = 40
phones = 4

[link]
transient_failure_probability = 0.2
max_attempts = 4
backoff_initial_s = 2
upload_deadline_s = 120

[execution]
shards = 2
round_quorum = 25
round_deadline_s = 90
round_extension_s = 30
)";

constexpr const char* kCleanTenantSpec = R"(
[task]
name = clean-tenant
priority = 2
rounds = 1

[devices.high]
count = 20
logical_bundles = 16
phones = 2
)";

TEST(TenantSpecTest, TwoSpecsYieldTwoDistinctPolicies) {
  // The historical failure mode: [link] and round_quorum parsed per spec
  // but only one global set was applied. LoadTenantSpec must keep each
  // spec's policies separate — one lossy/quorum'd tenant, one default.
  auto lossy_doc = ParseIni(kLossyTenantSpec);
  auto clean_doc = ParseIni(kCleanTenantSpec);
  ASSERT_TRUE(lossy_doc.ok());
  ASSERT_TRUE(clean_doc.ok());
  auto lossy = LoadTenantSpec(*lossy_doc);
  auto clean = LoadTenantSpec(*clean_doc);
  ASSERT_TRUE(lossy.ok());
  ASSERT_TRUE(clean.ok());

  EXPECT_EQ(lossy->spec.name, "lossy-tenant");
  EXPECT_DOUBLE_EQ(lossy->link.transient_failure_probability, 0.2);
  EXPECT_EQ(lossy->link.max_attempts, 4u);
  EXPECT_EQ(lossy->link.upload_deadline, Seconds(120.0));
  EXPECT_TRUE(lossy->link.active());
  EXPECT_EQ(lossy->execution.round_quorum, 25u);
  EXPECT_EQ(lossy->execution.round_deadline, Seconds(90.0));
  EXPECT_EQ(lossy->execution.shards, 2u);

  EXPECT_EQ(clean->spec.name, "clean-tenant");
  EXPECT_DOUBLE_EQ(clean->link.transient_failure_probability, 0.0);
  EXPECT_EQ(clean->link.max_attempts, 1u);
  EXPECT_FALSE(clean->link.active());
  EXPECT_EQ(clean->execution.round_quorum, 0u);
  EXPECT_EQ(clean->execution.shards, 0u);

  // And the mapping into per-task experiments preserves the split.
  const auto lossy_fl = core::ExperimentFromTenantSpec(*lossy, 1);
  const auto clean_fl = core::ExperimentFromTenantSpec(*clean, 2);
  EXPECT_DOUBLE_EQ(lossy_fl.link.transient_failure_probability, 0.2);
  EXPECT_EQ(lossy_fl.round_quorum, 25u);
  EXPECT_EQ(lossy_fl.shards, 2u);
  EXPECT_EQ(lossy_fl.rounds, 3u);
  EXPECT_DOUBLE_EQ(clean_fl.link.transient_failure_probability, 0.0);
  EXPECT_EQ(clean_fl.round_quorum, 0u);
  EXPECT_EQ(clean_fl.shards, 1u);  // 0 in the spec → single fleet
  EXPECT_EQ(clean_fl.rounds, 1u);
}

TEST(TenantSpecTest, StrategyPresenceIsTracked) {
  auto with_traffic = ParseIni(
      "[task]\nname = t\nrounds = 1\n"
      "[devices.high]\ncount = 10\nlogical_bundles = 8\nphones = 1\n"
      "[traffic]\nstrategy = realtime\nthresholds = 5\n");
  ASSERT_TRUE(with_traffic.ok());
  auto spec = LoadTenantSpec(*with_traffic);
  ASSERT_TRUE(spec.ok());
  EXPECT_TRUE(spec->has_strategy);

  auto without_traffic = ParseIni(
      "[task]\nname = t\nrounds = 1\n"
      "[devices.high]\ncount = 10\nlogical_bundles = 8\nphones = 1\n");
  ASSERT_TRUE(without_traffic.ok());
  auto defaulted = LoadTenantSpec(*without_traffic);
  ASSERT_TRUE(defaulted.ok());
  EXPECT_FALSE(defaulted->has_strategy);
}

TEST(TenantSpecTest, MalformedPresentSectionsAreErrors) {
  // A present-but-broken [link] section must fail loudly, never default.
  auto bad_link = ParseIni(
      "[task]\nname = t\nrounds = 1\n"
      "[devices.high]\ncount = 10\nlogical_bundles = 8\nphones = 1\n"
      "[link]\ntransient_failure_probability = 1.5\n");
  ASSERT_TRUE(bad_link.ok());
  EXPECT_FALSE(LoadTenantSpec(*bad_link).ok());

  // A tenant with no [devices.*] section has nothing to schedule.
  auto no_devices = ParseIni("[task]\nname = t\nrounds = 1\n");
  ASSERT_TRUE(no_devices.ok());
  EXPECT_FALSE(LoadTenantSpec(*no_devices).ok());
}

}  // namespace
}  // namespace simdc::config
