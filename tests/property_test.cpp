// Cross-cutting property tests: randomized sweeps over strategies and
// allocations asserting the system's invariants rather than specific
// values.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "flow/device_flow.h"
#include "flow/rate_functions.h"
#include "sched/allocation.h"
#include "sim/event_loop.h"

namespace simdc {
namespace {

// ---------- DeviceFlow conservation ----------
//
// Invariant: for any strategy and any dropout setting,
//   received == delivered + dropped + still-shelved,
// and deliveries never decrease in time.

class CountingEndpoint final : public flow::CloudEndpoint {
 public:
  void Deliver(const flow::Message&, SimTime arrival) override {
    EXPECT_GE(arrival, last_arrival_);
    last_arrival_ = arrival;
    ++delivered_;
  }
  std::size_t delivered() const { return delivered_; }

 private:
  std::size_t delivered_ = 0;
  SimTime last_arrival_ = 0;
};

flow::DispatchStrategy RandomStrategy(Rng& rng) {
  switch (rng.UniformInt(0, 2)) {
    case 0: {
      flow::RealtimeAccumulated realtime;
      const std::size_t cycle = 1 + static_cast<std::size_t>(rng.UniformInt(0, 2));
      realtime.thresholds.clear();
      for (std::size_t i = 0; i < cycle; ++i) {
        realtime.thresholds.push_back(
            static_cast<std::size_t>(rng.UniformInt(1, 40)));
      }
      realtime.failure_probability = rng.Uniform(0.0, 0.5);
      return realtime;
    }
    case 1: {
      flow::TimePointDispatch points;
      const std::size_t n = 1 + static_cast<std::size_t>(rng.UniformInt(0, 3));
      SimTime when = 0;
      for (std::size_t i = 0; i < n; ++i) {
        flow::TimePoint point;
        when += Seconds(rng.Uniform(1.0, 20.0));
        point.when = when;
        point.count = static_cast<std::size_t>(rng.UniformInt(1, 400));
        point.failure_probability = rng.Uniform(0.0, 0.4);
        point.random_discard = static_cast<std::size_t>(rng.UniformInt(0, 5));
        points.points.push_back(point);
      }
      return points;
    }
    default: {
      flow::TimeIntervalDispatch interval;
      interval.rate = rng.Bernoulli(0.5)
                          ? flow::NormalCurve(rng.Uniform(0.5, 2.5))
                          : flow::SinPlusOne();
      interval.interval = Seconds(rng.Uniform(10.0, 90.0));
      interval.failure_probability = rng.Uniform(0.0, 0.4);
      return interval;
    }
  }
}

class FlowConservationTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FlowConservationTest, ReceivedEqualsDeliveredPlusDroppedPlusShelved) {
  Rng rng(GetParam());
  sim::EventLoop loop;
  flow::DeviceFlow device_flow(loop);
  CountingEndpoint endpoint;
  ASSERT_TRUE(device_flow
                  .ConfigureTask(TaskId(1), RandomStrategy(rng), &endpoint,
                                 GetParam())
                  .ok());
  const std::size_t messages =
      static_cast<std::size_t>(rng.UniformInt(1, 800));
  const std::size_t rounds = 1 + static_cast<std::size_t>(rng.UniformInt(0, 2));
  std::uint64_t next_id = 1;
  for (std::size_t round = 0; round < rounds; ++round) {
    ASSERT_TRUE(device_flow.OnRoundStart(TaskId(1), round).ok());
    for (std::size_t i = 0; i < messages; ++i) {
      flow::Message m;
      m.id = MessageId(next_id++);
      m.task = TaskId(1);
      m.round = round;
      ASSERT_TRUE(device_flow.OnMessage(std::move(m)).ok());
    }
    ASSERT_TRUE(device_flow.OnRoundEnd(TaskId(1), round).ok());
    loop.Run();
  }
  const auto* dispatcher = device_flow.FindDispatcher(TaskId(1));
  ASSERT_NE(dispatcher, nullptr);
  const auto& stats = dispatcher->stats();
  EXPECT_EQ(stats.received, rounds * messages);
  EXPECT_EQ(stats.received,
            stats.sent + stats.dropped + dispatcher->shelf().size());
  EXPECT_EQ(endpoint.delivered(), stats.sent);
  // Batch bookkeeping sums to sent.
  std::size_t batched = 0;
  for (const auto& [when, count] : stats.batches) batched += count;
  EXPECT_EQ(batched, stats.sent);
}

INSTANTIATE_TEST_SUITE_P(RandomStrategies, FlowConservationTest,
                         ::testing::Range<std::uint64_t>(0, 30));

// ---------- Allocation monotonicity ----------
//
// Invariant: adding resources (bundles or phones) never increases the
// optimal makespan; adding devices never decreases it.

class AllocationMonotonicityTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AllocationMonotonicityTest, MoreResourcesNeverHurt) {
  Rng rng(GetParam());
  sched::GradeAllocationInput g;
  g.total_devices = static_cast<std::size_t>(rng.UniformInt(5, 200));
  g.benchmarking = static_cast<std::size_t>(
      rng.UniformInt(0, static_cast<std::int64_t>(g.total_devices) / 4));
  g.bundles_per_device = static_cast<std::size_t>(rng.UniformInt(1, 8));
  g.logical_bundles = static_cast<std::size_t>(rng.UniformInt(1, 80));
  g.phones = static_cast<std::size_t>(rng.UniformInt(1, 12));
  g.alpha_s = rng.Uniform(0.5, 6.0);
  g.beta_s = rng.Uniform(0.5, 6.0);
  g.lambda_s = rng.Uniform(0.0, 25.0);

  const auto base = sched::SolveHybridAllocation({g});
  ASSERT_TRUE(base.ok());

  auto more_bundles = g;
  more_bundles.logical_bundles += g.bundles_per_device * 4;
  const auto with_bundles = sched::SolveHybridAllocation({more_bundles});
  ASSERT_TRUE(with_bundles.ok());
  EXPECT_LE(with_bundles->total_seconds, base->total_seconds + 1e-9);

  auto more_phones = g;
  more_phones.phones += 4;
  const auto with_phones = sched::SolveHybridAllocation({more_phones});
  ASSERT_TRUE(with_phones.ok());
  EXPECT_LE(with_phones->total_seconds, base->total_seconds + 1e-9);

  auto more_devices = g;
  more_devices.total_devices += 50;
  const auto with_devices = sched::SolveHybridAllocation({more_devices});
  ASSERT_TRUE(with_devices.ok());
  EXPECT_GE(with_devices->total_seconds, base->total_seconds - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(RandomGrades, AllocationMonotonicityTest,
                         ::testing::Range<std::uint64_t>(100, 130));

// ---------- Event-loop stress ----------

TEST(EventLoopStressTest, RandomScheduleCancelInterleaving) {
  Rng rng(7);
  sim::EventLoop loop;
  std::size_t fired = 0;
  std::vector<sim::EventHandle> handles;
  for (int i = 0; i < 5000; ++i) {
    handles.push_back(loop.ScheduleAt(
        Seconds(rng.Uniform(0.0, 100.0)), [&fired] { ++fired; }));
  }
  // Cancel a random 20%.
  std::size_t cancelled = 0;
  for (const auto handle : handles) {
    if (rng.Bernoulli(0.2) && loop.Cancel(handle)) ++cancelled;
  }
  loop.Run();
  EXPECT_EQ(fired, 5000 - cancelled);
  EXPECT_TRUE(loop.empty());
}

TEST(EventLoopStressTest, NestedSchedulingKeepsOrder) {
  sim::EventLoop loop;
  std::vector<SimTime> fire_times;
  Rng rng(9);
  std::function<void(int)> spawn = [&](int depth) {
    fire_times.push_back(loop.Now());
    if (depth > 0) {
      for (int i = 0; i < 2; ++i) {
        loop.ScheduleAfter(Seconds(rng.Uniform(0.1, 5.0)),
                           [&spawn, depth] { spawn(depth - 1); });
      }
    }
  };
  loop.ScheduleAt(0, [&spawn] { spawn(6); });
  loop.Run();
  EXPECT_EQ(fire_times.size(), 127u);  // 2^7 - 1 nodes
  for (std::size_t i = 1; i < fire_times.size(); ++i) {
    EXPECT_GE(fire_times[i], fire_times[i - 1]);
  }
}

}  // namespace
}  // namespace simdc
