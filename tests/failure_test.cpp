// Failure-injection tests: APK crashes mid-round (paper §II-B lists
// "application crashes" among the real device behaviors a simulator must
// model), recovery relaunches, multi-plan phone schedules and dynamic
// cluster scale-down.
#include <gtest/gtest.h>

#include <set>

#include "cloud/database.h"
#include "core/platform.h"
#include "core/status.h"
#include "device/fleet.h"
#include "phonemgr/phone_mgr.h"
#include "sim/event_loop.h"

namespace simdc::device {
namespace {

class CrashTest : public ::testing::Test {
 protected:
  CrashTest() : mgr_(loop_) {
    mgr_.RegisterFleet(MakeDefaultCluster(42));
    mgr_.set_metrics_sink(&db_);
  }

  PhoneJob CrashyJob(TaskId task, double p) {
    PhoneJob job;
    job.task = task;
    job.grade = DeviceGrade::kHigh;
    job.devices_to_simulate = 6;
    job.computing_phones = 2;
    job.benchmarking_phones = 1;
    job.rounds = 4;
    job.round_duration_s = 10.0;
    job.startup_s = 8.0;
    job.aggregation_wait_s = 4.0;
    job.crash_probability = p;
    job.crash_recovery_s = 12.0;
    job.sample_period = Seconds(1.0);
    job.seed = 99;
    return job;
  }

  sim::EventLoop loop_;
  PhoneMgr mgr_;
  cloud::MetricsDatabase db_;
};

TEST_F(CrashTest, NoCrashesWhenProbabilityZero) {
  auto handle = mgr_.SubmitJob(CrashyJob(TaskId(1), 0.0));
  ASSERT_TRUE(handle.ok());
  EXPECT_EQ(handle->crashes, 0u);
  EXPECT_EQ(handle->abandoned_rounds, 0u);
  loop_.Run();
}

TEST_F(CrashTest, CrashesExtendMakespanAndRetryRounds) {
  auto clean = mgr_.SubmitJob(CrashyJob(TaskId(1), 0.0));
  ASSERT_TRUE(clean.ok());
  auto crashy = mgr_.SubmitJob(CrashyJob(TaskId(2), 0.5));
  ASSERT_TRUE(crashy.ok());
  EXPECT_GT(crashy->crashes, 0u);
  // Recovery + retries push completion later than the clean job.
  EXPECT_GT(crashy->finish_time, clean->finish_time);

  std::size_t completed_hooks = 0;
  auto job = CrashyJob(TaskId(3), 0.5);
  job.on_round_complete = [&](PhoneId, std::size_t, SimTime) {
    ++completed_hooks;
  };
  auto handle = mgr_.SubmitJob(job);
  ASSERT_TRUE(handle.ok());
  loop_.Run();
  // Every non-abandoned round of every phone eventually completes once.
  const std::size_t phones = 3;  // 2 computing + 1 benchmarking
  EXPECT_EQ(completed_hooks + handle->abandoned_rounds,
            phones * job.rounds);
}

TEST_F(CrashTest, CrashedRoundUploadsNothing) {
  auto job = CrashyJob(TaskId(1), 0.6);
  auto handle = mgr_.SubmitJob(job);
  ASSERT_TRUE(handle.ok());
  ASSERT_GT(handle->crashes, 0u);
  loop_.Run();
  // Find a phone with multiple plans (i.e. that crashed at least once).
  bool found_crashed_plan = false;
  for (PhoneId id : handle->computing) {
    const Phone* phone = mgr_.FindPhone(id);
    if (phone->plan_count() < 2) continue;
    found_crashed_plan = true;
  }
  EXPECT_TRUE(found_crashed_plan);
}

TEST_F(CrashTest, PgrepSeesRecoveryPid) {
  auto job = CrashyJob(TaskId(1), 0.7);
  auto handle = mgr_.SubmitJob(job);
  ASSERT_TRUE(handle.ok());
  loop_.Run();
  // A crashed phone has distinct pids per APK lifetime; during a recovery
  // gap the process is absent.
  for (PhoneId id : handle->computing) {
    Phone* phone = mgr_.FindPhone(id);
    if (phone->plan_count() < 2) continue;
    // Query right after the first plan's closure: process gone.
    const RunPlan* last = phone->plan();
    adb::AdbServer* shell = mgr_.FindAdb(id);
    // Mid-first-plan: pid == first plan's pid (pgrep through ADB).
    // (Walk via PlanCovering on a time inside the final plan.)
    const SimTime inside_last =
        last->apk_launch_start + Seconds(1.0);
    auto pgrep = shell->ShellAt("pgrep -f " + last->process_name, inside_last);
    ASSERT_TRUE(pgrep.ok());
    return;  // one crashed phone is enough
  }
  GTEST_SKIP() << "no phone crashed with this seed";
}

TEST_F(CrashTest, PathologicalProbabilityAbandonsRounds) {
  auto job = CrashyJob(TaskId(1), 1.0);  // always crashes
  job.max_round_attempts = 3;
  auto handle = mgr_.SubmitJob(job);
  ASSERT_TRUE(handle.ok());
  // 3 phones × 4 rounds all abandoned after 3 attempts each.
  EXPECT_EQ(handle->abandoned_rounds, 3u * 4u);
  EXPECT_EQ(handle->crashes, 3u * 4u * 3u);
  loop_.Run();  // terminates (no infinite retry)
}

TEST_F(CrashTest, CrashDrawsAreDeterministic) {
  auto h1 = mgr_.SubmitJob(CrashyJob(TaskId(1), 0.5));
  ASSERT_TRUE(h1.ok());
  loop_.Run();
  // Fresh manager, same fleet/seed: identical crash count.
  sim::EventLoop loop2;
  PhoneMgr mgr2(loop2);
  mgr2.RegisterFleet(MakeDefaultCluster(42));
  auto h2 = mgr2.SubmitJob(CrashyJob(TaskId(1), 0.5));
  ASSERT_TRUE(h2.ok());
  EXPECT_EQ(h1->crashes, h2->crashes);
  EXPECT_EQ(h1->finish_time, h2->finish_time);
  loop2.Run();
}

// ---------- multi-plan phone schedules ----------

TEST(MultiPlanPhoneTest, PlansMustNotOverlap) {
  ManualClock clock;
  PhoneSpec spec;
  spec.id = PhoneId(1);
  Phone phone(spec, clock);
  RunPlan first;
  first.apk_launch_start = 0;
  first.rounds = {{Seconds(5), Seconds(10), 0, 0}};
  first.closure_start = Seconds(10);
  first.closure_end = Seconds(12);
  first.pid = 100;
  phone.ScheduleRun(first);
  RunPlan overlapping = first;
  overlapping.apk_launch_start = Seconds(11);  // inside first's window
  overlapping.rounds = {{Seconds(15), Seconds(20), 0, 0}};
  overlapping.closure_start = Seconds(20);
  overlapping.closure_end = Seconds(22);
  EXPECT_THROW(phone.ScheduleRun(overlapping), std::invalid_argument);
}

TEST(MultiPlanPhoneTest, StagesSpanSegments) {
  ManualClock clock;
  PhoneSpec spec;
  spec.id = PhoneId(1);
  Phone phone(spec, clock);
  RunPlan first;
  first.apk_launch_start = 0;
  first.rounds = {{Seconds(5), Seconds(8), 1000, 0}};  // crashed: no upload
  first.closure_start = Seconds(8);
  first.closure_end = Seconds(9);
  first.pid = 100;
  phone.ScheduleRun(first);
  RunPlan recovery;
  recovery.apk_launch_start = Seconds(20);
  recovery.rounds = {{Seconds(25), Seconds(30), 1000, 2000}};
  recovery.closure_start = Seconds(30);
  recovery.closure_end = Seconds(32);
  recovery.pid = 101;
  phone.ScheduleRun(recovery);

  EXPECT_EQ(phone.StageAt(Seconds(6)), ApkStage::kTraining);
  EXPECT_EQ(phone.StageAt(Seconds(8.5)), ApkStage::kApkClosure);
  EXPECT_EQ(phone.StageAt(Seconds(15)), ApkStage::kNoApk);  // recovery gap
  EXPECT_EQ(phone.StageAt(Seconds(22)), ApkStage::kApkLaunch);
  EXPECT_EQ(phone.StageAt(Seconds(27)), ApkStage::kTraining);
  // Distinct pids per APK lifetime.
  EXPECT_EQ(phone.PidOf("com.simdc.fltrain", Seconds(6)), 100);
  EXPECT_FALSE(phone.PidOf("com.simdc.fltrain", Seconds(15)).has_value());
  EXPECT_EQ(phone.PidOf("com.simdc.fltrain", Seconds(27)), 101);
  // Wlan counters accumulate across segments and stay monotone.
  const auto before = phone.WlanAt(Seconds(10));
  const auto after = phone.WlanAt(Seconds(32));
  EXPECT_GT(after.rx_bytes, before.rx_bytes);
  EXPECT_GT(after.tx_bytes, before.tx_bytes);
  // Energy integrates across the idle gap at idle current.
  const double gap_energy = phone.EnergyConsumedMah(Seconds(9), Seconds(20));
  EXPECT_GT(gap_energy, 0.0);
}

// ---------- dynamic cluster scale-down ----------

TEST(UnregisterTest, RemovesIdleRejectsBusy) {
  sim::EventLoop loop;
  PhoneMgr mgr(loop);
  mgr.RegisterFleet(MakeLocalFleet(2, 0, 7, 0));
  ASSERT_EQ(mgr.TotalPhones(), 2u);

  PhoneJob job;
  job.task = TaskId(1);
  job.grade = DeviceGrade::kHigh;
  job.benchmarking_phones = 1;
  job.rounds = 1;
  auto handle = mgr.SubmitJob(job);
  ASSERT_TRUE(handle.ok());
  const PhoneId busy = handle->benchmarking[0];
  EXPECT_FALSE(mgr.UnregisterPhone(busy).ok());

  // The other phone is idle and can be removed.
  const PhoneId idle = busy == PhoneId(0) ? PhoneId(1) : PhoneId(0);
  EXPECT_TRUE(mgr.UnregisterPhone(idle).ok());
  EXPECT_EQ(mgr.TotalPhones(), 1u);
  EXPECT_FALSE(mgr.UnregisterPhone(idle).ok());  // already gone
  loop.Run();
  EXPECT_TRUE(mgr.UnregisterPhone(busy).ok());  // freed after completion
}

}  // namespace
}  // namespace simdc::device

// ---------- status reporter ----------

namespace simdc::core {
namespace {

TEST(StatusTest, RendersAllSections) {
  Platform platform;
  sched::TaskSpec task;
  task.name = "visible-task";
  task.priority = 3;
  sched::DeviceRequirement requirement;
  requirement.grade = device::DeviceGrade::kHigh;
  requirement.num_devices = 10;
  requirement.logical_bundles = 16;
  requirement.phones = 1;
  task.requirements.push_back(requirement);
  ASSERT_TRUE(platform.SubmitTask(task).ok());

  const std::string status = RenderStatus(platform);
  EXPECT_NE(status.find("SimDC platform status"), std::string::npos);
  EXPECT_NE(status.find("task queue: 1 waiting"), std::string::npos);
  EXPECT_NE(status.find("visible-task"), std::string::npos);
  EXPECT_NE(status.find("unit bundles free"), std::string::npos);
  EXPECT_NE(status.find("phone cluster: 30 phones"), std::string::npos);

  const std::string line = RenderStatusLine(platform);
  EXPECT_NE(line.find("queue=1"), std::string::npos);

  // After execution, the queue is empty and samples exist is optional
  // (no benchmarking phones requested here).
  platform.RunQueuedTasks();
  const std::string after = RenderStatus(platform);
  EXPECT_NE(after.find("task queue: 0 waiting"), std::string::npos);
}

}  // namespace
}  // namespace simdc::core
