// Unit tests for the device substrate: grades, power model, the simulated
// phone's lifecycle/sensors, and fleet factories.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/clock.h"
#include "common/stats.h"
#include "device/fleet.h"
#include "device/grade.h"
#include "device/phone.h"
#include "device/power_model.h"

namespace simdc::device {
namespace {

PhoneSpec HighSpec(std::uint64_t seed = 1) {
  PhoneSpec spec;
  spec.id = PhoneId(1);
  spec.grade = DeviceGrade::kHigh;
  spec.memory_gb = 12.0;
  spec.seed = seed;
  return spec;
}

/// A plan with 2 rounds: launch 0–15 s, rounds at [15,31.2) and [45,61.2),
/// closure at [70, 85).
RunPlan TwoRoundPlan() {
  RunPlan plan;
  plan.apk_launch_start = 0;
  RoundWindow r1;
  r1.train_start = Seconds(15);
  r1.train_end = Seconds(31.2);
  r1.download_bytes = 16 * 1024;
  r1.upload_bytes = 17 * 1024;
  RoundWindow r2 = r1;
  r2.train_start = Seconds(45);
  r2.train_end = Seconds(61.2);
  plan.rounds = {r1, r2};
  plan.closure_start = Seconds(70);
  plan.closure_end = Seconds(85);
  plan.pid = 4242;
  return plan;
}

// ---------- grades ----------

TEST(GradeTest, SpecsMatchPaperConfigs) {
  const GradeSpec high = HighGradeSpec();
  EXPECT_DOUBLE_EQ(high.logical_bundle.cpu_cores, 4.0);
  EXPECT_DOUBLE_EQ(high.logical_bundle.memory_gb, 12.0);
  EXPECT_EQ(high.unit_bundles, 8u);
  const GradeSpec low = LowGradeSpec();
  EXPECT_DOUBLE_EQ(low.logical_bundle.cpu_cores, 1.0);
  EXPECT_DOUBLE_EQ(low.logical_bundle.memory_gb, 6.0);
  // Low-grade hardware is slower in both venues.
  EXPECT_GT(low.alpha_s, high.alpha_s);
  EXPECT_GT(low.beta_s, high.beta_s);
  EXPECT_GT(low.lambda_s, high.lambda_s);
}

TEST(GradeTest, IndexRoundTrip) {
  EXPECT_EQ(GradeFromIndex(GradeIndex(DeviceGrade::kHigh)), DeviceGrade::kHigh);
  EXPECT_EQ(GradeFromIndex(GradeIndex(DeviceGrade::kLow)), DeviceGrade::kLow);
  EXPECT_EQ(ToString(DeviceGrade::kHigh), "High");
}

// ---------- power model ----------

TEST(PowerModelTest, TableICalibrationHigh) {
  const PowerModel model(DeviceGrade::kHigh);
  // mAh = mA * minutes / 60 must reproduce Table I.
  EXPECT_NEAR(model.MeanCurrentMa(ApkStage::kNoApk) * 0.25 / 60.0, 0.24, 1e-6);
  EXPECT_NEAR(model.MeanCurrentMa(ApkStage::kApkLaunch) * 0.25 / 60.0, 0.51,
              1e-6);
  EXPECT_NEAR(model.MeanCurrentMa(ApkStage::kTraining) * 0.27 / 60.0, 0.18,
              1e-6);
  EXPECT_NEAR(model.MeanCurrentMa(ApkStage::kPostTraining) * 0.25 / 60.0, 0.37,
              1e-6);
  EXPECT_NEAR(model.MeanCurrentMa(ApkStage::kApkClosure) * 0.25 / 60.0, 0.44,
              1e-6);
}

TEST(PowerModelTest, TableICalibrationLow) {
  const PowerModel model(DeviceGrade::kLow);
  EXPECT_NEAR(model.MeanCurrentMa(ApkStage::kNoApk) * 0.25 / 60.0, 1.71, 1e-6);
  EXPECT_NEAR(model.MeanCurrentMa(ApkStage::kTraining) * 0.36 / 60.0, 0.66,
              1e-6);
}

TEST(PowerModelTest, CurrentReadingsAreNegativeAndNoisy) {
  const PowerModel model(DeviceGrade::kHigh, 0.05);
  Rng rng(1);
  RunningStats stats;
  for (int i = 0; i < 2000; ++i) {
    const auto ua = model.CurrentNowMicroAmps(ApkStage::kTraining, rng);
    EXPECT_LT(ua, 0);  // discharging convention
    stats.Add(static_cast<double>(-ua) / 1000.0);
  }
  EXPECT_NEAR(stats.mean(), model.MeanCurrentMa(ApkStage::kTraining),
              model.MeanCurrentMa(ApkStage::kTraining) * 0.01);
  EXPECT_GT(stats.stddev(), 0.0);
}

TEST(PowerModelTest, VoltageSagsUnderLoad) {
  const PowerModel high(DeviceGrade::kLow, 0.0);
  Rng rng1(1), rng2(1);
  const auto idle = high.VoltageNowMicroVolts(ApkStage::kTraining, rng1);
  const auto heavy = high.VoltageNowMicroVolts(ApkStage::kApkClosure, rng2);
  EXPECT_GT(idle, heavy);  // closure draws more on Low grade
  EXPECT_NEAR(static_cast<double>(idle), 3.85e6, 0.5e6);
}

// ---------- phone lifecycle ----------

TEST(PhoneTest, StageProgression) {
  ManualClock clock;
  Phone phone(HighSpec(), clock);
  EXPECT_EQ(phone.StageAt(Seconds(5)), ApkStage::kNoApk);  // no plan yet
  phone.ScheduleRun(TwoRoundPlan());
  EXPECT_EQ(phone.StageAt(Seconds(5)), ApkStage::kApkLaunch);
  EXPECT_EQ(phone.StageAt(Seconds(20)), ApkStage::kTraining);
  EXPECT_EQ(phone.StageAt(Seconds(35)), ApkStage::kPostTraining);  // waiting
  EXPECT_EQ(phone.StageAt(Seconds(50)), ApkStage::kTraining);      // round 2
  EXPECT_EQ(phone.StageAt(Seconds(65)), ApkStage::kPostTraining);
  EXPECT_EQ(phone.StageAt(Seconds(75)), ApkStage::kApkClosure);
  EXPECT_EQ(phone.StageAt(Seconds(90)), ApkStage::kNoApk);
}

TEST(PhoneTest, RejectsMalformedPlans) {
  ManualClock clock;
  Phone phone(HighSpec(), clock);
  RunPlan plan = TwoRoundPlan();
  plan.rounds.clear();
  EXPECT_THROW(phone.ScheduleRun(plan), std::invalid_argument);
  plan = TwoRoundPlan();
  std::swap(plan.rounds[0], plan.rounds[1]);  // out of order
  EXPECT_THROW(phone.ScheduleRun(plan), std::invalid_argument);
  plan = TwoRoundPlan();
  plan.closure_end = plan.closure_start;  // empty closure
  EXPECT_THROW(phone.ScheduleRun(plan), std::invalid_argument);
}

TEST(PhoneTest, PidVisibleOnlyWhileApkAlive) {
  ManualClock clock;
  Phone phone(HighSpec(), clock);
  auto plan = TwoRoundPlan();
  plan.apk_launch_start = Seconds(10);
  plan.process_name = "com.simdc.fltrain";
  phone.ScheduleRun(plan);
  EXPECT_FALSE(phone.PidOf("com.simdc.fltrain", Seconds(5)).has_value());
  EXPECT_EQ(phone.PidOf("com.simdc.fltrain", Seconds(20)), 4242);
  EXPECT_FALSE(phone.PidOf("other.app", Seconds(20)).has_value());
  EXPECT_FALSE(phone.PidOf("com.simdc.fltrain", Seconds(90)).has_value());
}

TEST(PhoneTest, CpuTraceMatchesFig5Shape) {
  ManualClock clock;
  Phone phone(HighSpec(), clock);
  phone.ScheduleRun(TwoRoundPlan());
  // During training: oscillating, noticeably above the waiting baseline.
  RunningStats training, waiting;
  for (double t = 16.0; t < 31.0; t += 0.5) {
    training.Add(phone.CpuPercentAt(Seconds(t)));
  }
  for (double t = 33.0; t < 44.0; t += 0.5) {
    waiting.Add(phone.CpuPercentAt(Seconds(t)));
  }
  EXPECT_GT(training.mean(), 4.0);
  EXPECT_LT(training.mean(), 16.0);
  EXPECT_LT(waiting.mean(), 3.0);
  EXPECT_GT(training.stddev(), 1.0);  // visible oscillation
  EXPECT_EQ(phone.CpuPercentAt(Seconds(90)), 0.0);  // process gone
}

TEST(PhoneTest, MemoryRampsWithinRound) {
  ManualClock clock;
  Phone phone(HighSpec(), clock);
  phone.ScheduleRun(TwoRoundPlan());
  const auto early = phone.MemPssKbAt(Seconds(16));
  const auto late = phone.MemPssKbAt(Seconds(30));
  EXPECT_GT(late, early + 10 * 1024);  // climbs ≥10 MB across the round
  EXPECT_EQ(phone.MemPssKbAt(Seconds(90)), 0);
}

TEST(PhoneTest, SensorQueriesAreDeterministic) {
  ManualClock clock;
  Phone a(HighSpec(7), clock), b(HighSpec(7), clock);
  a.ScheduleRun(TwoRoundPlan());
  b.ScheduleRun(TwoRoundPlan());
  for (double t : {5.0, 20.0, 35.0, 75.0}) {
    EXPECT_EQ(a.CurrentNowMicroAmps(Seconds(t)),
              b.CurrentNowMicroAmps(Seconds(t)));
    EXPECT_EQ(a.CpuPercentAt(Seconds(t)), b.CpuPercentAt(Seconds(t)));
    EXPECT_EQ(a.MemPssKbAt(Seconds(t)), b.MemPssKbAt(Seconds(t)));
  }
}

TEST(PhoneTest, WlanCountersMonotoneAndRoundSized) {
  ManualClock clock;
  Phone phone(HighSpec(), clock);
  phone.ScheduleRun(TwoRoundPlan());
  Phone::WlanCounters prev;
  for (double t = 0.0; t < 90.0; t += 0.25) {
    const auto counters = phone.WlanAt(Seconds(t));
    EXPECT_GE(counters.rx_bytes, prev.rx_bytes);
    EXPECT_GE(counters.tx_bytes, prev.tx_bytes);
    prev = counters;
  }
  // Round 1 communication ≈ download + upload (±background drip).
  const auto comm =
      phone.CommBytesBetween(Seconds(15), Seconds(31.2));
  EXPECT_NEAR(static_cast<double>(comm), 33.0 * 1024.0, 2.0 * 1024.0);
}

TEST(PhoneTest, EnergyIntegralMatchesTableI) {
  ManualClock clock;
  Phone phone(HighSpec(), clock);
  auto plan = TwoRoundPlan();
  phone.ScheduleRun(plan);
  // Launch stage: 15 s at 122.4 mA = 0.51 mAh per 0.25 min → for 15 s:
  // 122.4 * (15/3600) = 0.51 mAh.
  EXPECT_NEAR(phone.EnergyConsumedMah(0, Seconds(15)), 0.51, 1e-6);
  // Training round 1 (16.2 s at 40 mA) = 0.18 mAh.
  EXPECT_NEAR(phone.EnergyConsumedMah(Seconds(15), Seconds(31.2)), 0.18, 1e-6);
  // Additivity.
  const double total = phone.EnergyConsumedMah(0, Seconds(85));
  const double split = phone.EnergyConsumedMah(0, Seconds(40)) +
                       phone.EnergyConsumedMah(Seconds(40), Seconds(85));
  EXPECT_NEAR(total, split, 1e-9);
}

TEST(PhoneTest, BusyAndBenchmarkingFlags) {
  ManualClock clock;
  Phone phone(HighSpec(), clock);
  EXPECT_FALSE(phone.busy());
  phone.set_busy(true);
  phone.set_benchmarking(true);
  EXPECT_TRUE(phone.busy());
  EXPECT_TRUE(phone.benchmarking());
}

// ---------- fleets ----------

TEST(FleetTest, DefaultClusterMatchesPaper) {
  const auto cluster = MakeDefaultCluster(42);
  EXPECT_EQ(cluster.size(), 30u);  // 10 local + 20 MSP
  std::size_t local_high = 0, local_low = 0, msp_high = 0, msp_low = 0;
  for (const auto& spec : cluster) {
    if (spec.remote_msp) {
      (spec.grade == DeviceGrade::kHigh ? msp_high : msp_low)++;
    } else {
      (spec.grade == DeviceGrade::kHigh ? local_high : local_low)++;
    }
  }
  EXPECT_EQ(local_high, 4u);
  EXPECT_EQ(local_low, 6u);
  EXPECT_EQ(msp_high, 13u);
  EXPECT_EQ(msp_low, 7u);
}

TEST(FleetTest, GradeMemoryClassificationRule) {
  // High grade: >8 GB; Low grade: <8 GB (§VI-A2).
  for (const auto& spec : MakeDefaultCluster(7)) {
    if (spec.grade == DeviceGrade::kHigh) {
      EXPECT_GT(spec.memory_gb, 8.0);
    } else {
      EXPECT_LT(spec.memory_gb, 8.0);
    }
  }
}

TEST(FleetTest, UniqueIdsAndDeterminism) {
  const auto a = MakeDefaultCluster(11);
  const auto b = MakeDefaultCluster(11);
  std::set<std::uint64_t> ids;
  for (std::size_t i = 0; i < a.size(); ++i) {
    ids.insert(a[i].id.value());
    EXPECT_EQ(a[i].seed, b[i].seed);
    EXPECT_EQ(a[i].model, b[i].model);
  }
  EXPECT_EQ(ids.size(), a.size());
}

}  // namespace
}  // namespace simdc::device
