// Unit tests for the discrete-event engine.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/thread_pool.h"
#include "sim/event_loop.h"
#include "sim/lockstep.h"

namespace simdc::sim {
namespace {

TEST(EventLoopTest, RunsEventsInTimeOrder) {
  EventLoop loop;
  std::vector<int> order;
  loop.ScheduleAt(Seconds(3.0), [&] { order.push_back(3); });
  loop.ScheduleAt(Seconds(1.0), [&] { order.push_back(1); });
  loop.ScheduleAt(Seconds(2.0), [&] { order.push_back(2); });
  EXPECT_EQ(loop.Run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(loop.Now(), Seconds(3.0));
}

TEST(EventLoopTest, EqualTimestampsAreFifo) {
  EventLoop loop;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    loop.ScheduleAt(Seconds(1.0), [&order, i] { order.push_back(i); });
  }
  loop.Run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventLoopTest, ClockAdvancesToEventTime) {
  EventLoop loop;
  SimTime observed = -1;
  loop.ScheduleAt(Millis(250), [&] { observed = loop.Now(); });
  loop.Run();
  EXPECT_EQ(observed, Millis(250));
}

TEST(EventLoopTest, PastEventsClampToNow) {
  EventLoop loop;
  loop.ScheduleAt(Seconds(5.0), [] {});
  loop.Run();
  SimTime when = -1;
  loop.ScheduleAt(Seconds(1.0), [&] { when = loop.Now(); });  // in the past
  loop.Run();
  EXPECT_EQ(when, Seconds(5.0));  // clamped, time never goes backward
}

TEST(EventLoopTest, ScheduleAfterIsRelative) {
  EventLoop loop;
  loop.ScheduleAt(Seconds(2.0), [] {});
  loop.Run();
  SimTime when = 0;
  loop.ScheduleAfter(Seconds(3.0), [&] { when = loop.Now(); });
  loop.Run();
  EXPECT_EQ(when, Seconds(5.0));
}

TEST(EventLoopTest, EventsCanScheduleMoreEvents) {
  EventLoop loop;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) loop.ScheduleAfter(Seconds(1.0), recurse);
  };
  loop.ScheduleAt(0, recurse);
  loop.Run();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(loop.Now(), Seconds(4.0));
}

TEST(EventLoopTest, CancelPreventsExecution) {
  EventLoop loop;
  bool fired = false;
  const EventHandle handle = loop.ScheduleAt(Seconds(1.0), [&] { fired = true; });
  EXPECT_TRUE(loop.Cancel(handle));
  loop.Run();
  EXPECT_FALSE(fired);
  EXPECT_TRUE(loop.empty());
}

TEST(EventLoopTest, CancelInvalidHandleFails) {
  EventLoop loop;
  EXPECT_FALSE(loop.Cancel(0));
  EXPECT_FALSE(loop.Cancel(9999));
}

TEST(EventLoopTest, MassCancellationKeepsBookkeepingExact) {
  // Heavy-cancellation path (stall guards, timer stops): cancel half of a
  // large batch and check pending()/processed() stay exact throughout.
  EventLoop loop;
  constexpr std::size_t kEvents = 2000;
  std::size_t fired = 0;
  std::vector<EventHandle> handles;
  handles.reserve(kEvents);
  for (std::size_t i = 0; i < kEvents; ++i) {
    handles.push_back(
        loop.ScheduleAt(static_cast<SimTime>(i), [&fired] { ++fired; }));
  }
  EXPECT_EQ(loop.pending(), kEvents);

  for (std::size_t i = 0; i < kEvents; i += 2) {
    EXPECT_TRUE(loop.Cancel(handles[i]));
    EXPECT_FALSE(loop.Cancel(handles[i]));  // double-cancel is rejected
  }
  EXPECT_EQ(loop.pending(), kEvents / 2);
  EXPECT_FALSE(loop.empty());

  EXPECT_EQ(loop.Run(), kEvents / 2);
  EXPECT_EQ(fired, kEvents / 2);
  EXPECT_EQ(loop.processed(), kEvents / 2);
  EXPECT_EQ(loop.pending(), 0u);
  EXPECT_TRUE(loop.empty());
}

TEST(EventLoopTest, CancelAfterFireFails) {
  EventLoop loop;
  const EventHandle handle = loop.ScheduleAt(Seconds(1.0), [] {});
  loop.Run();
  EXPECT_FALSE(loop.Cancel(handle));
  // A stale cancel must not corrupt bookkeeping for later events.
  loop.ScheduleAt(Seconds(2.0), [] {});
  EXPECT_EQ(loop.pending(), 1u);
  loop.Run();
  EXPECT_EQ(loop.processed(), 2u);
  EXPECT_TRUE(loop.empty());
}

TEST(EventLoopTest, CancelledEventsNeverRunViaRunUntilOrStep) {
  EventLoop loop;
  int fired = 0;
  const EventHandle a = loop.ScheduleAt(Seconds(1.0), [&] { ++fired; });
  loop.ScheduleAt(Seconds(2.0), [&] { ++fired; });
  const EventHandle c = loop.ScheduleAt(Seconds(3.0), [&] { ++fired; });
  EXPECT_TRUE(loop.Cancel(a));
  EXPECT_EQ(loop.RunUntil(Seconds(1.5)), 0u);  // a was tombstoned
  EXPECT_TRUE(loop.Cancel(c));
  EXPECT_TRUE(loop.Step());  // runs b
  EXPECT_FALSE(loop.Step()); // c tombstoned, nothing left
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(loop.processed(), 1u);
  EXPECT_TRUE(loop.empty());
}

TEST(EventLoopTest, RunUntilExecutesOnlyDueEvents) {
  EventLoop loop;
  int count = 0;
  loop.ScheduleAt(Seconds(1.0), [&] { ++count; });
  loop.ScheduleAt(Seconds(2.0), [&] { ++count; });
  loop.ScheduleAt(Seconds(10.0), [&] { ++count; });
  EXPECT_EQ(loop.RunUntil(Seconds(5.0)), 2u);
  EXPECT_EQ(count, 2);
  EXPECT_EQ(loop.Now(), Seconds(5.0));
  EXPECT_EQ(loop.pending(), 1u);
  loop.Run();
  EXPECT_EQ(count, 3);
}

TEST(EventLoopTest, RunUntilAdvancesClockEvenWithoutEvents) {
  EventLoop loop;
  EXPECT_EQ(loop.RunUntil(Seconds(7.0)), 0u);
  EXPECT_EQ(loop.Now(), Seconds(7.0));
}

TEST(EventLoopTest, StepExecutesOne) {
  EventLoop loop;
  int count = 0;
  loop.ScheduleAt(1, [&] { ++count; });
  loop.ScheduleAt(2, [&] { ++count; });
  EXPECT_TRUE(loop.Step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(loop.Step());
  EXPECT_FALSE(loop.Step());
}

TEST(EventLoopTest, ProcessedCountAccumulates) {
  EventLoop loop;
  for (int i = 0; i < 7; ++i) loop.ScheduleAt(i, [] {});
  loop.Run();
  EXPECT_EQ(loop.processed(), 7u);
}

TEST(ScheduleBulkTest, ExecutesInTimeOrderRegardlessOfInsertOrder) {
  EventLoop loop;
  std::vector<int> order;
  std::vector<TimedEvent> events;
  for (int i : {3, 1, 4, 1, 5, 9, 2, 6}) {
    events.push_back({Seconds(i), [&order, i] { order.push_back(i); }});
  }
  const auto handles = loop.ScheduleBulk(std::move(events));
  EXPECT_EQ(handles.size(), 8u);
  EXPECT_EQ(loop.pending(), 8u);
  loop.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 1, 2, 3, 4, 5, 6, 9}));
}

TEST(ScheduleBulkTest, MatchesSequentialScheduleAtExactly) {
  // Bulk insertion must be observationally identical to N ScheduleAt calls:
  // same execution order, including FIFO ties, interleaved with singly
  // scheduled events.
  auto run = [](bool bulk) {
    EventLoop loop;
    std::vector<int> order;
    loop.ScheduleAt(Seconds(2.0), [&order] { order.push_back(-1); });
    std::vector<TimedEvent> events;
    for (int i = 0; i < 50; ++i) {
      const SimTime t = Seconds((i * 7) % 10);  // many ties
      auto fn = [&order, i] { order.push_back(i); };
      if (bulk) {
        events.push_back({t, std::move(fn)});
      } else {
        loop.ScheduleAt(t, std::move(fn));
      }
    }
    if (bulk) loop.ScheduleBulk(std::move(events));
    loop.ScheduleAt(Seconds(5.0), [&order] { order.push_back(-2); });
    loop.Run();
    return order;
  };
  EXPECT_EQ(run(true), run(false));
}

TEST(ScheduleBulkTest, HandlesAreCancellable) {
  EventLoop loop;
  int fired = 0;
  std::vector<TimedEvent> events;
  for (int i = 0; i < 10; ++i) {
    events.push_back({Seconds(1.0 + i), [&fired] { ++fired; }});
  }
  const auto handles = loop.ScheduleBulk(std::move(events));
  for (std::size_t i = 0; i < handles.size(); i += 2) {
    EXPECT_TRUE(loop.Cancel(handles[i]));
  }
  loop.Run();
  EXPECT_EQ(fired, 5);
}

TEST(ScheduleBulkTest, EmptyBulkIsNoop) {
  EventLoop loop;
  EXPECT_TRUE(loop.ScheduleBulk({}).empty());
  EXPECT_TRUE(loop.empty());
}

TEST(ScheduleBulkTest, PastTimesClampToNow) {
  EventLoop loop;
  loop.ScheduleAt(Seconds(5.0), [] {});
  loop.Run();
  SimTime when = -1;
  std::vector<TimedEvent> events;
  events.push_back({Seconds(1.0), [&] { when = loop.Now(); }});
  loop.ScheduleBulk(std::move(events));
  loop.Run();
  EXPECT_EQ(when, Seconds(5.0));
}

TEST(EventLoopTest, IsPendingTracksLifecycle) {
  EventLoop loop;
  const EventHandle a = loop.ScheduleAt(Seconds(1.0), [] {});
  const EventHandle b = loop.ScheduleAt(Seconds(2.0), [] {});
  EXPECT_TRUE(loop.IsPending(a));
  EXPECT_TRUE(loop.IsPending(b));
  EXPECT_TRUE(loop.Cancel(a));
  EXPECT_FALSE(loop.IsPending(a));
  loop.Run();
  EXPECT_FALSE(loop.IsPending(b));  // fired
  EXPECT_FALSE(loop.IsPending(9999));
}

TEST(PeriodicTimerTest, TicksAtPeriod) {
  EventLoop loop;
  std::vector<SimTime> ticks;
  PeriodicTimer timer(loop, Seconds(2.0),
                      [&](SimTime t) { ticks.push_back(t); },
                      /*max_ticks=*/4);
  timer.Start();
  loop.Run();
  ASSERT_EQ(ticks.size(), 4u);
  EXPECT_EQ(ticks[0], Seconds(2.0));
  EXPECT_EQ(ticks[3], Seconds(8.0));
  EXPECT_FALSE(timer.running());
}

TEST(PeriodicTimerTest, StopHaltsFutureTicks) {
  EventLoop loop;
  int ticks = 0;
  PeriodicTimer timer(loop, Seconds(1.0), [&](SimTime) { ++ticks; });
  timer.Start();
  loop.RunUntil(Seconds(3.5));
  timer.Stop();
  loop.Run();
  EXPECT_EQ(ticks, 3);
}

TEST(PeriodicTimerTest, StopFromWithinCallback) {
  EventLoop loop;
  int ticks = 0;
  PeriodicTimer* self = nullptr;
  PeriodicTimer timer(loop, Seconds(1.0), [&](SimTime) {
    if (++ticks == 2) self->Stop();
  });
  self = &timer;
  timer.Start();
  loop.Run();
  EXPECT_EQ(ticks, 2);
}

TEST(PeriodicTimerTest, UnboundedRunsUntilStopped) {
  EventLoop loop;
  int ticks = 0;
  PeriodicTimer timer(loop, Seconds(1.0), [&](SimTime) { ++ticks; });
  timer.Start();
  loop.RunUntil(Seconds(100.0));
  EXPECT_EQ(ticks, 100);
  timer.Stop();
  loop.Run();
}

// ---------- NextEventTime ----------

TEST(EventLoopTest, NextEventTimeSkipsCancelled) {
  EventLoop loop;
  const auto early = loop.ScheduleAt(Seconds(1.0), [] {});
  loop.ScheduleAt(Seconds(2.0), [] {});
  EXPECT_EQ(loop.NextEventTime(), Seconds(1.0));
  ASSERT_TRUE(loop.Cancel(early));
  EXPECT_EQ(loop.NextEventTime(), Seconds(2.0));
  loop.Run();
  EXPECT_EQ(loop.NextEventTime(), EventLoop::kNoEvent);
}

TEST(EventLoopTest, NextEventTimePruningKeepsCancelExact) {
  EventLoop loop;
  const auto a = loop.ScheduleAt(Seconds(1.0), [] {});
  loop.ScheduleAt(Seconds(5.0), [] {});
  ASSERT_TRUE(loop.Cancel(a));
  EXPECT_EQ(loop.NextEventTime(), Seconds(5.0));  // prunes a's tombstone
  EXPECT_FALSE(loop.Cancel(a));                   // still reports cancelled
  EXPECT_EQ(loop.pending(), 1u);
  EXPECT_EQ(loop.Run(), 1u);
}

// ---------- LockstepGroup ----------

namespace {

/// Captures (time, shard, tag) per executed event plus a per-shard buffer
/// the drain hook merges in (time, shard) order — the same discipline the
/// flow::ShardMerger applies to message batches.
struct LockstepHarness {
  EventLoop cloud;
  std::vector<std::unique_ptr<EventLoop>> shards;
  std::vector<std::vector<std::pair<SimTime, int>>> buffered;
  std::vector<std::pair<SimTime, std::string>> merged;

  explicit LockstepHarness(std::size_t n) : buffered(n) {
    for (std::size_t s = 0; s < n; ++s) {
      shards.push_back(std::make_unique<EventLoop>());
    }
  }

  std::vector<EventLoop*> ShardPtrs() {
    std::vector<EventLoop*> out;
    for (auto& shard : shards) out.push_back(shard.get());
    return out;
  }

  SimTime NextPending() const {
    SimTime t = EventLoop::kNoEvent;
    for (const auto& queue : buffered) {
      if (!queue.empty()) t = std::min(t, queue.front().first);
    }
    return t;
  }

  void Drain(SimTime horizon) {
    for (;;) {
      SimTime best = EventLoop::kNoEvent;
      std::size_t shard = 0;
      for (std::size_t s = 0; s < buffered.size(); ++s) {
        if (!buffered[s].empty() && buffered[s].front().first < best) {
          best = buffered[s].front().first;
          shard = s;
        }
      }
      if (best == EventLoop::kNoEvent || best > horizon) return;
      merged.emplace_back(best, "shard" + std::to_string(shard) + ":" +
                                    std::to_string(buffered[shard].front().second));
      buffered[shard].erase(buffered[shard].begin());
    }
  }

  LockstepGroup::Hooks Hooks() {
    return {.next_pending = [this] { return NextPending(); },
            .drain = [this](SimTime h) { Drain(h); }};
  }
};

}  // namespace

TEST(LockstepGroupTest, MergesShardProductsInTimeThenShardOrder) {
  LockstepHarness h(3);
  // Shard events at interleaved times, one colliding timestamp across all
  // three shards: the merge must order the collision by shard index.
  for (int s = 0; s < 3; ++s) {
    h.shards[static_cast<std::size_t>(s)]->ScheduleAt(
        Seconds(5.0), [&h, s] {
          h.buffered[static_cast<std::size_t>(s)].emplace_back(Seconds(5.0), s);
        });
    h.shards[static_cast<std::size_t>(s)]->ScheduleAt(
        Seconds(1.0 + s), [&h, s] {
          h.buffered[static_cast<std::size_t>(s)].emplace_back(
              Seconds(1.0 + s), 10 + s);
        });
  }
  LockstepGroup group(h.cloud, h.ShardPtrs());
  group.Run(h.Hooks(), /*feedback_guard=*/Seconds(100.0));
  std::vector<std::string> got;
  for (const auto& [time, tag] : h.merged) got.push_back(tag);
  EXPECT_EQ(got, (std::vector<std::string>{"shard0:10", "shard1:11",
                                           "shard2:12", "shard0:0", "shard1:1",
                                           "shard2:2"}));
}

TEST(LockstepGroupTest, CloudEventsRunBeforeShardWindow) {
  // A cloud event between two shard events must observe exactly the
  // products buffered before its timestamp — the horizon may not let a
  // shard run past the cloud plane.
  LockstepHarness h(2);
  std::size_t seen_at_cloud = 0;
  h.shards[0]->ScheduleAt(Seconds(1.0), [&h] {
    h.buffered[0].emplace_back(Seconds(1.0), 1);
  });
  h.shards[1]->ScheduleAt(Seconds(30.0), [&h] {
    h.buffered[1].emplace_back(Seconds(30.0), 2);
  });
  h.cloud.ScheduleAt(Seconds(20.0), [&] { seen_at_cloud = h.merged.size(); });
  LockstepGroup group(h.cloud, h.ShardPtrs());
  // Large guard: without the cloud-bound on the horizon shard 1 would run
  // (and merge) its t=30 event before the t=20 cloud event.
  group.Run(h.Hooks(), Seconds(1000.0));
  EXPECT_EQ(seen_at_cloud, 1u);
  EXPECT_EQ(h.merged.size(), 2u);
}

TEST(LockstepGroupTest, DrainFeedbackSchedulesWithinGuard) {
  // Delivery feedback (drain scheduling new shard events at item time +
  // guard) must always land at-or-after every shard clock.
  LockstepHarness h(2);
  const SimDuration guard = Seconds(2.0);
  std::vector<SimTime> fired;
  h.shards[0]->ScheduleAt(Seconds(1.0), [&h] {
    h.buffered[0].emplace_back(Seconds(1.0), 1);
  });
  // Dense far-side events keep shard 1 busy across the guard windows.
  for (int i = 0; i < 8; ++i) {
    h.shards[1]->ScheduleAt(Seconds(0.5 + i), [&fired, &h] {
      fired.push_back(h.shards[1]->Now());
    });
  }
  bool scheduled_feedback = false;
  auto hooks = h.Hooks();
  hooks.drain = [&](SimTime horizon) {
    const bool had = h.NextPending() <= horizon;
    h.Drain(horizon);
    if (had && !scheduled_feedback) {
      scheduled_feedback = true;
      // Feedback exactly at the guard bound: legal, must not clamp.
      const SimTime when = Seconds(1.0) + guard;
      h.shards[0]->ScheduleAt(when, [&fired, &h] {
        fired.push_back(h.shards[0]->Now());
      });
    }
  };
  LockstepGroup group(h.cloud, h.ShardPtrs());
  group.Run(hooks, guard);
  ASSERT_TRUE(scheduled_feedback);
  // The feedback event ran at its exact timestamp (no clamping forward).
  EXPECT_NE(std::find(fired.begin(), fired.end(), Seconds(3.0)), fired.end());
}

TEST(LockstepGroupTest, PoolAndSequentialAdvanceAreIdentical) {
  auto run = [](ThreadPool* pool) {
    LockstepHarness h(4);
    for (std::size_t s = 0; s < 4; ++s) {
      for (int i = 0; i < 50; ++i) {
        const SimTime when = Seconds(0.1 * static_cast<double>(i) +
                                     0.01 * static_cast<double>(s));
        h.shards[s]->ScheduleAt(when, [&h, s, when, i] {
          h.buffered[s].emplace_back(when, i);
        });
      }
    }
    LockstepGroup group(h.cloud, h.ShardPtrs(), pool);
    group.Run(h.Hooks(), Seconds(1.0));
    return h.merged;
  };
  ThreadPool pool(4);
  const auto sequential = run(nullptr);
  const auto parallel = run(&pool);
  ASSERT_EQ(sequential.size(), 200u);
  EXPECT_EQ(sequential, parallel);
}

TEST(LockstepGroupTest, RejectsBadConstruction) {
  EventLoop cloud;
  EXPECT_THROW(LockstepGroup(cloud, {nullptr}), std::invalid_argument);
  EXPECT_THROW(LockstepGroup(cloud, {&cloud}), std::invalid_argument);
}

}  // namespace
}  // namespace simdc::sim
