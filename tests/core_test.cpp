// Tests for the FL engine and the Platform facade.
#include <gtest/gtest.h>

#include <set>

#include "core/fl_engine.h"
#include "core/platform.h"
#include "data/synth_avazu.h"
#include "flow/rate_functions.h"

namespace simdc::core {
namespace {

data::FederatedDataset SmallDataset(
    data::LabelDistribution distribution = data::LabelDistribution::kNatural,
    std::size_t devices = 100) {
  data::SynthConfig config;
  config.num_devices = devices;
  config.records_per_device_mean = 15;
  config.num_test_devices = 15;
  config.hash_dim = 1u << 12;
  config.distribution = distribution;
  config.seed = 21;
  return data::GenerateSyntheticAvazu(config);
}

FlExperimentConfig BaseConfig() {
  FlExperimentConfig config;
  config.rounds = 3;
  config.train.learning_rate = 0.05;
  config.train.epochs = 3;
  config.trigger = cloud::AggregationTrigger::kScheduled;
  config.schedule_period = Seconds(30.0);
  config.compute_seconds = 2.0;
  config.seed = 5;
  return config;
}

// ---------- FlEngine ----------

TEST(FlEngineTest, CompletesConfiguredRounds) {
  sim::EventLoop loop;
  const auto dataset = SmallDataset();
  FlEngine engine(loop, dataset, BaseConfig());
  const auto result = engine.Run();
  ASSERT_EQ(result.rounds.size(), 3u);
  EXPECT_EQ(result.rounds[0].round, 1u);
  EXPECT_EQ(result.rounds[2].round, 3u);
  EXPECT_EQ(result.model_dim, dataset.hash_dim);
  // Every device reported each round (no dropout, schedule slower than
  // slowest device).
  EXPECT_EQ(result.rounds[0].clients, dataset.devices.size());
  EXPECT_EQ(result.messages_emitted, 3 * dataset.devices.size());
  EXPECT_EQ(result.messages_dropped, 0u);
}

TEST(FlEngineTest, LearningImprovesLoss) {
  sim::EventLoop loop;
  const auto dataset = SmallDataset(data::LabelDistribution::kNatural, 150);
  auto config = BaseConfig();
  config.rounds = 6;
  FlEngine engine(loop, dataset, config);
  const auto result = engine.Run();
  ASSERT_EQ(result.rounds.size(), 6u);
  // Test log-loss after 6 rounds beats the untrained ln(2) baseline.
  EXPECT_LT(result.rounds.back().test_logloss, 0.69);
  EXPECT_LT(result.rounds.back().test_logloss,
            result.rounds.front().test_logloss + 1e-6);
}

TEST(FlEngineTest, DeterministicAcrossRuns) {
  auto run = [] {
    sim::EventLoop loop;
    const auto dataset = SmallDataset();
    FlEngine engine(loop, dataset, BaseConfig());
    return engine.Run();
  };
  const auto a = run();
  const auto b = run();
  ASSERT_EQ(a.rounds.size(), b.rounds.size());
  for (std::size_t i = 0; i < a.rounds.size(); ++i) {
    EXPECT_EQ(a.rounds[i].time, b.rounds[i].time);
    EXPECT_DOUBLE_EQ(a.rounds[i].test_accuracy, b.rounds[i].test_accuracy);
  }
  EXPECT_EQ(a.final_weights, b.final_weights);
}

TEST(FlEngineTest, SampleThresholdTriggerCountsSamples) {
  sim::EventLoop loop;
  const auto dataset = SmallDataset();
  auto config = BaseConfig();
  config.trigger = cloud::AggregationTrigger::kSampleThreshold;
  config.sample_threshold = dataset.TotalExamples() / 2;
  FlEngine engine(loop, dataset, config);
  const auto result = engine.Run();
  ASSERT_GE(result.rounds.size(), 1u);
  for (const auto& round : result.rounds) {
    if (round.clients > 0) {
      EXPECT_GE(round.samples, config.sample_threshold);
    }
  }
}

TEST(FlEngineTest, TimeWindowStopsEarly) {
  sim::EventLoop loop;
  const auto dataset = SmallDataset();
  auto config = BaseConfig();
  config.rounds = 1000;
  config.time_window = Minutes(2.0);
  config.schedule_period = Seconds(30.0);
  FlEngine engine(loop, dataset, config);
  const auto result = engine.Run();
  // ~4 aggregations fit into 2 minutes at a 30 s period.
  EXPECT_GE(result.rounds.size(), 2u);
  EXPECT_LE(result.rounds.size(), 6u);
}

TEST(FlEngineTest, DropoutReducesClients) {
  sim::EventLoop loop;
  const auto dataset = SmallDataset();
  auto config = BaseConfig();
  config.strategy = flow::RealtimeAccumulated{{1}, 0.7};
  FlEngine engine(loop, dataset, config);
  const auto result = engine.Run();
  ASSERT_FALSE(result.rounds.empty());
  EXPECT_GT(result.messages_dropped, 0u);
  for (const auto& round : result.rounds) {
    EXPECT_LT(round.clients, dataset.devices.size());
  }
}

TEST(FlEngineTest, FullDropoutSurvivesViaStallGuard) {
  sim::EventLoop loop;
  const auto dataset = SmallDataset(data::LabelDistribution::kNatural, 30);
  auto config = BaseConfig();
  config.rounds = 2;
  config.trigger = cloud::AggregationTrigger::kSampleThreshold;
  config.sample_threshold = 1000000;  // unreachable
  config.strategy = flow::RealtimeAccumulated{{1}, 1.0};  // drop everything
  config.stall_timeout = Seconds(30.0);
  FlEngine engine(loop, dataset, config);
  const auto result = engine.Run();
  // Rounds recorded as empty instead of hanging.
  ASSERT_EQ(result.rounds.size(), 2u);
  EXPECT_EQ(result.rounds[0].clients, 0u);
}

TEST(FlEngineTest, PartialParticipation) {
  sim::EventLoop loop;
  const auto dataset = SmallDataset();
  auto config = BaseConfig();
  config.participants_per_round = 20;
  FlEngine engine(loop, dataset, config);
  const auto result = engine.Run();
  ASSERT_FALSE(result.rounds.empty());
  for (const auto& round : result.rounds) {
    EXPECT_LE(round.clients, 20u);
    EXPECT_GT(round.clients, 0u);
  }
}

TEST(FlEngineTest, CustomDelayFnShapesRoundDuration) {
  sim::EventLoop loop;
  const auto dataset = SmallDataset();
  auto config = BaseConfig();
  config.trigger = cloud::AggregationTrigger::kSampleThreshold;
  config.sample_threshold = dataset.TotalExamples() - 1;
  config.rounds = 2;
  config.delay_fn = [](const data::DeviceData&, std::size_t, Rng& rng) {
    return Seconds(rng.Uniform(100.0, 200.0));
  };
  FlEngine engine(loop, dataset, config);
  const auto result = engine.Run();
  ASSERT_GE(result.rounds.size(), 1u);
  // Threshold needs nearly all devices → round closes only after the slow
  // tail arrived (≥100 s + compute).
  EXPECT_GE(result.rounds[0].time, Seconds(100.0));
}

TEST(FlEngineTest, HybridMixMatchesPureWithinHalfPercent) {
  // Core premise of Fig. 6: the operator mix induced by the allocation
  // ratio must not change accuracy materially.
  const auto dataset = SmallDataset(data::LabelDistribution::kNatural, 120);
  auto run_with_fraction = [&](double fraction) {
    sim::EventLoop loop;
    auto config = BaseConfig();
    config.rounds = 4;
    config.logical_fraction = fraction;
    FlEngine engine(loop, dataset, config);
    return engine.Run().rounds.back().test_accuracy;
  };
  const double pure_logical = run_with_fraction(1.0);
  for (const double fraction : {0.75, 0.5, 0.25, 0.0}) {
    EXPECT_NEAR(run_with_fraction(fraction), pure_logical, 0.005)
        << "fraction=" << fraction;
  }
}

// ---------- Platform ----------

TEST(PlatformTest, AssignsUniqueTaskIds) {
  Platform platform;
  const TaskId a = platform.NextTaskId();
  const TaskId b = platform.NextTaskId();
  EXPECT_NE(a, b);
}

sched::TaskSpec SimpleTask(std::size_t devices, int priority = 0) {
  sched::TaskSpec task;
  task.priority = priority;
  task.rounds = 1;
  sched::DeviceRequirement requirement;
  requirement.grade = device::DeviceGrade::kHigh;
  requirement.num_devices = devices;
  requirement.benchmarking_phones = 1;
  requirement.logical_bundles = 80;
  requirement.phones = 3;
  task.requirements.push_back(requirement);
  return task;
}

TEST(PlatformTest, ExecutesQueuedTaskEndToEnd) {
  Platform platform;
  ASSERT_TRUE(platform.SubmitTask(SimpleTask(40)).ok());
  const auto reports = platform.RunQueuedTasks();
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_TRUE(reports[0].ok);
  EXPECT_GT(reports[0].finished, reports[0].started);
  EXPECT_EQ(reports[0].allocation.logical_devices.size(), 1u);
  // Resources fully released afterwards.
  const auto snapshot = platform.resources().Snapshot();
  EXPECT_EQ(snapshot.logical_bundles_free, snapshot.logical_bundles_total);
  EXPECT_EQ(snapshot.phones_free[0], snapshot.phones_total[0]);
}

TEST(PlatformTest, BenchmarkingSamplesCollected) {
  Platform platform;
  auto task = SimpleTask(30);
  ASSERT_TRUE(platform.SubmitTask(task).ok());
  const auto reports = platform.RunQueuedTasks();
  ASSERT_EQ(reports.size(), 1u);
  ASSERT_EQ(reports[0].benchmarking.size(), 1u);
  ASSERT_EQ(reports[0].benchmarking[0].size(), 1u);
  const auto samples = platform.metrics().QueryTask(reports[0].id);
  EXPECT_FALSE(samples.empty());
}

TEST(PlatformTest, PriorityOrderUnderContention) {
  Platform platform;
  // Each task wants 3 + 1 High phones; 17 exist, so ~4 fit concurrently;
  // submit 6 tasks with distinct priorities and confirm the two overflow
  // tasks ran in priority order (they appear later in the reports).
  std::vector<TaskId> ids;
  for (int p = 0; p < 6; ++p) {
    auto task = SimpleTask(30, /*priority=*/p);
    task.id = platform.NextTaskId();
    ids.push_back(task.id);
    ASSERT_TRUE(platform.SubmitTask(task).ok());
  }
  const auto reports = platform.RunQueuedTasks();
  ASSERT_EQ(reports.size(), 6u);
  for (const auto& report : reports) EXPECT_TRUE(report.ok);
  // All tasks eventually completed exactly once.
  std::set<std::uint64_t> seen;
  for (const auto& report : reports) seen.insert(report.id.value());
  EXPECT_EQ(seen.size(), 6u);
}

TEST(PlatformTest, FixedRatioExecution) {
  Platform platform;
  ASSERT_TRUE(platform.SubmitTask(SimpleTask(40)).ok());
  ExecOptions options;
  options.use_optimizer = false;
  options.fixed_logical_ratio = 1.0;
  const auto reports = platform.RunQueuedTasks(options);
  ASSERT_EQ(reports.size(), 1u);
  // All placeable devices went logical.
  EXPECT_EQ(reports[0].allocation.logical_devices[0], 39u);
}

TEST(PlatformTest, OptimizerNotSlowerThanFixedRatios) {
  // Fig. 7 end-to-end: optimized allocation completes no later than the
  // five fixed types on the same platform.
  auto run = [](bool optimizer, double ratio) {
    Platform platform;
    auto task = SimpleTask(60);
    EXPECT_TRUE(platform.SubmitTask(task).ok());
    ExecOptions options;
    options.use_optimizer = optimizer;
    options.fixed_logical_ratio = ratio;
    options.aggregation_wait_s = 0.0;
    const auto reports = platform.RunQueuedTasks(options);
    EXPECT_EQ(reports.size(), 1u);
    return reports[0].elapsed_seconds();
  };
  const double optimized = run(true, 0.0);
  for (const double ratio : {1.0, 0.75, 0.5, 0.25, 0.0}) {
    // Allow the constant closure overhead (15 s) shared by both paths.
    EXPECT_LE(optimized, run(false, ratio) + 1e-6) << "ratio=" << ratio;
  }
}

TEST(PlatformTest, RunFlExperimentThroughFacade) {
  Platform platform;
  const auto dataset = SmallDataset(data::LabelDistribution::kNatural, 60);
  auto config = BaseConfig();
  config.rounds = 2;
  const auto result = platform.RunFlExperiment(dataset, config);
  EXPECT_EQ(result.rounds.size(), 2u);
}

}  // namespace
}  // namespace simdc::core
