// Durable crash-recovery suite: the deterministic simulation makes
// recovery a *bit-identity* property. A run killed at any injected I/O
// fault — torn append, torn checkpoint temp file, crash around either
// rename, fsync EIO, short read — must, after RestoreFromRecovery, finish
// with FlRunResult, aggregation counters and merged dispatch stats
// byte-for-byte equal to an uninterrupted run, across shard widths and
// payload codecs. The suite also unit-tests the persist primitives: CRC
// framing, log replay's valid-prefix truncation at every byte offset of
// the final record, checkpoint publication precedence (bin > tmp > prev),
// and the fault injector's seed-determinism.
#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <string>
#include <utility>
#include <vector>

#include "core/fl_engine.h"
#include "data/synth_avazu.h"
#include "persist/blob_log.h"
#include "persist/checkpoint.h"
#include "persist/durable_store.h"
#include "persist/file_io.h"
#include "persist/wire.h"
#include "sim/event_loop.h"

namespace simdc::core {
namespace {

using persist::BlobLogRecord;
using persist::BlobLogWriter;
using persist::DurabilityMode;
using persist::FaultInjector;
using persist::FaultPlan;
using persist::RealFileIo;
using persist::SimulatedCrash;

/// Fresh per-test scratch directory (wiped on entry, left behind for
/// post-mortem inspection on failure).
std::string FreshDir(const std::string& tag) {
  const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
  std::string dir = ::testing::TempDir() + "simdc_durable/" +
                    std::string(info->test_suite_name()) + "." + info->name();
  if (!tag.empty()) dir += "." + tag;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

data::FederatedDataset SmallDataset() {
  data::SynthConfig config;
  config.num_devices = 24;
  config.records_per_device_mean = 10;
  config.num_test_devices = 6;
  config.hash_dim = 1u << 10;
  config.seed = 21;
  return data::GenerateSyntheticAvazu(config);
}

FlExperimentConfig BaseConfig() {
  FlExperimentConfig config;
  config.rounds = 3;
  config.train.learning_rate = 0.05;
  config.train.epochs = 1;
  config.logical_fraction = 0.5;
  config.trigger = cloud::AggregationTrigger::kScheduled;
  config.schedule_period = Seconds(60.0);
  config.compute_seconds = 2.0;
  // Bounded deterministic upload delays strictly inside the period: every
  // round boundary is quiescent (nothing in flight when the schedule
  // fires) and no upload ever ties with the aggregation tick — the regime
  // in which checkpoint resume is bit-identical.
  config.delay_fn = [](const data::DeviceData& device, std::size_t round,
                       Rng&) {
    return Seconds(
        1.0 + static_cast<double>((device.device.value() * 7 + round * 3) % 40));
  };
  // Reclaim exercises Delete records in the log and the pending-delete
  // list in checkpoints.
  config.reclaim_payload_blobs = true;
  config.seed = 11;
  return config;
}

/// Everything a run reports that recovery must reproduce bit-for-bit.
struct RunOutcome {
  FlRunResult result;
  flow::DispatchStats stats;
  std::size_t messages_received = 0;
  std::size_t decode_failures = 0;
  std::size_t stale_rejections = 0;
  std::size_t store_errors = 0;
  std::size_t storage_bytes_written = 0;
};

RunOutcome CollectOutcome(FlEngine& engine, FlRunResult result) {
  RunOutcome out;
  out.result = std::move(result);
  out.stats = engine.dispatch_stats();
  out.messages_received = engine.aggregation().messages_received();
  out.decode_failures = engine.aggregation().decode_failures();
  out.stale_rejections = engine.aggregation().stale_rejections();
  out.store_errors = engine.aggregation().store_errors();
  out.storage_bytes_written = engine.storage().bytes_written();
  return out;
}

RunOutcome RunToCompletion(const data::FederatedDataset& dataset,
                           FlExperimentConfig config) {
  sim::EventLoop loop;
  FlEngine engine(loop, dataset, std::move(config));
  return CollectOutcome(engine, engine.Run());
}

/// Runs until the fault plan kills the process-in-miniature. Returns true
/// when the SimulatedCrash fired (some plans target I/O that a short run
/// never reaches; callers assert on the return).
bool CrashRun(const data::FederatedDataset& dataset,
              FlExperimentConfig config) {
  try {
    sim::EventLoop loop;
    FlEngine engine(loop, dataset, std::move(config));
    (void)engine.Run();
  } catch (const SimulatedCrash&) {
    return true;
  }
  return false;
}

/// The documented recovery protocol: try RestoreFromRecovery; when no
/// valid checkpoint survived the crash (NotFound), start over fresh on a
/// new engine — the log+checkpoint guarantee is "resume from the latest
/// durable boundary", and before the first checkpoint that boundary is
/// the empty run.
RunOutcome RecoverOrRerun(const data::FederatedDataset& dataset,
                          const FlExperimentConfig& config) {
  {
    sim::EventLoop loop;
    FlEngine engine(loop, dataset, config);
    const Status restored = engine.RestoreFromRecovery();
    if (restored.ok()) {
      return CollectOutcome(engine, engine.Run());
    }
    EXPECT_EQ(restored.error().code(), ErrorCode::kNotFound)
        << restored.ToString();
  }
  sim::EventLoop loop;
  FlEngine engine(loop, dataset, config);
  return CollectOutcome(engine, engine.Run());
}

void ExpectStatsIdentical(const flow::DispatchStats& a,
                          const flow::DispatchStats& b,
                          const std::string& label) {
  EXPECT_EQ(a.received, b.received) << label;
  EXPECT_EQ(a.sent, b.sent) << label;
  EXPECT_EQ(a.dropped, b.dropped) << label;
  EXPECT_EQ(a.batches_truncated, b.batches_truncated) << label;
  ASSERT_EQ(a.batches.size(), b.batches.size()) << label;
  for (std::size_t i = 0; i < a.batches.size(); ++i) {
    EXPECT_EQ(a.batches[i], b.batches[i]) << label << " batch " << i;
    EXPECT_EQ(a.batch_keys[i], b.batch_keys[i]) << label << " batch " << i;
  }
}

void ExpectOutcomeIdentical(const RunOutcome& a, const RunOutcome& b,
                            const std::string& label) {
  ASSERT_EQ(a.result.rounds.size(), b.result.rounds.size()) << label;
  for (std::size_t i = 0; i < a.result.rounds.size(); ++i) {
    const RoundMetrics& x = a.result.rounds[i];
    const RoundMetrics& y = b.result.rounds[i];
    EXPECT_EQ(x.round, y.round) << label << " round " << i;
    EXPECT_EQ(x.time, y.time) << label << " round " << i;
    EXPECT_EQ(x.clients, y.clients) << label << " round " << i;
    EXPECT_EQ(x.samples, y.samples) << label << " round " << i;
    EXPECT_EQ(x.test_accuracy, y.test_accuracy) << label << " round " << i;
    EXPECT_EQ(x.test_logloss, y.test_logloss) << label << " round " << i;
    EXPECT_EQ(x.train_accuracy, y.train_accuracy) << label << " round " << i;
    EXPECT_EQ(x.train_logloss, y.train_logloss) << label << " round " << i;
  }
  EXPECT_EQ(a.result.messages_emitted, b.result.messages_emitted) << label;
  EXPECT_EQ(a.result.messages_dropped, b.result.messages_dropped) << label;
  EXPECT_EQ(a.result.model_dim, b.result.model_dim) << label;
  ASSERT_EQ(a.result.final_weights.size(), b.result.final_weights.size())
      << label;
  EXPECT_EQ(0, std::memcmp(a.result.final_weights.data(),
                           b.result.final_weights.data(),
                           a.result.final_weights.size() * sizeof(float)))
      << label;
  EXPECT_EQ(a.result.final_bias, b.result.final_bias) << label;
  EXPECT_EQ(a.messages_received, b.messages_received) << label;
  EXPECT_EQ(a.decode_failures, b.decode_failures) << label;
  EXPECT_EQ(a.stale_rejections, b.stale_rejections) << label;
  EXPECT_EQ(a.store_errors, b.store_errors) << label;
  EXPECT_EQ(a.storage_bytes_written, b.storage_bytes_written) << label;
  ExpectStatsIdentical(a.stats, b.stats, label);
}

// ---------------------------------------------------------------------------
// Persist primitives.

TEST(WireTest, Crc32MatchesKnownVector) {
  // The canonical IEEE 802.3 check value for "123456789".
  const char* digits = "123456789";
  const auto* bytes = reinterpret_cast<const std::byte*>(digits);
  EXPECT_EQ(persist::Crc32(std::span(bytes, 9)), 0xCBF43926u);
}

TEST(WireTest, ByteReaderRefusesShortBuffers) {
  std::vector<std::byte> buffer(3);
  persist::ByteReader reader(buffer);
  (void)reader.Get<std::uint32_t>();  // 4 bytes from a 3-byte buffer
  EXPECT_FALSE(reader.ok());
}

TEST(BlobLogTest, RoundTripsPutsAndDeletes) {
  const std::string dir = FreshDir("");
  const std::string path = persist::BlobLogPath(dir);
  std::vector<std::byte> payload = {std::byte{1}, std::byte{2}, std::byte{3}};

  BlobLogWriter writer(RealFileIo::Instance(), path);
  writer.AppendPut(BlobId(7), payload);
  writer.AppendDelete(BlobId(7));
  writer.AppendPut(BlobId(8), {});
  ASSERT_TRUE(writer.Commit().ok());
  EXPECT_FALSE(writer.HasPending());
  EXPECT_EQ(writer.commits(), 1u);

  std::vector<std::pair<persist::BlobRecordKind, std::uint64_t>> seen;
  auto replay = persist::ReplayBlobLog(
      RealFileIo::Instance(), path, [&](const BlobLogRecord& record) {
        seen.emplace_back(record.kind, record.id.value());
        if (record.id == BlobId(7) &&
            record.kind == persist::BlobRecordKind::kPut) {
          ASSERT_EQ(record.bytes.size(), payload.size());
          EXPECT_EQ(0, std::memcmp(record.bytes.data(), payload.data(),
                                   payload.size()));
        }
      });
  ASSERT_TRUE(replay.ok());
  EXPECT_EQ(replay->records, 3u);
  EXPECT_FALSE(replay->truncated_tail);
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_TRUE(seen[0].first == persist::BlobRecordKind::kPut &&
              seen[0].second == 7u);
  EXPECT_TRUE(seen[1].first == persist::BlobRecordKind::kDelete &&
              seen[1].second == 7u);
  EXPECT_TRUE(seen[2].first == persist::BlobRecordKind::kPut &&
              seen[2].second == 8u);
}

TEST(BlobLogTest, MissingFileReplaysEmpty) {
  const std::string dir = FreshDir("");
  auto replay = persist::ReplayBlobLog(RealFileIo::Instance(),
                                       persist::BlobLogPath(dir),
                                       [](const BlobLogRecord&) { FAIL(); });
  ASSERT_TRUE(replay.ok());
  EXPECT_EQ(replay->records, 0u);
  EXPECT_FALSE(replay->truncated_tail);
}

TEST(BlobLogTest, TruncationAtEveryByteYieldsValidPrefix) {
  // Satellite: truncate the log at EVERY byte offset of the final record
  // and prove replay always lands on the full two-record prefix — never a
  // crash, never a partial third record.
  const std::string dir = FreshDir("");
  const std::string path = persist::BlobLogPath(dir);
  RealFileIo& io = RealFileIo::Instance();

  BlobLogWriter writer(io, path);
  writer.AppendPut(BlobId(1), std::vector<std::byte>(40, std::byte{0xAA}));
  writer.AppendPut(BlobId(2), std::vector<std::byte>(17, std::byte{0xBB}));
  ASSERT_TRUE(writer.Commit().ok());
  const std::uint64_t prefix_end = writer.durable_size();
  writer.AppendPut(BlobId(3), std::vector<std::byte>(64, std::byte{0xCC}));
  ASSERT_TRUE(writer.Commit().ok());
  const std::uint64_t full_end = writer.durable_size();
  ASSERT_GT(full_end, prefix_end);

  auto original = io.ReadFile(path);
  ASSERT_TRUE(original.ok());
  for (std::uint64_t cut = prefix_end; cut < full_end; ++cut) {
    ASSERT_TRUE(io.WriteFile(path, std::span(original->data(),
                                             static_cast<std::size_t>(cut)))
                    .ok());
    std::uint64_t records = 0;
    auto replay = persist::ReplayBlobLog(
        io, path, [&](const BlobLogRecord&) { ++records; });
    ASSERT_TRUE(replay.ok()) << "cut=" << cut;
    EXPECT_EQ(records, 2u) << "cut=" << cut;
    EXPECT_EQ(replay->valid_bytes, prefix_end) << "cut=" << cut;
    EXPECT_EQ(replay->truncated_tail, cut != prefix_end) << "cut=" << cut;
  }
}

TEST(BlobLogTest, CorruptRecordTruncatesFromThatPoint) {
  const std::string dir = FreshDir("");
  const std::string path = persist::BlobLogPath(dir);
  RealFileIo& io = RealFileIo::Instance();

  BlobLogWriter writer(io, path);
  writer.AppendPut(BlobId(1), std::vector<std::byte>(16, std::byte{0x11}));
  ASSERT_TRUE(writer.Commit().ok());
  const std::uint64_t prefix_end = writer.durable_size();
  writer.AppendPut(BlobId(2), std::vector<std::byte>(16, std::byte{0x22}));
  ASSERT_TRUE(writer.Commit().ok());

  // Flip one payload bit of the second record.
  auto bytes = io.ReadFile(path);
  ASSERT_TRUE(bytes.ok());
  (*bytes)[static_cast<std::size_t>(prefix_end) + 12] ^= std::byte{0x80};
  ASSERT_TRUE(io.WriteFile(path, *bytes).ok());

  std::uint64_t records = 0;
  auto replay =
      persist::ReplayBlobLog(io, path, [&](const BlobLogRecord&) { ++records; });
  ASSERT_TRUE(replay.ok());
  EXPECT_EQ(records, 1u);
  EXPECT_EQ(replay->valid_bytes, prefix_end);
  EXPECT_TRUE(replay->truncated_tail);
}

persist::CheckpointState SampleState() {
  persist::CheckpointState state;
  state.time = Seconds(120.0);
  state.resume_t0 = Seconds(120.0);
  state.next_round = 2;
  state.quiescent = true;
  state.next_message_id = 49;
  state.next_blob_id = 51;
  state.rounds_started = 2;
  state.last_recorded_round = 2;
  state.messages_emitted = 48;
  state.storage_bytes_written = 4096;
  state.storage_bytes_read = 2048;
  state.pending_delete_blobs = {44, 45, 46};
  state.aggregation.messages_received = 48;
  state.aggregation.model_dim = 4;
  state.aggregation.global_weights = {0.5f, -1.25f, 0.0f, 3.75f};
  state.aggregation.global_bias = -0.125f;
  // Mid-round cascade state: non-zero compensation planes so the v3
  // round-trip covers all three accumulator planes bit-exactly.
  state.aggregation.accumulator = {1.5, -2.25, 0.0, 8.125};
  state.aggregation.accumulator_c1 = {1e-17, 0.0, -3e-18, 2e-20};
  state.aggregation.accumulator_c2 = {0.0, 1e-33, 0.0, -4e-35};
  state.aggregation.bias_accumulator = 0.75;
  state.aggregation.bias_accumulator_c1 = -5e-19;
  state.aggregation.bias_accumulator_c2 = 7e-36;
  state.aggregation.accumulator_samples = 12;
  state.aggregation.accumulator_clients = 3;
  cloud::AggregationRecord record;
  record.round = 1;
  record.time = Seconds(60.0);
  record.clients = 24;
  record.samples = 240;
  record.model_blob = BlobId(25);
  state.aggregation.history.push_back(record);
  persist::CheckpointRound round;
  round.round = 1;
  round.time = Seconds(60.0);
  round.test_accuracy = 0.75;
  round.test_logloss = 0.5;
  round.clients = 24;
  round.samples = 240;
  state.rounds.push_back(round);
  state.dispatch.received = 48;
  state.dispatch.sent = 48;
  state.dispatch.batches = {{Seconds(3.0), 1}, {Seconds(4.0), 2}};
  state.dispatch.batch_keys = {1, 2};
  state.scalars.push_back({"loss", Seconds(60.0), 0.5});
  device::PerfSample sample;
  sample.phone = PhoneId(3);
  sample.task = TaskId(1);
  sample.time = Seconds(10.0);
  sample.current_ua = 150000;
  state.perf_samples.push_back(sample);
  return state;
}

TEST(CheckpointTest, SerializeDeserializeRoundTrips) {
  const persist::CheckpointState state = SampleState();
  const std::vector<std::byte> image = persist::SerializeCheckpoint(state);
  auto decoded = persist::DeserializeCheckpoint(image);
  ASSERT_TRUE(decoded.ok()) << decoded.error().ToString();
  EXPECT_EQ(decoded->time, state.time);
  EXPECT_EQ(decoded->next_round, state.next_round);
  EXPECT_EQ(decoded->quiescent, state.quiescent);
  EXPECT_EQ(decoded->next_message_id, state.next_message_id);
  EXPECT_EQ(decoded->next_blob_id, state.next_blob_id);
  EXPECT_EQ(decoded->pending_delete_blobs, state.pending_delete_blobs);
  EXPECT_EQ(decoded->aggregation.global_weights,
            state.aggregation.global_weights);
  EXPECT_EQ(decoded->aggregation.global_bias, state.aggregation.global_bias);
  EXPECT_EQ(decoded->aggregation.accumulator, state.aggregation.accumulator);
  EXPECT_EQ(decoded->aggregation.accumulator_c1,
            state.aggregation.accumulator_c1);
  EXPECT_EQ(decoded->aggregation.accumulator_c2,
            state.aggregation.accumulator_c2);
  EXPECT_EQ(decoded->aggregation.bias_accumulator,
            state.aggregation.bias_accumulator);
  EXPECT_EQ(decoded->aggregation.bias_accumulator_c1,
            state.aggregation.bias_accumulator_c1);
  EXPECT_EQ(decoded->aggregation.bias_accumulator_c2,
            state.aggregation.bias_accumulator_c2);
  EXPECT_EQ(decoded->aggregation.accumulator_samples,
            state.aggregation.accumulator_samples);
  EXPECT_EQ(decoded->aggregation.accumulator_clients,
            state.aggregation.accumulator_clients);
  ASSERT_EQ(decoded->aggregation.history.size(), 1u);
  EXPECT_EQ(decoded->aggregation.history[0].model_blob, BlobId(25));
  ASSERT_EQ(decoded->rounds.size(), 1u);
  EXPECT_EQ(decoded->rounds[0].test_accuracy, 0.75);
  EXPECT_EQ(decoded->dispatch.batches, state.dispatch.batches);
  EXPECT_EQ(decoded->dispatch.batch_keys, state.dispatch.batch_keys);
  ASSERT_EQ(decoded->scalars.size(), 1u);
  EXPECT_EQ(decoded->scalars[0].series, "loss");
  ASSERT_EQ(decoded->perf_samples.size(), 1u);
  EXPECT_EQ(decoded->perf_samples[0].current_ua, 150000);
}

TEST(CheckpointTest, TornOrCorruptImagesAreRejectedNotUB) {
  const std::vector<std::byte> image =
      persist::SerializeCheckpoint(SampleState());
  // Every truncation length must fail cleanly.
  for (std::size_t n = 0; n < image.size(); n += 7) {
    auto decoded = persist::DeserializeCheckpoint(std::span(image.data(), n));
    EXPECT_FALSE(decoded.ok()) << "prefix " << n;
  }
  // A flipped bit anywhere must fail the CRC.
  for (std::size_t i = 0; i < image.size(); i += 13) {
    std::vector<std::byte> corrupt = image;
    corrupt[i] ^= std::byte{0x01};
    EXPECT_FALSE(persist::DeserializeCheckpoint(corrupt).ok())
        << "flip at " << i;
  }
}

TEST(CheckpointTest, PublicationSurvivesCrashAroundEitherRename) {
  // Window 1: crash before tmp -> bin leaves a valid tmp; window 2: crash
  // between demote and publish leaves tmp + prev. Either way recovery
  // finds a consistent image.
  const std::string dir = FreshDir("");
  RealFileIo& io = RealFileIo::Instance();
  persist::CheckpointState first = SampleState();
  first.sequence = 1;
  ASSERT_TRUE(persist::WriteCheckpoint(io, dir, first).ok());

  persist::CheckpointState second = first;
  second.sequence = 2;
  second.next_round = 3;
  {
    FaultPlan plan;
    plan.crash_before_rename = 1;  // demote bin -> prev
    FaultInjector faulty(plan);
    EXPECT_THROW((void)persist::WriteCheckpoint(faulty, dir, second),
                 SimulatedCrash);
    auto loaded = persist::LoadLatestCheckpoint(io, dir);
    ASSERT_TRUE(loaded.ok());
    // bin untouched; tmp (the newer image) wins the precedence order only
    // when bin is gone — here bin is still the first checkpoint... but tmp
    // holds the second. bin is tried first and validates.
    EXPECT_EQ(loaded->sequence, 1u);
  }
  {
    FaultPlan plan;
    plan.crash_after_rename = 1;  // after demote, before tmp -> bin
    FaultInjector faulty(plan);
    EXPECT_THROW((void)persist::WriteCheckpoint(faulty, dir, second),
                 SimulatedCrash);
    auto loaded = persist::LoadLatestCheckpoint(io, dir);
    ASSERT_TRUE(loaded.ok());
    // bin is gone (demoted); tmp carries the new image.
    EXPECT_EQ(loaded->sequence, 2u);
  }
}

TEST(FaultInjectorTest, TornLengthsAreSeedDeterministic) {
  const std::string dir_a = FreshDir("a");
  const std::string dir_b = FreshDir("b");
  const std::vector<std::byte> payload(257, std::byte{0x5A});
  auto torn_size = [&](const std::string& dir, std::uint64_t seed) {
    FaultPlan plan;
    plan.seed = seed;
    plan.crash_on_append = 1;
    FaultInjector faulty(plan);
    const std::string path = dir + "/file.log";
    EXPECT_THROW((void)faulty.Append(path, payload), SimulatedCrash);
    auto size = RealFileIo::Instance().FileSize(path);
    return size.ok() ? *size : ~std::uint64_t{0};
  };
  const std::uint64_t first = torn_size(dir_a, 42);
  EXPECT_EQ(first, torn_size(dir_b, 42));
  EXPECT_LE(first, payload.size());
}

// ---------------------------------------------------------------------------
// Engine-level crash recovery.

FlExperimentConfig DurableConfig(DurabilityMode mode, const std::string& dir,
                                 persist::FileIo* io = nullptr) {
  FlExperimentConfig config = BaseConfig();
  config.durability.mode = mode;
  config.durability.dir = dir;
  config.durability.io = io;
  return config;
}

TEST(DurableRecoveryTest, DurabilityModesAreBitIdenticalToOff) {
  const auto dataset = SmallDataset();
  const RunOutcome off = RunToCompletion(dataset, BaseConfig());
  ASSERT_EQ(off.result.rounds.size(), 3u);

  const std::string log_dir = FreshDir("log");
  const RunOutcome log = RunToCompletion(
      dataset, DurableConfig(DurabilityMode::kLog, log_dir));
  ExpectOutcomeIdentical(off, log, "log");
  EXPECT_TRUE(
      RealFileIo::Instance().Exists(persist::BlobLogPath(log_dir)));

  const std::string ckpt_dir = FreshDir("ckpt");
  const RunOutcome ckpt = RunToCompletion(
      dataset, DurableConfig(DurabilityMode::kLogCheckpoint, ckpt_dir));
  ExpectOutcomeIdentical(off, ckpt, "log+checkpoint");
  EXPECT_TRUE(
      RealFileIo::Instance().Exists(persist::CheckpointPath(ckpt_dir)));
}

TEST(DurableRecoveryTest, LogAloneRebuildsTheStoreContents) {
  const auto dataset = SmallDataset();
  const std::string dir = FreshDir("");
  std::size_t live_blobs = 0;
  std::size_t bytes_written = 0;
  std::uint64_t next_id = 0;
  {
    sim::EventLoop loop;
    FlEngine engine(loop, dataset,
                    DurableConfig(DurabilityMode::kLog, dir));
    (void)engine.Run();
    live_blobs = engine.storage().blob_count();
    bytes_written = engine.storage().bytes_written();
    next_id = engine.storage().next_id();
  }
  cloud::BlobStore rebuilt;
  persist::DurabilityConfig config;
  config.mode = DurabilityMode::kLog;
  config.dir = dir;
  persist::DurableStore store(config);
  auto recovered = store.BeginResume(rebuilt);
  ASSERT_TRUE(recovered.ok()) << recovered.error().ToString();
  EXPECT_FALSE(recovered->has_checkpoint);
  EXPECT_FALSE(recovered->truncated_tail);
  EXPECT_GT(recovered->log_records, 0u);
  EXPECT_EQ(rebuilt.blob_count(), live_blobs);
  EXPECT_EQ(rebuilt.bytes_written(), bytes_written);
  EXPECT_EQ(rebuilt.next_id(), next_id);
}

/// Counts the clean run's I/O operations so crash sweeps can target every
/// one of them.
struct IoProfile {
  std::uint64_t appends = 0;
  std::uint64_t write_files = 0;
  std::uint64_t renames = 0;
};

IoProfile ProfileCleanRun(const data::FederatedDataset& dataset,
                          const std::string& dir) {
  FaultInjector counting({});
  const RunOutcome outcome = RunToCompletion(
      dataset, DurableConfig(DurabilityMode::kLogCheckpoint, dir, &counting));
  EXPECT_EQ(outcome.result.rounds.size(), 3u);
  return {counting.appends(), counting.write_files(), counting.renames()};
}

TEST(DurableRecoveryTest, EveryInjectedCrashPointRecoversBitIdentical) {
  const auto dataset = SmallDataset();
  const RunOutcome reference = RunToCompletion(dataset, BaseConfig());
  const IoProfile profile = ProfileCleanRun(dataset, FreshDir("profile"));
  ASSERT_GE(profile.appends, 4u);     // >= 3 mid-round commit points
  ASSERT_EQ(profile.write_files, 3u);  // one checkpoint per round
  ASSERT_GE(profile.renames, 5u);      // 1 + 2 + 2 (first has no demote)

  std::vector<std::pair<std::string, FaultPlan>> plans;
  for (std::uint64_t n = 1; n <= profile.appends; ++n) {
    FaultPlan plan;
    plan.seed = 1000 + n;  // varies the torn length per crash point
    plan.crash_on_append = n;
    plans.emplace_back("append#" + std::to_string(n), plan);
  }
  for (std::uint64_t n = 1; n <= profile.write_files; ++n) {
    FaultPlan plan;
    plan.seed = 2000 + n;
    plan.crash_on_write_file = n;
    plans.emplace_back("write_file#" + std::to_string(n), plan);
  }
  for (std::uint64_t n = 1; n <= profile.renames; ++n) {
    FaultPlan before;
    before.crash_before_rename = n;
    plans.emplace_back("before_rename#" + std::to_string(n), before);
    FaultPlan after;
    after.crash_after_rename = n;
    plans.emplace_back("after_rename#" + std::to_string(n), after);
  }

  for (const auto& [label, plan] : plans) {
    SCOPED_TRACE(label);
    const std::string dir = FreshDir(label);
    FaultInjector faulty(plan);
    ASSERT_TRUE(CrashRun(
        dataset, DurableConfig(DurabilityMode::kLogCheckpoint, dir, &faulty)))
        << "plan never fired";
    // Any checkpoint that survived the crash must describe a quiescent
    // boundary — the precondition for bit-identical resume.
    auto checkpoint =
        persist::LoadLatestCheckpoint(RealFileIo::Instance(), dir);
    if (checkpoint.ok()) {
      EXPECT_TRUE(checkpoint->quiescent);
    }
    const RunOutcome recovered = RecoverOrRerun(
        dataset, DurableConfig(DurabilityMode::kLogCheckpoint, dir));
    ExpectOutcomeIdentical(reference, recovered, label);
  }
}

TEST(DurableRecoveryTest, FsyncFailureDegradesWithoutChangingResults) {
  const auto dataset = SmallDataset();
  const RunOutcome reference = RunToCompletion(dataset, BaseConfig());
  for (const std::uint64_t n : {1u, 2u, 3u}) {
    const std::string dir = FreshDir("sync" + std::to_string(n));
    FaultPlan plan;
    plan.fail_sync_on = n;
    FaultInjector faulty(plan);
    const RunOutcome durable = RunToCompletion(
        dataset, DurableConfig(DurabilityMode::kLogCheckpoint, dir, &faulty));
    ExpectOutcomeIdentical(reference, durable,
                           "fail_sync_on=" + std::to_string(n));
  }
}

TEST(DurableRecoveryTest, ShortReadFallsBackToOlderCheckpoint) {
  const auto dataset = SmallDataset();
  const RunOutcome reference = RunToCompletion(dataset, BaseConfig());
  const std::string dir = FreshDir("");
  // Crash late, after at least two checkpoints exist.
  const IoProfile profile = ProfileCleanRun(dataset, FreshDir("profile"));
  FaultPlan crash;
  crash.crash_on_append = profile.appends;  // last commit of the run
  FaultInjector faulty(crash);
  ASSERT_TRUE(CrashRun(
      dataset, DurableConfig(DurabilityMode::kLogCheckpoint, dir, &faulty)));

  // Recovery's first read (checkpoint.bin) comes back short: the image
  // fails its CRC and recovery falls back to checkpoint.prev — an older
  // boundary, more rounds re-executed, same final bits.
  FaultPlan short_read;
  short_read.seed = 77;
  short_read.short_read_on = 1;
  FaultInjector flaky(short_read);
  sim::EventLoop loop;
  FlEngine engine(loop, dataset,
                  DurableConfig(DurabilityMode::kLogCheckpoint, dir, &flaky));
  ASSERT_TRUE(engine.RestoreFromRecovery().ok());
  const RunOutcome recovered = CollectOutcome(engine, engine.Run());
  ExpectOutcomeIdentical(reference, recovered, "short-read fallback");
}

TEST(DurableRecoveryTest, EngineLogTornAtEveryByteOfFinalRecordRecovers) {
  // Satellite at the engine level: complete a durable run, then truncate
  // the REAL blob log at every byte offset inside its final record and
  // prove replay always reconstructs the longest valid prefix.
  const auto dataset = SmallDataset();
  const std::string dir = FreshDir("");
  RealFileIo& io = RealFileIo::Instance();
  {
    const RunOutcome outcome = RunToCompletion(
        dataset, DurableConfig(DurabilityMode::kLog, dir));
    ASSERT_EQ(outcome.result.rounds.size(), 3u);
  }
  const std::string path = persist::BlobLogPath(dir);
  auto original = io.ReadFile(path);
  ASSERT_TRUE(original.ok());

  // Walk the frames to find every record boundary.
  std::vector<std::uint64_t> boundaries = {0};
  std::uint64_t total_records = 0;
  {
    auto replay = persist::ReplayBlobLog(io, path, [&](const BlobLogRecord&) {
      ++total_records;
    });
    ASSERT_TRUE(replay.ok());
    ASSERT_FALSE(replay->truncated_tail);
    ASSERT_GT(total_records, 3u);
  }
  std::uint64_t pos = 0;
  while (pos < original->size()) {
    persist::ByteReader header(
        std::span(original->data() + pos, 2 * sizeof(std::uint32_t)));
    const auto length = header.Get<std::uint32_t>();
    pos += 2 * sizeof(std::uint32_t) + length;
    boundaries.push_back(pos);
  }
  ASSERT_EQ(boundaries.size(), total_records + 1);

  // Records are self-delimiting, so the suffix starting at any boundary is
  // itself a valid log. Sweep over a three-record sub-log instead of the
  // full file — same truncation semantics, ~25x less I/O per byte offset.
  const std::uint64_t base = boundaries[boundaries.size() - 4];
  const std::uint64_t last_start = boundaries[boundaries.size() - 2] - base;
  const std::uint64_t sub_size = original->size() - base;

  const std::string scratch_dir = FreshDir("scratch");
  const std::string scratch = persist::BlobLogPath(scratch_dir);
  for (std::uint64_t cut = last_start; cut < sub_size; ++cut) {
    ASSERT_TRUE(io.WriteFile(scratch,
                             std::span(original->data() + base,
                                       static_cast<std::size_t>(cut)))
                    .ok());
    std::uint64_t records = 0;
    auto replay = persist::ReplayBlobLog(
        io, scratch, [&](const BlobLogRecord&) { ++records; });
    ASSERT_TRUE(replay.ok()) << "cut=" << cut;
    EXPECT_EQ(records, 2u) << "cut=" << cut;
    EXPECT_EQ(replay->valid_bytes, last_start) << "cut=" << cut;
  }
}

TEST(DurableRecoveryMatrixTest, AllShardWidthsAndCodecsRecoverBitIdentical) {
  const auto dataset = SmallDataset();
  for (const std::size_t width : {1u, 2u, 4u, 8u}) {
    for (const ml::PayloadCodec codec :
         {ml::PayloadCodec::kFp32, ml::PayloadCodec::kFp16,
          ml::PayloadCodec::kInt8}) {
      // The aggregate-plane axis: both planes must produce the same bits
      // as each other (order-invariant cascade) AND recover bit-identically
      // through a mid-experiment crash.
      const RunOutcome* cross_plane_reference = nullptr;
      RunOutcome first_plane_outcome;
      for (const cloud::AggregatePlane plane :
           {cloud::AggregatePlane::kPartialSum,
            cloud::AggregatePlane::kLegacy}) {
        const std::string label =
            "width=" + std::to_string(width) + " codec=" +
            std::string(ml::ToString(codec)) + " plane=" +
            (plane == cloud::AggregatePlane::kPartialSum ? "partial_sum"
                                                         : "legacy");
        SCOPED_TRACE(label);
        FlExperimentConfig base = BaseConfig();
        base.shards = width;
        base.payload_codec = codec;
        base.aggregate_plane = plane;
        const RunOutcome reference = RunToCompletion(dataset, base);
        ASSERT_EQ(reference.result.rounds.size(), 3u);
        if (cross_plane_reference == nullptr) {
          first_plane_outcome = reference;
          cross_plane_reference = &first_plane_outcome;
        } else {
          ExpectOutcomeIdentical(*cross_plane_reference, reference, label);
        }

        const std::string dir = FreshDir(label);
        FaultPlan plan;
        plan.seed = width * 100 + static_cast<std::uint64_t>(codec);
        plan.crash_on_append = 4;  // mid-experiment commit
        FaultInjector faulty(plan);
        FlExperimentConfig crash_config = base;
        crash_config.durability.mode = DurabilityMode::kLogCheckpoint;
        crash_config.durability.dir = dir;
        crash_config.durability.io = &faulty;
        ASSERT_TRUE(CrashRun(dataset, crash_config)) << "plan never fired";

        FlExperimentConfig resume_config = base;
        resume_config.durability.mode = DurabilityMode::kLogCheckpoint;
        resume_config.durability.dir = dir;
        const RunOutcome recovered = RecoverOrRerun(dataset, resume_config);
        ExpectOutcomeIdentical(reference, recovered, label);
      }
    }
  }
}

}  // namespace
}  // namespace simdc::core
