// Unit + property tests for the scheduler module: the hybrid allocation
// optimizer (verified against brute force), task queue, resource manager,
// greedy scheduler and task runner.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>

#include "common/rng.h"
#include "device/fleet.h"
#include "phonemgr/phone_mgr.h"
#include "sched/allocation.h"
#include "sched/resource_manager.h"
#include "sched/scheduler.h"
#include "sched/task_queue.h"
#include "sched/task_runner.h"
#include "sim/event_loop.h"

namespace simdc::sched {
namespace {

using device::DeviceGrade;

GradeAllocationInput HighGrade(std::size_t n, std::size_t q = 0) {
  GradeAllocationInput g;
  g.total_devices = n;
  g.benchmarking = q;
  g.logical_bundles = 80;   // f: 10 concurrent High devices (k=8)
  g.bundles_per_device = 8;
  g.phones = 4;
  g.alpha_s = 2.4;
  g.beta_s = 1.6;
  g.lambda_s = 15.0;
  return g;
}

GradeAllocationInput LowGrade(std::size_t n, std::size_t q = 0) {
  GradeAllocationInput g;
  g.total_devices = n;
  g.benchmarking = q;
  g.logical_bundles = 40;
  g.bundles_per_device = 4;
  g.phones = 6;
  g.alpha_s = 5.2;
  g.beta_s = 3.8;
  g.lambda_s = 21.0;
  return g;
}

// ---------- PredictMakespan ----------

TEST(PredictMakespanTest, MatchesHandComputation) {
  // x=20 of 30 High devices logical: ceil(8·20/80)·2.4 = 2·2.4 = 4.8 s;
  // 10 on 4 phones: ceil(10/4)·1.6 + 15 = 19.8 s.
  double tl = 0, tp = 0;
  const double t =
      PredictMakespan({HighGrade(30)}, {20}, &tl, &tp);
  EXPECT_DOUBLE_EQ(tl, 4.8);
  EXPECT_DOUBLE_EQ(tp, 19.8);
  EXPECT_DOUBLE_EQ(t, 19.8);
}

TEST(PredictMakespanTest, AllLogicalHasNoPhoneTime) {
  double tl = 0, tp = 0;
  PredictMakespan({HighGrade(30)}, {30}, &tl, &tp);
  EXPECT_DOUBLE_EQ(tp, 0.0);  // no devices, no benchmarking → no λ
}

TEST(PredictMakespanTest, BenchmarkingAlwaysCostsLambda) {
  double tl = 0, tp = 0;
  PredictMakespan({HighGrade(30, /*q=*/2)}, {28}, &tl, &tp);
  EXPECT_DOUBLE_EQ(tp, 1.6 + 15.0);  // benchmarking phones still run
}

TEST(PredictMakespanTest, OverAllocationClamps) {
  // Asking for more logical devices than placeable clamps to placeable.
  const double t1 = PredictMakespan({HighGrade(10)}, {10});
  const double t2 = PredictMakespan({HighGrade(10)}, {999});
  EXPECT_DOUBLE_EQ(t1, t2);
}

// ---------- Optimizer vs brute force (design decision D1) ----------

struct AllocationCase {
  std::vector<GradeAllocationInput> grades;
  std::string name;
};

class AllocationPropertyTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AllocationPropertyTest, OptimizerMatchesBruteForce) {
  // Randomized small instances: the binary-search optimizer must find the
  // same optimal makespan as exhaustive search (and the same Σx under the
  // prefer-logical tie-break).
  Rng rng(GetParam());
  std::vector<GradeAllocationInput> grades;
  const std::size_t c = 1 + static_cast<std::size_t>(rng.UniformInt(0, 1));
  for (std::size_t i = 0; i < c; ++i) {
    GradeAllocationInput g;
    g.total_devices = static_cast<std::size_t>(rng.UniformInt(1, 18));
    g.benchmarking = static_cast<std::size_t>(
        rng.UniformInt(0, static_cast<std::int64_t>(g.total_devices) / 3));
    g.bundles_per_device = static_cast<std::size_t>(rng.UniformInt(1, 8));
    g.logical_bundles = static_cast<std::size_t>(rng.UniformInt(0, 40));
    g.phones = static_cast<std::size_t>(rng.UniformInt(0, 5));
    g.alpha_s = rng.Uniform(0.5, 6.0);
    g.beta_s = rng.Uniform(0.5, 6.0);
    g.lambda_s = rng.Uniform(0.0, 25.0);
    if (g.logical_bundles == 0 && g.phones == 0) g.phones = 1;
    grades.push_back(g);
  }

  for (const bool prefer_logical : {true, false}) {
    auto fast = SolveHybridAllocation(grades, prefer_logical);
    auto slow = BruteForceAllocation(grades, prefer_logical);
    ASSERT_EQ(fast.ok(), slow.ok());
    if (!fast.ok()) continue;
    EXPECT_NEAR(fast->total_seconds, slow->total_seconds, 1e-6)
        << "prefer_logical=" << prefer_logical;
    std::size_t sum_fast = 0, sum_slow = 0;
    for (std::size_t x : fast->logical_devices) sum_fast += x;
    for (std::size_t x : slow->logical_devices) sum_slow += x;
    EXPECT_EQ(sum_fast, sum_slow) << "prefer_logical=" << prefer_logical;
  }
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, AllocationPropertyTest,
                         ::testing::Range<std::uint64_t>(0, 40));

TEST(AllocationTest, DuplicateBoundariesAcrossGradesMatchBruteForce) {
  // Regression for the candidate-generation rewrite (flat vector + sort +
  // unique instead of std::set): identical grades produce every candidate
  // makespan several times over, and boundary values coincide across the
  // logical (j·α) and phone (j·β + λ) series. The dedup must not lose or
  // duplicate a feasible T.
  GradeAllocationInput g = HighGrade(12, /*q=*/1);
  g.alpha_s = 2.0;
  g.beta_s = 2.0;   // phone batches land on the same grid as logical ones
  g.lambda_s = 4.0; // ... offset by an exact multiple of the batch size
  const std::vector<GradeAllocationInput> grades = {g, g, g};
  for (const bool prefer_logical : {true, false}) {
    auto fast = SolveHybridAllocation(grades, prefer_logical);
    auto slow = BruteForceAllocation(grades, prefer_logical);
    ASSERT_TRUE(fast.ok());
    ASSERT_TRUE(slow.ok());
    EXPECT_NEAR(fast->total_seconds, slow->total_seconds, 1e-9)
        << "prefer_logical=" << prefer_logical;
  }
}

TEST(AllocationTest, SingleCandidateDegenerateInstances) {
  // Post-rewrite edge cases where the candidate vector is tiny: a grade
  // with nothing placeable (all devices benchmarking) and a grade whose
  // only resource is the logical cluster.
  GradeAllocationInput all_bench = HighGrade(2, /*q=*/2);
  auto result = SolveHybridAllocation({all_bench});
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->total_seconds,
                   all_bench.beta_s + all_bench.lambda_s);

  GradeAllocationInput logical_only = HighGrade(6);
  logical_only.phones = 0;
  auto fast = SolveHybridAllocation({logical_only});
  auto slow = BruteForceAllocation({logical_only});
  ASSERT_TRUE(fast.ok());
  ASSERT_TRUE(slow.ok());
  EXPECT_NEAR(fast->total_seconds, slow->total_seconds, 1e-9);
}

TEST(AllocationTest, OptimizerBeatsOrTiesFixedRatios) {
  // Fig. 7's claim: the optimizer is never slower than Types 1–5.
  const std::vector<GradeAllocationInput> grades = {HighGrade(100, 5),
                                                    LowGrade(100, 5)};
  auto optimal = SolveHybridAllocation(grades);
  ASSERT_TRUE(optimal.ok());
  for (const double ratio : {1.0, 0.75, 0.5, 0.25, 0.0}) {
    const auto fixed = FixedRatioAllocation(grades, ratio);
    const double t = PredictMakespan(grades, fixed);
    EXPECT_LE(optimal->total_seconds, t + 1e-9) << "ratio=" << ratio;
  }
}

TEST(AllocationTest, PreferLogicalMaximizesLogicalShare) {
  const std::vector<GradeAllocationInput> grades = {HighGrade(40)};
  auto logical = SolveHybridAllocation(grades, /*prefer_logical=*/true);
  auto phones = SolveHybridAllocation(grades, /*prefer_logical=*/false);
  ASSERT_TRUE(logical.ok());
  ASSERT_TRUE(phones.ok());
  EXPECT_NEAR(logical->total_seconds, phones->total_seconds, 1e-9);
  EXPECT_GE(logical->logical_devices[0], phones->logical_devices[0]);
}

TEST(AllocationTest, NoPhonesForcesAllLogical) {
  auto g = HighGrade(20);
  g.phones = 0;
  auto result = SolveHybridAllocation({g});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->logical_devices[0], 20u);
}

TEST(AllocationTest, NoBundlesForcesAllPhones) {
  auto g = HighGrade(20);
  g.logical_bundles = 0;
  auto result = SolveHybridAllocation({g});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->logical_devices[0], 0u);
}

TEST(AllocationTest, NoResourcesAtAllFails) {
  auto g = HighGrade(20);
  g.phones = 0;
  g.logical_bundles = 0;
  EXPECT_FALSE(SolveHybridAllocation({g}).ok());
}

TEST(AllocationTest, EmptyAndInvalidInputs) {
  EXPECT_FALSE(SolveHybridAllocation({}).ok());
  auto g = HighGrade(5);
  g.benchmarking = 6;
  EXPECT_FALSE(SolveHybridAllocation({g}).ok());
}

TEST(AllocationTest, ZeroDevicesIsTrivial) {
  auto result = SolveHybridAllocation({HighGrade(0)});
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->total_seconds, 0.0);
}

TEST(AllocationTest, LargeScaleRunsFast) {
  // 10,000 devices per grade — candidate set stays manageable.
  auto high = HighGrade(10000, 5);
  high.logical_bundles = 200;
  high.phones = 17;
  auto low = LowGrade(10000, 5);
  low.phones = 13;
  auto result = SolveHybridAllocation({high, low});
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->total_seconds, 0.0);
  // Both venues should be saturated near the optimum (no idle side).
  EXPECT_GT(result->logical_devices[0], 0u);
  EXPECT_LT(result->logical_devices[0], 10000u);
}

TEST(FixedRatioTest, EndpointsAndRounding) {
  const std::vector<GradeAllocationInput> grades = {HighGrade(10, 2)};
  EXPECT_EQ(FixedRatioAllocation(grades, 1.0)[0], 8u);  // placeable = 8
  EXPECT_EQ(FixedRatioAllocation(grades, 0.0)[0], 0u);
  EXPECT_EQ(FixedRatioAllocation(grades, 0.5)[0], 4u);
}

// ---------- TaskQueue ----------

TaskSpec MakeTask(std::uint64_t id, int priority) {
  TaskSpec task;
  task.id = TaskId(id);
  task.priority = priority;
  DeviceRequirement requirement;
  requirement.grade = DeviceGrade::kHigh;
  requirement.num_devices = 10;
  requirement.logical_bundles = 16;
  requirement.phones = 2;
  task.requirements.push_back(requirement);
  return task;
}

TEST(TaskQueueTest, PriorityOrderWithFifoTieBreak) {
  TaskQueue queue;
  ASSERT_TRUE(queue.Submit(MakeTask(1, 0)).ok());
  ASSERT_TRUE(queue.Submit(MakeTask(2, 5)).ok());
  ASSERT_TRUE(queue.Submit(MakeTask(3, 5)).ok());
  ASSERT_TRUE(queue.Submit(MakeTask(4, 1)).ok());
  const auto ordered = queue.SnapshotOrdered();
  ASSERT_EQ(ordered.size(), 4u);
  EXPECT_EQ(ordered[0].id, TaskId(2));  // priority 5, submitted first
  EXPECT_EQ(ordered[1].id, TaskId(3));
  EXPECT_EQ(ordered[2].id, TaskId(4));
  EXPECT_EQ(ordered[3].id, TaskId(1));
}

TEST(TaskQueueTest, DuplicateSubmitRejected) {
  TaskQueue queue;
  ASSERT_TRUE(queue.Submit(MakeTask(1, 0)).ok());
  EXPECT_FALSE(queue.Submit(MakeTask(1, 3)).ok());
  EXPECT_EQ(queue.size(), 1u);
}

TEST(TaskQueueTest, RemoveSpecific) {
  TaskQueue queue;
  ASSERT_TRUE(queue.Submit(MakeTask(1, 0)).ok());
  ASSERT_TRUE(queue.Submit(MakeTask(2, 0)).ok());
  auto removed = queue.Remove(TaskId(1));
  ASSERT_TRUE(removed.has_value());
  EXPECT_EQ(removed->id, TaskId(1));
  EXPECT_FALSE(queue.Contains(TaskId(1)));
  EXPECT_FALSE(queue.Remove(TaskId(1)).has_value());
  EXPECT_EQ(queue.size(), 1u);
}

// ---------- ResourceManager ----------

TEST(ResourceManagerTest, FreezeReleaseRoundTrip) {
  ResourceManager manager(100, {4, 6});
  ResourceRequest request;
  request.logical_bundles = 60;
  request.phones = {2, 3};
  EXPECT_TRUE(manager.Fits(request));
  ASSERT_TRUE(manager.Freeze(request).ok());
  const auto snapshot = manager.Snapshot();
  EXPECT_EQ(snapshot.logical_bundles_free, 40u);
  EXPECT_EQ(snapshot.phones_free[0], 2u);
  EXPECT_EQ(snapshot.phones_free[1], 3u);
  ASSERT_TRUE(manager.Release(request).ok());
  EXPECT_EQ(manager.Snapshot().logical_bundles_free, 100u);
}

TEST(ResourceManagerTest, FreezeIsAllOrNothing) {
  ResourceManager manager(10, {1, 1});
  ResourceRequest request;
  request.logical_bundles = 5;
  request.phones = {2, 0};  // too many High phones
  EXPECT_FALSE(manager.Freeze(request).ok());
  EXPECT_EQ(manager.Snapshot().logical_bundles_free, 10u);  // untouched
}

TEST(ResourceManagerTest, OverReleaseClampsWithError) {
  ResourceManager manager(10, {2, 2});
  ResourceRequest request;
  request.logical_bundles = 4;
  ASSERT_TRUE(manager.Freeze(request).ok());
  ResourceRequest big;
  big.logical_bundles = 9;
  EXPECT_FALSE(manager.Release(big).ok());
  EXPECT_EQ(manager.Snapshot().logical_bundles_free, 10u);
}

TEST(ResourceManagerTest, DynamicScaling) {
  ResourceManager manager(10, {2, 2});
  manager.ScaleUpLogical(10);
  EXPECT_EQ(manager.Snapshot().logical_bundles_total, 20u);
  ResourceRequest request;
  request.logical_bundles = 15;
  ASSERT_TRUE(manager.Freeze(request).ok());
  EXPECT_FALSE(manager.ScaleDownLogical(10).ok());  // below in-use
  ASSERT_TRUE(manager.Release(request).ok());
  EXPECT_TRUE(manager.ScaleDownLogical(10).ok());
  manager.AddPhones(DeviceGrade::kLow, 3);
  EXPECT_EQ(manager.Snapshot().phones_total[1], 5u);
  EXPECT_TRUE(manager.RemovePhones(DeviceGrade::kLow, 5).ok());
  EXPECT_FALSE(manager.RemovePhones(DeviceGrade::kLow, 1).ok());
}

// ---------- GreedyScheduler ----------

TEST(GreedySchedulerTest, LaunchesHighestPriorityThatFits) {
  ResourceManager manager(40, {4, 6});
  GreedyScheduler scheduler(manager);
  TaskQueue queue;
  // Task 2 (priority 9) wants everything; task 1 (priority 1) is small.
  auto big = MakeTask(2, 9);
  big.requirements[0].logical_bundles = 40;
  big.requirements[0].phones = 4;
  ASSERT_TRUE(queue.Submit(MakeTask(1, 1)).ok());
  ASSERT_TRUE(queue.Submit(big).ok());

  const auto launched = scheduler.SchedulePass(queue);
  // Big task frozen first (priority), small one no longer fits.
  ASSERT_EQ(launched.size(), 1u);
  EXPECT_EQ(launched[0].id, TaskId(2));
  EXPECT_TRUE(queue.Contains(TaskId(1)));

  // After releasing, the next pass launches the small task.
  ASSERT_TRUE(manager.Release(RequestFor(launched[0])).ok());
  const auto second = scheduler.SchedulePass(queue);
  ASSERT_EQ(second.size(), 1u);
  EXPECT_EQ(second[0].id, TaskId(1));
}

TEST(GreedySchedulerTest, LaunchesMultipleWhenAllFit) {
  ResourceManager manager(100, {8, 8});
  GreedyScheduler scheduler(manager);
  TaskQueue queue;
  ASSERT_TRUE(queue.Submit(MakeTask(1, 1)).ok());
  ASSERT_TRUE(queue.Submit(MakeTask(2, 2)).ok());
  const auto launched = scheduler.SchedulePass(queue);
  EXPECT_EQ(launched.size(), 2u);
  EXPECT_TRUE(queue.empty());
}

TEST(RequestForTest, SumsAcrossRequirements) {
  TaskSpec task = MakeTask(1, 0);
  DeviceRequirement low;
  low.grade = DeviceGrade::kLow;
  low.num_devices = 5;
  low.logical_bundles = 8;
  low.phones = 1;
  low.benchmarking_phones = 2;
  task.requirements.push_back(low);
  const auto request = RequestFor(task);
  EXPECT_EQ(request.logical_bundles, 24u);
  EXPECT_EQ(request.phones[0], 2u);
  EXPECT_EQ(request.phones[1], 3u);  // phones + benchmarking
}

// ---------- TaskRunner ----------

TEST(TaskRunnerTest, RunsTasksAndTracksStates) {
  TaskRunner runner(2);
  auto task = MakeTask(1, 0);
  auto future = runner.Launch(task, [](const TaskSpec&) { return Status::Ok(); });
  EXPECT_TRUE(future.get().ok());
  runner.WaitAll();
  EXPECT_EQ(runner.StateOf(TaskId(1)), TaskState::kCompleted);
  EXPECT_EQ(runner.StateOf(TaskId(42)), TaskState::kQueued);  // unknown
}

TEST(TaskRunnerTest, FailureAndExceptionBecomeFailedState) {
  TaskRunner runner(2);
  auto f1 = runner.Launch(MakeTask(1, 0), [](const TaskSpec&) {
    return Status(Internal("boom"));
  });
  auto f2 = runner.Launch(MakeTask(2, 0), [](const TaskSpec&) -> Status {
    throw std::runtime_error("kaboom");
  });
  EXPECT_FALSE(f1.get().ok());
  const auto status2 = f2.get();
  EXPECT_FALSE(status2.ok());
  EXPECT_NE(status2.error().message().find("kaboom"), std::string::npos);
  runner.WaitAll();
  EXPECT_EQ(runner.StateOf(TaskId(1)), TaskState::kFailed);
  EXPECT_EQ(runner.StateOf(TaskId(2)), TaskState::kFailed);
}

TEST(TaskRunnerTest, StateCallbackSequence) {
  TaskRunner runner(1);
  std::vector<TaskState> states;
  std::mutex mutex;
  auto future = runner.Launch(
      MakeTask(1, 0), [](const TaskSpec&) { return Status::Ok(); },
      [&](TaskId, TaskState state) {
        std::lock_guard<std::mutex> lock(mutex);
        states.push_back(state);
      });
  EXPECT_TRUE(future.get().ok());
  runner.WaitAll();
  ASSERT_EQ(states.size(), 3u);
  EXPECT_EQ(states[0], TaskState::kScheduled);
  EXPECT_EQ(states[1], TaskState::kRunning);
  EXPECT_EQ(states[2], TaskState::kCompleted);
}

TEST(TaskRunnerTest, PlanAllocationFromSpec) {
  TaskSpec task = MakeTask(1, 0);
  task.requirements[0].num_devices = 50;
  task.requirements[0].logical_bundles = 80;
  task.requirements[0].phones = 4;
  auto plan = TaskRunner::PlanAllocation(task);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->logical_devices.size(), 1u);
  EXPECT_GT(plan->total_seconds, 0.0);
}

TEST(TaskRunnerTest, ConcurrentTasks) {
  TaskRunner runner(4);
  std::vector<std::future<Status>> futures;
  for (std::uint64_t i = 1; i <= 16; ++i) {
    futures.push_back(runner.Launch(MakeTask(i, 0), [](const TaskSpec&) {
      return Status::Ok();
    }));
  }
  for (auto& f : futures) EXPECT_TRUE(f.get().ok());
  runner.WaitAll();
  EXPECT_EQ(runner.running_count(), 0u);
}

TEST(TaskStateTest, Names) {
  EXPECT_STREQ(ToString(TaskState::kQueued), "Queued");
  EXPECT_STREQ(ToString(TaskState::kFailed), "Failed");
}

TEST(OperatorFlowTest, DefaultIsDownloadTrainUpload) {
  const auto flow = DefaultFlOperatorFlow();
  ASSERT_EQ(flow.size(), 3u);
  EXPECT_EQ(flow[0].kind, OperatorStep::Kind::kDownload);
  EXPECT_EQ(flow[1].kind, OperatorStep::Kind::kTrain);
  EXPECT_EQ(flow[2].kind, OperatorStep::Kind::kUpload);
}

// ---------- SolveWeightedFairShares ----------

TEST(WeightedFairSharesTest, AmpleCapacityMeetsEveryDemand) {
  const auto shares = SolveWeightedFairShares(
      {{30, 1}, {20, 5}, {10, 2}}, /*capacity=*/100);
  EXPECT_EQ(shares, (std::vector<std::size_t>{30, 20, 10}));
}

TEST(WeightedFairSharesTest, ScarcityWaterFillsEqualWeights) {
  // Demands {90, 30} over 100: sweep 1 grants {50, 30}; the satisfied
  // tenant leaves and the remaining 20 tops tenant 0 up to 70.
  const auto shares =
      SolveWeightedFairShares({{90, 5}, {30, 5}}, /*capacity=*/100);
  EXPECT_EQ(shares, (std::vector<std::size_t>{70, 30}));
}

TEST(WeightedFairSharesTest, WeightsSkewTheSplit) {
  const auto shares =
      SolveWeightedFairShares({{60, 2}, {60, 1}}, /*capacity=*/90);
  EXPECT_EQ(shares, (std::vector<std::size_t>{60, 30}));
}

TEST(WeightedFairSharesTest, ZeroWeightTreatedAsOne) {
  const auto shares =
      SolveWeightedFairShares({{50, 0}, {50, 0}}, /*capacity=*/50);
  EXPECT_EQ(shares, (std::vector<std::size_t>{25, 25}));
}

TEST(WeightedFairSharesTest, IntegerStarvationFallsBackToSingleUnits) {
  // One unit over two equal tenants: quotas floor to zero, so the
  // deterministic single-unit fallback hands it to the first index.
  const auto shares =
      SolveWeightedFairShares({{5, 1}, {5, 1}}, /*capacity=*/1);
  EXPECT_EQ(shares, (std::vector<std::size_t>{1, 0}));
}

TEST(WeightedFairSharesTest, EmptyAndZeroCapacity) {
  EXPECT_TRUE(SolveWeightedFairShares({}, 10).empty());
  EXPECT_EQ(SolveWeightedFairShares({{5, 1}}, 0),
            (std::vector<std::size_t>{0}));
}

// ---------- SchedulePassEx: fairness + admission control ----------

TEST(SchedulePassExTest, WeightedFairHoldsBackOverShareTenant) {
  ResourceManager manager(1000, {100, 10});
  GreedyScheduler scheduler(manager);
  TaskQueue queue;
  auto big = MakeTask(1, 5);
  big.requirements[0].phones = 90;
  auto small = MakeTask(2, 5);
  small.requirements[0].phones = 30;
  ASSERT_TRUE(queue.Submit(big).ok());
  ASSERT_TRUE(queue.Submit(small).ok());

  SchedulePolicy policy;
  policy.mode = ScheduleMode::kWeightedFair;
  const auto decision = scheduler.SchedulePassEx(queue, policy);
  // Fair shares over the 110 free phones... demand is counted in phones:
  // {90, 30} against 110 free → shares {80, 30}: the big tenant exceeds
  // its share and stays QUEUED (not rejected); the small one launches.
  ASSERT_EQ(decision.launched.size(), 1u);
  EXPECT_EQ(decision.launched[0].id, TaskId(2));
  EXPECT_TRUE(decision.rejected.empty());
  EXPECT_TRUE(queue.Contains(TaskId(1)));

  // Once the small tenant finishes, a fresh pass admits the big one.
  ASSERT_TRUE(manager.Release(RequestFor(decision.launched[0])).ok());
  const auto second = scheduler.SchedulePassEx(queue, policy);
  ASSERT_EQ(second.launched.size(), 1u);
  EXPECT_EQ(second.launched[0].id, TaskId(1));
}

TEST(SchedulePassExTest, AdmissionControlRejectsImpossibleDemand) {
  ResourceManager manager(100, {10, 10});
  GreedyScheduler scheduler(manager);
  TaskQueue queue;
  auto impossible = MakeTask(1, 9);
  impossible.requirements[0].phones = 20;  // > 10 High phones exist
  ASSERT_TRUE(queue.Submit(impossible).ok());
  ASSERT_TRUE(queue.Submit(MakeTask(2, 1)).ok());

  const auto decision = scheduler.SchedulePassEx(queue, SchedulePolicy{});
  ASSERT_EQ(decision.rejected.size(), 1u);
  EXPECT_EQ(decision.rejected[0].id, TaskId(1));
  ASSERT_EQ(decision.launched.size(), 1u);
  EXPECT_EQ(decision.launched[0].id, TaskId(2));
  EXPECT_FALSE(queue.Contains(TaskId(1)));  // removed, never retried
}

TEST(SchedulePassExTest, FleetShareCapRejectsPermanently) {
  ResourceManager manager(100, {10, 10});  // 20 phones total
  GreedyScheduler scheduler(manager);
  TaskQueue queue;
  // 6 + 6 phones: fits each grade's 10-phone pool, but the TOTAL of 12
  // exceeds the 0.5 × 20 fleet-share cap — the cap alone must reject it.
  auto heavy = MakeTask(1, 9);
  heavy.requirements[0].phones = 6;
  DeviceRequirement low;
  low.grade = DeviceGrade::kLow;
  low.num_devices = 10;
  low.logical_bundles = 16;
  low.phones = 6;
  heavy.requirements.push_back(low);
  auto light = MakeTask(2, 1);
  light.requirements[0].phones = 10;  // exactly at the cap
  ASSERT_TRUE(queue.Submit(heavy).ok());
  ASSERT_TRUE(queue.Submit(light).ok());

  SchedulePolicy policy;
  policy.max_fleet_share = 0.5;
  const auto decision = scheduler.SchedulePassEx(queue, policy);
  ASSERT_EQ(decision.rejected.size(), 1u);
  EXPECT_EQ(decision.rejected[0].id, TaskId(1));
  ASSERT_EQ(decision.launched.size(), 1u);
  EXPECT_EQ(decision.launched[0].id, TaskId(2));
}

// ---------- TaskQueue under concurrent traffic ----------

TEST(TaskQueueTest, ConcurrentSubmitRemoveSnapshotStress) {
  // Writers submit while the main thread snapshots and removes. Every
  // snapshot must be priority-desc with FIFO stability among equals, and
  // every id must end up either removed exactly once or still queued.
  TaskQueue queue;
  constexpr std::uint64_t kWriters = 4;
  constexpr std::uint64_t kPerWriter = 200;
  constexpr std::uint64_t kTotal = kWriters * kPerWriter;
  std::atomic<bool> start{false};
  std::atomic<std::size_t> submit_failures{0};
  std::vector<std::thread> writers;
  for (std::uint64_t w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      while (!start.load()) {
      }
      for (std::uint64_t i = 0; i < kPerWriter; ++i) {
        const std::uint64_t id = w * kPerWriter + i + 1;
        if (!queue.Submit(MakeTask(id, static_cast<int>(id % 5))).ok()) {
          ++submit_failures;
        }
      }
    });
  }
  start = true;

  std::set<std::uint64_t> removed;
  bool order_ok = true;
  while (removed.size() < kTotal / 2) {
    const auto snapshot = queue.SnapshotOrdered();
    // Priority order, and FIFO among equals: a writer submits its ids in
    // ascending order, so two same-priority tasks from one writer must
    // appear in ascending-id order in every snapshot.
    for (std::size_t i = 1; i < snapshot.size(); ++i) {
      if (snapshot[i - 1].priority < snapshot[i].priority) order_ok = false;
    }
    for (std::size_t i = 0; i < snapshot.size(); ++i) {
      for (std::size_t j = i + 1; j < snapshot.size(); ++j) {
        const std::uint64_t a = snapshot[i].id.value();
        const std::uint64_t b = snapshot[j].id.value();
        if (snapshot[i].priority == snapshot[j].priority &&
            (a - 1) / kPerWriter == (b - 1) / kPerWriter && a > b) {
          order_ok = false;
        }
      }
    }
    // Remove every other snapshotted task; each must come back exactly
    // once with the right id.
    for (std::size_t i = 0; i < snapshot.size(); i += 2) {
      if (removed.size() >= kTotal / 2) break;
      auto task = queue.Remove(snapshot[i].id);
      if (!task.has_value()) continue;  // raced with nothing: ok, skip
      EXPECT_EQ(task->id, snapshot[i].id);
      EXPECT_TRUE(removed.insert(task->id.value()).second)
          << "double-removed " << task->id.ToString();
    }
  }
  for (auto& writer : writers) writer.join();
  EXPECT_TRUE(order_ok);
  EXPECT_EQ(submit_failures.load(), 0u);

  // Partition check: removed ∪ still-queued == all submitted ids.
  const auto rest = queue.SnapshotOrdered();
  EXPECT_EQ(removed.size() + rest.size(), kTotal);
  for (const auto& task : rest) {
    EXPECT_EQ(removed.count(task.id.value()), 0u);
    EXPECT_TRUE(queue.Contains(task.id));
  }
}

// ---------- ResourceManager contention ----------

TEST(ResourceManagerTest, ConcurrentTenantsNeverOversubscribe) {
  // Eight tenants race to freeze {10 bundles, 2+2 phones} against a pool
  // that fits exactly four: all-or-nothing freezing must admit exactly
  // four, never tear a partial grant.
  ResourceManager manager(40, {10, 10});
  ResourceRequest request;
  request.logical_bundles = 10;
  request.phones = {2, 2};
  std::atomic<int> successes{0};
  std::vector<std::thread> tenants;
  for (int i = 0; i < 8; ++i) {
    tenants.emplace_back([&] {
      if (manager.Freeze(request).ok()) ++successes;
    });
  }
  for (auto& tenant : tenants) tenant.join();
  EXPECT_EQ(successes.load(), 4);
  const auto snapshot = manager.Snapshot();
  EXPECT_EQ(snapshot.logical_bundles_free, 0u);
  EXPECT_EQ(snapshot.phones_free[0], 2u);
  EXPECT_EQ(snapshot.phones_free[1], 2u);
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(manager.Release(request).ok());
  EXPECT_EQ(manager.Snapshot().logical_bundles_free, 40u);
}

// ---------- Phone cluster contention (grade × locality pools) ----------

device::PhoneJob HighGradeJob(std::uint64_t task, std::size_t phones) {
  device::PhoneJob job;
  job.task = TaskId(task);
  job.grade = DeviceGrade::kHigh;
  job.devices_to_simulate = phones;
  job.computing_phones = phones;
  job.rounds = 1;
  job.round_duration_s = 1.0;
  job.startup_s = 1.0;
  job.aggregation_wait_s = 0.0;
  return job;
}

TEST(PhoneContentionTest, OverlappingPoolsNeverDoubleBook) {
  // Paper cluster: 4 local + 13 MSP High phones. Task 1 drains the
  // preferred local pool; task 2's overlapping request must overflow to
  // MSP phones without ever double-booking, and completion must return
  // each phone to its own (grade, locality) free-list.
  sim::EventLoop loop;
  device::PhoneMgr mgr(loop);
  mgr.RegisterFleet(device::MakeLocalFleet(4, 6, 42, 0));
  mgr.RegisterFleet(device::MakeMspFleet(13, 7, 43, 1000));
  ASSERT_EQ(mgr.CountIdle(DeviceGrade::kHigh), 17u);

  const auto first = mgr.SubmitJob(HighGradeJob(1, 4));
  ASSERT_TRUE(first.ok());
  const auto second = mgr.SubmitJob(HighGradeJob(2, 6));
  ASSERT_TRUE(second.ok());
  std::set<std::uint64_t> booked;
  for (PhoneId id : first->computing) {
    EXPECT_LT(id.value(), 1000u);  // local pool preferred
    EXPECT_TRUE(booked.insert(id.value()).second) << "double-booked";
  }
  for (PhoneId id : second->computing) {
    EXPECT_GE(id.value(), 1000u);  // local pool exhausted → MSP
    EXPECT_TRUE(booked.insert(id.value()).second) << "double-booked";
  }
  EXPECT_EQ(mgr.CountIdle(DeviceGrade::kHigh), 7u);

  loop.Run();  // both jobs complete; phones released
  EXPECT_EQ(mgr.CountIdle(DeviceGrade::kHigh), 17u);

  // Released to the CORRECT free-list: a third job prefers local again
  // and gets exactly the four phones task 1 held.
  const auto third = mgr.SubmitJob(HighGradeJob(3, 4));
  ASSERT_TRUE(third.ok());
  std::set<std::uint64_t> first_ids, third_ids;
  for (PhoneId id : first->computing) first_ids.insert(id.value());
  for (PhoneId id : third->computing) third_ids.insert(id.value());
  EXPECT_EQ(first_ids, third_ids);
  loop.Run();

  // CountersFor attributes work to the phones each task owned: the local
  // four ran two jobs (tasks 1 and 3), the MSP six ran one (task 2), and
  // phones no task touched ran none.
  for (PhoneId id : first->computing) {
    const auto counters = mgr.CountersFor(id);
    ASSERT_TRUE(counters.has_value());
    EXPECT_EQ(counters->jobs_assigned, 2u);
    EXPECT_GE(counters->rounds_completed, 2u);
  }
  for (PhoneId id : second->computing) {
    const auto counters = mgr.CountersFor(id);
    ASSERT_TRUE(counters.has_value());
    EXPECT_EQ(counters->jobs_assigned, 1u);
    EXPECT_GE(counters->rounds_completed, 1u);
  }
  std::size_t untouched = 0;
  for (std::uint64_t raw = 0; raw < 2000; ++raw) {
    if (booked.count(raw) != 0) continue;
    const auto counters = mgr.CountersFor(PhoneId(raw));
    if (!counters.has_value()) continue;  // unregistered id
    EXPECT_EQ(counters->jobs_assigned, 0u);
    ++untouched;
  }
  EXPECT_EQ(untouched, 30u - booked.size());
}

}  // namespace
}  // namespace simdc::sched
