// Unit tests for the synthetic Avazu-like dataset generator.
#include <gtest/gtest.h>

#include <set>

#include "data/schema.h"
#include "data/sharding.h"
#include "data/synth_avazu.h"

namespace simdc::data {
namespace {

SynthConfig SmallConfig() {
  SynthConfig config;
  config.num_devices = 200;
  config.records_per_device_mean = 20;
  config.num_test_devices = 20;
  config.hash_dim = 1u << 14;
  config.seed = 7;
  return config;
}

TEST(SchemaTest, HashFeatureStaysInRange) {
  for (std::uint32_t f = 0; f < kAvazuFields.size(); ++f) {
    for (std::uint32_t v = 0; v < 100; ++v) {
      EXPECT_LT(HashFeature(f, v, 4096), 4096u);
    }
  }
}

TEST(SchemaTest, HashFeatureSeparatesFields) {
  // Same value in different fields should almost never collide.
  int collisions = 0;
  for (std::uint32_t v = 0; v < 500; ++v) {
    if (HashFeature(0, v, 1u << 16) == HashFeature(1, v, 1u << 16)) {
      ++collisions;
    }
  }
  EXPECT_LE(collisions, 2);
}

TEST(SynthAvazuTest, DeterministicInSeed) {
  const auto a = GenerateSyntheticAvazu(SmallConfig());
  const auto b = GenerateSyntheticAvazu(SmallConfig());
  ASSERT_EQ(a.devices.size(), b.devices.size());
  ASSERT_EQ(a.TotalExamples(), b.TotalExamples());
  for (std::size_t d = 0; d < a.devices.size(); ++d) {
    ASSERT_EQ(a.devices[d].examples.size(), b.devices[d].examples.size());
    for (std::size_t e = 0; e < a.devices[d].examples.size(); ++e) {
      EXPECT_EQ(a.devices[d].examples[e].features,
                b.devices[d].examples[e].features);
      EXPECT_EQ(a.devices[d].examples[e].label, b.devices[d].examples[e].label);
    }
  }
}

TEST(SynthAvazuTest, DifferentSeedsDiffer) {
  auto config = SmallConfig();
  const auto a = GenerateSyntheticAvazu(config);
  config.seed = 8;
  const auto b = GenerateSyntheticAvazu(config);
  EXPECT_NE(a.TotalExamples(), b.TotalExamples());
}

TEST(SynthAvazuTest, ShapeMatchesConfig) {
  const auto dataset = GenerateSyntheticAvazu(SmallConfig());
  EXPECT_EQ(dataset.devices.size(), 200u);
  EXPECT_EQ(dataset.hash_dim, 1u << 14);
  EXPECT_FALSE(dataset.test_set.empty());
  for (const auto& device : dataset.devices) {
    EXPECT_FALSE(device.examples.empty());
    for (const auto& example : device.examples) {
      EXPECT_EQ(example.features.size(), kFeaturesPerExample);
      for (std::uint32_t idx : example.features) {
        EXPECT_LT(idx, dataset.hash_dim);
      }
      EXPECT_TRUE(example.label == 0.0f || example.label == 1.0f);
    }
  }
}

TEST(SynthAvazuTest, DeviceIdsAreUniqueAndSequential) {
  const auto dataset = GenerateSyntheticAvazu(SmallConfig());
  std::set<DeviceId> ids;
  for (const auto& device : dataset.devices) ids.insert(device.device);
  EXPECT_EQ(ids.size(), dataset.devices.size());
}

TEST(SynthAvazuTest, GlobalCtrNearTarget) {
  auto config = SmallConfig();
  config.num_devices = 1000;
  config.distribution = LabelDistribution::kIid;
  const auto dataset = GenerateSyntheticAvazu(config);
  EXPECT_NEAR(dataset.GlobalPositiveRate(), config.global_ctr, 0.03);
}

TEST(SynthAvazuTest, NaturalModeHasHeterogeneousCtr) {
  auto config = SmallConfig();
  config.distribution = LabelDistribution::kNatural;
  const auto dataset = GenerateSyntheticAvazu(config);
  double lo = 1.0, hi = 0.0;
  for (const auto& device : dataset.devices) {
    lo = std::min(lo, device.true_ctr);
    hi = std::max(hi, device.true_ctr);
  }
  EXPECT_LT(lo, 0.10);  // spread on both sides of 0.17
  EXPECT_GT(hi, 0.30);
}

TEST(SynthAvazuTest, PolarizedModeSplitsDevices) {
  auto config = SmallConfig();
  config.distribution = LabelDistribution::kPolarized;
  config.polarized_positive_fraction = 0.7;
  const auto dataset = GenerateSyntheticAvazu(config);
  std::size_t positive_heavy = 0, negative_heavy = 0;
  for (const auto& device : dataset.devices) {
    if (device.true_ctr > 0.5) {
      ++positive_heavy;
    } else {
      ++negative_heavy;
    }
  }
  // 70% of 200 = 140 positive-heavy devices (Fig. 11b setup).
  EXPECT_EQ(positive_heavy, 140u);
  EXPECT_EQ(negative_heavy, 60u);
}

TEST(SynthAvazuTest, PolarizedLabelsReflectCtr) {
  auto config = SmallConfig();
  config.distribution = LabelDistribution::kPolarized;
  config.records_per_device_mean = 50;
  const auto dataset = GenerateSyntheticAvazu(config);
  // Empirical positive rate of positive-heavy devices must far exceed the
  // negative-heavy ones.
  double pos_rate_sum = 0.0, neg_rate_sum = 0.0;
  std::size_t pos_n = 0, neg_n = 0;
  for (const auto& device : dataset.devices) {
    std::size_t pos = 0;
    for (const auto& e : device.examples) pos += e.label > 0.5f;
    const double rate =
        static_cast<double>(pos) / static_cast<double>(device.examples.size());
    if (device.true_ctr > 0.5) {
      pos_rate_sum += rate;
      ++pos_n;
    } else {
      neg_rate_sum += rate;
      ++neg_n;
    }
  }
  EXPECT_GT(pos_rate_sum / static_cast<double>(pos_n), 0.55);
  EXPECT_LT(neg_rate_sum / static_cast<double>(neg_n), 0.25);
}

TEST(SynthAvazuTest, ResponseDelayNonNegative) {
  const auto dataset = GenerateSyntheticAvazu(SmallConfig());
  for (const auto& device : dataset.devices) {
    EXPECT_GE(device.response_delay_s, 0.0);
  }
}

TEST(SynthAvazuTest, RejectsBadConfig) {
  SynthConfig config;
  config.num_devices = 0;
  EXPECT_THROW(GenerateSyntheticAvazu(config), std::invalid_argument);
  config.num_devices = 10;
  config.hash_dim = 16;  // too small
  EXPECT_THROW(GenerateSyntheticAvazu(config), std::invalid_argument);
}

TEST(RepartitionIidTest, PreservesTotalsAndShardSizes) {
  auto config = SmallConfig();
  config.distribution = LabelDistribution::kPolarized;
  const auto original = GenerateSyntheticAvazu(config);
  const auto iid = RepartitionIid(original, 99);
  EXPECT_EQ(iid.devices.size(), original.devices.size());
  EXPECT_EQ(iid.TotalExamples(), original.TotalExamples());
  EXPECT_EQ(iid.test_set.size(), original.test_set.size());
  for (std::size_t d = 0; d < iid.devices.size(); ++d) {
    EXPECT_EQ(iid.devices[d].examples.size(),
              original.devices[d].examples.size());
    EXPECT_EQ(iid.devices[d].device, original.devices[d].device);
  }
}

TEST(RepartitionIidTest, ShardsBecomeHomogeneous) {
  auto config = SmallConfig();
  config.num_devices = 100;
  config.records_per_device_mean = 100;
  config.distribution = LabelDistribution::kPolarized;
  const auto original = GenerateSyntheticAvazu(config);
  const auto iid = RepartitionIid(original, 99);
  const double global = iid.GlobalPositiveRate();
  // After IID repartition, per-shard positive rates concentrate near the
  // global rate; in the polarized original they are bimodal.
  std::size_t near_global = 0;
  for (const auto& device : iid.devices) {
    std::size_t pos = 0;
    for (const auto& e : device.examples) pos += e.label > 0.5f;
    const double rate =
        static_cast<double>(pos) / static_cast<double>(device.examples.size());
    if (std::abs(rate - global) < 0.15) ++near_global;
  }
  EXPECT_GT(near_global, 85u);  // >85% of shards close to global
}

// ---------- Shard partitioning ----------

TEST(ShardingTest, PartitionCoversContiguouslyWithNearEqualSizes) {
  for (const std::size_t n : {1u, 7u, 100u, 101u, 4096u}) {
    for (const std::size_t s : {1u, 2u, 3u, 4u, 8u}) {
      const auto ranges = PartitionDevices(n, s);
      ASSERT_EQ(ranges.size(), std::min<std::size_t>(s, n));
      std::size_t cursor = 0;
      std::size_t lo = n, hi = 0;
      for (const auto& range : ranges) {
        EXPECT_EQ(range.begin, cursor) << "gap/overlap at n=" << n;
        EXPECT_GT(range.size(), 0u);
        cursor = range.end;
        lo = std::min(lo, range.size());
        hi = std::max(hi, range.size());
      }
      EXPECT_EQ(cursor, n);
      EXPECT_LE(hi - lo, 1u) << "unbalanced at n=" << n << " s=" << s;
    }
  }
}

TEST(ShardingTest, ShardOfMatchesRanges) {
  for (const std::size_t n : {1u, 5u, 64u, 101u}) {
    for (const std::size_t s : {1u, 2u, 4u, 8u, 200u}) {
      const auto ranges = PartitionDevices(n, s);
      for (std::size_t device = 0; device < n; ++device) {
        const std::size_t shard = ShardOf(device, n, s);
        ASSERT_LT(shard, ranges.size());
        EXPECT_TRUE(ranges[shard].contains(device))
            << "device " << device << " n=" << n << " s=" << s;
      }
    }
  }
}

TEST(ShardingTest, ClampsShardCountAndValidates) {
  EXPECT_EQ(PartitionDevices(3, 0).size(), 1u);    // 0 → one fleet
  EXPECT_EQ(PartitionDevices(3, 100).size(), 3u);  // never an empty shard
  EXPECT_TRUE(PartitionDevices(0, 4).empty());
  EXPECT_THROW(ShardOf(5, 5, 2), std::invalid_argument);
}

TEST(ShardingTest, MoreShardsThanDevicesGivesSingletons) {
  // 3 devices over 100 requested fleets: exactly one device per shard, and
  // ShardOf agrees with the clamped partition at every index.
  const auto ranges = PartitionDevices(3, 100);
  ASSERT_EQ(ranges.size(), 3u);
  for (std::size_t device = 0; device < 3; ++device) {
    EXPECT_EQ(ranges[device].begin, device);
    EXPECT_EQ(ranges[device].size(), 1u);
    EXPECT_EQ(ShardOf(device, 3, 100), device);
  }
}

TEST(ShardingTest, ZeroDevicesHasNoShardsAndRejectsLookups) {
  EXPECT_TRUE(PartitionDevices(0, 1).empty());
  EXPECT_TRUE(PartitionDevices(0, 0).empty());
  EXPECT_THROW(ShardOf(0, 0, 1), std::invalid_argument);
}

TEST(ShardingTest, MillionDeviceNonDivisibleRanges) {
  // The 1M ladder rung over 7 fleets: 1,000,000 = 7·142,857 + 1, so the
  // first shard takes the one-device remainder and boundaries stay exact.
  constexpr std::size_t kDevices = 1'000'000;
  constexpr std::size_t kShards = 7;
  const auto ranges = PartitionDevices(kDevices, kShards);
  ASSERT_EQ(ranges.size(), kShards);
  EXPECT_EQ(ranges.front().size(), 142'858u);
  EXPECT_EQ(ranges.back().size(), 142'857u);
  EXPECT_EQ(ranges.back().end, kDevices);
  std::size_t covered = 0;
  for (const auto& range : ranges) covered += range.size();
  EXPECT_EQ(covered, kDevices);
  // Spot-check ShardOf against every range boundary (first/last member),
  // where the remainder arithmetic is easiest to get wrong.
  for (std::size_t s = 0; s < kShards; ++s) {
    EXPECT_EQ(ShardOf(ranges[s].begin, kDevices, kShards), s);
    EXPECT_EQ(ShardOf(ranges[s].end - 1, kDevices, kShards), s);
  }
  EXPECT_THROW(ShardOf(kDevices, kDevices, kShards), std::invalid_argument);
}

TEST(ShardingTest, DatasetOverloadUsesDeviceCount) {
  auto config = SmallConfig();
  config.num_devices = 10;
  const auto dataset = GenerateSyntheticAvazu(config);
  const auto ranges = PartitionDevices(dataset, 4);
  ASSERT_EQ(ranges.size(), 4u);
  EXPECT_EQ(ranges.back().end, dataset.devices.size());
}

}  // namespace
}  // namespace simdc::data
