// Unit tests for the cloud services: blob storage, metrics database,
// aggregation service with both triggers.
#include <gtest/gtest.h>

#include "cloud/aggregation.h"
#include "cloud/database.h"
#include "cloud/storage.h"
#include "ml/lr_model.h"
#include "sim/event_loop.h"

namespace simdc::cloud {
namespace {

std::vector<std::byte> Bytes(std::initializer_list<int> values) {
  std::vector<std::byte> out;
  for (int v : values) out.push_back(static_cast<std::byte>(v));
  return out;
}

// ---------- BlobStore ----------

TEST(BlobStoreTest, PutGetDelete) {
  BlobStore store;
  const BlobId id = store.Put(Bytes({1, 2, 3}));
  EXPECT_TRUE(store.Contains(id));
  auto blob = store.Get(id);
  ASSERT_TRUE(blob.ok());
  EXPECT_EQ(blob->size(), 3u);
  EXPECT_TRUE(store.Delete(id).ok());
  EXPECT_FALSE(store.Contains(id));
  EXPECT_FALSE(store.Get(id).ok());
  EXPECT_FALSE(store.Delete(id).ok());
}

TEST(BlobStoreTest, DistinctIds) {
  BlobStore store;
  const BlobId a = store.Put(Bytes({1}));
  const BlobId b = store.Put(Bytes({1}));
  EXPECT_NE(a, b);
  EXPECT_EQ(store.blob_count(), 2u);
}

TEST(BlobStoreTest, ByteAccounting) {
  BlobStore store;
  const BlobId a = store.Put(Bytes({1, 2, 3, 4}));
  store.Put(Bytes({5, 6}));
  EXPECT_EQ(store.total_bytes(), 6u);
  EXPECT_EQ(store.bytes_written(), 6u);
  (void)store.Get(a);
  EXPECT_EQ(store.bytes_read(), 4u);
  ASSERT_TRUE(store.Delete(a).ok());
  EXPECT_EQ(store.total_bytes(), 2u);
  EXPECT_EQ(store.bytes_written(), 6u);  // cumulative
}

// ---------- MetricsDatabase ----------

device::PerfSample Sample(TaskId task, PhoneId phone, double t_s,
                          device::ApkStage stage, double current_ma,
                          std::int64_t bandwidth) {
  device::PerfSample s;
  s.task = task;
  s.phone = phone;
  s.time = Seconds(t_s);
  s.stage = stage;
  s.current_ua = -static_cast<std::int64_t>(current_ma * 1000);
  s.voltage_mv = 3850;
  s.cpu_percent = 5.0;
  s.memory_kb = 30000;
  s.bandwidth_bytes = bandwidth;
  return s;
}

TEST(MetricsDatabaseTest, QueryFiltersByTaskAndPhone) {
  MetricsDatabase db;
  db.Record(Sample(TaskId(1), PhoneId(1), 0, device::ApkStage::kNoApk, 50, 0));
  db.Record(Sample(TaskId(1), PhoneId(2), 0, device::ApkStage::kNoApk, 50, 0));
  db.Record(Sample(TaskId(2), PhoneId(1), 0, device::ApkStage::kNoApk, 50, 0));
  EXPECT_EQ(db.QueryTask(TaskId(1)).size(), 2u);
  EXPECT_EQ(db.QueryPhone(TaskId(1), PhoneId(2)).size(), 1u);
  EXPECT_EQ(db.sample_count(), 3u);
}

TEST(MetricsDatabaseTest, StageAggregationIntegratesEnergy) {
  MetricsDatabase db;
  // 10 samples 1 s apart at 360 mA → 360 mA · 10 s = 1 mAh.
  for (int i = 0; i <= 10; ++i) {
    db.Record(Sample(TaskId(1), PhoneId(1), i, device::ApkStage::kTraining,
                     360.0, 1024 * i));
  }
  const auto stages = db.AggregateStages(TaskId(1), PhoneId(1));
  ASSERT_EQ(stages.size(), 1u);
  EXPECT_EQ(stages[0].stage, device::ApkStage::kTraining);
  EXPECT_NEAR(stages[0].energy_mah, 1.1, 0.05);  // 11 samples × 1 s
  EXPECT_NEAR(stages[0].comm_kb, 10.0, 0.01);
  EXPECT_EQ(stages[0].samples, 11u);
}

TEST(MetricsDatabaseTest, AverageStagesAcrossPhones) {
  MetricsDatabase db;
  for (int phone = 1; phone <= 2; ++phone) {
    const double ma = phone == 1 ? 100.0 : 300.0;
    for (int i = 0; i <= 5; ++i) {
      db.Record(Sample(TaskId(1), PhoneId(phone), i,
                       device::ApkStage::kTraining, ma, 0));
    }
  }
  const auto avg = db.AverageStages(TaskId(1), {PhoneId(1), PhoneId(2)});
  ASSERT_EQ(avg.size(), 1u);
  // Mean of per-phone energies: (100+300)/2 mA over 6 s.
  EXPECT_NEAR(avg[0].energy_mah, 200.0 * 6.0 / 3600.0, 0.01);
}

TEST(MetricsDatabaseTest, ScalarSeries) {
  MetricsDatabase db;
  db.RecordScalar("loss", Seconds(1), 0.9);
  db.RecordScalar("loss", Seconds(2), 0.7);
  db.RecordScalar("acc", Seconds(1), 0.5);
  const auto loss = db.QueryScalar("loss");
  ASSERT_EQ(loss.size(), 2u);
  EXPECT_DOUBLE_EQ(loss[1].second, 0.7);
  EXPECT_TRUE(db.QueryScalar("nope").empty());
}

// ---------- AggregationService ----------

class AggregationTest : public ::testing::Test {
 protected:
  static constexpr std::uint32_t kDim = 16;

  flow::Message Upload(BlobStore& store, float weight0, std::size_t samples,
                       std::uint64_t id) {
    ml::LrModel model(kDim);
    model.weights()[0] = weight0;
    flow::Message m;
    m.id = MessageId(id);
    m.task = TaskId(1);
    m.device = DeviceId(id);
    m.payload = store.Put(model.ToBytes());
    m.sample_count = samples;
    return m;
  }

  sim::EventLoop loop_;
  BlobStore store_;
};

TEST_F(AggregationTest, SampleThresholdTriggers) {
  AggregationConfig config;
  config.model_dim = kDim;
  config.trigger = AggregationTrigger::kSampleThreshold;
  config.sample_threshold = 30;
  AggregationService service(loop_, store_, config);
  service.Start();

  service.Deliver(Upload(store_, 1.0f, 10, 1), 0);
  service.Deliver(Upload(store_, 2.0f, 10, 2), 0);
  EXPECT_EQ(service.rounds_completed(), 0u);  // 20 < 30
  service.Deliver(Upload(store_, 3.0f, 10, 3), 0);
  ASSERT_EQ(service.rounds_completed(), 1u);
  EXPECT_NEAR(service.global_model().weights()[0], 2.0, 1e-6);
  EXPECT_EQ(service.history()[0].clients, 3u);
  EXPECT_EQ(service.history()[0].samples, 30u);
  EXPECT_EQ(service.pending_samples(), 0u);  // aggregator reset
}

TEST_F(AggregationTest, BatchedDeliveryMatchesPerMessage) {
  // One DeliverBatch call crossing the sample threshold mid-batch must
  // produce the same rounds as the equivalent Deliver sequence — and the
  // round timestamp must be the *triggering message's* arrival, not the
  // batch event's time.
  auto run = [&](bool batched) {
    BlobStore store;
    AggregationConfig config;
    config.model_dim = kDim;
    config.trigger = AggregationTrigger::kSampleThreshold;
    config.sample_threshold = 30;
    AggregationService service(loop_, store, config);
    std::vector<flow::Message> messages;
    std::vector<SimTime> arrivals;
    for (std::uint64_t i = 0; i < 5; ++i) {
      messages.push_back(
          Upload(store, static_cast<float>(i + 1), 10, i + 1));
      arrivals.push_back(Seconds(1.0 + static_cast<double>(i)));
    }
    if (batched) {
      service.DeliverBatch(messages, arrivals);
    } else {
      for (std::size_t i = 0; i < messages.size(); ++i) {
        service.Deliver(messages[i], arrivals[i]);
      }
    }
    return service.history();
  };
  const auto batched = run(true);
  const auto per_message = run(false);
  ASSERT_EQ(batched.size(), 1u);
  ASSERT_EQ(per_message.size(), 1u);
  EXPECT_EQ(batched[0].time, Seconds(3.0));  // third message triggered
  EXPECT_EQ(batched[0].time, per_message[0].time);
  EXPECT_EQ(batched[0].clients, per_message[0].clients);
  EXPECT_EQ(batched[0].samples, per_message[0].samples);
}

TEST_F(AggregationTest, ScheduledTriggerFiresPeriodically) {
  AggregationConfig config;
  config.model_dim = kDim;
  config.trigger = AggregationTrigger::kScheduled;
  config.schedule_period = Seconds(10.0);
  config.max_rounds = 3;
  AggregationService service(loop_, store_, config);
  service.Start();

  // Deliver a couple of updates before each tick.
  for (int round = 0; round < 3; ++round) {
    loop_.ScheduleAt(Seconds(10.0 * round + 1),
                     [&, round] {
                       service.Deliver(
                           Upload(store_, static_cast<float>(round), 5,
                                  static_cast<std::uint64_t>(round * 10 + 1)),
                           loop_.Now());
                     });
  }
  loop_.Run();
  EXPECT_EQ(service.rounds_completed(), 3u);
  EXPECT_EQ(service.history()[0].time, Seconds(10.0));
  EXPECT_EQ(service.history()[2].time, Seconds(30.0));
}

TEST_F(AggregationTest, ScheduledTickWithNothingPendingSkips) {
  AggregationConfig config;
  config.model_dim = kDim;
  config.trigger = AggregationTrigger::kScheduled;
  config.schedule_period = Seconds(5.0);
  config.max_rounds = 2;
  AggregationService service(loop_, store_, config);
  service.Start();
  loop_.ScheduleAt(Seconds(6.0), [&] {
    service.Deliver(Upload(store_, 1.0f, 5, 1), loop_.Now());
  });
  loop_.RunUntil(Seconds(30.0));
  // First tick (t=5) had nothing; second tick (t=10) aggregated.
  ASSERT_EQ(service.rounds_completed(), 1u);
  EXPECT_EQ(service.history()[0].time, Seconds(10.0));
  service.Stop();
  loop_.Run();
}

TEST_F(AggregationTest, MissingBlobCountsAsDecodeFailure) {
  AggregationConfig config;
  config.model_dim = kDim;
  AggregationService service(loop_, store_, config);
  flow::Message m;
  m.task = TaskId(1);
  m.payload = BlobId(999);  // never stored
  m.sample_count = 5;
  service.Deliver(m, 0);
  EXPECT_EQ(service.decode_failures(), 1u);
  EXPECT_EQ(service.pending_samples(), 0u);
}

TEST_F(AggregationTest, CorruptBlobRejected) {
  AggregationConfig config;
  config.model_dim = kDim;
  AggregationService service(loop_, store_, config);
  flow::Message m;
  m.task = TaskId(1);
  m.payload = store_.Put(Bytes({1, 2, 3}));
  m.sample_count = 5;
  service.Deliver(m, 0);
  EXPECT_EQ(service.decode_failures(), 1u);
}

TEST_F(AggregationTest, WrongDimensionRejected) {
  AggregationConfig config;
  config.model_dim = kDim;
  AggregationService service(loop_, store_, config);
  ml::LrModel other(kDim * 2);
  flow::Message m;
  m.task = TaskId(1);
  m.payload = store_.Put(other.ToBytes());
  m.sample_count = 5;
  service.Deliver(m, 0);
  EXPECT_EQ(service.decode_failures(), 1u);
}

TEST_F(AggregationTest, PublishesModelBlobAndCallback) {
  AggregationConfig config;
  config.model_dim = kDim;
  config.trigger = AggregationTrigger::kSampleThreshold;
  config.sample_threshold = 5;
  AggregationService service(loop_, store_, config);
  std::size_t callbacks = 0;
  service.set_on_aggregate(
      [&](const AggregationRecord& record, const ml::LrModel& model) {
        ++callbacks;
        EXPECT_TRUE(store_.Contains(record.model_blob));
        EXPECT_EQ(model.dim(), kDim);
      });
  service.Deliver(Upload(store_, 4.0f, 5, 1), 0);
  EXPECT_EQ(callbacks, 1u);
}

TEST_F(AggregationTest, StopIgnoresFurtherDeliveries) {
  AggregationConfig config;
  config.model_dim = kDim;
  config.trigger = AggregationTrigger::kSampleThreshold;
  config.sample_threshold = 1;
  AggregationService service(loop_, store_, config);
  service.Stop();
  service.Deliver(Upload(store_, 4.0f, 5, 1), 0);
  EXPECT_EQ(service.rounds_completed(), 0u);
  EXPECT_EQ(service.messages_received(), 0u);
}

TEST_F(AggregationTest, MaxRoundsHonored) {
  AggregationConfig config;
  config.model_dim = kDim;
  config.trigger = AggregationTrigger::kSampleThreshold;
  config.sample_threshold = 1;
  config.max_rounds = 2;
  AggregationService service(loop_, store_, config);
  for (std::uint64_t i = 0; i < 5; ++i) {
    service.Deliver(Upload(store_, 1.0f, 1, i), 0);
  }
  EXPECT_EQ(service.rounds_completed(), 2u);
}

}  // namespace
}  // namespace simdc::cloud
