// Unit tests for the cloud services: blob storage, metrics database,
// aggregation service with both triggers and both payload planes.
#include <gtest/gtest.h>

#include <atomic>
#include <bit>
#include <cstring>
#include <thread>

#include "cloud/aggregation.h"
#include "common/thread_pool.h"
#include "cloud/database.h"
#include "cloud/payload_decoder.h"
#include "cloud/storage.h"
#include "ml/lr_model.h"
#include "sim/event_loop.h"

namespace simdc::cloud {
namespace {

std::vector<std::byte> Bytes(std::initializer_list<int> values) {
  std::vector<std::byte> out;
  for (int v : values) out.push_back(static_cast<std::byte>(v));
  return out;
}

// ---------- BlobStore ----------

TEST(BlobStoreTest, PutGetDelete) {
  BlobStore store;
  const BlobId id = store.Put(Bytes({1, 2, 3}));
  EXPECT_TRUE(store.Contains(id));
  auto blob = store.Get(id);
  ASSERT_TRUE(blob.ok());
  EXPECT_EQ(blob->size(), 3u);
  EXPECT_TRUE(store.Delete(id).ok());
  EXPECT_FALSE(store.Contains(id));
  EXPECT_FALSE(store.Get(id).ok());
  EXPECT_FALSE(store.Delete(id).ok());
}

TEST(BlobStoreTest, DistinctIds) {
  BlobStore store;
  const BlobId a = store.Put(Bytes({1}));
  const BlobId b = store.Put(Bytes({1}));
  EXPECT_NE(a, b);
  EXPECT_EQ(store.blob_count(), 2u);
}

TEST(BlobStoreTest, ByteAccounting) {
  BlobStore store;
  const BlobId a = store.Put(Bytes({1, 2, 3, 4}));
  store.Put(Bytes({5, 6}));
  EXPECT_EQ(store.total_bytes(), 6u);
  EXPECT_EQ(store.bytes_written(), 6u);
  (void)store.Get(a);
  EXPECT_EQ(store.bytes_read(), 4u);
  ASSERT_TRUE(store.Delete(a).ok());
  EXPECT_EQ(store.total_bytes(), 2u);
  EXPECT_EQ(store.bytes_written(), 6u);  // cumulative
}

TEST(BlobStoreTest, GetSharedAliasesWithoutCopy) {
  BlobStore store;
  const BlobId id = store.Put(Bytes({1, 2, 3, 4}));
  auto a = store.GetShared(id);
  auto b = store.GetShared(id);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  // Both reads alias the one stored buffer — the whole point of the
  // shared-ownership hot path.
  EXPECT_EQ(a->data(), b->data());
  EXPECT_EQ(a->owner(), b->owner());
  EXPECT_EQ(a->size(), 4u);
  EXPECT_EQ(store.bytes_read(), 8u);  // still accounted per read
  EXPECT_FALSE(store.GetShared(BlobId(99)).ok());
}

TEST(BlobStoreTest, SharedBlobSurvivesDelete) {
  // A reader holding a SharedBlob must keep its bytes valid (and
  // bit-stable) across a concurrent Delete — the decode plane may still
  // be chewing on a blob the serial plane garbage-collects.
  BlobStore store;
  const BlobId id = store.Put(Bytes({7, 8, 9}));
  auto blob = store.GetShared(id);
  ASSERT_TRUE(blob.ok());
  ASSERT_TRUE(store.Delete(id).ok());
  EXPECT_FALSE(store.Contains(id));
  ASSERT_EQ(blob->size(), 3u);
  EXPECT_EQ((*blob)[0], static_cast<std::byte>(7));
}

TEST(BlobStoreTest, PutPooledRoundTrip) {
  BlobStore store;
  const auto bytes = Bytes({10, 20, 30, 40, 50});
  const BlobId id = store.PutPooled(bytes);
  EXPECT_TRUE(store.Contains(id));
  auto copy = store.Get(id);
  ASSERT_TRUE(copy.ok());
  EXPECT_EQ(*copy, bytes);
  EXPECT_EQ(store.bytes_written(), bytes.size());
  EXPECT_EQ(store.total_bytes(), bytes.size());
  ASSERT_TRUE(store.Delete(id).ok());
  EXPECT_EQ(store.total_bytes(), 0u);
}

TEST(BlobStoreTest, PooledBlobsShareArenaBlocks) {
  // Consecutive pooled puts bump-allocate out of the same slab: one heap
  // block for many blobs is the whole point of the arena path.
  BlobStore store;
  const BlobId a = store.PutPooled(Bytes({1, 2, 3}));
  const BlobId b = store.PutPooled(Bytes({4, 5}));
  EXPECT_EQ(store.arena_blocks_created(), 1u);
  auto sa = store.GetShared(a);
  auto sb = store.GetShared(b);
  ASSERT_TRUE(sa.ok());
  ASSERT_TRUE(sb.ok());
  EXPECT_EQ(sa->owner(), sb->owner());  // same backing slab
  // Deleting one blob leaves its neighbors readable and intact.
  ASSERT_TRUE(store.Delete(a).ok());
  auto again = store.Get(b);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ((*again)[0], static_cast<std::byte>(4));
}

TEST(BlobStoreTest, ReclaimArenaWhileSharedBlobHeld) {
  // The reset-while-held hazard: a reader still holding a SharedBlob into
  // an arena block must keep its bytes valid across Delete + ReclaimArena;
  // the block is only recycled once the last holder lets go.
  BlobStore store;
  const auto bytes = Bytes({42, 43, 44});
  const BlobId id = store.PutPooled(bytes);
  auto held = store.GetShared(id);
  ASSERT_TRUE(held.ok());
  ASSERT_TRUE(store.Delete(id).ok());
  EXPECT_EQ(store.ReclaimArena(), 0u);  // held: must NOT be recycled
  EXPECT_EQ(held->size(), 3u);
  EXPECT_EQ((*held)[0], static_cast<std::byte>(42));
  EXPECT_EQ((*held)[2], static_cast<std::byte>(44));
  *held = SharedBlob();  // drop the last reference
  EXPECT_EQ(store.ReclaimArena(), 1u);
  EXPECT_EQ(store.arena_blocks_recycled(), 1u);
  // The recycled block serves the next pooled put: no new slab.
  (void)store.PutPooled(bytes);
  EXPECT_EQ(store.arena_blocks_created(), 1u);
}

TEST(BlobStoreTest, SharedBlobOutlivesStoreDestruction) {
  SharedBlob standalone;
  SharedBlob pooled;
  {
    BlobStore store;
    auto a = store.GetShared(store.Put(Bytes({1, 2})));
    auto b = store.GetShared(store.PutPooled(Bytes({3, 4})));
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    standalone = *a;
    pooled = *b;
  }
  EXPECT_EQ(standalone[1], static_cast<std::byte>(2));
  EXPECT_EQ(pooled[0], static_cast<std::byte>(3));
}

TEST(BlobStoreConcurrencyTest, ConcurrentPutGetDeleteStress) {
  // N writers Put/Delete while N readers Get/GetShared and decode — the
  // exact concurrency shape of the decoded payload plane (shard workers
  // fetch + decode while the serial plane publishes new globals). Run
  // under ASan/UBSan in CI, this is the data-race gate for BlobStore.
  BlobStore store;
  constexpr int kWriters = 3;
  constexpr int kReaders = 4;
  constexpr int kBlobsPerWriter = 200;
  ml::LrModel model(64);
  model.weights()[0] = 1.5f;
  const auto payload = model.ToBytes();

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> max_id{0};
  std::vector<std::thread> threads;
  threads.reserve(kWriters + kReaders);
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&] {
      for (int i = 0; i < kBlobsPerWriter; ++i) {
        const BlobId id = store.Put(payload);
        std::uint64_t seen = max_id.load(std::memory_order_relaxed);
        while (seen < id.value() &&
               !max_id.compare_exchange_weak(seen, id.value(),
                                             std::memory_order_relaxed)) {
        }
        if (i % 3 == 0) (void)store.Delete(id);
      }
    });
  }
  for (int r = 0; r < kReaders; ++r) {
    threads.emplace_back([&, r] {
      std::uint64_t probe = 1;
      while (!stop.load(std::memory_order_relaxed)) {
        const std::uint64_t ceiling = max_id.load(std::memory_order_relaxed);
        if (ceiling == 0) continue;
        probe = probe % ceiling + 1;
        if (r % 2 == 0) {
          auto blob = store.GetShared(BlobId(probe));
          if (blob.ok()) {
            auto decoded = ml::LrModel::FromBytesShared(blob->span());
            ASSERT_TRUE(decoded.ok());
            ASSERT_EQ((*decoded)->weights()[0], 1.5f);
          }
        } else {
          auto blob = store.Get(BlobId(probe));
          if (blob.ok()) {
            ASSERT_EQ(blob->size(), payload.size());
          }
        }
      }
    });
  }
  for (int w = 0; w < kWriters; ++w) threads[w].join();
  stop.store(true);
  for (std::size_t t = kWriters; t < threads.size(); ++t) threads[t].join();
  // Two thirds of each writer's blobs survive its own deletes.
  EXPECT_GT(store.blob_count(), 0u);
  EXPECT_EQ(store.bytes_written(),
            payload.size() * kWriters * kBlobsPerWriter);
}

// ---------- MetricsDatabase ----------

device::PerfSample Sample(TaskId task, PhoneId phone, double t_s,
                          device::ApkStage stage, double current_ma,
                          std::int64_t bandwidth) {
  device::PerfSample s;
  s.task = task;
  s.phone = phone;
  s.time = Seconds(t_s);
  s.stage = stage;
  s.current_ua = -static_cast<std::int64_t>(current_ma * 1000);
  s.voltage_mv = 3850;
  s.cpu_percent = 5.0;
  s.memory_kb = 30000;
  s.bandwidth_bytes = bandwidth;
  return s;
}

TEST(MetricsDatabaseTest, QueryFiltersByTaskAndPhone) {
  MetricsDatabase db;
  db.Record(Sample(TaskId(1), PhoneId(1), 0, device::ApkStage::kNoApk, 50, 0));
  db.Record(Sample(TaskId(1), PhoneId(2), 0, device::ApkStage::kNoApk, 50, 0));
  db.Record(Sample(TaskId(2), PhoneId(1), 0, device::ApkStage::kNoApk, 50, 0));
  EXPECT_EQ(db.QueryTask(TaskId(1)).size(), 2u);
  EXPECT_EQ(db.QueryPhone(TaskId(1), PhoneId(2)).size(), 1u);
  EXPECT_EQ(db.sample_count(), 3u);
}

TEST(MetricsDatabaseTest, StageAggregationIntegratesEnergy) {
  MetricsDatabase db;
  // 10 samples 1 s apart at 360 mA → 360 mA · 10 s = 1 mAh.
  for (int i = 0; i <= 10; ++i) {
    db.Record(Sample(TaskId(1), PhoneId(1), i, device::ApkStage::kTraining,
                     360.0, 1024 * i));
  }
  const auto stages = db.AggregateStages(TaskId(1), PhoneId(1));
  ASSERT_EQ(stages.size(), 1u);
  EXPECT_EQ(stages[0].stage, device::ApkStage::kTraining);
  EXPECT_NEAR(stages[0].energy_mah, 1.1, 0.05);  // 11 samples × 1 s
  EXPECT_NEAR(stages[0].comm_kb, 10.0, 0.01);
  EXPECT_EQ(stages[0].samples, 11u);
}

TEST(MetricsDatabaseTest, AverageStagesAcrossPhones) {
  MetricsDatabase db;
  for (int phone = 1; phone <= 2; ++phone) {
    const double ma = phone == 1 ? 100.0 : 300.0;
    for (int i = 0; i <= 5; ++i) {
      db.Record(Sample(TaskId(1), PhoneId(phone), i,
                       device::ApkStage::kTraining, ma, 0));
    }
  }
  const auto avg = db.AverageStages(TaskId(1), {PhoneId(1), PhoneId(2)});
  ASSERT_EQ(avg.size(), 1u);
  // Mean of per-phone energies: (100+300)/2 mA over 6 s.
  EXPECT_NEAR(avg[0].energy_mah, 200.0 * 6.0 / 3600.0, 0.01);
}

TEST(MetricsDatabaseTest, ScalarSeries) {
  MetricsDatabase db;
  db.RecordScalar("loss", Seconds(1), 0.9);
  db.RecordScalar("loss", Seconds(2), 0.7);
  db.RecordScalar("acc", Seconds(1), 0.5);
  const auto loss = db.QueryScalar("loss");
  ASSERT_EQ(loss.size(), 2u);
  EXPECT_DOUBLE_EQ(loss[1].second, 0.7);
  EXPECT_TRUE(db.QueryScalar("nope").empty());
}

TEST(MetricsDatabaseTest, ScalarRowsPreserveGlobalInsertionOrder) {
  // Checkpoint replay depends on ScalarRows() returning the rows in the
  // exact order they were recorded, interleaved across series — not
  // grouped by series name.
  MetricsDatabase db;
  db.RecordScalar("loss", Seconds(1), 0.9);
  db.RecordScalar("acc", Seconds(1), 0.5);
  db.RecordScalar("loss", Seconds(2), 0.7);
  db.RecordScalar("acc", Seconds(2), 0.6);
  const auto rows = db.ScalarRows();
  ASSERT_EQ(rows.size(), 4u);
  EXPECT_EQ(db.scalar_row_count(), 4u);
  EXPECT_EQ(rows[0].series, "loss");
  EXPECT_EQ(rows[1].series, "acc");
  EXPECT_EQ(rows[2].series, "loss");
  EXPECT_EQ(rows[3].series, "acc");
  EXPECT_DOUBLE_EQ(rows[2].value, 0.7);
}

TEST(MetricsDatabaseTest, FlushRestoreRoundTrips) {
  MetricsDatabase db;
  db.Record(Sample(TaskId(1), PhoneId(1), 0, device::ApkStage::kTraining,
                   360.0, 1024));
  db.Record(Sample(TaskId(1), PhoneId(2), 1, device::ApkStage::kTraining,
                   200.0, 2048));
  db.RecordScalar("loss", Seconds(1), 0.9);
  db.RecordScalar("loss", Seconds(2), 0.7);
  db.RecordScalar("acc", Seconds(2), 0.6);
  EXPECT_EQ(db.Flush(), 5u);  // 2 samples + 3 scalar rows

  MetricsDatabase restored;
  restored.Restore(db.Samples(), db.ScalarRows());
  EXPECT_EQ(restored.sample_count(), db.sample_count());
  EXPECT_EQ(restored.scalar_row_count(), db.scalar_row_count());
  EXPECT_EQ(restored.QueryTask(TaskId(1)).size(), 2u);
  const auto loss = restored.QueryScalar("loss");
  ASSERT_EQ(loss.size(), 2u);
  EXPECT_EQ(loss[0].first, Seconds(1));
  EXPECT_DOUBLE_EQ(loss[1].second, 0.7);
  const auto again = restored.ScalarRows();
  ASSERT_EQ(again.size(), 3u);
  EXPECT_EQ(again[2].series, "acc");
}

// ---------- AggregationService ----------

class AggregationTest : public ::testing::Test {
 protected:
  static constexpr std::uint32_t kDim = 16;

  flow::Message Upload(BlobStore& store, float weight0, std::size_t samples,
                       std::uint64_t id, std::size_t round = 0) {
    ml::LrModel model(kDim);
    model.weights()[0] = weight0;
    flow::Message m;
    m.id = MessageId(id);
    m.task = TaskId(1);
    m.device = DeviceId(id);
    m.round = round;
    m.payload = store.Put(model.ToBytes());
    m.sample_count = samples;
    return m;
  }

  sim::EventLoop loop_;
  BlobStore store_;
};

TEST_F(AggregationTest, SampleThresholdTriggers) {
  AggregationConfig config;
  config.model_dim = kDim;
  config.trigger = AggregationTrigger::kSampleThreshold;
  config.sample_threshold = 30;
  AggregationService service(loop_, store_, config);
  service.Start();

  service.Deliver(Upload(store_, 1.0f, 10, 1), 0);
  service.Deliver(Upload(store_, 2.0f, 10, 2), 0);
  EXPECT_EQ(service.rounds_completed(), 0u);  // 20 < 30
  service.Deliver(Upload(store_, 3.0f, 10, 3), 0);
  ASSERT_EQ(service.rounds_completed(), 1u);
  EXPECT_NEAR(service.global_model().weights()[0], 2.0, 1e-6);
  EXPECT_EQ(service.history()[0].clients, 3u);
  EXPECT_EQ(service.history()[0].samples, 30u);
  EXPECT_EQ(service.pending_samples(), 0u);  // aggregator reset
}

TEST_F(AggregationTest, BatchedDeliveryMatchesPerMessage) {
  // One DeliverBatch call crossing the sample threshold mid-batch must
  // produce the same rounds as the equivalent Deliver sequence — and the
  // round timestamp must be the *triggering message's* arrival, not the
  // batch event's time.
  auto run = [&](bool batched) {
    BlobStore store;
    AggregationConfig config;
    config.model_dim = kDim;
    config.trigger = AggregationTrigger::kSampleThreshold;
    config.sample_threshold = 30;
    AggregationService service(loop_, store, config);
    std::vector<flow::Message> messages;
    std::vector<SimTime> arrivals;
    for (std::uint64_t i = 0; i < 5; ++i) {
      messages.push_back(
          Upload(store, static_cast<float>(i + 1), 10, i + 1));
      arrivals.push_back(Seconds(1.0 + static_cast<double>(i)));
    }
    if (batched) {
      service.DeliverBatch(messages, arrivals);
    } else {
      for (std::size_t i = 0; i < messages.size(); ++i) {
        service.Deliver(messages[i], arrivals[i]);
      }
    }
    return service.history();
  };
  const auto batched = run(true);
  const auto per_message = run(false);
  ASSERT_EQ(batched.size(), 1u);
  ASSERT_EQ(per_message.size(), 1u);
  EXPECT_EQ(batched[0].time, Seconds(3.0));  // third message triggered
  EXPECT_EQ(batched[0].time, per_message[0].time);
  EXPECT_EQ(batched[0].clients, per_message[0].clients);
  EXPECT_EQ(batched[0].samples, per_message[0].samples);
}

TEST_F(AggregationTest, ScheduledTriggerFiresPeriodically) {
  AggregationConfig config;
  config.model_dim = kDim;
  config.trigger = AggregationTrigger::kScheduled;
  config.schedule_period = Seconds(10.0);
  config.max_rounds = 3;
  AggregationService service(loop_, store_, config);
  service.Start();

  // Deliver a couple of updates before each tick.
  for (int round = 0; round < 3; ++round) {
    loop_.ScheduleAt(Seconds(10.0 * round + 1),
                     [&, round] {
                       service.Deliver(
                           Upload(store_, static_cast<float>(round), 5,
                                  static_cast<std::uint64_t>(round * 10 + 1)),
                           loop_.Now());
                     });
  }
  loop_.Run();
  EXPECT_EQ(service.rounds_completed(), 3u);
  EXPECT_EQ(service.history()[0].time, Seconds(10.0));
  EXPECT_EQ(service.history()[2].time, Seconds(30.0));
}

TEST_F(AggregationTest, ScheduledTickWithNothingPendingSkips) {
  AggregationConfig config;
  config.model_dim = kDim;
  config.trigger = AggregationTrigger::kScheduled;
  config.schedule_period = Seconds(5.0);
  config.max_rounds = 2;
  AggregationService service(loop_, store_, config);
  service.Start();
  loop_.ScheduleAt(Seconds(6.0), [&] {
    service.Deliver(Upload(store_, 1.0f, 5, 1), loop_.Now());
  });
  loop_.RunUntil(Seconds(30.0));
  // First tick (t=5) had nothing; second tick (t=10) aggregated.
  ASSERT_EQ(service.rounds_completed(), 1u);
  EXPECT_EQ(service.history()[0].time, Seconds(10.0));
  service.Stop();
  loop_.Run();
}

TEST_F(AggregationTest, MissingBlobCountsAsDecodeFailure) {
  AggregationConfig config;
  config.model_dim = kDim;
  AggregationService service(loop_, store_, config);
  flow::Message m;
  m.task = TaskId(1);
  m.payload = BlobId(999);  // never stored
  m.sample_count = 5;
  service.Deliver(m, 0);
  EXPECT_EQ(service.decode_failures(), 1u);
  EXPECT_EQ(service.pending_samples(), 0u);
}

TEST_F(AggregationTest, StoreIoErrorBooksAsStoreErrorNotDecodeFailure) {
  // A non-kNotFound store failure (durability-plane I/O fault) must land in
  // store_errors, not decode_failures — the payload exists, the read broke.
  AggregationConfig config;
  config.model_dim = kDim;
  AggregationService service(loop_, store_, config);
  const flow::Message good = Upload(store_, 1.0f, 10, 1);
  const flow::Message faulted = Upload(store_, 2.0f, 10, 2);
  store_.set_read_fault_hook([&](BlobId id) -> Status {
    if (id == faulted.payload) return Unavailable("injected read fault");
    return Status::Ok();
  });

  service.Deliver(faulted, 0);
  EXPECT_EQ(service.store_errors(), 1u);
  EXPECT_EQ(service.decode_failures(), 0u);
  EXPECT_EQ(service.messages_received(), 1u);
  EXPECT_EQ(service.pending_samples(), 0u);  // update dropped, not absorbed

  // Healthy deliveries still flow, and a genuinely missing blob still books
  // as a decode failure alongside the I/O fault.
  service.Deliver(good, 0);
  EXPECT_EQ(service.pending_samples(), 10u);
  flow::Message missing;
  missing.task = TaskId(1);
  missing.payload = BlobId(999);  // never stored
  missing.sample_count = 5;
  service.Deliver(missing, 0);
  EXPECT_EQ(service.store_errors(), 1u);
  EXPECT_EQ(service.decode_failures(), 1u);
}

TEST_F(AggregationTest, DecoderMapsStoreFaultsToDistinctFailures) {
  // BlobModelDecoder must keep the taxonomy the serial side accounts on:
  // kNotFound → kMissingBlob, any other store error → kStoreError.
  const flow::Message ok_msg = Upload(store_, 1.0f, 10, 1);
  const flow::Message faulted = Upload(store_, 2.0f, 10, 2);
  flow::Message missing;
  missing.task = TaskId(1);
  missing.payload = BlobId(999);
  missing.sample_count = 5;
  store_.set_read_fault_hook([&](BlobId id) -> Status {
    if (id == faulted.payload) return Unavailable("injected read fault");
    return Status::Ok();
  });

  BlobModelDecoder decoder(store_);
  const flow::DecodedUpdate decoded = decoder.Decode(ok_msg);
  EXPECT_TRUE(decoded.decoded());
  EXPECT_EQ(decoded.failure, flow::DecodedUpdate::Failure::kNone);

  const flow::DecodedUpdate io_fault = decoder.Decode(faulted);
  EXPECT_FALSE(io_fault.decoded());
  EXPECT_EQ(io_fault.failure, flow::DecodedUpdate::Failure::kStoreError);
  EXPECT_EQ(io_fault.error.error().code(), ErrorCode::kUnavailable);

  const flow::DecodedUpdate gone = decoder.Decode(missing);
  EXPECT_FALSE(gone.decoded());
  EXPECT_EQ(gone.failure, flow::DecodedUpdate::Failure::kMissingBlob);

  // The decoded plane books them into the same counters as the legacy one.
  AggregationConfig config;
  config.model_dim = kDim;
  AggregationService service(loop_, store_, config);
  const std::vector<flow::DecodedUpdate> updates = {decoded, io_fault, gone};
  const std::vector<SimTime> arrivals = {0, 0, 0};
  service.DeliverDecodedBatch(updates, arrivals);
  EXPECT_EQ(service.messages_received(), 3u);
  EXPECT_EQ(service.store_errors(), 1u);
  EXPECT_EQ(service.decode_failures(), 1u);
  EXPECT_EQ(service.pending_samples(), 10u);
}

TEST_F(AggregationTest, CorruptBlobRejected) {
  AggregationConfig config;
  config.model_dim = kDim;
  AggregationService service(loop_, store_, config);
  flow::Message m;
  m.task = TaskId(1);
  m.payload = store_.Put(Bytes({1, 2, 3}));
  m.sample_count = 5;
  service.Deliver(m, 0);
  EXPECT_EQ(service.decode_failures(), 1u);
}

TEST_F(AggregationTest, WrongDimensionRejected) {
  AggregationConfig config;
  config.model_dim = kDim;
  AggregationService service(loop_, store_, config);
  ml::LrModel other(kDim * 2);
  flow::Message m;
  m.task = TaskId(1);
  m.payload = store_.Put(other.ToBytes());
  m.sample_count = 5;
  service.Deliver(m, 0);
  EXPECT_EQ(service.decode_failures(), 1u);
}

TEST_F(AggregationTest, PublishesModelBlobAndCallback) {
  AggregationConfig config;
  config.model_dim = kDim;
  config.trigger = AggregationTrigger::kSampleThreshold;
  config.sample_threshold = 5;
  AggregationService service(loop_, store_, config);
  std::size_t callbacks = 0;
  service.set_on_aggregate(
      [&](const AggregationRecord& record, const ml::LrModel& model) {
        ++callbacks;
        EXPECT_TRUE(store_.Contains(record.model_blob));
        EXPECT_EQ(model.dim(), kDim);
      });
  service.Deliver(Upload(store_, 4.0f, 5, 1), 0);
  EXPECT_EQ(callbacks, 1u);
}

// ---------- Decoded payload plane ----------

/// Same fixture, decoded-plane cases: the serial service receives
/// DecodedUpdates (payloads fetched + decoded upstream) and must keep
/// every counter and every bit identical to the legacy decode-in-handler
/// plane. Pinned by name in the CI sanitizer job.
class AggregationDecodedTest : public AggregationTest {
 protected:
  /// Pushes `messages` through a fresh service on the given plane and
  /// returns it for inspection.
  struct Outcome {
    std::size_t received = 0;
    std::size_t decode_failures = 0;
    std::size_t stale_rejections = 0;
    std::size_t rounds = 0;
    std::vector<AggregationRecord> history;
    std::vector<float> weights;
  };

  Outcome Run(BlobStore& store, const std::vector<flow::Message>& messages,
              const std::vector<SimTime>& arrivals, bool decoded,
              bool reject_stale) {
    AggregationConfig config;
    config.model_dim = kDim;
    config.trigger = AggregationTrigger::kSampleThreshold;
    config.sample_threshold = 30;
    config.reject_stale = reject_stale;
    AggregationService service(loop_, store, config);
    if (decoded) {
      BlobModelDecoder decoder(store);
      std::vector<flow::DecodedUpdate> updates;
      updates.reserve(messages.size());
      for (const auto& message : messages) {
        updates.push_back(decoder.Decode(message));
      }
      service.DeliverDecodedBatch(updates, arrivals);
    } else {
      service.DeliverBatch(messages, arrivals);
    }
    Outcome out;
    out.received = service.messages_received();
    out.decode_failures = service.decode_failures();
    out.stale_rejections = service.stale_rejections();
    out.rounds = service.rounds_completed();
    out.history = service.history();
    out.weights.assign(service.global_model().weights().begin(),
                       service.global_model().weights().end());
    return out;
  }

  static void ExpectSameOutcome(const Outcome& a, const Outcome& b) {
    EXPECT_EQ(a.received, b.received);
    EXPECT_EQ(a.decode_failures, b.decode_failures);
    EXPECT_EQ(a.stale_rejections, b.stale_rejections);
    ASSERT_EQ(a.rounds, b.rounds);
    for (std::size_t r = 0; r < a.rounds; ++r) {
      EXPECT_EQ(a.history[r].time, b.history[r].time);
      EXPECT_EQ(a.history[r].clients, b.history[r].clients);
      EXPECT_EQ(a.history[r].samples, b.history[r].samples);
    }
    ASSERT_EQ(a.weights.size(), b.weights.size());
    EXPECT_EQ(0, std::memcmp(a.weights.data(), b.weights.data(),
                             a.weights.size() * sizeof(float)));
  }
};

TEST_F(AggregationDecodedTest, DecodedBatchMatchesLegacyWithFailures) {
  // A stream mixing valid updates, corrupt blobs, missing blobs, a
  // wrong-dimension model and a threshold crossing mid-batch must produce
  // identical counters, round records and global-model bits on both
  // planes.
  BlobStore store;
  std::vector<flow::Message> messages;
  std::vector<SimTime> arrivals;
  std::uint64_t id = 1;
  auto push = [&](flow::Message m) {
    arrivals.push_back(Seconds(static_cast<double>(id)));
    messages.push_back(std::move(m));
    ++id;
  };
  push(Upload(store, 1.0f, 10, id));
  {
    flow::Message corrupt;  // undecodable payload
    corrupt.id = MessageId(id);
    corrupt.task = TaskId(1);
    corrupt.payload = store.Put(Bytes({1, 2, 3}));
    corrupt.sample_count = 10;
    push(corrupt);
  }
  {
    flow::Message missing;  // payload never stored
    missing.id = MessageId(id);
    missing.task = TaskId(1);
    missing.payload = BlobId(424242);
    missing.sample_count = 10;
    push(missing);
  }
  push(Upload(store, 2.0f, 10, id));
  {
    ml::LrModel wrong(kDim * 2);  // decodes, but cannot accumulate
    flow::Message mismatch;
    mismatch.id = MessageId(id);
    mismatch.task = TaskId(1);
    mismatch.payload = store.Put(wrong.ToBytes());
    mismatch.sample_count = 10;
    push(mismatch);
  }
  push(Upload(store, 3.0f, 10, id));  // crosses the 30-sample threshold
  push(Upload(store, 4.0f, 10, id));  // lands in round 2's accumulator

  const auto legacy = Run(store, messages, arrivals, /*decoded=*/false,
                          /*reject_stale=*/false);
  const auto decoded = Run(store, messages, arrivals, /*decoded=*/true,
                           /*reject_stale=*/false);
  EXPECT_EQ(legacy.decode_failures, 3u);  // corrupt + missing + wrong dim
  EXPECT_EQ(legacy.stale_rejections, 0u);
  EXPECT_EQ(legacy.rounds, 1u);
  ExpectSameOutcome(legacy, decoded);
}

TEST_F(AggregationDecodedTest, StaleBadPayloadIsStaleNotDecodeFailure) {
  // The accounting-order contract: reject_stale is checked BEFORE the
  // (deferred) decode failure commits, so a stale message with a corrupt
  // or missing payload is a stale rejection on both planes — the decoded
  // plane must not book its speculative decode error.
  BlobStore store;
  std::vector<flow::Message> messages;
  std::vector<SimTime> arrivals;
  {
    flow::Message corrupt_stale;
    corrupt_stale.id = MessageId(1);
    corrupt_stale.task = TaskId(1);
    corrupt_stale.round = 7;  // history is empty: anything != 0 is stale
    corrupt_stale.payload = store.Put(Bytes({9, 9}));
    corrupt_stale.sample_count = 5;
    messages.push_back(corrupt_stale);
    arrivals.push_back(Seconds(1.0));
  }
  {
    flow::Message missing_stale;
    missing_stale.id = MessageId(2);
    missing_stale.task = TaskId(1);
    missing_stale.round = 9;
    missing_stale.payload = BlobId(777777);
    missing_stale.sample_count = 5;
    messages.push_back(missing_stale);
    arrivals.push_back(Seconds(2.0));
  }
  // Fresh-round bad payloads for contrast: these DO count as decode
  // failures on both planes.
  {
    flow::Message corrupt_fresh;
    corrupt_fresh.id = MessageId(3);
    corrupt_fresh.task = TaskId(1);
    corrupt_fresh.round = 0;
    corrupt_fresh.payload = store.Put(Bytes({1}));
    corrupt_fresh.sample_count = 5;
    messages.push_back(corrupt_fresh);
    arrivals.push_back(Seconds(3.0));
  }
  {
    flow::Message missing_fresh;
    missing_fresh.id = MessageId(4);
    missing_fresh.task = TaskId(1);
    missing_fresh.round = 0;
    missing_fresh.payload = BlobId(888888);
    missing_fresh.sample_count = 5;
    messages.push_back(missing_fresh);
    arrivals.push_back(Seconds(4.0));
  }

  const auto legacy = Run(store, messages, arrivals, /*decoded=*/false,
                          /*reject_stale=*/true);
  const auto decoded = Run(store, messages, arrivals, /*decoded=*/true,
                           /*reject_stale=*/true);
  EXPECT_EQ(legacy.stale_rejections, 2u);
  EXPECT_EQ(legacy.decode_failures, 2u);
  EXPECT_EQ(legacy.received, 4u);
  ExpectSameOutcome(legacy, decoded);
}

TEST_F(AggregationDecodedTest, StoppedServiceIgnoresDecodedDeliveries) {
  BlobStore store;
  AggregationConfig config;
  config.model_dim = kDim;
  AggregationService service(loop_, store, config);
  service.Stop();
  BlobModelDecoder decoder(store);
  const std::vector<flow::DecodedUpdate> updates = {
      decoder.Decode(Upload(store, 1.0f, 5, 1))};
  const std::vector<SimTime> arrivals = {Seconds(1.0)};
  service.DeliverDecodedBatch(updates, arrivals);
  EXPECT_EQ(service.messages_received(), 0u);
  EXPECT_EQ(service.decode_failures(), 0u);
}

TEST_F(AggregationTest, StopIgnoresFurtherDeliveries) {
  AggregationConfig config;
  config.model_dim = kDim;
  config.trigger = AggregationTrigger::kSampleThreshold;
  config.sample_threshold = 1;
  AggregationService service(loop_, store_, config);
  service.Stop();
  service.Deliver(Upload(store_, 4.0f, 5, 1), 0);
  EXPECT_EQ(service.rounds_completed(), 0u);
  EXPECT_EQ(service.messages_received(), 0u);
}

TEST_F(AggregationTest, MaxRoundsHonored) {
  AggregationConfig config;
  config.model_dim = kDim;
  config.trigger = AggregationTrigger::kSampleThreshold;
  config.sample_threshold = 1;
  config.max_rounds = 2;
  AggregationService service(loop_, store_, config);
  for (std::uint64_t i = 0; i < 5; ++i) {
    service.Deliver(Upload(store_, 1.0f, 1, i), 0);
  }
  EXPECT_EQ(service.rounds_completed(), 2u);
}

// ---------- Partial-sum aggregation plane ----------

/// Parity suite for AggregatePlane::kPartialSum vs kLegacy on the decoded
/// delivery path: every counter, round record, published-model bit and
/// snapshot plane must match. Pinned by name in the CI sanitizer job.
class AggregationPartialSumTest : public AggregationTest {
 protected:
  struct Outcome {
    std::size_t received = 0;
    std::size_t decode_failures = 0;
    std::size_t stale_rejections = 0;
    std::size_t store_errors = 0;
    std::vector<AggregationRecord> history;
    std::vector<float> weights;
    float bias = 0.0f;
    std::size_t pending_samples = 0;
    std::size_t pending_clients = 0;
    AggregationSnapshot snapshot;
  };

  static void DeliverDecoded(AggregationService& service, BlobStore& store,
                             const std::vector<flow::Message>& messages,
                             const std::vector<SimTime>& arrivals) {
    BlobModelDecoder decoder(store);
    std::vector<flow::DecodedUpdate> updates;
    updates.reserve(messages.size());
    for (const auto& message : messages) {
      updates.push_back(decoder.Decode(message));
    }
    service.DeliverDecodedBatch(updates, arrivals);
  }

  Outcome Run(BlobStore& store, const std::vector<flow::Message>& messages,
              const std::vector<SimTime>& arrivals, AggregatePlane plane,
              ThreadPool* pool, std::size_t sample_threshold,
              bool reject_stale = false) {
    AggregationConfig config;
    config.model_dim = kDim;
    config.trigger = AggregationTrigger::kSampleThreshold;
    config.sample_threshold = sample_threshold;
    config.reject_stale = reject_stale;
    config.aggregate_plane = plane;
    AggregationService service(loop_, store, config);
    service.set_thread_pool(pool);
    DeliverDecoded(service, store, messages, arrivals);
    return Capture(service);
  }

  static Outcome Capture(const AggregationService& service) {
    Outcome out;
    out.received = service.messages_received();
    out.decode_failures = service.decode_failures();
    out.stale_rejections = service.stale_rejections();
    out.store_errors = service.store_errors();
    out.history = service.history();
    out.weights.assign(service.global_model().weights().begin(),
                       service.global_model().weights().end());
    out.bias = service.global_model().bias();
    out.pending_samples = service.pending_samples();
    out.pending_clients = service.pending_clients();
    out.snapshot = service.Snapshot();
    return out;
  }

  static void ExpectIdentical(const Outcome& a, const Outcome& b) {
    EXPECT_EQ(a.received, b.received);
    EXPECT_EQ(a.decode_failures, b.decode_failures);
    EXPECT_EQ(a.stale_rejections, b.stale_rejections);
    EXPECT_EQ(a.store_errors, b.store_errors);
    EXPECT_EQ(a.pending_samples, b.pending_samples);
    EXPECT_EQ(a.pending_clients, b.pending_clients);
    ASSERT_EQ(a.history.size(), b.history.size());
    for (std::size_t r = 0; r < a.history.size(); ++r) {
      EXPECT_EQ(a.history[r].time, b.history[r].time);
      EXPECT_EQ(a.history[r].clients, b.history[r].clients);
      EXPECT_EQ(a.history[r].samples, b.history[r].samples);
    }
    ASSERT_EQ(a.weights.size(), b.weights.size());
    EXPECT_EQ(0, std::memcmp(a.weights.data(), b.weights.data(),
                             a.weights.size() * sizeof(float)));
    EXPECT_EQ(std::bit_cast<std::uint32_t>(a.bias),
              std::bit_cast<std::uint32_t>(b.bias));
    // Snapshot parity covers the cascade planes bit-for-bit.
    EXPECT_EQ(a.snapshot.accumulator, b.snapshot.accumulator);
    EXPECT_EQ(a.snapshot.accumulator_c1, b.snapshot.accumulator_c1);
    EXPECT_EQ(a.snapshot.accumulator_c2, b.snapshot.accumulator_c2);
    EXPECT_EQ(a.snapshot.bias_accumulator, b.snapshot.bias_accumulator);
    EXPECT_EQ(a.snapshot.bias_accumulator_c1, b.snapshot.bias_accumulator_c1);
    EXPECT_EQ(a.snapshot.bias_accumulator_c2, b.snapshot.bias_accumulator_c2);
    EXPECT_EQ(a.snapshot.accumulator_samples, b.snapshot.accumulator_samples);
    EXPECT_EQ(a.snapshot.accumulator_clients, b.snapshot.accumulator_clients);
  }

  /// Mixed stream: valid updates with varying magnitudes, a corrupt blob,
  /// a missing blob, a wrong-dimension model, threshold crossings.
  void BuildAdversarialStream(BlobStore& store, std::size_t valid_count,
                              std::vector<flow::Message>& messages,
                              std::vector<SimTime>& arrivals) {
    std::uint64_t id = 1;
    auto push = [&](flow::Message m) {
      arrivals.push_back(Seconds(static_cast<double>(id)));
      messages.push_back(std::move(m));
      ++id;
    };
    for (std::size_t k = 0; k < valid_count; ++k) {
      const float w = static_cast<float>((k % 17) * 1000.0 - 8000.0) +
                      static_cast<float>(k) * 1e-4f;
      push(Upload(store, w, 1 + k % 7, id));
      if (k == valid_count / 3) {
        flow::Message corrupt;
        corrupt.id = MessageId(id);
        corrupt.task = TaskId(1);
        corrupt.payload = store.Put(Bytes({1, 2, 3}));
        corrupt.sample_count = 4;
        push(corrupt);
      }
      if (k == valid_count / 2) {
        flow::Message missing;
        missing.id = MessageId(id);
        missing.task = TaskId(1);
        missing.payload = BlobId(424242);
        missing.sample_count = 4;
        push(missing);
        ml::LrModel wrong(kDim * 2);
        flow::Message mismatch;
        mismatch.id = MessageId(id + 1);
        mismatch.task = TaskId(1);
        mismatch.payload = store.Put(wrong.ToBytes());
        mismatch.sample_count = 4;
        push(mismatch);
      }
    }
  }
};

TEST_F(AggregationPartialSumTest, MatchesLegacyPlaneAcrossFailuresAndRounds) {
  BlobStore store;
  std::vector<flow::Message> messages;
  std::vector<SimTime> arrivals;
  BuildAdversarialStream(store, 60, messages, arrivals);
  // Threshold 40 closes several rounds mid-batch; the tail stays pending.
  const auto legacy = Run(store, messages, arrivals, AggregatePlane::kLegacy,
                          /*pool=*/nullptr, /*sample_threshold=*/40);
  const auto partial =
      Run(store, messages, arrivals, AggregatePlane::kPartialSum,
          /*pool=*/nullptr, /*sample_threshold=*/40);
  EXPECT_GT(legacy.history.size(), 1u);
  EXPECT_GT(legacy.decode_failures, 0u);
  EXPECT_GT(legacy.pending_clients, 0u);  // staged tail visible on both
  ExpectIdentical(legacy, partial);
}

TEST_F(AggregationPartialSumTest, ParallelFlushMatchesLegacyBitForBit) {
  // The pool path: per-lane partials accumulated by ParallelFor and merged
  // ascending must publish the same bits as the serial legacy adds. More
  // messages than the flush cap (256) so capacity flushes happen too.
  BlobStore store;
  std::vector<flow::Message> messages;
  std::vector<SimTime> arrivals;
  BuildAdversarialStream(store, 600, messages, arrivals);
  ThreadPool pool(4);
  const auto legacy = Run(store, messages, arrivals, AggregatePlane::kLegacy,
                          /*pool=*/nullptr, /*sample_threshold=*/900);
  const auto partial =
      Run(store, messages, arrivals, AggregatePlane::kPartialSum, &pool,
          /*sample_threshold=*/900);
  EXPECT_GT(legacy.history.size(), 0u);
  ExpectIdentical(legacy, partial);
}

TEST_F(AggregationPartialSumTest, MidRoundSnapshotRestoreContinuesIdentically) {
  // Cut a snapshot while updates are staged (no flush yet), restore into a
  // fresh partial-plane service, deliver the rest: the recovered run must
  // publish the same bits as the uninterrupted legacy run.
  BlobStore store;
  std::vector<flow::Message> messages;
  std::vector<SimTime> arrivals;
  BuildAdversarialStream(store, 40, messages, arrivals);
  const std::size_t cut = 17;
  const std::vector<flow::Message> head(messages.begin(),
                                        messages.begin() + cut);
  const std::vector<flow::Message> tail(messages.begin() + cut,
                                        messages.end());
  const std::vector<SimTime> head_arrivals(arrivals.begin(),
                                           arrivals.begin() + cut);
  const std::vector<SimTime> tail_arrivals(arrivals.begin() + cut,
                                           arrivals.end());

  AggregationConfig config;
  config.model_dim = kDim;
  config.trigger = AggregationTrigger::kSampleThreshold;
  config.sample_threshold = 500;  // nothing closes: all staged
  config.aggregate_plane = AggregatePlane::kPartialSum;

  AggregationService first(loop_, store, config);
  DeliverDecoded(first, store, head, head_arrivals);
  EXPECT_GT(first.pending_clients(), 0u);
  const AggregationSnapshot snapshot = first.Snapshot();

  AggregationService recovered(loop_, store, config);
  recovered.RestoreSnapshot(snapshot);
  EXPECT_EQ(recovered.pending_clients(), first.pending_clients());
  DeliverDecoded(recovered, store, tail, tail_arrivals);
  EXPECT_TRUE(recovered.AggregateNow());

  AggregationConfig legacy_config = config;
  legacy_config.aggregate_plane = AggregatePlane::kLegacy;
  AggregationService uninterrupted(loop_, store, legacy_config);
  DeliverDecoded(uninterrupted, store, messages, arrivals);
  EXPECT_TRUE(uninterrupted.AggregateNow());

  ExpectIdentical(Capture(uninterrupted), Capture(recovered));
}

TEST_F(AggregationPartialSumTest, QuorumAndAbortSeeStagedUpdates) {
  // The deadline policy must read the combined (flushed + staged) totals:
  // a quorum met purely by staged updates commits, and an abort discards
  // the staged entries — identically on both planes.
  for (const AggregatePlane plane :
       {AggregatePlane::kPartialSum, AggregatePlane::kLegacy}) {
    sim::EventLoop loop;
    BlobStore store;
    AggregationConfig config;
    config.model_dim = kDim;
    config.trigger = AggregationTrigger::kSampleThreshold;
    config.sample_threshold = 1000000;  // rounds close only via deadline
    config.aggregate_plane = plane;
    config.round_quorum = 2;
    config.round_deadline = Seconds(10.0);
    config.max_round_extensions = 0;
    AggregationService service(loop, store, config);
    service.OnRoundOpened(0);
    loop.ScheduleAt(Seconds(1.0), [&] {
      DeliverDecoded(service, store,
                     {Upload(store, 1.0f, 3, 1), Upload(store, 3.0f, 5, 2)},
                     {Seconds(1.0), Seconds(1.0)});
    });
    loop.RunUntil(Seconds(11.0));
    // Two staged clients met the quorum at the deadline: degraded commit.
    ASSERT_EQ(service.rounds_completed(), 1u) << "plane "
                                              << static_cast<int>(plane);
    EXPECT_EQ(service.deadline_commits(), 1u);
    EXPECT_EQ(service.history()[0].clients, 2u);
    EXPECT_EQ(service.history()[0].samples, 8u);
    EXPECT_EQ(service.pending_samples(), 0u);

    // Next round: one staged update below quorum, no extensions -> abort
    // discards the staged entry.
    bool aborted = false;
    service.set_on_round_aborted([&](SimTime) { aborted = true; });
    service.OnRoundOpened(Seconds(11.0));
    loop.ScheduleAt(Seconds(12.0), [&] {
      DeliverDecoded(service, store, {Upload(store, 2.0f, 4, 3)},
                     {Seconds(12.0)});
    });
    loop.RunUntil(Seconds(30.0));
    EXPECT_TRUE(aborted);
    EXPECT_EQ(service.aborted_rounds(), 1u);
    EXPECT_EQ(service.rounds_completed(), 1u);
    EXPECT_EQ(service.pending_samples(), 0u);
    EXPECT_EQ(service.pending_clients(), 0u);
  }
}

}  // namespace
}  // namespace simdc::cloud
