// Unit tests for DeviceFlow: shelf, sorter routing, the three dispatch
// strategies, AUC discretization, dropout, rate limiting and task
// isolation (§V).
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <set>
#include <span>

#include "common/stats.h"
#include "flow/device_flow.h"
#include "flow/rate_functions.h"
#include "flow/shard_merger.h"
#include "flow/strategy.h"
#include "sim/event_loop.h"

namespace simdc::flow {
namespace {

/// Records every delivered message with its arrival time.
class RecordingEndpoint final : public CloudEndpoint {
 public:
  void Deliver(const Message& message, SimTime arrival) override {
    deliveries.emplace_back(arrival, message);
  }
  std::vector<std::pair<SimTime, Message>> deliveries;
};

Message MakeMessage(TaskId task, std::uint64_t id, std::size_t round = 0) {
  Message m;
  m.id = MessageId(id);
  m.task = task;
  m.device = DeviceId(id);
  m.round = round;
  m.sample_count = 10;
  return m;
}

// ---------- Shelf ----------

TEST(ShelfTest, FifoTake) {
  Shelf shelf;
  for (std::uint64_t i = 0; i < 5; ++i) {
    shelf.Put(MakeMessage(TaskId(1), i));
  }
  EXPECT_EQ(shelf.size(), 5u);
  auto taken = shelf.Take(3);
  ASSERT_EQ(taken.size(), 3u);
  EXPECT_EQ(taken[0].id, MessageId(0));
  EXPECT_EQ(taken[2].id, MessageId(2));
  EXPECT_EQ(shelf.size(), 2u);
  taken = shelf.Take(10);  // over-ask clamps
  EXPECT_EQ(taken.size(), 2u);
  EXPECT_TRUE(shelf.empty());
}

// ---------- Sorter / configuration ----------

TEST(DeviceFlowTest, SorterRoutesByTaskId) {
  sim::EventLoop loop;
  DeviceFlow flow(loop);
  RecordingEndpoint a, b;
  ASSERT_TRUE(flow.ConfigureTask(TaskId(1), RealtimeAccumulated{{1}, 0.0}, &a).ok());
  ASSERT_TRUE(flow.ConfigureTask(TaskId(2), RealtimeAccumulated{{1}, 0.0}, &b).ok());
  ASSERT_TRUE(flow.OnMessage(MakeMessage(TaskId(1), 10)).ok());
  ASSERT_TRUE(flow.OnMessage(MakeMessage(TaskId(2), 20)).ok());
  ASSERT_TRUE(flow.OnMessage(MakeMessage(TaskId(1), 11)).ok());
  loop.Run();
  EXPECT_EQ(a.deliveries.size(), 2u);
  EXPECT_EQ(b.deliveries.size(), 1u);
  EXPECT_EQ(b.deliveries[0].second.id, MessageId(20));
}

TEST(DeviceFlowTest, UnknownTaskRejected) {
  sim::EventLoop loop;
  DeviceFlow flow(loop);
  EXPECT_FALSE(flow.OnMessage(MakeMessage(TaskId(9), 1)).ok());
  EXPECT_FALSE(flow.OnRoundStart(TaskId(9), 0).ok());
  EXPECT_FALSE(flow.OnRoundEnd(TaskId(9), 0).ok());
}

TEST(DeviceFlowTest, DuplicateConfigureRejected) {
  sim::EventLoop loop;
  DeviceFlow flow(loop);
  RecordingEndpoint sink;
  ASSERT_TRUE(flow.ConfigureTask(TaskId(1), RealtimeAccumulated{}, &sink).ok());
  EXPECT_FALSE(flow.ConfigureTask(TaskId(1), RealtimeAccumulated{}, &sink).ok());
  EXPECT_TRUE(flow.RemoveTask(TaskId(1)).ok());
  EXPECT_FALSE(flow.RemoveTask(TaskId(1)).ok());
  EXPECT_TRUE(flow.ConfigureTask(TaskId(1), RealtimeAccumulated{}, &sink).ok());
}

// ---------- Real-time accumulated strategy ----------

TEST(RealtimeTest, ThresholdOneIsPassThrough) {
  sim::EventLoop loop;
  DeviceFlow flow(loop);
  RecordingEndpoint sink;
  ASSERT_TRUE(flow.ConfigureTask(TaskId(1), RealtimeAccumulated{{1}, 0.0}, &sink).ok());
  for (std::uint64_t i = 0; i < 7; ++i) {
    ASSERT_TRUE(flow.OnMessage(MakeMessage(TaskId(1), i)).ok());
  }
  loop.Run();
  EXPECT_EQ(sink.deliveries.size(), 7u);
  const auto* dispatcher = flow.FindDispatcher(TaskId(1));
  EXPECT_EQ(dispatcher->stats().sent, 7u);
  EXPECT_EQ(dispatcher->stats().batches.size(), 7u);
}

TEST(RealtimeTest, ThresholdBatches) {
  sim::EventLoop loop;
  DeviceFlow flow(loop);
  RecordingEndpoint sink;
  ASSERT_TRUE(flow.ConfigureTask(TaskId(1), RealtimeAccumulated{{5}, 0.0}, &sink).ok());
  for (std::uint64_t i = 0; i < 12; ++i) {
    ASSERT_TRUE(flow.OnMessage(MakeMessage(TaskId(1), i)).ok());
  }
  const auto* dispatcher = flow.FindDispatcher(TaskId(1));
  // Two batches of 5 fired; 2 messages below threshold remain shelved.
  EXPECT_EQ(dispatcher->stats().batches.size(), 2u);
  EXPECT_EQ(dispatcher->shelf().size(), 2u);
  ASSERT_TRUE(flow.OnRoundEnd(TaskId(1), 0).ok());  // flushes remainder
  EXPECT_EQ(dispatcher->shelf().size(), 0u);
  loop.Run();
  EXPECT_EQ(sink.deliveries.size(), 12u);
}

TEST(RealtimeTest, ThresholdSequenceCycles) {
  // §VI-C2: sequence [20, 100, 50] cycles; here a compact [2, 3].
  sim::EventLoop loop;
  DeviceFlow flow(loop);
  RecordingEndpoint sink;
  ASSERT_TRUE(flow.ConfigureTask(TaskId(1), RealtimeAccumulated{{2, 3}, 0.0},
                                 &sink).ok());
  for (std::uint64_t i = 0; i < 10; ++i) {
    ASSERT_TRUE(flow.OnMessage(MakeMessage(TaskId(1), i)).ok());
  }
  const auto& batches = flow.FindDispatcher(TaskId(1))->stats().batches;
  ASSERT_EQ(batches.size(), 4u);
  EXPECT_EQ(batches[0].second, 2u);
  EXPECT_EQ(batches[1].second, 3u);
  EXPECT_EQ(batches[2].second, 2u);
  EXPECT_EQ(batches[3].second, 3u);
  loop.Run();
}

TEST(RealtimeTest, RoundStartResetsCycle) {
  sim::EventLoop loop;
  DeviceFlow flow(loop);
  RecordingEndpoint sink;
  ASSERT_TRUE(flow.ConfigureTask(TaskId(1), RealtimeAccumulated{{2, 5}, 0.0},
                                 &sink).ok());
  ASSERT_TRUE(flow.OnMessage(MakeMessage(TaskId(1), 0)).ok());
  ASSERT_TRUE(flow.OnMessage(MakeMessage(TaskId(1), 1)).ok());  // batch of 2
  ASSERT_TRUE(flow.OnRoundStart(TaskId(1), 1).ok());            // reset cursor
  ASSERT_TRUE(flow.OnMessage(MakeMessage(TaskId(1), 2)).ok());
  ASSERT_TRUE(flow.OnMessage(MakeMessage(TaskId(1), 3)).ok());  // batch of 2 again
  const auto& batches = flow.FindDispatcher(TaskId(1))->stats().batches;
  ASSERT_EQ(batches.size(), 2u);
  EXPECT_EQ(batches[1].second, 2u);
  loop.Run();
}

TEST(RealtimeTest, DropoutProbabilityDropsFraction) {
  sim::EventLoop loop;
  DeviceFlow flow(loop);
  RecordingEndpoint sink;
  ASSERT_TRUE(flow.ConfigureTask(TaskId(1), RealtimeAccumulated{{1}, 0.3},
                                 &sink, /*seed=*/7).ok());
  const std::size_t n = 5000;
  for (std::uint64_t i = 0; i < n; ++i) {
    ASSERT_TRUE(flow.OnMessage(MakeMessage(TaskId(1), i)).ok());
  }
  loop.Run();
  const auto& stats = flow.FindDispatcher(TaskId(1))->stats();
  EXPECT_EQ(stats.sent + stats.dropped, n);
  EXPECT_NEAR(static_cast<double>(stats.dropped) / n, 0.3, 0.03);
  EXPECT_EQ(sink.deliveries.size(), stats.sent);
}

TEST(RealtimeTest, DropoutIsDeterministicPerSeed) {
  auto run = [](std::uint64_t seed) {
    sim::EventLoop loop;
    DeviceFlow flow(loop);
    RecordingEndpoint sink;
    EXPECT_TRUE(flow.ConfigureTask(TaskId(1), RealtimeAccumulated{{1}, 0.5},
                                   &sink, seed).ok());
    for (std::uint64_t i = 0; i < 200; ++i) {
      EXPECT_TRUE(flow.OnMessage(MakeMessage(TaskId(1), i)).ok());
    }
    loop.Run();
    return flow.FindDispatcher(TaskId(1))->stats().dropped;
  };
  EXPECT_EQ(run(3), run(3));
  EXPECT_NE(run(3), run(4));
}

// ---------- Time-point strategy ----------

TEST(TimePointTest, DispatchesAtConfiguredOffsets) {
  sim::EventLoop loop;
  DeviceFlow flow(loop);
  RecordingEndpoint sink;
  TimePointDispatch strategy;
  strategy.points = {{Seconds(10), true, 4, 0.0, 0},
                     {Seconds(20), true, 6, 0.0, 0}};
  ASSERT_TRUE(flow.ConfigureTask(TaskId(1), strategy, &sink).ok());
  for (std::uint64_t i = 0; i < 10; ++i) {
    ASSERT_TRUE(flow.OnMessage(MakeMessage(TaskId(1), i)).ok());
  }
  ASSERT_TRUE(flow.OnRoundEnd(TaskId(1), 0).ok());
  loop.Run();
  ASSERT_EQ(sink.deliveries.size(), 10u);
  const auto& batches = flow.FindDispatcher(TaskId(1))->stats().batches;
  ASSERT_EQ(batches.size(), 2u);
  EXPECT_EQ(batches[0].first, Seconds(10));
  EXPECT_EQ(batches[0].second, 4u);
  EXPECT_EQ(batches[1].first, Seconds(20));
  EXPECT_EQ(batches[1].second, 6u);
}

TEST(TimePointTest, AbsoluteTimePoints) {
  sim::EventLoop loop;
  DeviceFlow flow(loop);
  RecordingEndpoint sink;
  TimePointDispatch strategy;
  strategy.points = {{Seconds(100), false, 3, 0.0, 0}};
  ASSERT_TRUE(flow.ConfigureTask(TaskId(1), strategy, &sink).ok());
  for (std::uint64_t i = 0; i < 3; ++i) {
    ASSERT_TRUE(flow.OnMessage(MakeMessage(TaskId(1), i)).ok());
  }
  ASSERT_TRUE(flow.OnRoundEnd(TaskId(1), 0).ok());
  loop.Run();
  ASSERT_FALSE(sink.deliveries.empty());
  EXPECT_GE(sink.deliveries.front().first, Seconds(100));
}

TEST(TimePointTest, RandomDiscardDropsExactCount) {
  sim::EventLoop loop;
  DeviceFlow flow(loop);
  RecordingEndpoint sink;
  TimePointDispatch strategy;
  strategy.points = {{Seconds(1), true, 10, 0.0, 4}};
  ASSERT_TRUE(flow.ConfigureTask(TaskId(1), strategy, &sink, 5).ok());
  for (std::uint64_t i = 0; i < 10; ++i) {
    ASSERT_TRUE(flow.OnMessage(MakeMessage(TaskId(1), i)).ok());
  }
  ASSERT_TRUE(flow.OnRoundEnd(TaskId(1), 0).ok());
  loop.Run();
  EXPECT_EQ(sink.deliveries.size(), 6u);
  EXPECT_EQ(flow.FindDispatcher(TaskId(1))->stats().dropped, 4u);
}

TEST(TimePointTest, CountClampsToShelved) {
  sim::EventLoop loop;
  DeviceFlow flow(loop);
  RecordingEndpoint sink;
  TimePointDispatch strategy;
  strategy.points = {{Seconds(1), true, 100, 0.0, 0}};
  ASSERT_TRUE(flow.ConfigureTask(TaskId(1), strategy, &sink).ok());
  for (std::uint64_t i = 0; i < 5; ++i) {
    ASSERT_TRUE(flow.OnMessage(MakeMessage(TaskId(1), i)).ok());
  }
  ASSERT_TRUE(flow.OnRoundEnd(TaskId(1), 0).ok());
  loop.Run();
  EXPECT_EQ(sink.deliveries.size(), 5u);
}

// ---------- Rate limiting (Fig. 10b) ----------

TEST(RateLimitTest, LargeBatchSpreadsOverTime) {
  sim::EventLoop loop;
  DeviceFlow flow(loop);
  RecordingEndpoint sink;
  TimePointDispatch strategy;
  strategy.points = {{Seconds(0), true, 1400, 0.0, 0}};
  ASSERT_TRUE(flow.ConfigureTask(TaskId(1), strategy, &sink).ok());
  for (std::uint64_t i = 0; i < 1400; ++i) {
    ASSERT_TRUE(flow.OnMessage(MakeMessage(TaskId(1), i)).ok());
  }
  ASSERT_TRUE(flow.OnRoundEnd(TaskId(1), 0).ok());
  loop.Run();
  ASSERT_EQ(sink.deliveries.size(), 1400u);
  // 1400 messages at 700 msg/s ≈ 2 s of spread past the dispatch point.
  const SimTime first = sink.deliveries.front().first;
  const SimTime last = sink.deliveries.back().first;
  EXPECT_NEAR(ToSeconds(last - first), 2.0, 0.1);
  // Arrivals are monotone.
  for (std::size_t i = 1; i < sink.deliveries.size(); ++i) {
    EXPECT_GE(sink.deliveries[i].first, sink.deliveries[i - 1].first);
  }
}

// ---------- AUC discretization (design decision D2) ----------

TEST(DiscretizeTest, CountsSumExactly) {
  for (std::size_t total : {1u, 7u, 100u, 9999u}) {
    const auto plan =
        DiscretizeRate(NormalCurve(1.0), Minutes(1.0), total, 700.0);
    std::size_t sum = 0;
    for (const auto& slot : plan) sum += slot.count;
    EXPECT_EQ(sum, total) << "total=" << total;
  }
}

TEST(DiscretizeTest, ZeroMessagesEmptyPlan) {
  EXPECT_TRUE(DiscretizeRate(NormalCurve(1.0), Minutes(1), 0, 700.0).empty());
}

TEST(DiscretizeTest, OffsetsAreWithinIntervalAndIncreasing) {
  const auto plan =
      DiscretizeRate(SinPlusOne(), Seconds(30.0), 1000, 700.0);
  for (std::size_t i = 0; i < plan.size(); ++i) {
    EXPECT_GE(plan[i].offset, 0);
    EXPECT_LT(plan[i].offset, Seconds(30.0));
    if (i > 0) {
      EXPECT_GT(plan[i].offset, plan[i - 1].offset);
    }
  }
}

TEST(DiscretizeTest, RespectsCapacityLimit) {
  // A very peaky curve must be sliced finely enough that no single
  // dispatch point exceeds the per-point capacity limit (§V-B: "the number
  // of messages sent at any single point does not exceed the transmission
  // capacity limit"). Largest-remainder apportionment may add one extra.
  const auto curve = NormalCurve(0.3);
  const std::size_t total = 50000;
  const double capacity = 700.0;
  const auto plan = DiscretizeRate(curve, Minutes(1.0), total, capacity);
  for (const auto& slot : plan) {
    EXPECT_LE(static_cast<double>(slot.count), capacity + 1.001);
  }
  // And the subdivision is meaningful: far more slots than the minimum.
  EXPECT_GT(plan.size(), 400u);
}

TEST(DiscretizeTest, ProfileTracksCurve) {
  // Per-slot counts correlate with f(t) sampled at slot centers.
  const auto curve = NormalCurve(1.0);
  const auto plan = DiscretizeRate(curve, Minutes(1.0), 10000, 700.0);
  std::vector<double> counts, values;
  for (std::size_t i = 0; i < plan.size(); ++i) {
    counts.push_back(static_cast<double>(plan[i].count));
    const double t = curve.domain_lo +
                     curve.domain_width() *
                         (static_cast<double>(i) + 0.5) /
                         static_cast<double>(plan.size());
    values.push_back(curve(t));
  }
  EXPECT_GT(PearsonCorrelation(counts, values), 0.99);
}

TEST(DiscretizeTest, RejectsBadInputs) {
  EXPECT_THROW(DiscretizeRate(NormalCurve(1.0), 0, 10, 700.0),
               std::invalid_argument);
  EXPECT_THROW(DiscretizeRate(NormalCurve(1.0), Seconds(1), 10, 0.0),
               std::invalid_argument);
  RateFunction empty{[](double) { return 1.0; }, 2.0, 2.0, "empty"};
  EXPECT_THROW(DiscretizeRate(empty, Seconds(1), 10, 700.0),
               std::invalid_argument);
  RateFunction zero{[](double) { return 0.0; }, 0.0, 1.0, "zero"};
  EXPECT_THROW(DiscretizeRate(zero, Seconds(1), 10, 700.0),
               std::invalid_argument);
}

// ---------- Time-interval strategy (Fig. 10 c/d) ----------

TEST(TimeIntervalTest, DeliversEverythingAlongCurve) {
  sim::EventLoop loop;
  DeviceFlow flow(loop);
  RecordingEndpoint sink;
  TimeIntervalDispatch strategy;
  strategy.rate = NormalCurve(1.0);
  strategy.interval = Minutes(1.0);
  ASSERT_TRUE(flow.ConfigureTask(TaskId(1), strategy, &sink).ok());
  const std::size_t n = 2000;
  for (std::uint64_t i = 0; i < n; ++i) {
    ASSERT_TRUE(flow.OnMessage(MakeMessage(TaskId(1), i)).ok());
  }
  ASSERT_TRUE(flow.OnRoundEnd(TaskId(1), 0).ok());
  loop.Run();
  EXPECT_EQ(sink.deliveries.size(), n);
  // Bulk of a unit normal lands mid-interval, not at the edges.
  std::size_t middle = 0;
  for (const auto& [at, msg] : sink.deliveries) {
    if (at > Seconds(20) && at < Seconds(40)) ++middle;
  }
  EXPECT_GT(middle, n / 2);
}

TEST(TimeIntervalTest, EmptyShelfIsNoop) {
  sim::EventLoop loop;
  DeviceFlow flow(loop);
  RecordingEndpoint sink;
  TimeIntervalDispatch strategy;
  strategy.rate = NormalCurve(1.0);
  ASSERT_TRUE(flow.ConfigureTask(TaskId(1), strategy, &sink).ok());
  ASSERT_TRUE(flow.OnRoundEnd(TaskId(1), 0).ok());
  loop.Run();
  EXPECT_TRUE(sink.deliveries.empty());
}

TEST(TimeIntervalTest, DropoutPerSlot) {
  sim::EventLoop loop;
  DeviceFlow flow(loop);
  RecordingEndpoint sink;
  TimeIntervalDispatch strategy;
  strategy.rate = SinPlusOne();
  strategy.interval = Seconds(30.0);
  strategy.failure_probability = 0.4;
  ASSERT_TRUE(flow.ConfigureTask(TaskId(1), strategy, &sink, 11).ok());
  const std::size_t n = 4000;
  for (std::uint64_t i = 0; i < n; ++i) {
    ASSERT_TRUE(flow.OnMessage(MakeMessage(TaskId(1), i)).ok());
  }
  ASSERT_TRUE(flow.OnRoundEnd(TaskId(1), 0).ok());
  loop.Run();
  EXPECT_NEAR(static_cast<double>(sink.deliveries.size()) / n, 0.6, 0.04);
}

// ---------- Isolation (Fig. 4: dispatchers do not interfere) ----------

TEST(IsolationTest, TasksDispatchIndependently) {
  sim::EventLoop loop;
  DeviceFlow flow(loop);
  RecordingEndpoint fast_sink, slow_sink;
  ASSERT_TRUE(flow.ConfigureTask(TaskId(1), RealtimeAccumulated{{1}, 0.0},
                                 &fast_sink).ok());
  TimePointDispatch slow;
  slow.points = {{Minutes(60.0), true, 100, 0.0, 0}};
  ASSERT_TRUE(flow.ConfigureTask(TaskId(2), slow, &slow_sink).ok());

  for (std::uint64_t i = 0; i < 50; ++i) {
    ASSERT_TRUE(flow.OnMessage(MakeMessage(TaskId(1), i)).ok());
    ASSERT_TRUE(flow.OnMessage(MakeMessage(TaskId(2), 1000 + i)).ok());
  }
  ASSERT_TRUE(flow.OnRoundEnd(TaskId(2), 0).ok());
  loop.RunUntil(Minutes(1.0));
  // Task 1 delivered everything immediately; task 2 still shelved.
  EXPECT_EQ(fast_sink.deliveries.size(), 50u);
  EXPECT_TRUE(slow_sink.deliveries.empty());
  loop.Run();
  EXPECT_EQ(slow_sink.deliveries.size(), 50u);
}

// ---------- Batched vs per-message delivery equivalence ----------

/// Records batch boundaries in addition to every delivery (to check that
/// the batched path really arrives via DeliverBatch, one call per tick).
class BatchAwareEndpoint final : public CloudEndpoint {
 public:
  void Deliver(const Message& message, SimTime arrival) override {
    deliveries.emplace_back(arrival, message.id);
  }
  void DeliverBatch(std::span<const Message> messages,
                    std::span<const SimTime> arrivals) override {
    batch_sizes.push_back(messages.size());
    CloudEndpoint::DeliverBatch(messages, arrivals);  // default loop
  }
  std::vector<std::pair<SimTime, MessageId>> deliveries;
  std::vector<std::size_t> batch_sizes;
};

struct DispatchOutcome {
  std::vector<std::pair<SimTime, MessageId>> deliveries;
  std::vector<std::size_t> batch_sizes;
  std::size_t sent = 0;
  std::size_t dropped = 0;
  std::vector<std::pair<SimTime, std::size_t>> batches;
};

/// Runs one Fig. 10 scenario (round of `n` messages, then round end) in the
/// given delivery mode and returns everything observable.
DispatchOutcome RunScenario(const DispatchStrategy& strategy, std::size_t n,
                            DeliveryMode mode, std::uint64_t seed) {
  sim::EventLoop loop;
  DeviceFlow flow(loop);
  BatchAwareEndpoint sink;
  EXPECT_TRUE(flow.ConfigureTask(TaskId(1), strategy, &sink, seed, mode).ok());
  EXPECT_TRUE(flow.OnRoundStart(TaskId(1), 0).ok());
  for (std::uint64_t i = 0; i < n; ++i) {
    EXPECT_TRUE(flow.OnMessage(MakeMessage(TaskId(1), i)).ok());
  }
  EXPECT_TRUE(flow.OnRoundEnd(TaskId(1), 0).ok());
  loop.Run();
  DispatchOutcome out;
  out.deliveries = sink.deliveries;
  out.batch_sizes = sink.batch_sizes;
  const auto& stats = flow.FindDispatcher(TaskId(1))->stats();
  out.sent = stats.sent;
  out.dropped = stats.dropped;
  out.batches = stats.batches;
  return out;
}

TEST(DeliveryEquivalenceTest, AllStrategiesBitIdenticalAcrossModes) {
  // Fig. 10 scenarios: time-point, time-interval, realtime-accumulated —
  // all with both dropout mechanisms in play so the RNG draw order is
  // genuinely exercised.
  TimePointDispatch points;
  points.points = {{Seconds(5), true, 600, 0.1, 0},
                   {Seconds(20), true, 1400, 0.0, 25},
                   {Seconds(40), true, 1000, 0.05, 10}};
  TimeIntervalDispatch interval;
  interval.rate = NormalCurve(1.0);
  interval.interval = Minutes(1.0);
  interval.failure_probability = 0.2;
  const RealtimeAccumulated realtime{{20, 100, 50}, 0.15};

  const std::vector<std::pair<DispatchStrategy, std::size_t>> scenarios = {
      {points, 3000}, {interval, 5000}, {realtime, 4000}};
  for (std::size_t s = 0; s < scenarios.size(); ++s) {
    const auto& [strategy, n] = scenarios[s];
    const auto batched = RunScenario(strategy, n, DeliveryMode::kBatched, 17);
    const auto legacy = RunScenario(strategy, n, DeliveryMode::kPerMessage, 17);
    // Bit-identical arrivals (time and message identity, in order).
    EXPECT_EQ(batched.deliveries, legacy.deliveries) << "scenario " << s;
    // Bit-identical drop decisions and tick stats.
    EXPECT_EQ(batched.sent, legacy.sent) << "scenario " << s;
    EXPECT_EQ(batched.dropped, legacy.dropped) << "scenario " << s;
    EXPECT_EQ(batched.batches, legacy.batches) << "scenario " << s;
    // And the batched path really fans in O(ticks): one DeliverBatch call
    // per non-empty dispatch tick, none on the per-message path.
    EXPECT_TRUE(legacy.batch_sizes.empty()) << "scenario " << s;
    std::size_t nonempty_ticks = 0;
    std::size_t in_batches = 0;
    for (const auto& [when, count] : batched.batches) {
      if (count > 0) ++nonempty_ticks;
    }
    for (const std::size_t size : batched.batch_sizes) in_batches += size;
    EXPECT_EQ(batched.batch_sizes.size(), nonempty_ticks) << "scenario " << s;
    EXPECT_EQ(in_batches, batched.sent) << "scenario " << s;
  }
}

TEST(DeliveryEquivalenceTest, DefaultDeliverBatchLoopsOverDeliver) {
  // An endpoint that only implements Deliver must see every message of a
  // batched tick, in arrival order.
  sim::EventLoop loop;
  DeviceFlow flow(loop);
  RecordingEndpoint sink;  // no DeliverBatch override
  ASSERT_TRUE(flow.ConfigureTask(TaskId(1), RealtimeAccumulated{{50}, 0.0},
                                 &sink, 0, DeliveryMode::kBatched).ok());
  for (std::uint64_t i = 0; i < 100; ++i) {
    ASSERT_TRUE(flow.OnMessage(MakeMessage(TaskId(1), i)).ok());
  }
  loop.Run();
  ASSERT_EQ(sink.deliveries.size(), 100u);
  for (std::size_t i = 0; i < 100; ++i) {
    EXPECT_EQ(sink.deliveries[i].second.id, MessageId(i));
    if (i > 0) {
      EXPECT_GE(sink.deliveries[i].first, sink.deliveries[i - 1].first);
    }
  }
}

// ---------- Dangling-callback regression (RemoveTask mid-interval) ----------

TEST(RemoveTaskTest, MidIntervalRemovalCancelsPendingStrategyEvents) {
  // OnRoundEnd schedules this-capturing lambdas; destroying the dispatcher
  // before they fire must cancel them (previously: use-after-free).
  sim::EventLoop loop;
  DeviceFlow flow(loop);
  RecordingEndpoint sink;
  TimeIntervalDispatch strategy;
  strategy.rate = NormalCurve(1.0);
  strategy.interval = Minutes(1.0);
  ASSERT_TRUE(flow.ConfigureTask(TaskId(1), strategy, &sink).ok());
  for (std::uint64_t i = 0; i < 2000; ++i) {
    ASSERT_TRUE(flow.OnMessage(MakeMessage(TaskId(1), i)).ok());
  }
  ASSERT_TRUE(flow.OnRoundEnd(TaskId(1), 0).ok());
  // Run partway into the interval, then remove the task with slot events
  // still pending.
  loop.RunUntil(Seconds(20.0));
  const std::size_t delivered_before = sink.deliveries.size();
  EXPECT_GT(delivered_before, 0u);
  ASSERT_TRUE(flow.RemoveTask(TaskId(1)).ok());
  loop.Run();  // must not touch the destroyed dispatcher (ASan-clean)
  // In-flight deliveries handed to the loop before removal may still land;
  // no *new* dispatch ticks may execute.
  EXPECT_GE(sink.deliveries.size(), delivered_before);
  EXPECT_LT(sink.deliveries.size(), 2000u);
}

TEST(RemoveTaskTest, TimePointRemovalBeforeAnyDispatch) {
  sim::EventLoop loop;
  DeviceFlow flow(loop);
  RecordingEndpoint sink;
  TimePointDispatch strategy;
  strategy.points = {{Seconds(10), true, 5, 0.0, 0},
                     {Seconds(20), true, 5, 0.0, 0}};
  ASSERT_TRUE(flow.ConfigureTask(TaskId(1), strategy, &sink).ok());
  for (std::uint64_t i = 0; i < 10; ++i) {
    ASSERT_TRUE(flow.OnMessage(MakeMessage(TaskId(1), i)).ok());
  }
  ASSERT_TRUE(flow.OnRoundEnd(TaskId(1), 0).ok());
  ASSERT_TRUE(flow.RemoveTask(TaskId(1)).ok());
  loop.Run();
  EXPECT_TRUE(sink.deliveries.empty());
}

// ---------- Batch-log cap ----------

TEST(DispatchStatsTest, BatchLogCapBoundsMemory) {
  sim::EventLoop loop;
  DeviceFlow flow(loop);
  RecordingEndpoint sink;
  ASSERT_TRUE(flow.ConfigureTask(TaskId(1), RealtimeAccumulated{{1}, 0.0},
                                 &sink).ok());
  auto* dispatcher = flow.FindDispatcher(TaskId(1));
  dispatcher->set_batch_log_cap(10);
  for (std::uint64_t i = 0; i < 37; ++i) {
    ASSERT_TRUE(flow.OnMessage(MakeMessage(TaskId(1), i)).ok());
  }
  loop.Run();
  EXPECT_EQ(sink.deliveries.size(), 37u);          // delivery unaffected
  EXPECT_EQ(dispatcher->stats().sent, 37u);        // counters unaffected
  EXPECT_EQ(dispatcher->stats().batches.size(), 10u);
  EXPECT_EQ(dispatcher->stats().batches_truncated, 27u);
}

// ---------- Message-keyed transmission dropout ----------

TEST(RealtimeTest, DropDecisionsInvariantToDispatcherPartition) {
  // Transmission-failure draws are keyed by (seed, task, message id), so
  // splitting one message stream across two same-seed dispatchers (the
  // shard topology) drops exactly the same message set as one dispatcher
  // seeing everything — the invariant behind shard-width determinism.
  const RealtimeAccumulated strategy{{1}, 0.4};
  const std::uint64_t seed = 21;
  const std::size_t n = 2000;

  auto delivered_ids = [&](std::span<const std::size_t> to_first) {
    sim::EventLoop loop;
    RecordingEndpoint sink_a, sink_b;
    Dispatcher a(loop, TaskId(1), strategy, &sink_a, seed);
    Dispatcher b(loop, TaskId(1), strategy, &sink_b, seed);
    std::set<std::uint64_t> in_first(to_first.begin(), to_first.end());
    for (std::uint64_t i = 0; i < n; ++i) {
      (in_first.contains(i) ? a : b).OnMessage(MakeMessage(TaskId(1), i));
    }
    loop.Run();
    std::set<std::uint64_t> delivered;
    for (const auto& [when, m] : sink_a.deliveries) delivered.insert(m.id.value());
    for (const auto& [when, m] : sink_b.deliveries) delivered.insert(m.id.value());
    return delivered;
  };

  std::vector<std::size_t> all(n), evens, none;
  std::iota(all.begin(), all.end(), 0u);
  for (std::size_t i = 0; i < n; i += 2) evens.push_back(i);

  const auto baseline = delivered_ids(all);   // everything through dispatcher a
  EXPECT_GT(baseline.size(), n / 2);          // ~60% survive
  EXPECT_LT(baseline.size(), n);              // some drops happened
  EXPECT_EQ(delivered_ids(evens), baseline);  // split half/half
  EXPECT_EQ(delivered_ids(none), baseline);   // everything through b
}

// ---------- ShardMerger ----------

TEST(ShardMergerTest, MergesTicksInTimeThenGlobalIdOrder) {
  sim::EventLoop cloud;
  BatchAwareEndpoint sink;
  ShardMerger merger(3, &sink, &cloud);

  // Shard 2 ticks first in time; shards 0 and 1 collide at t=5s where the
  // lower first-message id must win (here that is also the lower shard —
  // ids are device-ordered); per-shard FIFO must hold within shard 0.
  const std::vector<Message> m = {
      MakeMessage(TaskId(1), 0), MakeMessage(TaskId(1), 1),
      MakeMessage(TaskId(1), 2), MakeMessage(TaskId(1), 3),
      MakeMessage(TaskId(1), 4)};
  const std::vector<SimTime> t2 = {Seconds(1.0)};
  merger.channel(2).DeliverBatch(std::span(&m[4], 1), std::span(t2));
  const std::vector<SimTime> t0a = {Seconds(5.0), Seconds(5.0)};
  merger.channel(0).DeliverBatch(std::span(&m[0], 2), std::span(t0a));
  const std::vector<SimTime> t1 = {Seconds(5.0)};
  merger.channel(1).DeliverBatch(std::span(&m[3], 1), std::span(t1));
  const std::vector<SimTime> t0b = {Seconds(6.0)};
  merger.channel(0).DeliverBatch(std::span(&m[2], 1), std::span(t0b));

  EXPECT_EQ(merger.NextTickTime(), Seconds(1.0));
  // Partial drain respects the horizon.
  EXPECT_EQ(merger.DrainUpTo(Seconds(2.0)), 1u);
  EXPECT_EQ(cloud.Now(), Seconds(1.0));  // clock mirrored to tick time
  EXPECT_EQ(merger.DrainUpTo(Seconds(100.0)), 3u);
  EXPECT_TRUE(merger.channel(0).empty());

  std::vector<std::uint64_t> order;
  for (const auto& [when, id] : sink.deliveries) order.push_back(id.value());
  EXPECT_EQ(order, (std::vector<std::uint64_t>{4, 0, 1, 3, 2}));
  EXPECT_EQ(sink.batch_sizes, (std::vector<std::size_t>{1, 2, 1, 1}));
  EXPECT_EQ(merger.ticks_merged(), 4u);
  EXPECT_EQ(merger.messages_merged(), 5u);
  EXPECT_EQ(merger.NextTickTime(), sim::EventLoop::kNoEvent);
}

TEST(ShardMergerTest, PerMessageDeliveriesBecomeSingleTicks) {
  BatchAwareEndpoint sink;
  ShardMerger merger(2, &sink, nullptr);
  merger.channel(1).Deliver(MakeMessage(TaskId(1), 7), Seconds(2.0));
  merger.channel(0).Deliver(MakeMessage(TaskId(1), 8), Seconds(2.0));
  EXPECT_EQ(merger.DrainUpTo(Seconds(2.0)), 2u);
  ASSERT_EQ(sink.deliveries.size(), 2u);
  // Equal times resolve by message id (the global scheduling order), not
  // by shard index — id 7 sits in the higher shard but goes first.
  EXPECT_EQ(sink.deliveries[0].second, MessageId(7));
  EXPECT_EQ(sink.deliveries[1].second, MessageId(8));
}

TEST(ShardMergerTest, RejectsBadConstruction) {
  BatchAwareEndpoint sink;
  EXPECT_THROW(ShardMerger(0, &sink), std::invalid_argument);
  EXPECT_THROW(ShardMerger(2, nullptr), std::invalid_argument);
}

// ---------- Rate-function library ----------

TEST(RateFunctionTest, LibraryShapes) {
  EXPECT_NEAR(NormalCurve(1.0)(0.0), 1.0, 1e-12);
  EXPECT_NEAR(NormalCurve(2.0)(2.0), std::exp(-0.5), 1e-12);
  EXPECT_NEAR(SinPlusOne()(M_PI / 2.0), 2.0, 1e-12);
  EXPECT_NEAR(CosPlusOne()(M_PI), 0.0, 1e-12);
  EXPECT_NEAR(TwoPowT()(3.0), 8.0, 1e-12);
  EXPECT_NEAR(TenPowT()(2.0), 100.0, 1e-9);
  EXPECT_GT(RightTailedNormal(1.0).domain_hi, 3.9);
  // All Table II functions are non-negative on their domains.
  for (const auto& fn :
       {NormalCurve(1.0), NormalCurve(2.0), SinPlusOne(), CosPlusOne(),
        TwoPowT(), TenPowT(), DiurnalCurve()}) {
    for (int i = 0; i <= 100; ++i) {
      const double t = fn.domain_lo + fn.domain_width() * i / 100.0;
      EXPECT_GE(fn(t), 0.0) << fn.name << " at t=" << t;
    }
  }
}

}  // namespace
}  // namespace simdc::flow
