// Unit tests for the simulated ADB shell and the output parsers —
// the measurement pipeline of §IV-C.
#include <gtest/gtest.h>

#include "adb/adb_server.h"
#include "adb/parsers.h"
#include "common/clock.h"
#include "device/phone.h"

namespace simdc::adb {
namespace {

using device::ApkStage;
using device::Phone;
using device::PhoneSpec;
using device::RoundWindow;
using device::RunPlan;

class AdbTest : public ::testing::Test {
 protected:
  AdbTest() : phone_(Spec(), clock_), adb_(phone_) {
    RunPlan plan;
    plan.apk_launch_start = 0;
    RoundWindow round;
    round.train_start = Seconds(15);
    round.train_end = Seconds(35);
    round.download_bytes = 16 * 1024;
    round.upload_bytes = 17 * 1024;
    plan.rounds = {round};
    plan.closure_start = Seconds(40);
    plan.closure_end = Seconds(55);
    plan.pid = 4242;
    phone_.ScheduleRun(plan);
    clock_.AdvanceTo(Seconds(20));  // mid-training
  }

  static PhoneSpec Spec() {
    PhoneSpec spec;
    spec.id = PhoneId(9);
    spec.grade = device::DeviceGrade::kHigh;
    spec.memory_gb = 12.0;
    spec.seed = 77;
    return spec;
  }

  ManualClock clock_;
  Phone phone_;
  AdbServer adb_;
};

// ---------- command execution ----------

TEST_F(AdbTest, CurrentNowIsParsableNegativeMicroAmps) {
  auto out = adb_.Shell("cat /sys/class/power_supply/battery/current_now");
  ASSERT_TRUE(out.ok());
  auto value = ParseSysfsValue(*out);
  ASSERT_TRUE(value.ok());
  EXPECT_LT(*value, 0);
  EXPECT_GT(*value, -200000);  // sane µA magnitude for training
}

TEST_F(AdbTest, VoltageNowNearNominal) {
  auto out = adb_.Shell("cat /sys/class/power_supply/battery/voltage_now");
  ASSERT_TRUE(out.ok());
  auto value = ParseSysfsValue(*out);
  ASSERT_TRUE(value.ok());
  EXPECT_NEAR(static_cast<double>(*value), 3.85e6, 0.3e6);
}

TEST_F(AdbTest, UnknownSysfsFileIsNotFound) {
  auto out = adb_.Shell("cat /sys/class/thermal/temp");
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.error().code(), ErrorCode::kNotFound);
}

TEST_F(AdbTest, PgrepFindsTrainingProcess) {
  auto out = adb_.Shell("pgrep -f com.simdc.fltrain");
  ASSERT_TRUE(out.ok());
  auto pid = ParsePgrepPid(*out);
  ASSERT_TRUE(pid.ok());
  EXPECT_EQ(*pid, 4242);
}

TEST_F(AdbTest, PgrepMissesUnknownProcess) {
  EXPECT_FALSE(adb_.Shell("pgrep -f com.other.app").ok());
}

TEST_F(AdbTest, PgrepMissesAfterClosure) {
  EXPECT_FALSE(adb_.ShellAt("pgrep -f com.simdc.fltrain", Seconds(60)).ok());
}

TEST_F(AdbTest, TopOutputRoundTripsCpuPercent) {
  auto out = adb_.Shell("top -b -n 1 -p 4242");
  ASSERT_TRUE(out.ok());
  // Output contains header noise that the parser must skip.
  EXPECT_NE(out->find("Tasks:"), std::string::npos);
  EXPECT_NE(out->find("PID USER"), std::string::npos);
  auto cpu = ParseTopCpuPercent(*out, 4242);
  ASSERT_TRUE(cpu.ok());
  EXPECT_NEAR(*cpu, phone_.CpuPercentAt(Seconds(20)), 0.11);
}

TEST_F(AdbTest, TopWrongPidIsNotFound) {
  EXPECT_FALSE(adb_.Shell("top -b -n 1 -p 9999").ok());
  EXPECT_FALSE(adb_.Shell("top -b -n 1").ok());  // missing -p
}

TEST_F(AdbTest, DumpsysMeminfoRoundTripsPss) {
  auto out = adb_.Shell("dumpsys meminfo com.simdc.fltrain");
  ASSERT_TRUE(out.ok());
  EXPECT_NE(out->find("MEMINFO in pid 4242"), std::string::npos);
  auto pss = ParseDumpsysPssKb(*out);
  ASSERT_TRUE(pss.ok());
  EXPECT_NEAR(static_cast<double>(*pss),
              static_cast<double>(phone_.MemPssKbAt(Seconds(20))), 1.0);
}

TEST_F(AdbTest, DumpsysShorthandAccepted) {
  // The paper writes `dumpsys <process_name>`.
  EXPECT_TRUE(adb_.Shell("dumpsys com.simdc.fltrain").ok());
}

TEST_F(AdbTest, NetDevRoundTripsWlanCounters) {
  auto out = adb_.Shell("cat /proc/4242/net/dev");
  ASSERT_TRUE(out.ok());
  EXPECT_NE(out->find("wlan0:"), std::string::npos);
  EXPECT_NE(out->find("lo:"), std::string::npos);  // noise the parser skips
  auto wlan = ParseNetDevWlan(*out);
  ASSERT_TRUE(wlan.ok());
  const auto truth = phone_.WlanAt(Seconds(20));
  EXPECT_EQ(wlan->rx_bytes, truth.rx_bytes);
  EXPECT_EQ(wlan->tx_bytes, truth.tx_bytes);
  EXPECT_EQ(wlan->total(), truth.rx_bytes + truth.tx_bytes);
}

TEST_F(AdbTest, EmptyAndUnknownCommandsRejected) {
  EXPECT_FALSE(adb_.Shell("").ok());
  EXPECT_FALSE(adb_.Shell("reboot").ok());
  EXPECT_FALSE(adb_.Shell("pgrep com.simdc.fltrain").ok());  // missing -f
}

TEST_F(AdbTest, ShellAtQueriesHistoricalState) {
  // At t = 5 s the APK is launching: CPU high, process alive.
  auto top5 = adb_.ShellAt("top -b -n 1 -p 4242", Seconds(5));
  ASSERT_TRUE(top5.ok());
  auto cpu5 = ParseTopCpuPercent(*top5, 4242);
  ASSERT_TRUE(cpu5.ok());
  EXPECT_GT(*cpu5, 10.0);  // launch spike
}

// ---------- parsers against hostile/realistic text ----------

TEST(ParserTest, SysfsRejectsGarbage) {
  EXPECT_FALSE(ParseSysfsValue("not-a-number").ok());
  EXPECT_FALSE(ParseSysfsValue("").ok());
  EXPECT_TRUE(ParseSysfsValue("  -123456\n").ok());
}

TEST(ParserTest, PgrepSkipsBlankLines) {
  auto pid = ParsePgrepPid("\n\n1234\n");
  ASSERT_TRUE(pid.ok());
  EXPECT_EQ(*pid, 1234);
  EXPECT_FALSE(ParsePgrepPid("\n\n").ok());
}

TEST(ParserTest, TopParsesRealisticToyboxOutput) {
  const std::string out =
      "Tasks: 612 total,   1 running\n"
      "  Mem:  11534336K total\n"
      "800%cpu  60%user   0%nice  20%sys 720%idle\n"
      "  PID USER         PR  NI VIRT  RES  SHR S %CPU %MEM     TIME+ ARGS\n"
      " 1000 system       20   0 1.0G  10M   9M S  1.0  0.1   0:01.00 "
      "system_server\n"
      " 4242 u0_a217      20   0 1.9G  72M  36M S  9.8  0.4   1:23.45 "
      "com.simdc.fltrain\n";
  auto cpu = ParseTopCpuPercent(out, 4242);
  ASSERT_TRUE(cpu.ok());
  EXPECT_DOUBLE_EQ(*cpu, 9.8);
  EXPECT_FALSE(ParseTopCpuPercent(out, 5555).ok());
}

TEST(ParserTest, TopRejectsTruncatedProcessLine) {
  EXPECT_FALSE(ParseTopCpuPercent(" 4242 u0_a217 20\n", 4242).ok());
}

TEST(ParserTest, DumpsysFindsTotalPssAmongNoise) {
  const std::string out =
      "Applications Memory Usage (in Kilobytes):\n"
      "  Native Heap    14000\n"
      "        TOTAL PSS: 46180            TOTAL RSS: 69270\n";
  auto pss = ParseDumpsysPssKb(out);
  ASSERT_TRUE(pss.ok());
  EXPECT_EQ(*pss, 46180);
  EXPECT_FALSE(ParseDumpsysPssKb("no pss here").ok());
  EXPECT_FALSE(ParseDumpsysPssKb("TOTAL PSS: banana").ok());
}

TEST(ParserTest, NetDevSumsRxAndTx) {
  const std::string out =
      "Inter-|   Receive |  Transmit\n"
      " face |bytes packets errs drop fifo frame compressed multicast|bytes"
      " packets errs drop fifo colls carrier compressed\n"
      "    lo: 100 2 0 0 0 0 0 0 100 2 0 0 0 0 0 0\n"
      " wlan0: 5000 10 0 0 0 0 0 0 3000 8 0 0 0 0 0 0\n";
  auto wlan = ParseNetDevWlan(out);
  ASSERT_TRUE(wlan.ok());
  EXPECT_EQ(wlan->rx_bytes, 5000);
  EXPECT_EQ(wlan->tx_bytes, 3000);
  EXPECT_EQ(wlan->total(), 8000);
}

TEST(ParserTest, NetDevWithoutWlanFails) {
  EXPECT_FALSE(ParseNetDevWlan("    lo: 1 1 0 0 0 0 0 0 1 1 0 0 0 0 0 0\n").ok());
  EXPECT_FALSE(ParseNetDevWlan(" wlan0: 12 3\n").ok());  // truncated
}

}  // namespace
}  // namespace simdc::adb
