// Tests pinning the Fig. 8 scalability relationships between SimDC and the
// baseline simulator cost models.
#include <gtest/gtest.h>

#include "baseline/scalability_models.h"

namespace simdc::baseline {
namespace {

class ScalabilityTest : public ::testing::Test {
 protected:
  ClusterParams cluster_;  // paper defaults: 200 cores
  FedScaleModel fedscale_{cluster_};
  FederatedScopeModel fedscope_{cluster_};
  SimDcModel simdc_{cluster_};
};

TEST_F(ScalabilityTest, SimDcSlowerBelowOneThousandDevices) {
  // Fig. 8: "for fewer than 1,000 devices, the single-round training time
  // of SimDC is larger than that of the other two frameworks."
  for (const std::size_t n : {100u, 300u, 1000u}) {
    EXPECT_GT(simdc_.SingleRoundSeconds(n), fedscale_.SingleRoundSeconds(n))
        << "n=" << n;
    EXPECT_GT(simdc_.SingleRoundSeconds(n), fedscope_.SingleRoundSeconds(n))
        << "n=" << n;
  }
}

TEST_F(ScalabilityTest, FedScaleAlwaysFastest) {
  for (const std::size_t n : {100u, 1000u, 10000u, 100000u}) {
    EXPECT_LT(fedscale_.SingleRoundSeconds(n),
              fedscope_.SingleRoundSeconds(n));
    EXPECT_LT(fedscale_.SingleRoundSeconds(n), simdc_.SingleRoundSeconds(n));
  }
}

TEST_F(ScalabilityTest, SimDcComparableToFederatedScopeAtLargeScale) {
  // Fig. 8: "The single-round training times of SimDC and FederatedScope
  // are comparable at large scales."
  for (const std::size_t n : {10000u, 100000u}) {
    const double ratio =
        simdc_.SingleRoundSeconds(n) / fedscope_.SingleRoundSeconds(n);
    EXPECT_GT(ratio, 0.7) << "n=" << n;
    EXPECT_LT(ratio, 1.4) << "n=" << n;
  }
}

TEST_F(ScalabilityTest, DeviceScaleDominatesBeyondTenThousand) {
  // Past 10k devices, doubling the devices roughly doubles the time.
  const double t10k = simdc_.SingleRoundSeconds(10000);
  const double t20k = simdc_.SingleRoundSeconds(20000);
  EXPECT_NEAR(t20k / t10k, 2.0, 0.3);
}

TEST_F(ScalabilityTest, FixedOverheadDominatesSmallScale) {
  // Below ~200 devices (one wave), SimDC's time is nearly flat.
  const double t100 = simdc_.SingleRoundSeconds(100);
  const double t200 = simdc_.SingleRoundSeconds(200);
  EXPECT_NEAR(t100, t200, 1e-9);
  EXPECT_GT(t100, 10.0);  // setup + download dominates
}

TEST_F(ScalabilityTest, MonotoneInDevices) {
  for (const SimulatorModel* model :
       std::initializer_list<const SimulatorModel*>{&fedscale_, &fedscope_,
                                                    &simdc_}) {
    double prev = 0.0;
    for (std::size_t n = 100; n <= 102400; n *= 2) {
      const double t = model->SingleRoundSeconds(n);
      EXPECT_GE(t, prev) << model->name() << " n=" << n;
      prev = t;
    }
  }
}

TEST_F(ScalabilityTest, AblationDevicePerActorIsSlower) {
  // Design decision D4: actors sequentially multiplexing devices beat
  // device-per-actor (which pays the download per device at scale).
  SimDcModel::Params per_device;
  per_device.multiplex_devices_per_actor = false;
  SimDcModel no_multiplex(cluster_, per_device);
  for (const std::size_t n : {1000u, 10000u, 100000u}) {
    EXPECT_GT(no_multiplex.SingleRoundSeconds(n),
              simdc_.SingleRoundSeconds(n))
        << "n=" << n;
  }
}

TEST_F(ScalabilityTest, MoreCoresHelp) {
  ClusterParams big = cluster_;
  big.cpu_cores = 400;
  SimDcModel wider(big);
  EXPECT_LT(wider.SingleRoundSeconds(100000),
            simdc_.SingleRoundSeconds(100000));
}

TEST_F(ScalabilityTest, Names) {
  EXPECT_EQ(fedscale_.name(), "FedScale");
  EXPECT_EQ(fedscope_.name(), "FederatedScope");
  EXPECT_EQ(simdc_.name(), "SimDC");
}

TEST_F(ScalabilityTest, ZeroDevicesIsSetupOnly) {
  EXPECT_DOUBLE_EQ(simdc_.SingleRoundSeconds(0), 12.0);
}

}  // namespace
}  // namespace simdc::baseline
